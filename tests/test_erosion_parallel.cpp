// Parallel erosion stepping: ErosionDomain::step(rng, pool) must be
// BIT-identical to the serial path (a pool of 1) for every thread count,
// across randomized domain configurations — per-disc RNG substreams make
// the trajectory independent of how the pool schedules the discs.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "erosion/domain.hpp"
#include "support/thread_pool.hpp"
#include "test_helpers.hpp"

namespace ulba::erosion {
namespace {

constexpr int kRandomConfigs = 12;
constexpr int kStepsPerConfig = 15;

struct Trace {
  std::vector<std::int64_t> eroded_per_step;
  std::vector<double> weights;
  double total = 0.0;
  std::int64_t rock_remaining = 0;
  std::int64_t eroded = 0;
  std::int64_t frontier = 0;
  std::uint64_t next_master_draw = 0;  ///< master stream advanced identically
};

Trace run_steps(const DomainConfig& cfg, std::uint64_t seed,
                std::size_t threads) {
  support::ThreadPool pool(threads);
  ErosionDomain dom(cfg);
  support::Rng rng(seed);
  Trace t;
  for (int s = 0; s < kStepsPerConfig; ++s)
    t.eroded_per_step.push_back(dom.step(rng, pool));
  t.weights.assign(dom.column_weights().begin(), dom.column_weights().end());
  t.total = dom.total_workload();
  t.rock_remaining = dom.rock_cells_remaining();
  t.eroded = dom.eroded_cells();
  t.frontier = dom.frontier_size();
  t.next_master_draw = rng();
  return t;
}

TEST(ErosionParallel, BitIdenticalAcrossThreadCountsOnRandomConfigs) {
  support::Rng meta(2026);
  for (int trial = 0; trial < kRandomConfigs; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(meta);
    const std::uint64_t seed = meta();
    const Trace serial = run_steps(cfg, seed, 1);
    for (const std::size_t threads : {2u, 3u, 4u, 8u}) {
      const Trace parallel = run_steps(cfg, seed, threads);
      SCOPED_TRACE("trial " + std::to_string(trial) + ", threads " +
                   std::to_string(threads));
      EXPECT_EQ(parallel.eroded_per_step, serial.eroded_per_step);
      ASSERT_EQ(parallel.weights.size(), serial.weights.size());
      for (std::size_t x = 0; x < serial.weights.size(); ++x)
        EXPECT_EQ(parallel.weights[x], serial.weights[x]) << "column " << x;
      // Exact equality, not NEAR: the FP summation order is identical.
      EXPECT_EQ(parallel.total, serial.total);
      EXPECT_EQ(parallel.rock_remaining, serial.rock_remaining);
      EXPECT_EQ(parallel.eroded, serial.eroded);
      EXPECT_EQ(parallel.frontier, serial.frontier);
      EXPECT_EQ(parallel.next_master_draw, serial.next_master_draw);
    }
  }
}

TEST(ErosionParallel, ColumnWeightsStayConsistentWithTotal) {
  support::Rng meta(11);
  support::ThreadPool pool(4);
  for (int trial = 0; trial < 10; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(meta);
    ErosionDomain dom(cfg);
    support::Rng rng(meta());
    std::int64_t initial_rock = dom.rock_cells_remaining();
    for (int s = 0; s < kStepsPerConfig; ++s) {
      (void)dom.step(rng, pool);
      const auto w = dom.column_weights();
      const double sum = std::accumulate(w.begin(), w.end(), 0.0);
      ASSERT_NEAR(sum, dom.total_workload(), 1e-9 * dom.total_workload())
          << "trial " << trial << ", step " << s;
      ASSERT_EQ(dom.rock_cells_remaining() + dom.eroded_cells(), initial_rock);
    }
  }
}

TEST(ErosionParallel, PoolPathDiffersFromSharedStreamPathButIsDeterministic) {
  // The per-disc-substream trajectory is a DIFFERENT (equally valid)
  // realization than the shared-stream serial stepper — but each is
  // deterministic for a fixed seed.
  support::Rng meta(5);
  DomainConfig cfg = testing::random_domain_config(meta);
  // Force real erosion so the trajectories can actually differ.
  for (auto& d : cfg.discs) d.erosion_prob = 0.5;

  const Trace pooled_a = run_steps(cfg, 42, 4);
  const Trace pooled_b = run_steps(cfg, 42, 4);
  EXPECT_EQ(pooled_a.eroded_per_step, pooled_b.eroded_per_step);
  EXPECT_EQ(pooled_a.weights, pooled_b.weights);

  ErosionDomain shared(cfg);
  support::Rng rng(42);
  std::vector<std::int64_t> shared_eroded;
  for (int s = 0; s < kStepsPerConfig; ++s)
    shared_eroded.push_back(shared.step(rng));
  // Same config, same seed, both deterministic — but distinct streams.
  // (Equality would require an astronomically unlikely coincidence.)
  EXPECT_NE(shared_eroded, pooled_a.eroded_per_step);
}

// ---------------------------------------------------------------------------
// The pool itself
// ---------------------------------------------------------------------------
TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  support::ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SerialPoolRunsInlineOnTheCallingThread) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, PropagatesTheFirstException) {
  support::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SurvivesManyConsecutiveJobs) {
  support::ThreadPool pool(3);
  for (int job = 0; job < 200; ++job) {
    std::atomic<int> ran{0};
    pool.parallel_for(7, [&](std::size_t) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 7) << "job " << job;
  }
}

}  // namespace
}  // namespace ulba::erosion
