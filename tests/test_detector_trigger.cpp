// The z-score overload detector and the Zhai-style adaptive trigger.
#include <gtest/gtest.h>

#include <vector>

#include "core/detector.hpp"
#include "core/trigger.hpp"
#include "erosion/app.hpp"

namespace ulba::core {
namespace {

TEST(Detector, SingleHotPeAmongThirtyTwoIsFlagged) {
  // The paper's Figure-4b scenario: one strongly erodible rock among 32.
  std::vector<double> wirs(32, 1.0);
  wirs[13] = 20.0;
  const OverloadDetector det(3.0);
  EXPECT_TRUE(det.is_overloading(wirs[13], wirs));
  EXPECT_EQ(det.count_overloading(wirs), 1);
  const auto flags = det.flags(wirs);
  for (std::size_t i = 0; i < flags.size(); ++i)
    EXPECT_EQ(flags[i], i == 13) << "PE " << i;
}

TEST(Detector, UniformWirsFlagNobody) {
  const std::vector<double> wirs(16, 3.5);
  const OverloadDetector det;
  EXPECT_EQ(det.count_overloading(wirs), 0);
}

TEST(Detector, MildSpreadFlagsNobody) {
  // Within-noise variation must not trigger underloading.
  std::vector<double> wirs;
  for (int i = 0; i < 64; ++i)
    wirs.push_back(10.0 + 0.1 * static_cast<double>(i % 7));
  const OverloadDetector det(3.0);
  EXPECT_EQ(det.count_overloading(wirs), 0);
}

TEST(Detector, ThresholdIsRespected) {
  std::vector<double> wirs(32, 1.0);
  wirs[0] = 20.0;
  // With a huge threshold even the hot PE passes as normal.
  const OverloadDetector lax(100.0);
  EXPECT_FALSE(lax.is_overloading(wirs[0], wirs));
}

TEST(Detector, SeveralHotPesAllFlagged) {
  std::vector<double> wirs(256, 1.0);
  for (int i : {3, 77, 200}) wirs[static_cast<std::size_t>(i)] = 50.0;
  const OverloadDetector det(3.0);
  EXPECT_EQ(det.count_overloading(wirs), 3);
}

TEST(Detector, UnderloadedOutlierIsNotOverloading) {
  std::vector<double> wirs(32, 10.0);
  wirs[5] = 0.0;  // negative z-score
  const OverloadDetector det(3.0);
  EXPECT_FALSE(det.is_overloading(wirs[5], wirs));
}

TEST(Detector, RejectsBadInput) {
  EXPECT_THROW(OverloadDetector(0.0), std::invalid_argument);
  const OverloadDetector det;
  EXPECT_THROW((void)det.is_overloading(1.0, {}), std::invalid_argument);
}

TEST(Trigger, FirstIterationBecomesReference) {
  AdaptiveTrigger t;
  t.record_iteration(10.0);
  EXPECT_TRUE(t.has_reference());
  EXPECT_DOUBLE_EQ(t.reference_time(), 10.0);
  EXPECT_DOUBLE_EQ(t.degradation(), 0.0);
}

TEST(Trigger, DegradationAccumulatesMedianMinusReference) {
  AdaptiveTrigger t(3);
  t.record_iteration(10.0);  // ref; window {10}, median 10, +0
  t.record_iteration(12.0);  // window {10,12}, median 11, +1
  EXPECT_DOUBLE_EQ(t.degradation(), 1.0);
  t.record_iteration(14.0);  // window {10,12,14}, median 12, +2
  EXPECT_DOUBLE_EQ(t.degradation(), 3.0);
  t.record_iteration(16.0);  // window {12,14,16}, median 14, +4
  EXPECT_DOUBLE_EQ(t.degradation(), 7.0);
}

TEST(Trigger, MedianSmoothingSuppressesSpikes) {
  AdaptiveTrigger t(3);
  t.record_iteration(10.0);
  t.record_iteration(10.0);
  t.record_iteration(1000.0);  // lone spike; median of {10,10,1000} is 10
  EXPECT_DOUBLE_EQ(t.degradation(), 0.0);
}

TEST(Trigger, ShouldBalanceComparesThreshold) {
  AdaptiveTrigger t;
  t.record_iteration(10.0);
  t.record_iteration(20.0);  // median 15, degradation 5
  EXPECT_TRUE(t.should_balance(5.0));
  EXPECT_TRUE(t.should_balance(4.0));
  EXPECT_FALSE(t.should_balance(5.1));
}

TEST(Trigger, ResetRearmsReference) {
  AdaptiveTrigger t;
  t.record_iteration(10.0);
  t.record_iteration(30.0);
  ASSERT_GT(t.degradation(), 0.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.degradation(), 0.0);
  EXPECT_FALSE(t.has_reference());
  // The next iteration defines the new (post-LB) reference.
  t.record_iteration(12.0);
  EXPECT_DOUBLE_EQ(t.reference_time(), 12.0);
}

TEST(Trigger, ResetClearsTheMedianWindow) {
  // Regression: reset() used to clear the degradation accumulator and the
  // reference but NOT the median window, so after an LB step the first few
  // medians still saw the slow pre-LB iteration times. A slow→LB→fast run
  // then re-accumulated degradation from stale samples and could re-trigger
  // immediately. With the window cleared, fast post-LB iterations at the new
  // reference must accumulate exactly zero degradation.
  AdaptiveTrigger t(3);
  t.record_iteration(10.0);
  t.record_iteration(10.0);
  t.record_iteration(10.0);  // slow plateau fills the window with 10s
  t.reset();                 // the LB step fixed the imbalance
  t.record_iteration(1.0);   // new reference; pre-fix window {10,10,1} ⇒
  t.record_iteration(1.0);   //   median 10 ⇒ degradation +9 per iteration
  t.record_iteration(1.0);
  EXPECT_DOUBLE_EQ(t.degradation(), 0.0);
  EXPECT_FALSE(t.should_balance(0.5))
      << "stale pre-LB window samples re-triggered the balancer";
}

TEST(Trigger, StableIterationsNeverTrigger) {
  AdaptiveTrigger t;
  for (int i = 0; i < 100; ++i) t.record_iteration(7.0);
  EXPECT_DOUBLE_EQ(t.degradation(), 0.0);
  EXPECT_FALSE(t.should_balance(0.001));
}

TEST(Trigger, ImprovingIterationsGiveNegativeDegradation) {
  // Iterations getting *faster* than the reference accumulate negative
  // degradation — the trigger then waits even longer, as it should.
  AdaptiveTrigger t(1);
  t.record_iteration(10.0);
  t.record_iteration(8.0);
  EXPECT_DOUBLE_EQ(t.degradation(), -2.0);
}

TEST(Trigger, RejectsNegativeTimes) {
  AdaptiveTrigger t;
  EXPECT_THROW(t.record_iteration(-1.0), std::invalid_argument);
}

TEST(LbCostEstimator, PriorUntilFirstObservation) {
  LbCostEstimator est(5.0);
  EXPECT_DOUBLE_EQ(est.average(), 5.0);
  est.observe(11.0);
  EXPECT_DOUBLE_EQ(est.average(), 11.0);
  est.observe(13.0);
  EXPECT_DOUBLE_EQ(est.average(), 12.0);
  EXPECT_EQ(est.observations(), 2u);
}

TEST(LbCostEstimator, RejectsNegative) {
  EXPECT_THROW(LbCostEstimator(-1.0), std::invalid_argument);
  LbCostEstimator est(1.0);
  EXPECT_THROW(est.observe(-0.5), std::invalid_argument);
}

// Property sweep: a hot PE whose WIR is k× the background must be flagged
// once k is large enough, for any population size.
class DetectorSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DetectorSweep, HotPeDetection) {
  const auto [pe_count, factor] = GetParam();
  std::vector<double> wirs(static_cast<std::size_t>(pe_count), 1.0);
  wirs[0] = factor;
  const OverloadDetector det(3.0);
  // For one outlier among n uniform values, z ≈ √(n−1) · (1 − 1/n)… ⇒
  // detection requires n ≥ ~11; the sweep only uses larger populations.
  EXPECT_TRUE(det.is_overloading(wirs[0], wirs))
      << "P = " << pe_count << ", factor = " << factor;
  EXPECT_EQ(det.count_overloading(wirs), 1);
}

INSTANTIATE_TEST_SUITE_P(
    PopulationsAndFactors, DetectorSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 256, 2048),
                       ::testing::Values(5.0, 20.0, 1000.0)));

// ---------------------------------------------------------------------------
// The trigger threshold as the erosion app records it per iteration
// (IterationRecord::threshold): average LB cost plus, for ULBA with
// anticipation, the Eq. (11) overhead at the α the configured AlphaPolicy
// would apply — the ROADMAP follow-up that made the `model` policy feed the
// trigger, not only the LB step.
// ---------------------------------------------------------------------------

erosion::AppConfig threshold_probe_config() {
  erosion::AppConfig cfg;
  cfg.pe_count = 16;
  cfg.columns_per_pe = 48;
  cfg.rows = 64;
  cfg.rock_radius = 16;
  cfg.iterations = 60;
  cfg.seed = 3;
  cfg.method = erosion::Method::kUlba;
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;
  return cfg;
}

TEST(TriggerThreshold, RecordedForEveryIteration) {
  const erosion::AppConfig cfg = threshold_probe_config();
  const erosion::RunResult run = erosion::ErosionApp(cfg).run();
  ASSERT_EQ(run.iterations.size(), static_cast<std::size_t>(cfg.iterations));
  for (const erosion::IterationRecord& rec : run.iterations)
    EXPECT_GT(rec.threshold, 0.0);
}

TEST(TriggerThreshold, AnticipationRaisesTheFixedPolicyThreshold) {
  erosion::AppConfig with = threshold_probe_config();
  erosion::AppConfig without = threshold_probe_config();
  without.anticipate_overhead_in_trigger = false;
  const erosion::RunResult r_with = erosion::ErosionApp(with).run();
  const erosion::RunResult r_without = erosion::ErosionApp(without).run();

  // The Eq. (11) overhead is non-negative, and once the detector flags the
  // strong rock it must be strictly positive at some iteration. (The two
  // runs share the trajectory only until their LB schedules diverge, so the
  // elementwise comparison stops at the first divergence.)
  std::size_t comparable = r_with.iterations.size();
  for (std::size_t i = 0; i < r_with.iterations.size(); ++i) {
    if (r_with.iterations[i].lb_performed !=
        r_without.iterations[i].lb_performed) {
      comparable = i + 1;
      break;
    }
  }
  bool strictly_raised = false;
  for (std::size_t i = 0; i < comparable; ++i) {
    EXPECT_GE(r_with.iterations[i].threshold,
              r_without.iterations[i].threshold)
        << "iteration " << i;
    strictly_raised |= r_with.iterations[i].threshold >
                       r_without.iterations[i].threshold;
  }
  EXPECT_TRUE(strictly_raised)
      << "the detector never fed an overhead into the trigger";
}

TEST(TriggerThreshold, StandardMethodIgnoresAnticipation) {
  erosion::AppConfig cfg = threshold_probe_config();
  cfg.method = erosion::Method::kStandard;
  erosion::AppConfig off = cfg;
  off.anticipate_overhead_in_trigger = false;
  const erosion::RunResult a = erosion::ErosionApp(cfg).run();
  const erosion::RunResult b = erosion::ErosionApp(off).run();
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i)
    EXPECT_EQ(a.iterations[i].threshold, b.iterations[i].threshold)
        << "iteration " << i;
}

TEST(TriggerThreshold, ModelPolicyFeedsTheTrigger) {
  // Same seed/config, different α policy ⇒ the recorded thresholds must
  // diverge once the detector sees the overload: the fixed policy charges
  // Eq. (11) at the base α while the model policy charges it at the α its
  // grid search actually recommends.
  erosion::AppConfig fixed = threshold_probe_config();
  erosion::AppConfig model = threshold_probe_config();
  model.alpha_policy = erosion::AlphaPolicy::kGossipModel;
  const erosion::RunResult r_fixed = erosion::ErosionApp(fixed).run();
  const erosion::RunResult r_model = erosion::ErosionApp(model).run();
  bool diverged = false;
  const std::size_t n =
      std::min(r_fixed.iterations.size(), r_model.iterations.size());
  for (std::size_t i = 0; i < n && !diverged; ++i)
    diverged = r_fixed.iterations[i].threshold !=
               r_model.iterations[i].threshold;
  EXPECT_TRUE(diverged)
      << "the model policy never changed the trigger threshold";
}

}  // namespace
}  // namespace ulba::core
