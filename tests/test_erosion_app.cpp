// The end-to-end erosion application (scaled-down configurations).
#include "erosion/app.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ulba::erosion {
namespace {

AppConfig small_config(Method method, std::int64_t strong = 1,
                       std::uint64_t seed = 1) {
  AppConfig c;
  c.pe_count = 16;
  c.columns_per_pe = 64;
  c.rows = 64;
  c.rock_radius = 16;
  c.strong_rock_count = strong;
  c.iterations = 120;
  c.method = method;
  c.alpha = 0.4;
  c.seed = seed;
  return c;
}

TEST(AppConfig, ValidationCatchesBadSetups) {
  AppConfig c = small_config(Method::kStandard);
  c.pe_count = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(Method::kStandard);
  c.rock_radius = 40;  // does not fit the 64-row domain
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(Method::kStandard);
  c.strong_rock_count = 17;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(Method::kStandard);
  c.gossip_fanout = 16;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(Method::kStandard);
  c.alpha = 1.2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(App, MakeDomainPlacesOneDiscPerStripe) {
  const ErosionApp app(small_config(Method::kStandard));
  const DomainConfig d = app.make_domain();
  ASSERT_EQ(d.discs.size(), 16u);
  EXPECT_EQ(d.columns, 16 * 64);
  for (std::size_t i = 0; i < d.discs.size(); ++i) {
    EXPECT_EQ(d.discs[i].cx, static_cast<std::int64_t>(i) * 64 + 32);
    EXPECT_EQ(d.discs[i].cy, 32);
  }
  const auto strong = std::count_if(
      d.discs.begin(), d.discs.end(),
      [](const RockDisc& r) { return r.erosion_prob == 0.4; });
  EXPECT_EQ(strong, 1);
}

TEST(App, RunProducesFullTrace) {
  const ErosionApp app(small_config(Method::kStandard));
  const RunResult r = app.run();
  EXPECT_EQ(r.iterations.size(), 120u);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_NEAR(r.total_seconds, r.compute_seconds + r.lb_seconds,
              1e-9 * r.total_seconds);
  EXPECT_EQ(static_cast<std::size_t>(r.lb_count), r.lb_iterations.size());
  EXPECT_GT(r.eroded_cells, 0);
  EXPECT_GT(r.average_utilization, 0.0);
  EXPECT_LE(r.average_utilization, 1.0);
}

TEST(App, DynamicsIdenticalAcrossMethods) {
  // Same seed ⇒ same erosion history, whatever the LB method does.
  const RunResult std_run = ErosionApp(small_config(Method::kStandard)).run();
  const RunResult ulba_run = ErosionApp(small_config(Method::kUlba)).run();
  EXPECT_EQ(std_run.eroded_cells, ulba_run.eroded_cells);
}

TEST(App, DeterministicForFixedSeed) {
  const RunResult a = ErosionApp(small_config(Method::kUlba)).run();
  const RunResult b = ErosionApp(small_config(Method::kUlba)).run();
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.lb_iterations, b.lb_iterations);
}

TEST(App, DifferentSeedsDiffer) {
  const RunResult a = ErosionApp(small_config(Method::kUlba, 1, 1)).run();
  const RunResult b = ErosionApp(small_config(Method::kUlba, 1, 2)).run();
  EXPECT_NE(a.total_seconds, b.total_seconds);
}

TEST(App, AdaptiveTriggerActuallyBalances) {
  // One strongly erodible rock keeps growing its stripe: the degradation
  // trigger must fire at least once over 120 iterations.
  const RunResult r = ErosionApp(small_config(Method::kStandard)).run();
  EXPECT_GE(r.lb_count, 1);
  // …and balancing must not happen every iteration either.
  EXPECT_LT(r.lb_count, 60);
}

TEST(App, UlbaDoesNotLoseToStandardOnHotSeed) {
  // The paper's headline (Figure 4a): ULBA total time ≤ standard's, up to a
  // small tolerance, when few PEs overload. Checked across 3 seeds via the
  // median, like the paper's median-of-five runs.
  std::vector<double> std_times, ulba_times;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    std_times.push_back(
        ErosionApp(small_config(Method::kStandard, 1, seed)).run()
            .total_seconds);
    ulba_times.push_back(
        ErosionApp(small_config(Method::kUlba, 1, seed)).run()
            .total_seconds);
  }
  std::sort(std_times.begin(), std_times.end());
  std::sort(ulba_times.begin(), ulba_times.end());
  EXPECT_LE(ulba_times[1], std_times[1] * 1.02);
}

TEST(App, UlbaCallsTheBalancerLessOften) {
  // Figure 4b: 62.5 % fewer LB calls for ULBA. We only require "not more".
  const RunResult std_run =
      ErosionApp(small_config(Method::kStandard)).run();
  const RunResult ulba_run = ErosionApp(small_config(Method::kUlba)).run();
  EXPECT_LE(ulba_run.lb_count, std_run.lb_count);
}

TEST(App, ManyStrongRocksTriggerTheFallback) {
  // With most rocks strong, most PEs overload: Algorithm 2's ≥50 % rule must
  // demote ULBA steps to even splits at least once.
  AppConfig c = small_config(Method::kUlba, 12);
  const RunResult r = ErosionApp(c).run();
  if (r.lb_count > 0) {
    EXPECT_GE(r.fallback_count, 0);  // smoke: field is populated
  }
}

TEST(App, UtilizationTraceInUnitRange) {
  const RunResult r = ErosionApp(small_config(Method::kUlba)).run();
  for (const IterationRecord& rec : r.iterations) {
    EXPECT_GT(rec.utilization, 0.0);
    EXPECT_LE(rec.utilization, 1.0 + 1e-12);
    EXPECT_GE(rec.seconds, 0.0);
  }
}

TEST(App, LbIterationsAreMarkedInTheTrace) {
  const RunResult r = ErosionApp(small_config(Method::kStandard)).run();
  for (std::int64_t it : r.lb_iterations) {
    ASSERT_GE(it, 0);
    ASSERT_LT(it, static_cast<std::int64_t>(r.iterations.size()));
    EXPECT_TRUE(r.iterations[static_cast<std::size_t>(it)].lb_performed);
  }
}

}  // namespace
}  // namespace ulba::erosion
