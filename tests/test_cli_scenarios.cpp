// Golden-output tests for all six `ulba_cli` subcommands.
//
// Every scenario is driven through cli::run with a pinned seed and a small,
// fast configuration; the full report text is compared byte-for-byte against
// tests/golden/<name>.txt. The virtual-time machine makes every subcommand
// deterministic (only `erosion --mt` measures wall clock, and is therefore
// exercised structurally, not golden-matched).
//
// Regenerate the golden files after an intentional output change with
//   ULBA_UPDATE_GOLDEN=1 ctest -R test_cli_scenarios
// and review the diff like any other code change.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "test_helpers.hpp"

#ifndef ULBA_GOLDEN_DIR
#error "ULBA_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace ulba::cli {
namespace {

std::string run_cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  const int exit_code = run(args, out);
  EXPECT_EQ(exit_code, 0) << "args[0] = " << (args.empty() ? "" : args[0]);
  return out.str();
}

void expect_matches_golden(const std::string& name,
                           const std::vector<std::string>& args) {
  const std::string text = run_cli(args);
  const std::string path = std::string(ULBA_GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("ULBA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good()) << "cannot write " << path;
    f << text;
    return;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " (regenerate with ULBA_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << f.rdbuf();
  EXPECT_EQ(text, expected.str())
      << "output of `ulba_cli " << name
      << "` drifted from " << path
      << " — regenerate with ULBA_UPDATE_GOLDEN=1 if intentional";
}

// ---------------------------------------------------------------------------
// Golden outputs, one per subcommand (fixed seeds, small configurations)
// ---------------------------------------------------------------------------
TEST(CliGolden, Quickstart) {
  expect_matches_golden("quickstart", {"quickstart"});
}

TEST(CliGolden, Erosion) {
  expect_matches_golden(
      "erosion", {"erosion", "--pes", "16", "--iterations", "60",
                  "--columns-per-pe", "48", "--rows", "64", "--rock-radius",
                  "16", "--seed", "3"});
}

TEST(CliGolden, ErosionThreaded) {
  // The --threads path commits per-disc substreams serially, so its virtual-
  // time report is a stable golden too (and identical for every N > 1).
  expect_matches_golden(
      "erosion_threads", {"erosion", "--pes", "16", "--iterations", "60",
                          "--columns-per-pe", "48", "--rows", "64",
                          "--rock-radius", "16", "--seed", "3", "--threads",
                          "4"});
  const auto base = [](const char* threads) {
    return std::vector<std::string>{
        "erosion", "--pes", "16", "--iterations", "60", "--columns-per-pe",
        "48", "--rows", "64", "--rock-radius", "16", "--seed", "3",
        "--threads", threads};
  };
  EXPECT_EQ(run_cli(base("2")), run_cli(base("2")));
  // Thread count is not echoed per se — but the virtual-time numbers must
  // be identical across pool sizes; normalize the one line that names it.
  auto normalize = [](std::string s) {
    const auto pos = s.find(" stepping thread(s)");
    if (pos != std::string::npos) {
      const auto comma = s.rfind(", ", pos);
      s.erase(comma, pos - comma);
    }
    return s;
  };
  EXPECT_EQ(normalize(run_cli(base("2"))), normalize(run_cli(base("8"))));
}

TEST(CliGolden, ErosionSharded) {
  // The sharded stepper: 4 shards cut by RCB on a 2-thread pool. The
  // virtual-time numbers are bit-identical to the unsharded serial run (see
  // ShardedReportMatchesSerialReport below); the golden additionally pins
  // the sharding header and the re-shard accounting.
  expect_matches_golden(
      "erosion_sharded",
      {"erosion", "--pes", "16", "--iterations", "60", "--columns-per-pe",
       "48", "--rows", "64", "--rock-radius", "16", "--seed", "3", "--shards",
       "4", "--partitioner", "rcb", "--threads", "2"});
}

TEST(CliGolden, ErosionDistributed) {
  // The SPMD-distributed stepper: 4 ranks, each with a 2-thread pool. The
  // virtual-time numbers are bit-identical to the unsharded serial run (see
  // DistributedReportMatchesSerialReport below); the golden additionally
  // pins the distributed header and the rank-migration accounting.
  expect_matches_golden(
      "erosion_distributed",
      {"erosion", "--pes", "16", "--iterations", "60", "--columns-per-pe",
       "48", "--rows", "64", "--rock-radius", "16", "--seed", "3", "--ranks",
       "4", "--threads", "2"});
}

TEST(CliGolden, ErosionCounter) {
  // The counter-RNG fast path (--rng counter): a DIFFERENT golden trajectory
  // than the fork goldens above — position-addressed Philox draws — and THE
  // one trajectory every threads/shards/ranks combination must reproduce
  // (see CounterReportInvariantAcrossSteppers below).
  expect_matches_golden(
      "erosion_counter", {"erosion", "--pes", "16", "--iterations", "60",
                          "--columns-per-pe", "48", "--rows", "64",
                          "--rock-radius", "16", "--seed", "3", "--rng",
                          "counter"});
}

TEST(CliGolden, IntervalQuality) {
  expect_matches_golden("interval_quality",
                        {"interval-quality", "--instances", "40",
                         "--sa-steps", "600"});
}

TEST(CliGolden, DynamicAlpha) {
  // 120 iterations keep the run fast while giving the model policy a long
  // enough horizon to pick a nonzero α mid-run (the trace in the golden).
  expect_matches_golden(
      "dynamic_alpha",
      {"dynamic-alpha", "--pes", "16", "--seeds", "1", "--iterations", "120",
       "--rocks", "2", "--instances", "10"});
}

TEST(CliGolden, Intervals) {
  expect_matches_golden("intervals", {"intervals", "--gamma", "40",
                                      "--alpha-steps", "4"});
}

TEST(CliGolden, AlphaTuning) {
  expect_matches_golden("alpha_tuning",
                        {"alpha-tuning", "--alpha-min", "0.2", "--alpha-max",
                         "0.8", "--alpha-step", "0.2"});
}

TEST(CliGolden, Gossip) {
  expect_matches_golden("gossip",
                        {"gossip", "--pes", "8", "--seeds", "1",
                         "--iterations", "40", "--trials", "3"});
}

TEST(CliGolden, Instances) {
  expect_matches_golden("instances", {"instances", "--samples", "40",
                                      "--alpha-grid", "10"});
}

// ---------------------------------------------------------------------------
// Partition invariance at the report level: the sharded run's report equals
// the serial run's, modulo the sharding-specific lines
// ---------------------------------------------------------------------------
TEST(CliScenarios, ShardedReportMatchesSerialReport) {
  const std::vector<std::string> base{
      "erosion", "--pes",        "16", "--iterations", "60",
      "--columns-per-pe", "48",  "--rows", "64", "--rock-radius", "16",
      "--seed", "3"};
  const std::string serial = run_cli(base);
  for (const char* shards : {"2", "4", "8"}) {
    std::vector<std::string> args = base;
    args.insert(args.end(), {"--shards", shards});
    const std::string sharded = run_cli(args);
    // Strip the sharding header and the re-shard accounting block — every
    // remaining byte (all the virtual-time numbers) must match the serial
    // report exactly.
    const auto strip = [](const std::string& text) {
      std::istringstream in(text);
      std::string line, out;
      while (std::getline(in, line)) {
        if (line.find("sharded stepping") != std::string::npos ||
            line.find("re-sharding") != std::string::npos ||
            line.find("disc move(s)") != std::string::npos || line.empty())
          continue;
        out += line + "\n";
      }
      return out;
    };
    EXPECT_EQ(strip(serial), strip(sharded)) << "--shards " << shards;
  }
}

// The distributed run's report equals the serial run's, modulo the
// distributed-specific lines — the app-level face of the determinism
// contract (`test_distributed_erosion` locks the RunResult itself).
TEST(CliScenarios, DistributedReportMatchesSerialReport) {
  const std::vector<std::string> base{
      "erosion", "--pes",        "16", "--iterations", "60",
      "--columns-per-pe", "48",  "--rows", "64", "--rock-radius", "16",
      "--seed", "3"};
  const std::string serial = run_cli(base);
  for (const char* ranks : {"2", "4", "8"}) {
    std::vector<std::string> args = base;
    args.insert(args.end(), {"--ranks", ranks});
    const std::string distributed = run_cli(args);
    const auto strip = [](const std::string& text) {
      std::istringstream in(text);
      std::string line, out;
      while (std::getline(in, line)) {
        if (line.find("distributed stepping") != std::string::npos ||
            line.find("rank migration") != std::string::npos ||
            line.find("disc move(s)") != std::string::npos ||
            line.find("per-step exchange") != std::string::npos ||
            line.find(" messages, ") != std::string::npos || line.empty())
          continue;
        out += line + "\n";
      }
      return out;
    };
    EXPECT_EQ(strip(serial), strip(distributed)) << "--ranks " << ranks;
  }
}

// The counter kind's report is invariant across EVERY stepping substrate —
// threads, shards, ranks — modulo the substrate-specific header/accounting
// lines, and differs from the fork kind's report for the same seed.
TEST(CliScenarios, CounterReportInvariantAcrossSteppers) {
  const std::vector<std::string> base{
      "erosion", "--pes",        "16", "--iterations", "60",
      "--columns-per-pe", "48",  "--rows", "64", "--rock-radius", "16",
      "--seed", "3", "--rng", "counter"};
  const auto strip = [](const std::string& text) {
    std::istringstream in(text);
    std::string line, out;
    while (std::getline(in, line)) {
      if (line.find("stepping thread(s)") != std::string::npos ||
          line.find("sharded stepping") != std::string::npos ||
          line.find("distributed stepping") != std::string::npos ||
          line.find("re-sharding") != std::string::npos ||
          line.find("rank migration") != std::string::npos ||
          line.find("disc move(s)") != std::string::npos ||
          line.find("per-step exchange") != std::string::npos ||
          line.find(" messages, ") != std::string::npos || line.empty())
        continue;
      out += line + "\n";
    }
    return out;
  };
  const std::string serial = strip(run_cli(base));
  const auto with = [&](std::initializer_list<const char*> extra) {
    std::vector<std::string> args = base;
    args.insert(args.end(), extra.begin(), extra.end());
    return strip(run_cli(args));
  };
  EXPECT_EQ(serial, with({"--threads", "4"})) << "--threads 4";
  EXPECT_EQ(serial, with({"--shards", "4", "--threads", "2"})) << "--shards";
  EXPECT_EQ(serial, with({"--ranks", "4", "--threads", "2"})) << "--ranks";
  EXPECT_EQ(serial, with({"--ranks", "8", "--exchange", "alltoall"}))
      << "--ranks 8 alltoall";

  // Same seed, fork kind: a different trajectory (and no counter header).
  std::vector<std::string> fork_args(base.begin(), base.end() - 2);
  EXPECT_NE(serial, strip(run_cli(fork_args)));
  EXPECT_EQ(run_cli(fork_args).find("counter-based RNG"), std::string::npos)
      << "the fork report must not carry the counter header";
}

// ---------------------------------------------------------------------------
// Determinism: same invocation, byte-identical report
// ---------------------------------------------------------------------------
TEST(CliScenarios, GossipIsDeterministicPerSeedAndSensitiveToIt) {
  const std::vector<std::string> args{"gossip",  "--pes",    "8",
                                      "--seeds", "1",        "--iterations",
                                      "40",      "--trials", "3"};
  EXPECT_EQ(run_cli(args), run_cli(args));
  std::vector<std::string> other = args;
  other.push_back("--seed");
  other.push_back("77");
  EXPECT_NE(run_cli(args), run_cli(other));
}

TEST(CliScenarios, InstancesIsDeterministicPerSeedAndSensitiveToIt) {
  const std::vector<std::string> args{"instances", "--samples", "40",
                                      "--alpha-grid", "10"};
  EXPECT_EQ(run_cli(args), run_cli(args));
  std::vector<std::string> other = args;
  other.push_back("--seed");
  other.push_back("7");
  EXPECT_NE(run_cli(args), run_cli(other));
}

// ---------------------------------------------------------------------------
// Flag rejection for the two new subcommands
// ---------------------------------------------------------------------------
TEST(CliScenarios, GossipRejectsBadFlags) {
  std::ostringstream out;
  EXPECT_THROW(run({"gossip", "--frobnicate", "1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"gossip", "--pes", "2"}, out), std::invalid_argument);
  EXPECT_THROW(run({"gossip", "--seeds", "0"}, out), std::invalid_argument);
  EXPECT_THROW(run({"gossip", "--trials", "0"}, out), std::invalid_argument);
  EXPECT_THROW(run({"gossip", "--alpha", "1.5"}, out), std::invalid_argument);
  EXPECT_THROW(run({"gossip", "--iterations", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"gossip", "positional"}, out), std::invalid_argument);
}

TEST(CliScenarios, InstancesRejectsBadFlags) {
  std::ostringstream out;
  EXPECT_THROW(run({"instances", "--frobnicate", "1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"instances", "--samples", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"instances", "--alpha-grid", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"instances", "--seed", "-1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"instances", "--samples"}, out), std::invalid_argument);
}

TEST(CliScenarios, ThreadsFlagIsValidatedAndExclusiveWithMt) {
  std::ostringstream out;
  EXPECT_THROW(run({"erosion", "--threads", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--threads", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"quickstart", "--threads", "-3"}, out),
               std::invalid_argument);
}

TEST(CliScenarios, ShardsAndPartitionerFlagsAreValidated) {
  std::ostringstream out;
  // Invalid partitioner names are rejected up front, on every subcommand
  // that takes the flag.
  EXPECT_THROW(run({"erosion", "--partitioner", "metis"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"quickstart", "--partitioner", "frobnicate"}, out),
               std::invalid_argument);
  // Shard counts outside [1, 64] (and beyond the PE count) are rejected.
  EXPECT_THROW(run({"erosion", "--shards", "0"}, out), std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--shards", "65"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--pes", "8", "--shards", "16"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"quickstart", "--shards", "-1"}, out),
               std::invalid_argument);
  // The sharded stepper drives the virtual-time path only.
  EXPECT_THROW(run({"erosion", "--mt", "--shards", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--partitioner", "rcb"}, out),
               std::invalid_argument);
}

TEST(CliScenarios, RanksFlagIsValidatedAndExclusive) {
  std::ostringstream out;
  EXPECT_THROW(run({"erosion", "--ranks", "0"}, out), std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--ranks", "65"}, out),
               std::invalid_argument);
  // AppConfig::validate: ranks must not exceed the PE count.
  EXPECT_THROW(run({"erosion", "--pes", "8", "--ranks", "16"}, out),
               std::invalid_argument);
  // The distributed stepper is exclusive with --shards (but composes with
  // --mt: that combination is the measured-time distributed mode).
  EXPECT_THROW(run({"erosion", "--shards", "2", "--ranks", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--shards", "2", "--ranks", "2"}, out),
               std::invalid_argument);
  // The measured-time knobs require --mt; the exchange knob requires the
  // distributed stepper; bad exchange names are rejected up front.
  EXPECT_THROW(run({"erosion", "--ns-scale", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--migration-scale", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--ns-scale", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--exchange", "neighbor"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--ranks", "2", "--exchange", "hypercube"},
                   out),
               std::invalid_argument);
  EXPECT_THROW(run({"quickstart", "--ranks", "-1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"quickstart", "--shards", "2", "--ranks", "2"}, out),
               std::invalid_argument);
}

TEST(CliScenarios, RngFlagIsValidatedAndExclusiveWithLegacyMt) {
  std::ostringstream out;
  // Unknown kinds are rejected up front (rng_kind_from_name throws).
  EXPECT_THROW(run({"erosion", "--rng", "philox"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--rng", ""}, out), std::invalid_argument);
  // The legacy --mt thread app has its own stepper — no --rng there...
  EXPECT_THROW(run({"erosion", "--mt", "--rng", "counter"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--rng", "fork"}, out),
               std::invalid_argument);
  // ...but the measured-time distributed mode keeps the full knob set.
  EXPECT_EQ(run({"erosion", "--mt", "--ranks", "2", "--rng", "counter",
                 "--pes", "8", "--iterations", "4", "--columns-per-pe", "24",
                 "--rows", "32", "--rock-radius", "8"},
                out),
            0);
}

TEST(CliScenarios, TriggerSourceFlagsAreValidated) {
  std::ostringstream out;
  // Unknown names are rejected up front (the *_from_name helpers throw).
  EXPECT_THROW(run({"erosion", "--trigger-source", "oracle"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--trigger-criterion", "entropy"}, out),
               std::invalid_argument);
  // The measured source needs the measured-time distributed mode: plain
  // virtual-time runs and the legacy --mt thread app (no --ranks) have no
  // steady_clock track to trigger on.
  EXPECT_THROW(run({"erosion", "--trigger-source", "measured"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--trigger-source", "measured"}, out),
               std::invalid_argument);
  // Criterion/threshold/noise knobs only mean something downstream of the
  // flags that enable them.
  EXPECT_THROW(run({"erosion", "--trigger-criterion", "fli"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--fli-threshold", "0.3"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--noise", "0.2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"erosion", "--mt", "--ranks", "2", "--trigger-source",
                    "measured", "--noise", "1.5"},
                   out),
               std::invalid_argument);
  // The full measured-trigger knob set runs end to end.
  EXPECT_EQ(run({"erosion", "--mt", "--ranks", "2", "--trigger-source",
                 "measured", "--trigger-criterion", "fli", "--fli-threshold",
                 "0.3", "--noise", "0.2", "--pes", "8", "--iterations", "4",
                 "--columns-per-pe", "24", "--rows", "32", "--rock-radius",
                 "8"},
                out),
            0);
}

TEST(CliScenarios, AnticipationRejectsBadFlags) {
  std::ostringstream out;
  EXPECT_THROW(run({"anticipation", "--frobnicate", "1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"anticipation", "--ranks", "1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"anticipation", "--noise", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"anticipation", "--iterations", "4"}, out),
               std::invalid_argument);
}

TEST(CliScenarios, IntervalQualityRejectsBadFlags) {
  std::ostringstream out;
  EXPECT_THROW(run({"interval-quality", "--frobnicate", "1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"interval-quality", "--instances", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"interval-quality", "--sa-steps", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"interval-quality", "--seed", "-1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"interval-quality", "positional"}, out),
               std::invalid_argument);
}

TEST(CliScenarios, DynamicAlphaRejectsBadFlags) {
  std::ostringstream out;
  EXPECT_THROW(run({"dynamic-alpha", "--frobnicate", "1"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--pes", "2"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--seeds", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--iterations", "4"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--alpha", "1.5"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--rocks", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--pes", "16", "--rocks", "8"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "--instances", "0"}, out),
               std::invalid_argument);
  EXPECT_THROW(run({"dynamic-alpha", "positional"}, out),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Randomized-parameter smoke: quickstart accepts anything the shared
// generator emits (ties the CLI vocabulary to the test-wide param factory)
// ---------------------------------------------------------------------------
TEST(CliScenarios, QuickstartAcceptsRandomValidModelParams) {
  support::Rng rng(31);
  for (int i = 0; i < 5; ++i) {
    const core::ModelParams p = ulba::testing::random_model_params(rng);
    const auto num = [](double v) {
      std::ostringstream os;
      os.precision(17);
      os << v;
      return os.str();
    };
    const std::string text = run_cli(
        {"quickstart", "--P", std::to_string(p.P), "--N",
         std::to_string(p.N), "--gamma", std::to_string(p.gamma), "--w0",
         num(p.w0), "--a", num(p.a), "--m", num(p.m), "--alpha",
         num(p.alpha), "--omega", num(p.omega), "--lb-cost",
         num(p.lb_cost)});
    EXPECT_NE(text.find("anticipation gain"), std::string::npos);
  }
}

}  // namespace
}  // namespace ulba::cli
