// Schedule optimizers: exhaustive ground truth, exact DP, simulated
// annealing, and the optimality chain DP ≤ SA ≤ σ⁺ ≤ naive periodic.
#include <gtest/gtest.h>

#include <cmath>

#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "opt/annealing.hpp"
#include "opt/dp_optimal.hpp"
#include "opt/exhaustive.hpp"
#include "opt/schedule_problem.hpp"
#include "test_helpers.hpp"

namespace ulba::opt {
namespace {

using core::ModelParams;
using core::Schedule;
using ulba::testing::paper_scale_params;
using ulba::testing::tiny_params;

ModelParams small_params(std::int64_t gamma) {
  ModelParams p = tiny_params();
  p.gamma = gamma;
  return p;
}

TEST(Exhaustive, FindsKnownOptimumOnTrivialCase) {
  // With an enormous LB cost, never balancing is optimal.
  ModelParams p = small_params(8);
  p.lb_cost = 1e12;
  const auto res = exhaustive_schedule(p, CostModel::kStandard);
  EXPECT_TRUE(res.schedule.steps().empty());
  EXPECT_EQ(res.evaluated, 1u << 7);
}

TEST(Exhaustive, FreeLbMeansBalanceEveryIteration) {
  ModelParams p = small_params(8);
  p.lb_cost = 0.0;
  const auto res = exhaustive_schedule(p, CostModel::kStandard);
  EXPECT_EQ(res.schedule.lb_count(), 7u);  // every iteration in [1, 7]
}

TEST(Exhaustive, RejectsLargeHorizon) {
  EXPECT_THROW((void)exhaustive_schedule(small_params(23),
                                         CostModel::kStandard),
               std::invalid_argument);
}

TEST(DpOptimal, MatchesExhaustiveStandard) {
  for (std::int64_t gamma : {4, 8, 12, 15}) {
    const ModelParams p = small_params(gamma);
    const auto ex = exhaustive_schedule(p, CostModel::kStandard);
    const auto dp = optimal_schedule(p, CostModel::kStandard);
    EXPECT_NEAR(dp.total_seconds, ex.total_seconds,
                1e-9 * std::max(1.0, ex.total_seconds))
        << "gamma = " << gamma;
    EXPECT_EQ(dp.schedule.steps(), ex.schedule.steps());
  }
}

TEST(DpOptimal, MatchesExhaustiveUlba) {
  for (std::int64_t gamma : {6, 10, 14}) {
    ModelParams p = small_params(gamma);
    p.alpha = 0.5;
    const auto ex = exhaustive_schedule(p, CostModel::kUlba);
    const auto dp = optimal_schedule(p, CostModel::kUlba);
    EXPECT_NEAR(dp.total_seconds, ex.total_seconds,
                1e-9 * std::max(1.0, ex.total_seconds))
        << "gamma = " << gamma;
  }
}

TEST(DpOptimal, NeverWorseThanAnyHandCraftedSchedule) {
  const ModelParams p = paper_scale_params();
  const auto dp = optimal_schedule(p, CostModel::kUlba);
  for (const Schedule& s :
       {Schedule::empty(p.gamma), core::sigma_plus_schedule(p),
        core::periodic_schedule(p.gamma, 10),
        core::periodic_schedule(p.gamma, 33)}) {
    EXPECT_LE(dp.total_seconds,
              core::evaluate_ulba(p, s).total_seconds * (1.0 + 1e-12));
  }
}

TEST(DpOptimal, UlbaOptimumNotWorseThanStandardOptimum) {
  // ULBA can always set α's effect to naught by balancing often; with the
  // same schedule options it is at least as good in the model whenever the
  // optimum uses intervals longer than σ⁻ … here we simply check both
  // optima exist and ULBA's is within a sane band.
  const ModelParams p = paper_scale_params();
  const auto dp_std = optimal_schedule(p, CostModel::kStandard);
  const auto dp_ulba = optimal_schedule(p, CostModel::kUlba);
  EXPECT_GT(dp_std.total_seconds, 0.0);
  EXPECT_GT(dp_ulba.total_seconds, 0.0);
  EXPECT_LT(dp_ulba.total_seconds, dp_std.total_seconds);
}

TEST(ScheduleProblem, EnergyEqualsEvaluator) {
  const ModelParams p = paper_scale_params();
  const ScheduleProblem prob(p, CostModel::kUlba);
  const Schedule s(p.gamma, {20, 50});
  EXPECT_DOUBLE_EQ(prob.energy(prob.state_from(s)),
                   core::evaluate_ulba(p, s).total_seconds);
}

TEST(ScheduleProblem, ProposeFlipsExactlyOneBitAndRevertUndoesIt) {
  const ModelParams p = paper_scale_params();
  const ScheduleProblem prob(p, CostModel::kStandard);
  auto state = prob.empty_state();
  support::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto before = state;
    const auto move = prob.propose(state, rng);
    int diff = 0;
    for (std::size_t j = 0; j < state.size(); ++j)
      if (state[j] != before[j]) ++diff;
    EXPECT_EQ(diff, 1);
    EXPECT_NE(move, 0u);  // iteration 0 is never flipped
    prob.revert(state, move);
    EXPECT_EQ(state, before);
  }
}

TEST(Annealing, ReachesExhaustiveOptimumOnTinyInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ModelParams p = small_params(10);
    p.alpha = 0.5;
    const auto ex = exhaustive_schedule(p, CostModel::kUlba);
    support::Rng rng(seed);
    const auto sa = anneal_schedule(p, CostModel::kUlba, rng, 8000);
    EXPECT_NEAR(sa.total_seconds, ex.total_seconds,
                1e-6 * ex.total_seconds)
        << "seed = " << seed;
  }
}

TEST(Annealing, PaperScaleWithinTwoPercentOfDp) {
  const ModelParams p = paper_scale_params();
  const auto dp = optimal_schedule(p, CostModel::kUlba);
  support::Rng rng(7);
  const auto sa = anneal_schedule(p, CostModel::kUlba, rng, 30000);
  EXPECT_GE(sa.total_seconds, dp.total_seconds * (1.0 - 1e-12));
  EXPECT_LE(sa.total_seconds, dp.total_seconds * 1.02);
}

TEST(Annealing, DeterministicForFixedSeed) {
  const ModelParams p = paper_scale_params();
  support::Rng a(11), b(11);
  const auto ra = anneal_schedule(p, CostModel::kUlba, a, 5000);
  const auto rb = anneal_schedule(p, CostModel::kUlba, b, 5000);
  EXPECT_DOUBLE_EQ(ra.total_seconds, rb.total_seconds);
  EXPECT_EQ(ra.schedule.steps(), rb.schedule.steps());
}

TEST(OptimalityChain, DpLeqSaLeqSigmaPlus) {
  // The §III-B validation, with the exact optimum added: the σ⁺ heuristic
  // must be close to (and never better than) the DP optimum.
  const ModelParams p = paper_scale_params();
  const auto dp = optimal_schedule(p, CostModel::kUlba);
  support::Rng rng(13);
  const auto sa = anneal_schedule(p, CostModel::kUlba, rng, 30000);
  const double t_sigma =
      core::evaluate_ulba(p, core::sigma_plus_schedule(p)).total_seconds;

  EXPECT_LE(dp.total_seconds, sa.total_seconds * (1.0 + 1e-12));
  EXPECT_LE(sa.total_seconds, t_sigma * (1.0 + 1e-12));
  // …and the heuristic is a good approximation (paper: within a few %).
  EXPECT_LE(t_sigma, dp.total_seconds * 1.10);
}

class AnnealerSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnealerSeedSweep, NeverBeatsDpAndStaysClose) {
  const ModelParams p = paper_scale_params();
  const auto dp = optimal_schedule(p, CostModel::kUlba);
  support::Rng rng(GetParam());
  const auto sa = anneal_schedule(p, CostModel::kUlba, rng, 15000);
  EXPECT_GE(sa.total_seconds, dp.total_seconds * (1.0 - 1e-12));
  EXPECT_LE(sa.total_seconds, dp.total_seconds * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealerSeedSweep,
                         ::testing::Values(17u, 23u, 31u, 47u));

}  // namespace
}  // namespace ulba::opt
