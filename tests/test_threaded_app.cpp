// Cross-substrate validation: the erosion application on real threads.
// Timings are genuinely measured, so tests assert structure and
// determinism-of-dynamics rather than exact durations.
#include "erosion/threaded_app.hpp"

#include <gtest/gtest.h>

namespace ulba::erosion {
namespace {

ThreadedConfig quick_config(Method method, std::uint64_t seed = 5) {
  ThreadedConfig c;
  c.pe_count = 4;
  c.columns_per_pe = 64;
  c.rows = 64;
  c.rock_radius = 16;
  c.strong_rock_count = 1;
  c.iterations = 30;
  c.method = method;
  c.alpha = 0.4;
  c.seed = seed;
  c.ns_scale = 2.0;  // keep each test run well under a second
  return c;
}

TEST(ThreadedApp, ValidatesConfig) {
  ThreadedConfig c = quick_config(Method::kStandard);
  c.pe_count = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick_config(Method::kStandard);
  c.rock_radius = 40;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = quick_config(Method::kStandard);
  c.alpha = 2.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ThreadedApp, RunsToCompletionWithFullTrace) {
  const auto r = run_threaded(quick_config(Method::kStandard));
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_EQ(r.iteration_seconds.size(), 30u);
  for (double s : r.iteration_seconds) EXPECT_GE(s, 0.0);
  EXPECT_GT(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.eroded_cells, 0);
}

TEST(ThreadedApp, ErosionDynamicsAreSeedDeterministicAcrossMethods) {
  // Wall-clock varies run to run, but the *dynamics* (eroded cells) depend
  // only on the seed — LB decisions cannot perturb them.
  const auto std_run = run_threaded(quick_config(Method::kStandard));
  const auto ulba_run = run_threaded(quick_config(Method::kUlba));
  EXPECT_EQ(std_run.eroded_cells, ulba_run.eroded_cells);
  const auto other_seed = run_threaded(quick_config(Method::kUlba, 6));
  EXPECT_NE(std_run.eroded_cells, other_seed.eroded_cells);
}

TEST(ThreadedApp, TriggerFiresUnderImbalance) {
  // One strong rock among 4 ranks: the degradation trigger should invoke the
  // balancer within 30 iterations. Real wall-clock measurements are noisy
  // when the test host is oversubscribed (the whole suite runs in
  // parallel), so accept success on any of a few seeds.
  bool fired = false;
  for (std::uint64_t seed : {5u, 6u, 7u, 8u}) {
    ThreadedConfig c = quick_config(Method::kStandard, seed);
    c.ns_scale = 6.0;  // longer iterations → better signal-to-noise
    const auto r = run_threaded(c);
    EXPECT_EQ(static_cast<std::size_t>(r.lb_count), r.lb_iterations.size());
    for (std::int64_t it : r.lb_iterations) {
      EXPECT_GE(it, 0);
      EXPECT_LT(it, 30);
    }
    if (r.lb_count >= 1) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired) << "trigger never fired on any seed";
}

TEST(ThreadedApp, UlbaVariantAlsoCompletes) {
  const auto r = run_threaded(quick_config(Method::kUlba));
  EXPECT_EQ(r.iteration_seconds.size(), 30u);
  EXPECT_GE(r.lb_count, 0);
}

TEST(ThreadedApp, ScalesToMoreRanks) {
  ThreadedConfig c = quick_config(Method::kUlba);
  c.pe_count = 8;
  const auto r = run_threaded(c);
  EXPECT_EQ(r.iteration_seconds.size(), 30u);
  EXPECT_GT(r.eroded_cells, 0);
}

}  // namespace
}  // namespace ulba::erosion
