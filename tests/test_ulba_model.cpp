// Eq. (5)–(8): post-LB shares, σ⁻, the two-branch iteration time, and the
// ULBA interval closed form.
#include "core/ulba_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/standard_model.hpp"
#include "test_helpers.hpp"

namespace ulba::core {
namespace {

using ulba::testing::paper_scale_params;
using ulba::testing::tiny_params;

TEST(UlbaModel, PostLbSharesEq6) {
  const ModelParams p = tiny_params();  // share(0) = 100, N=2, P−N=8
  const PostLbShares s = post_lb_shares(p, 0, 0.5);
  EXPECT_DOUBLE_EQ(s.overloading, 50.0);          // (1−α)·100
  EXPECT_DOUBLE_EQ(s.non_overloading, 112.5);     // (1+0.5·2/8)·100
}

TEST(UlbaModel, SharesConserveTotalWorkload) {
  // N·W* + (P−N)·W == Wtot — the red area equals the blue area in Figure 1.
  for (double alpha : {0.1, 0.25, 0.5, 0.9, 1.0}) {
    const ModelParams p = paper_scale_params();
    const PostLbShares s = post_lb_shares(p, 7, alpha);
    const double total = static_cast<double>(p.N) * s.overloading +
                         static_cast<double>(p.P - p.N) * s.non_overloading;
    EXPECT_NEAR(total, p.wtot(7), 1e-6 * p.wtot(7)) << "alpha = " << alpha;
  }
}

TEST(UlbaModel, AlphaZeroSharesAreEven) {
  const ModelParams p = tiny_params();
  const PostLbShares s = post_lb_shares(p, 0, 0.0);
  EXPECT_DOUBLE_EQ(s.overloading, 100.0);
  EXPECT_DOUBLE_EQ(s.non_overloading, 100.0);
}

TEST(UlbaModel, SigmaMinusEq8HandChecked) {
  const ModelParams p = tiny_params();
  // σ⁻(0) = ⌊(1 + 2/8)·0.5·1000/(15·10)⌋ = ⌊1.25·500/150⌋ = ⌊4.1667⌋ = 4
  EXPECT_EQ(sigma_minus(p, 0, 0.5), 4);
}

TEST(UlbaModel, SigmaMinusZeroWhenAlphaZero) {
  EXPECT_EQ(sigma_minus(tiny_params(), 0, 0.0), 0);
}

TEST(UlbaModel, SigmaMinusGrowsWithAlphaAndLbIteration) {
  const ModelParams p = paper_scale_params();
  EXPECT_LE(sigma_minus(p, 0, 0.2), sigma_minus(p, 0, 0.8));
  EXPECT_LE(sigma_minus(p, 0, 0.5), sigma_minus(p, 50, 0.5));
}

TEST(UlbaModel, SigmaMinusIsTheCrossingPoint) {
  // Defining property (Eq. (7)): at t = σ⁻ the overloading PEs have not yet
  // passed the others; at t = σ⁻ + 1 they have (up to the floor).
  const ModelParams p = paper_scale_params();
  for (double alpha : {0.2, 0.5, 0.8}) {
    const std::int64_t sm = sigma_minus(p, 0, alpha);
    const PostLbShares s = post_lb_shares(p, 0, alpha);
    const auto overload_load = [&](std::int64_t t) {
      return s.overloading + (p.m + p.a) * static_cast<double>(t);
    };
    const auto other_load = [&](std::int64_t t) {
      return s.non_overloading + p.a * static_cast<double>(t);
    };
    EXPECT_LE(overload_load(sm), other_load(sm) + 1e-6 * other_load(sm));
    EXPECT_GE(overload_load(sm + 1), other_load(sm + 1) * (1.0 - 1e-12));
  }
}

TEST(UlbaModel, SigmaMinusInfiniteWhenNoGrowth) {
  ModelParams p = tiny_params();
  p.m = 0.0;
  EXPECT_GT(sigma_minus(p, 0, 0.5), std::int64_t{1} << 40);
}

TEST(UlbaModel, IterationTimeBranches) {
  const ModelParams p = tiny_params();  // σ⁻(0, α=0.5) = 4
  // Branch 1 (t ≤ 4): non-overloading share 112.5 growing at a = 2.
  EXPECT_DOUBLE_EQ(ulba_iteration_time(p, 0, 0, 0.5), 112.5);
  EXPECT_DOUBLE_EQ(ulba_iteration_time(p, 0, 4, 0.5), 120.5);
  // Branch 2 (t > 4): overloading share 50 growing at m+a = 17.
  EXPECT_DOUBLE_EQ(ulba_iteration_time(p, 0, 5, 0.5), 135.0);
  EXPECT_DOUBLE_EQ(ulba_iteration_time(p, 0, 10, 0.5), 220.0);
}

TEST(UlbaModel, AlphaZeroReducesToStandardModel) {
  const ModelParams p = paper_scale_params();
  for (std::int64_t t : {0, 1, 10, 60}) {
    EXPECT_DOUBLE_EQ(ulba_iteration_time(p, 5, t, 0.0),
                     standard_iteration_time(p, 5, t));
  }
  EXPECT_DOUBLE_EQ(ulba_interval_compute_time(p, 0, 80, 0.0),
                   standard_interval_compute_time(p, 0, 80));
}

TEST(UlbaModel, RightAfterLbUlbaIterationIsCostlierThanStandard) {
  // The underloading overhead: at t = 0 the non-overloading PEs carry more
  // than the even share, so the first iterations are slower than standard's.
  const ModelParams p = paper_scale_params();
  EXPECT_GT(ulba_iteration_time(p, 0, 0, 0.5),
            standard_iteration_time(p, 0, 0));
}

TEST(UlbaModel, LateIterationsAreCheaperThanStandard) {
  // …but past σ⁻ the overloading PEs restart from (1−α) of the share, so
  // late iterations of a long interval are cheaper than standard's.
  const ModelParams p = paper_scale_params();
  const std::int64_t sm = sigma_minus(p, 0, 0.5);
  const std::int64_t late = sm + 20;
  EXPECT_LT(ulba_iteration_time(p, 0, late, 0.5),
            standard_iteration_time(p, 0, late));
}

TEST(UlbaModel, ClosedFormMatchesBruteForce) {
  const ModelParams p = tiny_params();
  for (double alpha : {0.0, 0.3, 0.5, 1.0}) {
    for (std::int64_t from : {0, 2}) {
      for (std::int64_t len : {1, 3, 4, 5, 6, 15}) {
        double brute = 0.0;
        for (std::int64_t t = 0; t < len; ++t)
          brute += ulba_iteration_time(p, from, t, alpha);
        EXPECT_NEAR(ulba_interval_compute_time(p, from, from + len, alpha),
                    brute, 1e-9 * std::max(1.0, brute))
            << "alpha=" << alpha << " from=" << from << " len=" << len;
      }
    }
  }
}

TEST(UlbaModel, ClosedFormCoversIntervalShorterThanSigmaMinus) {
  // When the interval ends before σ⁻ only branch 1 contributes.
  const ModelParams p = tiny_params();  // σ⁻ = 4 at α = 0.5
  double brute = 0.0;
  for (std::int64_t t = 0; t < 3; ++t)
    brute += ulba_iteration_time(p, 0, t, 0.5);
  EXPECT_NEAR(ulba_interval_compute_time(p, 0, 3, 0.5), brute, 1e-9);
}

TEST(UlbaModel, NoGrowthIntervalStaysInBranchOne) {
  ModelParams p = tiny_params();
  p.m = 0.0;  // nobody overloads; σ⁻ = ∞
  double brute = 0.0;
  for (std::int64_t t = 0; t < 10; ++t)
    brute += ulba_iteration_time(p, 0, t, 0.5);
  EXPECT_NEAR(ulba_interval_compute_time(p, 0, 10, 0.5), brute, 1e-9);
}

TEST(UlbaModel, UnderloadingRequiresSomeoneToAbsorb) {
  ModelParams p = tiny_params();
  p.N = 0;
  EXPECT_THROW((void)post_lb_shares(p, 0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sigma_minus(p, 0, 0.5), std::invalid_argument);
}

class UlbaClosedFormSweep
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(UlbaClosedFormSweep, MatchesBruteForcePaperScale) {
  const auto [alpha, len] = GetParam();
  const ModelParams p = paper_scale_params();
  double brute = 0.0;
  for (std::int64_t t = 0; t < len; ++t)
    brute += ulba_iteration_time(p, 11, t, alpha);
  EXPECT_NEAR(ulba_interval_compute_time(p, 11, 11 + len, alpha), brute,
              1e-9 * std::max(1.0, brute));
}

INSTANTIATE_TEST_SUITE_P(
    AlphaLength, UlbaClosedFormSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.4, 0.7, 1.0),
                       ::testing::Values<std::int64_t>(1, 5, 23, 89)));

}  // namespace
}  // namespace ulba::core
