// Histogram, box plot, table, and text-plot presentation utilities.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/boxplot.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text_plot.hpp"

namespace ulba::support {
namespace {

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  ASSERT_EQ(h.bin_count(), 5u);
  h.add(0.5);   // bin 0
  h.add(2.5);   // bin 1
  h.add(2.6);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ProbabilitiesSumToOne) {
  Histogram h(-1.0, 1.0, 7);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(-1.0, 1.0));
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.probability(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, FromDataSpansRange) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 8.0};
  const Histogram h = Histogram::from_data(xs, 7);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(6), 8.0);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, FromDataDegenerateSample) {
  const std::vector<double> xs{5.0, 5.0};
  const Histogram h = Histogram::from_data(xs, 3);
  EXPECT_EQ(h.total(), 2u);  // does not throw, widened range
}

TEST(Histogram, RenderContainsOneRowPerBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  const std::string r = h.render(20);
  EXPECT_EQ(std::count(r.begin(), r.end(), '\n'), 4);
  EXPECT_NE(r.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  Histogram h(0.0, 1.0, 3);
  EXPECT_THROW((void)h.count(3), std::invalid_argument);
}

TEST(BoxPlot, KnownQuartiles) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const BoxPlot b = box_plot(xs);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxPlot, DetectsOutliers) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(10.0 + 0.1 * i);
  xs.push_back(1000.0);  // far outlier
  const BoxPlot b = box_plot(xs);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 1000.0);
  EXPECT_LT(b.whisker_hi, 1000.0);
}

TEST(BoxPlot, ConstantSample) {
  const std::vector<double> xs{7.0, 7.0, 7.0, 7.0};
  const BoxPlot b = box_plot(xs);
  EXPECT_DOUBLE_EQ(b.q1, 7.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 7.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 7.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxPlot, RenderMarksBoxAndMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::string line = render_box(box_plot(xs), 0.0, 6.0, 60);
  EXPECT_EQ(line.size(), 60u);
  EXPECT_NE(line.find('M'), std::string::npos);
  EXPECT_NE(line.find('['), std::string::npos);
  EXPECT_NE(line.find(']'), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "0.4"});
  t.add_row({"very-long-name", "16%"});
  const std::string r = t.render();
  EXPECT_NE(r.find("name"), std::string::npos);
  EXPECT_NE(r.find("very-long-name"), std::string::npos);
  EXPECT_NE(r.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumAndPctFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.163, 1), "16.3%");
}

TEST(TextPlot, SeriesPlotHasLegendAndAxis) {
  std::vector<Series> series;
  series.push_back({"usage", {0.2, 0.5, 0.9, 0.7}});
  series.push_back({"other", {0.9, 0.8, 0.1, 0.3}});
  const std::string p = plot_series(series, 40, 10);
  EXPECT_NE(p.find("legend:"), std::string::npos);
  EXPECT_NE(p.find("usage"), std::string::npos);
  EXPECT_NE(p.find('*'), std::string::npos);
  EXPECT_NE(p.find('+'), std::string::npos);
}

TEST(TextPlot, SparklineLengthMatches) {
  const std::vector<double> y{0.0, 0.5, 1.0, 0.5};
  EXPECT_EQ(sparkline(y).size(), 4u);
  EXPECT_TRUE(sparkline({}).empty());
}

TEST(TextPlot, BarChartOneRowPerBar) {
  const std::vector<std::pair<std::string, double>> bars{
      {"std", 120.0}, {"ulba", 100.0}};
  const std::string c = bar_chart(bars, 30);
  EXPECT_EQ(std::count(c.begin(), c.end(), '\n'), 2);
  EXPECT_THROW(
      (void)bar_chart(std::vector<std::pair<std::string, double>>{
          {"neg", -1.0}},
                      10),
      std::invalid_argument);
}

}  // namespace
}  // namespace ulba::support
