// support::CounterRng and the counter-kernel fast path.
//
// Three layers of guarantees, weakest to strongest:
//   1. The Philox4x32-10 block function matches the published Random123
//      known-answer vectors — the implementation is THE Philox, not a
//      lookalike (any future "optimization" that changes a round shows up
//      here first).
//   2. Draws are position-addressed: the value at (disc, iteration, cell)
//      is independent of evaluation order, repetition, thread, and of which
//      other draws are taken at all.
//   3. erosion::counter_decide_apply produces bit-identical domains for
//      every pool size and for every partition of the disc set — the
//      property the app-level threads/shards/ranks invariance rests on —
//      while diverging from the fork-path trajectory (the two RNG kinds are
//      different, deliberately).
#include "support/counter_rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "erosion/counter_kernel.hpp"
#include "erosion/domain.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "test_helpers.hpp"

namespace ulba::support {
namespace {

// Random123 kat_vectors, philox4x32x10 rows: counter/key -> output.
TEST(CounterRng, PhiloxKnownAnswers) {
  using Block = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;
  EXPECT_EQ(CounterRng::philox4x32({0u, 0u, 0u, 0u}, Key{0u, 0u}),
            (Block{0x6627e8d5u, 0xe169c58du, 0xbc57ac4cu, 0x9b00dbd8u}));
  EXPECT_EQ(CounterRng::philox4x32({0xffffffffu, 0xffffffffu, 0xffffffffu,
                                    0xffffffffu},
                                   Key{0xffffffffu, 0xffffffffu}),
            (Block{0x408f276du, 0x41c83b0eu, 0xa20bc7c6u, 0x6d5451fdu}));
  EXPECT_EQ(CounterRng::philox4x32({0x243f6a88u, 0x85a308d3u, 0x13198a2eu,
                                    0x03707344u},
                                   Key{0xa4093822u, 0x299f31d0u}),
            (Block{0xd16cfe09u, 0x94fdccebu, 0x5001e420u, 0x24126ea1u}));
}

TEST(CounterRng, KeyDerivationMatchesRngFork) {
  // Both stream-splitting facilities must keep using the same SplitMix64
  // recipe, so per-disc streams are decorrelated identically in both kinds.
  for (const std::uint64_t seed : {0ull, 11ull, 0xdeadbeefcafeull}) {
    for (const std::uint64_t stream : {0ull, 1ull, 57ull}) {
      const std::uint64_t forked = Rng(seed).fork(stream).seed();
      const auto key = CounterRng(seed, stream).key();
      EXPECT_EQ(key[0], static_cast<std::uint32_t>(forked));
      EXPECT_EQ(key[1], static_cast<std::uint32_t>(forked >> 32));
    }
  }
}

TEST(CounterRng, DrawsArePositionAddressedNotOrderDependent) {
  const CounterRng rng(42, 7);
  // Reference: row-major evaluation of a grid of positions.
  std::vector<std::uint64_t> reference;
  for (std::uint64_t hi = 0; hi < 8; ++hi)
    for (std::uint64_t lo = 0; lo < 64; ++lo)
      reference.push_back(rng.draw(hi, lo));

  // Same positions, shuffled evaluation order, some evaluated repeatedly,
  // on a fresh instance with the same (seed, stream).
  const CounterRng again(42, 7);
  std::vector<std::size_t> order(reference.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng shuffler(3);
  std::shuffle(order.begin(), order.end(), shuffler);
  for (const std::size_t i : order) {
    const std::uint64_t hi = i / 64, lo = i % 64;
    (void)again.draw(hi ^ 5, lo + 1000);  // unrelated interleaved draws
    EXPECT_EQ(reference[i], again.draw(hi, lo)) << "position " << i;
    EXPECT_EQ(reference[i], again.draw(hi, lo)) << "repeated " << i;
  }

  // Distinct positions and distinct streams actually differ.
  EXPECT_NE(rng.draw(0, 0), rng.draw(0, 1));
  EXPECT_NE(rng.draw(0, 0), rng.draw(1, 0));
  EXPECT_NE(rng.draw(0, 0), CounterRng(42, 8).draw(0, 0));
  EXPECT_NE(rng.draw(0, 0), CounterRng(43, 7).draw(0, 0));
}

TEST(CounterRng, Uniform01BoundsAndMean) {
  const CounterRng rng(9, 0);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01(0, static_cast<std::uint64_t>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  // Bernoulli edge cases at any position: p = 0 never, p = 1 always.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0, 1, static_cast<std::uint64_t>(i)));
    EXPECT_TRUE(rng.bernoulli(1.0, 1, static_cast<std::uint64_t>(i)));
  }
}

}  // namespace
}  // namespace ulba::support

namespace ulba::erosion {
namespace {

/// Full-domain counter trajectory snapshot after `steps` iterations.
struct CounterSnapshot {
  std::vector<double> weights;
  double total = 0.0;
  std::int64_t eroded = 0;
  std::int64_t rock_remaining = 0;
  std::int64_t frontier = 0;
};

CounterSnapshot counter_snapshot(const DomainConfig& cfg, std::uint64_t seed,
                                 int steps, support::ThreadPool* pool) {
  ErosionDomain domain(cfg);
  for (int s = 0; s < steps; ++s)
    (void)domain.step_counter(seed, s, pool);
  CounterSnapshot snap;
  snap.weights.assign(domain.column_weights().begin(),
                      domain.column_weights().end());
  snap.total = domain.total_workload();
  snap.eroded = domain.eroded_cells();
  snap.rock_remaining = domain.rock_cells_remaining();
  snap.frontier = domain.frontier_size();
  return snap;
}

void expect_snapshots_equal(const CounterSnapshot& a, const CounterSnapshot& b,
                            const std::string& what) {
  EXPECT_EQ(a.eroded, b.eroded) << what;
  EXPECT_EQ(a.rock_remaining, b.rock_remaining) << what;
  EXPECT_EQ(a.frontier, b.frontier) << what;
  EXPECT_EQ(a.total, b.total) << what;
  ASSERT_EQ(a.weights.size(), b.weights.size()) << what;
  for (std::size_t x = 0; x < a.weights.size(); ++x)
    ASSERT_EQ(a.weights[x], b.weights[x]) << what << " — column " << x;
}

TEST(CounterKernel, BitIdenticalForEveryPoolSize) {
  constexpr int kSteps = 16;
  support::Rng config_rng(314);
  for (int trial = 0; trial < 3; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 60 + static_cast<std::uint64_t>(trial);
    const CounterSnapshot ref = counter_snapshot(cfg, seed, kSteps, nullptr);
    for (const std::size_t threads : {1u, 2u, 5u, 8u}) {
      support::ThreadPool pool(threads);
      const CounterSnapshot got = counter_snapshot(cfg, seed, kSteps, &pool);
      expect_snapshots_equal(ref, got,
                             "trial " + std::to_string(trial) + ", " +
                                 std::to_string(threads) + " threads");
    }
  }
}

TEST(CounterKernel, SubsetPartitioningCannotChangeTheDraws) {
  // Stepping disc subsets through separate kernel calls (a shard's or
  // rank's view of the domain) must reproduce the full-set pass exactly:
  // the draw at (disc, iteration, cell) does not know which call evaluated
  // it, as long as the GLOBAL disc ids are passed through. This is the
  // micro-version of the ranks/shards invariance.
  support::Rng config_rng(1618);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  const std::uint64_t seed = 123;
  constexpr int kSteps = 10;

  std::vector<DiscState> whole;
  for (const RockDisc& d : cfg.discs) whole.push_back(build_disc_state(d));
  std::vector<DiscState> split = whole;
  const std::size_t n = whole.size();
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::size_t cut = n / 3;

  CounterWorkspace ws_whole, ws_front, ws_back;
  std::int64_t eroded_whole = 0, eroded_split = 0;
  for (int s = 0; s < kSteps; ++s) {
    eroded_whole += counter_decide_apply(whole, ids, seed, s, nullptr,
                                         ws_whole);
    // Two kernel calls over an uneven split of the disc set, back subset
    // first — neither the grouping nor the call order may matter.
    eroded_split += counter_decide_apply(
        std::span<DiscState>(split).subspan(cut),
        std::span<const std::size_t>(ids).subspan(cut), seed, s, nullptr,
        ws_back);
    eroded_split += counter_decide_apply(
        std::span<DiscState>(split).first(cut),
        std::span<const std::size_t>(ids).first(cut), seed, s, nullptr,
        ws_front);
  }

  EXPECT_GT(eroded_whole, 0) << "the trial domain never eroded anything";
  EXPECT_EQ(eroded_whole, eroded_split);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(whole[k].rock_remaining, split[k].rock_remaining) << "disc " << k;
    EXPECT_EQ(whole[k].frontier, split[k].frontier) << "disc " << k;
    ASSERT_EQ(whole[k].cells, split[k].cells) << "disc " << k;
  }
}

TEST(CounterKernel, CounterAndForkTrajectoriesDiverge) {
  // The counter kind is a DIFFERENT stream, not a reimplementation of the
  // fork stream: same seed, same domain, different trajectories. (If these
  // ever coincided, one of the two golden sets would be redundant — and a
  // kernel bug silently replaying fork draws would go unnoticed.)
  // A fixed moderate probability: a random config can draw erosion_prob
  // near 1, where both kinds erode everything and legitimately coincide.
  DomainConfig cfg;
  cfg.rows = 64;
  cfg.columns = 96;
  cfg.discs = {RockDisc{32, 32, 12, 0.15}, RockDisc{64, 28, 10, 0.15}};
  cfg.validate();
  const std::uint64_t seed = 4;
  constexpr int kSteps = 12;

  ErosionDomain fork_domain(cfg);
  support::Rng rng(seed);
  for (int s = 0; s < kSteps; ++s) (void)fork_domain.step(rng);

  ErosionDomain counter_domain(cfg);
  for (int s = 0; s < kSteps; ++s) (void)counter_domain.step_counter(seed, s);

  // Total eroded counts can coincide by chance; the per-column weight
  // profile cannot (it pins down WHICH cells went).
  const std::span<const double> fw = fork_domain.column_weights();
  const std::span<const double> cw = counter_domain.column_weights();
  ASSERT_EQ(fw.size(), cw.size());
  EXPECT_FALSE(std::equal(fw.begin(), fw.end(), cw.begin()))
      << "fork and counter kinds produced the same trajectory — the "
         "counter kernel is probably replaying the fork stream";
}

TEST(CounterKernel, RepeatingAnIterationRepeatsItsDraws) {
  // The iteration number is part of the address: two domains stepped with
  // the same (seed, iteration) sequence agree, and reusing an iteration
  // number replays its decisions (the resume/checkpoint property).
  support::Rng config_rng(99);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  ErosionDomain a(cfg);
  ErosionDomain b(cfg);
  const std::int64_t ea = a.step_counter(8, 0);
  const std::int64_t eb = b.step_counter(8, 0);
  EXPECT_EQ(ea, eb);
  EXPECT_EQ(a.frontier_size(), b.frontier_size());
  // Different iteration numbers address different draws (overwhelmingly).
  ErosionDomain c(cfg);
  ErosionDomain d(cfg);
  std::int64_t diverged = 0;
  for (std::int64_t s = 0; s < 6; ++s) {
    const std::int64_t ec = c.step_counter(8, s);
    const std::int64_t ed = d.step_counter(8, s + 100);
    if (ec != ed) ++diverged;
  }
  EXPECT_GT(diverged, 0) << "iteration is not reaching the draw addresses";
}

}  // namespace
}  // namespace ulba::erosion
