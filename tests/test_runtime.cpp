// The thread-backed message-passing runtime: point-to-point semantics,
// collectives, and SPMD error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "runtime/spmd.hpp"

namespace ulba::runtime {
namespace {

TEST(Mailbox, FifoPerChannel) {
  Mailbox box;
  for (int i = 0; i < 5; ++i)
    box.push(Message{0, 7, {static_cast<std::byte>(i)}});
  for (int i = 0; i < 5; ++i) {
    const Message m = box.pop(0, 7);
    EXPECT_EQ(m.payload[0], static_cast<std::byte>(i));
  }
}

TEST(Mailbox, MatchingSkipsNonMatching) {
  Mailbox box;
  box.push(Message{0, 1, {std::byte{10}}});
  box.push(Message{0, 2, {std::byte{20}}});
  const Message m = box.pop(0, 2);
  EXPECT_EQ(m.payload[0], std::byte{20});
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, Wildcards) {
  Mailbox box;
  box.push(Message{3, 9, {std::byte{1}}});
  EXPECT_EQ(box.pop(kAnySource, kAnyTag).source, 3);
  Message out;
  EXPECT_FALSE(box.try_pop(kAnySource, kAnyTag, out));
}

TEST(Spmd, RanksSeeCorrectIdentity) {
  std::vector<int> seen(8, -1);
  spmd_run(8, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 8);
    seen[static_cast<std::size_t>(comm.rank())] = comm.rank();
  });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(Spmd, SingleRankWorks) {
  int calls = 0;
  spmd_run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Spmd, ExceptionFromRankPropagates) {
  EXPECT_THROW(
      spmd_run(4,
               [](Comm& comm) {
                 // All ranks throw: no rank blocks on a peer, and the first
                 // error must surface to the caller.
                 throw std::runtime_error("rank failure " +
                                          std::to_string(comm.rank()));
               }),
      std::runtime_error);
}

TEST(Spmd, RejectsBadArguments) {
  EXPECT_THROW(spmd_run(0, [](Comm&) {}), std::invalid_argument);
  EXPECT_THROW(spmd_run(2, nullptr), std::invalid_argument);
}

TEST(PointToPoint, PingPong) {
  spmd_run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, 42);
      EXPECT_EQ(comm.recv<int>(1, 6), 43);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 5), 42);
      comm.send(0, 6, 43);
    }
  });
}

TEST(PointToPoint, VectorPayload) {
  spmd_run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      comm.send_span<double>(1, 0, data);
    } else {
      EXPECT_EQ(comm.recv_vector<double>(0, 0),
                (std::vector<double>{1.5, 2.5, 3.5}));
    }
  });
}

TEST(PointToPoint, AnySourceReceivesFromEveryone) {
  spmd_run(5, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> heard(5, false);
      for (int i = 0; i < 4; ++i) {
        const Message m = comm.recv_message(kAnySource, 3);
        heard[static_cast<std::size_t>(m.source)] = true;
      }
      for (int r = 1; r < 5; ++r) EXPECT_TRUE(heard[static_cast<std::size_t>(r)]);
    } else {
      comm.send(0, 3, comm.rank());
    }
  });
}

TEST(PointToPoint, MessagesBetweenPairsDoNotOvertake) {
  spmd_run(2, [](Comm& comm) {
    constexpr int kCount = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) comm.send(1, 0, i);
    } else {
      for (int i = 0; i < kCount; ++i) EXPECT_EQ(comm.recv<int>(0, 0), i);
    }
  });
}

TEST(PointToPoint, TagValidation) {
  spmd_run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(1, -5, 1), std::invalid_argument);
      EXPECT_THROW(comm.send(9, 0, 1), std::invalid_argument);
      comm.send(1, 0, 7);  // unblock the peer
    } else {
      EXPECT_EQ(comm.recv<int>(0, 0), 7);
    }
  });
}

TEST(Collectives, BarrierSeparatesPhases) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  spmd_run(8, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 8) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Collectives, BroadcastScalarFromEveryRoot) {
  for (int root = 0; root < 4; ++root) {
    spmd_run(4, [root](Comm& comm) {
      int value = comm.rank() == root ? 1234 : -1;
      comm.broadcast(value, root);
      EXPECT_EQ(value, 1234);
    });
  }
}

TEST(Collectives, BroadcastVectorResizesReceivers) {
  spmd_run(4, [](Comm& comm) {
    std::vector<std::int64_t> v;
    if (comm.rank() == 0) v = {5, 6, 7, 8, 9};
    comm.broadcast_vector(v, 0);
    EXPECT_EQ(v, (std::vector<std::int64_t>{5, 6, 7, 8, 9}));
  });
}

TEST(Collectives, GatherCollectsInRankOrder) {
  spmd_run(6, [](Comm& comm) {
    const auto all = comm.gather(comm.rank() * 10, 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(all.size(), 6u);
      for (int r = 0; r < 6; ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Collectives, ScatterDistributesPerRank) {
  spmd_run(4, [](Comm& comm) {
    std::vector<double> chunks;
    if (comm.rank() == 1) chunks = {0.5, 1.5, 2.5, 3.5};
    const double mine = comm.scatter<double>(chunks, 1);
    EXPECT_DOUBLE_EQ(mine, 0.5 + comm.rank());
  });
}

TEST(Collectives, AllgatherEveryoneGetsEverything) {
  spmd_run(5, [](Comm& comm) {
    const auto all = comm.allgather(comm.rank() + 100);
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100);
  });
}

TEST(Collectives, ReduceSumAndAllreduce) {
  spmd_run(6, [](Comm& comm) {
    const int sum = comm.reduce(comm.rank() + 1, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(sum, 21);
    }
    const int total = comm.allreduce(comm.rank() + 1);
    EXPECT_EQ(total, 21);
  });
}

TEST(Collectives, AllreduceMax) {
  spmd_run(4, [](Comm& comm) {
    const double local = static_cast<double>((comm.rank() * 7) % 5);
    const double max = comm.allreduce(
        local, [](double a, double b) { return std::max(a, b); });
    EXPECT_DOUBLE_EQ(max, 4.0);  // ranks give 0,2,4,1
  });
}

TEST(Collectives, RepeatedCollectivesDoNotCrosstalk) {
  spmd_run(4, [](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      int v = comm.rank() == 0 ? round : -1;
      comm.broadcast(v, 0);
      EXPECT_EQ(v, round);
      const int s = comm.allreduce(round);
      EXPECT_EQ(s, 4 * round);
    }
  });
}

TEST(PointToPoint, TryRecvIsNonBlocking) {
  spmd_run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Message out;
      // Rank 1 blocks at the first barrier until we arrive, so nothing can
      // have been sent when this probes (racing the send here was a flake:
      // a fast rank 1 made the probe consume the message early).
      EXPECT_FALSE(comm.try_recv_message(1, 9, out));
      comm.barrier();  // now rank 1 may send…
      comm.barrier();  // …and its send precedes this barrier's completion
      EXPECT_TRUE(comm.try_recv_message(1, 9, out));
      EXPECT_EQ(out.payload.size(), sizeof(int));
    } else {
      comm.barrier();  // rank 0 probed empty
      comm.send(0, 9, 42);
      comm.barrier();  // publish the send to rank 0's second probe
    }
  });
}

TEST(Collectives, AlltoallPersonalizedExchange) {
  spmd_run(4, [](Comm& comm) {
    // Rank r sends r·10 + dest to each dest.
    std::vector<int> outgoing(4);
    for (int d = 0; d < 4; ++d) outgoing[static_cast<std::size_t>(d)] =
        comm.rank() * 10 + d;
    const auto incoming = comm.alltoall<int>(outgoing);
    ASSERT_EQ(incoming.size(), 4u);
    for (int src = 0; src < 4; ++src)
      EXPECT_EQ(incoming[static_cast<std::size_t>(src)],
                src * 10 + comm.rank());
  });
}

TEST(Collectives, AlltoallRejectsWrongCount) {
  spmd_run(2, [](Comm& comm) {
    const std::vector<double> wrong(3, 0.0);
    EXPECT_THROW((void)comm.alltoall<double>(wrong), std::invalid_argument);
    // Re-sync: the throwing call sent nothing (validation precedes sends).
    const std::vector<double> right{1.0, 2.0};
    (void)comm.alltoall<double>(right);
  });
}

TEST(Stress, ManyRanksRandomizedTraffic) {
  spmd_run(16, [](Comm& comm) {
    // Ring exchange with varying payloads; repeated to shake out races.
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int round = 0; round < 30; ++round) {
      std::vector<int> payload(static_cast<std::size_t>(round + 1),
                               comm.rank());
      comm.send_span<int>(next, round, payload);
      const auto got = comm.recv_vector<int>(prev, round);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(round + 1));
      for (int v : got) EXPECT_EQ(v, prev);
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace ulba::runtime
