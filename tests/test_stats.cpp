#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace ulba::support {
namespace {

TEST(Stats, MeanOfConstants) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
}

TEST(Stats, MeanRejectsEmpty) {
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

TEST(Stats, VarianceKnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // population variance 4 ⇒ sample variance 4·8/7
  EXPECT_NEAR(variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev_population(xs), 2.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianDoesNotMutateInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  (void)median(xs);
  EXPECT_EQ(xs, (std::vector<double>{9.0, 1.0, 5.0}));
}

TEST(Stats, QuantileEndpointsAndMidpoint) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  // R type-7: q25 of {1,2,3,4} = 1.75
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
}

TEST(Stats, QuantileRejectsBadFraction) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Stats, QuantileMonotoneInQ) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(-10.0, 10.0));
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(Stats, ZScoreBasics) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // mean 5, population stddev 2
  EXPECT_NEAR(z_score(9.0, xs), 2.0, 1e-12);
  EXPECT_NEAR(z_score(5.0, xs), 0.0, 1e-12);
  EXPECT_NEAR(z_score(1.0, xs), -2.0, 1e-12);
}

TEST(Stats, ZScoreDegenerateSampleIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(z_score(100.0, xs), 0.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(OnlineStats, MatchesBatchOnRandomData) {
  Rng rng(7);
  std::vector<double> xs;
  OnlineStats os;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-3.0, 8.0);
    xs.push_back(v);
    os.add(v);
  }
  EXPECT_NEAR(os.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(os.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(os.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(os.max(), max_of(xs));
  EXPECT_EQ(os.count(), xs.size());
}

TEST(OnlineStats, EmptyIsSafe) {
  const OnlineStats os;
  EXPECT_EQ(os.count(), 0u);
  EXPECT_DOUBLE_EQ(os.mean(), 0.0);
  EXPECT_DOUBLE_EQ(os.variance(), 0.0);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats os;
  os.add(5.0);
  os.reset();
  EXPECT_EQ(os.count(), 0u);
  EXPECT_DOUBLE_EQ(os.mean(), 0.0);
}

TEST(RollingWindow, MedianOverLastThree) {
  RollingWindow w(3);
  w.add(10.0);
  EXPECT_DOUBLE_EQ(w.median(), 10.0);
  w.add(20.0);
  EXPECT_DOUBLE_EQ(w.median(), 15.0);
  w.add(30.0);
  EXPECT_DOUBLE_EQ(w.median(), 20.0);
  w.add(100.0);  // evicts 10 → {20, 30, 100}
  EXPECT_DOUBLE_EQ(w.median(), 30.0);
  w.add(1.0);  // evicts 20 → {30, 100, 1}
  EXPECT_DOUBLE_EQ(w.median(), 30.0);
}

TEST(RollingWindow, CapacityOneTracksLast) {
  RollingWindow w(1);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  EXPECT_EQ(w.size(), 1u);
}

TEST(RollingWindow, RejectsZeroCapacityAndEmptyMedian) {
  EXPECT_THROW(RollingWindow w(0), std::invalid_argument);
  RollingWindow w(3);
  EXPECT_THROW((void)w.median(), std::invalid_argument);
}

TEST(RollingWindow, ClearEmpties) {
  RollingWindow w(3);
  w.add(1.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
}

// Property sweep: quantile(0) == min, quantile(1) == max, median between.
class StatsPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertySweep, QuantileEnvelope) {
  Rng rng(GetParam());
  std::vector<double> xs;
  const int n = 1 + static_cast<int>(rng.index(200));
  for (int i = 0; i < n; ++i) xs.push_back(rng.uniform(-50.0, 50.0));
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), min_of(xs));
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), max_of(xs));
  const double med = median(xs);
  EXPECT_GE(med, min_of(xs));
  EXPECT_LE(med, max_of(xs));
}

TEST_P(StatsPropertySweep, ZScoreOfMeanIsZero) {
  Rng rng(GetParam() + 1000);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(z_score(mean(xs), xs), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ulba::support
