// Partition-invariance property suite for erosion::ShardedDomain.
//
// The load-bearing claim of the sharded stepper: for EVERY (shard count,
// partitioner, thread count) combination, the trajectory is bit-identical to
// the serial shared-stream ErosionDomain::step(rng) — same per-column FLOP
// accounting (exact floating-point equality, commit order preserved), same
// erosion counters, and the same master-RNG post-run state. On top of that,
// every partitioner must produce a complete, disjoint disc cover at
// construction and after every rebalance.
//
// Domain configurations come from the shared randomized factory
// (tests/test_helpers.hpp), so widening the tested envelope is a one-place
// change.
#include "erosion/sharded_domain.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "erosion/domain.hpp"
#include "lb/partitioners.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "test_helpers.hpp"

namespace ulba::erosion {
namespace {

std::shared_ptr<const lb::Partitioner> shared_partitioner(
    const std::string& name) {
  return std::shared_ptr<const lb::Partitioner>(lb::make_partitioner(name));
}

/// Assert shard_discs/shard_of_disc form a complete, disjoint cover of all
/// discs, consistent with the stripe boundaries.
void expect_complete_disjoint_cover(const ShardedDomain& sharded) {
  const std::size_t n = sharded.domain().disc_count();
  std::vector<int> owners(n, 0);
  for (std::int64_t s = 0; s < sharded.shard_count(); ++s) {
    for (const std::size_t disc : sharded.discs_of_shard(s)) {
      ASSERT_LT(disc, n);
      ++owners[disc];
      EXPECT_EQ(sharded.shard_of_disc(disc), s);
      // The owning stripe must hold the disc's center column.
      const std::int64_t cx = sharded.domain().config().discs[disc].cx;
      EXPECT_GE(cx, sharded.boundaries()[static_cast<std::size_t>(s)]);
      EXPECT_LT(cx, sharded.boundaries()[static_cast<std::size_t>(s) + 1]);
    }
  }
  for (std::size_t disc = 0; disc < n; ++disc)
    EXPECT_EQ(owners[disc], 1) << "disc " << disc
                               << " covered by " << owners[disc] << " shards";
}

/// Bitwise comparison of the full observable state of two domains.
void expect_domains_bit_identical(const ErosionDomain& expected,
                                  const ErosionDomain& actual,
                                  const std::string& what) {
  EXPECT_EQ(expected.eroded_cells(), actual.eroded_cells()) << what;
  EXPECT_EQ(expected.rock_cells_remaining(), actual.rock_cells_remaining())
      << what;
  EXPECT_EQ(expected.frontier_size(), actual.frontier_size()) << what;
  // total_ accumulates in commit order — must match EXACTLY, not merely
  // approximately.
  EXPECT_EQ(expected.total_workload(), actual.total_workload()) << what;
  const auto w_exp = expected.column_weights();
  const auto w_act = actual.column_weights();
  ASSERT_EQ(w_exp.size(), w_act.size()) << what;
  for (std::size_t x = 0; x < w_exp.size(); ++x)
    ASSERT_EQ(w_exp[x], w_act[x]) << what << " — column " << x;
}

/// Domain comparison plus the master streams that stepped them (drained a
/// few draws to compare engine positions).
void expect_bit_identical(const ErosionDomain& expected,
                          const ErosionDomain& actual,
                          support::Rng expected_rng, support::Rng actual_rng,
                          const std::string& what) {
  expect_domains_bit_identical(expected, actual, what);
  // The master stream must leave the run in the same state: the serial
  // stepper's data-dependent draws and the sharded stepper's stream split
  // must consume identical engine amounts.
  for (int d = 0; d < 4; ++d)
    ASSERT_EQ(expected_rng(), actual_rng()) << what << " — post-run draw "
                                            << d;
}

TEST(ShardedErosion, PartitionerCoverIsCompleteAndDisjoint) {
  support::Rng rng(2024);
  for (int trial = 0; trial < 6; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(rng);
    for (const std::string& name : lb::partitioner_names()) {
      for (std::int64_t shards = 1; shards <= 8; ++shards) {
        ShardedDomain sharded(cfg, shards, shared_partitioner(name));
        ASSERT_EQ(sharded.shard_count(), shards);
        expect_complete_disjoint_cover(sharded);
      }
    }
  }
}

TEST(ShardedErosion, BitIdenticalToSerialForEveryShardPartitionerPool) {
  constexpr int kSteps = 20;
  support::Rng config_rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(trial);

    // Serial shared-stream reference.
    ErosionDomain reference(cfg);
    support::Rng ref_rng(seed);
    for (int s = 0; s < kSteps; ++s) (void)reference.step(ref_rng);

    for (const std::string& name : lb::partitioner_names()) {
      for (const std::int64_t shards : {1, 2, 3, 5, 8}) {
        for (const std::size_t threads : {1u, 4u}) {
          ShardedDomain sharded(cfg, shards, shared_partitioner(name));
          support::Rng rng(seed);
          support::ThreadPool pool(threads);
          std::int64_t eroded_total = 0;
          for (int s = 0; s < kSteps; ++s)
            eroded_total += sharded.step(rng, pool);
          EXPECT_EQ(eroded_total, reference.eroded_cells());
          expect_bit_identical(
              reference, sharded.domain(), ref_rng, rng,
              "trial " + std::to_string(trial) + ", partitioner " + name +
                  ", shards " + std::to_string(shards) + ", threads " +
                  std::to_string(threads));
        }
      }
    }
  }
}

/// The counter-RNG sweep: one serial unsharded counter trajectory is THE
/// trajectory — every (shard count, partitioner, thread count) combination
/// reproduces it bit for bit, including across mid-run rebalances. Stronger
/// than the fork sweep above: no stream-split discipline is involved, the
/// invariance holds because every draw is position-addressed.
TEST(ShardedErosion, CounterPathBitIdenticalForEveryShardPartitionerPool) {
  constexpr int kSteps = 20;
  support::Rng config_rng(404);
  for (int trial = 0; trial < 3; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(trial);

    // Serial unsharded counter reference.
    ErosionDomain reference(cfg);
    for (int s = 0; s < kSteps; ++s) (void)reference.step_counter(seed, s);

    for (const std::string& name : lb::partitioner_names()) {
      for (const std::int64_t shards : {1, 2, 3, 5, 8}) {
        for (const std::size_t threads : {1u, 4u}) {
          ShardedDomain sharded(cfg, shards, shared_partitioner(name));
          std::optional<support::ThreadPool> pool;
          if (threads > 1) pool.emplace(threads);
          std::int64_t eroded_total = 0;
          for (int s = 0; s < kSteps; ++s) {
            eroded_total +=
                sharded.step_counter(seed, s, pool ? &*pool : nullptr);
            if (s % 7 == 6) {
              (void)sharded.rebalance();
              expect_complete_disjoint_cover(sharded);
            }
          }
          EXPECT_EQ(eroded_total, reference.eroded_cells());
          expect_domains_bit_identical(
              reference, sharded.domain(),
              "counter trial " + std::to_string(trial) + ", partitioner " +
                  name + ", shards " + std::to_string(shards) + ", threads " +
                  std::to_string(threads));
        }
      }
    }
  }
}

TEST(ShardedErosion, SerialOverloadMatchesPoolOverload) {
  support::Rng config_rng(31);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  ShardedDomain a(cfg, 4, shared_partitioner("rcb"));
  ShardedDomain b(cfg, 4, shared_partitioner("rcb"));
  support::Rng rng_a(9), rng_b(9);
  support::ThreadPool pool(5);
  for (int s = 0; s < 15; ++s) {
    EXPECT_EQ(a.step(rng_a), b.step(rng_b, pool));
  }
  expect_bit_identical(a.domain(), b.domain(), rng_a, rng_b,
                       "serial vs pool overload");
}

TEST(ShardedErosion, RebalanceKeepsTrajectoryAndCover) {
  support::Rng config_rng(5150);
  for (int trial = 0; trial < 4; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 42 + static_cast<std::uint64_t>(trial);

    ErosionDomain reference(cfg);
    support::Rng ref_rng(seed);
    for (int s = 0; s < 24; ++s) (void)reference.step(ref_rng);

    ShardedDomain sharded(cfg, 3, shared_partitioner("greedy"));
    support::Rng rng(seed);
    support::ThreadPool pool(3);
    for (int s = 0; s < 24; ++s) {
      (void)sharded.step(rng, pool);
      if (s % 6 == 5) {
        // Re-sharding mid-run must not disturb the trajectory, and the new
        // assignment must still be a complete disjoint cover.
        const ReshardResult reshard = sharded.rebalance();
        EXPECT_EQ(reshard.boundaries.size(), 4u);
        EXPECT_GE(reshard.discs_moved, 0);
        EXPECT_GE(reshard.migration.total_bytes, 0.0);
        expect_complete_disjoint_cover(sharded);
      }
    }
    expect_bit_identical(reference, sharded.domain(), ref_rng, rng,
                         "rebalance trial " + std::to_string(trial));
  }
}

TEST(ShardedErosion, ShardLoadsSumToTotalWorkload) {
  support::Rng config_rng(808);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  ShardedDomain sharded(cfg, 5, shared_partitioner("optimal"));
  support::Rng rng(3);
  for (int s = 0; s < 10; ++s) (void)sharded.step(rng);
  const auto loads = sharded.shard_loads();
  ASSERT_EQ(loads.size(), 5u);
  double sum = 0.0;
  for (const double l : loads) sum += l;
  EXPECT_NEAR(sum, sharded.domain().total_workload(),
              1e-9 * sharded.domain().total_workload());
}

TEST(ShardedErosion, RejectsDegenerateShardCounts) {
  support::Rng config_rng(99);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  EXPECT_THROW(ShardedDomain(cfg, 0, shared_partitioner("greedy")),
               std::invalid_argument);
  EXPECT_THROW(ShardedDomain(cfg, cfg.columns + 1,
                             shared_partitioner("greedy")),
               std::invalid_argument);
  EXPECT_THROW(ShardedDomain(cfg, 2, nullptr), std::invalid_argument);
}

/// The frontier-equals-draw-count invariant the stream split is built on:
/// the SERIAL stepper's data-dependent draw consumption per step equals the
/// pre-step frontier sizes exactly (every frontier cell touches fluid, so
/// the `trials == 0` skip in decide_disc never fires), and the consumption
/// is independent of the erosion probabilities drawn against. Without this,
/// ShardedDomain could not position the per-disc snapshots before deciding.
TEST(ShardedErosion, SerialStepConsumesExactlyFrontierSizeDraws) {
  support::Rng config_rng(123);
  for (int trial = 0; trial < 4; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    ErosionDomain domain(cfg);
    support::Rng rng(7 + static_cast<std::uint64_t>(trial));
    for (int s = 0; s < 12; ++s) {
      std::int64_t draws = 0;
      for (std::size_t d = 0; d < domain.disc_count(); ++d)
        draws += domain.disc_frontier_size(d);
      support::Rng probe = rng;  // copies advance independently
      for (std::int64_t i = 0; i < draws; ++i) (void)probe.bernoulli(0.5);
      (void)domain.step(rng);
      // The comparison draw advances both streams identically, so the loop
      // stays aligned across steps.
      ASSERT_EQ(probe(), rng()) << "trial " << trial << ", step " << s;
    }
  }
}

}  // namespace
}  // namespace ulba::erosion
