// Measured-time distributed erosion (AppConfig::measure_time): real CPU
// burns and steady_clock measurements on the SPMD runtime. Wall-clock
// numbers are genuinely measured and therefore noisy, so this suite asserts
// two things only: (a) the measured run's VIRTUAL trajectory — times, LB
// schedule, eroded cells, every IterationRecord — is bit-identical to the
// model-time run of the same seed (the ISSUE-5 acceptance criterion), and
// (b) the measured track has the right structure, with generous bounds.
//
// Carries the `measured` ctest label: excluded from the TSan CI job, whose
// 10–50x slowdown turns real burns into minutes without adding coverage
// (the same mailbox/collective paths run TSan'd in test_distributed_erosion).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "erosion/app.hpp"

namespace ulba::erosion {
namespace {

AppConfig measured_config(std::int64_t ranks, double ns_scale = 1.0) {
  AppConfig cfg;
  cfg.pe_count = 8;
  cfg.columns_per_pe = 48;
  cfg.rows = 64;
  cfg.rock_radius = 16;
  cfg.iterations = 24;
  cfg.seed = 5;
  cfg.method = Method::kUlba;
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;
  cfg.ranks = ranks;
  cfg.measure_time = true;
  cfg.ns_scale = ns_scale;
  return cfg;
}

TEST(MeasuredErosion, VirtualTrajectoryBitIdenticalToModelTimeRun) {
  for (const std::int64_t ranks : {2, 4}) {
    AppConfig model_cfg = measured_config(ranks);
    model_cfg.measure_time = false;
    AppConfig mt_cfg = measured_config(ranks);
    // The determinism contract is per trigger source: with the (default)
    // `model` source, the measured run's virtual trajectory must stay
    // bit-identical. Spelled out so a future default change trips this test.
    mt_cfg.trigger_source = TriggerSource::kModel;
    const RunResult model = ErosionApp(model_cfg).run();
    const RunResult mt = ErosionApp(mt_cfg).run();
    const std::string what = "ranks " + std::to_string(ranks);

    EXPECT_EQ(model.total_seconds, mt.total_seconds) << what;
    EXPECT_EQ(model.compute_seconds, mt.compute_seconds) << what;
    EXPECT_EQ(model.lb_seconds, mt.lb_seconds) << what;
    EXPECT_EQ(model.lb_count, mt.lb_count) << what;
    EXPECT_EQ(model.fallback_count, mt.fallback_count) << what;
    EXPECT_EQ(model.average_utilization, mt.average_utilization) << what;
    EXPECT_EQ(model.eroded_cells, mt.eroded_cells) << what;
    EXPECT_EQ(model.final_imbalance, mt.final_imbalance) << what;
    EXPECT_EQ(model.lb_iterations, mt.lb_iterations) << what;
    EXPECT_EQ(model.lb_alphas, mt.lb_alphas) << what;
    EXPECT_EQ(model.rank_migration_bytes, mt.rank_migration_bytes) << what;
    EXPECT_EQ(model.rank_observed_bytes, mt.rank_observed_bytes) << what;
    ASSERT_EQ(model.iterations.size(), mt.iterations.size()) << what;
    for (std::size_t i = 0; i < model.iterations.size(); ++i) {
      EXPECT_EQ(model.iterations[i].seconds, mt.iterations[i].seconds)
          << what << " — iteration " << i;
      EXPECT_EQ(model.iterations[i].degradation,
                mt.iterations[i].degradation)
          << what << " — iteration " << i;
      EXPECT_EQ(model.iterations[i].threshold, mt.iterations[i].threshold)
          << what << " — iteration " << i;
      EXPECT_EQ(model.iterations[i].lb_performed,
                mt.iterations[i].lb_performed)
          << what << " — iteration " << i;
    }
    // The model-time run measures nothing; the measured run measures
    // everything it executed.
    EXPECT_TRUE(model.measured.iteration_seconds.empty()) << what;
    EXPECT_EQ(model.measured.wall_seconds, 0.0) << what;
    EXPECT_EQ(mt.measured.iteration_seconds.size(),
              static_cast<std::size_t>(mt_cfg.iterations))
        << what;
  }
}

TEST(MeasuredErosion, MeasuredTrackHasConsistentStructure) {
  const AppConfig cfg = measured_config(4, /*ns_scale=*/2.0);
  const RunResult r = ErosionApp(cfg).run();

  EXPECT_GT(r.measured.wall_seconds, 0.0);
  EXPECT_GT(r.measured.compute_seconds, 0.0);
  EXPECT_GE(r.measured.lb_seconds, 0.0);
  EXPECT_GE(r.measured.migration_seconds, 0.0);
  EXPECT_GT(r.measured.utilization, 0.0);
  EXPECT_LE(r.measured.utilization, 1.0 + 1e-9);

  ASSERT_EQ(r.measured.iteration_seconds.size(),
            static_cast<std::size_t>(cfg.iterations));
  ASSERT_EQ(r.measured.degradation.size(),
            static_cast<std::size_t>(cfg.iterations));
  // The timing-based fractional load imbalance is recorded every iteration
  // regardless of trigger source.
  ASSERT_EQ(r.measured.fli.size(), static_cast<std::size_t>(cfg.iterations));
  for (const double f : r.measured.fli) {
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_GE(f, 0.0);
  }
  double sum = 0.0;
  for (const double s : r.measured.iteration_seconds) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_DOUBLE_EQ(sum, r.measured.compute_seconds);
  // Measured degradation may go negative when iterations get FASTER than
  // the post-LB reference (host noise does that); it must merely be finite.
  for (const double d : r.measured.degradation) EXPECT_TRUE(std::isfinite(d));

  // One measured LB cost per virtual LB step — the measured counterpart of
  // lb_iterations, and a real cost for every step that really migrated.
  ASSERT_EQ(r.measured.lb_step_seconds.size(), r.lb_iterations.size());
  double lb_sum = 0.0;
  for (const double s : r.measured.lb_step_seconds) {
    EXPECT_GT(s, 0.0);
    lb_sum += s;
  }
  EXPECT_DOUBLE_EQ(lb_sum, r.measured.lb_seconds);
  EXPECT_LE(r.measured.migration_seconds, r.measured.lb_seconds + 1e-9);
}

// ---------------------------------------------------------------------------
// The measured trigger source (--trigger-source measured): the LB schedule
// comes from steady_clock iteration maxima, so it is nondeterministic by
// design and asserted STRUCTURALLY, never byte-wise. The central lockstep
// invariant — every rank acts on the single rank-0 verdict broadcast — is
// checked by completion: a rank disagreeing on an LB step would enter the
// migration collectives alone and deadlock the run.
// ---------------------------------------------------------------------------

TEST(MeasuredErosion, MeasuredSourceRunsLockstepWithCoherentTraces) {
  AppConfig cfg = measured_config(4, /*ns_scale=*/2.0);
  cfg.trigger_source = TriggerSource::kMeasured;
  cfg.mt_noise = 0.3;
  const RunResult r = ErosionApp(cfg).run();

  // Completion at 4 ranks is itself the lockstep check (see banner above).
  ASSERT_EQ(r.iterations.size(), static_cast<std::size_t>(cfg.iterations));
  ASSERT_EQ(r.measured.fli.size(), static_cast<std::size_t>(cfg.iterations));
  ASSERT_EQ(r.measured.iteration_seconds.size(),
            static_cast<std::size_t>(cfg.iterations));

  // One verdict per iteration, one measured cost per LB step, and the
  // virtual trace follows the measured schedule (report-only, but coherent).
  EXPECT_EQ(static_cast<std::int64_t>(r.lb_iterations.size()), r.lb_count);
  EXPECT_EQ(r.measured.lb_step_seconds.size(), r.lb_iterations.size());
  std::int64_t performed = 0;
  for (const IterationRecord& rec : r.iterations)
    performed += rec.lb_performed ? 1 : 0;
  EXPECT_EQ(performed, r.lb_count);
  for (const double s : r.measured.lb_step_seconds) EXPECT_GT(s, 0.0);

  EXPECT_GT(r.measured.utilization, 0.0);
  EXPECT_LE(r.measured.utilization, 1.0 + 1e-9);

  // Noise and the LB schedule do not touch the dynamics: a model-source run
  // of the same seed erodes the exact same cells.
  AppConfig model_src = measured_config(4, /*ns_scale=*/2.0);
  const RunResult m = ErosionApp(model_src).run();
  EXPECT_EQ(r.eroded_cells, m.eroded_cells);
}

TEST(MeasuredErosion, FliCriterionFiresAndStaysLockstep) {
  AppConfig cfg = measured_config(2, /*ns_scale=*/2.0);
  cfg.trigger_criterion = TriggerCriterion::kFli;
  cfg.trigger_source = TriggerSource::kMeasured;
  // A threshold this low fires on any real scheduling jitter; the point is
  // that firing (or not) keeps the run lockstep and the traces shaped.
  cfg.fli_threshold = 0.01;
  const RunResult r = ErosionApp(cfg).run();
  ASSERT_EQ(r.measured.fli.size(), static_cast<std::size_t>(cfg.iterations));
  EXPECT_EQ(r.measured.lb_step_seconds.size(), r.lb_iterations.size());
  // The last iteration never fires (nothing left to balance for).
  for (const std::int64_t it : r.lb_iterations)
    EXPECT_LT(it, cfg.iterations - 1);
}

TEST(MeasuredErosion, MeasuredSourceRequiresMeasuredTime) {
  AppConfig cfg = measured_config(2);
  cfg.trigger_source = TriggerSource::kMeasured;
  cfg.measure_time = false;
  cfg.ranks = 0;
  EXPECT_THROW(ErosionApp(cfg).run(), std::invalid_argument);
}

TEST(MeasuredErosion, MoreBurnMeansMoreMeasuredTime) {
  // Structural monotonicity with a very generous margin: 24 iterations at
  // 20x the burn cannot plausibly complete faster than at 1x even on a
  // noisy, oversubscribed CI host.
  const RunResult light = ErosionApp(measured_config(2, 1.0)).run();
  const RunResult heavy = ErosionApp(measured_config(2, 20.0)).run();
  EXPECT_GT(heavy.measured.compute_seconds, light.measured.compute_seconds);
  // And the dynamics do not care about the burn scale.
  EXPECT_EQ(light.eroded_cells, heavy.eroded_cells);
  EXPECT_EQ(light.lb_iterations, heavy.lb_iterations);
}

}  // namespace
}  // namespace ulba::erosion
