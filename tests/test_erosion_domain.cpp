// The erosion workload: disc construction, frontier dynamics, workload
// accounting, and determinism.
#include "erosion/domain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace ulba::erosion {
namespace {

DomainConfig small_config(double prob = 0.4) {
  DomainConfig c;
  c.columns = 100;
  c.rows = 60;
  c.flop_per_cell = 52.0;
  c.bytes_per_cell = 64.0;
  RockDisc d;
  d.cx = 50;
  d.cy = 30;
  d.radius = 10;
  d.erosion_prob = prob;
  c.discs = {d};
  return c;
}

TEST(DomainConfig, ValidationCatchesBadDiscs) {
  DomainConfig c = small_config();
  c.discs[0].cx = 5;  // radius 10 disc at x = 5 leaves the domain
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.discs[0].erosion_prob = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.discs.push_back(c.discs[0]);  // two identical discs overlap
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.refinement_factor = 0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Domain, InitialRockCountMatchesDiscArea) {
  const ErosionDomain dom(small_config());
  // |{(x,y): x²+y² ≤ r²}| ≈ πr²; exact for r = 10 is 317.
  EXPECT_EQ(dom.rock_cells_remaining(), 317);
  EXPECT_EQ(dom.eroded_cells(), 0);
}

TEST(Domain, InitialWorkloadIsFluidCellsTimesCost) {
  const DomainConfig c = small_config();
  const ErosionDomain dom(c);
  const double expected =
      52.0 * (static_cast<double>(c.columns * c.rows) - 317.0);
  EXPECT_NEAR(dom.total_workload(), expected, 1e-6);
  // Column weights sum to the same total.
  const auto w = dom.column_weights();
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, expected, 1e-6);
}

TEST(Domain, ColumnsOutsideTheDiscAreFullFluid) {
  const ErosionDomain dom(small_config());
  const auto w = dom.column_weights();
  EXPECT_DOUBLE_EQ(w[0], 52.0 * 60.0);
  EXPECT_DOUBLE_EQ(w[99], 52.0 * 60.0);
  // The disc's central column carries 21 rock cells (y ∈ [20, 40]).
  EXPECT_DOUBLE_EQ(w[50], 52.0 * (60.0 - 21.0));
}

TEST(Domain, FrontierStartsOnTheRim) {
  const ErosionDomain dom(small_config());
  const auto frontier = dom.frontier_size();
  // The rim of a radius-10 disc has ≈ 2πr ≈ 63 boundary cells; the discrete
  // count is within a small band.
  EXPECT_GE(frontier, 36);
  EXPECT_LE(frontier, 80);
}

TEST(Domain, ZeroProbabilityNeverErodes) {
  ErosionDomain dom(small_config(0.0));
  support::Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(dom.step(rng), 0);
  EXPECT_EQ(dom.rock_cells_remaining(), 317);
}

TEST(Domain, ProbabilityOneErodesWholeFrontierEachStep) {
  ErosionDomain dom(small_config(1.0));
  support::Rng rng(2);
  const auto frontier_before = dom.frontier_size();
  const auto eroded = dom.step(rng);
  EXPECT_EQ(eroded, frontier_before);
}

TEST(Domain, ProbabilityOneEventuallyErodesEverything) {
  ErosionDomain dom(small_config(1.0));
  support::Rng rng(3);
  // A radius-10 disc erodes layer by layer: ≤ r + a few steps.
  for (int i = 0; i < 20 && dom.rock_cells_remaining() > 0; ++i)
    (void)dom.step(rng);
  EXPECT_EQ(dom.rock_cells_remaining(), 0);
  EXPECT_EQ(dom.eroded_cells(), 317);
  EXPECT_EQ(dom.frontier_size(), 0);
  // Further steps are harmless no-ops.
  EXPECT_EQ(dom.step(rng), 0);
}

TEST(Domain, WorkloadGrowsByRefinementFactorPerErodedCell) {
  const DomainConfig c = small_config(0.4);
  ErosionDomain dom(c);
  const double w0 = dom.total_workload();
  support::Rng rng(4);
  const auto eroded = dom.step(rng);
  ASSERT_GT(eroded, 0);
  EXPECT_NEAR(dom.total_workload(),
              w0 + static_cast<double>(eroded) * 4.0 * 52.0, 1e-6);
}

TEST(Domain, RockPlusErodedIsConserved) {
  ErosionDomain dom(small_config(0.3));
  support::Rng rng(5);
  for (int i = 0; i < 15; ++i) (void)dom.step(rng);
  EXPECT_EQ(dom.rock_cells_remaining() + dom.eroded_cells(), 317);
}

TEST(Domain, ErosionIsMonotone) {
  ErosionDomain dom(small_config(0.2));
  support::Rng rng(6);
  std::int64_t prev_rock = dom.rock_cells_remaining();
  for (int i = 0; i < 25; ++i) {
    (void)dom.step(rng);
    EXPECT_LE(dom.rock_cells_remaining(), prev_rock);
    prev_rock = dom.rock_cells_remaining();
  }
}

TEST(Domain, DeterministicForFixedSeed) {
  const auto run = [](std::uint64_t seed) {
    ErosionDomain dom(small_config(0.4));
    support::Rng rng(seed);
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 10; ++i) trace.push_back(dom.step(rng));
    return trace;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Domain, StrongDiscErodesFasterThanWeak) {
  DomainConfig c;
  c.columns = 200;
  c.rows = 60;
  RockDisc weak{50, 30, 10, 0.02};
  RockDisc strong{150, 30, 10, 0.4};
  c.discs = {weak, strong};
  ErosionDomain dom(c);
  support::Rng rng(7);
  for (int i = 0; i < 10; ++i) (void)dom.step(rng);
  EXPECT_GT(dom.disc_rock_remaining(0), dom.disc_rock_remaining(1));
}

TEST(Domain, ColumnBytesProportionalToWeights) {
  const DomainConfig c = small_config();
  ErosionDomain dom(c);
  support::Rng rng(8);
  (void)dom.step(rng);
  const auto w = dom.column_weights();
  const auto b = dom.column_bytes();
  ASSERT_EQ(w.size(), b.size());
  for (std::size_t x = 0; x < w.size(); ++x)
    EXPECT_NEAR(b[x], w[x] * 64.0 / 52.0, 1e-9);
}

TEST(Domain, MultipleDiscsErodeIndependently) {
  DomainConfig c;
  c.columns = 300;
  c.rows = 60;
  c.discs = {RockDisc{50, 30, 10, 1.0}, RockDisc{150, 30, 10, 0.0},
             RockDisc{250, 30, 10, 1.0}};
  ErosionDomain dom(c);
  support::Rng rng(9);
  for (int i = 0; i < 15; ++i) (void)dom.step(rng);
  EXPECT_EQ(dom.disc_rock_remaining(0), 0);
  EXPECT_EQ(dom.disc_rock_remaining(1), 317);
  EXPECT_EQ(dom.disc_rock_remaining(2), 0);
}

TEST(Domain, ErodedColumnGainsWeightLocally) {
  ErosionDomain dom(small_config(1.0));
  support::Rng rng(10);
  const std::vector<double> before(dom.column_weights().begin(),
                                   dom.column_weights().end());
  (void)dom.step(rng);
  const auto after = dom.column_weights();
  // The leftmost disc column (x = 40) held exactly the rim cell, which has
  // now refined: weight increased there; far-away columns are untouched.
  EXPECT_GT(after[40], before[40]);
  EXPECT_DOUBLE_EQ(after[10], before[10]);
}

}  // namespace
}  // namespace ulba::erosion
