// ulba_cli — flag parsing, subcommand dispatch, and usage errors.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "cli/args.hpp"

namespace ulba::cli {
namespace {

// ---------------------------------------------------------------------------
// FlagMap grammar
// ---------------------------------------------------------------------------
TEST(FlagMap, ParsesSpaceAndEqualsForms) {
  const FlagMap flags({"--P", "64", "--alpha=0.25"}, {});
  EXPECT_EQ(flags.get_int("P", 0), 64);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 0.25);
}

TEST(FlagMap, SwitchesTakeNoValue) {
  const FlagMap flags({"--mt", "--pes", "4"}, {"mt"});
  EXPECT_TRUE(flags.has("mt"));
  EXPECT_EQ(flags.get_int("pes", 0), 4);
}

TEST(FlagMap, FallbacksApplyWhenAbsent) {
  const FlagMap flags({}, {});
  EXPECT_EQ(flags.get_int("P", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.5), 0.5);
  EXPECT_EQ(flags.get_string("partitioner", "rcb"), "rcb");
  EXPECT_EQ(flags.get_seed("seed", 11u), 11u);
}

TEST(FlagMap, RejectsPositionalArguments) {
  EXPECT_THROW(FlagMap({"512"}, {}), std::invalid_argument);
}

TEST(FlagMap, RejectsTrailingValuelessFlag) {
  EXPECT_THROW(FlagMap({"--P"}, {}), std::invalid_argument);
}

TEST(FlagMap, RejectsMalformedNumbers) {
  const FlagMap flags({"--P", "12abc", "--alpha", "zero"}, {});
  EXPECT_THROW((void)flags.get_int("P", 0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_double("alpha", 0.0), std::invalid_argument);
}

TEST(FlagMap, RejectsNegativeSeedAndOverflow) {
  const FlagMap flags({"--seed", "-1", "--P", "99999999999999999999"}, {});
  EXPECT_THROW((void)flags.get_seed("seed", 0u), std::invalid_argument);
  EXPECT_THROW((void)flags.get_int("P", 0), std::invalid_argument);
}

TEST(FlagMap, RequireKnownRejectsStrangers) {
  const FlagMap flags({"--P", "8", "--typo", "1"}, {});
  EXPECT_THROW(flags.require_known({"P"}), std::invalid_argument);
  EXPECT_NO_THROW(flags.require_known({"P", "typo"}));
}

// ---------------------------------------------------------------------------
// Shared ModelParams parsing
// ---------------------------------------------------------------------------
TEST(ModelParamFlags, OverlayOntoDefaults) {
  core::ModelParams defaults;
  defaults.P = 512;
  defaults.N = 32;
  defaults.gamma = 100;
  defaults.w0 = 1e12;
  defaults.a = 1.0;
  defaults.m = 2.0;
  defaults.alpha = 0.5;
  defaults.lb_cost = 1.0;
  const FlagMap flags({"--P", "128", "--lb-cost", "2.5"}, {});
  const core::ModelParams p = parse_model_params(flags, defaults);
  EXPECT_EQ(p.P, 128);
  EXPECT_DOUBLE_EQ(p.lb_cost, 2.5);
  EXPECT_EQ(p.N, 32);          // untouched default survives
  EXPECT_DOUBLE_EQ(p.alpha, 0.5);
}

TEST(ModelParamFlags, ValidationRejectsBadCombinations) {
  core::ModelParams defaults;
  defaults.P = 16;
  defaults.N = 4;
  defaults.gamma = 10;
  defaults.w0 = 1e9;
  defaults.alpha = 0.5;
  defaults.lb_cost = 1.0;
  // N ≥ P is out of domain — ModelParams::validate() must throw.
  const FlagMap flags({"--N", "16"}, {});
  EXPECT_THROW((void)parse_model_params(flags, defaults),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------
TEST(Cli, NoArgumentsPrintsUsageAndFails) {
  std::ostringstream out;
  EXPECT_EQ(run({}, out), 2);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(Cli, HelpSubcommandSucceeds) {
  std::ostringstream out;
  EXPECT_EQ(run({"help"}, out), 0);
  for (const auto& name : subcommand_names())
    EXPECT_NE(out.str().find(name), std::string::npos)
        << "usage() must list " << name;
}

TEST(Cli, EverySubcommandHasHelp) {
  for (const auto& name : subcommand_names()) {
    std::ostringstream out;
    EXPECT_EQ(run({name, "--help"}, out), 0) << name;
    EXPECT_NE(out.str().find("usage: ulba_cli " + name), std::string::npos)
        << name;
  }
}

TEST(Cli, UnknownSubcommandThrows) {
  std::ostringstream out;
  EXPECT_THROW(run({"frobnicate"}, out), std::invalid_argument);
}

TEST(Cli, UnknownFlagThrows) {
  std::ostringstream out;
  EXPECT_THROW(run({"quickstart", "--frobnicate", "1"}, out),
               std::invalid_argument);
}

TEST(Cli, QuickstartDispatchesAndReports) {
  std::ostringstream out;
  EXPECT_EQ(run({"quickstart", "--P", "64", "--N", "4", "--gamma", "50",
                 "--w0", "1e11", "--a", "6e4", "--m", "3e7", "--alpha",
                 "0.5", "--lb-cost", "1.0"},
                out),
            0);
  EXPECT_NE(out.str().find("P=64"), std::string::npos);
  EXPECT_NE(out.str().find("anticipation gain"), std::string::npos);
}

TEST(Cli, IntervalsDispatchesWithSmallSweep) {
  std::ostringstream out;
  EXPECT_EQ(run({"intervals", "--gamma", "40", "--alpha-steps", "2", "--dp",
                 "off"},
                out),
            0);
  EXPECT_NE(out.str().find("sigma+"), std::string::npos);
  EXPECT_NE(out.str().find("best alpha"), std::string::npos);
}

TEST(Cli, AlphaTuningDispatchesAndFindsBestAlpha) {
  std::ostringstream out;
  EXPECT_EQ(run({"alpha-tuning", "--alpha-min", "0.2", "--alpha-max", "0.6",
                 "--alpha-step", "0.2"},
                out),
            0);
  EXPECT_NE(out.str().find("best alpha"), std::string::npos);
}

TEST(Cli, IntervalsRejectsMistypedDpValue) {
  std::ostringstream out;
  EXPECT_THROW(run({"intervals", "--gamma", "40", "--dp", "Off"}, out),
               std::invalid_argument);
}

TEST(Cli, AlphaTuningRejectsInvertedRange) {
  std::ostringstream out;
  EXPECT_THROW(run({"alpha-tuning", "--alpha-min", "0.8", "--alpha-max",
                    "0.2"},
                   out),
               std::invalid_argument);
}

TEST(Cli, ErosionDispatchesOnTinyDomain) {
  std::ostringstream out;
  EXPECT_EQ(run({"erosion", "--pes", "4", "--iterations", "12",
                 "--columns-per-pe", "32", "--rows", "48", "--rock-radius",
                 "12"},
                out),
            0);
  EXPECT_NE(out.str().find("ULBA gain"), std::string::npos);
  EXPECT_NE(out.str().find("LB calls"), std::string::npos);
}

TEST(Cli, ErosionRejectsOutOfDomainAlpha) {
  std::ostringstream out;
  EXPECT_THROW(run({"erosion", "--alpha", "1.5"}, out),
               std::invalid_argument);
}

}  // namespace
}  // namespace ulba::cli
