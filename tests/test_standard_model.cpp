// Eq. (2) and its interval closed form.
#include "core/standard_model.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ulba::core {
namespace {

using ulba::testing::paper_scale_params;
using ulba::testing::tiny_params;

TEST(StandardModel, IterationTimeEq2) {
  const ModelParams p = tiny_params();  // ω = 1, share(0) = 100, m+a = 17
  EXPECT_DOUBLE_EQ(standard_iteration_time(p, 0, 0), 100.0);
  EXPECT_DOUBLE_EQ(standard_iteration_time(p, 0, 1), 117.0);
  EXPECT_DOUBLE_EQ(standard_iteration_time(p, 0, 5), 185.0);
}

TEST(StandardModel, IterationTimeAfterLaterLb) {
  const ModelParams p = tiny_params();
  // LB at iteration 10: share = Wtot(10)/P = 1500/10 = 150.
  EXPECT_DOUBLE_EQ(standard_iteration_time(p, 10, 0), 150.0);
  EXPECT_DOUBLE_EQ(standard_iteration_time(p, 10, 2), 184.0);
}

TEST(StandardModel, IterationTimeScalesWithOmega) {
  ModelParams p = tiny_params();
  const double t1 = standard_iteration_time(p, 0, 3);
  p.omega = 2.0;
  EXPECT_DOUBLE_EQ(standard_iteration_time(p, 0, 3), t1 / 2.0);
}

TEST(StandardModel, RejectsNegativeOffset) {
  EXPECT_THROW((void)standard_iteration_time(tiny_params(), 0, -1),
               std::invalid_argument);
}

TEST(StandardModel, ClosedFormMatchesBruteForceSum) {
  const ModelParams p = tiny_params();
  for (std::int64_t from : {0, 3, 7}) {
    for (std::int64_t to : {from + 1, from + 2, from + 9}) {
      double brute = 0.0;
      for (std::int64_t t = from; t < to; ++t)
        brute += standard_iteration_time(p, from, t - from);
      EXPECT_NEAR(standard_interval_compute_time(p, from, to), brute, 1e-9)
          << "interval [" << from << ", " << to << ")";
    }
  }
}

TEST(StandardModel, ClosedFormMatchesBruteForcePaperScale) {
  const ModelParams p = paper_scale_params();
  double brute = 0.0;
  for (std::int64_t t = 0; t < 100; ++t)
    brute += standard_iteration_time(p, 0, t);
  const double closed = standard_interval_compute_time(p, 0, 100);
  EXPECT_NEAR(closed, brute, 1e-9 * brute);
}

TEST(StandardModel, EmptyIntervalRejected) {
  EXPECT_THROW((void)standard_interval_compute_time(tiny_params(), 5, 5),
               std::invalid_argument);
  EXPECT_THROW((void)standard_interval_compute_time(tiny_params(), 5, 4),
               std::invalid_argument);
}

TEST(StandardModel, SingleIterationIntervalIsJustTheShare) {
  const ModelParams p = tiny_params();
  EXPECT_DOUBLE_EQ(standard_interval_compute_time(p, 0, 1), 100.0);
}

TEST(StandardModel, LaterLbMakesEveryIterationCostlier) {
  const ModelParams p = tiny_params();
  // Rebalancing later means a larger Wtot share — monotone in lb_prev.
  for (std::int64_t t : {0, 1, 5}) {
    EXPECT_LT(standard_iteration_time(p, 0, t),
              standard_iteration_time(p, 5, t));
  }
}

class StandardClosedFormSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(StandardClosedFormSweep, MatchesBruteForce) {
  const auto [from, len] = GetParam();
  const ModelParams p = paper_scale_params();
  double brute = 0.0;
  for (std::int64_t t = 0; t < len; ++t)
    brute += standard_iteration_time(p, from, t);
  EXPECT_NEAR(standard_interval_compute_time(p, from, from + len), brute,
              1e-9 * std::max(1.0, brute));
}

INSTANTIATE_TEST_SUITE_P(
    Intervals, StandardClosedFormSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(0, 1, 17, 50),
                       ::testing::Values<std::int64_t>(1, 2, 13, 49)));

}  // namespace
}  // namespace ulba::core
