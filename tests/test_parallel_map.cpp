// Unit tests for cli::parallel_map — the sweep layer's fan-out primitive
// (built on support::ThreadPool; no ad-hoc std::async batches).
//
// The contracts every sweep relies on: results land in INDEX order no matter
// how the pool schedules the work, and an exception thrown by any unit of
// work propagates to the caller instead of vanishing into a worker.
#include "cli/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace ulba::cli {
namespace {

TEST(ParallelMap, ResultsAreInIndexOrder) {
  constexpr std::size_t kN = 257;  // more work items than any pool has threads
  const auto out = parallel_map(kN, [](std::size_t i) {
    return static_cast<std::int64_t>(i * i);
  });
  ASSERT_EQ(out.size(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i)) << "index " << i;
}

TEST(ParallelMap, OrderHoldsUnderImbalancedWork) {
  // Early indices sleep, late indices finish first — ordering must still be
  // by index, not by completion.
  const auto out = parallel_map(16, [](std::size_t i) {
    if (i < 4)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return std::to_string(i);
  });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], std::to_string(i));
}

TEST(ParallelMap, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_map(64,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("unit 37 failed");
                     return i;
                   }),
      std::runtime_error);
}

TEST(ParallelMap, FirstExceptionWinsAndCarriesItsMessage) {
  try {
    (void)parallel_map(8, [](std::size_t i) -> int {
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected parallel_map to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
}

TEST(ParallelMap, PoolSurvivesAnExceptionAndIsReusable) {
  support::ThreadPool pool(4);
  EXPECT_THROW(parallel_map(pool, 32,
                            [](std::size_t) -> int {
                              throw std::invalid_argument("die");
                            }),
               std::invalid_argument);
  // The same pool must serve subsequent maps untouched.
  const auto out = parallel_map(pool, 32, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ParallelMap, SharedPoolOverloadRunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  const auto out = parallel_map(pool, hits.size(), [&](std::size_t i) {
    ++hits[i];
    return static_cast<int>(i);
  });
  ASSERT_EQ(out.size(), hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelMap, HandlesEmptyAndSingleElementRanges) {
  const auto none = parallel_map(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(none.empty());
  const auto one = parallel_map(1, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

TEST(ParallelMap, SerialPoolOfOneMatchesParallelResults) {
  support::ThreadPool serial(1), wide(8);
  const auto fn = [](std::size_t i) { return 3.5 * static_cast<double>(i); };
  EXPECT_EQ(parallel_map(serial, 50, fn), parallel_map(wide, 50, fn));
}

}  // namespace
}  // namespace ulba::cli
