// Decomposition-invariance suite for the 2D grid mode of
// erosion::DistributedDomain — the tentpole lock of the tile-grid PR.
//
// The load-bearing claims:
//   * the tile bounds form a complete disjoint cover of the domain, and
//     every disc is owned by exactly the tile holding its center — for 1xC,
//     Rx1, and RxC shapes alike;
//   * the trajectory is BIT-identical to the serial run for every grid
//     shape x exchange mode x per-rank pool, for BOTH RNG kinds (counter
//     through the rank-0 monitor protocol; fork through the replayed master
//     stream), across mid-run rebalances — and a 1xC grid without the tuner
//     IS the 1D stripe decomposition, byte for byte;
//   * 2D neighbor sets (edge AND corner neighbors) are mutually consistent,
//     survive damped tuner moves, route corner-straddling discs correctly,
//     and make the neighbor exchange strictly cheaper than all-to-all for
//     R >= 4 — cross-validated against the runtime traffic counters;
//   * the CLI surface: `erosion --decomp grid --grid 2x2` golden reports for
//     both RNG kinds, and the flag-combination rejections.
#include "erosion/distributed_domain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "erosion/app.hpp"
#include "erosion/domain.hpp"
#include "lb/grid.hpp"
#include "lb/partitioners.hpp"
#include "runtime/spmd.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "test_helpers.hpp"

#ifndef ULBA_GOLDEN_DIR
#error "ULBA_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace ulba::erosion {
namespace {

std::shared_ptr<const lb::Partitioner> shared_partitioner(
    const std::string& name) {
  return std::shared_ptr<const lb::Partitioner>(lb::make_partitioner(name));
}

GridOptions grid_options(std::int64_t rows, std::int64_t cols,
                         bool tuner = false) {
  GridOptions grid;
  grid.grid_rows = rows;
  grid.grid_cols = cols;
  grid.tuner = tuner;
  return grid;
}

/// Serial reference trajectory (fork or counter stepping chosen by caller).
struct SerialReference {
  std::vector<double> weights;
  double total = 0.0;
  std::int64_t eroded = 0;
  std::int64_t rock_remaining = 0;
  std::int64_t frontier = 0;
  std::vector<std::uint64_t> post_draws;
};

SerialReference fork_reference(const DomainConfig& cfg, std::uint64_t seed,
                               int steps) {
  ErosionDomain domain(cfg);
  support::Rng rng(seed);
  for (int s = 0; s < steps; ++s) (void)domain.step(rng);
  SerialReference ref;
  ref.weights.assign(domain.column_weights().begin(),
                     domain.column_weights().end());
  ref.total = domain.total_workload();
  ref.eroded = domain.eroded_cells();
  ref.rock_remaining = domain.rock_cells_remaining();
  ref.frontier = domain.frontier_size();
  for (int d = 0; d < 4; ++d) ref.post_draws.push_back(rng());
  return ref;
}

SerialReference counter_reference(const DomainConfig& cfg, std::uint64_t seed,
                                  int steps) {
  ErosionDomain domain(cfg);
  for (int s = 0; s < steps; ++s) (void)domain.step_counter(seed, s);
  SerialReference ref;
  ref.weights.assign(domain.column_weights().begin(),
                     domain.column_weights().end());
  ref.total = domain.total_workload();
  ref.eroded = domain.eroded_cells();
  ref.rock_remaining = domain.rock_cells_remaining();
  ref.frontier = domain.frontier_size();
  return ref;
}

void expect_matches_reference(const SerialReference& ref,
                              const DistributedDomain& domain,
                              support::Rng rng, const std::string& what) {
  EXPECT_EQ(ref.eroded, domain.eroded_cells()) << what;
  EXPECT_EQ(ref.rock_remaining, domain.rock_cells_remaining()) << what;
  EXPECT_EQ(ref.frontier, domain.frontier_size()) << what;
  EXPECT_EQ(ref.total, domain.total_workload()) << what;
  for (std::size_t d = 0; d < ref.post_draws.size(); ++d)
    ASSERT_EQ(ref.post_draws[d], rng())
        << what << " — post-run draw " << d << " on rank " << domain.rank();
  const std::vector<double> full = domain.gather_column_weights(0);
  if (domain.rank() == 0) {
    ASSERT_EQ(ref.weights.size(), full.size()) << what;
    for (std::size_t x = 0; x < full.size(); ++x)
      ASSERT_EQ(ref.weights[x], full[x]) << what << " — column " << x;
  }
}

/// Monotone bounds that partition [0, extent) with >= 1 cell per band.
void expect_valid_bounds(const std::vector<std::int64_t>& b,
                         std::int64_t extent, std::int64_t bands,
                         const std::string& what) {
  ASSERT_EQ(b.size(), static_cast<std::size_t>(bands) + 1) << what;
  EXPECT_EQ(b.front(), 0) << what;
  EXPECT_EQ(b.back(), extent) << what;
  for (std::size_t j = 0; j + 1 < b.size(); ++j)
    EXPECT_LT(b[j], b[j + 1]) << what << " — band " << j;
}

/// Rank 0 collects every rank's local disc ids and asserts they form a
/// complete disjoint cover with each disc owned by the tile holding its
/// center (grid mode) or the stripe holding its center column (the 1xC
/// delegation path).
void expect_grid_cover(runtime::Comm& comm, const DistributedDomain& domain,
                       const std::string& what) {
  if (domain.grid_mode()) {
    expect_valid_bounds(domain.grid_row_bounds(), domain.config().rows,
                        domain.grid_rows(), what + " — row bounds");
    expect_valid_bounds(domain.grid_col_bounds(), domain.columns(),
                        domain.grid_cols(), what + " — col bounds");
  } else {
    expect_valid_bounds(domain.rank_boundaries(), domain.columns(),
                        domain.ranks(), what + " — stripe bounds");
  }
  const auto local = domain.local_discs();
  for (const std::size_t disc : local)
    EXPECT_EQ(domain.owner_of_disc(disc), domain.rank()) << what;
  constexpr int kTag = 7;
  std::vector<std::int64_t> ids(local.begin(), local.end());
  if (domain.rank() != 0) {
    comm.send_span<std::int64_t>(0, kTag, ids);
    return;
  }
  std::vector<int> owners(domain.config().discs.size(), 0);
  const auto count_ids = [&](const std::vector<std::int64_t>& rank_ids,
                             int rank) {
    for (const std::int64_t id : rank_ids) {
      ASSERT_LT(static_cast<std::size_t>(id), owners.size()) << what;
      ++owners[static_cast<std::size_t>(id)];
      const RockDisc& d = domain.config().discs[static_cast<std::size_t>(id)];
      if (domain.grid_mode())
        EXPECT_EQ(domain.owner_of_cell(d.cx, d.cy), rank)
            << what << " — disc " << id;
      else
        EXPECT_EQ(domain.owner_of_column(d.cx), rank)
            << what << " — disc " << id;
    }
  };
  count_ids(ids, 0);
  for (int s = 1; s < domain.ranks(); ++s)
    count_ids(comm.recv_vector<std::int64_t>(s, kTag), s);
  for (std::size_t disc = 0; disc < owners.size(); ++disc)
    EXPECT_EQ(owners[disc], 1)
        << what << " — disc " << disc << " covered by " << owners[disc]
        << " ranks";
}

/// Exchange send sets between all rank pairs and assert q's send set mirrors
/// my recv set — the mutual-consistency contract of the replicated 2D
/// neighbor derivation.
void expect_mutual_neighbor_sets(runtime::Comm& comm,
                                 const DistributedDomain& domain,
                                 const std::string& what) {
  std::vector<std::int64_t> mine(domain.halo_send_neighbors().begin(),
                                 domain.halo_send_neighbors().end());
  for (int q = 0; q < domain.ranks(); ++q)
    if (q != domain.rank()) comm.send_span<std::int64_t>(q, 9, mine);
  for (int q = 0; q < domain.ranks(); ++q) {
    if (q == domain.rank()) continue;
    const auto theirs = comm.recv_vector<std::int64_t>(q, 9);
    const bool q_sends_to_me =
        std::find(theirs.begin(), theirs.end(),
                  static_cast<std::int64_t>(domain.rank())) != theirs.end();
    const auto& rn = domain.halo_recv_neighbors();
    const bool i_expect_q = std::find(rn.begin(), rn.end(), q) != rn.end();
    EXPECT_EQ(q_sends_to_me, i_expect_q)
        << what << " — rank " << domain.rank() << " vs rank " << q;
  }
}

/// The grid shapes every 4-rank suite sweeps: a 1xC stripe-degenerate grid,
/// an Rx1 row-stripe grid, and the genuinely 2D near-square tile grid.
const std::vector<lb::GridShape> kFourRankShapes{{1, 4}, {4, 1}, {2, 2}};

std::string shape_label(const lb::GridShape& s) {
  return std::to_string(s.rows) + "x" + std::to_string(s.cols);
}

TEST(GridDecomposition, TileCoverIsCompleteAndDisjoint) {
  support::Rng config_rng(31);
  for (int trial = 0; trial < 3; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    for (const std::string name : {"greedy", "stripe"}) {
      for (const lb::GridShape& shape : kFourRankShapes) {
        if (shape.cols > cfg.columns || shape.rows > cfg.rows) continue;
        runtime::spmd_run(4, [&](runtime::Comm& comm) {
          DistributedDomain domain(cfg, comm, shared_partitioner(name),
                                   ExchangeMode::kNeighbor,
                                   grid_options(shape.rows, shape.cols));
          // 1xC without the tuner IS the stripe decomposition.
          EXPECT_EQ(domain.grid_mode(), shape.rows > 1);
          expect_grid_cover(comm, domain,
                            "trial " + std::to_string(trial) + ", " + name +
                                ", shape " + shape_label(shape));
        });
      }
    }
  }
}

TEST(GridDecomposition, CounterBitIdenticalAcrossShapesExchangesPools) {
  constexpr int kSteps = 12;
  support::Rng config_rng(613);
  for (int trial = 0; trial < 2; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 9100 + static_cast<std::uint64_t>(trial);
    const SerialReference ref = counter_reference(cfg, seed, kSteps);
    for (const std::string name : {"greedy", "stripe"}) {
      for (const lb::GridShape& shape : kFourRankShapes) {
        for (const ExchangeMode mode :
             {ExchangeMode::kAllToAll, ExchangeMode::kNeighbor}) {
          for (const std::size_t threads : {1u, 2u}) {
            runtime::spmd_run(4, [&](runtime::Comm& comm) {
              DistributedDomain domain(cfg, comm, shared_partitioner(name),
                                       mode,
                                       grid_options(shape.rows, shape.cols));
              std::optional<support::ThreadPool> pool;
              if (threads > 1) pool.emplace(threads);
              std::int64_t eroded_total = 0;
              for (int s = 0; s < kSteps; ++s) {
                eroded_total +=
                    domain.step_counter(seed, s, pool ? &*pool : nullptr);
                if (s == kSteps / 2) (void)domain.rebalance();
              }
              EXPECT_EQ(eroded_total, ref.eroded);
              expect_matches_reference(
                  ref, domain, support::Rng(0),
                  "counter trial " + std::to_string(trial) + ", " + name +
                      ", shape " + shape_label(shape) + ", exchange " +
                      exchange_mode_name(mode) + ", threads " +
                      std::to_string(threads));
            });
          }
        }
      }
    }
  }
}

/// Fork RNG: the 1xC grid must replay the master stream exactly like the
/// stripe path (it IS the stripe path), and the genuinely 2D grid must
/// reproduce the same serial trajectory through the monitor protocol —
/// weights, counters, AND the post-run master-stream position.
TEST(GridDecomposition, ForkBitIdenticalForStripeDegenerateAnd2DGrids) {
  constexpr int kSteps = 14;
  support::Rng config_rng(2718);
  for (int trial = 0; trial < 2; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 660 + static_cast<std::uint64_t>(trial);
    const SerialReference ref = fork_reference(cfg, seed, kSteps);
    for (const lb::GridShape& shape : kFourRankShapes) {
      runtime::spmd_run(4, [&](runtime::Comm& comm) {
        DistributedDomain domain(cfg, comm, shared_partitioner("greedy"),
                                 ExchangeMode::kNeighbor,
                                 grid_options(shape.rows, shape.cols));
        support::Rng rng(seed);
        for (int s = 0; s < kSteps; ++s) {
          (void)domain.step(rng);
          if (s == kSteps / 2) (void)domain.rebalance();
        }
        expect_matches_reference(ref, domain, rng,
                                 "fork trial " + std::to_string(trial) +
                                     ", shape " + shape_label(shape));
      });
    }
  }
}

/// A skewed domain whose strong disc concentrates refined workload in the
/// top-left tile — the damped tuner must move boundaries to chase it.
DomainConfig skewed_grid_config() {
  DomainConfig cfg;
  cfg.columns = 96;
  cfg.rows = 64;
  cfg.discs = {{14, 14, 11, 0.5}, {44, 32, 11, 0.02}, {76, 48, 11, 0.02}};
  cfg.validate();
  return cfg;
}

TEST(GridDecomposition, NeighborSetsStayMutualAcrossTunerRebalances) {
  const DomainConfig cfg = skewed_grid_config();
  runtime::spmd_run(4, [&](runtime::Comm& comm) {
    DistributedDomain domain(cfg, comm, shared_partitioner("stripe"),
                             ExchangeMode::kNeighbor,
                             grid_options(2, 2, /*tuner=*/true));
    support::Rng rng(5);
    bool any_tuned = false;
    for (int round = 0; round < 3; ++round) {
      for (int s = 0; s < 8; ++s) (void)domain.step(rng);
      const std::vector<std::int64_t> rb = domain.grid_row_bounds();
      const std::vector<std::int64_t> cb = domain.grid_col_bounds();
      const DistributedReshardResult res = domain.rebalance();
      EXPECT_TRUE(res.tuner_ran) << "round " << round;
      any_tuned |= res.tuned_cols.iterations + res.tuned_rows.iterations > 0;
      // Damping: every boundary stays inside its per-rebalance envelope.
      for (std::size_t j = 1; j + 1 < rb.size(); ++j)
        EXPECT_LE(std::llabs(domain.grid_row_bounds()[j] - rb[j]),
                  lb::boundary_move_limit(rb, j, 0.05))
            << "round " << round << " — row boundary " << j;
      for (std::size_t j = 1; j + 1 < cb.size(); ++j)
        EXPECT_LE(std::llabs(domain.grid_col_bounds()[j] - cb[j]),
                  lb::boundary_move_limit(cb, j, 0.05))
            << "round " << round << " — col boundary " << j;
      expect_mutual_neighbor_sets(comm, domain,
                                  "round " + std::to_string(round));
      expect_grid_cover(comm, domain, "round " + std::to_string(round));
    }
    // The skew is strong enough that at least one rebalance must tune.
    EXPECT_TRUE(any_tuned);
    // The tuner moves boundaries, never the trajectory.
    const SerialReference ref = fork_reference(cfg, 5, 24);
    expect_matches_reference(ref, domain, rng, "post-tuner trajectory");
  });
}

/// One disc dead on the 2x2 tile-grid corner: its bounding rectangle spans
/// all four tiles, so the owner must send halos to BOTH edge neighbors AND
/// the corner neighbor — and the weights must still be bit-equal to serial.
TEST(GridDecomposition, CornerStraddlingDiscReachesCornerNeighbor) {
  DomainConfig cfg;
  cfg.columns = 64;
  cfg.rows = 64;
  cfg.discs = {{32, 32, 10, 0.35}, {14, 14, 8, 0.3}};
  cfg.validate();
  constexpr int kSteps = 18;
  const std::uint64_t seed = 424;
  const SerialReference ref = fork_reference(cfg, seed, kSteps);

  runtime::spmd_run(4, [&](runtime::Comm& comm) {
    DistributedDomain domain(cfg, comm, shared_partitioner("stripe"),
                             ExchangeMode::kNeighbor, grid_options(2, 2));
    // The even stripe cut puts the 2x2 corner at (32, 32): the first disc's
    // bounding box [22, 42]^2 touches four distinct tiles.
    const int owner = domain.owner_of_cell(32, 32);
    EXPECT_EQ(domain.owner_of_cell(22, 22), 0);
    EXPECT_NE(domain.owner_of_cell(22, 22), domain.owner_of_cell(42, 22));
    EXPECT_NE(domain.owner_of_cell(22, 22), domain.owner_of_cell(22, 42));
    EXPECT_NE(domain.owner_of_cell(42, 22), domain.owner_of_cell(42, 42));
    if (domain.rank() == owner) {
      // The owner's send set covers the other three tiles — the diagonal
      // one included (a set no 1D stripe decomposition can produce).
      const auto& sn = domain.halo_send_neighbors();
      for (const int q : {0, 1, 2})
        EXPECT_NE(std::find(sn.begin(), sn.end(), q), sn.end())
            << "corner-disc owner must send to tile " << q;
    }
    expect_mutual_neighbor_sets(comm, domain, "corner disc");
    support::Rng rng(seed);
    for (int s = 0; s < kSteps; ++s) (void)domain.step(rng);
    expect_matches_reference(ref, domain, rng, "corner-straddling disc");
  });
}

/// The 2D message-count claim: with localized discs the neighbor exchange
/// sends strictly fewer per-step messages than the all-to-all reference for
/// every R >= 4 grid, and the domain's own accounting agrees message for
/// message (and byte for byte) with the runtime traffic counters.
TEST(GridDecomposition, NeighborExchangeStrictlyCheaperIn2D) {
  DomainConfig cfg;
  cfg.columns = 16 * 48;
  cfg.rows = 64;
  for (std::int64_t i = 0; i < 16; ++i)
    cfg.discs.push_back({i * 48 + 24, 32, 16, i == 7 ? 0.4 : 0.02});
  cfg.validate();
  constexpr int kSteps = 10;

  struct Case {
    int ranks;
    lb::GridShape shape;
  };
  for (const Case& c : {Case{4, {2, 2}}, Case{8, {2, 4}}}) {
    std::uint64_t msgs[2] = {0, 0};
    std::uint64_t bytes[2] = {0, 0};
    for (const ExchangeMode mode :
         {ExchangeMode::kAllToAll, ExchangeMode::kNeighbor}) {
      const auto m =
          static_cast<std::size_t>(mode == ExchangeMode::kNeighbor);
      runtime::spmd_run(c.ranks, [&](runtime::Comm& comm) {
        DistributedDomain domain(cfg, comm, shared_partitioner("stripe"),
                                 mode,
                                 grid_options(c.shape.rows, c.shape.cols));
        comm.barrier();
        const runtime::TrafficCounters before = comm.traffic();
        comm.barrier();
        support::Rng rng(4);
        for (int s = 0; s < kSteps; ++s) (void)domain.step(rng);
        comm.barrier();
        const runtime::TrafficCounters after = comm.traffic();
        comm.barrier();
        const auto my_msgs =
            static_cast<std::int64_t>(domain.step_messages_sent());
        const auto my_bytes =
            static_cast<std::int64_t>(domain.step_payload_bytes_sent());
        const std::int64_t total_msgs = comm.allreduce(my_msgs);
        const std::int64_t total_bytes = comm.allreduce(my_bytes);
        if (comm.rank() == 0) {
          msgs[m] = static_cast<std::uint64_t>(total_msgs);
          bytes[m] = static_cast<std::uint64_t>(total_bytes);
          EXPECT_EQ(after.messages - before.messages,
                    static_cast<std::uint64_t>(total_msgs))
              << shape_label(c.shape) << ", " << exchange_mode_name(mode);
          EXPECT_EQ(after.payload_bytes - before.payload_bytes,
                    static_cast<std::uint64_t>(total_bytes))
              << shape_label(c.shape) << ", " << exchange_mode_name(mode);
        }
      });
    }
    EXPECT_LT(msgs[1], msgs[0])
        << shape_label(c.shape)
        << " — neighbor mode must send strictly fewer step messages";
    EXPECT_LE(bytes[1], bytes[0]) << shape_label(c.shape);
    EXPECT_EQ(msgs[0], static_cast<std::uint64_t>(c.ranks) *
                           static_cast<std::uint64_t>(c.ranks - 1) * kSteps);
  }
}

erosion::AppConfig grid_app_config(RngKind kind) {
  erosion::AppConfig cfg;
  cfg.pe_count = 16;
  cfg.columns_per_pe = 48;
  cfg.rows = 64;
  cfg.rock_radius = 16;
  cfg.iterations = 50;
  cfg.seed = 3;
  cfg.method = Method::kUlba;
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;
  cfg.rng_kind = kind;
  return cfg;
}

/// App level: `decomp = grid` must reproduce the serial RunResult bit for
/// bit — every trajectory-facing field — for both RNG kinds, with and
/// without the damped tuner (which may only touch the imbalance accounting,
/// never the trajectory).
TEST(GridDecomposition, AppRunResultBitIdenticalToSerialBothRngKinds) {
  for (const RngKind kind : {RngKind::kFork, RngKind::kCounter}) {
    const erosion::AppConfig serial_cfg = grid_app_config(kind);
    const RunResult serial = ErosionApp(serial_cfg).run();
    ASSERT_GE(serial.lb_count, 1)
        << "the reference run must exercise at least one mid-run LB step";
    for (const bool tuner : {false, true}) {
      AppConfig dist_cfg = serial_cfg;
      dist_cfg.ranks = 4;
      dist_cfg.decomp = "grid";
      dist_cfg.grid_rows = 2;
      dist_cfg.grid_cols = 2;
      dist_cfg.tuner = tuner;
      const RunResult dist = ErosionApp(dist_cfg).run();
      const std::string what = std::string("rng ") + rng_kind_name(kind) +
                               (tuner ? ", tuner" : ", recut");
      EXPECT_EQ(serial.total_seconds, dist.total_seconds) << what;
      EXPECT_EQ(serial.compute_seconds, dist.compute_seconds) << what;
      EXPECT_EQ(serial.lb_seconds, dist.lb_seconds) << what;
      EXPECT_EQ(serial.lb_count, dist.lb_count) << what;
      EXPECT_EQ(serial.fallback_count, dist.fallback_count) << what;
      EXPECT_EQ(serial.average_utilization, dist.average_utilization) << what;
      EXPECT_EQ(serial.eroded_cells, dist.eroded_cells) << what;
      EXPECT_EQ(serial.final_imbalance, dist.final_imbalance) << what;
      EXPECT_EQ(serial.lb_iterations, dist.lb_iterations) << what;
      EXPECT_EQ(serial.lb_alphas, dist.lb_alphas) << what;
      ASSERT_EQ(serial.iterations.size(), dist.iterations.size()) << what;
      for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
        EXPECT_EQ(serial.iterations[i].seconds, dist.iterations[i].seconds)
            << what << " — iteration " << i;
        EXPECT_EQ(serial.iterations[i].utilization,
                  dist.iterations[i].utilization)
            << what << " — iteration " << i;
        EXPECT_EQ(serial.iterations[i].lb_performed,
                  dist.iterations[i].lb_performed)
            << what << " — iteration " << i;
      }
      // The grid accounting is additional, never trajectory-facing.
      EXPECT_GE(dist.rank_fractional_imbalance, 0.0) << what;
      if (!tuner) EXPECT_EQ(dist.grid_tuner_iterations, 0) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// CLI surface: golden reports + flag rejections
// ---------------------------------------------------------------------------

std::string run_cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  const int exit_code = cli::run(args, out);
  EXPECT_EQ(exit_code, 0) << "args[0] = " << (args.empty() ? "" : args[0]);
  return out.str();
}

void expect_matches_golden(const std::string& name,
                           const std::vector<std::string>& args) {
  const std::string text = run_cli(args);
  const std::string path = std::string(ULBA_GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("ULBA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good()) << "cannot write " << path;
    f << text;
    return;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " (regenerate with ULBA_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << f.rdbuf();
  EXPECT_EQ(text, expected.str())
      << "output of `ulba_cli " << name << "` drifted from " << path
      << " — regenerate with ULBA_UPDATE_GOLDEN=1 if intentional";
}

TEST(GridDecomposition, CliGoldenGridReportForkRng) {
  expect_matches_golden(
      "erosion_grid",
      {"erosion", "--pes", "16", "--iterations", "60", "--columns-per-pe",
       "48", "--rows", "64", "--rock-radius", "16", "--seed", "3", "--ranks",
       "4", "--decomp", "grid", "--grid", "2x2", "--threads", "2"});
}

TEST(GridDecomposition, CliGoldenGridReportCounterRng) {
  expect_matches_golden(
      "erosion_grid_counter",
      {"erosion", "--pes", "16", "--iterations", "60", "--columns-per-pe",
       "48", "--rows", "64", "--rock-radius", "16", "--seed", "3", "--ranks",
       "4", "--decomp", "grid", "--grid", "2x2", "--rng", "counter",
       "--tuner"});
}

TEST(GridDecomposition, CliRejectsBadGridFlagCombinations) {
  std::ostringstream out;
  // --grid / --tuner knobs are grid-decomposition vocabulary.
  EXPECT_THROW(cli::run({"erosion", "--ranks", "4", "--grid", "2x2"}, out),
               std::invalid_argument);
  EXPECT_THROW(cli::run({"erosion", "--ranks", "4", "--tuner"}, out),
               std::invalid_argument);
  EXPECT_THROW(
      cli::run({"erosion", "--ranks", "4", "--decomp", "grid", "--tuner-cap",
                "0.1"},
               out),
      std::invalid_argument);
  // The decomposition vocabulary is closed, and grid needs the SPMD ranks.
  EXPECT_THROW(
      cli::run({"erosion", "--ranks", "4", "--decomp", "hilbert"}, out),
      std::invalid_argument);
  EXPECT_THROW(cli::run({"erosion", "--decomp", "grid"}, out),
               std::invalid_argument);
  // Non-factorable shapes are rejected, never silently adjusted.
  EXPECT_THROW(cli::run({"erosion", "--ranks", "4", "--decomp", "grid",
                         "--grid", "3x2"},
                        out),
               std::invalid_argument);
  EXPECT_THROW(cli::run({"erosion", "--ranks", "4", "--decomp", "grid",
                         "--grid", "2x"},
                        out),
               std::invalid_argument);
  // The valid combinations still parse: both explicit and derived shapes.
  EXPECT_EQ(cli::run({"erosion", "--ranks", "4", "--decomp", "grid",
                      "--iterations", "8", "--pes", "8", "--columns-per-pe",
                      "48", "--rows", "48", "--rock-radius", "12"},
                     out),
            0);
}

}  // namespace
}  // namespace ulba::erosion
