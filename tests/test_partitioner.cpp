// Stripe partitioner, stripe loads, migration volumes, and the centralized
// LB driver.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "lb/driver.hpp"
#include "lb/migration.hpp"
#include "lb/stripe_partitioner.hpp"
#include "support/rng.hpp"

namespace ulba::lb {
namespace {

TEST(EvenPartition, SplitsEvenly) {
  EXPECT_EQ(even_partition(12, 4), (StripeBoundaries{0, 3, 6, 9, 12}));
  EXPECT_EQ(even_partition(10, 3), (StripeBoundaries{0, 3, 6, 10}));
  EXPECT_EQ(even_partition(5, 5), (StripeBoundaries{0, 1, 2, 3, 4, 5}));
}

TEST(EvenPartition, Rejections) {
  EXPECT_THROW((void)even_partition(3, 4), std::invalid_argument);
  EXPECT_THROW((void)even_partition(4, 0), std::invalid_argument);
}

TEST(PartitionByWeight, UniformWeightsEqualTargets) {
  const std::vector<double> w(100, 1.0);
  const std::vector<double> f(4, 0.25);
  const StripeBoundaries b = partition_by_weight(w, f);
  EXPECT_EQ(b, (StripeBoundaries{0, 25, 50, 75, 100}));
}

TEST(PartitionByWeight, SkewedTargetsMoveTheCut) {
  const std::vector<double> w(100, 1.0);
  const std::vector<double> f{0.1, 0.9};
  const StripeBoundaries b = partition_by_weight(w, f);
  EXPECT_EQ(b, (StripeBoundaries{0, 10, 100}));
}

TEST(PartitionByWeight, ConcentratedWeightIsolatesHotColumns) {
  // All weight in columns 40–59; equal targets must split that hot band.
  std::vector<double> w(100, 0.0);
  for (int x = 40; x < 60; ++x) w[static_cast<std::size_t>(x)] = 10.0;
  const std::vector<double> f(2, 0.5);
  const StripeBoundaries b = partition_by_weight(w, f);
  const auto loads = stripe_loads(w, b);
  EXPECT_NEAR(loads[0], loads[1], 10.0);  // within one column's weight
}

TEST(PartitionByWeight, StripesAreNeverEmpty) {
  // Adversarial: everything in the first column.
  std::vector<double> w(10, 0.0);
  w[0] = 100.0;
  const std::vector<double> f(5, 0.2);
  const StripeBoundaries b = partition_by_weight(w, f);
  for (std::size_t p = 0; p + 1 < b.size(); ++p) EXPECT_LT(b[p], b[p + 1]);
}

TEST(PartitionByWeight, ZeroTotalWeightFallsBackToEven) {
  const std::vector<double> w(12, 0.0);
  const std::vector<double> f(4, 0.25);
  EXPECT_EQ(partition_by_weight(w, f), even_partition(12, 4));
}

TEST(PartitionByWeight, Rejections) {
  const std::vector<double> w(10, 1.0);
  EXPECT_THROW((void)partition_by_weight(w, std::vector<double>{0.5, 0.6}),
               std::invalid_argument);  // does not sum to 1
  EXPECT_THROW((void)partition_by_weight(w, std::vector<double>{1.0, 0.0}),
               std::invalid_argument);  // non-positive target
  const std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(
      (void)partition_by_weight(neg, std::vector<double>{0.5, 0.5}),
      std::invalid_argument);
}

TEST(StripeLoads, SumsAndImbalance) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const StripeBoundaries b{0, 2, 4};
  EXPECT_EQ(stripe_loads(w, b), (std::vector<double>{3.0, 7.0}));
  EXPECT_DOUBLE_EQ(load_imbalance(w, b), 7.0 / 5.0);
}

TEST(StripeLoads, RejectsBadBoundaries) {
  const std::vector<double> w(4, 1.0);
  EXPECT_THROW((void)stripe_loads(w, StripeBoundaries{0, 5}),
               std::invalid_argument);
  EXPECT_THROW((void)stripe_loads(w, StripeBoundaries{0, 2, 2, 4}),
               std::invalid_argument);
  EXPECT_THROW((void)stripe_loads(w, StripeBoundaries{1, 4}),
               std::invalid_argument);
}

TEST(Migration, NoChangeMovesNothing) {
  const std::vector<double> bytes(10, 4.0);
  const StripeBoundaries b{0, 5, 10};
  const MigrationVolume v = migration_volume(b, b, bytes);
  EXPECT_DOUBLE_EQ(v.total_bytes, 0.0);
  EXPECT_DOUBLE_EQ(v.max_pe_bytes, 0.0);
}

TEST(Migration, BoundaryShiftMovesExactColumns) {
  const std::vector<double> bytes(10, 4.0);
  const StripeBoundaries before{0, 5, 10};
  const StripeBoundaries after{0, 7, 10};
  const MigrationVolume v = migration_volume(before, after, bytes);
  // Columns 5 and 6 (8 bytes) move from PE 1 to PE 0.
  EXPECT_DOUBLE_EQ(v.total_bytes, 8.0);
  EXPECT_DOUBLE_EQ(v.per_pe_bytes[0], 8.0);  // received
  EXPECT_DOUBLE_EQ(v.per_pe_bytes[1], 8.0);  // sent
  EXPECT_DOUBLE_EQ(v.max_pe_bytes, 8.0);
}

TEST(Migration, DisjointStripesMoveEverything) {
  const std::vector<double> bytes{1.0, 2.0, 3.0, 4.0};
  const StripeBoundaries before{0, 2, 4};
  const StripeBoundaries after{0, 3, 4};  // PE0: {0,1}→{0,1,2}, PE1: {2,3}→{3}
  const MigrationVolume v = migration_volume(before, after, bytes);
  EXPECT_DOUBLE_EQ(v.total_bytes, 3.0);           // column 2 moves
  EXPECT_DOUBLE_EQ(v.per_pe_bytes[0], 3.0);
  EXPECT_DOUBLE_EQ(v.per_pe_bytes[1], 3.0);
}

TEST(Migration, MismatchedShapesRejected) {
  const std::vector<double> bytes(4, 1.0);
  EXPECT_THROW((void)migration_volume(StripeBoundaries{0, 2, 4},
                                      StripeBoundaries{0, 4}, bytes),
               std::invalid_argument);
}

TEST(Driver, StandardStepBalancesLoads) {
  support::Rng rng(1);
  std::vector<double> weights(64);
  for (double& w : weights) w = rng.uniform(1.0, 10.0);
  const std::vector<double> bytes(64, 8.0);
  const std::vector<double> alphas(4, 0.0);
  const CentralizedLb balancer(bsp::CommModel{}, 1e9);
  const auto before = even_partition(64, 4);
  const LbStepResult res = balancer.step(alphas, weights, bytes, before);
  EXPECT_LE(load_imbalance(weights, res.boundaries), 1.25);
  EXPECT_GT(res.cost.total(), 0.0);
  EXPECT_FALSE(res.assignment.fell_back_to_standard);
}

TEST(Driver, UlbaStepUnderloadsTheFlaggedPe) {
  // Uniform weights, PE 1 of 4 flagged with α = 0.5: its new stripe must
  // carry roughly (1−α)/P = 12.5 % of the weight.
  const std::vector<double> weights(400, 1.0);
  const std::vector<double> bytes(400, 1.0);
  std::vector<double> alphas(4, 0.0);
  alphas[1] = 0.5;
  const CentralizedLb balancer(bsp::CommModel{}, 1e9);
  const auto before = even_partition(400, 4);
  const LbStepResult res = balancer.step(alphas, weights, bytes, before);
  const auto loads = stripe_loads(weights, res.boundaries);
  EXPECT_NEAR(loads[1], 50.0, 2.0);               // (1−α)·100
  EXPECT_NEAR(loads[0], 100.0 * (1.0 + 0.5 / 3.0), 2.0);  // (1+S/(P−N))·100
}

TEST(Driver, CostGrowsWithMigrationVolume) {
  const std::vector<double> weights(100, 1.0);
  const std::vector<double> bytes(100, 1e6);
  const std::vector<double> alphas(4, 0.0);
  const CentralizedLb balancer(bsp::CommModel{}, 1e9);
  // Start from a very skewed decomposition: rebalancing must move a lot.
  const StripeBoundaries skewed{0, 97, 98, 99, 100};
  const auto res = balancer.step(alphas, weights, bytes, skewed);
  EXPECT_GT(res.cost.migration_seconds, 0.0);
  EXPECT_GT(res.migration.total_bytes, 1e6);
}

TEST(Driver, ValidatesArguments) {
  const CentralizedLb balancer(bsp::CommModel{}, 1e9);
  const std::vector<double> weights(10, 1.0);
  const std::vector<double> bytes(9, 1.0);
  const std::vector<double> alphas(2, 0.0);
  EXPECT_THROW((void)balancer.step(alphas, weights, bytes,
                                   even_partition(10, 2)),
               std::invalid_argument);
  EXPECT_THROW(CentralizedLb(bsp::CommModel{}, 0.0), std::invalid_argument);
}

// Property sweep: for random weights and targets, realized stripe loads are
// within one max-column-weight of the targets.
class PartitionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionSweep, RealizedLoadsTrackTargets) {
  support::Rng rng(GetParam());
  const int columns = 200 + static_cast<int>(rng.index(800));
  const int pe_count = 2 + static_cast<int>(rng.index(14));
  std::vector<double> w(static_cast<std::size_t>(columns));
  double wmax = 0.0;
  for (double& x : w) {
    x = rng.uniform(0.0, 5.0);
    wmax = std::max(wmax, x);
  }
  // Random positive targets normalized to 1.
  std::vector<double> f(static_cast<std::size_t>(pe_count));
  double fsum = 0.0;
  for (double& x : f) {
    x = rng.uniform(0.2, 1.0);
    fsum += x;
  }
  for (double& x : f) x /= fsum;

  const StripeBoundaries b = partition_by_weight(w, f);
  const auto loads = stripe_loads(w, b);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (int p = 0; p < pe_count; ++p) {
    // Each cut can miss its cumulative target by at most one column, so a
    // stripe's load misses by at most two columns' weight.
    EXPECT_NEAR(loads[static_cast<std::size_t>(p)],
                f[static_cast<std::size_t>(p)] * total, 2.0 * wmax + 1e-9)
        << "seed=" << GetParam() << " P=" << pe_count << " X=" << columns;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ulba::lb
