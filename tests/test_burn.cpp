// Boundary tests for the shared busy-work primitive. The regression being
// locked down: burn() used to cast `flop * ns_scale` to `long`, which is
// 32 bits on LLP64 targets — large workloads truncated (or went negative and
// skipped the loop entirely), silently collapsing measured-time runs.
#include "support/burn.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

namespace ulba::support {
namespace {

TEST(BurnSteps, RoundsTheProductTowardZero) {
  EXPECT_EQ(burn_steps(0.0, 4.0), 0);
  EXPECT_EQ(burn_steps(2.9, 1.0), 2);
  EXPECT_EQ(burn_steps(10.0, 0.5), 5);
  EXPECT_EQ(burn_steps(1e6, 8.0), 8000000);
}

TEST(BurnSteps, NonPositiveAndNanInputsBurnNothing) {
  EXPECT_EQ(burn_steps(-1.0, 4.0), 0);
  EXPECT_EQ(burn_steps(1.0, -4.0), 0);
  EXPECT_EQ(burn_steps(0.2, 0.0), 0);
  EXPECT_EQ(burn_steps(std::numeric_limits<double>::quiet_NaN(), 1.0), 0);
  EXPECT_EQ(burn_steps(1.0, std::numeric_limits<double>::quiet_NaN()), 0);
}

TEST(BurnSteps, LargeWorkloadsClampInsteadOfOverflowing) {
  // Anything past the cap — including products far beyond int64 range, which
  // the old `long` cast mangled — clamps to the positive maximum.
  EXPECT_EQ(burn_steps(static_cast<double>(kMaxBurnSteps), 1.0),
            kMaxBurnSteps);
  EXPECT_EQ(burn_steps(1e30, 1e9), kMaxBurnSteps);
  EXPECT_EQ(burn_steps(std::numeric_limits<double>::infinity(), 1.0),
            kMaxBurnSteps);
  // The 32-bit boundary specifically: one step beyond LONG_MAX on LLP64
  // must survive as a positive 64-bit count, not wrap negative.
  const double beyond_32bit = 2.0 * 2147483648.0;  // 2^32
  EXPECT_EQ(burn_steps(beyond_32bit, 1.0), std::int64_t{1} << 32);
}

TEST(BurnSteps, StaysWithinInt64ForEveryFiniteInput) {
  for (const double flop :
       {1.0, 1e9, 1e18, 1e30, std::numeric_limits<double>::max()}) {
    for (const double scale : {1.0, 1e6, 1e12}) {
      const std::int64_t steps = burn_steps(flop, scale);
      EXPECT_GE(steps, 0) << flop << " * " << scale;
      EXPECT_LE(steps, kMaxBurnSteps) << flop << " * " << scale;
    }
  }
}

TEST(Burn, ActuallySpendsTimeProportionallyToTheStepCount) {
  using Clock = std::chrono::steady_clock;
  const auto time_of = [](double flop) {
    const auto t0 = Clock::now();
    burn(flop, 1.0);
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  // Generous structural bound only (CI hosts are noisy): a 100x bigger burn
  // must not be faster than a tiny one, and both must return.
  const double small = time_of(1e4);
  const double large = time_of(1e6);
  EXPECT_GE(small, 0.0);
  EXPECT_GE(large, 0.0);
  EXPECT_GE(large, small * 0.5);
}

}  // namespace
}  // namespace ulba::support
