// Menon's τ, Eq. (12)'s root, and σ⁺ = σ⁻ + τ.
#include "core/intervals.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ulba_model.hpp"
#include "test_helpers.hpp"

namespace ulba::core {
namespace {

using ulba::testing::paper_scale_params;
using ulba::testing::tiny_params;

TEST(Intervals, MenonTauHandChecked) {
  const ModelParams p = tiny_params();  // C = 50 s, ω = 1, m̂ = 12
  EXPECT_NEAR(menon_tau(p), std::sqrt(2.0 * 50.0 / 12.0), 1e-12);
}

TEST(Intervals, DiscreteTauIsHalfAnIterationAboveContinuous) {
  // The paper's claim that discretizing Eq. (10) changes the bound
  // insignificantly: τ_disc = τ_cont + ½ + O(1/τ).
  const ModelParams p = ulba::testing::paper_scale_params();
  const double cont = menon_tau(p);
  const double disc = menon_tau_discrete(p);
  EXPECT_GT(disc, cont);
  EXPECT_NEAR(disc - cont, 0.5, 0.5 / cont + 1e-6);
}

TEST(Intervals, DiscreteTauSatisfiesTheDiscreteSum) {
  const ModelParams p = ulba::testing::paper_scale_params();
  const double tau = menon_tau_discrete(p);
  // Plug back: m̂·τ(τ−1)/(2ω) == C.
  EXPECT_NEAR(p.m_hat() * tau * (tau - 1.0) / (2.0 * p.omega), p.lb_cost,
              1e-9 * p.lb_cost);
}

TEST(Intervals, DiscreteTauInfiniteWithoutGrowth) {
  ModelParams p = tiny_params();
  p.m = 0.0;
  EXPECT_TRUE(std::isinf(menon_tau_discrete(p)));
}

TEST(Intervals, MenonTauInfiniteWithoutImbalanceGrowth) {
  ModelParams p = tiny_params();
  p.m = 0.0;
  EXPECT_TRUE(std::isinf(menon_tau(p)));
}

TEST(Intervals, MenonTauMonotoneInCostAndRate) {
  ModelParams p = paper_scale_params();
  const double base = menon_tau(p);
  p.lb_cost *= 4.0;
  EXPECT_NEAR(menon_tau(p), 2.0 * base, 1e-9 * base);  // τ ∝ √C
  p.lb_cost /= 4.0;
  p.m *= 4.0;
  EXPECT_NEAR(menon_tau(p), base / 2.0, 1e-9 * base);  // τ ∝ 1/√m̂
}

TEST(Intervals, AlphaZeroCollapsesToMenon) {
  // §III-B: "the proposed approach behaves like the standard LB method when
  // α is set to zero. In this case, σ⁻(i) = 0 and σ⁺(i) = √(2C/m̂)."
  const ModelParams p = paper_scale_params();
  EXPECT_EQ(sigma_minus(p, 0, 0.0), 0);
  EXPECT_NEAR(sigma_plus(p, 0, 0.0, 0.0), menon_tau(p),
              1e-9 * menon_tau(p));
}

TEST(Intervals, Eq12RootSatisfiesEq9) {
  // The returned τ must satisfy Cost_imbalance(τ) = Cost_overhead + C.
  const ModelParams p = paper_scale_params();
  for (double alpha : {0.1, 0.4, 0.9}) {
    const std::int64_t sm = sigma_minus(p, 0, alpha);
    const double tau = sigma_plus_tau(p, 0, sm, alpha);
    const double lhs = p.m_hat() * tau * tau / (2.0 * p.omega);
    const double ratio =
        static_cast<double>(p.N) / static_cast<double>(p.P - p.N);
    const double rhs =
        alpha * ratio *
            (p.wtot(0) + (static_cast<double>(sm) + tau) * p.delta_w()) /
            (p.omega * static_cast<double>(p.P)) +
        p.lb_cost;
    EXPECT_NEAR(lhs, rhs, 1e-6 * rhs) << "alpha = " << alpha;
  }
}

TEST(Intervals, SigmaPlusExceedsSigmaMinus) {
  const ModelParams p = paper_scale_params();
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const std::int64_t sm = sigma_minus(p, 0, alpha);
    const double sp = sigma_plus(p, 0, alpha, alpha);
    EXPECT_GT(sp, static_cast<double>(sm)) << "alpha = " << alpha;
  }
}

TEST(Intervals, UlbaOverheadLengthensTheInterval) {
  // With the same α applied, σ⁺'s τ part exceeds Menon's τ: the upcoming
  // step's overhead raises the trigger threshold.
  const ModelParams p = paper_scale_params();
  const double tau_menon = menon_tau(p);
  const double tau_ulba = sigma_plus_tau(p, 0, sigma_minus(p, 0, 0.5), 0.5);
  EXPECT_GT(tau_ulba, tau_menon);
}

TEST(Intervals, SigmaPlusInfiniteWithoutGrowth) {
  ModelParams p = paper_scale_params();
  p.m = 0.0;
  EXPECT_TRUE(std::isinf(sigma_plus(p, 0, 0.5, 0.5)));
}

TEST(Intervals, IntervalBoundsAgreeWithPieces) {
  const ModelParams p = paper_scale_params();
  const IntervalBounds b = interval_bounds(p, 10, 0.4, 0.4);
  EXPECT_EQ(b.lower, sigma_minus(p, 10, 0.4));
  EXPECT_DOUBLE_EQ(b.upper, sigma_plus(p, 10, 0.4, 0.4));
}

TEST(Intervals, RejectsBadAlpha) {
  const ModelParams p = paper_scale_params();
  EXPECT_THROW((void)sigma_plus_tau(p, 0, 0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)sigma_plus_tau(p, 0, -1, 0.5), std::invalid_argument);
}

class SigmaPlusAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaPlusAlphaSweep, RootIsPositiveAndFinite) {
  const double alpha = GetParam();
  const ModelParams p = paper_scale_params();
  for (std::int64_t lb_prev : {0, 13, 60}) {
    const double sp = sigma_plus(p, lb_prev, alpha, alpha);
    EXPECT_TRUE(std::isfinite(sp));
    EXPECT_GT(sp, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, SigmaPlusAlphaSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9, 1.0));

}  // namespace
}  // namespace ulba::core
