// Schedules, their evaluation (Eqs. (3)–(4)), and the policy builders.
#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/intervals.hpp"
#include "core/standard_model.hpp"
#include "core/ulba_model.hpp"
#include "test_helpers.hpp"

namespace ulba::core {
namespace {

using ulba::testing::paper_scale_params;
using ulba::testing::tiny_params;

TEST(Schedule, ValidConstructionAndAccessors) {
  const Schedule s(20, {5, 11, 17});
  EXPECT_EQ(s.gamma(), 20);
  EXPECT_EQ(s.lb_count(), 3u);
  EXPECT_EQ(s.boundaries(), (std::vector<std::int64_t>{0, 5, 11, 17, 20}));
}

TEST(Schedule, RejectsOutOfRangeAndUnsortedSteps) {
  EXPECT_THROW(Schedule(10, {0}), std::invalid_argument);   // 0 is implicit
  EXPECT_THROW(Schedule(10, {10}), std::invalid_argument);  // beyond horizon
  EXPECT_THROW(Schedule(10, {3, 3}), std::invalid_argument);
  EXPECT_THROW(Schedule(10, {5, 4}), std::invalid_argument);
  EXPECT_THROW(Schedule(0, {}), std::invalid_argument);
}

TEST(Schedule, MaskRoundTrip) {
  const Schedule s(8, {2, 5});
  const auto mask = s.to_mask();
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{0, 0, 1, 0, 0, 1, 0, 0}));
  EXPECT_EQ(Schedule::from_mask(mask), s);
}

TEST(Schedule, FromMaskIgnoresIterationZero) {
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  const Schedule s = Schedule::from_mask(mask);
  EXPECT_EQ(s.steps(), (std::vector<std::int64_t>{2}));
}

TEST(Schedule, ToStringMentionsSteps) {
  const Schedule s(10, {3, 7});
  EXPECT_NE(s.to_string().find("{3, 7}"), std::string::npos);
}

TEST(EvaluateStandard, NoLbIsOneLongInterval) {
  const ModelParams p = tiny_params();
  const auto cost = evaluate_standard(p, Schedule::empty(p.gamma));
  EXPECT_EQ(cost.lb_count, 0u);
  EXPECT_DOUBLE_EQ(cost.lb_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cost.total_seconds,
                   standard_interval_compute_time(p, 0, p.gamma));
}

TEST(EvaluateStandard, IntervalsAndCostsAddUp) {
  const ModelParams p = tiny_params();
  const Schedule s(p.gamma, {8, 15});
  const auto cost = evaluate_standard(p, s);
  const double expect = standard_interval_compute_time(p, 0, 8) +
                        standard_interval_compute_time(p, 8, 15) +
                        standard_interval_compute_time(p, 15, 20) +
                        2.0 * p.lb_cost;
  EXPECT_NEAR(cost.total_seconds, expect, 1e-9);
  EXPECT_EQ(cost.lb_count, 2u);
  EXPECT_DOUBLE_EQ(cost.lb_seconds, 100.0);
}

TEST(EvaluateUlba, FirstIntervalUsesStandardShape) {
  // Balanced start: with one LB step, only the second interval gets the ULBA
  // shape.
  const ModelParams p = tiny_params();
  const Schedule s(p.gamma, {10});
  const auto cost = evaluate_ulba(p, s);
  const double expect = standard_interval_compute_time(p, 0, 10) +
                        ulba_interval_compute_time(p, 10, 20, p.alpha) +
                        p.lb_cost;
  EXPECT_NEAR(cost.total_seconds, expect, 1e-9);
}

TEST(EvaluateUlba, AlphaZeroEqualsStandardEverywhere) {
  ModelParams p = paper_scale_params();
  p.alpha = 0.0;
  for (const Schedule& s :
       {Schedule::empty(p.gamma), Schedule(p.gamma, {30}),
        Schedule(p.gamma, {20, 40, 60, 80})}) {
    EXPECT_DOUBLE_EQ(evaluate_ulba(p, s).total_seconds,
                     evaluate_standard(p, s).total_seconds);
  }
}

TEST(EvaluateUlba, PerStepAlphasMatchConstantWhenEqual) {
  const ModelParams p = paper_scale_params();
  const Schedule s(p.gamma, {25, 50, 75});
  const std::vector<double> alphas(3, p.alpha);
  EXPECT_DOUBLE_EQ(evaluate_ulba_per_step(p, s, alphas).total_seconds,
                   evaluate_ulba(p, s).total_seconds);
}

TEST(EvaluateUlba, PerStepAlphasRequireOnePerStep) {
  const ModelParams p = paper_scale_params();
  const Schedule s(p.gamma, {25, 50});
  const std::vector<double> alphas(3, 0.5);
  EXPECT_THROW((void)evaluate_ulba_per_step(p, s, alphas),
               std::invalid_argument);
}

TEST(EvaluateUlba, GammaMismatchRejected) {
  const ModelParams p = tiny_params();
  const Schedule s(p.gamma + 1, {5});
  EXPECT_THROW((void)evaluate_ulba(p, s), std::invalid_argument);
}

TEST(Builders, PeriodicSchedule) {
  const Schedule s = periodic_schedule(10, 3);
  EXPECT_EQ(s.steps(), (std::vector<std::int64_t>{3, 6, 9}));
  EXPECT_TRUE(periodic_schedule(10, 100).steps().empty());
  EXPECT_THROW((void)periodic_schedule(10, 0), std::invalid_argument);
}

TEST(Builders, MenonScheduleUsesTauSpacing) {
  const ModelParams p = paper_scale_params();
  const auto period = std::max<std::int64_t>(1, std::llround(menon_tau(p)));
  const Schedule s = menon_schedule(p);
  ASSERT_FALSE(s.steps().empty());
  EXPECT_EQ(s.steps().front(), period);
  if (s.steps().size() >= 2) {
    EXPECT_EQ(s.steps()[1] - s.steps()[0], period);
  }
}

TEST(Builders, MenonScheduleEmptyWithoutGrowth) {
  ModelParams p = paper_scale_params();
  p.m = 0.0;
  EXPECT_TRUE(menon_schedule(p).steps().empty());
}

TEST(Builders, SigmaPlusScheduleStepsAreSpacedBySigmaPlus) {
  const ModelParams p = paper_scale_params();
  const Schedule s = sigma_plus_schedule(p);
  ASSERT_FALSE(s.steps().empty());
  // First hop: from the balanced start (α_open = 0).
  const auto first_hop = static_cast<std::int64_t>(
      std::floor(sigma_plus(p, 0, 0.0, p.alpha)));
  EXPECT_EQ(s.steps().front(), std::max<std::int64_t>(1, first_hop));
  // Later hops: opened with α.
  if (s.steps().size() >= 2) {
    const std::int64_t from = s.steps()[0];
    const auto hop = static_cast<std::int64_t>(
        std::floor(sigma_plus(p, from, p.alpha, p.alpha)));
    EXPECT_EQ(s.steps()[1] - from, std::max<std::int64_t>(1, hop));
  }
}

TEST(Builders, SigmaPlusScheduleEqualsMenonWhenAlphaZero) {
  ModelParams p = paper_scale_params();
  p.alpha = 0.0;
  const Schedule sp = sigma_plus_schedule(p);
  // Spacing uses ⌊τ⌋ vs Menon's round(τ); allow both but require the same
  // asymptotic count within one step.
  const Schedule mn = menon_schedule(p);
  EXPECT_NEAR(static_cast<double>(sp.lb_count()),
              static_cast<double>(mn.lb_count()), 1.0 + 0.2 * static_cast<double>(mn.lb_count()));
}

TEST(Builders, SigmaPlusLbLessOftenThanMenonForSameAlphaModel) {
  // ULBA's σ⁺ interval is longer than Menon's τ (overhead term + σ⁻ head
  // start) ⇒ fewer LB calls over the same horizon.
  const ModelParams p = paper_scale_params();
  EXPECT_LE(sigma_plus_schedule(p).lb_count(), menon_schedule(p).lb_count());
}

TEST(ScheduleGain, UlbaWithSigmaPlusBeatsStandardWithMenonOnPaperScale) {
  // The headline model-level claim (Figure 3): for a strongly imbalanced
  // instance there is an α for which ULBA outperforms the standard method.
  const ModelParams p = paper_scale_params();
  const double t_std =
      evaluate_standard(p, menon_schedule(p)).total_seconds;
  double best_ulba = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= 100; ++i) {
    ModelParams q = p;
    q.alpha = static_cast<double>(i) / 100.0;
    best_ulba = std::min(
        best_ulba, evaluate_ulba(q, sigma_plus_schedule(q)).total_seconds);
  }
  EXPECT_LT(best_ulba, t_std);
}

}  // namespace
}  // namespace ulba::core
