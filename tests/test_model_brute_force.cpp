// Deep cross-validation of the closed-form schedule evaluators against
// per-iteration brute-force simulation, over random Table-II instances and
// random schedules. These are the load-bearing formulas behind Figures 2
// and 3, so they get their own adversarial suite.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/standard_model.hpp"
#include "core/ulba_model.hpp"
#include "support/rng.hpp"

namespace ulba::core {
namespace {

/// Simulate a schedule iteration by iteration with the Eq.(2)/Eq.(5)
/// per-iteration formulas — no closed forms anywhere.
double brute_force_total(const ModelParams& p, const Schedule& s, bool ulba) {
  const auto bounds = s.boundaries();
  double total = static_cast<double>(s.lb_count()) * p.lb_cost;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    const std::int64_t from = bounds[k];
    const std::int64_t to = bounds[k + 1];
    const double alpha_open = (!ulba || k == 0) ? 0.0 : p.alpha;
    for (std::int64_t t = 0; t < to - from; ++t) {
      total += ulba ? ulba_iteration_time(p, from, t, alpha_open)
                    : standard_iteration_time(p, from, t);
    }
  }
  return total;
}

Schedule random_schedule(std::int64_t gamma, support::Rng& rng) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(gamma), 0);
  const std::size_t flips = rng.index(8);
  for (std::size_t i = 0; i < flips; ++i)
    mask[1 + rng.index(static_cast<std::size_t>(gamma) - 1)] = 1;
  return Schedule::from_mask(mask);
}

class BruteForceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceSweep, StandardEvaluatorMatchesSimulation) {
  support::Rng rng(GetParam());
  const InstanceGenerator gen;
  for (int i = 0; i < 5; ++i) {
    const ModelParams p = gen.sample(rng).params;
    const Schedule s = random_schedule(p.gamma, rng);
    const double closed = evaluate_standard(p, s).total_seconds;
    const double brute = brute_force_total(p, s, /*ulba=*/false);
    EXPECT_NEAR(closed, brute, 1e-9 * brute)
        << "instance " << i << ", " << s.to_string();
  }
}

TEST_P(BruteForceSweep, UlbaEvaluatorMatchesSimulation) {
  support::Rng rng(GetParam() + 5000);
  const InstanceGenerator gen;
  for (int i = 0; i < 5; ++i) {
    const ModelParams p = gen.sample(rng).params;
    const Schedule s = random_schedule(p.gamma, rng);
    const double closed = evaluate_ulba(p, s).total_seconds;
    const double brute = brute_force_total(p, s, /*ulba=*/true);
    EXPECT_NEAR(closed, brute, 1e-9 * brute)
        << "instance " << i << ", " << s.to_string() << ", alpha=" << p.alpha;
  }
}

TEST_P(BruteForceSweep, UlbaNeverCheaperThanItsOwnBestResponse) {
  // Internal consistency: for any instance and schedule, the ULBA evaluation
  // with α = 0 equals the standard evaluation exactly.
  support::Rng rng(GetParam() + 9000);
  const InstanceGenerator gen;
  ModelParams p = gen.sample(rng).params;
  p.alpha = 0.0;
  const Schedule s = random_schedule(p.gamma, rng);
  EXPECT_DOUBLE_EQ(evaluate_ulba(p, s).total_seconds,
                   evaluate_standard(p, s).total_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

// Degenerate-but-legal corners the closed forms must survive.
TEST(BruteForceCorners, ZeroInitialWorkload) {
  ModelParams p;
  p.P = 8;
  p.N = 2;
  p.gamma = 20;
  p.w0 = 0.0;
  p.a = 1.0;
  p.m = 10.0;
  p.alpha = 0.5;
  p.omega = 1.0;
  p.lb_cost = 5.0;
  p.validate();
  const Schedule s(20, {7, 14});
  EXPECT_NEAR(evaluate_ulba(p, s).total_seconds,
              brute_force_total(p, s, true), 1e-9);
}

TEST(BruteForceCorners, SingleIterationHorizon) {
  ModelParams p;
  p.P = 4;
  p.N = 1;
  p.gamma = 1;
  p.w0 = 100.0;
  p.a = 1.0;
  p.m = 5.0;
  p.omega = 1.0;
  p.validate();
  const Schedule s = Schedule::empty(1);
  EXPECT_DOUBLE_EQ(evaluate_standard(p, s).total_seconds, 25.0);  // W0/P
}

TEST(BruteForceCorners, AlphaOneFullUnload) {
  ModelParams p;
  p.P = 10;
  p.N = 1;
  p.gamma = 30;
  p.w0 = 1000.0;
  p.a = 0.0;
  p.m = 20.0;
  p.alpha = 1.0;
  p.omega = 1.0;
  p.lb_cost = 10.0;
  p.validate();
  const Schedule s(30, {10});
  EXPECT_NEAR(evaluate_ulba(p, s).total_seconds,
              brute_force_total(p, s, true), 1e-9);
}

TEST(BruteForceCorners, EveryIterationBalanced) {
  const InstanceGenerator gen;
  support::Rng rng(77);
  const ModelParams p = gen.sample(rng).params;
  std::vector<std::int64_t> every;
  for (std::int64_t i = 1; i < p.gamma; ++i) every.push_back(i);
  const Schedule s(p.gamma, std::move(every));
  EXPECT_NEAR(evaluate_ulba(p, s).total_seconds,
              brute_force_total(p, s, true),
              1e-9 * brute_force_total(p, s, true));
}

}  // namespace
}  // namespace ulba::core
