// Partition-invariance property suite for erosion::DistributedDomain — the
// cross-process extension of the sharded harness (test_sharded_erosion).
//
// The load-bearing claim: for EVERY (rank count, partitioner, per-rank
// thread count), stepping the domain distributed over the SPMD runtime is
// BIT-identical to the serial shared-stream ErosionDomain::step(rng) — the
// same global counters, the same per-column FLOP accounting (exact FP
// equality), and the same master-RNG post-run state on every rank — and
// this survives mid-run rebalances that migrate disc ownership and column
// weights as real runtime::Mailbox messages. On top of that, the analytic
// lb::migration_volume prediction must match the bytes the rebalance
// actually exchanged.
#include "erosion/distributed_domain.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "erosion/app.hpp"
#include "erosion/domain.hpp"
#include "lb/partitioners.hpp"
#include "runtime/spmd.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "test_helpers.hpp"

namespace ulba::erosion {
namespace {

std::shared_ptr<const lb::Partitioner> shared_partitioner(
    const std::string& name) {
  return std::shared_ptr<const lb::Partitioner>(lb::make_partitioner(name));
}

/// Serial shared-stream reference: the domain after `steps` iterations plus
/// the master stream's post-run state.
struct SerialReference {
  std::vector<double> weights;
  double total = 0.0;
  std::int64_t eroded = 0;
  std::int64_t rock_remaining = 0;
  std::int64_t frontier = 0;
  std::vector<std::uint64_t> post_draws;
};

SerialReference serial_reference(const DomainConfig& cfg, std::uint64_t seed,
                                 int steps) {
  ErosionDomain domain(cfg);
  support::Rng rng(seed);
  for (int s = 0; s < steps; ++s) (void)domain.step(rng);
  SerialReference ref;
  ref.weights.assign(domain.column_weights().begin(),
                     domain.column_weights().end());
  ref.total = domain.total_workload();
  ref.eroded = domain.eroded_cells();
  ref.rock_remaining = domain.rock_cells_remaining();
  ref.frontier = domain.frontier_size();
  for (int d = 0; d < 4; ++d) ref.post_draws.push_back(rng());
  return ref;
}

/// Every rank checks its replicated report and master stream against the
/// serial reference; rank 0 additionally gathers and compares the full
/// per-column weights bit-for-bit.
void expect_matches_reference(const SerialReference& ref,
                              const DistributedDomain& domain,
                              support::Rng rng, const std::string& what) {
  EXPECT_EQ(ref.eroded, domain.eroded_cells()) << what;
  EXPECT_EQ(ref.rock_remaining, domain.rock_cells_remaining()) << what;
  EXPECT_EQ(ref.frontier, domain.frontier_size()) << what;
  EXPECT_EQ(ref.total, domain.total_workload()) << what;
  for (std::size_t d = 0; d < ref.post_draws.size(); ++d)
    ASSERT_EQ(ref.post_draws[d], rng())
        << what << " — post-run draw " << d << " on rank " << domain.rank();
  const std::vector<double> full = domain.gather_column_weights(0);
  if (domain.rank() == 0) {
    ASSERT_EQ(ref.weights.size(), full.size()) << what;
    for (std::size_t x = 0; x < full.size(); ++x)
      ASSERT_EQ(ref.weights[x], full[x]) << what << " — column " << x;
  }
}

/// Rank 0 collects every rank's local disc ids and asserts they form a
/// complete disjoint cover consistent with the stripe boundaries.
void expect_complete_disjoint_cover(runtime::Comm& comm,
                                    const DistributedDomain& domain) {
  const auto local = domain.local_discs();
  // Consistency of the replicated ownership view with my local set.
  for (const std::size_t disc : local)
    EXPECT_EQ(domain.owner_of_disc(disc), domain.rank());
  // Boundaries must partition the column range.
  const auto& b = domain.rank_boundaries();
  ASSERT_EQ(static_cast<int>(b.size()), domain.ranks() + 1);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), domain.columns());
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LT(b[i], b[i + 1]);
  // Gather the local id sets at rank 0 (simple tagged exchange).
  constexpr int kTag = 7;
  std::vector<std::int64_t> ids(local.begin(), local.end());
  if (domain.rank() != 0) {
    comm.send_span<std::int64_t>(0, kTag, ids);
    return;
  }
  std::vector<int> owners(domain.config().discs.size(), 0);
  const auto count_ids = [&](const std::vector<std::int64_t>& rank_ids,
                             int rank) {
    for (const std::int64_t id : rank_ids) {
      ASSERT_LT(static_cast<std::size_t>(id), owners.size());
      ++owners[static_cast<std::size_t>(id)];
      // The owning stripe must hold the disc's center column.
      const std::int64_t cx =
          domain.config().discs[static_cast<std::size_t>(id)].cx;
      EXPECT_GE(cx, b[static_cast<std::size_t>(rank)]);
      EXPECT_LT(cx, b[static_cast<std::size_t>(rank) + 1]);
    }
  };
  count_ids(ids, 0);
  for (int s = 1; s < domain.ranks(); ++s)
    count_ids(comm.recv_vector<std::int64_t>(s, kTag), s);
  for (std::size_t disc = 0; disc < owners.size(); ++disc)
    EXPECT_EQ(owners[disc], 1)
        << "disc " << disc << " covered by " << owners[disc] << " ranks";
}

/// A domain whose discs straddle rank-stripe boundaries by construction:
/// radius-10 discs over 64 columns, so the 8-rank even cut (width 8) slices
/// straight through both bounding boxes — every step then exchanges halo
/// deltas for columns owned by up to three other ranks.
DomainConfig adversarial_boundary_config() {
  DomainConfig cfg;
  cfg.columns = 64;
  cfg.rows = 72;
  cfg.discs = {{16, 16, 10, 0.35}, {40, 48, 10, 0.3}};
  cfg.validate();
  return cfg;
}

TEST(DistributedErosion, CoverIsCompleteAndDisjointAcrossRanks) {
  support::Rng config_rng(2024);
  for (int trial = 0; trial < 4; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    for (const std::string& name : lb::partitioner_names()) {
      for (const int ranks : {1, 2, 3, 5, 8}) {
        if (ranks > cfg.columns) continue;
        runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
          DistributedDomain domain(cfg, comm, shared_partitioner(name));
          expect_complete_disjoint_cover(comm, domain);
        });
      }
    }
  }
}

TEST(DistributedErosion, BitIdenticalToSerialForEveryRankPartitionerPool) {
  constexpr int kSteps = 14;
  support::Rng config_rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(trial);
    const SerialReference ref = serial_reference(cfg, seed, kSteps);

    for (const std::string& name : lb::partitioner_names()) {
      for (const int ranks : {1, 2, 4, 8}) {
        for (const std::size_t threads : {1u, 2u}) {
          runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
            DistributedDomain domain(cfg, comm, shared_partitioner(name));
            support::Rng rng(seed);
            support::ThreadPool pool(threads);
            std::int64_t eroded_total = 0;
            for (int s = 0; s < kSteps; ++s)
              eroded_total += domain.step(rng, pool);
            EXPECT_EQ(eroded_total, ref.eroded);
            expect_matches_reference(
                ref, domain, rng,
                "trial " + std::to_string(trial) + ", partitioner " + name +
                    ", ranks " + std::to_string(ranks) + ", threads " +
                    std::to_string(threads));
          });
        }
      }
    }
  }
}

/// The counter-RNG sweep: one serial unsharded counter trajectory must be
/// reproduced bit for bit by every (rank count, partitioner, exchange mode,
/// per-rank pool) combination, across mid-run rebalances that migrate disc
/// ownership as real messages. Unlike the fork sweep there is no burn pass
/// and no master-stream state to compare — the invariance is structural.
TEST(DistributedErosion, CounterPathBitIdenticalForEveryRankExchangePool) {
  constexpr int kSteps = 14;
  support::Rng config_rng(4242);
  for (int trial = 0; trial < 2; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(trial);

    // Serial unsharded counter reference.
    ErosionDomain reference(cfg);
    for (int s = 0; s < kSteps; ++s) (void)reference.step_counter(seed, s);
    SerialReference ref;
    ref.weights.assign(reference.column_weights().begin(),
                       reference.column_weights().end());
    ref.total = reference.total_workload();
    ref.eroded = reference.eroded_cells();
    ref.rock_remaining = reference.rock_cells_remaining();
    ref.frontier = reference.frontier_size();

    for (const std::string& name : lb::partitioner_names()) {
      for (const int ranks : {1, 2, 4, 8}) {
        for (const ExchangeMode mode :
             {ExchangeMode::kAllToAll, ExchangeMode::kNeighbor}) {
          for (const std::size_t threads : {1u, 2u}) {
            runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
              DistributedDomain domain(cfg, comm, shared_partitioner(name),
                                       mode);
              std::optional<support::ThreadPool> pool;
              if (threads > 1) pool.emplace(threads);
              std::int64_t eroded_total = 0;
              for (int s = 0; s < kSteps; ++s) {
                eroded_total += domain.step_counter(
                    seed, s, pool ? &*pool : nullptr);
                if (s == kSteps / 2) (void)domain.rebalance();
              }
              EXPECT_EQ(eroded_total, ref.eroded);
              expect_matches_reference(
                  ref, domain, support::Rng(0),
                  "counter trial " + std::to_string(trial) +
                      ", partitioner " + name + ", ranks " +
                      std::to_string(ranks) + ", exchange " +
                      exchange_mode_name(mode) + ", threads " +
                      std::to_string(threads));
            });
          }
        }
      }
    }
  }
}

TEST(DistributedErosion, MidRunMigrationKeepsTrajectoryAndCover) {
  constexpr int kSteps = 24;
  support::Rng config_rng(5150);
  for (int trial = 0; trial < 3; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 42 + static_cast<std::uint64_t>(trial);
    const SerialReference ref = serial_reference(cfg, seed, kSteps);

    for (const std::string name : {"greedy", "rcb", "optimal", "stripe"}) {
      const int ranks = 4;
      if (ranks > cfg.columns) continue;
      runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
        DistributedDomain domain(cfg, comm, shared_partitioner(name));
        support::Rng rng(seed);
        support::ThreadPool pool(2);
        for (int s = 0; s < kSteps; ++s) {
          (void)domain.step(rng, pool);
          if (s % 6 == 5) {
            const DistributedReshardResult res = domain.rebalance();
            EXPECT_EQ(res.boundaries.size(),
                      static_cast<std::size_t>(ranks) + 1);
            EXPECT_GE(res.discs_moved, 0);
            expect_complete_disjoint_cover(comm, domain);
          }
        }
        expect_matches_reference(ref, domain, rng,
                                 std::string("rebalance, partitioner ") +
                                     name + ", trial " +
                                     std::to_string(trial));
      });
    }
  }
}

/// Both wire protocols must produce the SAME domain — bit-equal weights,
/// counters, and master-stream position — including across a mid-run
/// rebalance that reshapes the neighbor sets.
TEST(DistributedErosion, StepExchangeModesAreBitIdenticalAcrossModes) {
  constexpr int kSteps = 18;
  support::Rng config_rng(808);
  for (int trial = 0; trial < 2; ++trial) {
    const DomainConfig cfg = testing::random_domain_config(config_rng);
    const std::uint64_t seed = 700 + static_cast<std::uint64_t>(trial);
    const SerialReference ref = serial_reference(cfg, seed, kSteps);
    for (const std::string& name : lb::partitioner_names()) {
      for (const int ranks : {2, 4, 8}) {
        if (ranks > cfg.columns) continue;
        for (const ExchangeMode mode :
             {ExchangeMode::kAllToAll, ExchangeMode::kNeighbor}) {
          runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
            DistributedDomain domain(cfg, comm, shared_partitioner(name),
                                     mode);
            support::Rng rng(seed);
            for (int s = 0; s < kSteps; ++s) {
              (void)domain.step(rng);
              if (s == kSteps / 2) (void)domain.rebalance();
            }
            expect_matches_reference(
                ref, domain, rng,
                "exchange " + exchange_mode_name(mode) + ", partitioner " +
                    name + ", ranks " + std::to_string(ranks));
          });
        }
      }
    }
  }
}

/// The headline property of the neighbor-aware exchange: on the app-shaped
/// domain (localized discs, one per initial stripe) it sends strictly fewer
/// per-step messages — and fewer payload bytes — than the all-to-all
/// reference for every R ≥ 4, while the runtime-layer traffic counters
/// confirm the domain's own accounting message for message.
TEST(DistributedErosion, NeighborExchangeSendsStrictlyFewerStepMessages) {
  // The golden-config geometry: 16 discs of radius 16 on 48-column stripes.
  DomainConfig cfg;
  cfg.columns = 16 * 48;
  cfg.rows = 64;
  for (std::int64_t i = 0; i < 16; ++i)
    cfg.discs.push_back({i * 48 + 24, 32, 16, i == 7 ? 0.4 : 0.02});
  cfg.validate();
  constexpr int kSteps = 10;

  for (const std::string& name : lb::partitioner_names()) {
    for (const int ranks : {4, 8}) {
      std::uint64_t msgs[2] = {0, 0};
      std::uint64_t bytes[2] = {0, 0};
      for (const ExchangeMode mode :
           {ExchangeMode::kAllToAll, ExchangeMode::kNeighbor}) {
        const auto m = static_cast<std::size_t>(mode == ExchangeMode::kNeighbor);
        runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
          DistributedDomain domain(cfg, comm, shared_partitioner(name), mode);
          // The traffic counters are world-global, so each snapshot sits in
          // a barrier-bracketed quiescent window (a lone barrier is not
          // enough: released ranks race ahead into their next sends).
          comm.barrier();
          const runtime::TrafficCounters before = comm.traffic();
          comm.barrier();
          support::Rng rng(4);
          for (int s = 0; s < kSteps; ++s) (void)domain.step(rng);
          comm.barrier();
          const runtime::TrafficCounters after = comm.traffic();
          comm.barrier();
          const auto my_msgs =
              static_cast<std::int64_t>(domain.step_messages_sent());
          const auto my_bytes =
              static_cast<std::int64_t>(domain.step_payload_bytes_sent());
          const std::int64_t total_msgs = comm.allreduce(my_msgs);
          const std::int64_t total_bytes = comm.allreduce(my_bytes);
          if (comm.rank() == 0) {
            msgs[m] = static_cast<std::uint64_t>(total_msgs);
            bytes[m] = static_cast<std::uint64_t>(total_bytes);
            // The pure step loop sends nothing but the exchange itself, so
            // the runtime counters must agree exactly with the domain's
            // accounting (minus the allreduce/barrier bracket, which runs
            // after `after` was snapshotted).
            EXPECT_EQ(after.messages - before.messages,
                      static_cast<std::uint64_t>(total_msgs))
                << name << ", ranks " << ranks << ", "
                << exchange_mode_name(mode);
            EXPECT_EQ(after.payload_bytes - before.payload_bytes,
                      static_cast<std::uint64_t>(total_bytes))
                << name << ", ranks " << ranks << ", "
                << exchange_mode_name(mode);
          }
        });
      }
      EXPECT_LT(msgs[1], msgs[0])
          << name << ", ranks " << ranks
          << " — neighbor mode must send strictly fewer step messages";
      EXPECT_LT(bytes[1], bytes[0]) << name << ", ranks " << ranks;
      // All-to-all is exactly R·(R−1) messages per step, by construction.
      EXPECT_EQ(msgs[0], static_cast<std::uint64_t>(ranks) *
                             static_cast<std::uint64_t>(ranks - 1) * kSteps);
    }
  }
}

/// Neighbor sets are derived from replicated state, so the send set of rank
/// q must mirror the recv set of every rank it targets.
TEST(DistributedErosion, HaloNeighborSetsAreMutuallyConsistent) {
  const DomainConfig cfg = adversarial_boundary_config();
  runtime::spmd_run(8, [&](runtime::Comm& comm) {
    DistributedDomain domain(cfg, comm, shared_partitioner("stripe"));
    // Exchange the send sets (one small message per peer) and verify each
    // against the local recv set.
    std::vector<std::int64_t> mine(domain.halo_send_neighbors().begin(),
                                   domain.halo_send_neighbors().end());
    for (int q = 0; q < domain.ranks(); ++q)
      if (q != domain.rank()) comm.send_span<std::int64_t>(q, 9, mine);
    for (int q = 0; q < domain.ranks(); ++q) {
      if (q == domain.rank()) continue;
      const auto theirs = comm.recv_vector<std::int64_t>(q, 9);
      const bool q_sends_to_me =
          std::find(theirs.begin(), theirs.end(),
                    static_cast<std::int64_t>(domain.rank())) != theirs.end();
      const auto& rn = domain.halo_recv_neighbors();
      const bool i_expect_q = std::find(rn.begin(), rn.end(), q) != rn.end();
      EXPECT_EQ(q_sends_to_me, i_expect_q)
          << "rank " << domain.rank() << " vs rank " << q;
    }
    // The adversarial discs straddle stripes, so SOMEONE has neighbors.
    const auto any = comm.allreduce(
        static_cast<std::int64_t>(domain.halo_send_neighbors().size()));
    EXPECT_GT(any, 0);
  });
}

TEST(DistributedErosion, HaloExchangeOnAdversarialBoundaryDiscs) {
  // Both discs straddle multiple 8-column stripes, so every step routes
  // eroded-cell deltas to several owning ranks; the weights must still be
  // bit-equal to the serial run, column by column.
  const DomainConfig cfg = adversarial_boundary_config();
  constexpr int kSteps = 18;
  const std::uint64_t seed = 99;
  const SerialReference ref = serial_reference(cfg, seed, kSteps);

  for (const std::string name : {"stripe", "greedy"}) {
    runtime::spmd_run(8, [&](runtime::Comm& comm) {
      DistributedDomain domain(cfg, comm, shared_partitioner(name));
      // Sanity: under the even-stripe cut the first disc's bounding box
      // [6, 26] really does span several stripes.
      if (name == "stripe") {
        EXPECT_NE(domain.owner_of_column(6), domain.owner_of_column(25));
      }
      support::Rng rng(seed);
      for (int s = 0; s < kSteps; ++s) (void)domain.step(rng);
      expect_matches_reference(ref, domain, rng,
                               "adversarial boundary discs, " + name);
    });
  }
}

TEST(DistributedErosion, RebalanceMigratesStateAsMessagesAndMatchesModel) {
  // Erode with a strongly erodible disc so the weight profile skews and a
  // weighted recut MUST move boundaries (and with them columns and at least
  // one disc) away from the initial even cut.
  DomainConfig cfg;
  cfg.columns = 96;
  cfg.rows = 64;
  cfg.discs = {{14, 32, 11, 0.5},
               {44, 32, 11, 0.02},
               {76, 32, 11, 0.02}};
  cfg.validate();

  runtime::spmd_run(4, [&](runtime::Comm& comm) {
    // The greedy partitioner cuts against the CURRENT weights, so after the
    // strong disc erodes (and gains refined workload) the recut must move
    // the boundaries it chose for the initial profile.
    DistributedDomain domain(cfg, comm, shared_partitioner("greedy"));
    support::Rng rng(7);
    for (int s = 0; s < 16; ++s) (void)domain.step(rng);

    const lb::StripeBoundaries before = domain.rank_boundaries();
    const DistributedReshardResult res = domain.rebalance();
    EXPECT_NE(before, res.boundaries)
        << "the skewed profile should move the even cut";
    EXPECT_GE(res.discs_moved, 1)
        << "the recut should hand at least one disc to a new owner";

    // The analytic prediction must match the columns actually exchanged —
    // totals and the per-rank sent+received vector.
    ASSERT_EQ(res.observed_per_rank_bytes.size(),
              res.predicted.per_pe_bytes.size());
    const double tol = 1e-9 * (1.0 + res.predicted.total_bytes);
    EXPECT_NEAR(res.predicted.total_bytes, res.observed_column_bytes, tol);
    for (std::size_t p = 0; p < res.observed_per_rank_bytes.size(); ++p)
      EXPECT_NEAR(res.predicted.per_pe_bytes[p],
                  res.observed_per_rank_bytes[p], tol)
          << "rank " << p;
    // Real payload crossed the wire: at least one weight column's 8 bytes
    // per moved column, plus full serialized discs when ownership moved.
    EXPECT_GT(res.observed_payload_bytes, 0.0);

    // Trajectory unaffected: continue stepping and compare against serial.
    for (int s = 0; s < 8; ++s) (void)domain.step(rng);
    const SerialReference ref = serial_reference(cfg, 7, 24);
    expect_matches_reference(ref, domain, rng, "post-migration stepping");
  });
}

TEST(DistributedErosion, DiscHandOffRoundTripsBitExactly) {
  support::Rng config_rng(123);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  DiscState d = build_disc_state(cfg.discs[0]);
  support::Rng rng(3);
  for (int s = 0; s < 5; ++s) apply_disc(d, decide_disc(d, rng));
  const auto payload = serialize_disc(4, d);
  const DiscState back = deserialize_disc(payload, 4);
  EXPECT_EQ(d.x0, back.x0);
  EXPECT_EQ(d.y0, back.y0);
  EXPECT_EQ(d.side, back.side);
  EXPECT_EQ(d.erosion_prob, back.erosion_prob);
  EXPECT_EQ(d.rock_remaining, back.rock_remaining);
  EXPECT_EQ(d.cells, back.cells);
  EXPECT_EQ(d.frontier, back.frontier);
  EXPECT_THROW((void)deserialize_disc(payload, 5), std::invalid_argument);
  EXPECT_THROW((void)deserialize_disc(
                   std::span<const std::byte>(payload).first(10), 4),
               std::invalid_argument);
}

/// App-level wiring: AppConfig::ranks > 1 runs the SAME virtual-time LB
/// machinery (LbController) over the distributed domain, so the whole
/// RunResult — times, LB schedule, per-step α's, recorded thresholds — must
/// be BIT-identical to the in-process run, for every rank count and under
/// every α policy; only the rank-migration accounting is additional.
TEST(DistributedErosion, AppRunResultBitIdenticalToSerial) {
  erosion::AppConfig cfg;
  cfg.pe_count = 16;
  cfg.columns_per_pe = 48;
  cfg.rows = 64;
  cfg.rock_radius = 16;
  cfg.iterations = 60;
  cfg.seed = 3;
  cfg.method = Method::kUlba;
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;

  for (const AlphaPolicy policy :
       {AlphaPolicy::kFixed, AlphaPolicy::kGossipModel}) {
    AppConfig serial_cfg = cfg;
    serial_cfg.alpha_policy = policy;
    const RunResult serial = ErosionApp(serial_cfg).run();
    ASSERT_GE(serial.lb_count, 1)
        << "the reference run must exercise at least one mid-run LB step";

    for (const std::int64_t ranks : {2, 4, 8}) {
      AppConfig dist_cfg = serial_cfg;
      dist_cfg.ranks = ranks;
      dist_cfg.threads = ranks == 4 ? 2 : 1;  // one variant on rank pools
      const RunResult dist = ErosionApp(dist_cfg).run();
      const std::string what = "ranks " + std::to_string(ranks) +
                               ", policy " + alpha_policy_name(policy);

      EXPECT_EQ(serial.total_seconds, dist.total_seconds) << what;
      EXPECT_EQ(serial.compute_seconds, dist.compute_seconds) << what;
      EXPECT_EQ(serial.lb_seconds, dist.lb_seconds) << what;
      EXPECT_EQ(serial.lb_count, dist.lb_count) << what;
      EXPECT_EQ(serial.fallback_count, dist.fallback_count) << what;
      EXPECT_EQ(serial.average_utilization, dist.average_utilization) << what;
      EXPECT_EQ(serial.eroded_cells, dist.eroded_cells) << what;
      EXPECT_EQ(serial.final_imbalance, dist.final_imbalance) << what;
      EXPECT_EQ(serial.lb_iterations, dist.lb_iterations) << what;
      EXPECT_EQ(serial.lb_alphas, dist.lb_alphas) << what;
      ASSERT_EQ(serial.iterations.size(), dist.iterations.size()) << what;
      for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
        EXPECT_EQ(serial.iterations[i].seconds, dist.iterations[i].seconds)
            << what << " — iteration " << i;
        EXPECT_EQ(serial.iterations[i].utilization,
                  dist.iterations[i].utilization)
            << what << " — iteration " << i;
        EXPECT_EQ(serial.iterations[i].degradation,
                  dist.iterations[i].degradation)
            << what << " — iteration " << i;
        EXPECT_EQ(serial.iterations[i].threshold,
                  dist.iterations[i].threshold)
            << what << " — iteration " << i;
        EXPECT_EQ(serial.iterations[i].lb_performed,
                  dist.iterations[i].lb_performed)
            << what << " — iteration " << i;
      }
      // The distributed accounting is additional: the serial run reports
      // none, the distributed run recut its stripes at every LB step.
      EXPECT_EQ(serial.rank_discs_moved, 0) << what;
      EXPECT_GE(dist.rank_migration_bytes, 0.0) << what;
      EXPECT_GT(dist.rank_observed_bytes, 0.0)
          << what << " — an LB step fired, so migrations crossed the wire";
    }
  }
}

/// App level, counter RNG kind: the serial in-process run, the sharded run,
/// the pooled run, and the distributed run must produce ONE RunResult bit
/// for bit — and it must differ from the fork kind's result (different
/// stream, different trajectory).
TEST(DistributedErosion, AppCounterKindOneResultAcrossThreadsShardsRanks) {
  erosion::AppConfig cfg;
  cfg.pe_count = 16;
  cfg.columns_per_pe = 48;
  cfg.rows = 64;
  cfg.rock_radius = 16;
  cfg.iterations = 50;
  cfg.seed = 3;
  cfg.method = Method::kUlba;
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;
  cfg.rng_kind = RngKind::kCounter;

  const RunResult serial = ErosionApp(cfg).run();
  ASSERT_GE(serial.lb_count, 1)
      << "the reference run must exercise at least one mid-run LB step";

  AppConfig fork_cfg = cfg;
  fork_cfg.rng_kind = RngKind::kFork;
  const RunResult fork = ErosionApp(fork_cfg).run();
  EXPECT_NE(serial.eroded_cells, fork.eroded_cells)
      << "counter and fork kinds must be different streams";

  const auto expect_same = [&](const AppConfig& variant,
                               const std::string& what) {
    const RunResult got = ErosionApp(variant).run();
    EXPECT_EQ(serial.total_seconds, got.total_seconds) << what;
    EXPECT_EQ(serial.compute_seconds, got.compute_seconds) << what;
    EXPECT_EQ(serial.lb_seconds, got.lb_seconds) << what;
    EXPECT_EQ(serial.lb_count, got.lb_count) << what;
    EXPECT_EQ(serial.eroded_cells, got.eroded_cells) << what;
    EXPECT_EQ(serial.average_utilization, got.average_utilization) << what;
    EXPECT_EQ(serial.final_imbalance, got.final_imbalance) << what;
    EXPECT_EQ(serial.lb_iterations, got.lb_iterations) << what;
    EXPECT_EQ(serial.lb_alphas, got.lb_alphas) << what;
  };
  AppConfig threaded = cfg;
  threaded.threads = 4;
  expect_same(threaded, "threads 4");
  AppConfig shard_cfg = cfg;
  shard_cfg.shards = 4;
  shard_cfg.threads = 2;
  expect_same(shard_cfg, "shards 4, threads 2");
  for (const std::int64_t ranks : {2, 4}) {
    AppConfig dist_cfg = cfg;
    dist_cfg.ranks = ranks;
    dist_cfg.threads = ranks == 4 ? 2 : 1;
    expect_same(dist_cfg, "ranks " + std::to_string(ranks));
  }
}

/// App level: the two exchange modes must yield the same RunResult bit for
/// bit (only the step-traffic accounting may differ), and the neighbor mode
/// must be the cheaper one.
TEST(DistributedErosion, AppExchangeModesBitIdenticalNeighborCheaper) {
  erosion::AppConfig cfg;
  cfg.pe_count = 16;
  cfg.columns_per_pe = 48;
  cfg.rows = 64;
  cfg.rock_radius = 16;
  cfg.iterations = 40;
  cfg.seed = 3;
  cfg.method = Method::kUlba;
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;

  for (const std::int64_t ranks : {4, 8}) {
    AppConfig a2a_cfg = cfg;
    a2a_cfg.ranks = ranks;
    a2a_cfg.exchange = "alltoall";
    AppConfig nbr_cfg = a2a_cfg;
    nbr_cfg.exchange = "neighbor";
    const RunResult a2a = ErosionApp(a2a_cfg).run();
    const RunResult nbr = ErosionApp(nbr_cfg).run();
    const std::string what = "ranks " + std::to_string(ranks);

    EXPECT_EQ(a2a.total_seconds, nbr.total_seconds) << what;
    EXPECT_EQ(a2a.compute_seconds, nbr.compute_seconds) << what;
    EXPECT_EQ(a2a.lb_seconds, nbr.lb_seconds) << what;
    EXPECT_EQ(a2a.lb_count, nbr.lb_count) << what;
    EXPECT_EQ(a2a.eroded_cells, nbr.eroded_cells) << what;
    EXPECT_EQ(a2a.final_imbalance, nbr.final_imbalance) << what;
    EXPECT_EQ(a2a.lb_iterations, nbr.lb_iterations) << what;
    EXPECT_EQ(a2a.lb_alphas, nbr.lb_alphas) << what;
    EXPECT_EQ(a2a.rank_discs_moved, nbr.rank_discs_moved) << what;
    EXPECT_EQ(a2a.rank_migration_bytes, nbr.rank_migration_bytes) << what;
    EXPECT_EQ(a2a.rank_observed_bytes, nbr.rank_observed_bytes) << what;
    ASSERT_EQ(a2a.iterations.size(), nbr.iterations.size()) << what;
    for (std::size_t i = 0; i < a2a.iterations.size(); ++i) {
      EXPECT_EQ(a2a.iterations[i].seconds, nbr.iterations[i].seconds)
          << what << " — iteration " << i;
      EXPECT_EQ(a2a.iterations[i].degradation, nbr.iterations[i].degradation)
          << what << " — iteration " << i;
    }
    EXPECT_GT(a2a.rank_step_messages, 0) << what;
    EXPECT_LT(nbr.rank_step_messages, a2a.rank_step_messages) << what;
    EXPECT_LT(nbr.rank_step_bytes, a2a.rank_step_bytes) << what;
  }
}

TEST(DistributedErosion, AppConfigRejectsRanksShardsCombination) {
  erosion::AppConfig cfg;
  cfg.ranks = 2;
  cfg.shards = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.shards = 1;
  cfg.ranks = cfg.pe_count + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.ranks = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(DistributedErosion, AppConfigValidatesExchangeAndMeasuredKnobs) {
  erosion::AppConfig cfg;
  cfg.ranks = 2;
  cfg.exchange = "broadcast-tree";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.exchange = "alltoall";
  cfg.validate();
  cfg.exchange = "neighbor";
  cfg.validate();
  // Measured mode needs the SPMD substrate and positive cost scales.
  cfg.measure_time = true;
  cfg.validate();
  cfg.ranks = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.ranks = 2;
  cfg.ns_scale = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.ns_scale = 4.0;
  cfg.migration_scale = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW((void)exchange_mode_from_name("hypercube"),
               std::invalid_argument);
  EXPECT_EQ(exchange_mode_name(exchange_mode_from_name("neighbor")),
            "neighbor");
  EXPECT_EQ(exchange_mode_name(exchange_mode_from_name("alltoall")),
            "alltoall");
}

TEST(DistributedErosion, RejectsDegenerateConfigurations) {
  support::Rng config_rng(99);
  const DomainConfig cfg = testing::random_domain_config(config_rng);
  runtime::spmd_run(2, [&](runtime::Comm& comm) {
    EXPECT_THROW(DistributedDomain(cfg, comm, nullptr),
                 std::invalid_argument);
  });
  DomainConfig tiny;
  tiny.columns = 8;
  tiny.rows = 16;
  tiny.discs = {{4, 8, 1, 0.1}};
  tiny.validate();
  runtime::spmd_run(9, [&](runtime::Comm& comm) {
    EXPECT_THROW(DistributedDomain(tiny, comm, shared_partitioner("stripe")),
                 std::invalid_argument);
  });
}

}  // namespace
}  // namespace ulba::erosion
