// ModelParams — Table I quantities and their identities.
#include "core/params.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace ulba::core {
namespace {

using ulba::testing::tiny_params;

TEST(Params, DeltaWIdentity) {
  const ModelParams p = tiny_params();
  // ΔW = a·P + m·N = 2·10 + 15·2 = 50
  EXPECT_DOUBLE_EQ(p.delta_w(), 50.0);
}

TEST(Params, MenonRates) {
  const ModelParams p = tiny_params();
  // â = a + mN/P = 2 + 15·2/10 = 5 ;  m̂ = m(P−N)/P = 15·8/10 = 12
  EXPECT_DOUBLE_EQ(p.a_hat(), 5.0);
  EXPECT_DOUBLE_EQ(p.m_hat(), 12.0);
}

TEST(Params, RateDecompositionIsConsistent) {
  // â + m̂·(N/(P−N))·…: the simplest cross-check is ΔW = â·P + m̂·P − m̂·P +…
  // Use the defining identity instead: â·P = aP + mN and m̂·P = m(P−N).
  const ModelParams p = tiny_params();
  EXPECT_DOUBLE_EQ(p.a_hat() * static_cast<double>(p.P), p.delta_w());
  EXPECT_DOUBLE_EQ(p.m_hat() * static_cast<double>(p.P),
                   p.m * static_cast<double>(p.P - p.N));
}

TEST(Params, WorkloadEvolutionEq1) {
  const ModelParams p = tiny_params();
  EXPECT_DOUBLE_EQ(p.wtot(0), 1000.0);
  EXPECT_DOUBLE_EQ(p.wtot(1), 1050.0);
  EXPECT_DOUBLE_EQ(p.wtot(10), 1500.0);
}

TEST(Params, BalancedShare) {
  const ModelParams p = tiny_params();
  EXPECT_DOUBLE_EQ(p.balanced_share(0), 100.0);
  EXPECT_DOUBLE_EQ(p.balanced_share(10), 150.0);
}

TEST(Params, ValidateAcceptsGoodParams) {
  EXPECT_NO_THROW(tiny_params().validate());
  EXPECT_NO_THROW(ulba::testing::paper_scale_params().validate());
}

TEST(Params, ValidateRejectsBadValues) {
  auto with = [](auto mutate) {
    ModelParams p = tiny_params();
    mutate(p);
    return p;
  };
  EXPECT_THROW(with([](auto& p) { p.P = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.N = -1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.N = p.P; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.gamma = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.w0 = -1.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.a = -0.5; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.m = -0.5; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.alpha = 1.5; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.alpha = -0.1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.omega = 0.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](auto& p) { p.lb_cost = -1.0; }).validate(),
               std::invalid_argument);
}

TEST(Params, ZeroOverloadersMeansNoExtraRate) {
  ModelParams p = tiny_params();
  p.N = 0;
  p.alpha = 0.0;
  p.validate();
  EXPECT_DOUBLE_EQ(p.m_hat(), p.m);  // m̂ = m·P/P = m when N = 0
  EXPECT_DOUBLE_EQ(p.a_hat(), p.a);
  EXPECT_DOUBLE_EQ(p.delta_w(), p.a * static_cast<double>(p.P));
}

}  // namespace
}  // namespace ulba::core
