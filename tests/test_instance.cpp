// Table-II instance generator: every draw obeys its distribution.
#include "core/instance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ulba::core {
namespace {

TEST(InstanceGenerator, DefaultsMatchPaper) {
  const InstanceGenerator gen;
  EXPECT_EQ(gen.options().gamma, 100);
  EXPECT_DOUBLE_EQ(gen.options().omega, 1e9);
}

TEST(InstanceGenerator, SamplesAreValidatedParams) {
  support::Rng rng(1);
  const InstanceGenerator gen;
  for (int i = 0; i < 100; ++i)
    EXPECT_NO_THROW(gen.sample(rng).params.validate());
}

TEST(InstanceGenerator, PComesFromTheTableSet) {
  support::Rng rng(2);
  const InstanceGenerator gen;
  std::set<std::int64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(gen.sample(rng).params.P);
  EXPECT_EQ(seen, (std::set<std::int64_t>{256, 512, 1024, 2048}));
}

TEST(InstanceGenerator, TableIIRanges) {
  support::Rng rng(3);
  const InstanceGenerator gen;
  for (int i = 0; i < 500; ++i) {
    const Instance inst = gen.sample(rng);
    const ModelParams& p = inst.params;
    const auto pd = static_cast<double>(p.P);

    EXPECT_GE(inst.v, 0.01);
    EXPECT_LT(inst.v, 0.2);
    EXPECT_GE(p.N, 1);
    EXPECT_LE(static_cast<double>(p.N), 0.2 * pd + 1.0);

    EXPECT_GE(p.w0, 52e7 * pd);
    EXPECT_LT(p.w0, 1165e7 * pd);

    EXPECT_GE(inst.x, 0.01);
    EXPECT_LT(inst.x, 0.3);
    EXPECT_GE(inst.y, 0.8);
    EXPECT_LT(inst.y, 1.0);

    EXPECT_GE(p.alpha, 0.0);
    EXPECT_LE(p.alpha, 1.0);

    EXPECT_GE(inst.z, 0.1);
    EXPECT_LT(inst.z, 3.0);
    // C (seconds) = (W0/P)·z/ω
    EXPECT_NEAR(p.lb_cost, (p.w0 / pd) * inst.z / p.omega,
                1e-9 * p.lb_cost);
  }
}

TEST(InstanceGenerator, DeltaWIdentityHoldsExactly) {
  support::Rng rng(4);
  const InstanceGenerator gen;
  for (int i = 0; i < 200; ++i) {
    const Instance inst = gen.sample(rng);
    const ModelParams& p = inst.params;
    const double dw_drawn = (p.w0 / static_cast<double>(p.P)) * inst.x;
    EXPECT_NEAR(p.delta_w(), dw_drawn, 1e-9 * dw_drawn);
  }
}

TEST(InstanceGenerator, DeterministicForFixedSeed) {
  const InstanceGenerator gen;
  support::Rng a(99), b(99);
  for (int i = 0; i < 20; ++i) {
    const Instance ia = gen.sample(a);
    const Instance ib = gen.sample(b);
    EXPECT_EQ(ia.params.P, ib.params.P);
    EXPECT_DOUBLE_EQ(ia.params.w0, ib.params.w0);
    EXPECT_DOUBLE_EQ(ia.params.m, ib.params.m);
    EXPECT_DOUBLE_EQ(ia.params.alpha, ib.params.alpha);
  }
}

TEST(InstanceGenerator, PinningP) {
  InstanceOptions opts;
  opts.pin_p = 1024;
  const InstanceGenerator gen(opts);
  support::Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.sample(rng).params.P, 1024);
}

TEST(InstanceGenerator, PinningOverloadingFraction) {
  InstanceOptions opts;
  opts.pin_p = 1000;
  opts.pin_overloading_fraction = 0.048;
  const InstanceGenerator gen(opts);
  support::Rng rng(6);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.sample(rng).params.N, 48);
}

TEST(InstanceGenerator, PinningAlpha) {
  InstanceOptions opts;
  opts.pin_alpha = 0.37;
  const InstanceGenerator gen(opts);
  support::Rng rng(7);
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(gen.sample(rng).params.alpha, 0.37);
}

TEST(InstanceGenerator, RejectsBadOptions) {
  InstanceOptions bad_gamma;
  bad_gamma.gamma = 0;
  EXPECT_THROW(InstanceGenerator{bad_gamma}, std::invalid_argument);

  InstanceOptions bad_frac;
  bad_frac.pin_overloading_fraction = 1.0;
  EXPECT_THROW(InstanceGenerator{bad_frac}, std::invalid_argument);

  InstanceOptions bad_alpha;
  bad_alpha.pin_alpha = -0.5;
  EXPECT_THROW(InstanceGenerator{bad_alpha}, std::invalid_argument);
}

TEST(InstanceGenerator, MeanStatisticsNearDistributionCenters) {
  support::Rng rng(8);
  const InstanceGenerator gen;
  double sum_v = 0.0, sum_x = 0.0, sum_y = 0.0, sum_z = 0.0, sum_alpha = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Instance inst = gen.sample(rng);
    sum_v += inst.v;
    sum_x += inst.x;
    sum_y += inst.y;
    sum_z += inst.z;
    sum_alpha += inst.params.alpha;
  }
  EXPECT_NEAR(sum_v / n, 0.105, 0.01);    // U(0.01, 0.2)
  EXPECT_NEAR(sum_x / n, 0.155, 0.01);    // U(0.01, 0.3)
  EXPECT_NEAR(sum_y / n, 0.9, 0.01);      // U(0.8, 1.0)
  EXPECT_NEAR(sum_z / n, 1.55, 0.05);     // U(0.1, 3.0)
  EXPECT_NEAR(sum_alpha / n, 0.5, 0.02);  // U(0, 1)
}

}  // namespace
}  // namespace ulba::core
