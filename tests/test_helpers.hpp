// Shared fixtures/factories for the ULBA test suites.
//
// The randomized factories (random_model_params, random_domain_config) are
// THE generators for property-style tests: every suite that needs "some
// valid random configuration" draws from these, so widening the tested
// envelope (new parameter ranges, more discs, …) is a one-place change.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/params.hpp"
#include "erosion/domain.hpp"
#include "support/rng.hpp"

namespace ulba::testing {

/// A hand-checkable model: P = 10 PEs, N = 2 overloading, 20 iterations,
/// W0 = 1000 FLOP, a = 2, m = 15, ω = 1 FLOPS (so FLOP == seconds), C = 50 s.
/// ΔW = 2·10 + 15·2 = 50 FLOP/iteration.
inline core::ModelParams tiny_params() {
  core::ModelParams p;
  p.P = 10;
  p.N = 2;
  p.gamma = 20;
  p.w0 = 1000.0;
  p.a = 2.0;
  p.m = 15.0;
  p.alpha = 0.5;
  p.omega = 1.0;
  p.lb_cost = 50.0;
  return p;
}

/// A paper-scale model: P = 512, N = 32, γ = 100, ω = 1 GFLOPS, workload and
/// rates inside the Table-II envelope.
inline core::ModelParams paper_scale_params() {
  core::ModelParams p;
  p.P = 512;
  p.N = 32;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 300e7 * static_cast<double>(p.P);
  const double delta_w = (p.w0 / static_cast<double>(p.P)) * 0.1;
  const double y = 0.9;
  p.a = delta_w * (1.0 - y) / static_cast<double>(p.P);
  p.m = delta_w * y / static_cast<double>(p.N);
  p.alpha = 0.5;
  p.lb_cost = (p.w0 / static_cast<double>(p.P)) * 0.5 / p.omega;
  return p;
}

/// A random valid ModelParams inside (a slightly widened version of) the
/// Table-II envelope: P ∈ {8..2048}, N < P/4, the ΔW = aP + mN identity by
/// construction, C in the z ∈ [0.1, 3] regime. Already validated.
inline core::ModelParams random_model_params(support::Rng& rng) {
  core::ModelParams p;
  p.P = std::int64_t{1} << rng.uniform_int(3, 11);  // 8 … 2048
  p.N = rng.uniform_int(1, std::max<std::int64_t>(1, p.P / 4));
  p.gamma = rng.uniform_int(20, 200);
  p.omega = 1e9;
  const auto pd = static_cast<double>(p.P);
  p.w0 = rng.uniform(52e7, 1165e7) * pd;
  const double delta_w = (p.w0 / pd) * rng.uniform(0.01, 0.3);
  const double y = rng.uniform(0.8, 1.0);
  p.a = delta_w * (1.0 - y) / pd;
  p.m = delta_w * y / static_cast<double>(p.N);
  p.alpha = rng.uniform(0.0, 1.0);
  p.lb_cost = (p.w0 / pd) * rng.uniform(0.1, 3.0) / p.omega;
  p.validate();
  return p;
}

/// A random valid erosion DomainConfig: 1–6 pairwise-disjoint discs of
/// random radii/probabilities placed left-to-right with the ≥2-cell margin
/// DomainConfig::validate demands. Already validated.
inline erosion::DomainConfig random_domain_config(support::Rng& rng) {
  erosion::DomainConfig c;
  c.rows = rng.uniform_int(32, 96);
  c.flop_per_cell = rng.uniform(20.0, 120.0);
  c.bytes_per_cell = rng.uniform(16.0, 256.0);
  c.refinement_factor = static_cast<double>(rng.uniform_int(1, 6));
  const std::int64_t discs = rng.uniform_int(1, 6);
  const std::int64_t max_radius = std::min<std::int64_t>(12, (c.rows - 5) / 2);
  std::int64_t cursor = 2;  // left edge + the one-cell fluid margin
  for (std::int64_t i = 0; i < discs; ++i) {
    erosion::RockDisc d;
    d.radius = rng.uniform_int(3, max_radius);
    d.cx = cursor + d.radius + rng.uniform_int(0, 8);
    d.cy = rng.uniform_int(d.radius + 2, c.rows - d.radius - 3);
    d.erosion_prob = rng.uniform(0.0, 1.0);
    c.discs.push_back(d);
    // A ≥2-cell horizontal gap between disc edges keeps every pair disjoint
    // regardless of their vertical placement.
    cursor = d.cx + d.radius + 2;
  }
  c.columns = cursor + rng.uniform_int(2, 24);
  c.validate();
  return c;
}

}  // namespace ulba::testing
