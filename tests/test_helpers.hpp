// Shared fixtures/factories for the ULBA test suites.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace ulba::testing {

/// A hand-checkable model: P = 10 PEs, N = 2 overloading, 20 iterations,
/// W0 = 1000 FLOP, a = 2, m = 15, ω = 1 FLOPS (so FLOP == seconds), C = 50 s.
/// ΔW = 2·10 + 15·2 = 50 FLOP/iteration.
inline core::ModelParams tiny_params() {
  core::ModelParams p;
  p.P = 10;
  p.N = 2;
  p.gamma = 20;
  p.w0 = 1000.0;
  p.a = 2.0;
  p.m = 15.0;
  p.alpha = 0.5;
  p.omega = 1.0;
  p.lb_cost = 50.0;
  return p;
}

/// A paper-scale model: P = 512, N = 32, γ = 100, ω = 1 GFLOPS, workload and
/// rates inside the Table-II envelope.
inline core::ModelParams paper_scale_params() {
  core::ModelParams p;
  p.P = 512;
  p.N = 32;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 300e7 * static_cast<double>(p.P);
  const double delta_w = (p.w0 / static_cast<double>(p.P)) * 0.1;
  const double y = 0.9;
  p.a = delta_w * (1.0 - y) / static_cast<double>(p.P);
  p.m = delta_w * y / static_cast<double>(p.N);
  p.alpha = 0.5;
  p.lb_cost = (p.w0 / static_cast<double>(p.P)) * 0.5 / p.omega;
  return p;
}

}  // namespace ulba::testing
