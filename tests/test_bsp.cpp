// The virtual-time BSP machine and the α-β communication model.
#include <gtest/gtest.h>

#include <vector>

#include "bsp/comm_model.hpp"
#include "bsp/machine.hpp"

namespace ulba::bsp {
namespace {

TEST(CommModel, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW((void)ceil_log2(0), std::invalid_argument);
}

TEST(CommModel, P2pIsAlphaPlusBytesOverBeta) {
  CommModel m;
  m.latency_s = 2e-6;
  m.bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(m.p2p(0), 2e-6);
  EXPECT_DOUBLE_EQ(m.p2p(1'000'000), 2e-6 + 1e-3);
  EXPECT_THROW((void)m.p2p(-1), std::invalid_argument);
}

TEST(CommModel, CollectiveCostsScaleWithLogP) {
  const CommModel m;
  EXPECT_DOUBLE_EQ(m.broadcast(100, 8), 3.0 * m.p2p(100));
  EXPECT_DOUBLE_EQ(m.allreduce(100, 8), 3.0 * m.p2p(100));
  EXPECT_DOUBLE_EQ(m.broadcast(100, 1), 0.0);
}

TEST(CommModel, GatherIsTreeLatencyPlusRootVolume) {
  CommModel m;
  m.latency_s = 1e-6;
  m.bandwidth_Bps = 1e9;
  // ⌈log₂5⌉ = 3 latency terms + 4·8 bytes through the root.
  EXPECT_DOUBLE_EQ(m.gather(8, 5), 3.0 * 1e-6 + 32.0 / 1e9);
  EXPECT_THROW((void)m.gather(-1, 4), std::invalid_argument);
}

TEST(CommModel, MigrationZeroBytesIsFree) {
  const CommModel m;
  EXPECT_DOUBLE_EQ(m.migrate(0), 0.0);
  EXPECT_GT(m.migrate(1), 0.0);
}

TEST(CommModel, ValidateRejectsBadConstants) {
  CommModel m;
  m.latency_s = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.latency_s = 1e-6;
  m.bandwidth_Bps = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Machine, SuperstepTakesMaxOverPes) {
  Machine mach(4, 10.0);  // 10 FLOPS
  const std::vector<double> loads{10.0, 20.0, 40.0, 20.0};
  const StepReport r = mach.run_superstep(loads);
  EXPECT_DOUBLE_EQ(r.seconds, 4.0);  // 40 FLOP / 10 FLOPS
  EXPECT_EQ(r.slowest_pe, 2);
  EXPECT_DOUBLE_EQ(r.utilization, (90.0 / 4.0) / 40.0);
  EXPECT_DOUBLE_EQ(mach.elapsed_seconds(), 4.0);
}

TEST(Machine, PerfectBalanceIsFullUtilization) {
  Machine mach(8, 1.0);
  const std::vector<double> loads(8, 5.0);
  const StepReport r = mach.run_superstep(loads);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Machine, CommTimeAddsToElapsedButNotBusy) {
  Machine mach(2, 1.0);
  const std::vector<double> loads{2.0, 2.0};
  (void)mach.run_superstep(loads, 3.0);
  EXPECT_DOUBLE_EQ(mach.elapsed_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(mach.busy_pe_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(mach.average_utilization(), 4.0 / (2.0 * 5.0));
}

TEST(Machine, ChargeGlobalAdvancesTheClock) {
  Machine mach(2, 1.0);
  mach.charge_global(7.5);
  EXPECT_DOUBLE_EQ(mach.elapsed_seconds(), 7.5);
  EXPECT_THROW(mach.charge_global(-1.0), std::invalid_argument);
}

TEST(Machine, AccumulatesOverSteps) {
  Machine mach(2, 2.0);
  (void)mach.run_superstep(std::vector<double>{4.0, 2.0});
  (void)mach.run_superstep(std::vector<double>{2.0, 6.0});
  EXPECT_DOUBLE_EQ(mach.elapsed_seconds(), 5.0);  // 2 + 3
  EXPECT_EQ(mach.supersteps(), 2);
  EXPECT_DOUBLE_EQ(mach.busy_pe_seconds(), 7.0);  // (6 + 8)/2
}

TEST(Machine, ResetClearsEverything) {
  Machine mach(2, 1.0);
  (void)mach.run_superstep(std::vector<double>{1.0, 1.0});
  mach.reset();
  EXPECT_DOUBLE_EQ(mach.elapsed_seconds(), 0.0);
  EXPECT_EQ(mach.supersteps(), 0);
  EXPECT_DOUBLE_EQ(mach.average_utilization(), 1.0);
}

TEST(Machine, ValidatesInput) {
  EXPECT_THROW(Machine(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Machine(2, 0.0), std::invalid_argument);
  Machine mach(2, 1.0);
  EXPECT_THROW((void)mach.run_superstep(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)mach.run_superstep(std::vector<double>{1.0, -1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)mach.run_superstep(std::vector<double>{1.0, 1.0}, -0.5),
      std::invalid_argument);
}

TEST(Machine, ZeroWorkStepIsFreeAndBalanced) {
  Machine mach(3, 1.0);
  const StepReport r = mach.run_superstep(std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(r.seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

// Analytic consistency: feeding the machine the standard model's per-PE
// loads reproduces Eq. (2) exactly.
TEST(Machine, ReproducesStandardModelIterationTimes) {
  const std::int64_t P = 10, N = 2;
  const double w0_share = 100.0, a = 2.0, m = 15.0;
  Machine mach(P, 1.0);
  for (std::int64_t t = 0; t < 5; ++t) {
    std::vector<double> loads(static_cast<std::size_t>(P));
    for (std::int64_t p = 0; p < P; ++p) {
      const bool overloading = p < N;
      loads[static_cast<std::size_t>(p)] =
          w0_share + (overloading ? (m + a) : a) * static_cast<double>(t);
    }
    const StepReport r = mach.run_superstep(loads);
    // Eq. (2) with ω = 1: share + (m+a)·t.
    EXPECT_DOUBLE_EQ(r.seconds, w0_share + (m + a) * static_cast<double>(t));
  }
}

}  // namespace
}  // namespace ulba::bsp
