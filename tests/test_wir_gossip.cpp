// WIR database freshness semantics and epidemic dissemination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/gossip.hpp"
#include "core/wir_database.hpp"

namespace ulba::core {
namespace {

TEST(WirDatabase, StartsUnknown) {
  const WirDatabase db(4);
  EXPECT_EQ(db.pe_count(), 4);
  EXPECT_EQ(db.unknown_count(), 4);
  EXPECT_FALSE(db.entry(0).known());
  EXPECT_EQ(db.wirs(), (std::vector<double>{0.0, 0.0, 0.0, 0.0}));
}

TEST(WirDatabase, UpdateAndRead) {
  WirDatabase db(3);
  db.update(1, 42.0, 7);
  EXPECT_TRUE(db.entry(1).known());
  EXPECT_DOUBLE_EQ(db.entry(1).wir, 42.0);
  EXPECT_EQ(db.entry(1).iteration, 7);
  EXPECT_EQ(db.unknown_count(), 2);
}

TEST(WirDatabase, StaleUpdateIsIgnored) {
  WirDatabase db(2);
  db.update(0, 10.0, 5);
  db.update(0, 99.0, 3);  // older measurement
  EXPECT_DOUBLE_EQ(db.entry(0).wir, 10.0);
  db.update(0, 20.0, 5);  // same-age refresh wins
  EXPECT_DOUBLE_EQ(db.entry(0).wir, 20.0);
}

TEST(WirDatabase, MergeKeepsFreshest) {
  WirDatabase a(3), b(3);
  a.update(0, 1.0, 10);
  a.update(1, 2.0, 3);
  b.update(1, 5.0, 8);
  b.update(2, 6.0, 1);
  const std::size_t adopted = a.merge_from(b);
  EXPECT_EQ(adopted, 2u);  // entries 1 and 2
  EXPECT_DOUBLE_EQ(a.entry(0).wir, 1.0);
  EXPECT_DOUBLE_EQ(a.entry(1).wir, 5.0);
  EXPECT_DOUBLE_EQ(a.entry(2).wir, 6.0);
}

TEST(WirDatabase, MergeIsIdempotent) {
  WirDatabase a(2), b(2);
  b.update(0, 4.0, 2);
  (void)a.merge_from(b);
  EXPECT_EQ(a.merge_from(b), 0u);
}

TEST(WirDatabase, MergeRejectsSizeMismatch) {
  WirDatabase a(2);
  const WirDatabase b(3);
  EXPECT_THROW((void)a.merge_from(b), std::invalid_argument);
}

TEST(WirDatabase, StalenessTracking) {
  WirDatabase db(2);
  db.update(0, 1.0, 4);
  EXPECT_EQ(db.max_staleness(10), 11);  // PE 1 unknown ⇒ now + 1
  db.update(1, 1.0, 9);
  EXPECT_EQ(db.max_staleness(10), 6);  // PE 0 is 6 iterations old
}

TEST(WirDatabase, BoundsChecked) {
  WirDatabase db(2);
  EXPECT_THROW(db.update(2, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)db.entry(-1), std::invalid_argument);
  EXPECT_THROW(db.update(0, 1.0, -3), std::invalid_argument);
  EXPECT_THROW(WirDatabase(0), std::invalid_argument);
}

TEST(Gossip, ConstructionChecks) {
  EXPECT_THROW(GossipNetwork(1, 1), std::invalid_argument);
  EXPECT_THROW(GossipNetwork(4, 0), std::invalid_argument);
  EXPECT_THROW(GossipNetwork(4, 4), std::invalid_argument);
  EXPECT_NO_THROW(GossipNetwork(4, 3));
}

TEST(Gossip, ObserveLocalLandsInOwnDatabase) {
  GossipNetwork net(4, 1);
  net.observe_local(2, 7.5, 0);
  EXPECT_DOUBLE_EQ(net.database(2).entry(2).wir, 7.5);
  EXPECT_EQ(net.database(0).unknown_count(), 4);
}

TEST(Gossip, OneStepSpreadsToFanoutPeers) {
  GossipNetwork net(8, 2);
  net.observe_local(0, 1.0, 0);
  support::Rng rng(1);
  net.step(rng);
  int informed = 0;
  for (std::int64_t pe = 0; pe < 8; ++pe)
    if (net.database(pe).entry(0).known()) ++informed;
  // The origin plus at most fanout new peers (snapshot semantics: one round
  // cannot relay).
  EXPECT_GE(informed, 2);
  EXPECT_LE(informed, 3);
}

TEST(Gossip, EventuallyEveryoneKnowsEverything) {
  GossipNetwork net(16, 2);
  for (std::int64_t pe = 0; pe < 16; ++pe)
    net.observe_local(pe, static_cast<double>(pe), 0);
  support::Rng rng(2);
  for (int round = 0; round < 64 && [&] {
         for (std::int64_t pe = 0; pe < 16; ++pe)
           if (net.database(pe).unknown_count() > 0) return true;
         return false;
       }();
       ++round) {
    net.step(rng);
  }
  for (std::int64_t pe = 0; pe < 16; ++pe) {
    EXPECT_EQ(net.database(pe).unknown_count(), 0) << "PE " << pe;
    for (std::int64_t src = 0; src < 16; ++src)
      EXPECT_DOUBLE_EQ(net.database(pe).entry(src).wir,
                       static_cast<double>(src));
  }
}

TEST(Gossip, RoundsToFullKnowledgeIsLogarithmicish) {
  // Epidemic dissemination reaches everyone in O(log P) rounds w.h.p.
  // Allow a generous constant: ≤ 4·log2(P) + 8 for fanout 2.
  for (std::int64_t pe_count : {8, 32, 128}) {
    GossipNetwork net(pe_count, 2);
    for (std::int64_t pe = 0; pe < pe_count; ++pe)
      net.observe_local(pe, 1.0, 0);
    const auto rounds = net.rounds_to_full_knowledge(support::Rng(3));
    const double limit = 4.0 * std::log2(static_cast<double>(pe_count)) + 8.0;
    EXPECT_LE(static_cast<double>(rounds), limit) << "P = " << pe_count;
    EXPECT_GE(rounds, 1);
  }
}

TEST(Gossip, RoundsToFullKnowledgeThrowsWithoutObservations) {
  const GossipNetwork net(4, 1);  // nobody ever observed anything
  EXPECT_THROW((void)net.rounds_to_full_knowledge(support::Rng(4)),
               std::invalid_argument);
}

TEST(Gossip, DeterministicForFixedSeed) {
  // After one round, which entries each PE knows depends only on the seed:
  // same seed ⇒ same knowledge pattern; different seed ⇒ (almost surely)
  // different pattern. Values converge to the same fixed point either way,
  // so the comparison must look at the knowledge mask, not the values.
  const auto run = [](std::uint64_t seed) {
    GossipNetwork net(12, 2);
    for (std::int64_t pe = 0; pe < 12; ++pe)
      net.observe_local(pe, static_cast<double>(pe * pe), 0);
    support::Rng rng(seed);
    net.step(rng);
    std::vector<bool> known;
    for (std::int64_t pe = 0; pe < 12; ++pe)
      for (std::int64_t src = 0; src < 12; ++src)
        known.push_back(net.database(pe).entry(src).known());
    return known;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Gossip, RandomizedConvergenceWithinSmoothingImpliedBound) {
  // Every PE's WIR evolves by the app's EMA, w(t) = s·target + (1−s)·w(t−1)
  // from w(−1) = 0, so w(t) = target·(1 − (1−s)^(t+1)). Gossip delivers a
  // snapshot that is `lag` iterations stale; the EMA contraction implies
  //   |w(now) − w(now−lag)| = target·(1−s)^(now−lag+1)·(1 − (1−s)^lag)
  //                         ≤ target·(1−s)^(now−lag+1).
  // After enough rounds every estimate must sit inside that bound of the
  // centralized (fresh) value — the quantitative version of the paper's
  // "principle of persistence". Randomized over PE counts, fanouts,
  // smoothing factors, and seeds.
  support::Rng meta(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t pe_count = meta.uniform_int(4, 64);
    const std::int64_t fanout =
        meta.uniform_int(1, std::min<std::int64_t>(4, pe_count - 1));
    const double s = meta.uniform(0.2, 1.0);
    GossipNetwork net(pe_count, fanout);
    std::vector<double> w(static_cast<std::size_t>(pe_count), 0.0);
    std::vector<double> target(static_cast<std::size_t>(pe_count));
    for (auto& t : target) t = meta.uniform(0.5, 10.0);
    support::Rng rng(meta());

    const std::int64_t rounds =
        4 * static_cast<std::int64_t>(
                std::log2(static_cast<double>(pe_count))) +
        20;
    for (std::int64_t t = 0; t < rounds; ++t) {
      for (std::int64_t pe = 0; pe < pe_count; ++pe) {
        const auto i = static_cast<std::size_t>(pe);
        w[i] = s * target[i] + (1.0 - s) * w[i];
        net.observe_local(pe, w[i], t);
      }
      net.step(rng);
    }

    const std::int64_t now = rounds - 1;
    for (std::int64_t pe = 0; pe < pe_count; ++pe) {
      for (std::int64_t src = 0; src < pe_count; ++src) {
        const WirDatabase::Entry& e = net.database(pe).entry(src);
        ASSERT_TRUE(e.known())
            << "P=" << pe_count << " f=" << fanout << " pe=" << pe
            << " src=" << src;
        const std::int64_t lag = now - e.iteration;
        ASSERT_GE(lag, 0);
        const double bound =
            target[static_cast<std::size_t>(src)] *
                std::pow(1.0 - s, static_cast<double>(now - lag + 1)) +
            1e-12;
        EXPECT_LE(std::abs(w[static_cast<std::size_t>(src)] - e.wir), bound)
            << "P=" << pe_count << " f=" << fanout << " s=" << s
            << " lag=" << lag;
      }
    }
  }
}

TEST(Gossip, RandomizedStalenessStaysLogarithmicish) {
  // After the warm-up, no entry should be older than a generous multiple of
  // the epidemic dissemination time O(log_{f+1} P).
  support::Rng meta(123);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t pe_count = meta.uniform_int(8, 96);
    const std::int64_t fanout =
        meta.uniform_int(1, std::min<std::int64_t>(3, pe_count - 1));
    GossipNetwork net(pe_count, fanout);
    support::Rng rng(meta());
    const std::int64_t rounds =
        6 * static_cast<std::int64_t>(
                std::log2(static_cast<double>(pe_count))) +
        24;
    for (std::int64_t t = 0; t < rounds; ++t) {
      for (std::int64_t pe = 0; pe < pe_count; ++pe)
        net.observe_local(pe, 1.0, t);
      net.step(rng);
    }
    const double limit =
        8.0 * std::log2(static_cast<double>(pe_count)) /
            std::log2(static_cast<double>(fanout + 1)) +
        16.0;
    for (std::int64_t pe = 0; pe < pe_count; ++pe) {
      EXPECT_LE(static_cast<double>(net.database(pe).max_staleness(rounds - 1)),
                limit)
          << "P=" << pe_count << " f=" << fanout << " pe=" << pe;
    }
  }
}

TEST(Gossip, OracleObservationReachesEveryDatabaseInstantly) {
  GossipNetwork net(8, 1);
  net.observe_oracle(3, 4.5, 2);
  for (std::int64_t pe = 0; pe < 8; ++pe) {
    EXPECT_TRUE(net.database(pe).entry(3).known()) << "PE " << pe;
    EXPECT_DOUBLE_EQ(net.database(pe).entry(3).wir, 4.5);
    EXPECT_EQ(net.database(pe).entry(3).iteration, 2);
  }
  EXPECT_THROW(net.observe_oracle(8, 1.0, 0), std::invalid_argument);
}

TEST(Gossip, FresherObservationsOverwriteDuringDissemination) {
  GossipNetwork net(4, 3);  // full fanout: one round reaches everyone
  net.observe_local(0, 1.0, 0);
  support::Rng rng(5);
  net.step(rng);
  net.observe_local(0, 2.0, 1);  // PE 0 measures again, fresher
  net.step(rng);
  for (std::int64_t pe = 0; pe < 4; ++pe)
    EXPECT_DOUBLE_EQ(net.database(pe).entry(0).wir, 2.0) << "PE " << pe;
}

}  // namespace
}  // namespace ulba::core
