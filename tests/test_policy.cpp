// Algorithm-2 weight computation: conservation, Eq. (6) agreement, fallback.
#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ulba_model.hpp"
#include "test_helpers.hpp"

namespace ulba::core {
namespace {

TEST(Policy, AllZeroAlphasGiveEvenSplit) {
  const std::vector<double> alphas(8, 0.0);
  const WeightAssignment w = compute_lb_weights(alphas, 800.0);
  EXPECT_EQ(w.overloading_count, 0);
  EXPECT_FALSE(w.fell_back_to_standard);
  for (double v : w.weights) EXPECT_DOUBLE_EQ(v, 100.0);
  for (double f : w.fractions) EXPECT_DOUBLE_EQ(f, 0.125);
}

TEST(Policy, MatchesEq6WithCommonAlpha) {
  // P = 10, N = 2, α = 0.5, Wtot = 1000 ⇒ W* = 50, W = 112.5 (Eq. (6)).
  std::vector<double> alphas(10, 0.0);
  alphas[3] = alphas[7] = 0.5;
  const WeightAssignment w = compute_lb_weights(alphas, 1000.0);
  EXPECT_EQ(w.overloading_count, 2);
  EXPECT_DOUBLE_EQ(w.weights[3], 50.0);
  EXPECT_DOUBLE_EQ(w.weights[7], 50.0);
  for (std::size_t p = 0; p < 10; ++p)
    if (p != 3 && p != 7) {
      EXPECT_DOUBLE_EQ(w.weights[p], 112.5);
    }
}

TEST(Policy, AgreesWithPostLbShares) {
  const ModelParams mp = ulba::testing::tiny_params();
  const PostLbShares shares = post_lb_shares(mp, 0, mp.alpha);
  std::vector<double> alphas(static_cast<std::size_t>(mp.P), 0.0);
  for (std::int64_t i = 0; i < mp.N; ++i)
    alphas[static_cast<std::size_t>(i)] = mp.alpha;
  const WeightAssignment w = compute_lb_weights(alphas, mp.wtot(0));
  EXPECT_DOUBLE_EQ(w.weights[0], shares.overloading);
  EXPECT_DOUBLE_EQ(w.weights[static_cast<std::size_t>(mp.N)],
                   shares.non_overloading);
}

TEST(Policy, WeightsAlwaysConserveTotal) {
  for (double alpha : {0.1, 0.4, 0.9}) {
    for (int n_over : {1, 3, 7}) {
      std::vector<double> alphas(20, 0.0);
      for (int i = 0; i < n_over; ++i)
        alphas[static_cast<std::size_t>(i)] = alpha;
      const WeightAssignment w = compute_lb_weights(alphas, 12345.0);
      const double sum =
          std::accumulate(w.weights.begin(), w.weights.end(), 0.0);
      EXPECT_NEAR(sum, 12345.0, 1e-9 * 12345.0)
          << "alpha=" << alpha << " n=" << n_over;
      const double fsum =
          std::accumulate(w.fractions.begin(), w.fractions.end(), 0.0);
      EXPECT_NEAR(fsum, 1.0, 1e-12);
    }
  }
}

TEST(Policy, MixedAlphasConserveToo) {
  std::vector<double> alphas(10, 0.0);
  alphas[0] = 0.2;
  alphas[4] = 0.7;
  alphas[9] = 0.5;
  const WeightAssignment w = compute_lb_weights(alphas, 1000.0);
  EXPECT_EQ(w.overloading_count, 3);
  EXPECT_DOUBLE_EQ(w.weights[0], 80.0);   // (1−0.2)·100
  EXPECT_DOUBLE_EQ(w.weights[4], 30.0);   // (1−0.7)·100
  EXPECT_DOUBLE_EQ(w.weights[9], 50.0);   // (1−0.5)·100
  // The 7 others share S = 1.4: (1 + 1.4/7)·100 = 120.
  EXPECT_DOUBLE_EQ(w.weights[1], 120.0);
  const double sum = std::accumulate(w.weights.begin(), w.weights.end(), 0.0);
  EXPECT_NEAR(sum, 1000.0, 1e-9);
}

TEST(Policy, MajorityOverloadingFallsBackToEvenSplit) {
  // §III-C: ≥ 50 % of PEs with α > 0 ⇒ behave as the standard method.
  std::vector<double> alphas(10, 0.0);
  for (int i = 0; i < 5; ++i) alphas[static_cast<std::size_t>(i)] = 0.4;
  const WeightAssignment w = compute_lb_weights(alphas, 1000.0);
  EXPECT_TRUE(w.fell_back_to_standard);
  for (double v : w.weights) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(Policy, JustUnderMajorityStillUnderloads) {
  std::vector<double> alphas(10, 0.0);
  for (int i = 0; i < 4; ++i) alphas[static_cast<std::size_t>(i)] = 0.4;
  const WeightAssignment w = compute_lb_weights(alphas, 1000.0);
  EXPECT_FALSE(w.fell_back_to_standard);
  EXPECT_DOUBLE_EQ(w.weights[0], 60.0);
}

TEST(Policy, EveryoneOverloadingFallsBack) {
  const std::vector<double> alphas(6, 0.9);
  const WeightAssignment w = compute_lb_weights(alphas, 600.0);
  EXPECT_TRUE(w.fell_back_to_standard);
  for (double v : w.weights) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(Policy, ZeroTotalWorkloadGivesEvenFractions) {
  const std::vector<double> alphas(4, 0.0);
  const WeightAssignment w = compute_lb_weights(alphas, 0.0);
  for (double f : w.fractions) EXPECT_DOUBLE_EQ(f, 0.25);
}

TEST(Policy, RejectsBadInput) {
  EXPECT_THROW((void)compute_lb_weights({}, 1.0), std::invalid_argument);
  const std::vector<double> bad{0.5, 1.5};
  EXPECT_THROW((void)compute_lb_weights(bad, 1.0), std::invalid_argument);
  const std::vector<double> neg{-0.1, 0.0};
  EXPECT_THROW((void)compute_lb_weights(neg, 1.0), std::invalid_argument);
  const std::vector<double> ok{0.0, 0.0};
  EXPECT_THROW((void)compute_lb_weights(ok, -5.0), std::invalid_argument);
}

TEST(Policy, AlphaOneEmptiesOverloadingPe) {
  std::vector<double> alphas(5, 0.0);
  alphas[2] = 1.0;
  const WeightAssignment w = compute_lb_weights(alphas, 500.0);
  EXPECT_DOUBLE_EQ(w.weights[2], 0.0);
  EXPECT_DOUBLE_EQ(w.weights[0], 125.0);  // (1 + 1/4)·100
}

class PolicyConservationSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(PolicyConservationSweep, SumsToTotal) {
  const auto [pe_count, n_over, alpha] = GetParam();
  if (2 * n_over >= pe_count) GTEST_SKIP() << "fallback regime";
  std::vector<double> alphas(static_cast<std::size_t>(pe_count), 0.0);
  for (int i = 0; i < n_over; ++i)
    alphas[static_cast<std::size_t>(i)] = alpha;
  const double wtot = 1e12;
  const WeightAssignment w = compute_lb_weights(alphas, wtot);
  const double sum = std::accumulate(w.weights.begin(), w.weights.end(), 0.0);
  EXPECT_NEAR(sum, wtot, 1e-6 * wtot);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolicyConservationSweep,
    ::testing::Combine(::testing::Values(16, 64, 512),
                       ::testing::Values(1, 5, 20),
                       ::testing::Values(0.1, 0.5, 1.0)));

}  // namespace
}  // namespace ulba::core
