// The 2D grid-decomposition helpers and the damped per-dimension boundary
// tuner: shape factorization/parsing, the per-rebalance movement cap, the
// max-iterations knob, monotone imbalance improvement, and the
// within-tolerance no-op.
#include "lb/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace ulba::lb {
namespace {

std::vector<std::int64_t> even_bounds(std::int64_t cells,
                                      std::int64_t bands) {
  std::vector<std::int64_t> b(static_cast<std::size_t>(bands) + 1, 0);
  for (std::int64_t p = 0; p <= bands; ++p)
    b[static_cast<std::size_t>(p)] = cells * p / bands;
  return b;
}

void expect_valid_bounds(const std::vector<std::int64_t>& b,
                         std::int64_t cells) {
  ASSERT_GE(b.size(), 2u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), cells);
  for (std::size_t j = 0; j + 1 < b.size(); ++j)
    EXPECT_LT(b[j], b[j + 1]) << "band " << j << " must keep >= 1 cell";
}

TEST(GridShapeTest, NearSquareFactorization) {
  EXPECT_EQ(near_square_grid(1).rows, 1);
  EXPECT_EQ(near_square_grid(1).cols, 1);
  EXPECT_EQ(near_square_grid(4).rows, 2);
  EXPECT_EQ(near_square_grid(4).cols, 2);
  EXPECT_EQ(near_square_grid(8).rows, 2);
  EXPECT_EQ(near_square_grid(8).cols, 4);
  EXPECT_EQ(near_square_grid(6).rows, 2);
  EXPECT_EQ(near_square_grid(6).cols, 3);
  // Primes cannot be split: they degrade to 1 x R (stripes).
  EXPECT_EQ(near_square_grid(7).rows, 1);
  EXPECT_EQ(near_square_grid(7).cols, 7);
  EXPECT_EQ(near_square_grid(36).rows, 6);
  EXPECT_EQ(near_square_grid(36).cols, 6);
}

TEST(GridShapeTest, ResolveDerivesMissingDimension) {
  const GridShape full = resolve_grid_shape(8, 2, 4);
  EXPECT_EQ(full.rows, 2);
  EXPECT_EQ(full.cols, 4);
  const GridShape rows_only = resolve_grid_shape(8, 4, 0);
  EXPECT_EQ(rows_only.cols, 2);
  const GridShape cols_only = resolve_grid_shape(8, 0, 2);
  EXPECT_EQ(cols_only.rows, 4);
  const GridShape none = resolve_grid_shape(4, 0, 0);
  EXPECT_EQ(none.rows, 2);
  EXPECT_EQ(none.cols, 2);
}

TEST(GridShapeTest, ResolveRejectsNonFactorableShapes) {
  EXPECT_THROW((void)resolve_grid_shape(4, 3, 2), std::invalid_argument);
  EXPECT_THROW((void)resolve_grid_shape(4, 3, 0), std::invalid_argument);
  EXPECT_THROW((void)resolve_grid_shape(8, 0, 3), std::invalid_argument);
  EXPECT_THROW((void)resolve_grid_shape(0, 0, 0), std::invalid_argument);
}

TEST(GridShapeTest, ParseAcceptsRxCAndRejectsJunk) {
  const GridShape s = parse_grid_shape("2x4");
  EXPECT_EQ(s.rows, 2);
  EXPECT_EQ(s.cols, 4);
  EXPECT_THROW((void)parse_grid_shape(""), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_shape("2"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_shape("x4"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_shape("2x"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_shape("2x4x2"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_shape("axb"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_shape("-2x4"), std::invalid_argument);
}

TEST(GridTunerTest, MoveLimitIsCapTimesSmallerAdjacentBand) {
  // Bands of width 100 and 40 around boundary 1: the envelope is
  // floor(cap * 40).
  const std::vector<std::int64_t> start{0, 100, 140};
  EXPECT_EQ(boundary_move_limit(start, 1, 0.05), 2);
  EXPECT_EQ(boundary_move_limit(start, 1, 0.10), 4);
  // The envelope never collapses to zero — coarse grids can still tune.
  const std::vector<std::int64_t> coarse{0, 4, 8};
  EXPECT_EQ(boundary_move_limit(coarse, 1, 0.05), 1);
}

TEST(GridTunerTest, CapBoundsEveryBoundaryPerRebalance) {
  // Heavily skewed marginal: without the cap the rescale would slam the
  // boundaries toward the hot left edge in one step.
  std::vector<double> marginal(200, 1.0);
  for (std::size_t x = 0; x < 20; ++x) marginal[x] = 50.0;
  const auto start = even_bounds(200, 4);
  GridTunerConfig cfg;
  cfg.cap = 0.05;
  cfg.max_iterations = 8;
  const TuneOutcome out = tune_boundaries(marginal, start, cfg);
  expect_valid_bounds(out.boundaries, 200);
  ASSERT_EQ(out.boundaries.size(), start.size());
  for (std::size_t j = 1; j + 1 < start.size(); ++j) {
    const std::int64_t limit = boundary_move_limit(start, j, cfg.cap);
    EXPECT_LE(std::llabs(out.boundaries[j] - start[j]), limit)
        << "boundary " << j << " escaped the per-rebalance envelope";
  }
}

TEST(GridTunerTest, MaxIterationsRespected) {
  std::vector<double> marginal(128, 1.0);
  for (std::size_t x = 0; x < 16; ++x) marginal[x] = 20.0;
  const auto start = even_bounds(128, 4);
  for (const std::int64_t maxiter : {1, 2, 8}) {
    GridTunerConfig cfg;
    cfg.max_iterations = maxiter;
    const TuneOutcome out = tune_boundaries(marginal, start, cfg);
    EXPECT_LE(out.iterations, maxiter);
    EXPECT_GE(out.iterations, 0);
  }
}

TEST(GridTunerTest, MonotoneImprovementOnSkewedMarginals) {
  support::Rng rng(7);
  int improved = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> marginal(160);
    for (double& w : marginal) w = rng.uniform(0.5, 1.5);
    // One random hot band makes the even cut imbalanced.
    const auto hot = static_cast<std::size_t>(rng.uniform_int(0, 140));
    for (std::size_t x = hot; x < hot + 20; ++x)
      marginal[x] += rng.uniform(5.0, 15.0);
    const auto start = even_bounds(160, 4);
    GridTunerConfig cfg;
    const TuneOutcome out = tune_boundaries(marginal, start, cfg);
    expect_valid_bounds(out.boundaries, 160);
    EXPECT_DOUBLE_EQ(out.imbalance_before, band_imbalance(marginal, start));
    EXPECT_DOUBLE_EQ(out.imbalance_after,
                     band_imbalance(marginal, out.boundaries));
    // Candidates are accepted only when strictly improving, so the outcome
    // can never be worse than where the rebalance started.
    EXPECT_LE(out.imbalance_after, out.imbalance_before) << "trial " << trial;
    if (out.imbalance_after < out.imbalance_before) {
      EXPECT_GE(out.iterations, 1) << "trial " << trial;
      ++improved;
    }
  }
  // A pass can legitimately stall (integer rounding inside a 2-cell
  // envelope), but on hot-band skews the tuner must usually make progress.
  EXPECT_GE(improved, 15);
}

TEST(GridTunerTest, RepeatedRebalancesKeepImproving) {
  // The per-step cap means one rebalance cannot fix a strong skew; the
  // sequence of rebalances must still walk the imbalance down monotonically,
  // each step starting (and clamping) from the previous step's boundaries.
  std::vector<double> marginal(200, 1.0);
  for (std::size_t x = 0; x < 25; ++x) marginal[x] = 10.0;
  auto bounds = even_bounds(200, 4);
  GridTunerConfig cfg;
  cfg.cap = 0.10;
  const double initial = band_imbalance(marginal, bounds);
  double previous = initial;
  for (int step = 0; step < 30; ++step) {
    const TuneOutcome out = tune_boundaries(marginal, bounds, cfg);
    EXPECT_LE(out.imbalance_after, previous) << "step " << step;
    for (std::size_t j = 1; j + 1 < bounds.size(); ++j) {
      const std::int64_t limit = boundary_move_limit(bounds, j, cfg.cap);
      EXPECT_LE(std::llabs(out.boundaries[j] - bounds[j]), limit)
          << "step " << step << " boundary " << j;
    }
    bounds = out.boundaries;
    previous = out.imbalance_after;
  }
  // Thirty capped steps walk most of the skew out of the decomposition.
  EXPECT_LT(previous, initial);
  EXPECT_LT(previous, 1.5);
}

TEST(GridTunerTest, NoOpWhenBalanced) {
  const std::vector<double> marginal(120, 1.0);
  const auto start = even_bounds(120, 4);
  GridTunerConfig cfg;
  cfg.tolerance = 1.02;
  const TuneOutcome out = tune_boundaries(marginal, start, cfg);
  EXPECT_EQ(out.iterations, 0);
  EXPECT_EQ(out.boundaries, start);
  EXPECT_DOUBLE_EQ(out.imbalance_after, out.imbalance_before);
}

TEST(GridTunerTest, BandImbalanceMatchesDefinition) {
  // Loads 6 / 2 over two bands: avg 4, max 6 -> 1.5.
  const std::vector<double> marginal{3.0, 3.0, 1.0, 1.0};
  const std::vector<std::int64_t> bounds{0, 2, 4};
  EXPECT_DOUBLE_EQ(band_imbalance(marginal, bounds), 1.5);
  // Degenerate (zero-load) marginals report balance.
  const std::vector<double> zero(4, 0.0);
  EXPECT_DOUBLE_EQ(band_imbalance(zero, bounds), 1.0);
}

}  // namespace
}  // namespace ulba::lb
