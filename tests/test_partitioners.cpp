// The pluggable partitioners: greedy scan vs. RCB vs. the exact
// min–max(load/target) optimum, plus the quality metric itself.
#include "lb/partitioners.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace ulba::lb {
namespace {

std::vector<double> equal_targets(int pe_count) {
  return std::vector<double>(static_cast<std::size_t>(pe_count),
                             1.0 / pe_count);
}

/// Exhaustive optimal bottleneck ratio over all contiguous partitions —
/// ground truth for tiny instances (recursion over cut positions).
double brute_force_best_ratio(std::span<const double> w,
                              std::span<const double> f) {
  const auto columns = static_cast<int>(w.size());
  const auto pe_count = static_cast<int>(f.size());
  double best = 1e300;
  std::vector<std::int64_t> b(static_cast<std::size_t>(pe_count) + 1, 0);
  b.back() = columns;
  const auto recurse = [&](auto&& self, int p, int from) -> void {
    if (p == pe_count - 1) {
      if (columns - from < 1) return;
      best = std::min(best, bottleneck_ratio(w, f, b));
      return;
    }
    for (int cut = from + 1; cut <= columns - (pe_count - p - 1); ++cut) {
      b[static_cast<std::size_t>(p) + 1] = cut;
      self(self, p + 1, cut);
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

TEST(Partitioners, AllProduceValidBoundaries) {
  support::Rng rng(1);
  std::vector<double> w(64);
  for (double& x : w) x = rng.uniform(0.0, 3.0);
  const auto f = equal_targets(8);
  for (const char* name : {"greedy-scan", "rcb", "optimal-ratio"}) {
    const auto part = make_partitioner(name);
    const auto b = part->partition(w, f);
    ASSERT_EQ(b.size(), 9u) << name;
    EXPECT_EQ(b.front(), 0) << name;
    EXPECT_EQ(b.back(), 64) << name;
    for (std::size_t p = 0; p + 1 < b.size(); ++p)
      EXPECT_LT(b[p], b[p + 1]) << name;
  }
}

TEST(Partitioners, FactoryRejectsUnknownNames) {
  EXPECT_THROW((void)make_partitioner("metis"), std::invalid_argument);
  // The error names the accepted set, so CLI users see their options.
  try {
    (void)make_partitioner("metis");
    FAIL() << "expected make_partitioner to throw";
  } catch (const std::invalid_argument& e) {
    for (const std::string& name : partitioner_names())
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos) << name;
  }
}

TEST(Partitioners, NamesRoundTrip) {
  for (const char* name : {"greedy-scan", "rcb", "optimal-ratio"})
    EXPECT_EQ(make_partitioner(name)->name(), name);
}

TEST(Partitioners, CanonicalNamesAndAliasesResolve) {
  // Every canonical name constructs, and the short aliases map onto the
  // historical long spellings.
  for (const std::string& name : partitioner_names())
    EXPECT_NO_THROW((void)make_partitioner(name)) << name;
  EXPECT_EQ(make_partitioner("greedy")->name(),
            make_partitioner("greedy-scan")->name());
  EXPECT_EQ(make_partitioner("optimal")->name(),
            make_partitioner("optimal-ratio")->name());
  EXPECT_EQ(make_partitioner("stripe")->name(), "stripe");
}

TEST(Partitioners, EvenStripeIgnoresWeightsAndTargets) {
  support::Rng rng(23);
  std::vector<double> w(60);
  for (double& x : w) x = rng.uniform(0.0, 9.0);
  // Heavily skewed targets — the even-stripe baseline must not care.
  const std::vector<double> f{0.7, 0.1, 0.1, 0.1};
  EXPECT_EQ(EvenStripePartitioner{}.partition(w, f), even_partition(60, 4));
}

TEST(Partitioners, UniformCaseAllAgree) {
  const std::vector<double> w(100, 1.0);
  const auto f = equal_targets(4);
  const StripeBoundaries expect{0, 25, 50, 75, 100};
  EXPECT_EQ(GreedyScanPartitioner{}.partition(w, f), expect);
  EXPECT_EQ(RcbPartitioner{}.partition(w, f), expect);
  EXPECT_EQ(OptimalRatioPartitioner{}.partition(w, f), expect);
}

TEST(Partitioners, ZeroWeightsFallBackToEven) {
  const std::vector<double> w(12, 0.0);
  const auto f = equal_targets(4);
  EXPECT_EQ(RcbPartitioner{}.partition(w, f), even_partition(12, 4));
  EXPECT_EQ(OptimalRatioPartitioner{}.partition(w, f),
            even_partition(12, 4));
}

TEST(BottleneckRatio, PerfectSplitIsOne) {
  const std::vector<double> w(40, 1.0);
  const auto f = equal_targets(4);
  EXPECT_NEAR(bottleneck_ratio(w, f, even_partition(40, 4)), 1.0, 1e-12);
}

TEST(BottleneckRatio, DetectsOverload) {
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  const auto f = equal_targets(2);
  // 3-vs-1 split: worst stripe carries 75 % against a 50 % target.
  EXPECT_NEAR(bottleneck_ratio(w, f, StripeBoundaries{0, 3, 4}), 1.5, 1e-12);
}

TEST(OptimalRatio, MatchesBruteForceOnTinyInstances) {
  support::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int columns = 6 + static_cast<int>(rng.index(6));
    const int pe_count = 2 + static_cast<int>(rng.index(2));
    std::vector<double> w(static_cast<std::size_t>(columns));
    for (double& x : w) x = rng.uniform(0.1, 4.0);
    const auto f = equal_targets(pe_count);
    const double brute = brute_force_best_ratio(w, f);
    const auto b = OptimalRatioPartitioner{}.partition(w, f);
    EXPECT_NEAR(bottleneck_ratio(w, f, b), brute, 1e-6 * brute)
        << "trial " << trial;
  }
}

TEST(OptimalRatio, NeverWorseThanGreedyOrRcb) {
  support::Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    const int columns = 50 + static_cast<int>(rng.index(200));
    const int pe_count = 2 + static_cast<int>(rng.index(14));
    std::vector<double> w(static_cast<std::size_t>(columns));
    for (double& x : w) x = rng.uniform(0.0, 5.0);
    std::vector<double> f(static_cast<std::size_t>(pe_count));
    double fsum = 0.0;
    for (double& x : f) {
      x = rng.uniform(0.3, 1.0);
      fsum += x;
    }
    for (double& x : f) x /= fsum;

    const double r_opt =
        bottleneck_ratio(w, f, OptimalRatioPartitioner{}.partition(w, f));
    const double r_greedy =
        bottleneck_ratio(w, f, GreedyScanPartitioner{}.partition(w, f));
    const double r_rcb =
        bottleneck_ratio(w, f, RcbPartitioner{}.partition(w, f));
    EXPECT_LE(r_opt, r_greedy * (1.0 + 1e-9)) << "trial " << trial;
    EXPECT_LE(r_opt, r_rcb * (1.0 + 1e-9)) << "trial " << trial;
    EXPECT_GE(r_opt, 1.0 - 1e-9);
  }
}

TEST(OptimalRatio, HandlesMonsterColumn) {
  // One column holds half the weight: the optimum must isolate it and the
  // ratio is bounded by that column's share over its stripe's target.
  std::vector<double> w(20, 1.0);
  w[7] = 20.0;
  const auto f = equal_targets(4);
  const auto b = OptimalRatioPartitioner{}.partition(w, f);
  const double r = bottleneck_ratio(w, f, b);
  // The stripe holding column 7 carries ≥ 20/40 = 50 % against 25 %.
  EXPECT_GE(r, 2.0 - 1e-9);
  EXPECT_LE(r, 2.2);  // …and not much more than the unavoidable minimum
}

TEST(Rcb, RespectsSkewedTargets) {
  const std::vector<double> w(128, 1.0);
  const std::vector<double> f{0.5, 0.25, 0.125, 0.125};
  const auto b = RcbPartitioner{}.partition(w, f);
  const auto loads = stripe_loads(w, b);
  EXPECT_NEAR(loads[0], 64.0, 2.0);
  EXPECT_NEAR(loads[1], 32.0, 2.0);
  EXPECT_NEAR(loads[2], 16.0, 2.0);
  EXPECT_NEAR(loads[3], 16.0, 2.0);
}

TEST(Rcb, NonPowerOfTwoPeCount) {
  support::Rng rng(19);
  std::vector<double> w(90);
  for (double& x : w) x = rng.uniform(0.5, 1.5);
  for (int pe_count : {3, 5, 7, 11}) {
    const auto f = equal_targets(pe_count);
    const auto b = RcbPartitioner{}.partition(w, f);
    ASSERT_EQ(b.size(), static_cast<std::size_t>(pe_count) + 1);
    for (std::size_t p = 0; p + 1 < b.size(); ++p) EXPECT_LT(b[p], b[p + 1]);
    EXPECT_LE(bottleneck_ratio(w, f, b), 1.5);
  }
}

class PartitionerQualitySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionerQualitySweep, AllStayWithinTwoColumnsOfTargets) {
  support::Rng rng(GetParam());
  const int columns = 100 + static_cast<int>(rng.index(400));
  const int pe_count = 2 + static_cast<int>(rng.index(30));
  std::vector<double> w(static_cast<std::size_t>(columns));
  double wmax = 0.0;
  for (double& x : w) {
    x = rng.uniform(0.0, 2.0);
    wmax = std::max(wmax, x);
  }
  const auto f = equal_targets(pe_count);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (const char* name : {"greedy-scan", "optimal-ratio"}) {
    const auto b = make_partitioner(name)->partition(w, f);
    const auto loads = stripe_loads(w, b);
    for (double load : loads)
      EXPECT_LE(load, total / pe_count + 2.0 * wmax + 1e-9)
          << name << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerQualitySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ulba::lb
