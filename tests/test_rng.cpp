#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ulba::support {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 50; ++i) (void)b.uniform(0.0, 1.0);  // consume b
  Rng fa = a.fork(3);
  Rng fb = b.fork(3);
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
}

TEST(Rng, ForkStreamsDiffer) {
  Rng a(7);
  Rng f0 = a.fork(0);
  Rng f1 = a.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (f0.uniform(0.0, 1.0) == f1.uniform(0.0, 1.0)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 13.25);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 13.25);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 4, 5, 6, 7}));
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(4, 2), std::invalid_argument);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequencyNearP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PickReturnsMembers) {
  Rng rng(29);
  const std::vector<int> values{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(rng.pick(std::span<const int>(values)));
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_without_replacement(20, 8);
    ASSERT_EQ(s.size(), 8u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (std::size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulationIsPermutation) {
  Rng rng(37);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(41);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4),
               std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(43);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, SampleWithoutReplacementAlwaysValid) {
  Rng rng(GetParam());
  const auto s = rng.sample_without_replacement(64, 16);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 16u);
  for (std::size_t v : s) EXPECT_LT(v, 64u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace ulba::support
