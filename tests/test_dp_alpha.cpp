// The exact dynamic-α DP (paper §V future work, solved at model level).
#include "opt/dp_alpha.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/instance.hpp"
#include "opt/dp_optimal.hpp"
#include "test_helpers.hpp"

namespace ulba::opt {
namespace {

using core::ModelParams;
using ulba::testing::paper_scale_params;
using ulba::testing::tiny_params;

TEST(DpAlpha, DefaultGridCoversUnitInterval) {
  const auto grid = default_alpha_grid();
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
}

TEST(DpAlpha, RejectsBadGrid) {
  const ModelParams p = tiny_params();
  EXPECT_THROW((void)optimal_alpha_schedule(p, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)optimal_alpha_schedule(p, std::vector<double>{0.5, 1.5}),
      std::invalid_argument);
}

TEST(DpAlpha, OneAlphaPerScheduledStep) {
  const ModelParams p = paper_scale_params();
  const auto res = optimal_alpha_schedule(p);
  EXPECT_EQ(res.alphas.size(), res.schedule.lb_count());
  for (double a : res.alphas) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(DpAlpha, NeverWorseThanAnyFixedAlphaOptimum) {
  // Free per-step α subsumes every fixed α on the same grid.
  const ModelParams base = paper_scale_params();
  const auto free_res = optimal_alpha_schedule(base);
  for (double alpha : default_alpha_grid()) {
    ModelParams p = base;
    p.alpha = alpha;
    const auto fixed = optimal_schedule(p, CostModel::kUlba);
    EXPECT_LE(free_res.total_seconds, fixed.total_seconds * (1.0 + 1e-12))
        << "alpha = " << alpha;
  }
}

TEST(DpAlpha, SingletonZeroGridEqualsStandardOptimum) {
  const ModelParams p = paper_scale_params();
  const auto res = optimal_alpha_schedule(p, std::vector<double>{0.0});
  const auto std_dp = optimal_schedule(p, CostModel::kStandard);
  EXPECT_NEAR(res.total_seconds, std_dp.total_seconds,
              1e-9 * std_dp.total_seconds);
}

TEST(DpAlpha, BalancedApplicationSchedulesNothing) {
  ModelParams p = tiny_params();
  p.m = 0.0;  // no imbalance growth: the best schedule is empty
  const auto res = optimal_alpha_schedule(p);
  EXPECT_TRUE(res.schedule.steps().empty());
}

TEST(DpAlpha, FreeLbStillBalancesOften) {
  ModelParams p = tiny_params();
  p.lb_cost = 0.0;
  const auto res = optimal_alpha_schedule(p);
  EXPECT_GE(res.schedule.lb_count(), 5u);
}

TEST(DpAlpha, GainOverFixedAlphaOnRandomInstances) {
  // On Table-II instances the free-α optimum improves (weakly) on the
  // instance's own fixed α — and the margin is the model-level value of the
  // paper's proposed runtime α adaptation.
  support::Rng rng(31337);
  const core::InstanceGenerator gen;
  double total_margin = 0.0;
  for (int i = 0; i < 10; ++i) {
    const ModelParams p = gen.sample(rng).params;
    const auto fixed = optimal_schedule(p, CostModel::kUlba);
    // The instance's α is continuous; put it on the grid so the free-α
    // search genuinely subsumes the fixed-α one.
    auto grid = default_alpha_grid();
    grid.push_back(p.alpha);
    const auto free_res = optimal_alpha_schedule(p, grid);
    EXPECT_LE(free_res.total_seconds,
              fixed.total_seconds * (1.0 + 1e-12));
    total_margin += 1.0 - free_res.total_seconds / fixed.total_seconds;
  }
  EXPECT_GE(total_margin, 0.0);
}

TEST(DpAlpha, DeterministicResult) {
  const ModelParams p = paper_scale_params();
  const auto a = optimal_alpha_schedule(p);
  const auto b = optimal_alpha_schedule(p);
  EXPECT_EQ(a.schedule.steps(), b.schedule.steps());
  EXPECT_EQ(a.alphas, b.alphas);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
}

}  // namespace
}  // namespace ulba::opt
