// Cross-module integration: miniature versions of the paper's experiments
// and the model-vs-simulator consistency check of DESIGN.md §6.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bsp/machine.hpp"
#include "core/instance.hpp"
#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "core/standard_model.hpp"
#include "core/ulba_model.hpp"
#include "opt/dp_optimal.hpp"
#include "opt/schedule_problem.hpp"
#include "support/stats.hpp"

namespace ulba {
namespace {

// ---------------------------------------------------------------------------
// Mini Figure 2: over random Table-II instances, the σ⁺ schedule is close to
// the annealed one — average gap within a few percent, exactly the paper's
// observation (mean −0.83 %, worst −5.58 %, best +1.57 %).
TEST(Integration, MiniFigure2SigmaPlusTracksHeuristic) {
  support::Rng rng(1234);
  const core::InstanceGenerator gen;
  std::vector<double> gains;
  for (int i = 0; i < 30; ++i) {
    const core::ModelParams p = gen.sample(rng).params;
    support::Rng sa_rng = rng.fork(static_cast<std::uint64_t>(i));
    const auto sa =
        opt::anneal_schedule(p, opt::CostModel::kUlba, sa_rng, 10000);
    const double t_sigma =
        core::evaluate_ulba(p, core::sigma_plus_schedule(p)).total_seconds;
    gains.push_back((sa.total_seconds - t_sigma) / sa.total_seconds);
  }
  const double avg = support::mean(gains);
  EXPECT_GT(avg, -0.10);  // σ⁺ loses at most 10 % on average
  EXPECT_LT(avg, 0.05);   // and cannot beat a good heuristic by much
}

// ---------------------------------------------------------------------------
// Mini Figure 3: best-α ULBA never loses to the standard method, and wins
// clearly at low overloading fractions.
TEST(Integration, MiniFigure3UlbaNeverLoses) {
  support::Rng rng(77);
  for (double frac : {0.02, 0.10, 0.20}) {
    core::InstanceOptions opts;
    opts.pin_p = 512;
    opts.pin_overloading_fraction = frac;
    const core::InstanceGenerator gen(opts);
    for (int i = 0; i < 10; ++i) {
      core::ModelParams p = gen.sample(rng).params;
      const double t_std =
          core::evaluate_standard(p, core::menon_schedule(p)).total_seconds;
      double best = std::numeric_limits<double>::infinity();
      for (int a = 0; a <= 20; ++a) {
        p.alpha = static_cast<double>(a) / 20.0;
        best = std::min(best, core::evaluate_ulba(
                                  p, core::sigma_plus_schedule(p))
                                  .total_seconds);
      }
      // α = 0 reproduces the standard method up to the ⌊σ⁺⌋-vs-round(τ)
      // spacing difference; allow that sliver.
      EXPECT_LE(best, t_std * 1.005)
          << "frac = " << frac << ", instance " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Model ↔ simulator consistency: drive the BSP machine with the linear
// per-PE loads the analytic model assumes; the measured interval time must
// equal the closed form.
TEST(Integration, BspMachineReproducesStandardModelInterval) {
  core::ModelParams p;
  p.P = 32;
  p.N = 4;
  p.gamma = 50;
  p.w0 = 3.2e6;
  p.a = 40.0;
  p.m = 900.0;
  p.omega = 1e6;
  p.lb_cost = 0.0;
  p.validate();

  bsp::Machine machine(p.P, p.omega);
  const double share = p.balanced_share(0);
  for (std::int64_t t = 0; t < p.gamma; ++t) {
    std::vector<double> loads(static_cast<std::size_t>(p.P), 0.0);
    for (std::int64_t pe = 0; pe < p.P; ++pe) {
      const bool hot = pe < p.N;
      loads[static_cast<std::size_t>(pe)] =
          share + (hot ? (p.m + p.a) : p.a) * static_cast<double>(t);
    }
    (void)machine.run_superstep(loads);
  }
  const double model =
      core::standard_interval_compute_time(p, 0, p.gamma);
  EXPECT_NEAR(machine.elapsed_seconds(), model,
              1e-9 * model);
}

// Same for the ULBA shape: underloaded hot PEs, boosted cold PEs.
TEST(Integration, BspMachineReproducesUlbaModelInterval) {
  core::ModelParams p;
  p.P = 32;
  p.N = 4;
  p.gamma = 50;
  p.w0 = 3.2e6;
  p.a = 40.0;
  p.m = 900.0;
  p.alpha = 0.5;
  p.omega = 1e6;
  p.lb_cost = 0.0;
  p.validate();

  const core::PostLbShares shares = core::post_lb_shares(p, 0, p.alpha);
  bsp::Machine machine(p.P, p.omega);
  for (std::int64_t t = 0; t < p.gamma; ++t) {
    std::vector<double> loads(static_cast<std::size_t>(p.P), 0.0);
    for (std::int64_t pe = 0; pe < p.P; ++pe) {
      const bool hot = pe < p.N;
      loads[static_cast<std::size_t>(pe)] =
          hot ? shares.overloading + (p.m + p.a) * static_cast<double>(t)
              : shares.non_overloading + p.a * static_cast<double>(t);
    }
    (void)machine.run_superstep(loads);
  }
  const double model = core::ulba_interval_compute_time(p, 0, p.gamma, p.alpha);
  EXPECT_NEAR(machine.elapsed_seconds(), model, 1e-9 * model);
}

// ---------------------------------------------------------------------------
// The DP optimum bounds everything on Table-II instances.
TEST(Integration, DpBoundsHoldOnRandomInstances) {
  support::Rng rng(4242);
  const core::InstanceGenerator gen;
  for (int i = 0; i < 15; ++i) {
    const core::ModelParams p = gen.sample(rng).params;
    const auto dp = opt::optimal_schedule(p, opt::CostModel::kUlba);
    const double t_sigma =
        core::evaluate_ulba(p, core::sigma_plus_schedule(p)).total_seconds;
    const double t_never =
        core::evaluate_ulba(p, core::Schedule::empty(p.gamma)).total_seconds;
    EXPECT_LE(dp.total_seconds, t_sigma * (1.0 + 1e-12));
    EXPECT_LE(dp.total_seconds, t_never * (1.0 + 1e-12));
  }
}

// σ⁻ is a genuine lower bound: inserting an extra LB step before σ⁻ into the
// σ⁺ schedule never helps.
TEST(Integration, BalancingBeforeSigmaMinusNeverHelps) {
  support::Rng rng(999);
  const core::InstanceGenerator gen;
  for (int i = 0; i < 10; ++i) {
    const core::ModelParams p = gen.sample(rng).params;
    const core::Schedule base = core::sigma_plus_schedule(p);
    if (base.steps().empty()) continue;
    const std::int64_t first = base.steps().front();
    const std::int64_t sm = core::sigma_minus(p, first, p.alpha);
    const double t_base = core::evaluate_ulba(p, base).total_seconds;
    // Add one step strictly inside (first, first + σ⁻).
    for (std::int64_t delta : {std::int64_t{1}, sm / 2, sm}) {
      const std::int64_t extra = first + std::max<std::int64_t>(1, delta);
      if (extra >= p.gamma || extra <= first) continue;
      auto steps = base.steps();
      if (std::find(steps.begin(), steps.end(), extra) != steps.end())
        continue;
      steps.insert(std::upper_bound(steps.begin(), steps.end(), extra),
                   extra);
      // Only meaningful while it stays before the *next* scheduled step.
      const auto next_it =
          std::upper_bound(base.steps().begin(), base.steps().end(), first);
      if (next_it != base.steps().end() && extra >= *next_it) continue;
      const double t_more =
          core::evaluate_ulba(p, core::Schedule(p.gamma, steps))
              .total_seconds;
      EXPECT_GE(t_more, t_base * (1.0 - 1e-9))
          << "instance " << i << ", extra step at " << extra;
    }
  }
}

}  // namespace
}  // namespace ulba
