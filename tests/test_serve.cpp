// The schedule service's contract suite: ScheduleRequest/ScheduleResponse
// codec round-trips, the memo cache's bit-identity and eviction bounds, the
// serve_loop under real multi-client SPMD traffic, and the served Table-II
// instance sweep against its serial reference.
//
// The load-bearing claim everywhere: a cached ScheduleResponse is
// BIT-identical (provenance masked) to a cold evaluation of the same
// request — same bytes, not "close enough" — and the served sweep's
// FamilyStats equal the serial sweep's field for field.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cli/serve_driver.hpp"
#include "cli/sweep.hpp"
#include "core/instance.hpp"
#include "core/schedule_query.hpp"
#include "opt/evaluate.hpp"
#include "runtime/spmd.hpp"
#include "support/rng.hpp"

namespace ulba {
namespace {

core::ScheduleRequest sample_request(std::uint64_t stream,
                                     core::EvalMode mode) {
  support::Rng rng = support::Rng(11).fork(stream);
  core::ScheduleRequest request;
  request.mode = mode;
  request.params = core::InstanceGenerator().sample(rng).params;
  for (int g = 0; g <= 10; ++g)
    request.alpha_grid.push_back(static_cast<double>(g) / 10.0);
  return request;
}

TEST(ScheduleQueryCodec, RequestRoundTripBothModes) {
  for (const core::EvalMode mode :
       {core::EvalMode::kSigmaGrid, core::EvalMode::kExactDp}) {
    const core::ScheduleRequest request =
        sample_request(static_cast<std::uint64_t>(mode), mode);
    const std::vector<std::byte> bytes = core::serialize_request(request);
    const core::ScheduleRequest back = core::deserialize_request(bytes);
    EXPECT_EQ(back.mode, request.mode);
    EXPECT_EQ(back.params.P, request.params.P);
    EXPECT_EQ(back.params.N, request.params.N);
    EXPECT_EQ(back.params.gamma, request.params.gamma);
    EXPECT_EQ(back.params.w0, request.params.w0);
    EXPECT_EQ(back.params.a, request.params.a);
    EXPECT_EQ(back.params.m, request.params.m);
    EXPECT_EQ(back.params.alpha, request.params.alpha);
    EXPECT_EQ(back.params.omega, request.params.omega);
    EXPECT_EQ(back.params.lb_cost, request.params.lb_cost);
    EXPECT_EQ(back.alpha_grid, request.alpha_grid);
    // The codec is canonical: re-serializing the round-trip reproduces the
    // exact bytes (this is what makes request bytes usable as cache keys).
    EXPECT_EQ(core::serialize_request(back), bytes);
  }
}

TEST(ScheduleQueryCodec, ResponseRoundTripBothModes) {
  for (const core::EvalMode mode :
       {core::EvalMode::kSigmaGrid, core::EvalMode::kExactDp}) {
    core::ScheduleResponse response = opt::evaluate_schedule_request(
        sample_request(static_cast<std::uint64_t>(mode) + 7, mode));
    response.provenance.cache_hit = 1;
    response.provenance.server_rank = 3;
    const std::vector<std::byte> bytes = core::serialize_response(response);
    const core::ScheduleResponse back = core::deserialize_response(bytes);
    EXPECT_EQ(back.standard_seconds, response.standard_seconds);
    EXPECT_EQ(back.standard_lb_count, response.standard_lb_count);
    EXPECT_EQ(back.alpha_seconds, response.alpha_seconds);
    EXPECT_EQ(back.best_alpha, response.best_alpha);
    EXPECT_EQ(back.best_seconds, response.best_seconds);
    EXPECT_EQ(back.predicted_gain, response.predicted_gain);
    EXPECT_EQ(back.schedule_seconds, response.schedule_seconds);
    ASSERT_EQ(back.grid.size(), response.grid.size());
    for (std::size_t i = 0; i < back.grid.size(); ++i) {
      EXPECT_EQ(back.grid[i].alpha, response.grid[i].alpha);
      EXPECT_EQ(back.grid[i].total_seconds, response.grid[i].total_seconds);
      EXPECT_EQ(back.grid[i].lb_count, response.grid[i].lb_count);
    }
    EXPECT_EQ(back.schedule_steps, response.schedule_steps);
    EXPECT_EQ(back.schedule_alphas, response.schedule_alphas);
    EXPECT_EQ(back.provenance.cache_hit, response.provenance.cache_hit);
    EXPECT_EQ(back.provenance.server_rank, response.provenance.server_rank);
    EXPECT_EQ(core::serialize_response(back), bytes);
  }
}

TEST(ScheduleQueryCodec, RejectsMalformedPayloads) {
  const core::ScheduleRequest request =
      sample_request(1, core::EvalMode::kSigmaGrid);
  std::vector<std::byte> bytes = core::serialize_request(request);
  // Truncated at every prefix length must throw, never read out of bounds.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, bytes.size() - 1}) {
    const std::vector<std::byte> head(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)core::deserialize_request(head), std::invalid_argument);
  }
  // Trailing garbage is rejected: the payload must be exactly consumed.
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)core::deserialize_request(bytes), std::invalid_argument);

  const std::vector<std::byte> response_bytes = core::serialize_response(
      opt::evaluate_schedule_request(request));
  const std::vector<std::byte> head(
      response_bytes.begin(),
      response_bytes.begin() + static_cast<long>(response_bytes.size() / 2));
  EXPECT_THROW((void)core::deserialize_response(head), std::invalid_argument);
}

TEST(ScheduleQueryCodec, RequestValidation) {
  core::ScheduleRequest request = sample_request(2, core::EvalMode::kExactDp);
  request.alpha_grid.clear();
  // Exact-DP mode needs a grid to sweep.
  EXPECT_THROW(request.validate(), std::invalid_argument);
  request.mode = core::EvalMode::kSigmaGrid;
  EXPECT_NO_THROW(request.validate());
  request.alpha_grid = {0.5, 1.5};
  EXPECT_THROW(request.validate(), std::invalid_argument);
}

TEST(ScheduleCache, HitIsBitIdenticalToCold) {
  opt::ScheduleCache cache(64, 4);
  for (const core::EvalMode mode :
       {core::EvalMode::kSigmaGrid, core::EvalMode::kExactDp}) {
    const core::ScheduleRequest request =
        sample_request(static_cast<std::uint64_t>(mode) + 13, mode);
    const core::ScheduleResponse cold =
        opt::evaluate_schedule_request(request);
    const core::ScheduleResponse miss = cache.evaluate(request);
    const core::ScheduleResponse hit = cache.evaluate(request);
    EXPECT_EQ(miss.provenance.cache_hit, 0);
    EXPECT_EQ(hit.provenance.cache_hit, 1);
    // The contract: provenance aside, the cached answer IS the cold answer.
    EXPECT_TRUE(core::payload_equals(hit, cold));
    EXPECT_TRUE(core::payload_equals(miss, cold));
  }
  const opt::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.size, 2);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(ScheduleCache, EvictionBoundHolds) {
  constexpr std::int64_t kCapacity = 8;
  opt::ScheduleCache cache(kCapacity, 2);
  std::vector<core::ScheduleRequest> requests;
  for (std::uint64_t i = 0; i < 3 * kCapacity; ++i) {
    requests.push_back(sample_request(100 + i, core::EvalMode::kSigmaGrid));
    (void)cache.evaluate(requests.back());
    EXPECT_LE(cache.stats().size, kCapacity);
  }
  const opt::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3 * kCapacity);
  EXPECT_EQ(stats.evictions, stats.misses - stats.size);
  EXPECT_GT(stats.evictions, 0);
  // An evicted key still answers correctly — it just costs a re-evaluation.
  const core::ScheduleResponse again = cache.evaluate(requests.front());
  EXPECT_TRUE(core::payload_equals(
      again, opt::evaluate_schedule_request(requests.front())));
}

TEST(ScheduleCache, ConcurrentClientsAreDeterministic) {
  opt::ScheduleCache cache(256, 8);
  const std::vector<core::ScheduleRequest> pool = {
      sample_request(40, core::EvalMode::kSigmaGrid),
      sample_request(41, core::EvalMode::kSigmaGrid),
      sample_request(42, core::EvalMode::kSigmaGrid),
  };
  std::vector<core::ScheduleResponse> cold;
  cold.reserve(pool.size());
  for (const auto& request : pool)
    cold.push_back(opt::evaluate_schedule_request(request));

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 32;
  std::vector<std::int64_t> bad(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      support::Rng rng = support::Rng(7).fork(static_cast<std::uint64_t>(t));
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const std::size_t pick = rng.index(pool.size());
        if (!core::payload_equals(cache.evaluate(pool[pick]), cold[pick]))
          ++bad[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const std::int64_t b : bad) EXPECT_EQ(b, 0);
  const opt::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kQueriesPerThread);
  // Concurrent misses on the same key may each evaluate, but the cache never
  // holds more entries than keys.
  EXPECT_LE(stats.size, static_cast<std::int64_t>(pool.size()));
}

TEST(ServeLoop, TrafficContractAndDeterminism) {
  cli::ServeTrafficOptions options;
  options.clients = 3;
  options.requests_per_client = 24;
  options.distinct = 6;
  options.seed = 21;
  const cli::ServeTrafficResult first = cli::serve_traffic(options);
  const cli::ServeTrafficResult second = cli::serve_traffic(options);
  for (const cli::ServeTrafficResult& run : {first, second}) {
    EXPECT_TRUE(run.ok());
    EXPECT_EQ(run.mismatched_responses, 0);
    EXPECT_EQ(run.total_requests, 3 * 24);
    EXPECT_EQ(run.metrics.requests, run.total_requests);
    EXPECT_EQ(run.metrics.cache_hits + run.metrics.cache_misses,
              run.metrics.requests);
    // Capacity >= distinct: every pool entry misses exactly once.
    EXPECT_EQ(run.metrics.cache_misses, run.distinct_queried);
    EXPECT_EQ(run.metrics.cache_evictions, 0);
    EXPECT_EQ(run.metrics.clients_finished, 3);
  }
  // Everything but wall clock and batching is deterministic across runs.
  EXPECT_EQ(first.distinct_queried, second.distinct_queried);
  EXPECT_EQ(first.metrics.cache_hits, second.metrics.cache_hits);
  EXPECT_EQ(first.hit_responses, second.hit_responses);
  EXPECT_EQ(first.metrics.request_bytes, second.metrics.request_bytes);
  EXPECT_EQ(first.metrics.response_bytes, second.metrics.response_bytes);
}

TEST(ServeLoop, BatchLimitDoesNotChangeAnswers) {
  cli::ServeTrafficOptions options;
  options.clients = 2;
  options.requests_per_client = 16;
  options.distinct = 5;
  options.seed = 33;
  options.batch_limit = 1;
  const cli::ServeTrafficResult serial_batches = cli::serve_traffic(options);
  options.batch_limit = 8;
  const cli::ServeTrafficResult wide_batches = cli::serve_traffic(options);
  EXPECT_TRUE(serial_batches.ok());
  EXPECT_TRUE(wide_batches.ok());
  EXPECT_EQ(serial_batches.metrics.cache_misses,
            wide_batches.metrics.cache_misses);
  EXPECT_EQ(serial_batches.metrics.response_bytes,
            wide_batches.metrics.response_bytes);
  EXPECT_LE(serial_batches.metrics.max_batch, 1);
}

TEST(ServeLoop, CleanShutdownWithoutQueries) {
  runtime::spmd_run(3, [](runtime::Comm& comm) {
    if (comm.rank() == 0) {
      const serve::ServeMetrics metrics =
          serve::serve_loop(comm, serve::ServeOptions{});
      EXPECT_EQ(metrics.requests, 0);
      EXPECT_EQ(metrics.clients_finished, 2);
      return;
    }
    serve::ScheduleClient client(comm, 0);
    client.finish();
  });
}

TEST(ServedSweep, EqualsSerialSweep) {
  const std::vector<std::int64_t> pin_ps{256, 512};
  constexpr std::int64_t kSamples = 9;
  constexpr std::uint64_t kSeed = 20190916;
  constexpr std::int64_t kGrid = 8;
  std::vector<cli::FamilyStats> serial;
  serial.reserve(pin_ps.size());
  for (const std::int64_t p : pin_ps)
    serial.push_back(cli::instance_family_stats(p, kSamples, kSeed, kGrid));
  const cli::ServedSweepResult served = cli::instance_sweep_served(
      pin_ps, kSamples, kSeed, kGrid, /*ranks=*/3, serve::ServeOptions{});
  ASSERT_EQ(served.families.size(), serial.size());
  for (std::size_t f = 0; f < serial.size(); ++f) {
    const cli::FamilyStats& a = served.families[f];
    const cli::FamilyStats& b = serial[f];
    EXPECT_EQ(a.pin_p, b.pin_p);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.wins, b.wins);
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.ties, b.ties);
    // Exact FP equality: the served path evaluates the same requests with
    // the same arithmetic, only transported through the mailbox.
    EXPECT_EQ(a.median_gain, b.median_gain);
    EXPECT_EQ(a.mean_gain, b.mean_gain);
    EXPECT_EQ(a.min_gain, b.min_gain);
    EXPECT_EQ(a.max_gain, b.max_gain);
    EXPECT_EQ(a.median_best_gain, b.median_best_gain);
    EXPECT_EQ(a.mean_best_alpha, b.mean_best_alpha);
  }
  EXPECT_EQ(served.metrics.requests,
            static_cast<std::int64_t>(pin_ps.size()) * kSamples);
  EXPECT_EQ(served.metrics.clients_finished, 2);
}

}  // namespace
}  // namespace ulba
