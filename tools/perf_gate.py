#!/usr/bin/env python3
"""Unified two-tier perf gate: one script, one baseline format, both tiers.

Tier 1 — integration wall clock ("the whole app got slow"):
    ctest -L integration --output-junit junit.xml
    python3 tools/perf_gate.py junit.xml bench/baselines/ci_smoke.json

Tier 2 — hot primitives ("one kernel regressed 10x but the suite passes"):
    ./bench_micro --benchmark_format=json --benchmark_out=bench_micro.json
    python3 tools/perf_gate.py bench_micro.json bench/baselines/bench_micro.json

The results format is detected from the file name: *.xml parses as a JUnit
report (seconds per testcase), anything else as google-benchmark JSON
(cpu_time per iteration run, normalized to ns).

Baseline format (shared by both tiers):

    {
      "description": "...",
      "unit": "seconds" | "ns",
      "max_factor": 2.0,          // global tolerance
      "floor": 1.0,               // absolute floor in `unit`
      "entries": {
        "name": 0.8,                                  // plain baseline
        "other": {"baseline": 3.0, "max_factor": 4.0} // per-entry tolerance
      }
    }

An entry fails the gate when its measurement exceeds
    max(entry_max_factor * baseline, floor)
— the factor catches real regressions, the floor keeps tiny measurements
from flapping on noisy runners, and a per-entry `max_factor` documents the
known-noisy cases without loosening the whole gate. Measurements missing
from the baseline fail the gate so the baseline stays in sync with the
suite; regenerate with --update (per-entry factors are preserved, stale
entries are KEPT unless you also pass --prune) and review the diff like any
other code change.

A baseline may additionally gate RATIOS between two measurements of the
same run — machine-independent speedup contracts that survive runner churn
where absolute numbers cannot:

    "ratios": {
      "counter 1t speedup": {
        "numerator": "BM_ErosionStepFork",      // the slow side
        "denominator": "BM_ErosionStepCounter/1",
        "min_ratio": 1.5,                       // gate: num/den >= this
        "min_cpus": 8                           // optional hardware guard
      }
    }

A ratio whose benchmarks did not run fails the gate (same staleness rule as
entries). `min_cpus` skips the ratio — with a printed notice — when the
results report fewer CPUs (google-benchmark's context.num_cpus) or when the
CPU count is unknown (JUnit results): thread-scaling contracts are only
meaningful on machines that can physically exhibit them.
"""

import json
import sys
import xml.etree.ElementTree as ET

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_junit(path):
    """(name -> wall-clock seconds per testcase, num_cpus=None)."""
    measured = {}
    for case in ET.parse(path).getroot().iter("testcase"):
        name = case.get("name", "")
        if name:
            measured[name] = float(case.get("time", "0"))
    return measured, None


def load_benchmark_json(path):
    """(name -> time in ns for plain iteration runs, context num_cpus).

    Benchmarks registered with UseRealTime() carry a "/real_time" name
    suffix; for those the wall clock is the honest number (a pooled
    benchmark's cpu_time only counts the dispatching thread). Everything
    else gates on cpu_time as before.
    """
    with open(path, encoding="utf-8") as f:
        results = json.load(f)
    measured = {}
    for bench in results.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        scale = UNIT_TO_NS[bench.get("time_unit", "ns")]
        field = "real_time" if bench["name"].endswith("/real_time") else "cpu_time"
        measured[bench["name"]] = float(bench[field]) * scale
    num_cpus = results.get("context", {}).get("num_cpus")
    return measured, int(num_cpus) if num_cpus is not None else None


def entry_fields(entry, global_factor):
    """(baseline, max_factor) of one entry in either spelling."""
    if isinstance(entry, dict):
        return float(entry["baseline"]), float(
            entry.get("max_factor", global_factor))
    return float(entry), global_factor


def update_baseline(measured, baseline_path, unit, prune):
    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
        if baseline.get("unit", unit) != unit:
            print(f"error: refusing to update {baseline_path} (records "
                  f"{baseline.get('unit')}) with {unit} measurements — "
                  "wrong results/baseline pairing?", file=sys.stderr)
            return 2
    except FileNotFoundError:
        baseline = ({"unit": "ns", "max_factor": 5.0, "floor": 5000.0}
                    if unit == "ns"
                    else {"unit": "seconds", "max_factor": 2.0, "floor": 1.0})
    old_entries = baseline.get("entries", {})
    digits = 4 if unit == "seconds" else 1
    entries = {}
    for name, value in sorted(measured.items()):
        rounded = round(value, digits)
        old = old_entries.get(name)
        if isinstance(old, dict):  # keep per-entry tolerances across updates
            entries[name] = {**old, "baseline": rounded}
        else:
            entries[name] = rounded
    # Entries the results file no longer exercises. A partial run (-R filter,
    # bench sharding) must not silently shrink the gate, so stale entries
    # survive the update unless deletion is explicitly requested.
    stale = sorted(set(old_entries) - set(entries))
    if stale and prune:
        print(f"removed {len(stale)} stale entries: {', '.join(stale)}")
    elif stale:
        for name in stale:
            entries[name] = old_entries[name]
        print(f"kept {len(stale)} stale entries (pass --prune to remove): "
              f"{', '.join(stale)}")
    baseline["entries"] = entries
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"baseline updated: {len(entries)} entries -> {baseline_path}")
    return 0


def check_ratios(ratios, measured, num_cpus, failures):
    """Gate the baseline's `ratios` section; append failures in place."""
    for label, spec in sorted(ratios.items()):
        num, den = spec["numerator"], spec["denominator"]
        min_ratio = float(spec["min_ratio"])
        min_cpus = spec.get("min_cpus")
        if min_cpus is not None and (num_cpus is None
                                     or num_cpus < int(min_cpus)):
            # Machine-checkable skip notice: CI greps for the literal
            # "skipped (cpus<N)" marker so a filtered ratio can never pass
            # silently as "checked".
            have = "unknown" if num_cpus is None else str(num_cpus)
            print(f"  ratio {label}: skipped (cpus<{int(min_cpus)}) — "
                  f"needs >= {min_cpus} CPUs, results report {have}")
            continue
        missing = [n for n in (num, den) if n not in measured]
        if missing:
            failures.append(f"ratio {label}: benchmark(s) "
                            f"{', '.join(missing)} did not run")
            continue
        if measured[den] <= 0.0:
            failures.append(f"ratio {label}: denominator {den} measured "
                            "non-positive time")
            continue
        ratio = measured[num] / measured[den]
        verdict = "ok" if ratio >= min_ratio else "REGRESSED"
        print(f"  ratio {label}: {num}/{den} = {ratio:.2f} "
              f"(min {min_ratio:g})  {verdict}")
        if ratio < min_ratio:
            failures.append(f"ratio {label}: {ratio:.2f} below required "
                            f"{min_ratio:g} ({num} / {den})")


TOP_LEVEL_KEYS = {"description", "unit", "max_factor", "floor",
                  "entries", "ratios"}
ENTRY_KEYS = {"baseline", "max_factor"}
RATIO_KEYS = {"numerator", "denominator", "min_ratio", "min_cpus"}


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_baseline(path):
    """Schema-check one baseline file; return a list of error strings.

    Runs in CI before the gate itself so a typo'd key (say `max_facto`)
    fails loudly instead of silently falling back to the global tolerance.
    """
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    if not isinstance(baseline, dict):
        return [f"{path}: top level must be an object"]

    for key in sorted(set(baseline) - TOP_LEVEL_KEYS):
        errors.append(f"{path}: unknown top-level key '{key}'")
    for key in ("unit", "max_factor", "floor", "entries"):
        if key not in baseline:
            errors.append(f"{path}: missing required key '{key}'")
    if "unit" in baseline and baseline["unit"] not in ("ns", "seconds"):
        errors.append(f"{path}: unit must be 'ns' or 'seconds', got "
                      f"{baseline['unit']!r}")
    for key in ("max_factor", "floor"):
        if key in baseline and not _is_number(baseline[key]):
            errors.append(f"{path}: '{key}' must be a number")

    entries = baseline.get("entries", {})
    if not isinstance(entries, dict):
        errors.append(f"{path}: 'entries' must be an object")
        entries = {}
    for name, entry in sorted(entries.items()):
        where = f"{path}: entries['{name}']"
        if _is_number(entry):
            continue
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be a number or an object")
            continue
        for key in sorted(set(entry) - ENTRY_KEYS):
            errors.append(f"{where}: unknown key '{key}'")
        if "baseline" not in entry:
            errors.append(f"{where}: object form requires 'baseline'")
        for key in ENTRY_KEYS & set(entry):
            if not _is_number(entry[key]):
                errors.append(f"{where}: '{key}' must be a number")

    ratios = baseline.get("ratios", {})
    if not isinstance(ratios, dict):
        errors.append(f"{path}: 'ratios' must be an object")
        ratios = {}
    for label, spec in sorted(ratios.items()):
        where = f"{path}: ratios['{label}']"
        if not isinstance(spec, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in sorted(set(spec) - RATIO_KEYS):
            errors.append(f"{where}: unknown key '{key}'")
        for key in ("numerator", "denominator"):
            if not isinstance(spec.get(key), str) or not spec.get(key):
                errors.append(f"{where}: '{key}' must be a non-empty "
                              "benchmark name")
        if "min_ratio" not in spec or not _is_number(spec.get("min_ratio")):
            errors.append(f"{where}: 'min_ratio' must be a number")
        if "min_cpus" in spec and not (
                isinstance(spec["min_cpus"], int)
                and not isinstance(spec["min_cpus"], bool)):
            errors.append(f"{where}: 'min_cpus' must be an integer")
    return errors


USAGE = ("usage: perf_gate.py [--update [--prune]] <results: junit .xml | "
         "google-benchmark .json> <baseline .json>\n"
         "       perf_gate.py --validate <baseline .json>...")


def main() -> int:
    # Strict option parsing: --update/--prune are the only options. Anything
    # else that looks like a flag is a usage error (exit 2), never a file
    # path — previously `perf_gate.py --updtae results.json baseline.json`
    # fell through to open("--updtae") and died with a confusing
    # FileNotFoundError while silently treating the baseline as the results
    # file.
    update = False
    prune = False
    validate = False
    args = []
    for arg in sys.argv[1:]:
        if arg == "--update":
            update = True
        elif arg == "--prune":
            prune = True
        elif arg == "--validate":
            validate = True
        elif arg.startswith("-"):
            print(f"error: unknown option '{arg}'\n{USAGE}", file=sys.stderr)
            return 2
        else:
            args.append(arg)
    if prune and not update:
        print(f"error: --prune only makes sense with --update\n{USAGE}",
              file=sys.stderr)
        return 2
    if validate:
        if update or not args:
            print(f"error: --validate takes baseline file(s) only\n{USAGE}",
                  file=sys.stderr)
            return 2
        errors = []
        for path in args:
            errors.extend(validate_baseline(path))
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        if errors:
            return 1
        print(f"validated {len(args)} baseline(s): schema ok")
        return 0
    if len(args) != 2:
        print(USAGE, file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2
    results_path, baseline_path = args

    if results_path.endswith(".xml"):
        (measured, num_cpus), unit = load_junit(results_path), "seconds"
    else:
        (measured, num_cpus), unit = load_benchmark_json(results_path), "ns"
    if not measured:
        print(f"error: no measurements found in {results_path}",
              file=sys.stderr)
        return 2

    if update:
        return update_baseline(measured, baseline_path, unit, prune)

    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    if baseline.get("unit", unit) != unit:
        print(f"error: {results_path} measures {unit} but {baseline_path} "
              f"records {baseline.get('unit')}", file=sys.stderr)
        return 2
    global_factor = float(baseline["max_factor"])
    floor = float(baseline["floor"])
    entries = baseline["entries"]

    failures = []
    width = max((len(n) for n in measured), default=0)
    for name, value in sorted(measured.items()):
        if name not in entries:
            failures.append(f"{name}: no baseline recorded in {baseline_path}"
                            " (regenerate with --update)")
            continue
        base, factor = entry_fields(entries[name], global_factor)
        limit = max(factor * base, floor)
        verdict = "ok" if value <= limit else "REGRESSED"
        print(f"  {name:{width}s} {value:14.3f} {unit}  (baseline "
              f"{base:.3f}, limit {limit:.3f}, x{factor:g})  {verdict}")
        if value > limit:
            failures.append(f"{name}: {value:.3f} {unit} exceeds limit "
                            f"{limit:.3f} ({factor:g}x baseline {base:.3f})")

    for name in sorted(set(entries) - set(measured)):
        print(f"  note: baseline entry '{name}' did not run", file=sys.stderr)

    check_ratios(baseline.get("ratios", {}), measured, num_cpus, failures)

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
