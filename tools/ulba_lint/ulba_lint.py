#!/usr/bin/env python3
"""ulba-lint — contract-aware static analysis for the ULBA codebase.

The repo's determinism / concurrency / codec contracts are enforced after
the fact by golden tests, and only on the paths those tests cover.  This
pass turns the repo-specific rules into a compile-time gate that generic
tooling (ASan/UBSan/TSan, clang-tidy) cannot express:

  rng-discipline       No rand()/std::random_device/ad-hoc engine seeding
                       outside src/support/.  Kernel code draws only via
                       support::Rng / support::CounterRng, so every draw
                       stays addressable and trajectories stay bit-identical
                       across threads x shards x ranks.
  unordered-iteration  No range-for / iterator loops over std::unordered_*
                       containers inside functions that serialize, print
                       reports, or accumulate floating-point — hash-order
                       iteration feeding serialized or accumulated output is
                       exactly how bit-identity dies silently.
  codec-discipline     Every serialize*/deserialize* in the disc.cpp
                       convention must carry a format-version marker, and a
                       deserializer must guard reads against remaining size.
                       Any raw memcpy needs a bounds check (ULBA_REQUIRE on
                       a size, or a resize/assign establishing the
                       destination) earlier in the same function.
  lock-discipline      No bare .lock()/.unlock() — RAII guards only
                       (lock_guard / scoped_lock / unique_lock).  Never hold
                       a mutex across a mailbox send/recv: the mailbox
                       blocks, and a held lock turns that into a deadlock
                       waiting for a message that needs the lock to be sent.
  tag-discipline       No integer-literal tags at Comm/mailbox call sites —
                       named kTag* constants only.  (By runtime convention
                       the tag is always the second argument of
                       send*/recv*/try_recv*.)
  time-discipline      steady_clock/system_clock reads are confined to the
                       measured-time and serve-metrics modules.  A wall
                       clock read anywhere else leaks real time into the
                       virtual-time trajectory.

Backends: when libclang's python bindings are importable AND the shared
library loads, function extents come from a real AST traversal; otherwise
the pass degrades gracefully to a token/structural analysis (comment/string
stripping + brace matching) so CI never silently loses coverage.  The rule
logic itself is shared between both backends — the backend only decides how
function boundaries and names are discovered.  The chosen backend is
printed and recorded in the JSON report.

Suppressions, in order of preference:
  1. Fix the code.
  2. Inline escape on (or on a comment line directly above) the finding:
         // ulba-lint: allow(rule-name): reason
     `allow(*)` silences every rule for that line.
  3. Baseline entry in tools/ulba_lint/baseline.json — every entry MUST
     carry a non-empty "reason"; the tool refuses a reasonless baseline.

Usage:
    ulba_lint.py [paths...] [--baseline FILE | --no-baseline]
                 [--json FILE] [--backend auto|clang|tokens]
                 [--rules r1,r2] [--list-rules]

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json")

RULES = {
    "rng-discipline":
        "ad-hoc RNG engine/seed outside src/support/ — draw via "
        "support::Rng / support::CounterRng so draws stay addressable",
    "unordered-iteration":
        "iteration over an unordered container in a function that "
        "serializes, prints, or accumulates floating-point — hash order "
        "is not part of the determinism contract",
    "codec-discipline":
        "codec without a version marker / unguarded read — every "
        "serialize/deserialize checks a version and bounds-checks reads; "
        "raw memcpy needs a preceding size guard",
    "lock-discipline":
        "bare .lock()/.unlock() or a mutex held across a mailbox "
        "send/recv — use RAII guards and release before communicating",
    "tag-discipline":
        "integer-literal message tag at a Comm/mailbox call site — use a "
        "named kTag* constant",
    "time-discipline":
        "wall-clock read outside the measured-time / serve-metrics "
        "modules — real time must not leak into virtual-time paths",
}

# Paths (repo-relative, forward slashes) where a rule does not apply.  These
# are the modules whose *job* is the thing the rule bans everywhere else.
RULE_ALLOWED_PATHS = {
    "rng-discipline": [
        r"^src/support/",  # the RNG abstraction itself lives here
    ],
    "time-discipline": [
        r"^src/support/burn\.",        # burns real CPU by definition
        r"^src/erosion/app\.cpp$",     # measured-time track (RunResult::measured)
        r"^src/erosion/threaded_app\.cpp$",  # measured-time threaded driver
        r"^src/serve/",                # serve metrics (wall, throughput)
        r"^src/cli/serve_driver\.cpp$",  # serve-metrics harness (wall, rps)
    ],
}

ALLOW_RE = re.compile(r"ulba-lint:\s*allow\(([^)]*)\)")


class LintError(Exception):
    """Configuration/usage error — maps to exit code 2."""


# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------

class Function:
    def __init__(self, name, start_line, end_line):
        self.name = name
        self.start_line = start_line   # 1-based, inclusive (header line)
        self.end_line = end_line       # 1-based, inclusive (closing brace)

    def __repr__(self):
        return f"Function({self.name}, {self.start_line}-{self.end_line})"


class SourceFile:
    """One parsed file: raw text, comment/string-stripped text, inline
    allow() escapes, and the function extents (from either backend)."""

    def __init__(self, path, rel_path, raw_text):
        self.path = path
        self.rel_path = rel_path
        self.raw_lines = raw_text.split("\n")
        self.clean_text = strip_comments_and_strings(raw_text)
        self.clean_lines = self.clean_text.split("\n")
        self.allow = collect_inline_allows(self.raw_lines)
        self.functions = []

    def enclosing_function(self, line):
        """Innermost function whose extent contains `line` (or None)."""
        best = None
        for fn in self.functions:
            if fn.start_line <= line <= fn.end_line:
                if best is None or fn.start_line > best.start_line:
                    best = fn
        return best

    def body_text(self, fn):
        return "\n".join(self.clean_lines[fn.start_line - 1:fn.end_line])


def strip_comments_and_strings(text):
    """Blank out comments, string literals, and char literals while keeping
    every line break and column position (so line/col reporting and brace
    matching still line up with the original source)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and nxt == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c == "R" and nxt == '"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if not m:
                out[i] = " "
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            end = text.find(close, i + m.end())
            end = n if end == -1 else end + len(close)
            for j in range(i, end):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    out[j] = " "
                    if text[j + 1] != "\n":
                        out[j + 1] = " "
                    j += 2
                    continue
                if text[j] == "\n":   # unterminated — bail at line end
                    break
                out[j] = " "
                j += 1
            if j < n and text[j] == quote:
                out[j] = " "
                j += 1
            i = j
        else:
            i += 1
    return "".join(out)


def collect_inline_allows(raw_lines):
    """line (1-based) -> set of rule names allowed there.  An allow on a
    comment-only line also covers the next line."""
    allow = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        unknown = {r for r in rules if r != "*" and r not in RULES}
        if unknown:
            raise LintError(
                f"line {idx}: unknown rule(s) in ulba-lint allow(): "
                f"{', '.join(sorted(unknown))}")
        allow.setdefault(idx, set()).update(rules)
        if line.strip().startswith("//"):
            # Comment-only line: the allow covers the first code line below
            # (skipping the rest of a multi-line comment).
            j = idx + 1
            while (j <= len(raw_lines)
                   and raw_lines[j - 1].strip().startswith("//")):
                j += 1
            allow.setdefault(j, set()).update(rules)
    return allow


# ---------------------------------------------------------------------------
# Function discovery — token/structural backend
# ---------------------------------------------------------------------------

_NOT_FUNCTION_NAMES = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "noexcept", "new", "delete", "throw",
    "alignas", "defined", "assert",
}

_HEADER_NAME_RE = re.compile(r"(~?[A-Za-z_][\w]*)\s*\(")


def _matching(text, start, open_ch, close_ch):
    """Index just past the bracket matching text[start] (== open_ch)."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def discover_functions_tokens(sf):
    """Function definitions via comment-stripped pattern + brace matching.

    Heuristic tuned for this clang-format'ed codebase: an identifier
    followed by a balanced parameter list, then (skipping specifiers,
    trailing return types, and constructor init lists) an opening brace.
    Lambdas never match (no identifier directly before the paren), so their
    bodies are attributed to the enclosing named function — which is the
    attribution the rules want anyway.
    """
    text = sf.clean_text
    functions = []
    for m in _HEADER_NAME_RE.finditer(text):
        name = m.group(1)
        if name in _NOT_FUNCTION_NAMES:
            continue
        # Must not be a member access / qualified call fragment like `x.f(`
        prev = text[:m.start()].rstrip()[-1:]
        if prev in {".", ">", "-"} and not text[:m.start()].rstrip().endswith("&&"):
            # `.f(` or `->f(`; `operator>(` is lost, acceptable
            if prev == "." or text[:m.start()].rstrip().endswith("->"):
                continue
        paren_open = m.end() - 1
        after_params = _matching(text, paren_open, "(", ")")
        # Walk from the params to `{`, `;`, or a disqualifier.
        i = after_params
        while i < len(text):
            c = text[i]
            if c in " \t\n":
                i += 1
            elif c == "{":
                break
            elif c in ";=":
                i = -1
                break
            elif c == "(":            # e.g. noexcept(...), init list member(..)
                i = _matching(text, i, "(", ")")
            elif c == ":":            # ctor init list / `-> a::b`
                i += 1
            elif c == "-" and text[i:i + 2] == "->":
                i += 2
            elif c.isalnum() or c in "_&*<>,[]":
                i += 1
            else:
                i = -1
                break
        if i == -1 or i >= len(text):
            continue
        body_end = _matching(text, i, "{", "}")
        start_line = text.count("\n", 0, m.start()) + 1
        end_line = text.count("\n", 0, max(body_end - 1, 0)) + 1
        functions.append(Function(name, start_line, end_line))
    return functions


# ---------------------------------------------------------------------------
# Function discovery — libclang backend
# ---------------------------------------------------------------------------

def load_libclang():
    """Return the clang.cindex module with a working library, else None."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        # Bindings importable but libclang.so missing/mismatched.
        for name in ("libclang.so", "libclang-17.so", "libclang-16.so",
                     "libclang-15.so", "libclang-14.so"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
    return None


def discover_functions_clang(sf, cindex):
    """Function extents from a real AST traversal.  Same model as the token
    backend — the rules only need (name, start_line, end_line)."""
    kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
        cindex.CursorKind.CONVERSION_FUNCTION,
    }
    index = cindex.Index.create()
    tu = index.parse(
        sf.path,
        args=["-x", "c++", "-std=c++20", "-I", os.path.join(REPO_ROOT, "src")],
        options=cindex.TranslationUnit.PARSE_INCOMPLETE)
    functions = []

    def walk(cursor):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is not None and os.path.samefile(str(loc.file),
                                                         sf.path):
                if child.kind in kinds and child.is_definition():
                    ext = child.extent
                    functions.append(Function(child.spelling,
                                              ext.start.line, ext.end.line))
                walk(child)

    walk(tu.cursor)
    return functions


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, sf, line, message):
        self.rule = rule
        self.path = sf.rel_path
        self.line = line
        self.message = message
        self.snippet = (sf.raw_lines[line - 1].strip()
                        if 0 < line <= len(sf.raw_lines) else "")
        self.suppressed = None  # None | "inline" | "baseline"

    def to_json(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
        }

    @staticmethod
    def from_json(obj):
        f = Finding.__new__(Finding)
        f.rule, f.path, f.line = obj["rule"], obj["path"], obj["line"]
        f.message, f.snippet = obj["message"], obj["snippet"]
        f.suppressed = obj.get("suppressed")
        return f


def path_allowed(rule, rel_path):
    for pattern in RULE_ALLOWED_PATHS.get(rule, []):
        if re.search(pattern, rel_path):
            return True
    return False


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

_RNG_ENGINE_RE = re.compile(
    r"\b(?:std::)?(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b|random_device)\b")
_RNG_CALL_RE = re.compile(r"(?<![\w:])s?rand\s*\(")


def rule_rng_discipline(sf):
    findings = []
    for idx, line in enumerate(sf.clean_lines, start=1):
        m = _RNG_ENGINE_RE.search(line) or _RNG_CALL_RE.search(line)
        if m:
            findings.append(Finding(
                "rng-discipline", sf, idx,
                "ad-hoc RNG engine/seed — kernel code must draw via "
                "support::Rng or support::CounterRng so every draw stays "
                "position-addressed"))
    return findings


_UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^();]*?:\s*([A-Za-z_][\w.\->]*)\s*\)", re.S)
_ITER_BEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(?:c?begin)\s*\(")
_SINK_NAME_RE = re.compile(
    r"serialize|print|report|dump|write|render|to_string|operator<<", re.I)
_STREAM_WRITE_RE = re.compile(
    r"\b(?:out|os|oss|stream|std::cout|std::cerr)\s*<<")
_FLOAT_ACCUM_RE = re.compile(r"\+=")


def _unordered_variables(sf):
    """Names declared (anywhere in the file) with an unordered_* type."""
    names = set()
    text = sf.clean_text
    for m in _UNORDERED_DECL_RE.finditer(text):
        i = m.end() - 1
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = text[i + 1:i + 120]
        vm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", tail)
        if vm:
            names.add(vm.group(1))
    return names


def _is_sink_function(sf, fn):
    if _SINK_NAME_RE.search(fn.name):
        return True
    body = sf.body_text(fn)
    if _STREAM_WRITE_RE.search(body):
        return True
    if _FLOAT_ACCUM_RE.search(body) and re.search(
            r"\bdouble\b|\bfloat\b|\bRunResult\b", body):
        return True
    return False


def rule_unordered_iteration(sf):
    findings = []
    unordered = _unordered_variables(sf)
    if not unordered:
        return findings
    text = sf.clean_text
    seen = set()
    candidates = []
    for m in _RANGE_FOR_RE.finditer(text):
        seq = m.group(1)
        last = re.split(r"\.|->", seq)[-1]
        if last in unordered or "unordered_" in seq:
            candidates.append((m.start(), last, "range-for"))
    for m in _ITER_BEGIN_RE.finditer(text):
        if m.group(1) in unordered:
            candidates.append((m.start(), m.group(1), "iterator loop"))
    for offset, var, kind in candidates:
        line = text.count("\n", 0, offset) + 1
        fn = sf.enclosing_function(line)
        if fn is None or not _is_sink_function(sf, fn):
            continue
        if (line, var) in seen:
            continue
        seen.add((line, var))
        findings.append(Finding(
            "unordered-iteration", sf, line,
            f"{kind} over unordered container '{var}' inside "
            f"'{fn.name}', which serializes/prints/accumulates — hash "
            "order would leak into contract-bearing output; use an "
            "ordered container or sort the keys first"))
    return findings


_CODEC_FN_RE = re.compile(r"^(serialize|deserialize)\w*$", re.I)
_VERSION_RE = re.compile(r"[Vv]ersion")
_SIZE_GUARD_RE = re.compile(
    r"ULBA_REQUIRE\s*\([^;]*?(?:size|sizeof|empty)|\bread_raw\b|"
    r"\bread_counted\b", re.S)
_MEMCPY_RE = re.compile(r"\bmemcpy\s*\(")
_MEMCPY_GUARD_RE = re.compile(
    r"ULBA_REQUIRE\s*\([^;]*?(?:size|sizeof)|\.resize\s*\(|\.assign\s*\(",
    re.S)


def rule_codec_discipline(sf):
    findings = []
    for fn in sf.functions:
        body = sf.body_text(fn)
        m = _CODEC_FN_RE.match(fn.name)
        if m:
            # Helper-sized codec shims (append_raw/read_raw relays) are not
            # full codecs; only functions that actually frame a payload
            # (multiple appends/reads) owe a version marker.
            frames = len(re.findall(
                r"\bappend_raw\b|\bappend_bytes\b|\bappend_counted\b|"
                r"\bread_raw\b|\bread_counted\b|\bmemcpy\b", body))
            if frames >= 2 and not _VERSION_RE.search(body):
                findings.append(Finding(
                    "codec-discipline", sf, fn.start_line,
                    f"codec '{fn.name}' has no format-version marker — "
                    "append/check a version so a stale peer fails loudly "
                    "instead of misparsing"))
            if (m.group(1).lower() == "deserialize"
                    and frames >= 2 and not _SIZE_GUARD_RE.search(body)):
                findings.append(Finding(
                    "codec-discipline", sf, fn.start_line,
                    f"deserializer '{fn.name}' never guards a read against "
                    "the remaining payload size (no ULBA_REQUIRE on "
                    "size/sizeof and no read_raw/read_counted helper)"))
    # Raw memcpy without a preceding bounds check, in any function.
    for idx, line in enumerate(sf.clean_lines, start=1):
        if not _MEMCPY_RE.search(line):
            continue
        fn = sf.enclosing_function(idx)
        if fn is None:
            continue
        before = "\n".join(sf.clean_lines[fn.start_line - 1:idx])
        if not _MEMCPY_GUARD_RE.search(before):
            findings.append(Finding(
                "codec-discipline", sf, idx,
                f"raw memcpy in '{fn.name}' with no preceding bounds "
                "check (ULBA_REQUIRE on a size, or a resize/assign "
                "establishing the destination)"))
    return findings


_BARE_LOCK_RE = re.compile(r"(?<!try_)\.\s*(?:lock|unlock)\s*\(\s*\)")
_GUARD_DECL_RE = re.compile(
    r"\b(?:lock_guard|scoped_lock|unique_lock)\s*(?:<[^<>]*>)?\s+\w+\s*[({]")
_MAILBOX_CALL_RE = re.compile(
    r"\b(?:send|recv|try_recv)\w*\s*(?:<[^<>;(){}]*>)?\s*\(")


def rule_lock_discipline(sf):
    findings = []
    for idx, line in enumerate(sf.clean_lines, start=1):
        if _BARE_LOCK_RE.search(line):
            findings.append(Finding(
                "lock-discipline", sf, idx,
                "bare .lock()/.unlock() — use std::lock_guard / "
                "std::scoped_lock / std::unique_lock so every exit path "
                "releases the mutex"))
    # A mutex held across a mailbox send/recv: guard declared, then a
    # communication call before the guard's scope closes.
    depth = 0
    depth_at_line = []  # depth at the START of each line
    for line in sf.clean_lines:
        depth_at_line.append(depth)
        depth += line.count("{") - line.count("}")
    for idx, line in enumerate(sf.clean_lines, start=1):
        gm = _GUARD_DECL_RE.search(line)
        if not gm:
            continue
        guard_depth = depth_at_line[idx - 1]
        j = idx  # scan following lines until the guard's block closes
        while j < len(sf.clean_lines):
            if depth_at_line[j] < guard_depth + (
                    1 if "{" in line[:gm.start()] else 0):
                if depth_at_line[j] <= guard_depth - 1:
                    break
            nxt = sf.clean_lines[j]
            if depth_at_line[j] < guard_depth and j > idx:
                break
            if _MAILBOX_CALL_RE.search(nxt) and not _GUARD_DECL_RE.search(nxt):
                findings.append(Finding(
                    "lock-discipline", sf, j + 1,
                    "mailbox send/recv while a lock guard from line "
                    f"{idx} is still held — blocking communication under "
                    "a mutex invites deadlock; release first"))
                break
            j += 1
    return findings


_TAG_CALL_RE = re.compile(
    r"\b(send|recv|try_recv)(_\w+)?\s*(?:<[^<>;(){}]*>)?\s*\(")


def _split_top_level_args(text, open_paren):
    """Arguments of the call whose '(' is at `open_paren`, split on
    top-level commas.  Returns (args, end_index)."""
    args, depth, cur = [], 0, []
    i = open_paren
    while i < len(text):
        c = text[i]
        if c in "([{":
            depth += 1
            if depth > 1:
                cur.append(c)
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(cur))
                return args, i
            cur.append(c)
        elif c == "," and depth == 1:
            args.append("".join(cur))
            cur = []
        elif c == "<":
            cur.append(c)
        else:
            cur.append(c)
        i += 1
    return args, i


def rule_tag_discipline(sf):
    findings = []
    text = sf.clean_text
    for m in _TAG_CALL_RE.finditer(text):
        # Call sites only: a declaration/definition (`void send_bytes(...)`)
        # or a declarator (`std::vector<T> send_to(...)`) is preceded by a
        # type token; a call is preceded by `.`/`->`/`::`, a statement
        # boundary, or an expression context character.
        before = text[:m.start()].rstrip()
        if before and (before[-1].isalnum() or before[-1] in "_>*&~"):
            if not (before.endswith("->") or before.endswith("::")):
                continue
        open_paren = text.index("(", m.end() - 1)
        args, _ = _split_top_level_args(text, open_paren)
        if len(args) < 2:
            continue
        tag = args[1].strip()
        if re.fullmatch(r"[+-]?\d+", tag):
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                "tag-discipline", sf, line,
                f"integer-literal tag {tag} at a mailbox call site — "
                "name it (constexpr int kTag... = ...) so tag collisions "
                "are visible at a glance"))
    return findings


_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\b")


def rule_time_discipline(sf):
    findings = []
    for idx, line in enumerate(sf.clean_lines, start=1):
        if _CLOCK_RE.search(line):
            findings.append(Finding(
                "time-discipline", sf, idx,
                "wall-clock read outside the measured-time / "
                "serve-metrics modules — virtual-time paths must not "
                "observe real time"))
    return findings


RULE_FUNCTIONS = {
    "rng-discipline": rule_rng_discipline,
    "unordered-iteration": rule_unordered_iteration,
    "codec-discipline": rule_codec_discipline,
    "lock-discipline": rule_lock_discipline,
    "tag-discipline": rule_tag_discipline,
    "time-discipline": rule_time_discipline,
}
assert set(RULE_FUNCTIONS) == set(RULES)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        raise LintError(f"baseline file not found: {path}")
    except json.JSONDecodeError as err:
        raise LintError(f"baseline {path} is not valid JSON: {err}")
    entries = data.get("suppressions", [])
    for i, entry in enumerate(entries):
        for key in ("rule", "path", "contains", "reason"):
            if key not in entry:
                raise LintError(
                    f"baseline entry #{i} is missing required key '{key}'")
        if entry["rule"] not in RULES:
            raise LintError(
                f"baseline entry #{i} names unknown rule "
                f"'{entry['rule']}'")
        if not str(entry["reason"]).strip():
            raise LintError(
                f"baseline entry #{i} ({entry['rule']} @ {entry['path']}) "
                "has an empty reason — every suppression must justify "
                "itself")
        entry["_used"] = False
    return entries


def apply_suppressions(findings, sources, baseline_entries):
    by_path = {sf.rel_path: sf for sf in sources}
    for finding in findings:
        sf = by_path.get(finding.path)
        if sf is not None:
            allowed = sf.allow.get(finding.line, set())
            if "*" in allowed or finding.rule in allowed:
                finding.suppressed = "inline"
                continue
        for entry in baseline_entries:
            if (entry["rule"] == finding.rule
                    and entry["path"] == finding.path
                    and entry["contains"] in finding.snippet):
                finding.suppressed = "baseline"
                entry["_used"] = True
                break
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def gather_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".cpp", ".hpp", ".cc", ".h")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(set(files))


def lint_files(files, backend="auto", rules=None):
    """Returns (sources, findings, backend_used)."""
    cindex = None
    backend_used = "tokens"
    if backend in ("auto", "clang"):
        cindex = load_libclang()
        if cindex is not None:
            backend_used = "clang"
        elif backend == "clang":
            raise LintError("--backend clang requested but libclang's "
                            "python bindings are unavailable")
    active = rules or sorted(RULES)
    for rule in active:
        if rule not in RULES:
            raise LintError(f"unknown rule '{rule}' (see --list-rules)")
    sources, findings = [], []
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
        rel = rel.replace(os.sep, "/")
        sf = SourceFile(path, rel, raw)
        if backend_used == "clang":
            try:
                sf.functions = discover_functions_clang(sf, cindex)
            except Exception:
                sf.functions = discover_functions_tokens(sf)
        else:
            sf.functions = discover_functions_tokens(sf)
        sources.append(sf)
        for rule in active:
            if path_allowed(rule, sf.rel_path):
                continue
            findings.extend(RULE_FUNCTIONS[rule](sf))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return sources, findings, backend_used


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="ulba_lint",
        description="contract-aware static analysis for the ULBA repo")
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(REPO_ROOT, "src")],
                        help="files/directories to lint (default: src/)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="suppression baseline JSON")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--json", dest="json_out", metavar="FILE",
                        help="write machine-readable findings JSON")
    parser.add_argument("--backend", choices=["auto", "clang", "tokens"],
                        default="auto")
    parser.add_argument("--rules", help="comma-separated rule subset")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name]}")
        return 0

    try:
        rules = ([r.strip() for r in args.rules.split(",") if r.strip()]
                 if args.rules else None)
        files = gather_files(args.paths)
        if not files:
            raise LintError("no C++ sources found under the given paths")
        baseline_entries = ([] if args.no_baseline
                            else load_baseline(args.baseline))
        sources, findings, backend_used = lint_files(
            files, backend=args.backend, rules=rules)
        apply_suppressions(findings, sources, baseline_entries)
    except LintError as err:
        print(f"ulba-lint: error: {err}", file=sys.stderr)
        return 2

    unsuppressed = [f for f in findings if f.suppressed is None]
    print(f"ulba-lint: backend: {backend_used}"
          + ("" if backend_used == "clang"
             else " (libclang unavailable — token/structural analysis)"))
    for finding in findings:
        mark = {"inline": " [suppressed: inline allow]",
                "baseline": " [suppressed: baseline]"}.get(
                    finding.suppressed, "")
        stream = sys.stdout if finding.suppressed else sys.stderr
        print(f"{finding.path}:{finding.line}: [{finding.rule}] "
              f"{finding.message}{mark}\n    {finding.snippet}", file=stream)

    for entry in baseline_entries:
        if not entry.get("_used"):
            print(f"ulba-lint: note: baseline entry no longer matches "
                  f"anything: {entry['rule']} @ {entry['path']} "
                  f"(contains: {entry['contains']!r})")

    suppressed = len(findings) - len(unsuppressed)
    print(f"ulba-lint: {len(files)} files, {len(findings)} finding(s), "
          f"{suppressed} suppressed, {len(unsuppressed)} blocking")

    if args.json_out:
        report = {
            "tool": "ulba-lint",
            "backend": backend_used,
            "files": len(files),
            "rules": sorted(rules or RULES),
            "findings": [f.to_json() for f in findings],
            "summary": {
                "total": len(findings),
                "suppressed": suppressed,
                "blocking": len(unsuppressed),
            },
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
