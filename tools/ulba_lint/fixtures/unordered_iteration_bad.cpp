// Fixture: unordered-iteration must fire on hash-order loops that feed
// serialized output or floating-point accumulation, and stay quiet on
// order-independent uses. NOT part of the build — parsed by ulba_lint only.
#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct RunResult {
  double total = 0.0;
};

void print_report(std::ostream& out,
                  const std::unordered_map<std::string, double>& stats) {
  for (const auto& entry : stats)             // finding: hash order printed
    out << entry.first << " " << entry.second << "\n";
}

double accumulate_result(const std::unordered_map<int, double>& weights) {
  RunResult result;
  for (const auto& kv : weights)              // finding: FP accumulation
    result.total += kv.second;
  return result.total;
}

std::vector<std::byte> serialize_members(
    const std::unordered_set<std::int64_t>& members) {
  std::vector<std::byte> out;
  for (auto it = members.begin(); it != members.end(); ++it)  // finding
    out.push_back(static_cast<std::byte>(*it & 0xff));
  return out;
}

// Order-independent use: counting distinct keys never observes hash order,
// so this must NOT be flagged.
std::size_t count_distinct(const std::vector<int>& picks) {
  std::unordered_set<int> distinct;
  for (const int p : picks) distinct.insert(p);
  return distinct.size();
}

}  // namespace fixture
