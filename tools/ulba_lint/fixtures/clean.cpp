// Fixture: a file following every contract — ulba_lint must report zero
// findings here. Mentions of banned tokens live only in comments and
// strings (mt19937, steady_clock, rand()), which the pass must ignore.
// NOT part of the build — parsed by ulba_lint only.
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <ostream>
#include <span>
#include <vector>

#define ULBA_REQUIRE(cond, msg) ((void)0)

namespace fixture {

constexpr std::int64_t kFormatVersion = 1;
constexpr int kTagClean = 11;

struct Comm {
  void send_bytes(int dest, int tag, const std::vector<std::byte>& payload);
};

// Ordered traversal feeding a report: deterministic by construction.
void print_report(std::ostream& out, const std::map<int, double>& stats) {
  for (const auto& entry : stats) out << entry.first << ":" << entry.second;
}

std::vector<std::byte> serialize_value(std::int64_t value) {
  std::vector<std::byte> out;
  out.resize(sizeof(kFormatVersion) + sizeof(value));
  std::memcpy(out.data(), &kFormatVersion, sizeof(kFormatVersion));
  std::memcpy(out.data() + sizeof(kFormatVersion), &value, sizeof(value));
  return out;
}

std::int64_t deserialize_value(std::span<const std::byte> payload) {
  ULBA_REQUIRE(payload.size() == sizeof(std::int64_t) * 2,
               "payload size mismatch");
  std::int64_t version = 0;
  std::memcpy(&version, payload.data(), sizeof(version));
  ULBA_REQUIRE(version == kFormatVersion, "unsupported version");
  std::int64_t value = 0;
  std::memcpy(&value, payload.data() + sizeof(version), sizeof(value));
  return value;
}

void guarded_send(std::mutex& mutex, std::vector<std::byte>& pending,
                  Comm& comm) {
  std::vector<std::byte> snapshot;
  {
    const std::lock_guard<std::mutex> guard(mutex);
    snapshot = pending;
  }
  comm.send_bytes(0, kTagClean, snapshot);
}

}  // namespace fixture
