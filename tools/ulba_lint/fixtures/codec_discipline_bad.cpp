// Fixture: codec-discipline must fire on versionless codecs, unguarded
// deserializer reads, and raw memcpy without a bounds check. NOT part of
// the build — parsed by ulba_lint only.
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace fixture {

struct Header {
  std::int64_t id = 0;
  std::int64_t count = 0;
};

// finding: frames a payload but never writes a version marker.
std::vector<std::byte> serialize_header(const Header& h) {
  std::vector<std::byte> out(sizeof(Header));
  std::memcpy(out.data(), &h.id, sizeof(h.id));
  std::memcpy(out.data() + sizeof(h.id), &h.count, sizeof(h.count));
  return out;
}

// findings: no version check AND reads without any remaining-size guard.
Header deserialize_header(std::span<const std::byte> payload) {
  Header h;
  std::memcpy(&h.id, payload.data(), sizeof(h.id));
  std::memcpy(&h.count, payload.data() + sizeof(h.id), sizeof(h.count));
  return h;
}

// finding: raw memcpy in a non-codec helper with no preceding bounds check.
void copy_tail(std::vector<double>& dst, const std::vector<double>& src) {
  std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
}

}  // namespace fixture
