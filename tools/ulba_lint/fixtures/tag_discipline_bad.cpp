// Fixture: tag-discipline must fire on integer-literal tags at mailbox
// call sites and stay quiet on named kTag* constants and declarations.
// NOT part of the build — parsed by ulba_lint only.
#include <cstdint>
#include <vector>

namespace fixture {

struct Comm {
  void send_bytes(int dest, int tag, const std::vector<std::byte>& payload);
  std::vector<std::byte> recv_bytes(int source, int tag);
  template <typename T>
  void send_span(int dest, int tag, const std::vector<T>& values);
};

constexpr int kTagHalo = 100;

void literal_tags(Comm& comm, const std::vector<std::byte>& payload) {
  comm.send_bytes(1, 42, payload);            // finding: literal tag
  (void)comm.recv_bytes(0, 42);               // finding: literal tag
  comm.send_span<std::int64_t>(2, 7, {});     // finding: literal tag
}

void named_tags(Comm& comm, const std::vector<std::byte>& payload) {
  comm.send_bytes(1, kTagHalo, payload);      // fine: named constant
  (void)comm.recv_bytes(0, kTagHalo);         // fine: named constant
}

// Declarations must not be mistaken for call sites.
std::vector<std::uint8_t> send_to(static_cast<std::size_t>(8), 0);

}  // namespace fixture
