// Fixture: rng-discipline must fire on ad-hoc engines and libc rand().
// NOT part of the build — parsed by ulba_lint only.
#include <cstdlib>
#include <random>

namespace fixture {

double draw_with_adhoc_engine(std::uint64_t seed) {
  std::mt19937_64 engine(seed);               // finding: ad-hoc engine
  std::uniform_real_distribution<double> u(0.0, 1.0);
  return u(engine);
}

int draw_with_libc() {
  return rand();                              // finding: libc rand()
}

void seed_from_entropy() {
  std::random_device rd;                      // finding: random_device
  srand(rd());                                // finding: srand
}

}  // namespace fixture
