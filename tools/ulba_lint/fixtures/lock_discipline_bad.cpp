// Fixture: lock-discipline must fire on bare .lock()/.unlock() and on a
// mutex held across a mailbox send/recv. NOT part of the build — parsed by
// ulba_lint only.
#include <mutex>
#include <vector>

namespace fixture {

struct Comm {
  void send_bytes(int dest, int tag, const std::vector<std::byte>& payload);
  std::vector<std::byte> recv_bytes(int source, int tag);
};

constexpr int kTagFixture = 7;

struct State {
  std::mutex mutex;
  std::vector<std::byte> pending;
};

void bare_lock_pair(State& state) {
  state.mutex.lock();                         // finding: bare .lock()
  state.pending.clear();
  state.mutex.unlock();                       // finding: bare .unlock()
}

void send_under_lock(State& state, Comm& comm) {
  const std::lock_guard<std::mutex> guard(state.mutex);
  comm.send_bytes(1, kTagFixture, state.pending);  // finding: send held
}

void recv_outside_lock(State& state, Comm& comm) {
  // Correct shape: copy under the guard, communicate after release.
  std::vector<std::byte> snapshot;
  {
    const std::lock_guard<std::mutex> guard(state.mutex);
    snapshot = state.pending;
  }
  comm.send_bytes(1, kTagFixture, snapshot);  // fine: guard already gone
}

}  // namespace fixture
