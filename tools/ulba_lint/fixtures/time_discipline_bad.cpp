// Fixture: time-discipline must fire on wall-clock reads outside the
// measured-time / serve-metrics modules. NOT part of the build — parsed by
// ulba_lint only.
#include <chrono>

namespace fixture {

double virtual_time_step(double model_seconds) {
  // A virtual-time path peeking at the wall clock: exactly the leak the
  // rule exists to catch.
  const auto t0 = std::chrono::steady_clock::now();   // finding
  (void)t0;
  const auto wall = std::chrono::system_clock::now(); // finding
  (void)wall;
  return model_seconds;
}

// Mentions in comments or strings must not fire: steady_clock.

}  // namespace fixture
