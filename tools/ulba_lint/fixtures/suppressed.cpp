// Fixture: inline "ulba-lint" allow escapes must silence the named rule
// (and only it) on the annotated line. NOT part of the build — parsed by
// ulba_lint only.
#include <chrono>
#include <cstdlib>

namespace fixture {

double allowed_clock_read() {
  // ulba-lint: allow(time-discipline): fixture demonstrates the escape.
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

int allowed_rand() {
  return rand();  // ulba-lint: allow(rng-discipline): fixture escape.
}

int unsuppressed_rand() {
  return rand();  // still a finding: no allow on this line
}

}  // namespace fixture
