#!/usr/bin/env python3
"""Tests for ulba_lint: every rule fires on its fixture, clean files stay
clean, inline/baseline suppressions are honored, the JSON report
round-trips, and the CLI exit codes hold.  Registered with ctest as
`test_lint_fixtures`; runs under plain `python3 -m unittest` too."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import ulba_lint  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")
LINT = os.path.join(HERE, "ulba_lint.py")
REPO = ulba_lint.REPO_ROOT


def lint(paths, **kwargs):
    files = ulba_lint.gather_files(paths)
    sources, findings, backend = ulba_lint.lint_files(files, **kwargs)
    return sources, findings, backend


def fixture(name):
    return os.path.join(FIXTURES, name)


class RuleFiresOnFixture(unittest.TestCase):
    """Each of the six rules demonstrably fires on its fixture file."""

    def assert_rule_fires(self, fixture_name, rule, expected_lines):
        _, findings, _ = lint([fixture(fixture_name)])
        hits = [f for f in findings if f.rule == rule]
        self.assertEqual(
            sorted(f.line for f in hits), sorted(expected_lines),
            f"{rule} findings in {fixture_name}: "
            f"{[(f.line, f.message) for f in findings]}")
        # No *other* rule may fire on a single-rule fixture (cross-rule
        # noise would make the fixtures useless as regression anchors) —
        # except codec fixtures, whose memcpys legitimately double-fire.

    def test_rng_discipline(self):
        self.assert_rule_fires("rng_discipline_bad.cpp", "rng-discipline",
                               [9, 15, 19, 20])

    def test_unordered_iteration(self):
        self.assert_rule_fires("unordered_iteration_bad.cpp",
                               "unordered-iteration", [19, 25, 33])

    def test_codec_discipline(self):
        _, findings, _ = lint([fixture("codec_discipline_bad.cpp")])
        rules = {f.rule for f in findings}
        self.assertEqual(rules, {"codec-discipline"})
        messages = "\n".join(f.message for f in findings)
        self.assertIn("no format-version marker", messages)
        self.assertIn("never guards a read", messages)
        self.assertIn("raw memcpy", messages)

    def test_lock_discipline(self):
        self.assert_rule_fires("lock_discipline_bad.cpp", "lock-discipline",
                               [22, 24, 29])

    def test_tag_discipline(self):
        self.assert_rule_fires("tag_discipline_bad.cpp", "tag-discipline",
                               [19, 20, 21])

    def test_time_discipline(self):
        self.assert_rule_fires("time_discipline_bad.cpp", "time-discipline",
                               [11, 13])

    def test_declarations_are_not_tag_call_sites(self):
        _, findings, _ = lint([fixture("tag_discipline_bad.cpp")])
        flagged = {f.line for f in findings}
        self.assertNotIn(30, flagged,
                         "vector declaration mistaken for a send() call")


class CleanFileStaysClean(unittest.TestCase):
    def test_zero_findings(self):
        _, findings, _ = lint([fixture("clean.cpp")])
        self.assertEqual(
            [], [(f.line, f.rule, f.message) for f in findings])


class Suppressions(unittest.TestCase):
    def test_inline_allow_is_honored(self):
        sources, findings, _ = lint([fixture("suppressed.cpp")])
        ulba_lint.apply_suppressions(findings, sources, [])
        by_line = {f.line: f for f in findings}
        self.assertEqual(by_line[11].suppressed, "inline")
        self.assertEqual(by_line[16].suppressed, "inline")
        self.assertIsNone(by_line[20].suppressed)

    def test_baseline_is_honored(self):
        sources, findings, _ = lint([fixture("suppressed.cpp")])
        rel = os.path.relpath(fixture("suppressed.cpp"),
                              REPO).replace(os.sep, "/")
        entries = [{"rule": "rng-discipline", "path": rel,
                    "contains": "still a finding", "reason": "test entry",
                    "_used": False}]
        ulba_lint.apply_suppressions(findings, sources, entries)
        by_line = {f.line: f for f in findings}
        self.assertEqual(by_line[20].suppressed, "baseline")
        self.assertTrue(entries[0]["_used"])

    def test_reasonless_baseline_is_rejected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump({"suppressions": [{
                "rule": "rng-discipline", "path": "x.cpp",
                "contains": "rand", "reason": "  "}]}, f)
            path = f.name
        try:
            with self.assertRaises(ulba_lint.LintError):
                ulba_lint.load_baseline(path)
        finally:
            os.unlink(path)

    def test_checked_in_baseline_entries_all_carry_reasons(self):
        entries = ulba_lint.load_baseline(ulba_lint.DEFAULT_BASELINE)
        for entry in entries:
            self.assertTrue(str(entry["reason"]).strip())


class JsonReport(unittest.TestCase):
    def test_round_trip(self):
        out = os.path.join(tempfile.mkdtemp(), "findings.json")
        proc = subprocess.run(
            [sys.executable, LINT, "--no-baseline", "--json", out,
             fixture("rng_discipline_bad.cpp")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1)
        with open(out, encoding="utf-8") as f:
            report = json.load(f)
        self.assertEqual(report["tool"], "ulba-lint")
        self.assertIn(report["backend"], ("clang", "tokens"))
        self.assertEqual(report["summary"]["total"],
                         len(report["findings"]))
        self.assertEqual(report["summary"]["blocking"], 4)
        for obj in report["findings"]:
            finding = ulba_lint.Finding.from_json(obj)
            self.assertEqual(finding.to_json(), obj)


class CliContract(unittest.TestCase):
    def run_lint(self, *args):
        return subprocess.run([sys.executable, LINT, *args],
                              capture_output=True, text=True)

    def test_clean_file_exits_zero(self):
        self.assertEqual(
            self.run_lint("--no-baseline", fixture("clean.cpp")).returncode,
            0)

    def test_findings_exit_one(self):
        self.assertEqual(
            self.run_lint("--no-baseline",
                          fixture("time_discipline_bad.cpp")).returncode, 1)

    def test_unknown_rule_exits_two(self):
        self.assertEqual(
            self.run_lint("--rules", "no-such-rule",
                          fixture("clean.cpp")).returncode, 2)

    def test_missing_path_exits_two(self):
        self.assertEqual(
            self.run_lint("/no/such/path.cpp").returncode, 2)

    def test_src_is_clean_under_the_checked_in_baseline(self):
        proc = self.run_lint(os.path.join(REPO, "src"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("0 blocking", proc.stdout)


class BackendDegradation(unittest.TestCase):
    def test_tokens_backend_is_always_available(self):
        _, findings, backend = lint([fixture("rng_discipline_bad.cpp")],
                                    backend="tokens")
        self.assertEqual(backend, "tokens")
        self.assertEqual(len(findings), 4)

    def test_auto_backend_reports_which_path_ran(self):
        _, _, backend = lint([fixture("clean.cpp")], backend="auto")
        self.assertIn(backend, ("clang", "tokens"))

    def test_function_discovery_finds_the_fixture_functions(self):
        sources, _, _ = lint([fixture("lock_discipline_bad.cpp")])
        names = {fn.name for fn in sources[0].functions}
        self.assertLessEqual(
            {"bare_lock_pair", "send_under_lock", "recv_outside_lock"},
            names)


if __name__ == "__main__":
    unittest.main()
