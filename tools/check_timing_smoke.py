#!/usr/bin/env python3
"""Gate `ctest -L integration` wall-clock times against a recorded baseline.

Usage:
    ctest -L integration --output-junit junit.xml
    python3 tools/check_timing_smoke.py junit.xml bench/baselines/ci_smoke.json

A test fails the gate when its measured time exceeds
    max(max_factor * baseline_seconds[test], floor_seconds)
— the factor catches real regressions (e.g. the threaded erosion stepping
serializing again), the absolute floor keeps sub-second tests from flapping
on noisy runners. Tests present in the JUnit report but missing from the
baseline are reported (and fail the gate) so the baseline stays in sync with
the suite.
"""

import json
import sys
import xml.etree.ElementTree as ET


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    junit_path, baseline_path = sys.argv[1], sys.argv[2]

    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    max_factor = float(baseline["max_factor"])
    floor_seconds = float(baseline["floor_seconds"])
    expected = {k: float(v) for k, v in baseline["baseline_seconds"].items()}

    measured = {}
    for case in ET.parse(junit_path).getroot().iter("testcase"):
        name = case.get("name", "")
        if name:
            measured[name] = float(case.get("time", "0"))

    if not measured:
        print(f"error: no test cases found in {junit_path}", file=sys.stderr)
        return 2

    failures = []
    for name, seconds in sorted(measured.items()):
        if name not in expected:
            failures.append(f"{name}: no baseline recorded in {baseline_path}")
            continue
        limit = max(max_factor * expected[name], floor_seconds)
        verdict = "ok" if seconds <= limit else "REGRESSED"
        print(f"  {name:30s} {seconds:8.3f}s  (baseline {expected[name]:.3f}s,"
              f" limit {limit:.3f}s)  {verdict}")
        if seconds > limit:
            failures.append(
                f"{name}: {seconds:.3f}s exceeds limit {limit:.3f}s "
                f"({max_factor}x baseline {expected[name]:.3f}s)")

    stale = sorted(set(expected) - set(measured))
    for name in stale:
        print(f"  note: baseline entry '{name}' did not run", file=sys.stderr)

    if failures:
        print("\ntiming smoke FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("\ntiming smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
