#!/usr/bin/env python3
"""Gate bench_micro's per-benchmark times against a recorded baseline.

Usage:
    ./bench_micro --benchmark_format=json --benchmark_out=bench_micro.json \
        --benchmark_min_time=0.05
    python3 tools/check_bench_micro.py bench_micro.json \
        bench/baselines/bench_micro.json [--update]

This is the second tier of the perf-gate story: tools/check_timing_smoke.py
watches the integration suites' wall clock (catches "the whole app got
slow"), while this gate watches the hot primitives themselves (catches "one
kernel regressed 10x but the suite still finishes").

A benchmark fails the gate when its measured cpu_time exceeds
    max(max_factor * baseline_ns[name], floor_ns)
— the generous factor absorbs runner-hardware variance between the recording
machine and CI, the absolute floor keeps nanosecond-scale benchmarks from
flapping on timer noise. Benchmarks present in the results but missing from
the baseline fail the gate so the baseline stays in sync with bench_micro.cpp
(regenerate with --update and review the diff like any other code change).
"""

import json
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_measurements(results_path):
    """name -> cpu_time in ns, plain iteration runs only (no aggregates)."""
    with open(results_path, encoding="utf-8") as f:
        results = json.load(f)
    measured = {}
    for bench in results.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench["name"]
        scale = UNIT_TO_NS[bench.get("time_unit", "ns")]
        measured[name] = float(bench["cpu_time"]) * scale
    return measured


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--update"]
    update = "--update" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    results_path, baseline_path = args

    measured = load_measurements(results_path)
    if not measured:
        print(f"error: no benchmarks found in {results_path}", file=sys.stderr)
        return 2

    if update:
        try:
            with open(baseline_path, encoding="utf-8") as f:
                baseline = json.load(f)
        except FileNotFoundError:
            baseline = {"max_factor": 5.0, "floor_ns": 5000.0}
        baseline["baseline_ns"] = {
            name: round(ns, 1) for name, ns in sorted(measured.items())
        }
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {len(measured)} benchmarks "
              f"-> {baseline_path}")
        return 0

    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    max_factor = float(baseline["max_factor"])
    floor_ns = float(baseline["floor_ns"])
    expected = {k: float(v) for k, v in baseline["baseline_ns"].items()}

    failures = []
    for name, ns in sorted(measured.items()):
        if name not in expected:
            failures.append(f"{name}: no baseline recorded in {baseline_path}"
                            " (regenerate with --update)")
            continue
        limit = max(max_factor * expected[name], floor_ns)
        verdict = "ok" if ns <= limit else "REGRESSED"
        print(f"  {name:42s} {ns:14.1f}ns  (baseline {expected[name]:.1f}ns,"
              f" limit {limit:.1f}ns)  {verdict}")
        if ns > limit:
            failures.append(
                f"{name}: {ns:.1f}ns exceeds limit {limit:.1f}ns "
                f"({max_factor}x baseline {expected[name]:.1f}ns)")

    for name in sorted(set(expected) - set(measured)):
        print(f"  note: baseline entry '{name}' did not run", file=sys.stderr)

    if failures:
        print("\nbench_micro gate FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("\nbench_micro gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
