#include "cli/args.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "support/require.hpp"

namespace ulba::cli {

namespace {

/// "--flag" → "flag"; anything not starting with "--" is not a flag.
bool strip_dashes(const std::string& token, std::string* name) {
  if (token.size() < 3 || token[0] != '-' || token[1] != '-') return false;
  *name = token.substr(2);
  return true;
}

}  // namespace

FlagMap::FlagMap(const std::vector<std::string>& args,
                 const std::set<std::string>& switches) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string name;
    ULBA_REQUIRE(strip_dashes(args[i], &name),
                 "unexpected positional argument '" + args[i] +
                     "' (flags look like --name value or --name=value)");
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      const std::string value = name.substr(eq + 1);
      name = name.substr(0, eq);
      ULBA_REQUIRE(!name.empty(), "empty flag name in '" + args[i] + "'");
      values_[name] = value;
      continue;
    }
    if (switches.count(name) != 0) {
      values_[name] = "";
      continue;
    }
    ULBA_REQUIRE(i + 1 < args.size(),
                 "flag --" + name + " expects a value");
    values_[name] = args[++i];
  }
}

bool FlagMap::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string FlagMap::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t FlagMap::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  ULBA_REQUIRE(end != it->second.c_str() && *end == '\0' && errno != ERANGE,
               "flag --" + name + " expects an integer, got '" + it->second +
                   "'");
  return static_cast<std::int64_t>(v);
}

double FlagMap::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  ULBA_REQUIRE(end != it->second.c_str() && *end == '\0' && errno != ERANGE,
               "flag --" + name + " expects a number, got '" + it->second +
                   "'");
  return v;
}

std::uint64_t FlagMap::get_seed(const std::string& name,
                                std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // strtoull silently wraps negative input, so reject '-' ourselves.
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  ULBA_REQUIRE(end != it->second.c_str() && *end == '\0' &&
                   errno != ERANGE &&
                   it->second.find('-') == std::string::npos,
               "flag --" + name + " expects a non-negative integer, got '" +
                   it->second + "'");
  return static_cast<std::uint64_t>(v);
}

void FlagMap::require_known(const std::set<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    ULBA_REQUIRE(known.count(name) != 0, "unknown flag --" + name);
  }
}

const std::set<std::string>& model_param_flags() {
  static const std::set<std::string> kFlags{
      "P", "N", "gamma", "w0", "a", "m", "alpha", "omega", "lb-cost"};
  return kFlags;
}

core::ModelParams parse_model_params(const FlagMap& flags,
                                     const core::ModelParams& defaults) {
  core::ModelParams p = defaults;
  p.P = flags.get_int("P", p.P);
  p.N = flags.get_int("N", p.N);
  p.gamma = flags.get_int("gamma", p.gamma);
  p.w0 = flags.get_double("w0", p.w0);
  p.a = flags.get_double("a", p.a);
  p.m = flags.get_double("m", p.m);
  p.alpha = flags.get_double("alpha", p.alpha);
  p.omega = flags.get_double("omega", p.omega);
  p.lb_cost = flags.get_double("lb-cost", p.lb_cost);
  p.validate();
  return p;
}

std::string model_param_help(const core::ModelParams& defaults) {
  std::ostringstream os;
  os << "model parameters (Table I):\n"
     << "  --P <int>        processing elements        [" << defaults.P
     << "]\n"
     << "  --N <int>        overloading PEs            [" << defaults.N
     << "]\n"
     << "  --gamma <int>    application iterations     [" << defaults.gamma
     << "]\n"
     << "  --w0 <flop>      initial total workload     [" << defaults.w0
     << "]\n"
     << "  --a <flop/it>    per-PE growth rate         [" << defaults.a
     << "]\n"
     << "  --m <flop/it>    extra overloading growth   [" << defaults.m
     << "]\n"
     << "  --alpha <0..1>   ULBA underloading fraction [" << defaults.alpha
     << "]\n"
     << "  --omega <flops>  PE speed                   [" << defaults.omega
     << "]\n"
     << "  --lb-cost <s>    LB call cost C             [" << defaults.lb_cost
     << "]\n";
  return os.str();
}

}  // namespace ulba::cli
