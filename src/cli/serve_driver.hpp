// In-process multi-client traffic driver for the schedule service — the
// harness behind `ulba_cli serve` and bench_serve's headline hit-rate /
// throughput numbers. Spawns one SPMD world (rank 0 = server, the rest =
// clients), replays a deterministic query mix drawn from a pool of
// `distinct` Table-II requests, and checks every response bit-for-bit
// against an independently computed cold evaluation of the same request —
// the cached-answer determinism contract, verified under genuinely
// concurrent arrival orders.
#pragma once

#include <cstdint>

#include "core/schedule_query.hpp"
#include "serve/service.hpp"

namespace ulba::cli {

struct ServeTrafficOptions {
  int clients = 4;
  std::int64_t requests_per_client = 256;
  /// Size of the request pool the clients draw from; repeats are what the
  /// cache turns into hits.
  std::int64_t distinct = 32;
  std::int64_t batch_limit = 32;
  std::int64_t cache_capacity = 4096;
  std::int64_t cache_shards = 8;
  core::EvalMode mode = core::EvalMode::kSigmaGrid;
  std::int64_t alpha_grid = 10;
  std::uint64_t seed = 11;
};

struct ServeTrafficResult {
  serve::ServeMetrics metrics;
  double wall_seconds = 0.0;
  std::int64_t total_requests = 0;
  double requests_per_second = 0.0;
  /// Distinct pool entries actually queried (deterministic for a seed):
  /// with capacity >= distinct this equals the server's cache misses.
  std::int64_t distinct_queried = 0;
  /// Responses whose provenance-masked payload differed from the cold
  /// evaluation of the same request — must be 0.
  std::int64_t mismatched_responses = 0;
  /// Responses answered from the cache (as seen by the clients).
  std::int64_t hit_responses = 0;

  [[nodiscard]] bool ok() const noexcept { return mismatched_responses == 0; }
};

/// The deterministic request pool the traffic draws from (exposed so tests
/// and benchmarks can evaluate the same requests out-of-band).
[[nodiscard]] std::vector<core::ScheduleRequest> serve_traffic_pool(
    const ServeTrafficOptions& options);

/// Run one traffic session and verify every response against cold
/// evaluation. Deterministic in everything except wall clock and the
/// server's batching counters (arrival order is real concurrency).
[[nodiscard]] ServeTrafficResult serve_traffic(
    const ServeTrafficOptions& options);

}  // namespace ulba::cli
