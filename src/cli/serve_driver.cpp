#include "cli/serve_driver.hpp"

#include <chrono>
#include <unordered_set>
#include <vector>

#include "cli/sweep.hpp"
#include "core/instance.hpp"
#include "opt/evaluate.hpp"
#include "runtime/spmd.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"

namespace ulba::cli {
namespace {

/// Provenance-masked response bytes — the equality the determinism
/// contract is stated in.
std::vector<std::byte> masked_payload(core::ScheduleResponse response) {
  response.provenance = core::ResponseProvenance{};
  return core::serialize_response(response);
}

/// Client r's pool picks, in submission order. A pure replay: the driver
/// uses it to pre-compute the distinct set, the client ranks to pick.
std::vector<std::size_t> client_picks(const ServeTrafficOptions& options,
                                      int client_rank) {
  support::Rng picker = support::Rng(options.seed)
                            .fork(1000 + static_cast<std::uint64_t>(client_rank));
  std::vector<std::size_t> picks;
  picks.reserve(static_cast<std::size_t>(options.requests_per_client));
  for (std::int64_t k = 0; k < options.requests_per_client; ++k)
    picks.push_back(picker.index(static_cast<std::size_t>(options.distinct)));
  return picks;
}

}  // namespace

std::vector<core::ScheduleRequest> serve_traffic_pool(
    const ServeTrafficOptions& options) {
  ULBA_REQUIRE(options.distinct >= 1, "serve traffic needs a non-empty pool");
  ULBA_REQUIRE(options.alpha_grid >= 1,
               "serve traffic alpha grid needs at least one step");
  std::vector<core::ScheduleRequest> pool;
  pool.reserve(static_cast<std::size_t>(options.distinct));
  for (std::int64_t i = 0; i < options.distinct; ++i) {
    support::Rng rng =
        support::Rng(options.seed).fork(static_cast<std::uint64_t>(i));
    core::ScheduleRequest request;
    request.mode = options.mode;
    request.params = core::InstanceGenerator().sample(rng).params;
    request.alpha_grid.reserve(static_cast<std::size_t>(options.alpha_grid) +
                               1);
    for (std::int64_t g = 0; g <= options.alpha_grid; ++g)
      request.alpha_grid.push_back(static_cast<double>(g) /
                                   static_cast<double>(options.alpha_grid));
    pool.push_back(std::move(request));
  }
  return pool;
}

ServeTrafficResult serve_traffic(const ServeTrafficOptions& options) {
  ULBA_REQUIRE(options.clients >= 1, "serve traffic needs at least one client");
  ULBA_REQUIRE(options.requests_per_client >= 1,
               "serve traffic needs at least one request per client");
  const std::vector<core::ScheduleRequest> pool = serve_traffic_pool(options);

  // The reference answers, computed cold and independently of the service.
  const auto cold_payloads =
      parallel_map(pool.size(), [&](std::size_t i) {
        return masked_payload(opt::evaluate_schedule_request(pool[i]));
      });

  ServeTrafficResult result;
  std::unordered_set<std::size_t> distinct_set;
  for (int r = 1; r <= options.clients; ++r)
    for (const std::size_t pick : client_picks(options, r))
      distinct_set.insert(pick);
  result.distinct_queried = static_cast<std::int64_t>(distinct_set.size());
  result.total_requests =
      static_cast<std::int64_t>(options.clients) * options.requests_per_client;

  serve::ServeOptions serve_options;
  serve_options.batch_limit = options.batch_limit;
  serve_options.cache_capacity = options.cache_capacity;
  serve_options.cache_shards = options.cache_shards;

  // Per-rank verdict slots: rank r writes slot r only, read after the join.
  std::vector<std::int64_t> mismatches(
      static_cast<std::size_t>(options.clients) + 1, 0);
  std::vector<std::int64_t> hits(static_cast<std::size_t>(options.clients) + 1,
                                 0);

  const auto t0 = std::chrono::steady_clock::now();
  runtime::spmd_run(options.clients + 1, [&](runtime::Comm& comm) {
    if (comm.rank() == serve_options.server_rank) {
      result.metrics = serve::serve_loop(comm, serve_options);
      return;
    }
    serve::ScheduleClient client(comm, serve_options.server_rank);
    const std::vector<std::size_t> picks = client_picks(options, comm.rank());
    std::vector<std::uint64_t> ids;
    ids.reserve(picks.size());
    for (const std::size_t pick : picks)
      ids.push_back(client.submit(pool[pick]));
    const auto slot = static_cast<std::size_t>(comm.rank());
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const core::ScheduleResponse response = client.await(ids[k]);
      if (response.provenance.cache_hit != 0) ++hits[slot];
      if (masked_payload(response) != cold_payloads[picks[k]])
        ++mismatches[slot];
    }
    client.finish();
  });
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  for (std::size_t r = 0; r < mismatches.size(); ++r) {
    result.mismatched_responses += mismatches[r];
    result.hit_responses += hits[r];
  }
  result.requests_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.total_requests) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace ulba::cli
