// Shared sweep/report machinery behind the `ulba_cli` scenario subcommands
// AND the bench/ experiment harness binaries.
//
// PR 1 left the gossip-ablation and Table-II sweeps living only in bench/
// (bench_ablation_gossip, bench_table2_instances); promoting the scenario
// logic here lets `ulba_cli gossip` / `ulba_cli instances` and the bench
// binaries drive ONE implementation instead of duplicating scenario code —
// bench_common.hpp now merely forwards to this layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/instance.hpp"
#include "erosion/app.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ulba::cli {

/// Run `fn(i)` for i in [0, n) across hardware threads; returns the results
/// in index order (R must be default-constructible). The sweeps use this to
/// fan out seeds / configurations; each unit of work must be independent and
/// seeded. Built on support::ThreadPool — index claiming keeps imbalanced
/// sweep cases (e.g. different fanouts) packed tightly.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  // vector<bool> packs bits: adjacent out[i] writes from different threads
  // would race on one word. Return std::uint8_t (or a struct) instead.
  static_assert(!std::is_same_v<R, bool>,
                "parallel_map cannot return bool (vector<bool> bit-packing "
                "races across threads)");
  std::vector<R> out(n);
  support::ThreadPool pool(
      std::min(std::max<std::size_t>(n, 1),
               support::ThreadPool::hardware_threads()));
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// The scaled-down erosion configuration every Figure-4/5 sweep shares.
/// DESIGN.md §3 records the substitution: the geometry ratios (radius/rows =
/// 1/4, one rock per stripe) match the paper; the absolute scale is reduced
/// so a full sweep runs in seconds, and the α-β constants place the LB cost
/// in Table II's C/iteration regime (~0.1–3).
[[nodiscard]] erosion::AppConfig scaled_app_config(std::int64_t pe_count,
                                                   std::int64_t strong_rocks,
                                                   erosion::Method method,
                                                   std::uint64_t seed);

// ---------------------------------------------------------------------------
// Gossip-ablation sweep (ulba_cli gossip, bench_ablation_gossip)
// ---------------------------------------------------------------------------

/// Dissemination-latency table: median rounds (over `trials` trials, with
/// per-trial streams forked from `seed`) until every PE knows every WIR,
/// for each PE count × fanout, with a ~log2(P) reference column.
[[nodiscard]] support::Table gossip_latency_table(
    std::span<const std::int64_t> pe_counts,
    std::span<const std::int64_t> fanouts, std::uint64_t trials,
    std::uint64_t seed);

/// Seed-median aggregate of one erosion configuration — the unit every
/// gossip/fanout/smoothing sweep reports.
struct ErosionAggregate {
  double median_seconds = 0.0;      ///< virtual total time
  double median_lb_calls = 0.0;
  double median_utilization = 0.0;  ///< machine-wide busy fraction
  double median_first_lb = 0.0;  ///< first LB iteration (detection lag; the
                                 ///< iteration count when no LB ever fired)
};

/// Run `cfg` once per seed (in parallel) and reduce to medians. Everything
/// except `cfg.seed` is taken from `cfg` as given.
[[nodiscard]] ErosionAggregate erosion_median_over_seeds(
    erosion::AppConfig cfg, std::span<const std::uint64_t> seeds);

// ---------------------------------------------------------------------------
// Table-II instance-family sweep (ulba_cli instances, bench_table2_instances)
// ---------------------------------------------------------------------------

/// ULBA-vs-standard statistics over one Table-II family (a pinned PE count).
struct FamilyStats {
  std::int64_t pin_p = 0;
  std::int64_t samples = 0;
  std::int64_t wins = 0;    ///< ULBA strictly faster at the instance's drawn α
  std::int64_t losses = 0;  ///< strictly slower at the drawn α
  std::int64_t ties = 0;
  double median_gain = 0.0;       ///< at the drawn α, vs. standard [fraction]
  double mean_gain = 0.0;
  double min_gain = 0.0;
  double max_gain = 0.0;
  double median_best_gain = 0.0;  ///< at the best α of the grid (never < 0)
  double mean_best_alpha = 0.0;   ///< average arg-max α over the grid
};

/// Sample `samples` instances from the Table-II generator with P pinned to
/// `pin_p`, evaluate standard-vs-ULBA analytically (Menon τ schedule vs. the
/// σ⁺ schedule), both at the instance's drawn α and at the best α over an
/// `alpha_grid`-point grid. The family's stream is forked from `base_seed`
/// and `pin_p`, so one base seed spans all families identically wherever the
/// sweep is driven from. Deterministic for a given base seed.
[[nodiscard]] FamilyStats instance_family_stats(std::int64_t pin_p,
                                                std::int64_t samples,
                                                std::uint64_t base_seed,
                                                std::int64_t alpha_grid);

}  // namespace ulba::cli
