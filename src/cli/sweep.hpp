// Shared sweep/report machinery behind the `ulba_cli` scenario subcommands
// AND the bench/ experiment harness binaries.
//
// PR 1 left the gossip-ablation and Table-II sweeps living only in bench/
// (bench_ablation_gossip, bench_table2_instances); promoting the scenario
// logic here lets `ulba_cli gossip` / `ulba_cli instances` and the bench
// binaries drive ONE implementation instead of duplicating scenario code —
// bench_common.hpp now merely forwards to this layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "erosion/app.hpp"
#include "serve/service.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ulba::cli {

/// Run `fn(i)` for i in [0, n) across `pool`; returns the results in index
/// order (R must be default-constructible). Each unit of work must be
/// independent and seeded. Index claiming keeps imbalanced sweep cases
/// (e.g. different fanouts) packed tightly; exceptions thrown by `fn`
/// propagate to the caller (first one wins, the rest of the range is
/// abandoned).
template <typename Fn>
auto parallel_map(support::ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  // vector<bool> packs bits: adjacent out[i] writes from different threads
  // would race on one word. Return std::uint8_t (or a struct) instead.
  static_assert(!std::is_same_v<R, bool>,
                "parallel_map cannot return bool (vector<bool> bit-packing "
                "races across threads)");
  std::vector<R> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Convenience overload on a transient pool: one thread per hardware core
/// (capped at n). The sweeps use this to fan out seeds / configurations.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  support::ThreadPool pool(
      std::min(std::max<std::size_t>(n, 1),
               support::ThreadPool::hardware_threads()));
  return parallel_map(pool, n, std::forward<Fn>(fn));
}

/// The scaled-down erosion configuration every Figure-4/5 sweep shares.
/// DESIGN.md §3 records the substitution: the geometry ratios (radius/rows =
/// 1/4, one rock per stripe) match the paper; the absolute scale is reduced
/// so a full sweep runs in seconds, and the α-β constants place the LB cost
/// in Table II's C/iteration regime (~0.1–3).
[[nodiscard]] erosion::AppConfig scaled_app_config(std::int64_t pe_count,
                                                   std::int64_t strong_rocks,
                                                   erosion::Method method,
                                                   std::uint64_t seed);

// ---------------------------------------------------------------------------
// Gossip-ablation sweep (ulba_cli gossip, bench_ablation_gossip)
// ---------------------------------------------------------------------------

/// Dissemination-latency table: median rounds (over `trials` trials, with
/// per-trial streams forked from `seed`) until every PE knows every WIR,
/// for each PE count × fanout, with a ~log2(P) reference column.
[[nodiscard]] support::Table gossip_latency_table(
    std::span<const std::int64_t> pe_counts,
    std::span<const std::int64_t> fanouts, std::uint64_t trials,
    std::uint64_t seed);

/// Seed-median aggregate of one erosion configuration — the unit every
/// gossip/fanout/smoothing sweep reports.
struct ErosionAggregate {
  double median_seconds = 0.0;      ///< virtual total time
  double median_lb_calls = 0.0;
  double median_utilization = 0.0;  ///< machine-wide busy fraction
  double median_first_lb = 0.0;  ///< first LB iteration (detection lag; the
                                 ///< iteration count when no LB ever fired)
};

/// Run `cfg` once per seed (in parallel) and reduce to medians. Everything
/// except `cfg.seed` is taken from `cfg` as given.
[[nodiscard]] ErosionAggregate erosion_median_over_seeds(
    erosion::AppConfig cfg, std::span<const std::uint64_t> seeds);

// ---------------------------------------------------------------------------
// Table-II instance-family sweep (ulba_cli instances, bench_table2_instances)
// ---------------------------------------------------------------------------

/// ULBA-vs-standard statistics over one Table-II family (a pinned PE count).
struct FamilyStats {
  std::int64_t pin_p = 0;
  std::int64_t samples = 0;
  std::int64_t wins = 0;    ///< ULBA strictly faster at the instance's drawn α
  std::int64_t losses = 0;  ///< strictly slower at the drawn α
  std::int64_t ties = 0;
  double median_gain = 0.0;       ///< at the drawn α, vs. standard [fraction]
  double mean_gain = 0.0;
  double min_gain = 0.0;
  double max_gain = 0.0;
  double median_best_gain = 0.0;  ///< at the best α of the grid (never < 0)
  double mean_best_alpha = 0.0;   ///< average arg-max α over the grid
};

/// Sample `samples` instances from the Table-II generator with P pinned to
/// `pin_p`, evaluate standard-vs-ULBA analytically (Menon τ schedule vs. the
/// σ⁺ schedule), both at the instance's drawn α and at the best α over an
/// `alpha_grid`-point grid. The family's stream is forked from `base_seed`
/// and `pin_p`, so one base seed spans all families identically wherever the
/// sweep is driven from. Deterministic for a given base seed.
[[nodiscard]] FamilyStats instance_family_stats(std::int64_t pin_p,
                                                std::int64_t samples,
                                                std::uint64_t base_seed,
                                                std::int64_t alpha_grid);

/// The Table-II sweep as the schedule service's first heavy client.
struct ServedSweepResult {
  std::vector<FamilyStats> families;  ///< parallel to the pin_ps argument
  serve::ServeMetrics metrics;        ///< the server rank's counters
};

/// Fan the instance sweep out over `ranks` SPMD ranks: rank 0 runs
/// serve::serve_loop, every other rank builds the same per-sample
/// ScheduleRequests the serial sweep evaluates and pipelines them to the
/// server (client r owns the interleaved sample indices r−1, r−1+(ranks−1),
/// … of every family — non-stripe work distribution). Draws are reassembled
/// into sample order before the reduction, so every FamilyStats field is
/// bit-identical to instance_family_stats for the same inputs. `ranks` ≥ 2.
[[nodiscard]] ServedSweepResult instance_sweep_served(
    std::span<const std::int64_t> pin_ps, std::int64_t samples,
    std::uint64_t base_seed, std::int64_t alpha_grid, int ranks,
    const serve::ServeOptions& options);

// ---------------------------------------------------------------------------
// Partitioner ablation (bench_ablation_partitioner; `erosion --partitioner`
// drives the same ErosionApp implementation)
// ---------------------------------------------------------------------------

/// Bottleneck ratios of each partitioner on one snapshot of the evolving
/// erosion column-weight profile (even targets; 1.0 = ideal cut).
struct PartitionerQualityRow {
  std::int64_t iteration = 0;
  std::vector<double> ratios;  ///< parallel to the `names` argument
};

/// Evolve the scaled erosion domain (pe_count discs, 1 strong, placement
/// from `seed`) and sample the cutting quality of every named partitioner
/// every `iterations_between` iterations, `snapshots` + 1 times.
[[nodiscard]] std::vector<PartitionerQualityRow> partitioner_quality_sweep(
    std::span<const std::string> names, std::int64_t pe_count,
    std::int64_t snapshots, std::int64_t iterations_between,
    std::uint64_t seed);

/// Median end-to-end erosion times per partitioner (standard vs. ULBA),
/// stepped through `shards` host shards (1 = the unsharded classic path —
/// the totals are shard-invariant either way).
struct PartitionerEndToEnd {
  std::string name;
  double median_standard = 0.0;
  double median_ulba = 0.0;
};
[[nodiscard]] std::vector<PartitionerEndToEnd> partitioner_end_to_end(
    std::span<const std::string> names, std::int64_t pe_count,
    std::int64_t strong_rocks, std::span<const std::uint64_t> seeds,
    std::int64_t shards);

// ---------------------------------------------------------------------------
// Dynamic-α ablation (ulba_cli dynamic-alpha, bench_ablation_dynamic_alpha)
// ---------------------------------------------------------------------------

/// Model-level upper bound on what dynamic α can ever buy: the exact DP over
/// (schedule × per-step α) vs. the exact DP at the best single fixed α,
/// over random Table-II instances (opt::optimal_alpha_schedule).
struct DynamicAlphaModelBound {
  double mean_pct = 0.0;
  double median_pct = 0.0;
  double max_pct = 0.0;
};
[[nodiscard]] DynamicAlphaModelBound dynamic_alpha_model_bound(
    std::size_t instances, std::uint64_t seed);

/// One α-selection variant of the erosion-level dynamic-α sweep.
struct AlphaVariant {
  std::string label;
  double alpha = 0.4;  ///< the base/fixed α
  erosion::AlphaPolicy policy = erosion::AlphaPolicy::kFixed;
  bool oracle_wir = false;  ///< centralized zero-cost WIR reference
};

/// The standard comparison set: fixed α ∈ {0.2, 0.4, base}, then the
/// gossip-fed fraction heuristic and model policy at the base α, then the
/// model policy on the centralized oracle (the staleness-free reference).
[[nodiscard]] std::vector<AlphaVariant> dynamic_alpha_variants(
    double base_alpha);

/// medians[v][r] = median over `seeds` of the total virtual seconds of
/// variant v at rock_counts[r] strongly erodible rocks (ULBA method
/// throughout; `iterations` ≤ 0 keeps the scaled config's default horizon).
[[nodiscard]] std::vector<std::vector<double>> dynamic_alpha_grid(
    std::span<const AlphaVariant> variants,
    std::span<const std::int64_t> rock_counts, std::int64_t pe_count,
    std::span<const std::uint64_t> seeds, std::int64_t iterations);

// ---------------------------------------------------------------------------
// Fig-2 interval-quality sweep (ulba_cli interval-quality,
// bench_fig2_interval_quality)
// ---------------------------------------------------------------------------

/// One Table-II instance's verdict on the σ⁺ intervals: gain over the
/// simulated-annealing search, and both methods' distance from the exact DP
/// optimum (all fractions; positive gain ⇒ σ⁺ beat the heuristic).
struct IntervalQualitySample {
  double gain_vs_sa = 0.0;    ///< (T_sa − T_σ⁺)/T_sa
  double gap_vs_dp = 0.0;     ///< T_σ⁺/T_dp − 1, ≥ 0 by optimality
  double sa_gap_vs_dp = 0.0;  ///< T_sa/T_dp − 1
};

/// Evaluate σ⁺ vs. an `sa_steps`-step annealing search vs. the exact DP on
/// `instances` random Table-II instances (streams forked from `seed`).
/// Deterministic; the unit behind the paper's Figure 2.
[[nodiscard]] std::vector<IntervalQualitySample> interval_quality_sweep(
    std::size_t instances, std::int64_t sa_steps, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Distributed-erosion scaling sweep (bench_distributed_erosion;
// `erosion --ranks` drives the same ErosionApp implementation)
// ---------------------------------------------------------------------------

/// One (rank count, partitioner, exchange mode) cell of the distributed
/// scaling sweep.
struct DistributedScalingRow {
  std::int64_t ranks = 0;
  std::string partitioner;
  std::string exchange;          ///< "alltoall" | "neighbor"
  double wall_seconds = 0.0;     ///< measured host wall clock of the run
  double virtual_seconds = 0.0;  ///< RunResult::total_seconds (rank-invariant)
  std::int64_t lb_count = 0;
  std::int64_t discs_moved = 0;  ///< rank-ownership migrations, all LB steps
  double observed_mb = 0.0;      ///< real migration payload on the wire [MB]
  /// Per-step exchange messages over the whole run, summed across ranks —
  /// the number the neighbor-vs-all-to-all comparison is about.
  std::int64_t step_messages = 0;
  /// 1 when every trajectory-facing RunResult field (times, LB schedule,
  /// per-step α's, per-iteration records) is bit-identical to the ranks = 1
  /// reference — the determinism contract.
  std::uint8_t matches_serial = 0;
};

/// Run the scaled erosion app distributed over every rank count ×
/// partitioner × exchange-mode combination and compare each RunResult
/// bit-for-bit against the in-process reference. Runs sequentially (each
/// cell already spawns `ranks` SPMD threads).
[[nodiscard]] std::vector<DistributedScalingRow> distributed_erosion_scaling(
    std::span<const std::int64_t> rank_counts,
    std::span<const std::string> partitioners,
    std::span<const std::string> exchanges, std::int64_t pe_count,
    std::int64_t strong_rocks, std::uint64_t seed, std::int64_t iterations);

// ---------------------------------------------------------------------------
// Grid-decomposition sweep (bench_distributed_erosion; `erosion --decomp
// grid` drives the same ErosionApp implementation)
// ---------------------------------------------------------------------------

/// One (decomposition, rebalance policy) cell of the grid-decomposition
/// sweep: 1D stripes vs. the 2D tile grid, each static and periodically
/// rebalanced, plus the grid with the damped boundary tuner.
struct GridDecompRow {
  std::string decomp;   ///< "stripes" | "grid"
  std::string policy;   ///< "static" | "recut" | "tuner"
  std::string shape;    ///< resolved "RxC" tile grid ("-" for stripes)
  std::int64_t ranks = 0;
  /// Final (max − avg)/avg per-rank weight imbalance after the run — the
  /// number the damped tuner is supposed to push down vs. the static grid.
  double imbalance = 0.0;
  std::int64_t tuner_iterations = 0;  ///< tuner passes summed over LB steps
  std::int64_t lb_count = 0;
  std::int64_t discs_moved = 0;  ///< rank-ownership migrations, all LB steps
  /// 1 when every trajectory-facing RunResult field is bit-identical to a
  /// ranks = 1 run with the same trigger schedule — the per-decomposition
  /// determinism contract (counter RNG).
  std::uint8_t matches_serial = 0;
};

/// Run the scaled erosion app at `ranks` SPMD ranks under {stripes, grid} ×
/// {static, periodic recut} plus grid + damped tuner, counter RNG, and
/// compare each trajectory bit-for-bit against the matching ranks = 1
/// reference. `ranks` must be 2D-factorable (e.g. 4 → 2×2). Runs
/// sequentially (each cell already spawns `ranks` SPMD threads).
[[nodiscard]] std::vector<GridDecompRow> grid_decomposition_sweep(
    std::int64_t ranks, std::int64_t pe_count, std::int64_t strong_rocks,
    std::uint64_t seed, std::int64_t iterations);

// ---------------------------------------------------------------------------
// Anticipation-vs-reactive falsification sweep (ulba_cli anticipation,
// bench_anticipation; `erosion --trigger-source` drives the same ErosionApp)
// ---------------------------------------------------------------------------

/// One (variant, noise level) cell of the paper's core-claim falsification
/// harness: ULBA-scheduled anticipatory LB (model trigger) vs. reactive
/// measured-trigger LB (degradation and fli criteria), all in measured-time
/// mode under injected multi-tenant burn noise.
struct AnticipationReactiveRow {
  std::string variant;  ///< "anticipation" | "reactive-deg" | "reactive-fli"
  double noise = 0.0;   ///< mt_noise amplitude of this cell
  double wall_seconds = 0.0;     ///< measured whole-run steady_clock
  double compute_seconds = 0.0;  ///< measured Σ iteration maxima
  double lb_seconds = 0.0;       ///< measured Σ LB-step costs
  double utilization = 0.0;      ///< measured mean utilization
  std::int64_t lb_count = 0;
  double mean_fli = 0.0;  ///< mean measured fractional imbalance over the run
  std::int64_t eroded_cells = 0;  ///< dynamics check: identical per seed
};

/// Run the scaled (shrunk) erosion app at `ranks` SPMD ranks in measured
/// mode: for each noise level, anticipation (ULBA, model trigger) against
/// the two reactive measured-trigger variants (standard method; degradation
/// and fli criteria). `iterations` ≤ 0 picks a sweep default. Wall numbers
/// are real and noisy; the dynamics (eroded cells) are identical across all
/// cells of one seed. Runs sequentially (each cell already spawns `ranks`
/// SPMD threads).
[[nodiscard]] std::vector<AnticipationReactiveRow>
anticipation_vs_reactive_sweep(std::int64_t ranks, std::int64_t pe_count,
                               std::int64_t strong_rocks, std::uint64_t seed,
                               std::int64_t iterations,
                               std::span<const double> noise_levels,
                               double ns_scale, double fli_threshold);

}  // namespace ulba::cli
