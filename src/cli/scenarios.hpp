// The scenarios behind the `ulba_cli` subcommands.
//
// Each scenario takes its already-parsed FlagMap, writes its report to the
// given stream, and returns a process exit code.  The `examples/` binaries
// remain as minimal API walkthroughs; these functions are the configurable,
// single-entry-point versions the ROADMAP's scenario growth builds on.
#pragma once

#include <ostream>

#include "cli/args.hpp"

namespace ulba::cli {

/// Default ModelParams of `quickstart` and `alpha-tuning` (the quickstart's
/// 512-PE application) — exposed so help texts render the real defaults.
[[nodiscard]] core::ModelParams quickstart_defaults();

/// Default ModelParams of `intervals` (the interval explorer's 1024-PE
/// model, α = 0).
[[nodiscard]] core::ModelParams intervals_defaults();

/// `quickstart` — analytic model in a nutshell: Menon τ vs. ULBA [σ⁻, σ⁺]
/// and the total-time comparison of the two methods (mini Figure 3).
int run_quickstart(const FlagMap& flags, std::ostream& out);

/// `erosion` — the §IV-B erosion application under the standard method and
/// under ULBA; `--mt` switches from the virtual-time BSP simulation to the
/// real-thread SPMD runtime with measured wall-clock times.
int run_erosion(const FlagMap& flags, std::ostream& out);

/// `intervals` — α sweep of σ⁻/σ⁺/schedule/total time with the exact DP
/// optimum as the reference line (the interval-explorer scenario).
int run_intervals(const FlagMap& flags, std::ostream& out);

/// `alpha-tuning` — fine α sweep reporting the best α for the model and the
/// gain landscape vs. the standard method (analytic Figure-5 counterpart).
int run_alpha_tuning(const FlagMap& flags, std::ostream& out);

/// `gossip` — WIR-gossip ablation (§III-C): dissemination latency per
/// fanout, end-to-end erosion degradation of each fanout vs. the
/// centralized zero-cost oracle, and the smoothing/detection-lag sweep.
int run_gossip(const FlagMap& flags, std::ostream& out);

/// `instances` — Table-II-style sweep over the InstanceGenerator families
/// (one per pinned PE count): win/loss/gain statistics of ULBA vs. the
/// standard method, at the drawn α and at the per-instance best α.
int run_instances(const FlagMap& flags, std::ostream& out);

/// `dynamic-alpha` — E-X4, the paper's §V future-work item: per-interval α
/// driven by the gossip-estimated overloading fraction (fraction heuristic
/// and model-grid policies) vs. fixed α and vs. the centralized oracle, plus
/// the exact model-level DP bound and a per-interval α trace.
int run_dynamic_alpha(const FlagMap& flags, std::ostream& out);

/// `interval-quality` — Figure 2: gain of the σ⁺ LB intervals over the
/// simulated-annealing search on random Table-II instances, with the exact
/// DP optimum bounding both methods.
int run_interval_quality(const FlagMap& flags, std::ostream& out);

/// `serve` — the schedule service under deterministic multi-client traffic:
/// rank 0 runs serve::serve_loop (batched mailbox wakeups, sharded memoized
/// cache), the client ranks replay a seeded query mix and check every
/// response bit-for-bit against a cold evaluation of the same request.
/// Reports hit-rate/throughput headline metrics plus PASS/FAIL verdicts for
/// the cached-answer determinism contract; wall-clock numbers are real —
/// structurally checked, not golden-matched. Exit 0 iff the verdicts pass.
int run_serve(const FlagMap& flags, std::ostream& out);

/// `anticipation` — the paper's core claim falsified on real hardware:
/// ULBA-scheduled anticipatory LB (model trigger) vs. reactive
/// measured-trigger LB (degradation and fli criteria) under injected burn
/// noise, with a measured wall/utilization/LB-count win/loss table. Wall
/// numbers are real — this subcommand is structurally checked, not
/// golden-matched.
int run_anticipation(const FlagMap& flags, std::ostream& out);

}  // namespace ulba::cli
