#include "cli/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "erosion/app.hpp"
#include "erosion/threaded_app.hpp"
#include "opt/dp_optimal.hpp"
#include "support/require.hpp"
#include "support/table.hpp"
#include "support/text_plot.hpp"

namespace ulba::cli {

namespace {

/// Union of the shared ModelParams flags and `extra`.
std::set<std::string> with_model_flags(std::set<std::string> extra) {
  const auto& shared = model_param_flags();
  extra.insert(shared.begin(), shared.end());
  return extra;
}

/// One-line timeline of a schedule: '|' = LB step, '.' = plain iteration.
std::string timeline(const core::Schedule& s) {
  std::string line(static_cast<std::size_t>(s.gamma()), '.');
  for (auto step : s.steps()) line[static_cast<std::size_t>(step)] = '|';
  return line;
}

}  // namespace

core::ModelParams quickstart_defaults() {
  core::ModelParams p;
  p.P = 512;
  p.N = 32;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 3e9 * static_cast<double>(p.P);
  p.a = 6e4;
  p.m = 3e7;
  p.alpha = 0.5;
  p.lb_cost = 1.5;
  return p;
}

core::ModelParams intervals_defaults() {
  core::ModelParams p;
  p.P = 1024;
  p.N = 48;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 4e9 * static_cast<double>(p.P);
  p.a = 1e5;
  p.m = 2e7;
  p.lb_cost = 2.0;
  p.alpha = 0.0;
  return p;
}

int run_quickstart(const FlagMap& flags, std::ostream& out) {
  flags.require_known(with_model_flags({}));
  const core::ModelParams p =
      parse_model_params(flags, quickstart_defaults());

  out << "Application: P=" << p.P << " PEs, N=" << p.N
      << " overloading, gamma=" << p.gamma << "\n"
      << "  dW = " << p.delta_w() << " FLOP/iter, m_hat = " << p.m_hat()
      << ", a_hat = " << p.a_hat() << "\n\n";

  out << "Menon tau (standard method)   : every " << core::menon_tau(p)
      << " iterations\n";
  const core::IntervalBounds b =
      core::interval_bounds(p, 0, p.alpha, p.alpha);
  out << "ULBA sigma- (no degradation)  : " << b.lower << " iterations\n"
      << "ULBA sigma+ (recommended)     : " << b.upper << " iterations\n\n";

  const core::ScheduleCost t_std =
      core::evaluate_standard(p, core::menon_schedule(p));
  const core::ScheduleCost t_ulba =
      core::evaluate_ulba(p, core::sigma_plus_schedule(p));
  out << "standard method  : " << t_std.total_seconds << " s  ("
      << t_std.lb_count << " LB calls)\n"
      << "ULBA, alpha=" << p.alpha << ": " << t_ulba.total_seconds << " s  ("
      << t_ulba.lb_count << " LB calls)\n"
      << "anticipation gain: "
      << (t_std.total_seconds - t_ulba.total_seconds) / t_std.total_seconds *
             100.0
      << " %\n";
  return 0;
}

int run_erosion(const FlagMap& flags, std::ostream& out) {
  flags.require_known({"mt", "pes", "strong", "seed", "iterations", "alpha",
                       "columns-per-pe", "rows", "rock-radius"});
  const bool mt = flags.has("mt");
  const std::int64_t pe_count = flags.get_int("pes", mt ? 8 : 32);
  const std::int64_t strong = flags.get_int("strong", 1);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const double alpha = flags.get_double("alpha", 0.4);
  ULBA_REQUIRE(pe_count >= 2, "--pes must be at least 2");
  ULBA_REQUIRE(strong >= 1 && strong <= pe_count,
               "--strong must be in [1, pes]");
  ULBA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "--alpha must be in (0, 1]");

  if (mt) {
    erosion::ThreadedConfig cfg;
    cfg.pe_count = pe_count;
    cfg.strong_rock_count = strong;
    cfg.seed = seed;
    cfg.alpha = alpha;
    cfg.columns_per_pe = flags.get_int("columns-per-pe", 96);
    cfg.rows = flags.get_int("rows", 96);
    cfg.rock_radius = flags.get_int("rock-radius", 24);
    cfg.iterations = flags.get_int("iterations", 80);
    cfg.validate();

    out << "Threaded erosion: " << cfg.pe_count << " ranks (OS threads), "
        << cfg.strong_rock_count << " strong rock(s), " << cfg.iterations
        << " iterations\n\n";
    cfg.method = erosion::Method::kStandard;
    const erosion::ThreadedRunResult std_run = erosion::run_threaded(cfg);
    cfg.method = erosion::Method::kUlba;
    const erosion::ThreadedRunResult ulba_run = erosion::run_threaded(cfg);

    const auto report = [&out](const char* name,
                               const erosion::ThreadedRunResult& r) {
      out << name << "\n"
          << "  wall clock       : " << r.wall_seconds << " s (measured)\n"
          << "  LB calls         : " << r.lb_count << "\n"
          << "  mean utilization : " << r.mean_utilization * 100.0 << " %\n"
          << "  iteration times  : "
          << support::sparkline(r.iteration_seconds) << "\n\n";
    };
    report("standard LB method:", std_run);
    report("ULBA:", ulba_run);
    out << "==> ULBA gain: "
        << (std_run.wall_seconds - ulba_run.wall_seconds) /
               std_run.wall_seconds * 100.0
        << " % measured wall clock (same dynamics: " << std_run.eroded_cells
        << " == " << ulba_run.eroded_cells << " cells eroded)\n"
        << "(wall-clock noise is real; re-run for another sample)\n";
    return 0;
  }

  erosion::AppConfig cfg;
  cfg.pe_count = pe_count;
  cfg.strong_rock_count = strong;
  cfg.seed = seed;
  cfg.alpha = alpha;
  cfg.columns_per_pe = flags.get_int("columns-per-pe", 256);
  cfg.rows = flags.get_int("rows", 384);
  cfg.rock_radius = flags.get_int("rock-radius", 96);
  cfg.iterations = flags.get_int("iterations", 180);
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;
  cfg.validate();

  out << "Erosion demo: " << cfg.pe_count << " PEs, "
      << cfg.strong_rock_count << " strongly erodible rock(s), seed "
      << cfg.seed << "\n"
      << "(domain " << cfg.columns() << "x" << cfg.rows
      << " cells, rock radius " << cfg.rock_radius << ", alpha = "
      << cfg.alpha << ")\n\n";

  cfg.method = erosion::Method::kStandard;
  const erosion::RunResult std_run = erosion::ErosionApp(cfg).run();
  cfg.method = erosion::Method::kUlba;
  const erosion::RunResult ulba_run = erosion::ErosionApp(cfg).run();

  const auto report = [&out](const char* name, const erosion::RunResult& r) {
    out << name << "\n"
        << "  total time      : " << r.total_seconds
        << " virtual s (compute " << r.compute_seconds << " + LB "
        << r.lb_seconds << ")\n"
        << "  LB calls        : " << r.lb_count << "\n"
        << "  avg utilization : " << r.average_utilization * 100.0 << " %\n";
    std::vector<double> util;
    util.reserve(r.iterations.size());
    for (const auto& rec : r.iterations) util.push_back(rec.utilization);
    out << "  utilization     : " << support::sparkline(util) << "\n\n";
  };
  report("standard LB method (adaptive trigger of Zhai et al.):", std_run);
  report("ULBA (anticipatory underloading):", ulba_run);

  out << "==> ULBA gain: "
      << (std_run.total_seconds - ulba_run.total_seconds) /
             std_run.total_seconds * 100.0
      << " % wall clock, "
      << (ulba_run.average_utilization - std_run.average_utilization) * 100.0
      << " pp utilization, " << std_run.lb_count - ulba_run.lb_count
      << " fewer LB calls\n";
  return 0;
}

int run_intervals(const FlagMap& flags, std::ostream& out) {
  flags.require_known(with_model_flags({"alpha-steps", "dp"}));
  const core::ModelParams p =
      parse_model_params(flags, intervals_defaults());
  const std::int64_t steps = flags.get_int("alpha-steps", 10);
  ULBA_REQUIRE(steps >= 1 && steps <= 1000,
               "--alpha-steps must be in [1, 1000]");
  const std::string dp = flags.get_string("dp", "on");
  ULBA_REQUIRE(dp == "on" || dp == "off", "--dp expects 'on' or 'off'");

  out << "Model: P=" << p.P << ", N=" << p.N << ", gamma=" << p.gamma
      << ", C=" << p.lb_cost << "s, tau_Menon=" << core::menon_tau(p)
      << "\n\n";

  support::Table table({"alpha", "sigma-", "sigma+", "LB calls",
                        "T total [s]", "vs standard"});
  const double t_std =
      core::evaluate_standard(p, core::menon_schedule(p)).total_seconds;

  double best_alpha = 0.0, best_time = t_std;
  for (std::int64_t i = 0; i <= steps; ++i) {
    core::ModelParams q = p;
    q.alpha = static_cast<double>(i) / static_cast<double>(steps);
    const auto bounds = core::interval_bounds(q, 0, q.alpha, q.alpha);
    const auto schedule = core::sigma_plus_schedule(q);
    const double t = core::evaluate_ulba(q, schedule).total_seconds;
    if (t < best_time) {
      best_time = t;
      best_alpha = q.alpha;
    }
    table.add_row({support::Table::num(q.alpha, 2),
                   std::to_string(bounds.lower),
                   support::Table::num(bounds.upper, 1),
                   std::to_string(schedule.lb_count()),
                   support::Table::num(t, 2),
                   support::Table::pct((t_std - t) / t_std, 2)});
  }
  out << table.render(2) << "\n";

  core::ModelParams q = p;
  q.alpha = best_alpha;
  const auto sigma_sched = core::sigma_plus_schedule(q);
  out << "best alpha = " << best_alpha << "\n"
      << "  sigma+ schedule  " << timeline(sigma_sched) << "   ("
      << core::evaluate_ulba(q, sigma_sched).total_seconds << " s)\n";
  if (dp == "on") {
    const auto dp = opt::optimal_schedule(q, opt::CostModel::kUlba);
    out << "  DP optimum       " << timeline(dp.schedule) << "   ("
        << dp.total_seconds << " s)\n";
  }
  out << "  standard (tau)   " << timeline(core::menon_schedule(p)) << "   ("
      << t_std << " s)\n"
      << "\n('|' marks an LB step along the " << p.gamma << " iterations)\n";
  return 0;
}

int run_alpha_tuning(const FlagMap& flags, std::ostream& out) {
  flags.require_known(
      with_model_flags({"alpha-min", "alpha-max", "alpha-step"}));
  const core::ModelParams base =
      parse_model_params(flags, quickstart_defaults());
  const double lo = flags.get_double("alpha-min", 0.05);
  const double hi = flags.get_double("alpha-max", 1.0);
  const double step = flags.get_double("alpha-step", 0.05);
  ULBA_REQUIRE(lo > 0.0 && lo <= 1.0, "--alpha-min must be in (0, 1]");
  ULBA_REQUIRE(hi >= lo && hi <= 1.0, "--alpha-max must be in [alpha-min, 1]");
  ULBA_REQUIRE(step > 0.0, "--alpha-step must be positive");

  out << "Alpha tuning: P=" << base.P << ", N=" << base.N
      << ", gamma=" << base.gamma << ", C=" << base.lb_cost << "s\n"
      << "(sweeping alpha in [" << lo << ", " << hi << "] by " << step
      << "; sigma+ schedule per alpha, Eq. (4)/(5) evaluation)\n\n";

  const double t_std =
      core::evaluate_standard(base, core::menon_schedule(base)).total_seconds;

  support::Table table({"alpha", "LB calls", "T total [s]", "gain"});
  std::vector<double> gains;
  std::vector<double> alphas;
  double best_alpha = lo, best_time = std::numeric_limits<double>::infinity();
  for (double a = lo; a <= hi + 1e-12; a += step) {
    core::ModelParams q = base;
    q.alpha = std::min(a, 1.0);
    const auto schedule = core::sigma_plus_schedule(q);
    const double t = core::evaluate_ulba(q, schedule).total_seconds;
    const double gain = (t_std - t) / t_std;
    if (t < best_time) {
      best_time = t;
      best_alpha = q.alpha;
    }
    alphas.push_back(q.alpha);
    gains.push_back(gain * 100.0);
    table.add_row({support::Table::num(q.alpha, 2),
                   std::to_string(schedule.lb_count()),
                   support::Table::num(t, 2), support::Table::pct(gain, 2)});
  }
  out << table.render(2) << "\n";
  out << "gain vs alpha [%]: " << support::sparkline(gains) << "\n";
  out << "best alpha = " << best_alpha << "  ("
      << (t_std - best_time) / t_std * 100.0 << " % over standard, "
      << t_std << " s -> " << best_time << " s)\n";
  return 0;
}

}  // namespace ulba::cli
