#include "cli/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "cli/serve_driver.hpp"
#include "cli/sweep.hpp"
#include "cli/validate.hpp"
#include "core/instance.hpp"
#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "core/schedule_query.hpp"
#include "erosion/app.hpp"
#include "erosion/threaded_app.hpp"
#include "lb/grid.hpp"
#include "lb/partitioners.hpp"
#include "opt/dp_optimal.hpp"
#include "opt/evaluate.hpp"
#include "support/histogram.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/text_plot.hpp"

namespace ulba::cli {

namespace {

/// Union of the shared ModelParams flags and `extra`.
std::set<std::string> with_model_flags(std::set<std::string> extra) {
  const auto& shared = model_param_flags();
  extra.insert(shared.begin(), shared.end());
  return extra;
}

/// One-line timeline of a schedule: '|' = LB step, '.' = plain iteration.
std::string timeline(const core::Schedule& s) {
  std::string line(static_cast<std::size_t>(s.gamma()), '.');
  for (auto step : s.steps()) line[static_cast<std::size_t>(step)] = '|';
  return line;
}

}  // namespace

core::ModelParams quickstart_defaults() {
  core::ModelParams p;
  p.P = 512;
  p.N = 32;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 3e9 * static_cast<double>(p.P);
  p.a = 6e4;
  p.m = 3e7;
  p.alpha = 0.5;
  p.lb_cost = 1.5;
  return p;
}

core::ModelParams intervals_defaults() {
  core::ModelParams p;
  p.P = 1024;
  p.N = 48;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 4e9 * static_cast<double>(p.P);
  p.a = 1e5;
  p.m = 2e7;
  p.lb_cost = 2.0;
  p.alpha = 0.0;
  return p;
}

int run_quickstart(const FlagMap& flags, std::ostream& out) {
  flags.require_known(
      with_model_flags({"threads", "shards", "ranks", "partitioner", "seed"}));
  const core::ModelParams p =
      parse_model_params(flags, quickstart_defaults());
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const std::int64_t threads = flags.get_int("threads", 1);
  const std::int64_t shards = flags.get_int("shards", 1);
  const std::int64_t ranks = flags.get_int("ranks", 1);
  const std::string partitioner = flags.get_string("partitioner", "greedy");
  ConfigValidator v;
  ULBA_CHECK_FLAG(v, threads >= 1 && threads <= 256, "--threads",
                  "--threads must be in [1, 256]");
  ULBA_CHECK_FLAG(v, shards >= 1 && shards <= 16, "--shards",
                  "--shards must be in [1, 16]");
  ULBA_CHECK_FLAG(v, ranks >= 1 && ranks <= 16, "--ranks",
                  "--ranks must be in [1, 16]");
  ULBA_CHECK_FLAG(v, shards == 1 || ranks == 1, "--shards",
                  "--shards steps in-process, --ranks steps over the SPMD "
                  "runtime; pick one");
  v.raise_first();
  // Reject bad names before any of the analytic report is streamed.
  (void)lb::make_partitioner(partitioner);

  out << "Application: P=" << p.P << " PEs, N=" << p.N
      << " overloading, gamma=" << p.gamma << "\n"
      << "  dW = " << p.delta_w() << " FLOP/iter, m_hat = " << p.m_hat()
      << ", a_hat = " << p.a_hat() << "\n\n";

  out << "Menon tau (standard method)   : every " << core::menon_tau(p)
      << " iterations\n";
  const core::IntervalBounds b =
      core::interval_bounds(p, 0, p.alpha, p.alpha);
  out << "ULBA sigma- (no degradation)  : " << b.lower << " iterations\n"
      << "ULBA sigma+ (recommended)     : " << b.upper << " iterations\n\n";

  const core::ScheduleCost t_std =
      core::evaluate_standard(p, core::menon_schedule(p));
  const core::ScheduleCost t_ulba =
      core::evaluate_ulba(p, core::sigma_plus_schedule(p));
  out << "standard method  : " << t_std.total_seconds << " s  ("
      << t_std.lb_count << " LB calls)\n"
      << "ULBA, alpha=" << p.alpha << ": " << t_ulba.total_seconds << " s  ("
      << t_ulba.lb_count << " LB calls)\n"
      << "anticipation gain: "
      << (t_std.total_seconds - t_ulba.total_seconds) / t_std.total_seconds *
             100.0
      << " %\n";

  // The model in practice: a miniature §IV-B erosion run (--seed, default
  // 11 like the other erosion subcommands; the shared Table-II comm
  // calibration of scaled_app_config, geometry scaled down further),
  // stepped on `--threads` host threads. --threads 1 is the classic
  // shared-stream serial stepper; any N > 1 uses per-disc substreams and
  // yields one identical virtual-time result for every such N (see
  // AppConfig::threads).
  erosion::AppConfig mini =
      scaled_app_config(16, 1, erosion::Method::kStandard, seed);
  mini.columns_per_pe = 64;
  mini.rows = 96;
  mini.rock_radius = 24;
  mini.iterations = 120;
  mini.alpha = p.alpha;
  mini.threads = threads;
  mini.shards = shards;
  mini.ranks = ranks;
  mini.partitioner = partitioner;
  mini.validate();
  mini.method = erosion::Method::kStandard;
  const erosion::RunResult mini_std = erosion::ErosionApp(mini).run();
  mini.method = erosion::Method::kUlba;
  const erosion::RunResult mini_ulba = erosion::ErosionApp(mini).run();
  out << "\nin practice (mini erosion run: 16 PEs, seed " << mini.seed
      << ", " << threads << " thread(s)";
  if (shards > 1) out << ", " << shards << " shards via " << partitioner;
  if (ranks > 1) out << ", " << ranks << " SPMD ranks via " << partitioner;
  out << "):\n"
      << "  standard : " << mini_std.total_seconds << " s  ("
      << mini_std.lb_count << " LB calls)\n"
      << "  ULBA     : " << mini_ulba.total_seconds << " s  ("
      << mini_ulba.lb_count << " LB calls)\n"
      << "  simulated gain: "
      << (mini_std.total_seconds - mini_ulba.total_seconds) /
             mini_std.total_seconds * 100.0
      << " %\n";
  return 0;
}

int run_erosion(const FlagMap& flags, std::ostream& out) {
  flags.require_known({"mt", "pes", "strong", "seed", "iterations", "alpha",
                       "columns-per-pe", "rows", "rock-radius", "threads",
                       "shards", "ranks", "partitioner", "exchange",
                       "ns-scale", "migration-scale", "rng", "decomp", "grid",
                       "tuner", "tuner-cap", "tuner-maxiter", "tuner-tol",
                       "trigger-source", "trigger-criterion", "fli-threshold",
                       "noise"});
  const bool mt = flags.has("mt");
  const std::int64_t pe_count = flags.get_int("pes", mt ? 8 : 32);
  const std::int64_t strong = flags.get_int("strong", 1);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const double alpha = flags.get_double("alpha", 0.4);
  const std::int64_t threads = flags.get_int("threads", 1);
  const std::int64_t shards = flags.get_int("shards", 1);
  const std::int64_t ranks = flags.get_int("ranks", 1);
  const std::string partitioner = flags.get_string("partitioner", "greedy");
  const std::string exchange = flags.get_string("exchange", "neighbor");
  const erosion::RngKind rng_kind =
      erosion::rng_kind_from_name(flags.get_string("rng", "fork"));
  const double ns_scale = flags.get_double("ns-scale", 4.0);
  const double migration_scale = flags.get_double("migration-scale", 8.0);
  const std::string decomp = flags.get_string("decomp", "stripes");
  const bool tuner = flags.has("tuner");
  const erosion::TriggerSource trigger_source =
      erosion::trigger_source_from_name(
          flags.get_string("trigger-source", "model"));
  const erosion::TriggerCriterion trigger_criterion =
      erosion::trigger_criterion_from_name(
          flags.get_string("trigger-criterion", "degradation"));
  const double fli_threshold = flags.get_double("fli-threshold", 0.25);
  const double noise = flags.get_double("noise", 0.0);
  // The consolidated flag-combination ladder: every violation is recorded,
  // then the first (in the historical ladder order) is raised, so the exit-2
  // surface is unchanged while the structured list stays available.
  ConfigValidator v;
  ULBA_CHECK_FLAG(v, pe_count >= 2, "--pes", "--pes must be at least 2");
  ULBA_CHECK_FLAG(v, strong >= 1 && strong <= pe_count, "--strong",
                  "--strong must be in [1, pes]");
  ULBA_CHECK_FLAG(v, alpha > 0.0 && alpha <= 1.0, "--alpha",
                  "--alpha must be in (0, 1]");
  ULBA_CHECK_FLAG(v, threads >= 1 && threads <= 256, "--threads",
                  "--threads must be in [1, 256]");
  ULBA_CHECK_FLAG(v, shards >= 1 && shards <= 64, "--shards",
                  "--shards must be in [1, 64]");
  ULBA_CHECK_FLAG(v, ranks >= 1 && ranks <= 64, "--ranks",
                  "--ranks must be in [1, 64]");
  ULBA_CHECK_FLAG(v, ns_scale > 0.0 && migration_scale >= 0.0, "--ns-scale",
                  "--ns-scale must be positive, --migration-scale "
                  "nonnegative");
  ULBA_CHECK_FLAG(v, shards == 1 || ranks == 1, "--shards",
                  "--shards steps in-process, --ranks steps over the SPMD "
                  "runtime; pick one");
  // --mt alone is the legacy thread-backed app; --mt with --ranks is the
  // measured-time DISTRIBUTED mode, which keeps the full virtual-time knob
  // set (partitioner, exchange, per-rank pools).
  ULBA_CHECK_FLAG(v, !mt || ranks > 1 || !flags.has("threads"), "--threads",
                  "--threads steps the virtual-time dynamics; --mt without "
                  "--ranks already runs on real OS threads");
  ULBA_CHECK_FLAG(v,
                  !mt || ranks > 1 ||
                      (!flags.has("shards") && !flags.has("partitioner") &&
                       !flags.has("exchange")),
                  "--shards",
                  "--shards/--partitioner/--exchange drive the virtual-time "
                  "steppers; combine --mt with --ranks for the measured-time "
                  "distributed mode");
  ULBA_CHECK_FLAG(v,
                  mt || (!flags.has("ns-scale") &&
                         !flags.has("migration-scale")),
                  "--ns-scale",
                  "--ns-scale/--migration-scale calibrate measured-time "
                  "runs; pass --mt");
  ULBA_CHECK_FLAG(v, !flags.has("exchange") || ranks > 1, "--exchange",
                  "--exchange routes the distributed step exchange; pass "
                  "--ranks");
  ULBA_CHECK_FLAG(v, !flags.has("rng") || !mt || ranks > 1, "--rng",
                  "--rng selects the virtual-time dynamics stream; the "
                  "legacy --mt thread app has its own stepper (combine --mt "
                  "with --ranks for the measured-time distributed mode)");
  // The measured trigger source closes the LB loop on real steady_clock
  // timings — only the measured-time DISTRIBUTED mode produces them (the
  // legacy --mt thread app has its own fixed schedule machinery).
  ULBA_CHECK_FLAG(v,
                  trigger_source == erosion::TriggerSource::kModel ||
                      (mt && ranks > 1),
                  "--trigger-source",
                  "--trigger-source measured feeds the LB trigger from real "
                  "timings; pass --ranks with --mt");
  ULBA_CHECK_FLAG(v,
                  !flags.has("trigger-criterion") ||
                      trigger_source == erosion::TriggerSource::kMeasured,
                  "--trigger-criterion",
                  "--trigger-criterion selects the measured trigger's "
                  "signal; pass --trigger-source measured");
  ULBA_CHECK_FLAG(v,
                  !flags.has("fli-threshold") ||
                      trigger_criterion == erosion::TriggerCriterion::kFli,
                  "--fli-threshold",
                  "--fli-threshold calibrates the fli criterion; pass "
                  "--trigger-criterion fli");
  ULBA_CHECK_FLAG(v, !flags.has("noise") || (mt && ranks > 1), "--noise",
                  "--noise perturbs the measured-time burns; pass --ranks "
                  "with --mt");
  ULBA_CHECK_FLAG(v, decomp == "stripes" || decomp == "grid", "--decomp",
                  "--decomp must be 'stripes' or 'grid'");
  ULBA_CHECK_FLAG(v, decomp == "stripes" || ranks > 1, "--decomp",
                  "--decomp grid runs over the SPMD runtime; pass --ranks");
  ULBA_CHECK_FLAG(v, decomp == "grid" || !flags.has("grid"), "--grid",
                  "--grid shapes the 2D tile decomposition; pass --decomp "
                  "grid");
  ULBA_CHECK_FLAG(v,
                  decomp == "grid" ||
                      (!tuner && !flags.has("tuner-cap") &&
                       !flags.has("tuner-maxiter") && !flags.has("tuner-tol")),
                  "--tuner",
                  "--tuner and its knobs drive the grid decomposition's "
                  "damped rebalancing; pass --decomp grid");
  ULBA_CHECK_FLAG(v,
                  tuner || (!flags.has("tuner-cap") &&
                            !flags.has("tuner-maxiter") &&
                            !flags.has("tuner-tol")),
                  "--tuner-cap",
                  "--tuner-cap/--tuner-maxiter/--tuner-tol calibrate the "
                  "boundary tuner; pass --tuner");
  v.raise_first();
  std::int64_t grid_rows = 0, grid_cols = 0;
  if (flags.has("grid")) {
    // Non-factorable shapes (rows * cols != ranks) are rejected by
    // AppConfig::validate via lb::resolve_grid_shape below.
    const lb::GridShape shape =
        lb::parse_grid_shape(flags.get_string("grid", ""));
    grid_rows = shape.rows;
    grid_cols = shape.cols;
  }

  if (mt && ranks == 1) {
    erosion::ThreadedConfig cfg;
    cfg.pe_count = pe_count;
    cfg.strong_rock_count = strong;
    cfg.seed = seed;
    cfg.alpha = alpha;
    cfg.columns_per_pe = flags.get_int("columns-per-pe", 96);
    cfg.rows = flags.get_int("rows", 96);
    cfg.rock_radius = flags.get_int("rock-radius", 24);
    cfg.iterations = flags.get_int("iterations", 80);
    cfg.ns_scale = ns_scale;
    cfg.migration_scale = migration_scale;
    cfg.validate();

    out << "Threaded erosion: " << cfg.pe_count << " ranks (OS threads), "
        << cfg.strong_rock_count << " strong rock(s), " << cfg.iterations
        << " iterations\n\n";
    cfg.method = erosion::Method::kStandard;
    const erosion::ThreadedRunResult std_run = erosion::run_threaded(cfg);
    cfg.method = erosion::Method::kUlba;
    const erosion::ThreadedRunResult ulba_run = erosion::run_threaded(cfg);

    const auto report = [&out](const char* name,
                               const erosion::ThreadedRunResult& r) {
      out << name << "\n"
          << "  wall clock       : " << r.wall_seconds << " s (measured)\n"
          << "  LB calls         : " << r.lb_count << "\n"
          << "  mean utilization : " << r.mean_utilization * 100.0 << " %\n"
          << "  iteration times  : "
          << support::sparkline(r.iteration_seconds) << "\n\n";
    };
    report("standard LB method:", std_run);
    report("ULBA:", ulba_run);
    out << "==> ULBA gain: "
        << (std_run.wall_seconds - ulba_run.wall_seconds) /
               std_run.wall_seconds * 100.0
        << " % measured wall clock (same dynamics: " << std_run.eroded_cells
        << " == " << ulba_run.eroded_cells << " cells eroded)\n"
        << "(wall-clock noise is real; re-run for another sample)\n";
    return 0;
  }

  erosion::AppConfig cfg;
  cfg.pe_count = pe_count;
  cfg.strong_rock_count = strong;
  cfg.seed = seed;
  cfg.alpha = alpha;
  cfg.columns_per_pe = flags.get_int("columns-per-pe", 256);
  cfg.rows = flags.get_int("rows", 384);
  cfg.rock_radius = flags.get_int("rock-radius", 96);
  cfg.iterations = flags.get_int("iterations", 180);
  cfg.bytes_per_cell = 256.0;
  cfg.comm.latency_s = 1e-4;
  cfg.comm.bandwidth_Bps = 2e9;
  cfg.threads = threads;
  cfg.shards = shards;
  cfg.ranks = ranks;
  cfg.partitioner = partitioner;
  cfg.exchange = exchange;
  cfg.measure_time = mt;
  cfg.ns_scale = ns_scale;
  cfg.migration_scale = migration_scale;
  cfg.mt_noise = noise;
  cfg.trigger_source = trigger_source;
  cfg.trigger_criterion = trigger_criterion;
  cfg.fli_threshold = fli_threshold;
  cfg.rng_kind = rng_kind;
  cfg.decomp = decomp;
  cfg.grid_rows = grid_rows;
  cfg.grid_cols = grid_cols;
  cfg.tuner = tuner;
  cfg.tuner_cap = flags.get_double("tuner-cap", 0.05);
  cfg.tuner_maxiter = flags.get_int("tuner-maxiter", 8);
  cfg.tuner_tol = flags.get_double("tuner-tol", 1.02);
  cfg.validate();

  out << "Erosion demo: " << cfg.pe_count << " PEs, "
      << cfg.strong_rock_count << " strongly erodible rock(s), seed "
      << cfg.seed << "\n"
      << "(domain " << cfg.columns() << "x" << cfg.rows
      << " cells, rock radius " << cfg.rock_radius << ", alpha = "
      << cfg.alpha << ", " << cfg.threads << " stepping thread(s))\n";
  if (cfg.rng_kind == erosion::RngKind::kCounter)
    out << "(counter-based RNG: Philox draws addressed by (disc, iteration, "
           "cell); one trajectory for every threads/shards/ranks "
           "combination)\n";
  if (cfg.shards > 1)
    out << "(sharded stepping: " << cfg.shards << " shards cut by "
        << cfg.partitioner
        << "; trajectory bit-identical to the unsharded serial run)\n";
  if (cfg.ranks > 1 && cfg.decomp == "grid") {
    const lb::GridShape shape =
        lb::resolve_grid_shape(cfg.ranks, cfg.grid_rows, cfg.grid_cols);
    out << "(distributed stepping: " << cfg.ranks << " SPMD ranks, "
        << shape.rows << "x" << shape.cols << " tile grid cut by "
        << cfg.partitioner << ", " << cfg.exchange
        << " step exchange, 2D edge+corner halos; trajectory bit-identical "
           "to the serial run)\n";
    if (cfg.tuner)
      out << "(damped boundary tuner: cap " << cfg.tuner_cap << ", max "
          << cfg.tuner_maxiter << " passes per rebalance, tolerance "
          << cfg.tuner_tol << ")\n";
  } else if (cfg.ranks > 1) {
    out << "(distributed stepping: " << cfg.ranks
        << " SPMD ranks, stripes cut by " << cfg.partitioner << ", "
        << cfg.exchange
        << " step exchange, real halo/migration messages; trajectory "
           "bit-identical to the serial run)\n";
  }
  if (cfg.measure_time) {
    out << "(measured time: each rank burns real CPU, ns_scale "
        << cfg.ns_scale << ", migration_scale " << cfg.migration_scale;
    if (cfg.mt_noise > 0.0)
      out << ", burn noise +/-" << cfg.mt_noise * 100.0 << " %";
    if (cfg.trigger_source == erosion::TriggerSource::kMeasured)
      out << ";\n trigger source MEASURED ["
          << erosion::trigger_criterion_name(cfg.trigger_criterion)
          << (cfg.trigger_criterion == erosion::TriggerCriterion::kFli
                  ? " >= " + support::Table::num(cfg.fli_threshold, 2)
                  : "")
          << "]: the LB schedule follows the real clock)\n";
    else
      out << "; the LB schedule still comes from the virtual-time "
             "trigger)\n";
  }
  out << "\n";

  cfg.method = erosion::Method::kStandard;
  const erosion::RunResult std_run = erosion::ErosionApp(cfg).run();
  cfg.method = erosion::Method::kUlba;
  const erosion::RunResult ulba_run = erosion::ErosionApp(cfg).run();

  const auto report = [&out](const char* name, const erosion::RunResult& r) {
    out << name << "\n"
        << "  total time      : " << r.total_seconds
        << " virtual s (compute " << r.compute_seconds << " + LB "
        << r.lb_seconds << ")\n"
        << "  LB calls        : " << r.lb_count << "\n"
        << "  avg utilization : " << r.average_utilization * 100.0 << " %\n";
    std::vector<double> util;
    util.reserve(r.iterations.size());
    for (const auto& rec : r.iterations) util.push_back(rec.utilization);
    out << "  utilization     : " << support::sparkline(util) << "\n\n";
  };
  report("standard LB method (adaptive trigger of Zhai et al.):", std_run);
  report("ULBA (anticipatory underloading):", ulba_run);

  if (cfg.shards > 1) {
    out << "re-sharding (one boundary-delta exchange per LB step):\n"
        << "  standard : " << std_run.shard_discs_moved
        << " disc move(s), " << std_run.shard_migration_bytes / 1e6
        << " MB exchanged\n"
        << "  ULBA     : " << ulba_run.shard_discs_moved
        << " disc move(s), " << ulba_run.shard_migration_bytes / 1e6
        << " MB exchanged\n\n";
  }

  if (cfg.ranks > 1) {
    out << "rank migration (real messages, one stripe recut per LB step):\n"
        << "  standard : " << std_run.rank_discs_moved << " disc move(s), "
        << std_run.rank_migration_bytes / 1e6 << " MB modeled, "
        << std_run.rank_observed_bytes / 1e6 << " MB on the wire\n"
        << "  ULBA     : " << ulba_run.rank_discs_moved << " disc move(s), "
        << ulba_run.rank_migration_bytes / 1e6 << " MB modeled, "
        << ulba_run.rank_observed_bytes / 1e6 << " MB on the wire\n\n";
    out << "per-step exchange (" << cfg.exchange << " mode, whole run):\n"
        << "  standard : " << std_run.rank_step_messages << " messages, "
        << std_run.rank_step_bytes / 1e6 << " MB\n"
        << "  ULBA     : " << ulba_run.rank_step_messages << " messages, "
        << ulba_run.rank_step_bytes / 1e6 << " MB\n\n";
    if (cfg.decomp == "grid") {
      out << "grid decomposition (final (max-avg)/avg rank imbalance; tuner "
             "passes):\n"
          << "  standard : " << std_run.rank_fractional_imbalance << ", "
          << std_run.grid_tuner_iterations << " tuner pass(es)\n"
          << "  ULBA     : " << ulba_run.rank_fractional_imbalance << ", "
          << ulba_run.grid_tuner_iterations << " tuner pass(es)\n\n";
    }
  }

  if (cfg.measure_time) {
    const auto mean_of = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : support::mean(v);
    };
    const auto mreport = [&out, &mean_of](const char* name,
                                          const erosion::RunResult& r) {
      out << name << "\n"
          << "  wall clock       : " << r.measured.wall_seconds
          << " s measured (compute " << r.measured.compute_seconds
          << " + LB " << r.measured.lb_seconds << ")\n"
          << "  LB steps         : " << r.measured.lb_step_seconds.size()
          << " measured, mean cost " << mean_of(r.measured.lb_step_seconds)
          << " s (migration " << r.measured.migration_seconds << " s)\n"
          << "  mean utilization : " << r.measured.utilization * 100.0
          << " %\n"
          << "  iteration times  : "
          << support::sparkline(r.measured.iteration_seconds) << "\n"
          << "  fractional imbal : " << support::sparkline(r.measured.fli)
          << " (mean " << mean_of(r.measured.fli) << ")\n\n";
    };
    out << "measured wall clock (steady_clock on the SPMD ranks):\n\n";
    mreport("standard:", std_run);
    mreport("ULBA:", ulba_run);

    // A run can finish with zero (or non-finite) model seconds in a bucket
    // — e.g. no LB step ever fired. Report 0 instead of inf/NaN.
    const auto ratio = [](double measured, double model) {
      const double r = model > 0.0 ? measured / model : 0.0;
      return std::isfinite(r) ? r : 0.0;
    };
    out << "measured vs model (same runs — the virtual-time numbers above "
           "are their model track):\n"
        << "  compute seconds, measured/model : standard "
        << ratio(std_run.measured.compute_seconds, std_run.compute_seconds)
        << ", ULBA "
        << ratio(ulba_run.measured.compute_seconds, ulba_run.compute_seconds)
        << "\n"
        << "  LB seconds, measured/model      : standard "
        << ratio(std_run.measured.lb_seconds, std_run.lb_seconds)
        << ", ULBA "
        << ratio(ulba_run.measured.lb_seconds, ulba_run.lb_seconds) << "\n"
        << "  (a constant compute ratio means the alpha-beta model prices "
           "iterations faithfully;\n   the LB ratio folds in what the model "
           "cannot see — packing, queueing, host noise)\n";
    if (cfg.trigger_source == erosion::TriggerSource::kModel)
      out << "  dynamics: eroded cells and the LB schedule are bit-identical "
             "to the model-time run\n   (the trigger consumes virtual times "
             "only; measurements ride alongside)\n\n";
    else
      out << "  dynamics: eroded cells are bit-identical to the model-time "
             "run (LB-independent);\n   the LB schedule follows the measured "
             "trigger and is wall-clock-dependent\n\n";
  }

  out << "==> ULBA gain: "
      << (std_run.total_seconds - ulba_run.total_seconds) /
             std_run.total_seconds * 100.0
      << " % wall clock, "
      << (ulba_run.average_utilization - std_run.average_utilization) * 100.0
      << " pp utilization, " << std_run.lb_count - ulba_run.lb_count
      << " fewer LB calls\n";
  return 0;
}

int run_intervals(const FlagMap& flags, std::ostream& out) {
  flags.require_known(with_model_flags({"alpha-steps", "dp"}));
  const core::ModelParams p =
      parse_model_params(flags, intervals_defaults());
  const std::int64_t steps = flags.get_int("alpha-steps", 10);
  ULBA_REQUIRE(steps >= 1 && steps <= 1000,
               "--alpha-steps must be in [1, 1000]");
  const std::string dp = flags.get_string("dp", "on");
  ULBA_REQUIRE(dp == "on" || dp == "off", "--dp expects 'on' or 'off'");

  out << "Model: P=" << p.P << ", N=" << p.N << ", gamma=" << p.gamma
      << ", C=" << p.lb_cost << "s, tau_Menon=" << core::menon_tau(p)
      << "\n\n";

  support::Table table({"alpha", "sigma-", "sigma+", "LB calls",
                        "T total [s]", "vs standard"});
  const double t_std =
      core::evaluate_standard(p, core::menon_schedule(p)).total_seconds;

  double best_alpha = 0.0, best_time = t_std;
  for (std::int64_t i = 0; i <= steps; ++i) {
    core::ModelParams q = p;
    q.alpha = static_cast<double>(i) / static_cast<double>(steps);
    const auto bounds = core::interval_bounds(q, 0, q.alpha, q.alpha);
    const auto schedule = core::sigma_plus_schedule(q);
    const double t = core::evaluate_ulba(q, schedule).total_seconds;
    if (t < best_time) {
      best_time = t;
      best_alpha = q.alpha;
    }
    table.add_row({support::Table::num(q.alpha, 2),
                   std::to_string(bounds.lower),
                   support::Table::num(bounds.upper, 1),
                   std::to_string(schedule.lb_count()),
                   support::Table::num(t, 2),
                   support::Table::pct((t_std - t) / t_std, 2)});
  }
  out << table.render(2) << "\n";

  core::ModelParams q = p;
  q.alpha = best_alpha;
  const auto sigma_sched = core::sigma_plus_schedule(q);
  out << "best alpha = " << best_alpha << "\n"
      << "  sigma+ schedule  " << timeline(sigma_sched) << "   ("
      << core::evaluate_ulba(q, sigma_sched).total_seconds << " s)\n";
  if (dp == "on") {
    const auto dp = opt::optimal_schedule(q, opt::CostModel::kUlba);
    out << "  DP optimum       " << timeline(dp.schedule) << "   ("
        << dp.total_seconds << " s)\n";
  }
  out << "  standard (tau)   " << timeline(core::menon_schedule(p)) << "   ("
      << t_std << " s)\n"
      << "\n('|' marks an LB step along the " << p.gamma << " iterations)\n";
  return 0;
}

int run_alpha_tuning(const FlagMap& flags, std::ostream& out) {
  flags.require_known(
      with_model_flags({"alpha-min", "alpha-max", "alpha-step"}));
  const core::ModelParams base =
      parse_model_params(flags, quickstart_defaults());
  const double lo = flags.get_double("alpha-min", 0.05);
  const double hi = flags.get_double("alpha-max", 1.0);
  const double step = flags.get_double("alpha-step", 0.05);
  ULBA_REQUIRE(lo > 0.0 && lo <= 1.0, "--alpha-min must be in (0, 1]");
  ULBA_REQUIRE(hi >= lo && hi <= 1.0, "--alpha-max must be in [alpha-min, 1]");
  ULBA_REQUIRE(step > 0.0, "--alpha-step must be positive");

  out << "Alpha tuning: P=" << base.P << ", N=" << base.N
      << ", gamma=" << base.gamma << ", C=" << base.lb_cost << "s\n"
      << "(sweeping alpha in [" << lo << ", " << hi << "] by " << step
      << "; sigma+ schedule per alpha, Eq. (4)/(5) evaluation)\n\n";

  // One ScheduleRequest carries the whole sweep; the response's grid rows
  // are the per-alpha sigma+ evaluations the loop below used to compute.
  core::ScheduleRequest request;
  request.mode = core::EvalMode::kSigmaGrid;
  request.params = base;
  for (double a = lo; a <= hi + 1e-12; a += step)
    request.alpha_grid.push_back(std::min(a, 1.0));
  const core::ScheduleResponse response =
      opt::evaluate_schedule_request(request);
  const double t_std = response.standard_seconds;

  support::Table table({"alpha", "LB calls", "T total [s]", "gain"});
  std::vector<double> gains;
  std::vector<double> alphas;
  // Local best scan over the swept alphas only: the response's best_alpha
  // seeds from the alpha=0 standard fallback, which this sweep excludes.
  double best_alpha = lo, best_time = std::numeric_limits<double>::infinity();
  for (const core::GridPointEval& point : response.grid) {
    const double t = point.total_seconds;
    const double gain = (t_std - t) / t_std;
    if (t < best_time) {
      best_time = t;
      best_alpha = point.alpha;
    }
    alphas.push_back(point.alpha);
    gains.push_back(gain * 100.0);
    table.add_row({support::Table::num(point.alpha, 2),
                   std::to_string(point.lb_count),
                   support::Table::num(t, 2), support::Table::pct(gain, 2)});
  }
  out << table.render(2) << "\n";
  out << "gain vs alpha [%]: " << support::sparkline(gains) << "\n";
  out << "best alpha = " << best_alpha << "  ("
      << (t_std - best_time) / t_std * 100.0 << " % over standard, "
      << t_std << " s -> " << best_time << " s)\n";
  return 0;
}

int run_gossip(const FlagMap& flags, std::ostream& out) {
  flags.require_known(
      {"pes", "strong", "seed", "seeds", "iterations", "alpha", "trials"});
  const std::int64_t pes = flags.get_int("pes", 32);
  const std::int64_t strong = flags.get_int("strong", 1);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const std::int64_t seed_count = flags.get_int("seeds", 3);
  const std::int64_t iterations = flags.get_int("iterations", 120);
  const double alpha = flags.get_double("alpha", 0.4);
  const std::int64_t trials = flags.get_int("trials", 10);
  // The latency table sweeps up to 4·pes PEs over O(P²)-memory gossip
  // networks — cap the knob so misuse fails fast instead of OOMing.
  ULBA_REQUIRE(pes >= 4 && pes <= 256, "--pes must be in [4, 256]");
  ULBA_REQUIRE(strong >= 1 && strong <= pes, "--strong must be in [1, pes]");
  ULBA_REQUIRE(seed_count >= 1 && seed_count <= 64,
               "--seeds must be in [1, 64]");
  ULBA_REQUIRE(iterations >= 8, "--iterations must be at least 8");
  ULBA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "--alpha must be in (0, 1]");
  ULBA_REQUIRE(trials >= 1 && trials <= 1000, "--trials must be in [1, 1000]");

  out << "WIR-gossip ablation (paper Section III-C: one dissemination round "
         "per\niteration; the principle of persistence tolerates "
         "staleness)\n\n";

  // Part 1 — dissemination latency: rounds until every PE knows every WIR.
  std::vector<std::int64_t> fanouts;
  for (const std::int64_t f : {1, 2, 4, 8})
    if (f < pes) fanouts.push_back(f);
  const std::vector<std::int64_t> pe_counts{pes, 2 * pes, 4 * pes};
  out << "Rounds to full knowledge (median of " << trials << " trials):\n\n"
      << gossip_latency_table(pe_counts, fanouts,
                              static_cast<std::uint64_t>(trials), seed)
             .render(2)
      << "\n";

  // Part 2 — end-to-end erosion impact per fanout, against the centralized
  // zero-cost oracle (perfectly fresh WIR databases, no gossip traffic).
  erosion::AppConfig base =
      scaled_app_config(pes, strong, erosion::Method::kUlba, seed);
  base.columns_per_pe = 128;
  base.rows = 192;
  base.rock_radius = 48;
  base.iterations = iterations;
  base.alpha = alpha;
  std::vector<std::uint64_t> seeds;
  for (std::int64_t s = 0; s < seed_count; ++s)
    seeds.push_back(seed + 11 * static_cast<std::uint64_t>(s));

  erosion::AppConfig oracle_cfg = base;
  oracle_cfg.oracle_wir = true;
  const ErosionAggregate oracle = erosion_median_over_seeds(oracle_cfg, seeds);

  support::Table impact({"WIR source", "total time [s]", "LB calls",
                         "mean util", "first LB", "vs oracle"});
  impact.add_row({"oracle (centralized)",
                  support::Table::num(oracle.median_seconds, 3),
                  support::Table::num(oracle.median_lb_calls, 0),
                  support::Table::pct(oracle.median_utilization, 1),
                  support::Table::num(oracle.median_first_lb, 0), "-"});
  std::vector<double> fanout_seconds, fanout_lags;
  for (const std::int64_t f : fanouts) {
    erosion::AppConfig cfg = base;
    cfg.gossip_fanout = f;
    const ErosionAggregate agg = erosion_median_over_seeds(cfg, seeds);
    fanout_seconds.push_back(agg.median_seconds);
    fanout_lags.push_back(agg.median_first_lb);
    impact.add_row(
        {"gossip fanout " + std::to_string(f),
         support::Table::num(agg.median_seconds, 3),
         support::Table::num(agg.median_lb_calls, 0),
         support::Table::pct(agg.median_utilization, 1),
         support::Table::num(agg.median_first_lb, 0),
         support::Table::pct(
             agg.median_seconds / oracle.median_seconds - 1.0, 2)});
  }
  out << "Erosion app (" << pes << " PEs, " << strong
      << " strong rock(s), ULBA alpha=" << alpha << "), median of "
      << seeds.size() << " seed(s):\n\n"
      << impact.render(2) << "\n";

  // Part 3 — WIR smoothing: detection lag (first LB call) vs. stability.
  const std::vector<double> smoothings{0.25, 0.5, 0.75, 1.0};
  support::Table smooth_table(
      {"smoothing", "total time [s]", "LB calls", "first LB"});
  for (const double s : smoothings) {
    erosion::AppConfig cfg = base;
    cfg.wir_smoothing = s;
    const ErosionAggregate agg = erosion_median_over_seeds(cfg, seeds);
    smooth_table.add_row({support::Table::num(s, 2),
                          support::Table::num(agg.median_seconds, 3),
                          support::Table::num(agg.median_lb_calls, 0),
                          support::Table::num(agg.median_first_lb, 0)});
  }
  out << "WIR smoothing sweep (gossip fanout " << base.gossip_fanout
      << "; raw EMA factor, 1.0 = unsmoothed):\n\n"
      << smooth_table.render(2) << "\n";

  const double degradation_f1 =
      fanout_seconds.front() / oracle.median_seconds - 1.0;
  out << "findings:\n"
      << "  slowest dissemination (fanout 1) costs "
      << support::Table::pct(degradation_f1, 2)
      << " vs the centralized oracle\n"
      << "  detection lag, fanout 1 vs oracle: "
      << fanout_lags.front() - oracle.median_first_lb << " iteration(s)\n"
      << "  (stale WIRs are still good WIRs; extra gossip traffic buys "
         "little — the paper's\n   one-round-per-iteration choice)\n";
  return 0;
}

int run_instances(const FlagMap& flags, std::ostream& out) {
  flags.require_known({"samples", "seed", "alpha-grid", "ranks", "serve-batch",
                       "cache-capacity", "cache-shards"});
  const std::int64_t samples = flags.get_int("samples", 200);
  const std::uint64_t seed = flags.get_seed("seed", 20190916);
  const std::int64_t grid = flags.get_int("alpha-grid", 20);
  const std::int64_t ranks = flags.get_int("ranks", 1);
  const std::int64_t serve_batch = flags.get_int("serve-batch", 32);
  const std::int64_t cache_capacity = flags.get_int("cache-capacity", 4096);
  const std::int64_t cache_shards = flags.get_int("cache-shards", 8);
  ConfigValidator v;
  ULBA_CHECK_FLAG(v, samples >= 1 && samples <= 100000, "--samples",
                  "--samples must be in [1, 100000]");
  ULBA_CHECK_FLAG(v, grid >= 1 && grid <= 1000, "--alpha-grid",
                  "--alpha-grid must be in [1, 1000]");
  ULBA_CHECK_FLAG(v, ranks >= 1 && ranks <= 64, "--ranks",
                  "--ranks must be in [1, 64]");
  ULBA_CHECK_FLAG(v, !flags.has("serve-batch") || ranks > 1, "--serve-batch",
                  "--serve-batch tunes the schedule service; pass --ranks");
  ULBA_CHECK_FLAG(v, !flags.has("cache-capacity") || ranks > 1,
                  "--cache-capacity",
                  "--cache-capacity sizes the service's memo cache; pass "
                  "--ranks");
  ULBA_CHECK_FLAG(v, !flags.has("cache-shards") || ranks > 1,
                  "--cache-shards",
                  "--cache-shards shards the service's memo cache; pass "
                  "--ranks");
  ULBA_CHECK_FLAG(v, serve_batch >= 1 && serve_batch <= 4096, "--serve-batch",
                  "--serve-batch must be in [1, 4096]");
  ULBA_CHECK_FLAG(v, cache_capacity >= 1, "--cache-capacity",
                  "--cache-capacity must be at least 1");
  ULBA_CHECK_FLAG(v, cache_shards >= 1 && cache_shards <= 64, "--cache-shards",
                  "--cache-shards must be in [1, 64]");
  v.raise_first();

  out << "Table-II instance sweep: ULBA vs standard over the paper's random\n"
         "application families (" << samples << " instances per PE family, "
      << "alpha grid " << grid + 1 << " points)\n\n";

  support::Table table({"P", "wins", "losses", "ties", "median gain",
                        "mean gain", "min", "max", "best-alpha gain",
                        "avg best-alpha"});
  std::int64_t total_wins = 0, total_losses = 0;
  double peak_best_gain = 0.0;
  std::vector<FamilyStats> families;
  serve::ServeMetrics served_metrics;
  if (ranks == 1) {
    for (const std::int64_t p : core::kTableIIPeCounts)
      families.push_back(instance_family_stats(p, samples, seed, grid));
  } else {
    serve::ServeOptions serve_options;
    serve_options.batch_limit = serve_batch;
    serve_options.cache_capacity = cache_capacity;
    serve_options.cache_shards = cache_shards;
    const ServedSweepResult served = instance_sweep_served(
        core::kTableIIPeCounts, samples, seed, grid,
        static_cast<int>(ranks), serve_options);
    families = served.families;
    served_metrics = served.metrics;
  }
  for (const FamilyStats& s : families) {
    total_wins += s.wins;
    total_losses += s.losses;
    peak_best_gain = std::max(peak_best_gain, s.median_best_gain);
    table.add_row({std::to_string(s.pin_p), std::to_string(s.wins),
                   std::to_string(s.losses), std::to_string(s.ties),
                   support::Table::pct(s.median_gain, 2),
                   support::Table::pct(s.mean_gain, 2),
                   support::Table::pct(s.min_gain, 2),
                   support::Table::pct(s.max_gain, 2),
                   support::Table::pct(s.median_best_gain, 2),
                   support::Table::num(s.mean_best_alpha, 2)});
  }
  out << table.render(2) << "\n";
  out << "('gain' compares ULBA at the instance's drawn alpha against the "
         "standard\n method; 'best-alpha gain' tunes alpha per instance and "
         "can never lose)\n\n";
  out << "overall: " << total_wins << " wins / " << total_losses
      << " losses at the drawn alpha; median best-alpha gain up to "
      << support::Table::pct(peak_best_gain, 2)
      << " (paper Fig. 3: up to ~21 %)\n";
  if (ranks > 1) {
    out << "\nserved over " << ranks << " ranks (1 server + " << ranks - 1
        << " clients, batch limit " << serve_batch << "):\n"
        << "  requests " << served_metrics.requests << ", cache hits "
        << served_metrics.cache_hits << ", misses "
        << served_metrics.cache_misses << " (hit rate "
        << support::Table::pct(served_metrics.hit_rate(), 1) << ")\n"
        << "  batches " << served_metrics.batches << ", max batch "
        << served_metrics.max_batch << ", traffic "
        << served_metrics.request_bytes << " B in / "
        << served_metrics.response_bytes << " B out\n";
  }
  return 0;
}

int run_dynamic_alpha(const FlagMap& flags, std::ostream& out) {
  flags.require_known(
      {"pes", "seed", "seeds", "iterations", "alpha", "rocks", "instances"});
  const std::int64_t pes = flags.get_int("pes", 32);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const std::int64_t seed_count = flags.get_int("seeds", 3);
  const std::int64_t iterations = flags.get_int("iterations", 0);
  const double alpha = flags.get_double("alpha", 0.6);
  const std::int64_t max_rocks = flags.get_int("rocks", 6);
  const std::int64_t instances = flags.get_int("instances", 60);
  ULBA_REQUIRE(pes >= 4 && pes <= 256, "--pes must be in [4, 256]");
  ULBA_REQUIRE(seed_count >= 1 && seed_count <= 64,
               "--seeds must be in [1, 64]");
  ULBA_REQUIRE(iterations == 0 || iterations >= 8,
               "--iterations must be at least 8 (0 = scaled default)");
  ULBA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "--alpha must be in (0, 1]");
  ULBA_REQUIRE(max_rocks >= 1 && 2 * max_rocks < pes,
               "--rocks must be in [1, pes/2) — beyond half the PEs the "
               "ULBA step demotes itself anyway");
  ULBA_REQUIRE(instances >= 1 && instances <= 10000,
               "--instances must be in [1, 10000]");

  out << "Dynamic alpha (E-X4; paper Section V: \"dynamically adjust alpha "
         "during\napplication execution\"): per-interval alpha from the "
         "gossip-estimated\noverloading fraction, vs. fixed alpha and vs. "
         "the centralized oracle.\n\n";

  // Part 1 — model-level bound via the exact DP (GossipNetwork plays no role
  // here: this is the most per-step α can EVER buy on Table-II instances).
  const DynamicAlphaModelBound bound =
      dynamic_alpha_model_bound(static_cast<std::size_t>(instances), seed);
  out << "Model-level bound (exact DP over schedule x per-step alpha, "
      << instances << " Table-II\ninstances, opt::optimal_alpha_schedule):\n"
      << "  per-step alpha beats the best single fixed alpha by mean "
      << support::Table::num(bound.mean_pct, 3) << " %, median "
      << support::Table::num(bound.median_pct, 3) << " %,\n  max "
      << support::Table::num(bound.max_pct, 2) << " %\n"
      << "  (most of dynamic alpha's value is matching alpha to the CURRENT "
         "overloading\n   set, not varying it step to step)\n\n";

  // Part 2 — erosion-level sweep: the runtime policies against fixed α.
  std::vector<std::int64_t> rock_counts;
  for (const std::int64_t r : {1, 2, 4, 6, 8, 12, 16})
    if (r <= max_rocks && 2 * r < pes) rock_counts.push_back(r);
  const std::vector<AlphaVariant> variants = dynamic_alpha_variants(alpha);
  std::vector<std::uint64_t> seeds;
  for (std::int64_t s = 0; s < seed_count; ++s)
    seeds.push_back(seed + 11 * static_cast<std::uint64_t>(s));
  const auto medians =
      dynamic_alpha_grid(variants, rock_counts, pes, seeds, iterations);

  std::vector<std::string> headers{"variant"};
  for (const std::int64_t r : rock_counts)
    headers.push_back(std::to_string(r) + " strong");
  support::Table table(headers);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row{variants[v].label};
    for (std::size_t ri = 0; ri < rock_counts.size(); ++ri)
      row.push_back(support::Table::num(medians[v][ri], 3));
    table.add_row(row);
  }
  out << "Erosion app (" << pes << " PEs, ULBA, base alpha " << alpha
      << "), total virtual seconds, median of " << seeds.size()
      << " seed(s):\n\n"
      << table.render(2) << "\n";

  // Part 3 — per-interval α trace of one gossip-fed model-policy run.
  erosion::AppConfig trace_cfg = scaled_app_config(
      pes, rock_counts.back(), erosion::Method::kUlba, seed);
  if (iterations > 0) trace_cfg.iterations = iterations;
  trace_cfg.alpha = alpha;
  trace_cfg.alpha_policy = erosion::AlphaPolicy::kGossipModel;
  const erosion::RunResult trace = erosion::ErosionApp(trace_cfg).run();
  out << "Per-interval alpha trace (model policy, gossip-fed, "
      << rock_counts.back() << " strong rock(s), seed " << seed << "):\n";
  if (trace.lb_iterations.empty()) {
    out << "  no LB step fired\n";
  } else {
    for (std::size_t i = 0; i < trace.lb_iterations.size(); ++i)
      out << "  LB @ iteration " << trace.lb_iterations[i] << ": alpha "
          << support::Table::num(trace.lb_alphas[i], 2) << "\n";
  }
  out << "\n";

  // Findings: the gossip-fed model policy against the best fixed α of each
  // column (the oracle a static tuning could at best reach), and against its
  // own centralized-oracle variant (what staleness costs).
  // dynamic_alpha_variants layout: [0..2] fixed, [3] fraction, [4] model
  // (gossip), [5] model (oracle).
  double worst_vs_fixed = -1e300, worst_vs_oracle = -1e300;
  for (std::size_t ri = 0; ri < rock_counts.size(); ++ri) {
    double best_fixed = 1e300;
    for (std::size_t v = 0; v < 3; ++v)
      best_fixed = std::min(best_fixed, medians[v][ri]);
    worst_vs_fixed =
        std::max(worst_vs_fixed, medians[4][ri] / best_fixed - 1.0);
    worst_vs_oracle =
        std::max(worst_vs_oracle, medians[4][ri] / medians[5][ri] - 1.0);
  }
  out << "findings:\n"
      << "  model policy (gossip) vs best fixed alpha per rock count: "
      << support::Table::pct(worst_vs_fixed, 2) << " worst case\n"
      << "  gossip staleness vs the centralized oracle:            "
      << support::Table::pct(worst_vs_oracle, 2) << " worst case\n"
      << "  (the policy tracks the oracle fixed alpha without knowing the "
         "rock count\n   in advance — the E-X4 loop closed end to end)\n";
  return 0;
}

int run_interval_quality(const FlagMap& flags, std::ostream& out) {
  flags.require_known({"instances", "sa-steps", "seed"});
  const std::int64_t instances = flags.get_int("instances", 200);
  const std::int64_t sa_steps = flags.get_int("sa-steps", 5000);
  const std::uint64_t seed = flags.get_seed("seed", 1215);
  ULBA_REQUIRE(instances >= 1 && instances <= 100000,
               "--instances must be in [1, 100000]");
  ULBA_REQUIRE(sa_steps >= 1 && sa_steps <= 1000000,
               "--sa-steps must be in [1, 1000000]");

  out << "Interval quality (Figure 2): gain of the sigma+ LB intervals over "
         "the\nheuristic search (simulated annealing, " << sa_steps
      << " steps) on " << instances
      << " random\nTable-II instances, bounded by the exact DP optimum.\n"
         "(paper, 1000 instances: best +1.57%, worst -5.58%, average "
         "-0.83%)\n\n";

  const std::vector<IntervalQualitySample> samples = interval_quality_sweep(
      static_cast<std::size_t>(instances), sa_steps, seed);
  std::vector<double> gains, dp_gaps, sa_gaps;
  for (const IntervalQualitySample& s : samples) {
    gains.push_back(s.gain_vs_sa * 100.0);
    dp_gaps.push_back(s.gap_vs_dp * 100.0);
    sa_gaps.push_back(s.sa_gap_vs_dp * 100.0);
  }

  out << "Gain histogram (sigma+ vs. heuristic search) [%]:\n\n"
      << support::Histogram::from_data(gains, 16).render(40) << "\n";

  const auto g = support::summarize(gains);
  out << "  best gain   : " << support::Table::num(g.max, 2) << " %\n"
      << "  worst gain  : " << support::Table::num(g.min, 2) << " %\n"
      << "  average gain: " << support::Table::num(g.mean, 2) << " %\n\n";

  out << "Distance from the exact DP optimum (the bound the paper lacked):\n"
      << "  sigma+ gap to optimal : mean "
      << support::Table::num(support::mean(dp_gaps), 2) << " %, max "
      << support::Table::num(support::max_of(dp_gaps), 2) << " %\n"
      << "  SA gap to optimal     : mean "
      << support::Table::num(support::mean(sa_gaps), 2) << " %, max "
      << support::Table::num(support::max_of(sa_gaps), 2) << " %\n\n";

  const bool shape_ok = g.mean > -5.0 && g.mean < 2.0 && g.min > -25.0;
  out << "findings:\n"
      << (shape_ok
              ? "  shape reproduced: sigma+ tracks the heuristic search "
                "(a good analytic\n   stand-in for a numeric optimizer)\n"
              : "  SHAPE MISMATCH vs. the paper's Figure 2\n");
  return shape_ok ? 0 : 1;
}

int run_serve(const FlagMap& flags, std::ostream& out) {
  flags.require_known({"clients", "requests", "distinct", "serve-batch",
                       "cache-capacity", "cache-shards", "mode", "alpha-grid",
                       "seed"});
  const std::int64_t clients = flags.get_int("clients", 4);
  const std::int64_t requests = flags.get_int("requests", 64);
  const std::int64_t distinct = flags.get_int("distinct", 16);
  const std::int64_t serve_batch = flags.get_int("serve-batch", 32);
  const std::int64_t cache_capacity = flags.get_int("cache-capacity", 4096);
  const std::int64_t cache_shards = flags.get_int("cache-shards", 8);
  const std::string mode = flags.get_string("mode", "grid");
  const std::int64_t alpha_grid = flags.get_int("alpha-grid", 10);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  ConfigValidator v;
  ULBA_CHECK_FLAG(v, clients >= 1 && clients <= 64, "--clients",
                  "--clients must be in [1, 64]");
  ULBA_CHECK_FLAG(v, requests >= 1 && requests <= 100000, "--requests",
                  "--requests must be in [1, 100000]");
  ULBA_CHECK_FLAG(v, distinct >= 1 && distinct <= 10000, "--distinct",
                  "--distinct must be in [1, 10000]");
  ULBA_CHECK_FLAG(v, serve_batch >= 1 && serve_batch <= 4096, "--serve-batch",
                  "--serve-batch must be in [1, 4096]");
  ULBA_CHECK_FLAG(v, cache_capacity >= 1, "--cache-capacity",
                  "--cache-capacity must be at least 1");
  ULBA_CHECK_FLAG(v, cache_shards >= 1 && cache_shards <= 64, "--cache-shards",
                  "--cache-shards must be in [1, 64]");
  ULBA_CHECK_FLAG(v, mode == "grid" || mode == "dp", "--mode",
                  "--mode must be 'grid' (sigma+ sweep) or 'dp' (exact DP)");
  ULBA_CHECK_FLAG(v, alpha_grid >= 1 && alpha_grid <= 1000, "--alpha-grid",
                  "--alpha-grid must be in [1, 1000]");
  v.raise_first();

  ServeTrafficOptions options;
  options.clients = static_cast<int>(clients);
  options.requests_per_client = requests;
  options.distinct = distinct;
  options.batch_limit = serve_batch;
  options.cache_capacity = cache_capacity;
  options.cache_shards = cache_shards;
  options.mode =
      mode == "dp" ? core::EvalMode::kExactDp : core::EvalMode::kSigmaGrid;
  options.alpha_grid = alpha_grid;
  options.seed = seed;

  out << "Schedule service under deterministic multi-client traffic\n"
      << "(1 server rank + " << clients << " client rank(s); " << requests
      << " requests/client drawn from a pool of " << distinct
      << " Table-II\n instances; mode " << mode << ", alpha grid "
      << alpha_grid + 1 << " points; every response is checked\n "
      << "bit-for-bit against a cold evaluation of the same request)\n\n";

  const ServeTrafficResult result = serve_traffic(options);

  out << "server (rank 0, batch limit " << serve_batch << ", cache "
      << cache_capacity << " x " << cache_shards << " shards):\n"
      << "  requests      : " << result.metrics.requests << "\n"
      << "  cache hits    : " << result.metrics.cache_hits << "\n"
      << "  cache misses  : " << result.metrics.cache_misses << "\n"
      << "  hit rate      : "
      << support::Table::pct(result.metrics.hit_rate(), 1) << "\n"
      << "  evictions     : " << result.metrics.cache_evictions << "\n"
      << "  batches       : " << result.metrics.batches
      << " (max batch " << result.metrics.max_batch << ")\n"
      << "  traffic       : " << result.metrics.request_bytes << " B in / "
      << result.metrics.response_bytes << " B out\n\n";

  out << "clients:\n"
      << "  total requests    : " << result.total_requests << "\n"
      << "  distinct queried  : " << result.distinct_queried << "\n"
      << "  hit responses     : " << result.hit_responses << "\n"
      << "  throughput        : "
      << support::Table::num(result.requests_per_second, 0)
      << " req/s (wall " << support::Table::num(result.wall_seconds, 3)
      << " s)\n\n";

  // The determinism contract, stated as verdicts (wall numbers above are
  // real; these are the structurally-checked invariants).
  const bool counts_ok =
      result.metrics.requests == result.total_requests &&
      result.metrics.cache_hits + result.metrics.cache_misses ==
          result.metrics.requests;
  const bool misses_ok = cache_capacity >= distinct
                             ? result.metrics.cache_misses ==
                                   result.distinct_queried
                             : result.metrics.cache_misses >=
                                   result.distinct_queried;
  out << "verdicts:\n"
      << "  bit-identical responses : "
      << (result.ok() ? "PASS" : "FAIL") << " (" << result.mismatched_responses
      << " mismatched)\n"
      << "  request accounting      : " << (counts_ok ? "PASS" : "FAIL")
      << "\n"
      << "  miss = distinct         : " << (misses_ok ? "PASS" : "FAIL")
      << "\n";
  const bool ok = result.ok() && counts_ok && misses_ok;
  out << "\n" << (ok ? "service contract holds" : "SERVICE CONTRACT VIOLATED")
      << "\n";
  return ok ? 0 : 1;
}

int run_anticipation(const FlagMap& flags, std::ostream& out) {
  flags.require_known({"ranks", "pes", "strong", "seed", "iterations",
                       "noise", "ns-scale", "fli-threshold"});
  const std::int64_t ranks = flags.get_int("ranks", 4);
  const std::int64_t pes = flags.get_int("pes", 8);
  const std::int64_t strong = flags.get_int("strong", 1);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const std::int64_t iterations = flags.get_int("iterations", 60);
  const double noise = flags.get_double("noise", 0.4);
  const double ns_scale = flags.get_double("ns-scale", 2.0);
  const double fli_threshold = flags.get_double("fli-threshold", 0.25);
  ULBA_REQUIRE(ranks >= 2 && ranks <= 64, "--ranks must be in [2, 64]");
  ULBA_REQUIRE(pes >= 2, "--pes must be at least 2");
  ULBA_REQUIRE(strong >= 1 && strong <= pes, "--strong must be in [1, pes]");
  ULBA_REQUIRE(iterations >= 8, "--iterations must be at least 8");
  ULBA_REQUIRE(noise > 0.0 && noise < 1.0, "--noise must be in (0, 1)");
  ULBA_REQUIRE(ns_scale > 0.0, "--ns-scale must be positive");
  ULBA_REQUIRE(fli_threshold > 0.0, "--fli-threshold must be positive");

  out << "Anticipation vs. reaction (the paper's core claim on real "
         "hardware):\nULBA-scheduled anticipatory LB (model trigger) against "
         "reactive LB driven\nby the MEASURED trigger — degradation "
         "(Algorithm 1 on steady_clock maxima)\nand fli ((max-avg)/avg of "
         "the gathered per-rank burn times >= "
      << fli_threshold << ") —\nunder injected multi-tenant burn noise.\n\n"
      << "(" << ranks << " SPMD ranks, " << pes << " PEs, " << iterations
      << " iterations, seed " << seed << ", ns_scale " << ns_scale
      << ";\n wall numbers are real and noisy — re-run for another "
         "sample)\n\n";

  const std::vector<double> noise_levels{0.0, noise / 2.0, noise};
  const std::vector<AnticipationReactiveRow> rows =
      anticipation_vs_reactive_sweep(ranks, pes, strong, seed, iterations,
                                     noise_levels, ns_scale, fli_threshold);

  support::Table table({"variant", "noise", "wall [s]", "compute [s]",
                        "LB [s]", "LB calls", "mean util", "mean fli"});
  for (const AnticipationReactiveRow& r : rows)
    table.add_row({r.variant, support::Table::num(r.noise, 2),
                   support::Table::num(r.wall_seconds, 3),
                   support::Table::num(r.compute_seconds, 3),
                   support::Table::num(r.lb_seconds, 3),
                   std::to_string(r.lb_count),
                   support::Table::pct(r.utilization, 1),
                   support::Table::num(r.mean_fli, 3)});
  out << table.render(2) << "\n";

  // Win/loss per noise level: anticipation's measured wall clock against
  // the better of the two reactive variants.
  const std::size_t variants_per_level = rows.size() / noise_levels.size();
  std::int64_t wins = 0;
  out << "win/loss (anticipation wall clock vs. best reactive):\n";
  for (std::size_t n = 0; n < noise_levels.size(); ++n) {
    const AnticipationReactiveRow& ant = rows[n * variants_per_level];
    double best_reactive = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (std::size_t v = 1; v < variants_per_level; ++v) {
      const AnticipationReactiveRow& r = rows[n * variants_per_level + v];
      if (r.wall_seconds < best_reactive) {
        best_reactive = r.wall_seconds;
        best_name = r.variant;
      }
    }
    const bool win = ant.wall_seconds < best_reactive;
    wins += win ? 1 : 0;
    out << "  noise " << support::Table::num(ant.noise, 2) << ": "
        << (win ? "WIN " : "LOSS") << "  (" << ant.wall_seconds << " s vs "
        << best_reactive << " s " << best_name << ")\n";
  }
  out << "\nanticipation wins " << wins << "/" << noise_levels.size()
      << " noise level(s)  (same dynamics everywhere: "
      << rows.front().eroded_cells << " cells eroded per run)\n";
  return 0;
}

}  // namespace ulba::cli
