// `ulba_cli` — the unified scenario driver.
//
//   ulba_cli <subcommand> [--flag value]…
//
// Subcommands: quickstart, erosion, intervals, alpha-tuning (plus `help`).
// `run()` is argv-free and stream-parameterized so the dispatcher is
// directly unit-testable; main.cpp is a thin adapter that also maps the
// ULBA_REQUIRE exceptions to exit code 2 + a usage hint.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ulba::cli {

/// Everything after argv[0].  Returns the process exit code; throws
/// std::invalid_argument (via ULBA_REQUIRE) on unknown subcommands, unknown
/// flags, or malformed values.
int run(const std::vector<std::string>& args, std::ostream& out);

/// The top-level usage text (also what `ulba_cli help` prints).
[[nodiscard]] std::string usage();

/// The per-subcommand help text; throws std::invalid_argument when `command`
/// is not a subcommand.
[[nodiscard]] std::string subcommand_help(const std::string& command);

/// Names of all registered subcommands, in display order.
[[nodiscard]] std::vector<std::string> subcommand_names();

}  // namespace ulba::cli
