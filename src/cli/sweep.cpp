#include "cli/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include <chrono>

#include "core/gossip.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/schedule_query.hpp"
#include "erosion/domain.hpp"
#include "lb/grid.hpp"
#include "lb/partitioners.hpp"
#include "opt/annealing.hpp"
#include "opt/dp_alpha.hpp"
#include "opt/dp_optimal.hpp"
#include "opt/evaluate.hpp"
#include "runtime/spmd.hpp"
#include "support/require.hpp"
#include "support/stats.hpp"

namespace ulba::cli {

erosion::AppConfig scaled_app_config(std::int64_t pe_count,
                                     std::int64_t strong_rocks,
                                     erosion::Method method,
                                     std::uint64_t seed) {
  erosion::AppConfig c;
  c.pe_count = pe_count;
  c.columns_per_pe = 256;
  c.rows = 384;
  c.rock_radius = 96;
  c.strong_rock_count = strong_rocks;
  // The paper runs 400 iterations at radius 250 — erosion stays active for
  // most of the run. Erosion lifetime scales with the rock radius, so the
  // scaled domain's horizon shrinks proportionally.
  c.iterations = 180;
  c.method = method;
  c.alpha = 0.4;  // the paper's Figure-4 value
  c.seed = seed;
  c.bytes_per_cell = 256.0;  // LBM-style cell state
  // Calibration: with these constants one LB step (α gather + partition +
  // boundary broadcast + migration) costs on the order of 0.3–3 iterations,
  // i.e. Table II's z ∈ [0.1, 3] regime — the regime the paper's cluster
  // experiments live in. A faster network makes LB nearly free, at which
  // point *any* reactive balancer wins by just rebalancing constantly; a
  // slower one makes migration (∝ drift since the last step) dominate and
  // punishes long intervals beyond anything the paper's constant-C model
  // describes.
  c.comm.latency_s = 1e-4;
  c.comm.bandwidth_Bps = 2e9;
  return c;
}

support::Table gossip_latency_table(std::span<const std::int64_t> pe_counts,
                                    std::span<const std::int64_t> fanouts,
                                    std::uint64_t trials,
                                    std::uint64_t seed) {
  ULBA_REQUIRE(trials >= 1, "need at least one latency trial");
  std::vector<std::string> headers{"P"};
  for (const std::int64_t fanout : fanouts)
    headers.push_back("fanout " + std::to_string(fanout));
  headers.emplace_back("~log2(P)");
  support::Table table(std::move(headers));
  for (const std::int64_t pe_count : pe_counts) {
    std::vector<std::string> row{std::to_string(pe_count)};
    for (const std::int64_t fanout : fanouts) {
      ULBA_REQUIRE(fanout >= 1 && fanout < pe_count,
                   "fanout must lie in [1, P)");
      std::vector<double> rounds;
      for (std::uint64_t trial = 0; trial < trials; ++trial) {
        core::GossipNetwork net(pe_count, fanout);
        for (std::int64_t pe = 0; pe < pe_count; ++pe)
          net.observe_local(pe, 1.0, 0);
        rounds.push_back(static_cast<double>(net.rounds_to_full_knowledge(
            support::Rng(seed).fork(trial))));
      }
      row.push_back(support::Table::num(support::median(rounds), 1));
    }
    row.push_back(
        support::Table::num(std::log2(static_cast<double>(pe_count)), 1));
    table.add_row(row);
  }
  return table;
}

ErosionAggregate erosion_median_over_seeds(
    erosion::AppConfig cfg, std::span<const std::uint64_t> seeds) {
  ULBA_REQUIRE(!seeds.empty(), "need at least one seed");
  const auto results = parallel_map(seeds.size(), [&](std::size_t i) {
    erosion::AppConfig c = cfg;
    c.seed = seeds[i];
    return erosion::ErosionApp(c).run();
  });
  std::vector<double> t, calls, util, first_lb;
  for (const erosion::RunResult& r : results) {
    t.push_back(r.total_seconds);
    calls.push_back(static_cast<double>(r.lb_count));
    util.push_back(r.average_utilization);
    first_lb.push_back(static_cast<double>(
        r.lb_iterations.empty() ? cfg.iterations : r.lb_iterations.front()));
  }
  ErosionAggregate agg;
  agg.median_seconds = support::median(t);
  agg.median_lb_calls = support::median(calls);
  agg.median_utilization = support::median(util);
  agg.median_first_lb = support::median(first_lb);
  return agg;
}

namespace {

/// The per-sample verdict of the Table-II sweep.
struct InstanceDraw {
  double gain = 0.0;
  double best_gain = 0.0;
  double best_alpha = 0.0;
};

/// The exact ScheduleRequest of family sample `i`: the same Table-II
/// instance draw the pre-API sweep made, with the candidate grid
/// {0, 1/alpha_grid, …, 1}. Serial and served sweeps both build requests
/// through here, which is what makes them bit-identical.
core::ScheduleRequest instance_alpha_request(std::int64_t pin_p,
                                             std::uint64_t family_seed,
                                             std::size_t sample_index,
                                             std::int64_t alpha_grid) {
  support::Rng rng = support::Rng(family_seed).fork(sample_index);
  core::InstanceOptions opts;
  opts.pin_p = pin_p;
  core::ScheduleRequest request;
  request.mode = core::EvalMode::kSigmaGrid;
  request.params = core::InstanceGenerator(opts).sample(rng).params;
  request.alpha_grid.reserve(static_cast<std::size_t>(alpha_grid) + 1);
  for (std::int64_t a = 0; a <= alpha_grid; ++a)
    request.alpha_grid.push_back(static_cast<double>(a) /
                                 static_cast<double>(alpha_grid));
  return request;
}

InstanceDraw draw_from_response(const core::ScheduleResponse& response) {
  InstanceDraw d;
  d.gain = (response.standard_seconds - response.alpha_seconds) /
           response.standard_seconds;
  d.best_gain = (response.standard_seconds - response.best_seconds) /
                response.standard_seconds;
  d.best_alpha = response.best_alpha;
  return d;
}

/// Reduce one family's per-sample draws (in sample order) to its stats row.
FamilyStats family_stats_from_draws(std::int64_t pin_p, std::int64_t samples,
                                    std::span<const InstanceDraw> draws) {
  FamilyStats stats;
  stats.pin_p = pin_p;
  stats.samples = samples;
  std::vector<double> gains, best_gains, best_alphas;
  for (const InstanceDraw& d : draws) {
    gains.push_back(d.gain);
    best_gains.push_back(d.best_gain);
    best_alphas.push_back(d.best_alpha);
    constexpr double kTol = 1e-12;
    if (d.gain > kTol)
      ++stats.wins;
    else if (d.gain < -kTol)
      ++stats.losses;
    else
      ++stats.ties;
  }
  stats.median_gain = support::median(gains);
  stats.mean_gain = support::mean(gains);
  stats.min_gain = support::min_of(gains);
  stats.max_gain = support::max_of(gains);
  stats.median_best_gain = support::median(best_gains);
  stats.mean_best_alpha = support::mean(best_alphas);
  return stats;
}

std::uint64_t family_seed_for(std::int64_t pin_p, std::uint64_t base_seed) {
  return support::Rng(base_seed)
      .fork(static_cast<std::uint64_t>(pin_p))
      .seed();
}

}  // namespace

FamilyStats instance_family_stats(std::int64_t pin_p, std::int64_t samples,
                                  std::uint64_t base_seed,
                                  std::int64_t alpha_grid) {
  ULBA_REQUIRE(samples >= 1, "need at least one sample per family");
  ULBA_REQUIRE(alpha_grid >= 1, "alpha grid needs at least one step");
  const std::uint64_t seed = family_seed_for(pin_p, base_seed);
  const auto draws = parallel_map(
      static_cast<std::size_t>(samples), [&](std::size_t i) {
        return draw_from_response(opt::evaluate_schedule_request(
            instance_alpha_request(pin_p, seed, i, alpha_grid)));
      });
  return family_stats_from_draws(pin_p, samples, draws);
}

ServedSweepResult instance_sweep_served(std::span<const std::int64_t> pin_ps,
                                        std::int64_t samples,
                                        std::uint64_t base_seed,
                                        std::int64_t alpha_grid, int ranks,
                                        const serve::ServeOptions& options) {
  ULBA_REQUIRE(!pin_ps.empty(), "need at least one family");
  ULBA_REQUIRE(samples >= 1, "need at least one sample per family");
  ULBA_REQUIRE(alpha_grid >= 1, "alpha grid needs at least one step");
  ULBA_REQUIRE(ranks >= 2,
               "the served sweep needs a server rank plus at least one "
               "client rank");
  // Draw triples travel on their own channel, after the service traffic.
  constexpr int kTagDraws = 910;

  ServedSweepResult result;
  result.families.resize(pin_ps.size());
  const int clients = ranks - 1;
  runtime::spmd_run(ranks, [&](runtime::Comm& comm) {
    if (comm.rank() == options.server_rank) {
      result.metrics = serve::serve_loop(comm, options);
      comm.barrier();
      // Reassemble each family's draws into sample order: sample i lives at
      // position i / clients of client (i mod clients) + 1's flat vector.
      for (std::size_t f = 0; f < pin_ps.size(); ++f) {
        std::vector<std::vector<double>> flat(
            static_cast<std::size_t>(clients));
        for (int r = 1; r < ranks; ++r)
          flat[static_cast<std::size_t>(r - 1)] =
              comm.recv_vector<double>(r, kTagDraws);
        std::vector<InstanceDraw> draws(static_cast<std::size_t>(samples));
        for (std::int64_t i = 0; i < samples; ++i) {
          const auto owner = static_cast<std::size_t>(i % clients);
          const auto at = static_cast<std::size_t>(i / clients) * 3;
          ULBA_REQUIRE(flat[owner].size() >= at + 3,
                       "served sweep draw vector too short");
          draws[static_cast<std::size_t>(i)] = {flat[owner][at],
                                                flat[owner][at + 1],
                                                flat[owner][at + 2]};
        }
        result.families[f] =
            family_stats_from_draws(pin_ps[f], samples, draws);
      }
      return;
    }

    // Client rank r owns the interleaved sample indices r−1, r−1+clients, …
    // of every family. Submit the whole family before awaiting anything —
    // the pipelining that gives the server real batches to drain.
    serve::ScheduleClient client(comm, options.server_rank);
    std::vector<std::vector<double>> family_draws(pin_ps.size());
    for (std::size_t f = 0; f < pin_ps.size(); ++f) {
      const std::uint64_t seed = family_seed_for(pin_ps[f], base_seed);
      std::vector<std::uint64_t> ids;
      for (std::int64_t i = comm.rank() - 1; i < samples; i += clients)
        ids.push_back(client.submit(instance_alpha_request(
            pin_ps[f], seed, static_cast<std::size_t>(i), alpha_grid)));
      for (const std::uint64_t id : ids) {
        const InstanceDraw d = draw_from_response(client.await(id));
        family_draws[f].insert(family_draws[f].end(),
                               {d.gain, d.best_gain, d.best_alpha});
      }
    }
    client.finish();
    comm.barrier();
    for (const std::vector<double>& flat : family_draws)
      comm.send_span<double>(options.server_rank, kTagDraws, flat);
  });
  return result;
}

std::vector<PartitionerQualityRow> partitioner_quality_sweep(
    std::span<const std::string> names, std::int64_t pe_count,
    std::int64_t snapshots, std::int64_t iterations_between,
    std::uint64_t seed) {
  ULBA_REQUIRE(!names.empty(), "need at least one partitioner");
  ULBA_REQUIRE(snapshots >= 0 && iterations_between >= 1,
               "quality sweep needs a forward-moving sampling plan");
  // The same scaled geometry the end-to-end sweeps run, so cutting quality
  // is measured on exactly the profiles the CLI's erosion scenario produces.
  const erosion::AppConfig cfg =
      scaled_app_config(pe_count, 1, erosion::Method::kStandard, seed);
  erosion::ErosionDomain domain(erosion::ErosionApp(cfg).make_domain());
  support::Rng rng = support::Rng(seed).fork(1);

  const std::vector<double> targets(
      static_cast<std::size_t>(pe_count),
      1.0 / static_cast<double>(pe_count));
  std::vector<PartitionerQualityRow> rows;
  for (std::int64_t snapshot = 0; snapshot <= snapshots; ++snapshot) {
    PartitionerQualityRow row;
    row.iteration = snapshot * iterations_between;
    const auto w = domain.column_weights();
    for (const std::string& name : names) {
      const auto partitioner = lb::make_partitioner(name);
      row.ratios.push_back(
          lb::bottleneck_ratio(w, targets, partitioner->partition(w, targets)));
    }
    rows.push_back(std::move(row));
    if (snapshot < snapshots)
      for (std::int64_t it = 0; it < iterations_between; ++it)
        (void)domain.step(rng);
  }
  return rows;
}

std::vector<PartitionerEndToEnd> partitioner_end_to_end(
    std::span<const std::string> names, std::int64_t pe_count,
    std::int64_t strong_rocks, std::span<const std::uint64_t> seeds,
    std::int64_t shards) {
  ULBA_REQUIRE(!names.empty() && !seeds.empty(),
               "need at least one partitioner and one seed");
  struct Case {
    std::size_t name_idx;
    erosion::Method method;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::size_t ni = 0; ni < names.size(); ++ni)
    for (const auto m : {erosion::Method::kStandard, erosion::Method::kUlba})
      for (const std::uint64_t s : seeds) cases.push_back({ni, m, s});
  const auto results = parallel_map(cases.size(), [&](std::size_t i) {
    erosion::AppConfig cfg = scaled_app_config(pe_count, strong_rocks,
                                               cases[i].method, cases[i].seed);
    cfg.partitioner = names[cases[i].name_idx];
    cfg.shards = shards;
    return erosion::ErosionApp(cfg).run().total_seconds;
  });

  std::vector<PartitionerEndToEnd> rows;
  for (std::size_t ni = 0; ni < names.size(); ++ni) {
    std::vector<double> t_std, t_ulba;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (cases[i].name_idx != ni) continue;
      (cases[i].method == erosion::Method::kStandard ? t_std : t_ulba)
          .push_back(results[i]);
    }
    rows.push_back({names[ni], support::median(t_std),
                    support::median(t_ulba)});
  }
  return rows;
}

DynamicAlphaModelBound dynamic_alpha_model_bound(std::size_t instances,
                                                 std::uint64_t seed) {
  ULBA_REQUIRE(instances >= 1, "need at least one instance");
  const auto margins = parallel_map(instances, [&](std::size_t i) {
    support::Rng rng = support::Rng(seed).fork(i);
    const core::InstanceGenerator gen;
    // One exact-DP request per instance: best_seconds is the best single
    // fixed α (the DP per grid point), schedule_seconds the free per-step-α
    // DP over the same grid — the two sides of the dynamic-α margin.
    core::ScheduleRequest request;
    request.mode = core::EvalMode::kExactDp;
    request.params = gen.sample(rng).params;
    request.alpha_grid = opt::default_alpha_grid();
    const core::ScheduleResponse response =
        opt::evaluate_schedule_request(request);
    return (1.0 - response.schedule_seconds / response.best_seconds) * 100.0;
  });
  const auto s = support::summarize(margins);
  return {s.mean, s.median, s.max};
}

std::vector<AlphaVariant> dynamic_alpha_variants(double base_alpha) {
  return {
      {"fixed alpha=0.2", 0.2, erosion::AlphaPolicy::kFixed, false},
      {"fixed alpha=0.4", 0.4, erosion::AlphaPolicy::kFixed, false},
      {"fixed alpha=" + support::Table::num(base_alpha, 1), base_alpha,
       erosion::AlphaPolicy::kFixed, false},
      {"fraction (gossip)", base_alpha, erosion::AlphaPolicy::kGossipFraction,
       false},
      {"model (gossip)", base_alpha, erosion::AlphaPolicy::kGossipModel,
       false},
      {"model (oracle WIR)", base_alpha, erosion::AlphaPolicy::kGossipModel,
       true},
  };
}

std::vector<std::vector<double>> dynamic_alpha_grid(
    std::span<const AlphaVariant> variants,
    std::span<const std::int64_t> rock_counts, std::int64_t pe_count,
    std::span<const std::uint64_t> seeds, std::int64_t iterations) {
  ULBA_REQUIRE(!variants.empty() && !rock_counts.empty() && !seeds.empty(),
               "dynamic-alpha sweep needs variants, rock counts, and seeds");
  struct Case {
    std::size_t variant;
    std::size_t rock_idx;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::size_t v = 0; v < variants.size(); ++v)
    for (std::size_t ri = 0; ri < rock_counts.size(); ++ri)
      for (const std::uint64_t s : seeds) cases.push_back({v, ri, s});
  const auto results = parallel_map(cases.size(), [&](std::size_t i) {
    erosion::AppConfig cfg =
        scaled_app_config(pe_count, rock_counts[cases[i].rock_idx],
                          erosion::Method::kUlba, cases[i].seed);
    if (iterations > 0) cfg.iterations = iterations;
    cfg.alpha = variants[cases[i].variant].alpha;
    cfg.alpha_policy = variants[cases[i].variant].policy;
    cfg.oracle_wir = variants[cases[i].variant].oracle_wir;
    return erosion::ErosionApp(cfg).run().total_seconds;
  });

  std::vector<std::vector<double>> medians(
      variants.size(), std::vector<double>(rock_counts.size(), 0.0));
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t ri = 0; ri < rock_counts.size(); ++ri) {
      std::vector<double> xs;
      for (std::size_t i = 0; i < cases.size(); ++i)
        if (cases[i].variant == v && cases[i].rock_idx == ri)
          xs.push_back(results[i]);
      medians[v][ri] = support::median(xs);
    }
  }
  return medians;
}

std::vector<IntervalQualitySample> interval_quality_sweep(
    std::size_t instances, std::int64_t sa_steps, std::uint64_t seed) {
  ULBA_REQUIRE(instances >= 1, "need at least one instance");
  ULBA_REQUIRE(sa_steps >= 1, "need at least one annealing step");
  return parallel_map(instances, [&](std::size_t i) {
    support::Rng rng = support::Rng(seed).fork(i);
    const core::InstanceGenerator gen;
    const core::ModelParams p = gen.sample(rng).params;

    support::Rng sa_rng = rng.fork(1);
    const auto sa =
        opt::anneal_schedule(p, opt::CostModel::kUlba, sa_rng, sa_steps);
    const double t_sigma =
        core::evaluate_ulba(p, core::sigma_plus_schedule(p)).total_seconds;
    const auto dp = opt::optimal_schedule(p, opt::CostModel::kUlba);

    IntervalQualitySample s;
    s.gain_vs_sa = (sa.total_seconds - t_sigma) / sa.total_seconds;
    s.gap_vs_dp = t_sigma / dp.total_seconds - 1.0;
    s.sa_gap_vs_dp = sa.total_seconds / dp.total_seconds - 1.0;
    return s;
  });
}

namespace {

/// Full bit-equality of two RunResults' trajectory-facing fields — the
/// determinism verdict bench_distributed_erosion reports (the distributed
/// accounting fields are deliberately excluded: they are additional by
/// design).
bool run_results_bit_equal(const erosion::RunResult& a,
                           const erosion::RunResult& b) {
  if (a.total_seconds != b.total_seconds ||
      a.compute_seconds != b.compute_seconds ||
      a.lb_seconds != b.lb_seconds || a.lb_count != b.lb_count ||
      a.fallback_count != b.fallback_count ||
      a.average_utilization != b.average_utilization ||
      a.eroded_cells != b.eroded_cells ||
      a.final_imbalance != b.final_imbalance ||
      a.lb_iterations != b.lb_iterations || a.lb_alphas != b.lb_alphas ||
      a.iterations.size() != b.iterations.size())
    return false;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const erosion::IterationRecord& x = a.iterations[i];
    const erosion::IterationRecord& y = b.iterations[i];
    if (x.seconds != y.seconds || x.utilization != y.utilization ||
        x.lb_performed != y.lb_performed ||
        x.degradation != y.degradation || x.threshold != y.threshold)
      return false;
  }
  return true;
}

}  // namespace

std::vector<DistributedScalingRow> distributed_erosion_scaling(
    std::span<const std::int64_t> rank_counts,
    std::span<const std::string> partitioners,
    std::span<const std::string> exchanges, std::int64_t pe_count,
    std::int64_t strong_rocks, std::uint64_t seed, std::int64_t iterations) {
  ULBA_REQUIRE(!rank_counts.empty() && !partitioners.empty() &&
                   !exchanges.empty(),
               "scaling sweep needs rank counts, partitioners, and "
               "exchange modes");
  using Clock = std::chrono::steady_clock;
  std::vector<DistributedScalingRow> rows;
  for (const std::string& name : partitioners) {
    erosion::AppConfig cfg = scaled_app_config(
        pe_count, strong_rocks, erosion::Method::kUlba, seed);
    if (iterations > 0) cfg.iterations = iterations;
    cfg.partitioner = name;
    const erosion::RunResult reference = erosion::ErosionApp(cfg).run();
    for (const std::string& exchange : exchanges) {
      for (const std::int64_t ranks : rank_counts) {
        // The exchange mode is meaningless at one rank (the serial path);
        // run that reference cell once instead of once per mode.
        if (ranks == 1 && exchange != exchanges.front()) continue;
        erosion::AppConfig rcfg = cfg;
        rcfg.ranks = ranks;
        rcfg.exchange = exchange;
        const auto t0 = Clock::now();
        const erosion::RunResult run = erosion::ErosionApp(rcfg).run();
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();
        DistributedScalingRow row;
        row.ranks = ranks;
        row.partitioner = name;
        row.exchange = exchange;
        row.wall_seconds = wall;
        row.virtual_seconds = run.total_seconds;
        row.lb_count = run.lb_count;
        row.discs_moved = run.rank_discs_moved;
        row.observed_mb = run.rank_observed_bytes / 1e6;
        row.step_messages = run.rank_step_messages;
        row.matches_serial = run_results_bit_equal(run, reference) ? 1 : 0;
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

std::vector<GridDecompRow> grid_decomposition_sweep(
    std::int64_t ranks, std::int64_t pe_count, std::int64_t strong_rocks,
    std::uint64_t seed, std::int64_t iterations) {
  ULBA_REQUIRE(ranks > 1, "grid sweep needs more than one rank");
  const lb::GridShape shape = lb::resolve_grid_shape(ranks, 0, 0);
  const std::string shape_label =
      std::to_string(shape.rows) + "x" + std::to_string(shape.cols);

  erosion::AppConfig base = scaled_app_config(
      pe_count, strong_rocks, erosion::Method::kUlba, seed);
  if (iterations > 0) base.iterations = iterations;
  base.rng_kind = erosion::RngKind::kCounter;
  // A handful of rebalances over the run, so the damped tuner gets enough
  // steps to walk the boundaries toward balance within its per-step cap.
  base.lb_period = std::max<std::int64_t>(1, base.iterations / 6);

  // The trigger schedule shapes the trajectory, so each policy compares
  // against a ranks = 1 reference with the same schedule (the tuner only
  // moves grid boundaries — it shares the periodic reference).
  erosion::AppConfig static_ref_cfg = base;
  static_ref_cfg.trigger_mode = erosion::TriggerMode::kNever;
  const erosion::RunResult static_ref =
      erosion::ErosionApp(static_ref_cfg).run();
  erosion::AppConfig periodic_ref_cfg = base;
  periodic_ref_cfg.trigger_mode = erosion::TriggerMode::kPeriodic;
  const erosion::RunResult periodic_ref =
      erosion::ErosionApp(periodic_ref_cfg).run();

  struct Cell {
    const char* decomp;
    const char* policy;
    erosion::TriggerMode trigger;
    bool tuner;
  };
  const Cell cells[] = {
      {"stripes", "static", erosion::TriggerMode::kNever, false},
      {"stripes", "recut", erosion::TriggerMode::kPeriodic, false},
      {"grid", "static", erosion::TriggerMode::kNever, false},
      {"grid", "recut", erosion::TriggerMode::kPeriodic, false},
      {"grid", "tuner", erosion::TriggerMode::kPeriodic, true},
  };

  std::vector<GridDecompRow> rows;
  for (const Cell& cell : cells) {
    erosion::AppConfig cfg = base;
    cfg.ranks = ranks;
    cfg.decomp = cell.decomp;
    cfg.trigger_mode = cell.trigger;
    cfg.tuner = cell.tuner;
    const erosion::RunResult run = erosion::ErosionApp(cfg).run();
    const erosion::RunResult& reference =
        cell.trigger == erosion::TriggerMode::kNever ? static_ref
                                                     : periodic_ref;
    GridDecompRow row;
    row.decomp = cell.decomp;
    row.policy = cell.policy;
    row.shape = cfg.decomp == "grid" ? shape_label : "-";
    row.ranks = ranks;
    row.imbalance = run.rank_fractional_imbalance;
    row.tuner_iterations = run.grid_tuner_iterations;
    row.lb_count = run.lb_count;
    row.discs_moved = run.rank_discs_moved;
    row.matches_serial = run_results_bit_equal(run, reference) ? 1 : 0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<AnticipationReactiveRow> anticipation_vs_reactive_sweep(
    std::int64_t ranks, std::int64_t pe_count, std::int64_t strong_rocks,
    std::uint64_t seed, std::int64_t iterations,
    std::span<const double> noise_levels, double ns_scale,
    double fli_threshold) {
  ULBA_REQUIRE(ranks > 1, "the anticipation sweep runs measured-time mode "
                          "(ranks > 1)");
  ULBA_REQUIRE(!noise_levels.empty(), "need at least one noise level");

  // Shrunk geometry: every cell burns real CPU for `iterations` iterations,
  // and the table holds |noise_levels| x 3 cells.
  erosion::AppConfig base =
      scaled_app_config(pe_count, strong_rocks, erosion::Method::kUlba, seed);
  base.columns_per_pe = 64;
  base.rows = 96;
  base.rock_radius = 24;
  base.iterations = iterations > 0 ? iterations : 60;
  base.ranks = ranks;
  base.measure_time = true;
  base.ns_scale = ns_scale;
  base.fli_threshold = fli_threshold;

  struct Variant {
    const char* label;
    erosion::Method method;
    erosion::TriggerSource source;
    erosion::TriggerCriterion criterion;
  };
  // The paper's claim, falsifiable on real hardware: scheduling LB ahead of
  // the imbalance (ULBA, model clock) vs. reacting to the imbalance the
  // hardware already shows (standard method, measured clock) — the
  // Mohammed-et-al.-style reactive baselines.
  const Variant variants[] = {
      {"anticipation", erosion::Method::kUlba, erosion::TriggerSource::kModel,
       erosion::TriggerCriterion::kDegradation},
      {"reactive-deg", erosion::Method::kStandard,
       erosion::TriggerSource::kMeasured,
       erosion::TriggerCriterion::kDegradation},
      {"reactive-fli", erosion::Method::kStandard,
       erosion::TriggerSource::kMeasured, erosion::TriggerCriterion::kFli},
  };

  std::vector<AnticipationReactiveRow> rows;
  for (const double noise : noise_levels) {
    for (const Variant& v : variants) {
      erosion::AppConfig cfg = base;
      cfg.method = v.method;
      cfg.trigger_source = v.source;
      cfg.trigger_criterion = v.criterion;
      cfg.mt_noise = noise;
      const erosion::RunResult run = erosion::ErosionApp(cfg).run();
      AnticipationReactiveRow row;
      row.variant = v.label;
      row.noise = noise;
      row.wall_seconds = run.measured.wall_seconds;
      row.compute_seconds = run.measured.compute_seconds;
      row.lb_seconds = run.measured.lb_seconds;
      row.utilization = run.measured.utilization;
      row.lb_count = run.lb_count;
      row.mean_fli =
          run.measured.fli.empty() ? 0.0 : support::mean(run.measured.fli);
      row.eroded_cells = run.eroded_cells;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace ulba::cli
