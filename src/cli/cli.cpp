#include "cli/cli.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "cli/args.hpp"
#include "cli/scenarios.hpp"
#include "support/require.hpp"

namespace ulba::cli {

namespace {

struct Subcommand {
  const char* name;
  const char* summary;
  /// Switch flags (no value) the subcommand accepts, besides --help.
  std::set<std::string> switches;
  std::function<int(const FlagMap&, std::ostream&)> scenario;
  std::function<std::string()> help_body;
};

std::string quickstart_help() {
  return "Evaluate the analytic model once: Menon tau, ULBA [sigma-, "
         "sigma+],\nand total time standard-vs-ULBA (mini Figure 3), plus a "
         "mini erosion run.\n\n"
         "options:\n"
         "  --threads <int>      host threads stepping the mini erosion run "
         "[1]\n"
         "  --shards <int>       host shards stepping the mini erosion run "
         "[1]\n"
         "  --ranks <int>        SPMD ranks stepping the mini erosion run "
         "over the\n"
         "                       message-passing runtime (exclusive with "
         "--shards) [1]\n"
         "  --partitioner <name> shard/stripe cutter: greedy|rcb|optimal|"
         "stripe [greedy]\n"
         "  --seed <int>         placement seed of the mini erosion run "
         "[11]\n\n" +
         model_param_help(quickstart_defaults());
}

std::string erosion_help() {
  return "Run the paper's erosion application (Section IV-B) under the "
         "standard\nLB method and under ULBA, same seed, and compare.\n\n"
         "options:\n"
         "  --mt                   measure real wall clock instead of only "
         "the\n"
         "                         virtual-time BSP model: alone, the legacy "
         "thread-\n"
         "                         backed app; with --ranks, the measured-"
         "time\n"
         "                         distributed mode (per-rank CPU burn + "
         "steady_clock\n"
         "                         iteration/LB/migration times, dynamics "
         "bit-identical\n"
         "                         to the model-time run)\n"
         "  --pes <int>            processing elements   [32; 8 with --mt]\n"
         "  --strong <int>         strongly erodible rocks [1]\n"
         "  --seed <int>           placement seed          [11]\n"
         "  --iterations <int>     iterations              [180; 80 with "
         "--mt]\n"
         "  --alpha <0..1>         ULBA fraction           [0.4]\n"
         "  --columns-per-pe <int> stripe width            [256; 96 with "
         "--mt]\n"
         "  --rows <int>           domain height           [384; 96 with "
         "--mt]\n"
         "  --rock-radius <int>    disc radius             [96; 24 with "
         "--mt]\n"
         "  --threads <int>        host threads stepping the dynamics "
         "(per-disc\n"
         "                         RNG substreams; not combinable with "
         "--mt)  [1]\n"
         "  --shards <int>         host shards stepping the dynamics "
         "(bit-identical\n"
         "                         to the serial run; not combinable with "
         "--mt)  [1]\n"
         "  --ranks <int>          SPMD ranks stepping the dynamics over the "
         "message-\n"
         "                         passing runtime: per-rank column stripes, "
         "real halo/\n"
         "                         migration messages, bit-identical to the "
         "serial run\n"
         "                         (exclusive with --shards and --mt)  [1]\n"
         "  --partitioner <name>   disc-to-shard/rank + LB cutting "
         "algorithm:\n"
         "                         greedy|rcb|optimal|stripe      [greedy]\n"
         "  --exchange <mode>      per-step exchange of the distributed "
         "stepper:\n"
         "                         neighbor (halo neighbors + one reduce/"
         "broadcast)\n"
         "                         or alltoall (O(ranks^2) reference)  "
         "[neighbor]\n"
         "  --decomp <name>        decomposition of the distributed stepper "
         "(--ranks):\n"
         "                         stripes (1D column stripes) or grid (2D "
         "tile grid\n"
         "                         with edge+corner halos)  [stripes]\n"
         "  --grid <RxC>           tile grid shape, e.g. 2x2; R*C must equal "
         "--ranks\n"
         "                         (--decomp grid)  [near-square "
         "factorization]\n"
         "  --tuner                rebalance grid boundaries with the damped "
         "per-\n"
         "                         dimension tuner instead of a fresh recut "
         "(--decomp\n"
         "                         grid)\n"
         "  --tuner-cap <r>        max boundary movement per rebalance, as a "
         "fraction\n"
         "                         of the adjacent tile extent (--tuner)  "
         "[0.05]\n"
         "  --tuner-maxiter <int>  tuner refinement passes per rebalance "
         "(--tuner) [8]\n"
         "  --tuner-tol <r>        max/avg band imbalance the tuner accepts "
         "as\n"
         "                         balanced (--tuner)  [1.02]\n"
         "  --ns-scale <r>         burn steps per unit workload (--mt)   "
         "[4.0]\n"
         "  --migration-scale <r>  burn factor per migrated byte (--mt)  "
         "[8.0]\n"
         "  --noise <0..1>         multiplicative burn noise amplitude, "
         "position-\n"
         "                         addressed per (rank, iteration) (--mt "
         "with\n"
         "                         --ranks)  [0]\n"
         "  --trigger-source <s>   clock feeding the LB trigger: model "
         "(virtual\n"
         "                         time, bit-identical schedule) or measured "
         "(real\n"
         "                         steady_clock signals decide; --ranks "
         "--mt)\n"
         "                         [model]\n"
         "  --trigger-criterion <c> measured signal the trigger fires on:\n"
         "                         degradation (Algorithm 1 on iteration "
         "maxima)\n"
         "                         or fli ((max-avg)/avg of per-rank burn "
         "times)\n"
         "                         (--trigger-source measured)  "
         "[degradation]\n"
         "  --fli-threshold <r>    fli level that fires the trigger\n"
         "                         (--trigger-criterion fli)  [0.25]\n";
}

std::string anticipation_help() {
  return "Falsify the paper's core claim on real hardware: ULBA-scheduled\n"
         "anticipatory LB (model trigger) vs. reactive measured-trigger LB\n"
         "(degradation and fli criteria), in measured-time mode under "
         "injected\nburn noise at levels {0, noise/2, noise}, with a "
         "wall/utilization/\nLB-count win/loss table. Wall numbers are real "
         "and noisy.\n\n"
         "options:\n"
         "  --ranks <int>          SPMD ranks (measured-time mode)   [4]\n"
         "  --pes <int>            processing elements               [8]\n"
         "  --strong <int>         strongly erodible rocks           [1]\n"
         "  --seed <int>           placement seed                    [11]\n"
         "  --iterations <int>     erosion iterations                [60]\n"
         "  --noise <0..1>         peak burn-noise amplitude         [0.4]\n"
         "  --ns-scale <r>         burn steps per unit workload      [2.0]\n"
         "  --fli-threshold <r>    reactive fli firing level         "
         "[0.25]\n";
}

std::string intervals_help() {
  return "Sweep alpha and report sigma-/sigma+/schedule/total time, with "
         "the\nexact DP optimum as the reference line.\n\n"
         "options:\n"
         "  --alpha-steps <int>  sweep resolution (alpha = i/steps) [10]\n"
         "  --dp off             skip the O(gamma^2) DP reference\n\n" +
         model_param_help(intervals_defaults());
}

std::string alpha_tuning_help() {
  return "Fine alpha sweep: best alpha for the model and the gain landscape\n"
         "vs. the standard method (analytic Figure-5 counterpart).\n\n"
         "options:\n"
         "  --alpha-min <0..1>   sweep start [0.05]\n"
         "  --alpha-max <0..1>   sweep end   [1.0]\n"
         "  --alpha-step <r>     sweep step  [0.05]\n\n" +
         model_param_help(quickstart_defaults());
}

std::string gossip_help() {
  return "WIR-gossip ablation (Section III-C): dissemination latency per "
         "fanout,\nend-to-end erosion degradation and detection lag vs. the "
         "centralized\nzero-cost oracle, and the WIR-smoothing sweep.\n\n"
         "options:\n"
         "  --pes <int>         processing elements            [32]\n"
         "  --strong <int>      strongly erodible rocks        [1]\n"
         "  --seed <int>        base seed                      [11]\n"
         "  --seeds <int>       seeds per configuration        [3]\n"
         "  --iterations <int>  erosion iterations             [120]\n"
         "  --alpha <0..1>      ULBA fraction                  [0.4]\n"
         "  --trials <int>      latency-table trials           [10]\n";
}

std::string dynamic_alpha_help() {
  return "Dynamic alpha (E-X4, the paper's Section-V future-work item): "
         "per-interval\nalpha driven by the gossip-estimated overloading "
         "fraction — the fraction\nheuristic and the model-grid policy — "
         "vs. fixed alpha and vs. the\ncentralized oracle, plus the exact "
         "DP bound and a per-interval alpha trace.\n\n"
         "options:\n"
         "  --pes <int>         processing elements               [32]\n"
         "  --seed <int>        base seed                         [11]\n"
         "  --seeds <int>       seeds per configuration           [3]\n"
         "  --iterations <int>  erosion iterations (0 = default)  [0]\n"
         "  --alpha <0..1>      base/fixed ULBA fraction          [0.6]\n"
         "  --rocks <int>       largest strong-rock count swept   [6]\n"
         "  --instances <int>   DP-bound Table-II instances       [60]\n";
}

std::string interval_quality_help() {
  return "Figure 2: quality of the sigma+ LB intervals vs. the heuristic "
         "search\n(simulated annealing) on random Table-II instances, with "
         "the exact DP\noptimum bounding both methods.\n\n"
         "options:\n"
         "  --instances <int>   Table-II instances sampled      [200]\n"
         "  --sa-steps <int>    annealing steps per instance    [5000]\n"
         "  --seed <int>        sampling seed                   [1215]\n";
}

std::string instances_help() {
  return "Table-II-style sweep over the random-instance families (one per\n"
         "pinned PE count): win/loss/gain statistics of ULBA vs. the "
         "standard\nmethod, at the drawn alpha and at the per-instance best "
         "alpha.\n\n"
         "options:\n"
         "  --samples <int>         instances per PE family        [200]\n"
         "  --seed <int>            sampling seed                  "
         "[20190916]\n"
         "  --alpha-grid <int>      best-alpha grid resolution     [20]\n"
         "  --ranks <int>           fan the sweep over the schedule service: "
         "rank 0\n"
         "                          serves, ranks 1..N-1 submit their "
         "interleaved\n"
         "                          sample shares as ScheduleRequests "
         "(statistics\n"
         "                          bit-identical to the serial sweep)  [1]\n"
         "  --serve-batch <int>     server mailbox batch limit (--ranks)  "
         "[32]\n"
         "  --cache-capacity <int>  service memo-cache capacity (--ranks)  "
         "[4096]\n"
         "  --cache-shards <int>    service memo-cache shards (--ranks)  "
         "[8]\n";
}

std::string serve_help() {
  return "Run the schedule service under deterministic multi-client "
         "traffic:\nrank 0 serves ScheduleRequests from a batched mailbox "
         "loop through the\nsharded memo cache; client ranks replay a seeded "
         "query mix over a pool\nof `--distinct` Table-II instances and "
         "check every ScheduleResponse\nbit-for-bit against a cold "
         "evaluation of the same request (provenance\nmasked). Reports "
         "hit-rate/throughput headline metrics and PASS/FAIL\nverdicts; "
         "wall numbers are real. Exit 0 iff the verdicts pass.\n\n"
         "options:\n"
         "  --clients <int>         client ranks (world = clients + 1)  "
         "[4]\n"
         "  --requests <int>        requests per client            [64]\n"
         "  --distinct <int>        request-pool size (repeats become "
         "cache\n"
         "                          hits)                          [16]\n"
         "  --serve-batch <int>     server mailbox batch limit     [32]\n"
         "  --cache-capacity <int>  memo-cache capacity            [4096]\n"
         "  --cache-shards <int>    memo-cache shards              [8]\n"
         "  --mode <name>           evaluation mode: grid (sigma+ sweep) or "
         "dp\n"
         "                          (exact DP + free-form alpha)   [grid]\n"
         "  --alpha-grid <int>      alpha grid resolution          [10]\n"
         "  --seed <int>            traffic seed                   [11]\n";
}

const std::vector<Subcommand>& registry() {
  static const std::vector<Subcommand> kSubcommands{
      {"quickstart",
       "analytic model in a nutshell: tau vs. [sigma-, sigma+] and the gain",
       {},
       run_quickstart,
       quickstart_help},
      {"erosion",
       "the erosion application, standard vs. ULBA (--mt: real threads)",
       {"mt", "tuner"},
       run_erosion,
       erosion_help},
      {"intervals",
       "alpha sweep of sigma-/sigma+/schedules with the DP optimum",
       {},
       run_intervals,
       intervals_help},
      {"alpha-tuning",
       "fine alpha sweep: best alpha and the gain landscape",
       {},
       run_alpha_tuning,
       alpha_tuning_help},
      {"gossip",
       "WIR-gossip ablation: latency, fanout impact vs. the oracle, "
       "smoothing",
       {},
       run_gossip,
       gossip_help},
      {"instances",
       "Table-II instance families: ULBA win/loss/gain vs. the standard "
       "method",
       {},
       run_instances,
       instances_help},
      {"dynamic-alpha",
       "E-X4: per-interval alpha from the gossip-estimated overloading "
       "fraction",
       {},
       run_dynamic_alpha,
       dynamic_alpha_help},
      {"interval-quality",
       "Figure 2: sigma+ intervals vs. the heuristic search, DP-bounded",
       {},
       run_interval_quality,
       interval_quality_help},
      {"serve",
       "the schedule service under multi-client traffic: hit rate, "
       "throughput, verdicts",
       {},
       run_serve,
       serve_help},
      {"anticipation",
       "anticipatory ULBA vs. reactive measured-trigger LB under burn noise",
       {},
       run_anticipation,
       anticipation_help},
  };
  return kSubcommands;
}

const Subcommand& find_subcommand(const std::string& name) {
  for (const auto& sub : registry())
    if (name == sub.name) return sub;
  support::throw_requirement("known subcommand", __FILE__, __LINE__,
                             "unknown subcommand '" + name +
                                 "' (run `ulba_cli help` for the list)");
}

}  // namespace

std::string usage() {
  std::ostringstream os;
  os << "ulba_cli — unified scenario driver for the ULBA reproduction\n"
     << "(Boulmier et al., \"On the Benefits of Anticipating Load "
        "Imbalance\", CLUSTER 2019)\n\n"
     << "usage: ulba_cli <subcommand> [--flag value | --flag=value]...\n\n"
     << "subcommands:\n";
  std::size_t width = std::string("help").size();
  for (const auto& sub : registry())
    width = std::max(width, std::string(sub.name).size());
  for (const auto& sub : registry())
    os << "  " << sub.name
       << std::string(width + 2 - std::string(sub.name).size(), ' ')
       << sub.summary << "\n";
  os << "  help" << std::string(width - 2, ' ') << "this text\n\n"
     << "`ulba_cli <subcommand> --help` documents the subcommand's flags.\n";
  return os.str();
}

std::string subcommand_help(const std::string& command) {
  const Subcommand& sub = find_subcommand(command);
  std::ostringstream os;
  os << "usage: ulba_cli " << sub.name << " [options]\n\n" << sub.help_body();
  return os.str();
}

std::vector<std::string> subcommand_names() {
  std::vector<std::string> names;
  for (const auto& sub : registry()) names.emplace_back(sub.name);
  return names;
}

int run(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    out << usage();
    return args.empty() ? 2 : 0;
  }
  const Subcommand& sub = find_subcommand(args[0]);
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  for (const auto& token : rest) {
    if (token == "--help" || token == "-h") {
      out << subcommand_help(sub.name);
      return 0;
    }
  }
  const FlagMap flags(rest, sub.switches);
  return sub.scenario(flags, out);
}

}  // namespace ulba::cli
