#include "cli/validate.hpp"

#include <utility>

#include "support/require.hpp"

namespace ulba::cli {

ConfigValidator& ConfigValidator::record(bool ok, const char* condition,
                                         const char* file, int line,
                                         std::string flag,
                                         std::string message) {
  if (!ok) {
    ConfigError error;
    error.flag = std::move(flag);
    error.condition = condition;
    error.file = file;
    error.line = line;
    error.message = std::move(message);
    errors_.push_back(std::move(error));
  }
  return *this;
}

void ConfigValidator::raise_first() const {
  if (errors_.empty()) return;
  const ConfigError& first = errors_.front();
  support::throw_requirement(first.condition.c_str(), first.file, first.line,
                             first.message);
}

}  // namespace ulba::cli
