// Thin adapter from argv to ulba::cli::run().  Usage errors (ULBA_REQUIRE
// throws std::invalid_argument) exit with code 2 and a hint; internal
// invariant failures (std::logic_error) exit with code 3.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return ulba::cli::run(args, std::cout);
  } catch (const std::invalid_argument& e) {
    std::cerr << "ulba_cli: " << e.what() << "\n"
              << "run `ulba_cli help` for usage.\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "ulba_cli: internal error: " << e.what() << "\n";
    return 3;
  }
}
