// Flag parsing for the unified `ulba_cli` scenario driver.
//
// The grammar is deliberately small:  `ulba_cli <subcommand> [--flag value |
// --flag=value | --switch]…`.  Every subcommand declares the flags it
// accepts; anything else is rejected via ULBA_REQUIRE (std::invalid_argument)
// so misuse is reportable and testable.  The ModelParams flags (--P, --N,
// --gamma, …) are shared by all analytic-model scenarios so that future
// scenarios plug into one parameter vocabulary instead of growing ad-hoc
// argv conventions per `examples/` main.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/params.hpp"

namespace ulba::cli {

/// Parsed `--flag value` / `--flag=value` pairs.  Bare switches (e.g.
/// `--help`, `--mt`) are stored with an empty value.
class FlagMap {
 public:
  /// Parse everything after the subcommand.  `switches` lists the flags that
  /// take no value; all other `--flags` consume the following token (or the
  /// text after `=`).  Throws std::invalid_argument on a positional token or
  /// a valueless non-switch flag.
  FlagMap(const std::vector<std::string>& args,
          const std::set<std::string>& switches);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters: return `fallback` when the flag is absent; throw
  /// std::invalid_argument when the value does not parse or (for the checked
  /// variants) is out of domain.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name,
                                       std::uint64_t fallback) const;

  /// Throws std::invalid_argument when a parsed flag is not in `known` —
  /// call once per subcommand after pulling the values it understands.
  void require_known(const std::set<std::string>& known) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Names of the shared ModelParams flags, for building per-subcommand
/// `known` sets: {"P", "N", "gamma", "w0", "a", "m", "alpha", "omega",
/// "lb-cost"}.
[[nodiscard]] const std::set<std::string>& model_param_flags();

/// Overlay the shared ModelParams flags onto `defaults` and validate the
/// result (throws std::invalid_argument on a bad combination).
[[nodiscard]] core::ModelParams parse_model_params(
    const FlagMap& flags, const core::ModelParams& defaults);

/// One line per ModelParams flag, for subcommand help texts.
[[nodiscard]] std::string model_param_help(const core::ModelParams& defaults);

}  // namespace ulba::cli
