// Consolidated CLI configuration validation.
//
// The subcommand handlers used to validate their flag combinations through
// bare ULBA_REQUIRE if-ladders, which throw on the first violation and keep
// no structure. ConfigValidator collects EVERY violation as a structured
// ConfigError (offending flag, stringified predicate, source location,
// message) and only then raises — `raise_first()` routes the first recorded
// error through support::throw_requirement, so the exception type and the
// "requirement violated: (<predicate>) at <file>:<line> — <message>" text
// the CLI prints at exit 2 are exactly what the old ladders produced.
//
// Use the ULBA_CHECK_FLAG macro so the predicate text is captured verbatim:
//
//   ConfigValidator v;
//   ULBA_CHECK_FLAG(v, ranks >= 1 && ranks <= 64, "--ranks",
//                   "--ranks must be in [1, 64]");
//   v.raise_first();
#pragma once

#include <string>
#include <vector>

namespace ulba::cli {

/// One recorded validation failure.
struct ConfigError {
  std::string flag;       ///< the offending CLI flag (e.g. "--ranks")
  std::string condition;  ///< the stringified predicate that failed
  const char* file = "";
  int line = 0;
  std::string message;
};

/// Collects flag-validation failures instead of throwing at the first one.
class ConfigValidator {
 public:
  /// Record `condition`/`flag`/`message` when `ok` is false. Returns *this
  /// so checks can chain. Prefer the ULBA_CHECK_FLAG macro, which stringifies
  /// the predicate and captures the source location.
  ConfigValidator& record(bool ok, const char* condition, const char* file,
                          int line, std::string flag, std::string message);

  [[nodiscard]] bool ok() const noexcept { return errors_.empty(); }
  [[nodiscard]] const std::vector<ConfigError>& errors() const noexcept {
    return errors_;
  }

  /// Throw std::invalid_argument for the first recorded error (the ladder
  /// order), formatted exactly like ULBA_REQUIRE. No-op when ok().
  void raise_first() const;

 private:
  std::vector<ConfigError> errors_;
};

}  // namespace ulba::cli

#define ULBA_CHECK_FLAG(validator, cond, flag, msg) \
  (validator).record((cond), #cond, __FILE__, __LINE__, (flag), (msg))
