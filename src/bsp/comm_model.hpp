// α-β (latency/bandwidth) communication cost model.
//
// The paper ran on a cluster; we substitute a virtual-time machine (see
// DESIGN.md §3). Message costs follow the classic postal model:
//
//     t(b bytes) = latency + b / bandwidth
//
// and tree-based collectives pay ⌈log₂ P⌉ rounds. The constants default to
// conservative commodity-cluster values (1 µs latency, 10 GB/s) and are knobs
// of every experiment binary, so LB cost vs. iteration cost can be placed in
// the paper's regime.
#pragma once

#include <cstdint>

namespace ulba::bsp {

struct CommModel {
  double latency_s = 1e-6;        ///< per-message latency α [seconds]
  double bandwidth_Bps = 10e9;    ///< bandwidth β⁻¹ [bytes/second]

  /// Point-to-point cost of one b-byte message.
  [[nodiscard]] double p2p(std::int64_t bytes) const;

  /// Binomial-tree broadcast of b bytes to P ranks.
  [[nodiscard]] double broadcast(std::int64_t bytes, std::int64_t p) const;

  /// Gather of one b-byte contribution from each of P ranks (root pays the
  /// serialized receive volume).
  [[nodiscard]] double gather(std::int64_t bytes_each, std::int64_t p) const;

  /// All-reduce of b bytes across P ranks (recursive doubling).
  [[nodiscard]] double allreduce(std::int64_t bytes, std::int64_t p) const;

  /// Data migration where the busiest PE sends/receives `max_bytes_on_a_pe`
  /// bytes — migrations proceed in parallel, the bottleneck PE dominates.
  [[nodiscard]] double migrate(std::int64_t max_bytes_on_a_pe) const;

  void validate() const;
};

/// ⌈log₂ p⌉ for p ≥ 1.
[[nodiscard]] std::int64_t ceil_log2(std::int64_t p);

}  // namespace ulba::bsp
