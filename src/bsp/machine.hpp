// Bulk-synchronous virtual-time machine.
//
// The paper's application is bulk-synchronous: every iteration, all PEs
// compute their share and synchronize. On such an application the parallel
// time of an iteration is exactly max_p(w_p/ω) plus any synchronized
// communication — quantities this machine computes deterministically from
// modeled per-PE workloads, letting us "run" P = 32 … 2048 PEs on one node
// (the DESIGN.md §3 substitution for the paper's Baobab cluster).
//
// The machine also tracks the paper's Figure-4b metric: average PE
// utilization, i.e. mean(w_p) / max(w_p) per iteration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bsp/comm_model.hpp"

namespace ulba::bsp {

/// Report of one superstep (= one application iteration).
struct StepReport {
  double seconds = 0.0;       ///< max compute + synchronized comm
  double utilization = 0.0;   ///< mean(compute) / max(compute), 1 = balanced
  std::int64_t slowest_pe = 0;
};

class Machine {
 public:
  Machine(std::int64_t pe_count, double flops_per_pe, CommModel comm = {});

  [[nodiscard]] std::int64_t pe_count() const noexcept { return pe_count_; }
  [[nodiscard]] double flops() const noexcept { return flops_; }
  [[nodiscard]] const CommModel& comm() const noexcept { return comm_; }

  /// Execute one bulk-synchronous iteration whose PE p performs
  /// `workloads[p]` FLOP, plus `sync_comm_seconds` of synchronized
  /// communication (e.g. the per-iteration gossip push).
  StepReport run_superstep(std::span<const double> workloads,
                           double sync_comm_seconds = 0.0);

  /// Charge a globally synchronizing special phase (an LB step: partition
  /// computation + broadcast + migration) of the given duration.
  void charge_global(double seconds);

  /// Virtual wall-clock since construction.
  [[nodiscard]] double elapsed_seconds() const noexcept { return elapsed_; }

  /// Σ over PEs of busy compute seconds (excludes waits and comm).
  [[nodiscard]] double busy_pe_seconds() const noexcept { return busy_; }

  /// Machine-wide average utilization: busy / (P · elapsed).
  [[nodiscard]] double average_utilization() const noexcept;

  [[nodiscard]] std::int64_t supersteps() const noexcept { return steps_; }

  void reset();

 private:
  std::int64_t pe_count_;
  double flops_;
  CommModel comm_;
  double elapsed_ = 0.0;
  double busy_ = 0.0;
  std::int64_t steps_ = 0;
};

}  // namespace ulba::bsp
