#include "bsp/comm_model.hpp"

#include "support/require.hpp"

namespace ulba::bsp {

std::int64_t ceil_log2(std::int64_t p) {
  ULBA_REQUIRE(p >= 1, "log2 of non-positive count");
  std::int64_t bits = 0;
  std::int64_t v = 1;
  while (v < p) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

void CommModel::validate() const {
  ULBA_REQUIRE(latency_s >= 0.0, "latency must be non-negative");
  ULBA_REQUIRE(bandwidth_Bps > 0.0, "bandwidth must be positive");
}

double CommModel::p2p(std::int64_t bytes) const {
  ULBA_REQUIRE(bytes >= 0, "negative message size");
  return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
}

double CommModel::broadcast(std::int64_t bytes, std::int64_t p) const {
  return static_cast<double>(ceil_log2(p)) * p2p(bytes);
}

double CommModel::gather(std::int64_t bytes_each, std::int64_t p) const {
  ULBA_REQUIRE(p >= 1, "gather needs at least one rank");
  ULBA_REQUIRE(bytes_each >= 0, "negative message size");
  // Binomial-tree gather: ⌈log₂P⌉ latency terms; the root still receives the
  // full (P−1)·b payload volume (Σ_k 2^(k−1)·b).
  return static_cast<double>(ceil_log2(p)) * latency_s +
         static_cast<double>(p - 1) * static_cast<double>(bytes_each) /
             bandwidth_Bps;
}

double CommModel::allreduce(std::int64_t bytes, std::int64_t p) const {
  return static_cast<double>(ceil_log2(p)) * p2p(bytes);
}

double CommModel::migrate(std::int64_t max_bytes_on_a_pe) const {
  return max_bytes_on_a_pe > 0 ? p2p(max_bytes_on_a_pe) : 0.0;
}

}  // namespace ulba::bsp
