#include "bsp/machine.hpp"

#include <algorithm>
#include <numeric>

#include "support/require.hpp"

namespace ulba::bsp {

Machine::Machine(std::int64_t pe_count, double flops_per_pe, CommModel comm)
    : pe_count_(pe_count), flops_(flops_per_pe), comm_(comm) {
  ULBA_REQUIRE(pe_count >= 1, "machine needs at least one PE");
  ULBA_REQUIRE(flops_per_pe > 0.0, "PE speed must be positive");
  comm_.validate();
}

StepReport Machine::run_superstep(std::span<const double> workloads,
                                  double sync_comm_seconds) {
  ULBA_REQUIRE(workloads.size() == static_cast<std::size_t>(pe_count_),
               "need one workload per PE");
  ULBA_REQUIRE(sync_comm_seconds >= 0.0, "comm time must be non-negative");

  double max_w = 0.0;
  double sum_w = 0.0;
  std::int64_t slowest = 0;
  for (std::size_t p = 0; p < workloads.size(); ++p) {
    ULBA_REQUIRE(workloads[p] >= 0.0, "workloads must be non-negative");
    sum_w += workloads[p];
    if (workloads[p] > max_w) {
      max_w = workloads[p];
      slowest = static_cast<std::int64_t>(p);
    }
  }

  StepReport report;
  report.seconds = max_w / flops_ + sync_comm_seconds;
  report.utilization =
      max_w > 0.0 ? (sum_w / static_cast<double>(pe_count_)) / max_w : 1.0;
  report.slowest_pe = slowest;

  elapsed_ += report.seconds;
  busy_ += sum_w / flops_;
  ++steps_;
  return report;
}

void Machine::charge_global(double seconds) {
  ULBA_REQUIRE(seconds >= 0.0, "charged time must be non-negative");
  elapsed_ += seconds;
}

double Machine::average_utilization() const noexcept {
  if (elapsed_ <= 0.0) return 1.0;
  return busy_ / (static_cast<double>(pe_count_) * elapsed_);
}

void Machine::reset() {
  elapsed_ = 0.0;
  busy_ = 0.0;
  steps_ = 0;
}

}  // namespace ulba::bsp
