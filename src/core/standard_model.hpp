// The standard load-balancing method's analytic cost model — paper §II-C.
//
// After an LB step at iteration LBp the whole workload Wtot(LBp) is split
// evenly; every PE then gains `a` per iteration, and the N overloading PEs an
// extra `m`. The parallel time of the t-th iteration after the step is
// dominated by an overloading PE (Eq. (2)):
//
//     T_std(LBp, t) = (1/ω) · [ Wtot(LBp)/P + (m + a)·t ]
//
// Interval and total times follow Eqs. (3)–(4). The interval sum has the
// closed form used here (arithmetic series), which the unit tests check
// against brute-force summation.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace ulba::core {

/// Eq. (2): seconds taken by the t-th iteration (t = 0, 1, …) after an LB
/// step performed at iteration `lb_prev`.
[[nodiscard]] double standard_iteration_time(const ModelParams& p,
                                             std::int64_t lb_prev,
                                             std::int64_t t);

/// Compute-only time of the interval [lb_prev, lb_next): the sum of Eq. (2)
/// over t = 0 … (lb_next − lb_prev − 1), in closed form. Does NOT include the
/// LB cost C — Eq. (3) adds C once per interval; the schedule evaluator owns
/// that bookkeeping (the initial, implicitly balanced interval is free).
[[nodiscard]] double standard_interval_compute_time(const ModelParams& p,
                                                    std::int64_t lb_prev,
                                                    std::int64_t lb_next);

}  // namespace ulba::core
