#include "core/detector.hpp"

#include "support/require.hpp"
#include "support/stats.hpp"

namespace ulba::core {

OverloadDetector::OverloadDetector(double threshold) : threshold_(threshold) {
  ULBA_REQUIRE(threshold > 0.0, "z-score threshold must be positive");
}

bool OverloadDetector::is_overloading(double own_wir,
                                      std::span<const double> all) const {
  ULBA_REQUIRE(!all.empty(), "detector needs a non-empty WIR population");
  return support::z_score(own_wir, all) > threshold_;
}

std::vector<bool> OverloadDetector::flags(std::span<const double> all) const {
  std::vector<bool> out(all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    out[i] = is_overloading(all[i], all);
  return out;
}

std::int64_t OverloadDetector::count_overloading(
    std::span<const double> all) const {
  std::int64_t n = 0;
  for (double w : all)
    if (is_overloading(w, all)) ++n;
  return n;
}

}  // namespace ulba::core
