// Random application instances — Table II of the paper.
//
// Every model-level experiment (Figures 2 and 3) draws application instances
// from the distributions of Table II:
//
//   P        uniform over {256, 512, 1024, 2048}
//   N        P·v,               v ~ U(0.01, 0.2)
//   γ        100
//   Wtot(0)  U(52·10⁷·P, 1165·10⁷·P)          [52–1165 FLOP × 10⁷ cells/PE]
//   ΔW       (Wtot(0)/P)·x,     x ~ U(0.01, 0.3)
//   a        (ΔW/P)·(1−y),      y ~ U(0.8, 1.0)
//   m        (ΔW/N)·y
//   α        U(0, 1)
//   C        (Wtot(0)/P)·z,     z ~ U(0.1, 3.0)   [FLOP; seconds = /ω]
//
// ω is fixed to 1 GFLOPS as in the paper's simulations. Note the identity
// ΔW = a·P + m·N holds exactly by construction. The generator optionally pins
// P, the overloading fraction N/P, or α — Figure 3 sweeps those externally.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/params.hpp"
#include "support/rng.hpp"

namespace ulba::core {

/// The four PE counts Table II samples from.
inline constexpr std::array<std::int64_t, 4> kTableIIPeCounts = {256, 512,
                                                                 1024, 2048};

/// A sampled application instance: the model parameters plus the raw draws,
/// kept for distribution-validation tests (bench_table2_instances).
struct Instance {
  ModelParams params;
  double v = 0.0;  ///< overloading fraction draw (N = P·v)
  double x = 0.0;  ///< ΔW draw (fraction of per-PE workload)
  double y = 0.0;  ///< growth split draw (m gets y, a gets 1−y)
  double z = 0.0;  ///< LB-cost draw (fraction of one iteration's work)
};

/// Configuration for the Table-II sampler. Unset optionals mean "draw from
/// the paper's distribution".
struct InstanceOptions {
  std::int64_t gamma = 100;
  double omega = 1e9;  ///< 1 GFLOPS, as in the paper's simulations
  std::optional<std::int64_t> pin_p;
  std::optional<double> pin_overloading_fraction;  ///< pins N = max(1,⌊P·f⌉)
  std::optional<double> pin_alpha;
};

/// Samples instances per Table II; deterministic for a given Rng stream.
class InstanceGenerator {
 public:
  explicit InstanceGenerator(InstanceOptions options = {});

  [[nodiscard]] const InstanceOptions& options() const noexcept {
    return options_;
  }

  /// Draw one instance. The returned params are already validated.
  [[nodiscard]] Instance sample(support::Rng& rng) const;

 private:
  InstanceOptions options_;
};

}  // namespace ulba::core
