#include "core/trigger.hpp"

#include "support/require.hpp"

namespace ulba::core {

AdaptiveTrigger::AdaptiveTrigger(std::size_t median_window)
    : window_(median_window) {}

void AdaptiveTrigger::record_iteration(double seconds) {
  ULBA_REQUIRE(seconds >= 0.0, "iteration time must be non-negative");
  window_.add(seconds);
  if (!has_ref_) {
    ref_time_ = seconds;
    has_ref_ = true;
  }
  // Algorithm 1, lines 14–15: degradation += median(recent) − ref_time.
  // This also runs on the reference iteration itself, where the delta is
  // exactly 0: reset() cleared the window, so the reference is its only
  // sample.
  degradation_ += window_.median() - ref_time_;
}

bool AdaptiveTrigger::should_balance(double threshold_seconds) const noexcept {
  return degradation_ >= threshold_seconds;
}

void AdaptiveTrigger::reset() {
  // The median window must restart with the degradation accumulator: an LB
  // step changes the load every rank carries, so pre-LB iteration times say
  // nothing about the post-LB regime. Keeping them made the first post-LB
  // medians straddle the boundary — stale slow iterations inflated the fresh
  // degradation and re-triggered the balancer prematurely.
  window_.clear();
  degradation_ = 0.0;
  has_ref_ = false;
}

LbCostEstimator::LbCostEstimator(double prior_seconds) : prior_(prior_seconds) {
  ULBA_REQUIRE(prior_seconds >= 0.0, "prior LB cost must be non-negative");
}

void LbCostEstimator::observe(double seconds) {
  ULBA_REQUIRE(seconds >= 0.0, "LB cost must be non-negative");
  stats_.add(seconds);
}

double LbCostEstimator::average() const noexcept {
  return stats_.count() == 0 ? prior_ : stats_.mean();
}

}  // namespace ulba::core
