#include "core/params.hpp"

#include "support/require.hpp"

namespace ulba::core {

void ModelParams::validate() const {
  ULBA_REQUIRE(P >= 1, "need at least one PE");
  ULBA_REQUIRE(N >= 0 && N < P,
               "overloading PEs must number in [0, P) — N == P means nobody "
               "can absorb the unloaded work");
  ULBA_REQUIRE(gamma >= 1, "application must run at least one iteration");
  ULBA_REQUIRE(w0 >= 0.0, "initial workload must be non-negative");
  ULBA_REQUIRE(a >= 0.0, "average increase rate must be non-negative");
  ULBA_REQUIRE(m >= 0.0, "extra increase rate must be non-negative");
  ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  ULBA_REQUIRE(omega > 0.0, "PE speed must be positive");
  ULBA_REQUIRE(lb_cost >= 0.0, "LB cost must be non-negative");
}

}  // namespace ulba::core
