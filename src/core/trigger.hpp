// The adaptive LB trigger — Algorithm 1 of the paper, which adopts the
// degradation-accounting idea of Zhai et al. (ICS'18):
//
//   * the first iteration after an LB step becomes the *reference* iteration;
//   * every iteration, the median of the last three iteration times is
//     compared against the reference, and the difference accumulates into a
//     running `degradation`;
//   * when the accumulated degradation reaches the average LB cost (plus, for
//     ULBA, the anticipated underloading overhead of Eq. (11)), the load
//     balancer is invoked and the accumulator resets.
//
// A companion `LbCostEstimator` maintains the running average LB cost from
// observed calls, seeded with a user-provided prior (the paper takes it from
// runtime measurements, principle of persistence).
#pragma once

#include <cstdint>

#include "support/stats.hpp"

namespace ulba::core {

class AdaptiveTrigger {
 public:
  /// `median_window` is the number of recent iteration times the degradation
  /// test smooths over (Algorithm 1 uses 3).
  explicit AdaptiveTrigger(std::size_t median_window = 3);

  /// Record the time of the iteration that just completed. The first
  /// recording after construction or reset() defines the reference time.
  void record_iteration(double seconds);

  /// Accumulated degradation (seconds) since the reference iteration.
  [[nodiscard]] double degradation() const noexcept { return degradation_; }

  /// True when the accumulated degradation has reached `threshold_seconds`
  /// (avg LB cost, plus the ULBA overhead when anticipating).
  [[nodiscard]] bool should_balance(double threshold_seconds) const noexcept;

  /// Call right after an LB step: zeroes the degradation, clears the
  /// smoothing window, and arms the next recorded iteration as the new
  /// reference. The window must not survive the LB boundary — pre-LB
  /// iteration times describe the pre-LB decomposition, and letting the
  /// median straddle the reset inflated post-LB degradation with stale slow
  /// samples (premature re-triggering).
  void reset();

  [[nodiscard]] bool has_reference() const noexcept { return has_ref_; }
  [[nodiscard]] double reference_time() const noexcept { return ref_time_; }

 private:
  support::RollingWindow window_;
  double ref_time_ = 0.0;
  bool has_ref_ = false;
  double degradation_ = 0.0;
};

/// Running average of observed LB-step costs, with a prior used until the
/// first observation arrives.
class LbCostEstimator {
 public:
  explicit LbCostEstimator(double prior_seconds);

  void observe(double seconds);
  [[nodiscard]] double average() const noexcept;
  [[nodiscard]] std::size_t observations() const noexcept {
    return stats_.count();
  }

 private:
  double prior_;
  support::OnlineStats stats_;
};

}  // namespace ulba::core
