// The canonical alpha-schedule query API — the paper's decision procedure
// ((P, N̂, â, m̂, W) → schedule + predicted gain) promoted from scattered
// per-subcommand parameter threading into one stable request/response pair.
//
// A ScheduleRequest carries the model parameters plus the policy knobs of
// the evaluation (mode and candidate-α grid); a ScheduleResponse carries
// everything the callers used to recompute independently: the standard
// method's time, the σ⁺ time at the drawn α, the per-grid-point landscape,
// the arg-min α, the recommended schedule with its per-step α's, and the
// predicted gain. Evaluation is pure, which is what makes the pair the unit
// of `ulba serve`'s memoized cache: the serialized request IS the cache key,
// and a cached response must be bit-identical to a cold evaluation.
//
// The wire format follows the disc/message codec conventions (disc.cpp):
// little-endian host order via memcpy (the runtime's ranks share one
// machine), int64-counted sections, ULBA_REQUIRE on malformed payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/params.hpp"

namespace ulba::core {

/// How a request's candidate α's are evaluated.
enum class EvalMode : std::uint8_t {
  /// Closed-form Eq. (4)/(5): Menon τ for the standard reference, the σ⁺
  /// schedule per grid α. The runtime-policy / Table-II-sweep evaluation.
  kSigmaGrid = 0,
  /// Exact DP per grid α (opt::optimal_schedule, ULBA cost model) plus the
  /// free per-step-α DP (opt::optimal_alpha_schedule) as the recommended
  /// schedule. The dynamic-alpha model-bound evaluation.
  kExactDp = 1,
};

/// One alpha-schedule query: model parameters in, schedule + gain out.
/// `params.alpha` is the instance's drawn ("applied") α; `alpha_grid` lists
/// the candidate α's evaluated in order (α = 0 rows short-circuit to the
/// standard method — α = 0 degenerates to it).
struct ScheduleRequest {
  EvalMode mode = EvalMode::kSigmaGrid;
  ModelParams params;
  std::vector<double> alpha_grid;

  /// Request-shape validation (mode, grid domain/size). The model params
  /// are validated by the evaluation itself, exactly as the pre-API call
  /// sites did, so the error surface does not drift.
  void validate() const;
};

/// The landscape at one candidate α.
struct GridPointEval {
  double alpha = 0.0;
  double total_seconds = 0.0;
  std::int64_t lb_count = 0;
};

/// Transport/evaluation metadata. Excluded from payload equality: a cache
/// hit differs from its cold evaluation ONLY here.
struct ResponseProvenance {
  std::uint8_t cache_hit = 0;
  std::int32_t server_rank = -1;  ///< -1 = evaluated in-process
};

/// Everything a scheduling client needs from one query.
struct ScheduleResponse {
  double standard_seconds = 0.0;      ///< Menon-τ schedule, standard method
  std::int64_t standard_lb_count = 0;
  /// σ⁺ execution at the drawn `params.alpha` (== standard_seconds when the
  /// drawn α is 0).
  double alpha_seconds = 0.0;
  /// Arg-min over the candidates. kSigmaGrid seeds the scan with the α = 0
  /// standard fallback (it can never lose); kExactDp scans the grid only —
  /// the best-single-fixed-α reference of the dynamic-α bound.
  double best_alpha = 0.0;
  double best_seconds = 0.0;
  /// (standard − recommended) / standard.
  double predicted_gain = 0.0;
  std::vector<GridPointEval> grid;  ///< parallel to the request's alpha_grid
  /// The recommended schedule: σ⁺ at best_alpha (kSigmaGrid; Menon τ when
  /// α = 0 wins) or the free per-step-α DP (kExactDp).
  std::vector<std::int64_t> schedule_steps;
  std::vector<double> schedule_alphas;  ///< one α per scheduled step
  double schedule_seconds = 0.0;
  ResponseProvenance provenance;
};

/// Canonical request bytes — deterministic, and therefore usable verbatim
/// as the memoization key.
[[nodiscard]] std::vector<std::byte> serialize_request(
    const ScheduleRequest& request);
[[nodiscard]] ScheduleRequest deserialize_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> serialize_response(
    const ScheduleResponse& response);
[[nodiscard]] ScheduleResponse deserialize_response(
    std::span<const std::byte> payload);

/// Bit-equality of every payload field (times, landscape, schedule), with
/// provenance masked out — the serve cache's hit-identity contract.
[[nodiscard]] bool payload_equals(const ScheduleResponse& a,
                                  const ScheduleResponse& b);

}  // namespace ulba::core
