// LB schedules and their exact evaluation — Eqs. (3)–(4) of the paper.
//
// A schedule is the set of iterations at which the load balancer is invoked
// over a γ-iteration run. The application starts balanced at iteration 0
// (paper §II-C assumption), so iteration 0 is an implicit, free balance; each
// scheduled step pays C seconds and re-opens an interval. The total parallel
// time is the sum of interval times (Eq. (4)); an interval's compute time
// follows Eq. (2) (standard) or Eq. (5) (ULBA). Because an interval's cost
// depends only on its endpoints and the α applied at its opening, schedules
// can be evaluated exactly in O(#steps) with the closed-form sums — the key
// property that also enables the exact DP optimum in ulba::opt.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/params.hpp"

namespace ulba::core {

/// A set of LB invocation points within a γ-iteration run.
class Schedule {
 public:
  /// `steps` must be strictly increasing, each within [1, gamma−1].
  Schedule(std::int64_t gamma, std::vector<std::int64_t> steps);

  /// The empty schedule (no LB call at all — "static" in the paper's terms).
  static Schedule empty(std::int64_t gamma);

  /// From a boolean mask of length γ (the simulated-annealing state
  /// encoding): mask[i] != 0 ⇔ LB at iteration i. mask[0] is ignored
  /// (iteration 0 is the implicit initial balance).
  static Schedule from_mask(std::span<const std::uint8_t> mask);

  [[nodiscard]] std::int64_t gamma() const noexcept { return gamma_; }
  [[nodiscard]] const std::vector<std::int64_t>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::size_t lb_count() const noexcept { return steps_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> to_mask() const;

  /// Interval boundaries: {0, steps…, γ}.
  [[nodiscard]] std::vector<std::int64_t> boundaries() const;

  /// "LB @ {12, 40, 77} over 100 iterations" — for logs and examples.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::int64_t gamma_;
  std::vector<std::int64_t> steps_;
};

/// Cost breakdown of a schedule evaluation.
struct ScheduleCost {
  double total_seconds = 0.0;    ///< compute + LB — Eq. (4)
  double compute_seconds = 0.0;  ///< Σ interval compute times
  double lb_seconds = 0.0;       ///< (#steps)·C
  std::size_t lb_count = 0;
};

/// Eq. (4) with Eq. (2) in Eq. (3): total time under the standard method.
[[nodiscard]] ScheduleCost evaluate_standard(const ModelParams& p,
                                             const Schedule& s);

/// Eq. (4) with Eq. (5) in Eq. (3): total time under ULBA with the constant,
/// user-defined α of `p`. The initial interval (opened by the implicit
/// balance at iteration 0) evolves with the standard shape, as no
/// underloading has been applied yet.
[[nodiscard]] ScheduleCost evaluate_ulba(const ModelParams& p,
                                         const Schedule& s);

/// ULBA evaluation with a per-step α (extension toward the paper's
/// future-work item of adapting α at runtime). `alphas` must have one entry
/// per scheduled step.
[[nodiscard]] ScheduleCost evaluate_ulba_per_step(
    const ModelParams& p, const Schedule& s, std::span<const double> alphas);

/// Fixed-period schedule: LB at period, 2·period, … (< γ).
/// The paper's "call every 1000 iterations" strawman (§II).
[[nodiscard]] Schedule periodic_schedule(std::int64_t gamma,
                                         std::int64_t period);

/// Menon-τ schedule for the standard method: LB every round(τ) iterations,
/// τ = √(2Cω/m̂). Empty when m̂ == 0.
[[nodiscard]] Schedule menon_schedule(const ModelParams& p);

/// σ⁺-driven schedule for ULBA (§III-B's proposal: "use σ⁺ as the LB
/// steps"): starting from the balanced iteration 0 (α_open = 0), repeatedly
/// step forward by ⌊σ⁺⌋ (≥ 1). Subsequent intervals open with the ULBA α.
[[nodiscard]] Schedule sigma_plus_schedule(const ModelParams& p);

}  // namespace ulba::core
