#include "core/policy.hpp"

#include "support/require.hpp"

namespace ulba::core {

WeightAssignment compute_lb_weights(std::span<const double> alphas,
                                    double wtot) {
  const auto p_count = static_cast<std::int64_t>(alphas.size());
  ULBA_REQUIRE(p_count >= 1, "need at least one PE");
  ULBA_REQUIRE(wtot >= 0.0, "total workload must be non-negative");

  WeightAssignment out;
  double alpha_sum = 0.0;
  for (double a : alphas) {
    ULBA_REQUIRE(a >= 0.0 && a <= 1.0, "each alpha must lie in [0, 1]");
    if (a > 0.0) {
      ++out.overloading_count;
      alpha_sum += a;
    }
  }

  const double even = wtot / static_cast<double>(p_count);
  out.weights.resize(alphas.size(), even);

  // The ≥50 % safeguard — also covers N == P, where nobody could absorb the
  // unloaded work.
  if (2 * out.overloading_count >= p_count) {
    out.fell_back_to_standard = out.overloading_count > 0;
  } else if (out.overloading_count > 0) {
    const double boost =
        alpha_sum / static_cast<double>(p_count - out.overloading_count);
    for (std::size_t p = 0; p < alphas.size(); ++p) {
      out.weights[p] =
          alphas[p] > 0.0 ? (1.0 - alphas[p]) * even : (1.0 + boost) * even;
    }
  }

  out.fractions.resize(out.weights.size());
  if (wtot > 0.0) {
    for (std::size_t p = 0; p < out.weights.size(); ++p)
      out.fractions[p] = out.weights[p] / wtot;
  } else {  // no workload yet: an even split is the only sensible answer
    const double f = 1.0 / static_cast<double>(p_count);
    for (double& x : out.fractions) x = f;
  }
  return out;
}

}  // namespace ulba::core
