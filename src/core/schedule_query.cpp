#include "core/schedule_query.hpp"

#include <cstring>

#include "support/require.hpp"

namespace ulba::core {
namespace {

// Same codec helpers as the erosion disc/message format: raw host-order
// memcpy framing with int64 counts and ULBA_REQUIRE on truncation.

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t size) {
  if (size == 0) return;  // memcpy's source is declared nonnull
  const std::size_t at = out.size();
  out.resize(at + size);
  std::memcpy(out.data() + at, data, size);
}

template <typename T>
void append_raw(std::vector<std::byte>& out, const T& value) {
  append_bytes(out, &value, sizeof(T));
}

template <typename T>
T read_raw(std::span<const std::byte>& in) {
  ULBA_REQUIRE(in.size() >= sizeof(T), "truncated schedule-query payload");
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}

template <typename T>
void append_counted(std::vector<std::byte>& out, const std::vector<T>& items) {
  append_raw(out, static_cast<std::int64_t>(items.size()));
  append_bytes(out, items.data(), items.size() * sizeof(T));
}

template <typename T>
std::vector<T> read_counted(std::span<const std::byte>& in) {
  const auto count = read_raw<std::int64_t>(in);
  ULBA_REQUIRE(count >= 0, "negative count in schedule-query payload");
  ULBA_REQUIRE(in.size() >= static_cast<std::size_t>(count) * sizeof(T),
               "truncated schedule-query payload");
  std::vector<T> items(static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(items.data(), in.data(),
                static_cast<std::size_t>(count) * sizeof(T));
    in = in.subspan(static_cast<std::size_t>(count) * sizeof(T));
  }
  return items;
}

constexpr std::int64_t kRequestVersion = 1;
constexpr std::int64_t kResponseVersion = 1;
constexpr std::int64_t kMaxGridPoints = 4096;

}  // namespace

void ScheduleRequest::validate() const {
  ULBA_REQUIRE(
      mode == EvalMode::kSigmaGrid || mode == EvalMode::kExactDp,
      "schedule request mode must be sigma-grid (0) or exact-dp (1)");
  ULBA_REQUIRE(static_cast<std::int64_t>(alpha_grid.size()) <= kMaxGridPoints,
               "schedule request alpha grid too large");
  for (const double alpha : alpha_grid) {
    ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0,
                 "schedule request alpha grid values must lie in [0, 1]");
  }
  if (mode == EvalMode::kExactDp) {
    ULBA_REQUIRE(!alpha_grid.empty(),
                 "exact-dp schedule request needs a non-empty alpha grid");
  }
}

std::vector<std::byte> serialize_request(const ScheduleRequest& request) {
  std::vector<std::byte> out;
  out.reserve(sizeof(std::int64_t) * 5 + sizeof(double) * 6 + 1 +
              request.alpha_grid.size() * sizeof(double));
  append_raw(out, kRequestVersion);
  append_raw(out, static_cast<std::uint8_t>(request.mode));
  const ModelParams& p = request.params;
  append_raw(out, p.P);
  append_raw(out, p.N);
  append_raw(out, p.gamma);
  append_raw(out, p.w0);
  append_raw(out, p.a);
  append_raw(out, p.m);
  append_raw(out, p.alpha);
  append_raw(out, p.omega);
  append_raw(out, p.lb_cost);
  append_counted(out, request.alpha_grid);
  return out;
}

ScheduleRequest deserialize_request(std::span<const std::byte> payload) {
  const auto version = read_raw<std::int64_t>(payload);
  ULBA_REQUIRE(version == kRequestVersion,
               "unsupported schedule request version");
  ScheduleRequest request;
  const auto mode = read_raw<std::uint8_t>(payload);
  ULBA_REQUIRE(mode <= static_cast<std::uint8_t>(EvalMode::kExactDp),
               "unknown schedule request mode");
  request.mode = static_cast<EvalMode>(mode);
  ModelParams& p = request.params;
  p.P = read_raw<std::int64_t>(payload);
  p.N = read_raw<std::int64_t>(payload);
  p.gamma = read_raw<std::int64_t>(payload);
  p.w0 = read_raw<double>(payload);
  p.a = read_raw<double>(payload);
  p.m = read_raw<double>(payload);
  p.alpha = read_raw<double>(payload);
  p.omega = read_raw<double>(payload);
  p.lb_cost = read_raw<double>(payload);
  request.alpha_grid = read_counted<double>(payload);
  ULBA_REQUIRE(payload.empty(),
               "trailing bytes after schedule request payload");
  return request;
}

std::vector<std::byte> serialize_response(const ScheduleResponse& response) {
  std::vector<std::byte> out;
  append_raw(out, kResponseVersion);
  append_raw(out, response.standard_seconds);
  append_raw(out, response.standard_lb_count);
  append_raw(out, response.alpha_seconds);
  append_raw(out, response.best_alpha);
  append_raw(out, response.best_seconds);
  append_raw(out, response.predicted_gain);
  append_raw(out, response.schedule_seconds);
  append_raw(out, static_cast<std::int64_t>(response.grid.size()));
  for (const GridPointEval& point : response.grid) {
    append_raw(out, point.alpha);
    append_raw(out, point.total_seconds);
    append_raw(out, point.lb_count);
  }
  append_counted(out, response.schedule_steps);
  append_counted(out, response.schedule_alphas);
  // Provenance last: payload_equals truncates it away by zeroing.
  append_raw(out, response.provenance.cache_hit);
  append_raw(out, response.provenance.server_rank);
  return out;
}

ScheduleResponse deserialize_response(std::span<const std::byte> payload) {
  const auto version = read_raw<std::int64_t>(payload);
  ULBA_REQUIRE(version == kResponseVersion,
               "unsupported schedule response version");
  ScheduleResponse response;
  response.standard_seconds = read_raw<double>(payload);
  response.standard_lb_count = read_raw<std::int64_t>(payload);
  response.alpha_seconds = read_raw<double>(payload);
  response.best_alpha = read_raw<double>(payload);
  response.best_seconds = read_raw<double>(payload);
  response.predicted_gain = read_raw<double>(payload);
  response.schedule_seconds = read_raw<double>(payload);
  const auto grid_count = read_raw<std::int64_t>(payload);
  ULBA_REQUIRE(grid_count >= 0 && grid_count <= kMaxGridPoints,
               "schedule response grid count out of range");
  response.grid.resize(static_cast<std::size_t>(grid_count));
  for (GridPointEval& point : response.grid) {
    point.alpha = read_raw<double>(payload);
    point.total_seconds = read_raw<double>(payload);
    point.lb_count = read_raw<std::int64_t>(payload);
  }
  response.schedule_steps = read_counted<std::int64_t>(payload);
  response.schedule_alphas = read_counted<double>(payload);
  response.provenance.cache_hit = read_raw<std::uint8_t>(payload);
  response.provenance.server_rank = read_raw<std::int32_t>(payload);
  ULBA_REQUIRE(payload.empty(),
               "trailing bytes after schedule response payload");
  return response;
}

bool payload_equals(const ScheduleResponse& a, const ScheduleResponse& b) {
  ScheduleResponse ca = a;
  ScheduleResponse cb = b;
  ca.provenance = ResponseProvenance{};
  cb.provenance = ResponseProvenance{};
  return serialize_response(ca) == serialize_response(cb);
}

}  // namespace ulba::core
