// The per-PE workload-increase-rate (WIR) database — paper §III-C.
//
// "each PE keeps a database that stores the WIR of every PE. Each PE
//  evaluates its WIR and propagates it (as well as the most recent WIRs in
//  its database) to the other PEs using a dissemination algorithm."
//
// A database holds, for every PE, the most recent WIR observation it has
// heard of, stamped with the iteration at which that observation was made.
// Merging two databases keeps the fresher entry per PE — exactly the rumor-
// mongering merge of epidemic/gossip protocols (Demers et al.). The principle
// of persistence makes slightly stale entries acceptable.
#pragma once

#include <cstdint>
#include <vector>

namespace ulba::core {

class WirDatabase {
 public:
  /// One observation: a PE's WIR measured at some iteration.
  struct Entry {
    double wir = 0.0;
    std::int64_t iteration = kUnknown;  ///< when it was measured

    [[nodiscard]] bool known() const noexcept { return iteration != kUnknown; }
  };

  static constexpr std::int64_t kUnknown = -1;

  explicit WirDatabase(std::int64_t pe_count);

  [[nodiscard]] std::int64_t pe_count() const noexcept {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// Record a locally measured WIR for `pe` at `iteration`. Overwrites only
  /// if at least as fresh as the stored entry.
  void update(std::int64_t pe, double wir, std::int64_t iteration);

  [[nodiscard]] const Entry& entry(std::int64_t pe) const;

  /// Epidemic merge: adopt every entry of `other` that is strictly fresher
  /// than ours. Returns the number of entries adopted.
  std::size_t merge_from(const WirDatabase& other);

  /// All WIR values, with 0.0 for still-unknown PEs — the distribution the
  /// z-score overload detector runs on.
  [[nodiscard]] std::vector<double> wirs() const;

  /// Number of PEs whose WIR is still unknown.
  [[nodiscard]] std::int64_t unknown_count() const noexcept;

  /// Age (in iterations) of the stalest known entry relative to `now`;
  /// returns `now + 1` when some entry is still unknown.
  [[nodiscard]] std::int64_t max_staleness(std::int64_t now) const noexcept;

 private:
  std::vector<Entry> entries_;
};

}  // namespace ulba::core
