#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/intervals.hpp"
#include "core/standard_model.hpp"
#include "core/ulba_model.hpp"
#include "support/require.hpp"

namespace ulba::core {

Schedule::Schedule(std::int64_t gamma, std::vector<std::int64_t> steps)
    : gamma_(gamma), steps_(std::move(steps)) {
  ULBA_REQUIRE(gamma_ >= 1, "schedule horizon must be at least 1 iteration");
  std::int64_t prev = 0;
  for (std::int64_t s : steps_) {
    ULBA_REQUIRE(s >= 1 && s < gamma_,
                 "LB steps must lie in [1, gamma-1]; iteration 0 is the "
                 "implicit initial balance");
    ULBA_REQUIRE(s > prev, "LB steps must be strictly increasing");
    prev = s;
  }
}

Schedule Schedule::empty(std::int64_t gamma) { return Schedule(gamma, {}); }

Schedule Schedule::from_mask(std::span<const std::uint8_t> mask) {
  ULBA_REQUIRE(!mask.empty(), "mask must cover at least one iteration");
  std::vector<std::int64_t> steps;
  for (std::size_t i = 1; i < mask.size(); ++i)
    if (mask[i] != 0) steps.push_back(static_cast<std::int64_t>(i));
  return Schedule(static_cast<std::int64_t>(mask.size()), std::move(steps));
}

std::vector<std::uint8_t> Schedule::to_mask() const {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(gamma_), 0);
  for (std::int64_t s : steps_) mask[static_cast<std::size_t>(s)] = 1;
  return mask;
}

std::vector<std::int64_t> Schedule::boundaries() const {
  std::vector<std::int64_t> b;
  b.reserve(steps_.size() + 2);
  b.push_back(0);
  b.insert(b.end(), steps_.begin(), steps_.end());
  b.push_back(gamma_);
  return b;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  os << "LB @ {";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    os << steps_[i];
    if (i + 1 < steps_.size()) os << ", ";
  }
  os << "} over " << gamma_ << " iterations";
  return os.str();
}

namespace {

template <typename IntervalFn>
ScheduleCost evaluate_with(const ModelParams& p, const Schedule& s,
                           IntervalFn&& interval_compute) {
  p.validate();
  ULBA_REQUIRE(s.gamma() == p.gamma,
               "schedule horizon must match the model's gamma");
  const auto bounds = s.boundaries();
  ScheduleCost cost;
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    const std::int64_t from = bounds[k];
    const std::int64_t to = bounds[k + 1];
    if (to == from) continue;  // an LB step at the very end opens nothing
    cost.compute_seconds += interval_compute(k, from, to);
  }
  cost.lb_count = s.lb_count();
  cost.lb_seconds = static_cast<double>(cost.lb_count) * p.lb_cost;
  cost.total_seconds = cost.compute_seconds + cost.lb_seconds;
  return cost;
}

}  // namespace

ScheduleCost evaluate_standard(const ModelParams& p, const Schedule& s) {
  return evaluate_with(p, s, [&](std::size_t, std::int64_t from,
                                 std::int64_t to) {
    return standard_interval_compute_time(p, from, to);
  });
}

ScheduleCost evaluate_ulba(const ModelParams& p, const Schedule& s) {
  return evaluate_with(
      p, s, [&](std::size_t k, std::int64_t from, std::int64_t to) {
        // Interval 0 is opened by the implicit initial balance: standard
        // shape. Every later interval is opened by a ULBA step with α.
        const double alpha_open = (k == 0) ? 0.0 : p.alpha;
        return ulba_interval_compute_time(p, from, to, alpha_open);
      });
}

ScheduleCost evaluate_ulba_per_step(const ModelParams& p, const Schedule& s,
                                    std::span<const double> alphas) {
  ULBA_REQUIRE(alphas.size() == s.lb_count(),
               "need exactly one alpha per scheduled LB step");
  return evaluate_with(
      p, s, [&](std::size_t k, std::int64_t from, std::int64_t to) {
        const double alpha_open = (k == 0) ? 0.0 : alphas[k - 1];
        return ulba_interval_compute_time(p, from, to, alpha_open);
      });
}

Schedule periodic_schedule(std::int64_t gamma, std::int64_t period) {
  ULBA_REQUIRE(period >= 1, "period must be at least one iteration");
  std::vector<std::int64_t> steps;
  for (std::int64_t i = period; i < gamma; i += period) steps.push_back(i);
  return Schedule(gamma, std::move(steps));
}

Schedule menon_schedule(const ModelParams& p) {
  p.validate();
  const double tau = menon_tau(p);
  if (!std::isfinite(tau)) return Schedule::empty(p.gamma);
  const auto period = std::max<std::int64_t>(1, std::llround(tau));
  return periodic_schedule(p.gamma, period);
}

Schedule sigma_plus_schedule(const ModelParams& p) {
  p.validate();
  std::vector<std::int64_t> steps;
  std::int64_t cur = 0;
  double alpha_open = 0.0;  // iteration 0 is a plain even balance
  while (true) {
    const double sp = sigma_plus(p, cur, alpha_open, p.alpha);
    if (!std::isfinite(sp)) break;
    const auto hop =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(sp)));
    cur += hop;
    if (cur >= p.gamma) break;
    steps.push_back(cur);
    alpha_open = p.alpha;
  }
  return Schedule(p.gamma, std::move(steps));
}

}  // namespace ulba::core
