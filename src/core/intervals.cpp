#include "core/intervals.hpp"

#include <cmath>
#include <limits>

#include "core/ulba_model.hpp"
#include "support/require.hpp"

namespace ulba::core {

double menon_tau(const ModelParams& p) {
  const double mh = p.m_hat();
  if (mh <= 0.0) return std::numeric_limits<double>::infinity();
  // Cost_imbalance(τ) = (1/ω)∫₀^τ m̂·t dt = m̂τ²/(2ω)  ==  C
  return std::sqrt(2.0 * p.lb_cost * p.omega / mh);
}

double menon_tau_discrete(const ModelParams& p) {
  const double mh = p.m_hat();
  if (mh <= 0.0) return std::numeric_limits<double>::infinity();
  // Σ_{t=0}^{τ−1} m̂·t/ω = m̂·τ(τ−1)/(2ω) == C  ⇒  τ² − τ − 2Cω/m̂ = 0.
  return 0.5 * (1.0 + std::sqrt(1.0 + 8.0 * p.lb_cost * p.omega / mh));
}

double sigma_plus_tau(const ModelParams& p, std::int64_t lb_prev,
                      std::int64_t sigma_minus_prev, double alpha_next) {
  ULBA_REQUIRE(alpha_next >= 0.0 && alpha_next <= 1.0,
               "alpha must lie in [0, 1]");
  ULBA_REQUIRE(sigma_minus_prev >= 0, "sigma_minus must be non-negative");
  const double mh = p.m_hat();
  if (mh <= 0.0) return std::numeric_limits<double>::infinity();
  if (alpha_next == 0.0) return menon_tau(p);

  ULBA_REQUIRE(p.N > 0 && p.N < p.P,
               "underloading requires 0 < N < P so someone absorbs the work");
  // Eq. (12):  (m̂/2ω)·τ² − (αNΔW/((P−N)ωP))·τ
  //            − [ (αN/(P−N))·(Wtot(LBp) + σ⁻·ΔW)/(ωP) + C ] = 0
  const double ratio =
      static_cast<double>(p.N) / static_cast<double>(p.P - p.N);
  const double dw = p.delta_w();
  const double A = mh / (2.0 * p.omega);
  const double B =
      -alpha_next * ratio * dw / (p.omega * static_cast<double>(p.P));
  const double w_at_sigma =
      p.wtot(lb_prev) + static_cast<double>(sigma_minus_prev) * dw;
  const double Dterm =
      -(alpha_next * ratio * w_at_sigma / (p.omega * static_cast<double>(p.P)) +
        p.lb_cost);
  // A > 0 and Dterm ≤ 0 ⇒ the discriminant is non-negative and the larger
  // root is the (unique) non-negative one.
  const double disc = B * B - 4.0 * A * Dterm;
  ULBA_CHECK(disc >= 0.0, "Eq. (12) discriminant must be non-negative");
  return (-B + std::sqrt(disc)) / (2.0 * A);
}

double sigma_plus(const ModelParams& p, std::int64_t lb_prev,
                  double alpha_open, double alpha_next) {
  const std::int64_t sm = sigma_minus(p, lb_prev, alpha_open);
  const double tau = sigma_plus_tau(p, lb_prev, sm, alpha_next);
  if (std::isinf(tau)) return tau;
  return static_cast<double>(sm) + tau;
}

IntervalBounds interval_bounds(const ModelParams& p, std::int64_t lb_prev,
                               double alpha_open, double alpha_next) {
  IntervalBounds b;
  b.lower = sigma_minus(p, lb_prev, alpha_open);
  b.upper = sigma_plus(p, lb_prev, alpha_open, alpha_next);
  return b;
}

}  // namespace ulba::core
