#include "core/wir_database.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace ulba::core {

WirDatabase::WirDatabase(std::int64_t pe_count)
    : entries_(static_cast<std::size_t>(pe_count)) {
  ULBA_REQUIRE(pe_count >= 1, "database needs at least one PE");
}

void WirDatabase::update(std::int64_t pe, double wir, std::int64_t iteration) {
  ULBA_REQUIRE(pe >= 0 && pe < pe_count(), "PE index out of range");
  ULBA_REQUIRE(iteration >= 0, "iteration stamp must be non-negative");
  Entry& e = entries_[static_cast<std::size_t>(pe)];
  if (iteration >= e.iteration) {
    e.wir = wir;
    e.iteration = iteration;
  }
}

const WirDatabase::Entry& WirDatabase::entry(std::int64_t pe) const {
  ULBA_REQUIRE(pe >= 0 && pe < pe_count(), "PE index out of range");
  return entries_[static_cast<std::size_t>(pe)];
}

std::size_t WirDatabase::merge_from(const WirDatabase& other) {
  ULBA_REQUIRE(other.pe_count() == pe_count(),
               "databases must describe the same PE set");
  std::size_t adopted = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (other.entries_[i].iteration > entries_[i].iteration) {
      entries_[i] = other.entries_[i];
      ++adopted;
    }
  }
  return adopted;
}

std::vector<double> WirDatabase::wirs() const {
  std::vector<double> out(entries_.size());
  std::transform(entries_.begin(), entries_.end(), out.begin(),
                 [](const Entry& e) { return e.known() ? e.wir : 0.0; });
  return out;
}

std::int64_t WirDatabase::unknown_count() const noexcept {
  return static_cast<std::int64_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return !e.known(); }));
}

std::int64_t WirDatabase::max_staleness(std::int64_t now) const noexcept {
  std::int64_t worst = 0;
  for (const Entry& e : entries_) {
    const std::int64_t age = e.known() ? now - e.iteration : now + 1;
    worst = std::max(worst, age);
  }
  return worst;
}

}  // namespace ulba::core
