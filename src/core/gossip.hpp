// Push-gossip dissemination of the WIR databases — paper §III-C.
//
// "one dissemination step is done at each iteration to mitigate the overhead
//  due to the WIR communication"
//
// Every round, each PE pushes its whole database to `fanout` uniformly chosen
// peers, which epidemically merge it. With fanout f, a fresh rumor reaches
// all P PEs in O(log_{f+1} P) rounds w.h.p. — the classic epidemic result
// (Demers et al. 1987), which the property tests verify empirically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wir_database.hpp"
#include "support/rng.hpp"

namespace ulba::core {

class GossipNetwork {
 public:
  /// A network of `pe_count` databases, all initially empty.
  GossipNetwork(std::int64_t pe_count, std::int64_t fanout);

  [[nodiscard]] std::int64_t pe_count() const noexcept {
    return static_cast<std::int64_t>(dbs_.size());
  }
  [[nodiscard]] std::int64_t fanout() const noexcept { return fanout_; }

  [[nodiscard]] WirDatabase& database(std::int64_t pe);
  [[nodiscard]] const WirDatabase& database(std::int64_t pe) const;

  /// Record PE `pe`'s own WIR measurement at `iteration` into its local
  /// database (what Algorithm 1 does before disseminating).
  void observe_local(std::int64_t pe, double wir, std::int64_t iteration);

  /// Centralized-oracle dissemination: record PE `pe`'s measurement into
  /// EVERY database at once, as if a zero-cost broadcast completed instantly.
  /// The gossip-ablation scenarios use this as the staleness-free reference
  /// that `step`-based epidemic dissemination is measured against.
  void observe_oracle(std::int64_t pe, double wir, std::int64_t iteration);

  /// One dissemination round: every PE pushes its database to `fanout`
  /// distinct random peers (≠ itself). Target selection draws from `rng`;
  /// merges are applied against the pre-round snapshot so the round is
  /// order-independent (a bulk-synchronous exchange, as on a real machine
  /// where all sends happen before any receive of the same superstep).
  void step(support::Rng& rng);

  /// Rounds taken until every database knows every PE (useful for the gossip
  /// ablation); runs on a copy, leaves the network untouched.
  [[nodiscard]] std::int64_t rounds_to_full_knowledge(support::Rng rng) const;

 private:
  std::vector<WirDatabase> dbs_;
  std::int64_t fanout_;
};

}  // namespace ulba::core
