// Algorithm 2 — per-PE target weights of a (centralized) ULBA step.
//
// Each PE submits its α: the user-defined fraction if it detected itself
// overloading, 0 otherwise. The main PE then assigns:
//
//     overloading p:        w_p = (1 − α_p) · Wtot/P
//     non-overloading p:    w_p = (1 + S/(P−N)) · Wtot/P,   S = Σ_overloading α_q
//
// and the partitioner cuts the domain to those targets. With a common α this
// is exactly Eq. (6). Note: Algorithm 2 in the paper writes the
// non-overloading weight with that PE's own A_p (which is 0), which would not
// conserve Wtot; Figure 1 and Eq. (6) make the intent clear, so we use the
// overloading PEs' total S — the weights then sum to Wtot exactly.
//
// Safeguard (§III-C): "If at least 50% of the PEs call the load balancer with
// α > 0, then the load balancer works as the standard LB method because it is
// counter-productive to unload a majority of PEs."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ulba::core {

struct WeightAssignment {
  /// Target workload per PE, summing to the given Wtot.
  std::vector<double> weights;
  /// Same targets normalized to fractions summing to 1.
  std::vector<double> fractions;
  /// Number of PEs that requested underloading (α_p > 0).
  std::int64_t overloading_count = 0;
  /// True when the ≥50 % safeguard forced a plain even split.
  bool fell_back_to_standard = false;
};

/// Compute the Algorithm-2 weights for one LB step. `alphas[p]` is PE p's
/// submitted fraction (0 ⇒ not overloading); every α must lie in [0, 1].
/// `wtot` is the total workload at the LB iteration.
[[nodiscard]] WeightAssignment compute_lb_weights(std::span<const double> alphas,
                                                  double wtot);

}  // namespace ulba::core
