#include "core/standard_model.hpp"

#include "support/require.hpp"

namespace ulba::core {

double standard_iteration_time(const ModelParams& p, std::int64_t lb_prev,
                               std::int64_t t) {
  ULBA_REQUIRE(t >= 0, "iteration offset must be non-negative");
  const double share = p.balanced_share(lb_prev);
  return (share + (p.m + p.a) * static_cast<double>(t)) / p.omega;
}

double standard_interval_compute_time(const ModelParams& p,
                                      std::int64_t lb_prev,
                                      std::int64_t lb_next) {
  ULBA_REQUIRE(lb_next > lb_prev, "interval must contain >= 1 iteration");
  const auto len = static_cast<double>(lb_next - lb_prev);
  const double share = p.balanced_share(lb_prev);
  // Σ_{t=0}^{L−1} [share + (m+a)t] = L·share + (m+a)·L(L−1)/2
  return (len * share + (p.m + p.a) * len * (len - 1.0) / 2.0) / p.omega;
}

}  // namespace ulba::core
