#include "core/gossip.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace ulba::core {

GossipNetwork::GossipNetwork(std::int64_t pe_count, std::int64_t fanout)
    : dbs_(static_cast<std::size_t>(pe_count),
           WirDatabase(std::max<std::int64_t>(pe_count, 1))),
      fanout_(fanout) {
  ULBA_REQUIRE(pe_count >= 2, "gossip needs at least two PEs");
  ULBA_REQUIRE(fanout >= 1 && fanout < pe_count,
               "fanout must lie in [1, pe_count)");
}

WirDatabase& GossipNetwork::database(std::int64_t pe) {
  ULBA_REQUIRE(pe >= 0 && pe < pe_count(), "PE index out of range");
  return dbs_[static_cast<std::size_t>(pe)];
}

const WirDatabase& GossipNetwork::database(std::int64_t pe) const {
  ULBA_REQUIRE(pe >= 0 && pe < pe_count(), "PE index out of range");
  return dbs_[static_cast<std::size_t>(pe)];
}

void GossipNetwork::observe_local(std::int64_t pe, double wir,
                                  std::int64_t iteration) {
  database(pe).update(pe, wir, iteration);
}

void GossipNetwork::observe_oracle(std::int64_t pe, double wir,
                                   std::int64_t iteration) {
  ULBA_REQUIRE(pe >= 0 && pe < pe_count(), "PE index out of range");
  for (WirDatabase& db : dbs_) db.update(pe, wir, iteration);
}

void GossipNetwork::step(support::Rng& rng) {
  // Merge against the pre-round snapshot: all messages of a round carry the
  // state each PE had when the round began.
  const std::vector<WirDatabase> snapshot = dbs_;
  const auto n = static_cast<std::size_t>(pe_count());
  for (std::size_t src = 0; src < n; ++src) {
    // `fanout` distinct targets other than src: sample from n−1 slots and
    // skip over src.
    const auto picks = rng.sample_without_replacement(
        n - 1, static_cast<std::size_t>(fanout_));
    for (std::size_t slot : picks) {
      const std::size_t dst = slot >= src ? slot + 1 : slot;
      dbs_[dst].merge_from(snapshot[src]);
    }
  }
}

std::int64_t GossipNetwork::rounds_to_full_knowledge(support::Rng rng) const {
  GossipNetwork copy = *this;
  const auto fully_known = [&copy]() {
    for (std::int64_t pe = 0; pe < copy.pe_count(); ++pe)
      if (copy.database(pe).unknown_count() > 0) return false;
    return true;
  };
  std::int64_t rounds = 0;
  // 4·P rounds is far beyond the O(log P) expectation; reaching it means the
  // caller seeded a network where some PE never observed anything locally.
  const std::int64_t limit = 4 * copy.pe_count();
  while (!fully_known()) {
    ULBA_REQUIRE(rounds < limit,
                 "gossip cannot converge: some PE has no local observation");
    copy.step(rng);
    ++rounds;
  }
  return rounds;
}

}  // namespace ulba::core
