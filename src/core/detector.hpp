// The z-score overload detector — paper §III-C.
//
// "A PE is considered overloading if the z-score of its WIR in the
//  distribution of the WIR created from the database exceeds 3.0."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ulba::core {

class OverloadDetector {
 public:
  /// `threshold` is the z-score above which a PE counts as overloading; the
  /// paper uses 3.0.
  explicit OverloadDetector(double threshold = 3.0);

  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  /// Is a PE with WIR `own_wir` overloading within the WIR population `all`?
  /// A degenerate population (zero spread) never flags anybody.
  [[nodiscard]] bool is_overloading(double own_wir,
                                    std::span<const double> all) const;

  /// Flags for every member of the population.
  [[nodiscard]] std::vector<bool> flags(std::span<const double> all) const;

  /// Number of overloading PEs in the population — the runtime estimate of
  /// the model's N.
  [[nodiscard]] std::int64_t count_overloading(
      std::span<const double> all) const;

 private:
  double threshold_;
};

}  // namespace ulba::core
