#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "support/require.hpp"

namespace ulba::core {

InstanceGenerator::InstanceGenerator(InstanceOptions options)
    : options_(options) {
  ULBA_REQUIRE(options_.gamma >= 1, "gamma must be at least 1");
  ULBA_REQUIRE(options_.omega > 0.0, "omega must be positive");
  if (options_.pin_p) {
    ULBA_REQUIRE(*options_.pin_p >= 2, "pinned P must be at least 2");
  }
  if (options_.pin_overloading_fraction) {
    const double f = *options_.pin_overloading_fraction;
    ULBA_REQUIRE(f > 0.0 && f < 1.0,
                 "pinned overloading fraction must lie in (0, 1)");
  }
  if (options_.pin_alpha) {
    const double a = *options_.pin_alpha;
    ULBA_REQUIRE(a >= 0.0 && a <= 1.0, "pinned alpha must lie in [0, 1]");
  }
}

Instance InstanceGenerator::sample(support::Rng& rng) const {
  Instance inst;
  ModelParams& p = inst.params;

  p.P = options_.pin_p
            ? *options_.pin_p
            : rng.pick(std::span<const std::int64_t>(kTableIIPeCounts));

  inst.v = options_.pin_overloading_fraction
               ? *options_.pin_overloading_fraction
               : rng.uniform(0.01, 0.2);
  p.N = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::llround(static_cast<double>(p.P) * inst.v)),
      1, p.P - 1);

  p.gamma = options_.gamma;
  p.omega = options_.omega;

  const auto pd = static_cast<double>(p.P);
  p.w0 = rng.uniform(52e7 * pd, 1165e7 * pd);

  inst.x = rng.uniform(0.01, 0.3);
  const double delta_w = (p.w0 / pd) * inst.x;

  inst.y = rng.uniform(0.8, 1.0);
  p.a = delta_w * (1.0 - inst.y) / pd;
  p.m = delta_w * inst.y / static_cast<double>(p.N);

  p.alpha = options_.pin_alpha ? *options_.pin_alpha : rng.uniform(0.0, 1.0);

  inst.z = rng.uniform(0.1, 3.0);
  // Table II expresses C in FLOP (a fraction z of one iteration's per-PE
  // work); the model carries C in seconds.
  p.lb_cost = (p.w0 / pd) * inst.z / p.omega;

  p.validate();
  return inst;
}

}  // namespace ulba::core
