#include "core/ulba_model.hpp"

#include <cmath>
#include <limits>

#include "core/standard_model.hpp"
#include "support/require.hpp"

namespace ulba::core {

namespace {
/// Sentinel for "the overloading PEs never catch up" (m == 0): far beyond any
/// schedule horizon but safely addable without overflow.
constexpr std::int64_t kNeverCatchUp =
    std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

PostLbShares post_lb_shares(const ModelParams& p, std::int64_t lb_iteration,
                            double alpha) {
  ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  const double share = p.balanced_share(lb_iteration);
  if (alpha == 0.0) return {share, share};
  ULBA_REQUIRE(p.N > 0 && p.N < p.P,
               "underloading requires 0 < N < P so someone absorbs the work");
  const double ratio =
      static_cast<double>(p.N) / static_cast<double>(p.P - p.N);
  return {(1.0 - alpha) * share, (1.0 + alpha * ratio) * share};
}

std::int64_t sigma_minus(const ModelParams& p, std::int64_t lb_iteration,
                         double alpha) {
  ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  if (alpha == 0.0) return 0;
  ULBA_REQUIRE(p.N > 0 && p.N < p.P,
               "underloading requires 0 < N < P so someone absorbs the work");
  if (p.m <= 0.0) return kNeverCatchUp;
  // Eq. (8): σ⁻(i) = ⌊ (1 + N/(P−N)) · α·Wtot(i) / (m·P) ⌋
  const double ratio =
      static_cast<double>(p.N) / static_cast<double>(p.P - p.N);
  const double v = (1.0 + ratio) * alpha * p.wtot(lb_iteration) /
                   (p.m * static_cast<double>(p.P));
  if (v >= static_cast<double>(kNeverCatchUp)) return kNeverCatchUp;
  return static_cast<std::int64_t>(std::floor(v));
}

double ulba_iteration_time(const ModelParams& p, std::int64_t lb_prev,
                           std::int64_t t, double alpha_open) {
  ULBA_REQUIRE(t >= 0, "iteration offset must be non-negative");
  if (alpha_open == 0.0) return standard_iteration_time(p, lb_prev, t);
  const PostLbShares shares = post_lb_shares(p, lb_prev, alpha_open);
  const std::int64_t sm = sigma_minus(p, lb_prev, alpha_open);
  if (t <= sm) {
    return (shares.non_overloading + p.a * static_cast<double>(t)) / p.omega;
  }
  return (shares.overloading + (p.m + p.a) * static_cast<double>(t)) / p.omega;
}

double ulba_interval_compute_time(const ModelParams& p, std::int64_t lb_prev,
                                  std::int64_t lb_next, double alpha_open) {
  ULBA_REQUIRE(lb_next > lb_prev, "interval must contain >= 1 iteration");
  if (alpha_open == 0.0)
    return standard_interval_compute_time(p, lb_prev, lb_next);

  const std::int64_t len = lb_next - lb_prev;
  const PostLbShares shares = post_lb_shares(p, lb_prev, alpha_open);
  const std::int64_t sm = sigma_minus(p, lb_prev, alpha_open);

  // Branch 1 of Eq. (5) covers t = 0 … min(σ⁻, L−1) inclusive.
  const std::int64_t last1 = std::min(sm, len - 1);
  const auto k1 = static_cast<double>(last1 + 1);
  // Σ_{t=0}^{last1} t = last1·(last1+1)/2
  const double tsum1 =
      static_cast<double>(last1) * static_cast<double>(last1 + 1) / 2.0;
  double total = k1 * shares.non_overloading + p.a * tsum1;

  // Branch 2 covers t = σ⁻+1 … L−1, when the interval outlives σ⁻.
  if (len - 1 > sm) {
    const auto k2 = static_cast<double>(len - 1 - sm);
    // Σ_{t=sm+1}^{L−1} t = (L−1)L/2 − sm(sm+1)/2
    const double tsum2 =
        static_cast<double>(len - 1) * static_cast<double>(len) / 2.0 -
        static_cast<double>(sm) * static_cast<double>(sm + 1) / 2.0;
    total += k2 * shares.overloading + (p.m + p.a) * tsum2;
  }
  return total / p.omega;
}

}  // namespace ulba::core
