// ULBA's analytic cost model — paper §III-A.
//
// At an LB step performed at iteration i, each of the N overloading PEs keeps
// only a fraction (1 − α) of the perfectly balanced share Wtot(i)/P; the
// removed workload is split evenly among the P − N others (Figure 1 /
// Eq. (6)):
//
//     W* = (1 − α)·Wtot(i)/P                  (overloading PEs)
//     W  = (1 + αN/(P−N))·Wtot(i)/P            (non-overloading PEs)
//
// Right after the step, iteration time is dominated by the (heavier)
// non-overloading PEs, which grow at rate `a`. The overloading PEs grow at
// `m + a` and catch up after σ⁻ iterations (Eq. (8)); from then on they
// dominate again. Eq. (5):
//
//     T_ulba(LBp, t) = (1/ω) · { (1 + αN/(P−N))·Wtot(LBp)/P + a·t,   t ≤ σ⁻
//                              { (1 − α)·Wtot(LBp)/P + (m+a)·t,      t > σ⁻
//
// Setting α = 0 collapses both branches to the standard model, which is the
// "ULBA is never worse" argument of §IV-A and is verified by unit tests.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace ulba::core {

/// Workloads right after an LB step at iteration i (Eq. (6)), for a given
/// underloading fraction α applied at that step.
struct PostLbShares {
  double overloading = 0.0;      ///< W* — share kept by each overloading PE
  double non_overloading = 0.0;  ///< W  — share of each non-overloading PE
};

/// Eq. (6). Requires 0 < N < P when α > 0 (validated).
[[nodiscard]] PostLbShares post_lb_shares(const ModelParams& p,
                                          std::int64_t lb_iteration,
                                          double alpha);

/// σ⁻ — Eq. (8): iterations for the overloading PEs to climb back to the
/// non-overloading PEs' load after a ULBA step at `lb_iteration` with
/// fraction `alpha`. Returns 0 when α == 0; returns a very large sentinel
/// (never caught up within any plausible horizon) when m == 0.
[[nodiscard]] std::int64_t sigma_minus(const ModelParams& p,
                                       std::int64_t lb_iteration,
                                       double alpha);

/// Eq. (5): seconds of the t-th iteration (t = 0, 1, …) after an LB step at
/// `lb_prev` that applied fraction `alpha_open`. alpha_open == 0 reproduces
/// the standard model exactly.
[[nodiscard]] double ulba_iteration_time(const ModelParams& p,
                                         std::int64_t lb_prev, std::int64_t t,
                                         double alpha_open);

/// Compute-only time of the interval [lb_prev, lb_next) under ULBA, i.e. the
/// sum of Eq. (5) over t = 0 … L−1 in closed form (two arithmetic series
/// split at σ⁻). Excludes the LB cost C, like its standard counterpart.
[[nodiscard]] double ulba_interval_compute_time(const ModelParams& p,
                                                std::int64_t lb_prev,
                                                std::int64_t lb_next,
                                                double alpha_open);

}  // namespace ulba::core
