// Application model parameters — Table I of the paper.
//
// The analytic application model (paper §II-C and §III-A) describes a
// bulk-synchronous iterative application of γ iterations running on P
// processing elements (PEs) of speed ω FLOPS. The workload starts at Wtot(0)
// FLOP and grows by ΔW = a·P + m·N FLOP per iteration: every PE gains `a`,
// and the N *overloading* PEs gain an extra `m`. The load balancer costs C
// seconds per call; ULBA's knob α ∈ [0, 1] is the fraction of the perfectly
// balanced share removed from each overloading PE at an LB step.
#pragma once

#include <cstdint>

namespace ulba::core {

/// Parameters of the analytic application model (Table I).
/// All workloads are FLOP; rates are FLOP per iteration; C is seconds.
struct ModelParams {
  std::int64_t P = 0;     ///< number of processing elements
  std::int64_t N = 0;     ///< number of overloading PEs (0 ≤ N < P)
  std::int64_t gamma = 0; ///< number of application iterations
  double w0 = 0.0;        ///< initial total workload Wtot(0) [FLOP]
  double a = 0.0;         ///< per-iteration workload gained by every PE [FLOP/it]
  double m = 0.0;         ///< extra per-iteration workload of overloading PEs [FLOP/it]
  double alpha = 0.0;     ///< ULBA underloading fraction ∈ [0, 1]
  double omega = 1e9;     ///< PE speed [FLOPS]; paper simulations use 1 GFLOPS
  double lb_cost = 0.0;   ///< LB call cost C [seconds]

  /// ΔW = a·P + m·N — total workload growth per iteration (Eq. below (1)).
  [[nodiscard]] double delta_w() const noexcept {
    return a * static_cast<double>(P) + m * static_cast<double>(N);
  }

  /// Menon's average workload-increase rate  â = a + mN/P.
  [[nodiscard]] double a_hat() const noexcept {
    return a + m * static_cast<double>(N) / static_cast<double>(P);
  }

  /// Menon's extra rate of the most loaded PEs  m̂ = m(P−N)/P.
  [[nodiscard]] double m_hat() const noexcept {
    return m * static_cast<double>(P - N) / static_cast<double>(P);
  }

  /// Wtot(i) = Wtot(0) + i·ΔW — Eq. (1).
  [[nodiscard]] double wtot(std::int64_t iteration) const noexcept {
    return w0 + static_cast<double>(iteration) * delta_w();
  }

  /// Perfectly balanced per-PE share at iteration i: Wtot(i)/P.
  [[nodiscard]] double balanced_share(std::int64_t iteration) const noexcept {
    return wtot(iteration) / static_cast<double>(P);
  }

  /// Throws std::invalid_argument when any parameter is out of domain
  /// (P ≥ 1, 0 ≤ N < P, γ ≥ 1, workloads/rates/cost non-negative,
  /// α ∈ [0,1], ω > 0).
  void validate() const;
};

}  // namespace ulba::core
