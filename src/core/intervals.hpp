// Optimal LB-interval approximations — paper §III-B.
//
// The standard method's interval is Menon et al.'s τ = √(2Cω/m̂): balance
// when the accumulated imbalance cost equals the LB cost. ULBA delays the
// clock's start to σ⁻ (no degradation until the overloading PEs catch up) and
// additionally charges the overhead its *next* underloading step will impose
// on the non-overloading PEs (Eq. (11)), yielding the quadratic Eq. (12)
// whose positive root τ gives σ⁺ = σ⁻ + τ. With α = 0 the machinery
// collapses to σ⁻ = 0, σ⁺ = τ_Menon — exactly as the paper notes.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace ulba::core {

/// Menon et al.'s optimal LB interval for the standard method:
/// τ = √(2·C·ω / m̂) iterations. Returns +infinity when m̂ == 0 (a balanced
/// application never needs rebalancing).
[[nodiscard]] double menon_tau(const ModelParams& p);

/// The exact discrete counterpart: the smallest τ with
/// Σ_{t=0}^{τ−1} m̂·t/ω ≥ C, i.e. τ = (1 + √(1 + 8Cω/m̂))/2. The paper notes
/// that "changing the integral into a discrete sum only leads to a
/// non-significant change" — this function quantifies it (the difference is
/// ≈ ½ iteration; see the unit tests).
[[nodiscard]] double menon_tau_discrete(const ModelParams& p);

/// The positive root τ of Eq. (12): iterations past σ⁻ until the accumulated
/// imbalance cost equals the LB cost C plus the ULBA overhead of the *next*
/// step with fraction `alpha_next`. `lb_prev` is the interval's opening step;
/// `sigma_minus_prev` the σ⁻ of that opening (0 for a standard opening).
/// Returns +infinity when m̂ == 0.
[[nodiscard]] double sigma_plus_tau(const ModelParams& p, std::int64_t lb_prev,
                                    std::int64_t sigma_minus_prev,
                                    double alpha_next);

/// σ⁺ — the recommended LB point, in iterations after `lb_prev`:
/// σ⁺ = σ⁻(lb_prev, alpha_open) + τ(Eq. 12 with alpha_next).
/// `alpha_open` is the fraction applied AT lb_prev (0 for the initial
/// implicit balance), `alpha_next` the fraction the upcoming step will apply.
[[nodiscard]] double sigma_plus(const ModelParams& p, std::int64_t lb_prev,
                                double alpha_open, double alpha_next);

/// Range [σ⁻, σ⁺] within which §III-B argues the next LB call should occur.
struct IntervalBounds {
  std::int64_t lower = 0;  ///< σ⁻ (integral, Eq. (8) floors)
  double upper = 0.0;      ///< σ⁺ (real-valued)
};

[[nodiscard]] IntervalBounds interval_bounds(const ModelParams& p,
                                             std::int64_t lb_prev,
                                             double alpha_open,
                                             double alpha_next);

}  // namespace ulba::core
