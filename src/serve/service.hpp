// `ulba serve` — the alpha-scheduler as a long-lived service on the SPMD
// runtime. One rank runs `serve_loop`: it blocks for the next request,
// opportunistically drains up to `batch_limit` already-queued messages per
// wakeup (mailbox batching), answers each from the sharded ScheduleCache,
// and exits once every other rank has sent a done marker. Any other rank
// talks to it through `ScheduleClient`, which supports pipelining
// (submit-many, await-later) with out-of-order completion via per-request
// correlation ids.
//
// Determinism contract: responses depend only on the request bytes — never
// on arrival order, batch boundaries, or cache state — because cache hits
// return the stored cold evaluation verbatim (only `provenance` differs).
#pragma once

#include <cstdint>
#include <map>

#include "opt/evaluate.hpp"
#include "runtime/comm.hpp"

namespace ulba::serve {

// Service channel tags (≥ 900; the distributed instance sweep uses 910).
inline constexpr int kTagScheduleRequest = 900;
inline constexpr int kTagScheduleResponse = 901;
inline constexpr int kTagClientDone = 902;

struct ServeOptions {
  int server_rank = 0;
  /// Max messages handled per wakeup: one blocking receive plus up to
  /// batch_limit − 1 already-queued messages drained without blocking.
  std::int64_t batch_limit = 32;
  std::int64_t cache_capacity = 4096;
  std::int64_t cache_shards = 8;
};

struct ServeMetrics {
  std::int64_t requests = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
  std::int64_t batches = 0;       ///< wakeups of the server loop
  std::int64_t max_batch = 0;     ///< largest single-wakeup message count
  std::int64_t request_bytes = 0;
  std::int64_t response_bytes = 0;
  std::int64_t clients_finished = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return requests == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(requests);
  }
};

/// Run the service on the calling rank (must be options.server_rank) until
/// all `size − 1` other ranks have sent kTagClientDone. The cache outlives
/// the loop when supplied by the caller (e.g. to inspect or reuse it).
ServeMetrics serve_loop(runtime::Comm& comm, opt::ScheduleCache& cache,
                        const ServeOptions& options);

/// Convenience overload owning a loop-local cache.
ServeMetrics serve_loop(runtime::Comm& comm, const ServeOptions& options);

/// Client endpoint for any non-server rank. Each request carries a
/// correlation id so responses may be awaited out of submission order.
class ScheduleClient {
 public:
  ScheduleClient(runtime::Comm& comm, int server_rank);

  /// Fire-and-forget submit; returns the correlation id to await.
  std::uint64_t submit(const core::ScheduleRequest& request);

  /// Block until the response for `id` arrives (stashing any other
  /// responses delivered in between).
  [[nodiscard]] core::ScheduleResponse await(std::uint64_t id);

  /// submit + await — the synchronous query path.
  [[nodiscard]] core::ScheduleResponse query(
      const core::ScheduleRequest& request);

  /// Tell the server this client is finished. Call exactly once, after the
  /// last await; the server exits when every client has called it.
  void finish();

 private:
  runtime::Comm* comm_;
  int server_rank_;
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, core::ScheduleResponse> stash_;
};

}  // namespace ulba::serve
