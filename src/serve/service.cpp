#include "serve/service.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "runtime/mailbox.hpp"
#include "support/require.hpp"

namespace ulba::serve {
namespace {

// Envelope: [uint64 correlation id][codec payload]. The id stays outside
// the schedule-query codec so the cache key is exactly the request bytes.
std::vector<std::byte> envelope(std::uint64_t id,
                                std::span<const std::byte> payload) {
  std::vector<std::byte> out(sizeof(std::uint64_t) + payload.size());
  // ulba-lint: allow(codec-discipline): `out` is constructed with exactly
  // id + payload bytes one line up; there is no size to re-check.
  std::memcpy(out.data(), &id, sizeof(id));
  if (!payload.empty())
    // ulba-lint: allow(codec-discipline): bounded by the same construction.
    std::memcpy(out.data() + sizeof(id), payload.data(), payload.size());
  return out;
}

std::uint64_t open_envelope(const runtime::Message& message,
                            std::span<const std::byte>& payload_out) {
  ULBA_REQUIRE(message.payload.size() >= sizeof(std::uint64_t),
               "schedule service message too short for a correlation id");
  std::uint64_t id = 0;
  std::memcpy(&id, message.payload.data(), sizeof(id));
  payload_out = std::span<const std::byte>(message.payload)
                    .subspan(sizeof(std::uint64_t));
  return id;
}

void handle_request(runtime::Comm& comm, opt::ScheduleCache& cache,
                    const runtime::Message& message, ServeMetrics& metrics) {
  std::span<const std::byte> payload;
  const std::uint64_t id = open_envelope(message, payload);
  std::vector<std::byte> request_bytes(payload.begin(), payload.end());
  const core::ScheduleRequest request =
      core::deserialize_request(request_bytes);
  core::ScheduleResponse response =
      cache.evaluate_serialized(request_bytes, request);
  response.provenance.server_rank = comm.rank();
  ++metrics.requests;
  if (response.provenance.cache_hit != 0)
    ++metrics.cache_hits;
  else
    ++metrics.cache_misses;
  const std::vector<std::byte> response_bytes =
      core::serialize_response(response);
  metrics.request_bytes +=
      static_cast<std::int64_t>(message.payload.size());
  metrics.response_bytes +=
      static_cast<std::int64_t>(sizeof(std::uint64_t) + response_bytes.size());
  comm.send_bytes(message.source, kTagScheduleResponse,
                  envelope(id, response_bytes));
}

}  // namespace

ServeMetrics serve_loop(runtime::Comm& comm, opt::ScheduleCache& cache,
                        const ServeOptions& options) {
  ULBA_REQUIRE(comm.rank() == options.server_rank,
               "serve_loop must run on the configured server rank");
  ULBA_REQUIRE(options.batch_limit >= 1, "serve batch limit must be >= 1");
  ServeMetrics metrics;
  const int clients = comm.size() - 1;
  while (metrics.clients_finished < clients) {
    // One blocking receive, then drain whatever is already queued — the
    // mailbox-batching analogue of an event loop's "take the whole ready
    // list" wakeup.
    std::vector<runtime::Message> batch;
    batch.push_back(comm.recv_message(runtime::kAnySource, runtime::kAnyTag));
    runtime::Message extra;
    while (static_cast<std::int64_t>(batch.size()) < options.batch_limit &&
           comm.try_recv_message(runtime::kAnySource, runtime::kAnyTag,
                                 extra)) {
      batch.push_back(std::move(extra));
    }
    ++metrics.batches;
    metrics.max_batch =
        std::max(metrics.max_batch, static_cast<std::int64_t>(batch.size()));
    for (const runtime::Message& message : batch) {
      switch (message.tag) {
        case kTagClientDone:
          ++metrics.clients_finished;
          break;
        case kTagScheduleRequest:
          handle_request(comm, cache, message, metrics);
          break;
        default:
          ULBA_REQUIRE(false, "unexpected tag on the schedule service rank");
      }
    }
  }
  const opt::CacheStats stats = cache.stats();
  metrics.cache_evictions = stats.evictions;
  return metrics;
}

ServeMetrics serve_loop(runtime::Comm& comm, const ServeOptions& options) {
  opt::ScheduleCache cache(options.cache_capacity, options.cache_shards);
  return serve_loop(comm, cache, options);
}

ScheduleClient::ScheduleClient(runtime::Comm& comm, int server_rank)
    : comm_(&comm), server_rank_(server_rank) {
  ULBA_REQUIRE(comm.rank() != server_rank,
               "the server rank cannot be its own client");
}

std::uint64_t ScheduleClient::submit(const core::ScheduleRequest& request) {
  const std::uint64_t id = next_id_++;
  comm_->send_bytes(server_rank_, kTagScheduleRequest,
                    envelope(id, core::serialize_request(request)));
  return id;
}

core::ScheduleResponse ScheduleClient::await(std::uint64_t id) {
  for (;;) {
    const auto it = stash_.find(id);
    if (it != stash_.end()) {
      core::ScheduleResponse response = std::move(it->second);
      stash_.erase(it);
      return response;
    }
    const runtime::Message message =
        comm_->recv_message(server_rank_, kTagScheduleResponse);
    std::span<const std::byte> payload;
    const std::uint64_t got = open_envelope(message, payload);
    stash_.emplace(got, core::deserialize_response(payload));
  }
}

core::ScheduleResponse ScheduleClient::query(
    const core::ScheduleRequest& request) {
  return await(submit(request));
}

void ScheduleClient::finish() {
  comm_->send_bytes(server_rank_, kTagClientDone, {});
}

}  // namespace ulba::serve
