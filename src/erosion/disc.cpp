#include "erosion/disc.hpp"

#include <cmath>
#include <cstring>

#include "erosion/domain.hpp"
#include "support/require.hpp"

namespace ulba::erosion {

std::pair<std::int64_t, std::int64_t> disc_column_span(const RockDisc& disc) {
  return {disc.cx - disc.radius, disc.cx + disc.radius + 1};
}

std::pair<std::int64_t, std::int64_t> disc_row_span(const RockDisc& disc) {
  return {disc.cy - disc.radius, disc.cy + disc.radius + 1};
}

DiscState build_disc_state(const RockDisc& disc) {
  DiscState d;
  d.side = 2 * disc.radius + 1;
  d.x0 = disc.cx - disc.radius;
  d.y0 = disc.cy - disc.radius;
  d.erosion_prob = disc.erosion_prob;
  d.cells.assign(static_cast<std::size_t>(d.side * d.side), Cell::kOutside);

  const auto r2 =
      static_cast<double>(disc.radius) * static_cast<double>(disc.radius);
  for (std::int64_t ly = 0; ly < d.side; ++ly) {
    for (std::int64_t lx = 0; lx < d.side; ++lx) {
      const auto dx = static_cast<double>(lx - disc.radius);
      const auto dy = static_cast<double>(ly - disc.radius);
      if (dx * dx + dy * dy <= r2) {
        d.cells[static_cast<std::size_t>(ly * d.side + lx)] =
            Cell::kRockInterior;
        ++d.rock_remaining;
      }
    }
  }

  // Promote boundary rock (any non-rock 4-neighbour) to frontier.
  for (std::int64_t ly = 0; ly < d.side; ++ly) {
    for (std::int64_t lx = 0; lx < d.side; ++lx) {
      const auto idx = static_cast<std::size_t>(ly * d.side + lx);
      if (d.cells[idx] != Cell::kRockInterior) continue;
      const bool touches_fluid =
          d.at(lx - 1, ly) == Cell::kOutside ||
          d.at(lx + 1, ly) == Cell::kOutside ||
          d.at(lx, ly - 1) == Cell::kOutside ||
          d.at(lx, ly + 1) == Cell::kOutside;
      if (touches_fluid) {
        d.cells[idx] = Cell::kRockFrontier;
        d.frontier.push_back(static_cast<std::int32_t>(idx));
      }
    }
  }
  return d;
}

std::vector<std::int32_t> decide_disc(const DiscState& d, support::Rng& rng) {
  // Decide against the pre-step state (synchronous CA semantics). "Each
  // fluid cell computes a probabilistic erosion of neighboring rock cells":
  // a rock cell takes one erosion trial per adjacent fluid face. A refined
  // neighbour consists of four finer cells, two of which border this rock
  // cell — refinement therefore doubles that face's trials, which is
  // precisely the paper's "creating even more imbalance" acceleration.
  std::vector<std::int32_t> to_erode;
  if (d.frontier.empty()) return to_erode;
  const auto fluid_faces = [&](std::int64_t lx, std::int64_t ly) -> int {
    switch (d.at(lx, ly)) {
      case Cell::kOutside:
        return 1;
      case Cell::kRefined:
        return 2;
      default:
        return 0;
    }
  };
  for (const std::int32_t idx : d.frontier) {
    const std::int64_t lx = idx % d.side;
    const std::int64_t ly = idx / d.side;
    const int trials = fluid_faces(lx - 1, ly) + fluid_faces(lx + 1, ly) +
                       fluid_faces(lx, ly - 1) + fluid_faces(lx, ly + 1);
    if (trials == 0) continue;  // fully enclosed (cannot happen for
                                // frontier cells, but cheap)
    const double p_eff = 1.0 - std::pow(1.0 - d.erosion_prob, trials);
    if (rng.bernoulli(p_eff)) to_erode.push_back(idx);
  }
  return to_erode;
}

void apply_disc(DiscState& d, const std::vector<std::int32_t>& to_erode) {
  if (to_erode.empty()) return;

  // Rock → refined fluid.
  for (const std::int32_t idx : to_erode) {
    d.cells[static_cast<std::size_t>(idx)] = Cell::kRefined;
    --d.rock_remaining;
  }

  // Newly exposed interior rock joins the frontier.
  const auto expose = [&](std::int64_t lx, std::int64_t ly) {
    if (lx < 0 || ly < 0 || lx >= d.side || ly >= d.side) return;
    const auto idx = static_cast<std::size_t>(ly * d.side + lx);
    if (d.cells[idx] == Cell::kRockInterior) {
      d.cells[idx] = Cell::kRockFrontier;
      d.frontier.push_back(static_cast<std::int32_t>(idx));
    }
  };
  for (const std::int32_t idx : to_erode) {
    const std::int64_t lx = idx % d.side;
    const std::int64_t ly = idx / d.side;
    expose(lx - 1, ly);
    expose(lx + 1, ly);
    expose(lx, ly - 1);
    expose(lx, ly + 1);
  }

  // Compact the frontier list: drop everything that is no longer frontier.
  std::erase_if(d.frontier, [&](std::int32_t idx) {
    return d.cells[static_cast<std::size_t>(idx)] != Cell::kRockFrontier;
  });
}

namespace {

// Wire layout: 1 × int64 format version + 6 × int64 header {disc_id, x0,
// y0, side, rock_remaining, frontier_count} + 1 × double erosion_prob +
// side² cell bytes + frontier_count × int32. Everything little-endian host
// order — the runtime's ranks share one machine (BitwisePortable
// discipline). The version leads so a stale peer fails loudly on the very
// first read instead of misparsing the header.
constexpr std::int64_t kDiscFormatVersion = 1;
constexpr std::size_t kHeaderInts = 7;

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t size) {
  if (size == 0) return;  // memcpy's source is declared nonnull
  const std::size_t at = out.size();
  out.resize(at + size);
  std::memcpy(out.data() + at, data, size);
}

template <typename T>
void append_raw(std::vector<std::byte>& out, const T& value) {
  append_bytes(out, &value, sizeof(T));
}

template <typename T>
T read_raw(std::span<const std::byte>& in) {
  ULBA_REQUIRE(in.size() >= sizeof(T), "disc payload truncated");
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}

}  // namespace

std::vector<std::byte> serialize_disc(std::size_t disc_id,
                                      const DiscState& d) {
  std::vector<std::byte> out;
  out.reserve(kHeaderInts * sizeof(std::int64_t) + sizeof(double) +
              d.cells.size() + d.frontier.size() * sizeof(std::int32_t));
  append_raw(out, kDiscFormatVersion);
  append_raw(out, static_cast<std::int64_t>(disc_id));
  append_raw(out, d.x0);
  append_raw(out, d.y0);
  append_raw(out, d.side);
  append_raw(out, d.rock_remaining);
  append_raw(out, static_cast<std::int64_t>(d.frontier.size()));
  append_raw(out, d.erosion_prob);
  append_bytes(out, d.cells.data(), d.cells.size());
  append_bytes(out, d.frontier.data(),
               d.frontier.size() * sizeof(std::int32_t));
  return out;
}

DiscState deserialize_disc(std::span<const std::byte> payload,
                           std::size_t expected_disc_id) {
  const auto version = read_raw<std::int64_t>(payload);
  ULBA_REQUIRE(version == kDiscFormatVersion,
               "unsupported disc payload format version");
  const auto disc_id = read_raw<std::int64_t>(payload);
  ULBA_REQUIRE(disc_id == static_cast<std::int64_t>(expected_disc_id),
               "disc hand-off id does not match the expected disc");
  DiscState d;
  d.x0 = read_raw<std::int64_t>(payload);
  d.y0 = read_raw<std::int64_t>(payload);
  d.side = read_raw<std::int64_t>(payload);
  d.rock_remaining = read_raw<std::int64_t>(payload);
  const auto frontier_count = read_raw<std::int64_t>(payload);
  d.erosion_prob = read_raw<double>(payload);
  ULBA_REQUIRE(d.side >= 1 && frontier_count >= 0, "malformed disc header");
  const auto cell_count = static_cast<std::size_t>(d.side * d.side);
  ULBA_REQUIRE(payload.size() ==
                   cell_count + static_cast<std::size_t>(frontier_count) *
                                    sizeof(std::int32_t),
               "disc payload size does not match its header");
  d.cells.resize(cell_count);
  std::memcpy(d.cells.data(), payload.data(), cell_count);
  payload = payload.subspan(cell_count);
  d.frontier.resize(static_cast<std::size_t>(frontier_count));
  // A fully eroded disc migrates with an empty frontier: both memcpy
  // pointers would be null there, and both are declared nonnull.
  if (!d.frontier.empty())
    std::memcpy(d.frontier.data(), payload.data(),
                d.frontier.size() * sizeof(std::int32_t));
  return d;
}

}  // namespace ulba::erosion
