// The counter-RNG erosion fast path — ONE decide+apply kernel shared by all
// steppers (serial, pooled, sharded, distributed).
//
// The fork-RNG steppers are decide-parallel at best: the stream split, the
// burn passes, and the commit all serialize in disc order because mt19937
// draws only exist in sequence. With support::CounterRng every Bernoulli
// draw is addressed by (disc, iteration, cell index) instead, so NOTHING in
// the step depends on evaluation order:
//
//   A. flatten — the per-disc pre-step frontiers are copied into one
//      contiguous SoA array (cell indices + per-disc offsets), and the
//      per-disc trials -> threshold table ceil((1-(1-p)^trials) * 2^53) is
//      precomputed once (trials <= 8): the per-cell decision collapses to
//      `draw >> 11 < threshold`, eliminating both the pow() and the
//      int -> double conversion the fork path pays per cell, while staying
//      bit-equal to `uniform01(draw) < p_eff` (scaling by 2^53 is exact);
//   B. decide — one batched pass over the flat array, chunked across the
//      ThreadPool (contiguous ranges, NOT per-cell tasks: parallel_for
//      claims indices under a mutex and is sized for coarse items). Each
//      cell's draw is CounterRng(seed, disc_id).draw(iteration, cell), so
//      any chunking yields identical flags;
//   C. apply — per-disc compaction of the flagged cells (in frontier
//      order, matching decide_disc's output order) + apply_disc, one task
//      per disc across the pool. Disc state is disc-local, so discs are
//      independent.
//
// Without a pool the flatten/compact round-trip is skipped entirely: the
// serial path decides straight off each disc's frontier into ws.erode —
// same position-addressed draws, same bits, half the memory traffic.
//
// The caller commits the per-column workload accounting afterwards from
// CounterWorkspace::erode. The commit is itself order-independent (every
// eroded cell credits the same constant to a column accumulator — the same
// property the distributed halo exchange relies on), so the whole step is
// bit-identical for every thread count, shard count, and rank count by
// construction. Locked by test_counter_rng and the counter sweeps of
// test_sharded_erosion / test_distributed_erosion.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "erosion/disc.hpp"
#include "support/thread_pool.hpp"

namespace ulba::erosion {

/// Reusable flat buffers of counter_decide_apply — kept across steps so the
/// hot loop never allocates once the frontiers reach steady state.
struct CounterWorkspace {
  std::vector<std::size_t> offsets;   ///< per-disc [start, end) into cells
  std::vector<std::int32_t> cells;    ///< flattened pre-step frontiers
  std::vector<std::uint8_t> flags;    ///< 1 = cell erodes; parallel to cells
  /// Per disc: trials -> ceil(p_eff * 2^53), the integer Bernoulli gate.
  std::vector<std::array<std::uint64_t, 9>> thresh;
  /// Per-disc eroded cells (frontier order — decide_disc's output order),
  /// the caller's commit input. Entry k belongs to discs[k].
  std::vector<std::vector<std::int32_t>> erode;
};

/// One counter-addressed decide+apply pass over `discs` at `iteration`.
/// `disc_ids[k]` is the GLOBAL id of discs[k] — the RNG stream key — so a
/// rank/shard stepping a subset produces exactly the draws the full-domain
/// stepper would. Pass pool == nullptr (or a pool of 1) for the inline
/// serial path; results are bit-identical either way. Returns the number of
/// cells eroded across `discs`; per-disc detail stays in ws.erode.
std::int64_t counter_decide_apply(std::span<DiscState> discs,
                                  std::span<const std::size_t> disc_ids,
                                  std::uint64_t seed, std::int64_t iteration,
                                  support::ThreadPool* pool,
                                  CounterWorkspace& ws);

}  // namespace ulba::erosion
