// The erosion workload — paper §IV-B.
//
// A 2-D mesh of columns × rows cells holds fluid everywhere except inside P
// rock discs placed along the x-axis. Every iteration, each rock cell on a
// rock/fluid interface is eroded by its fluid neighbours with probability
// 1 − (1 − p)^k (p = the disc's erosion probability, k = fluid neighbours,
// 4-neighbourhood). An eroded rock cell converts into `refinement_factor`
// finer fluid cells (the paper's mesh-refinement mechanism), so erosion both
// *adds* workload and *concentrates* it around strongly erodible discs —
// the m ≫ a regime the ULBA model targets.
//
// Implementation notes: fluid is uniform background, so the domain only
// materializes each disc's bounding box (state per cell) and maintains
// per-column workloads incrementally. Memory and step cost are O(Σ disc
// area) and O(frontier), letting paper-scale domains (P·1000 × 1000 cells,
// radius 250) run in seconds on one node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "erosion/counter_kernel.hpp"
#include "erosion/disc.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace ulba::erosion {

struct RockDisc {
  std::int64_t cx = 0;      ///< disc center, x (column)
  std::int64_t cy = 0;      ///< disc center, y (row)
  std::int64_t radius = 0;  ///< cells within this Euclidean radius are rock
  double erosion_prob = 0.0;  ///< per fluid-neighbour erosion probability
};

struct DomainConfig {
  std::int64_t columns = 0;  ///< X — domain width
  std::int64_t rows = 0;     ///< Y — domain height
  std::vector<RockDisc> discs;
  double flop_per_cell = 52.0;   ///< fluid-cell cost [FLOP]; 52–1165 per [14]
  double bytes_per_cell = 64.0;  ///< fluid-cell state size for migration
  double refinement_factor = 4.0;  ///< fine cells per eroded rock cell

  void validate() const;
};

class ErosionDomain {
 public:
  explicit ErosionDomain(DomainConfig config);

  [[nodiscard]] const DomainConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::int64_t columns() const noexcept {
    return config_.columns;
  }
  [[nodiscard]] std::int64_t rows() const noexcept { return config_.rows; }

  /// One erosion iteration (synchronous cellular-automaton update: all
  /// erosion decisions are taken against the pre-step state). Returns the
  /// number of rock cells eroded. All discs draw from the one shared stream,
  /// in disc order — the classic serial stepper.
  std::int64_t step(support::Rng& rng);

  /// One erosion iteration across a thread pool. Discs are pairwise disjoint
  /// by construction (DomainConfig::validate), so each disc erodes
  /// independently on its own RNG substream: the step first splits one
  /// 64-bit draw per disc off the master stream (serially, in disc order),
  /// then erodes discs concurrently, then commits the per-column workload
  /// deltas serially in disc order. Results are therefore bit-identical for
  /// every pool size — a pool of 1 IS the serial reference — but the
  /// trajectory differs from the shared-stream `step(rng)` overload, which
  /// interleaves all discs on one stream. The master `rng` advances by
  /// exactly disc-count draws regardless of erosion outcomes.
  std::int64_t step(support::Rng& rng, support::ThreadPool& pool);

  /// One erosion iteration on the counter-RNG fast path: every Bernoulli
  /// draw is addressed by (disc, iteration, cell) through support::CounterRng
  /// keyed with `seed` (see erosion/counter_kernel.hpp), so decide AND apply
  /// run fully parallel and the result is bit-identical for EVERY pool size
  /// — nullptr and a pool of 1 are the serial reference. A different (equally
  /// deterministic and equally locked) trajectory than both fork-RNG
  /// `step(rng)` overloads; `iteration` must advance by one per call to
  /// address fresh draws.
  std::int64_t step_counter(std::uint64_t seed, std::int64_t iteration,
                            support::ThreadPool* pool = nullptr);

  /// Per-column workload [FLOP] — what the stripe partitioner cuts.
  [[nodiscard]] std::span<const double> column_weights() const noexcept {
    return weights_;
  }

  /// Per-column data volume [bytes] — what a migration must move.
  [[nodiscard]] std::vector<double> column_bytes() const;

  /// Current total workload Wtot [FLOP].
  [[nodiscard]] double total_workload() const noexcept { return total_; }

  [[nodiscard]] std::int64_t rock_cells_remaining() const noexcept {
    return rock_remaining_;
  }
  [[nodiscard]] std::int64_t eroded_cells() const noexcept { return eroded_; }
  [[nodiscard]] std::int64_t frontier_size() const noexcept;
  [[nodiscard]] std::int64_t disc_rock_remaining(std::size_t disc) const;

  [[nodiscard]] std::size_t disc_count() const noexcept {
    return discs_.size();
  }
  /// Current frontier size of one disc. This is also EXACTLY the number of
  /// RNG draws `step(rng)` spends on the disc (every frontier cell has at
  /// least one fluid face, so the `trials == 0` skip never fires) — the
  /// invariant ShardedDomain's stream-splitting discipline is built on, and
  /// that the sharded property suite locks down.
  [[nodiscard]] std::int64_t disc_frontier_size(std::size_t disc) const;

 private:
  // ShardedDomain drives the decide/apply/commit phases across shards while
  // preserving this class's serial trajectory; it is the one external user of
  // the disc states and the commit phase. (The disc mechanics themselves —
  // DiscState, build/decide/apply — live in erosion/disc.hpp so the
  // SPMD-distributed stepper shares them without holding a full domain.)
  friend class ShardedDomain;

  /// Rasterize one disc (erosion/disc.hpp) and fold its rock footprint into
  /// the per-column workload baseline.
  void build_disc(const RockDisc& disc);
  /// Commit a disc's erosion to the shared per-column workload accounting.
  /// Must run serially, in disc order, for deterministic FP summation.
  std::int64_t commit_disc(const DiscState& d,
                           const std::vector<std::int32_t>& to_erode);

  DomainConfig config_;
  std::vector<DiscState> discs_;
  std::vector<double> weights_;
  double total_ = 0.0;
  std::int64_t rock_remaining_ = 0;
  std::int64_t eroded_ = 0;
  // step_counter's reusable buffers: [0, disc_count) ids + flat SoA arrays.
  std::vector<std::size_t> counter_ids_;
  CounterWorkspace counter_ws_;
};

}  // namespace ulba::erosion
