#include "erosion/counter_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "support/counter_rng.hpp"
#include "support/require.hpp"

namespace ulba::erosion {

namespace {

/// Fluid faces a frontier cell presents to (lx, ly): outside fluid counts
/// one trial, a refined neighbour two (its two finer cells both border the
/// rock cell) — the same rule as decide_disc.
inline int fluid_faces(const DiscState& d, std::int64_t lx, std::int64_t ly) {
  switch (d.at(lx, ly)) {
    case Cell::kOutside:
      return 1;
    case Cell::kRefined:
      return 2;
    default:
      return 0;
  }
}

/// trials -> ceil((1-(1-p)^trials) * 2^53). `draw >> 11 < thresh[trials]`
/// decides exactly like `CounterRng::uniform01 < p_eff`: draw >> 11 is an
/// integer below 2^53, p_eff * 2^53 is an exact power-of-two rescale, and
/// x < ceil(y) == x < y for integer x. p_eff == 1 maps to 2^53 itself,
/// above every possible draw — certain erosion stays certain.
std::array<std::uint64_t, 9> threshold_table(double erosion_prob) {
  std::array<std::uint64_t, 9> thresh{};
  const double keep = 1.0 - erosion_prob;
  double pow_keep = 1.0;
  for (std::size_t t = 0; t < thresh.size(); ++t) {
    thresh[t] = static_cast<std::uint64_t>(
        std::ceil((1.0 - pow_keep) * 0x1p53));
    pow_keep *= keep;
  }
  return thresh;
}

/// The pre-step trial count of one frontier cell.
inline int cell_trials(const DiscState& d, std::int32_t idx) {
  const std::int64_t lx = idx % d.side;
  const std::int64_t ly = idx / d.side;
  return fluid_faces(d, lx - 1, ly) + fluid_faces(d, lx + 1, ly) +
         fluid_faces(d, lx, ly - 1) + fluid_faces(d, lx, ly + 1);
}

/// Decide flags for the flat positions [begin, end): locate the owning disc
/// via the offsets (amortized pointer walk — ranges are contiguous), look
/// the threshold up by trial count, and take the draw addressed by
/// (iteration, cell index). Writes only flags[begin..end), so concurrent
/// chunks never touch the same byte.
void decide_range(std::span<const DiscState> discs,
                  std::span<const std::size_t> disc_ids, std::uint64_t seed,
                  std::uint64_t iteration, const CounterWorkspace& ws,
                  std::span<std::uint8_t> flags, std::size_t begin,
                  std::size_t end) {
  if (begin >= end) return;
  // Last disc whose slice starts at or before `begin`; empty slices are
  // skipped by the advance below.
  std::size_t k = static_cast<std::size_t>(
                      std::distance(ws.offsets.begin(),
                                    std::upper_bound(ws.offsets.begin(),
                                                     ws.offsets.end(), begin))) -
                  1;
  const DiscState* d = &discs[k];
  support::CounterRng rng(seed, static_cast<std::uint64_t>(disc_ids[k]));
  for (std::size_t j = begin; j < end; ++j) {
    while (j >= ws.offsets[k + 1]) {
      ++k;
      d = &discs[k];
      rng = support::CounterRng(seed,
                                static_cast<std::uint64_t>(disc_ids[k]));
    }
    const std::int32_t idx = ws.cells[j];
    const int trials = cell_trials(*d, idx);
    if (trials == 0) continue;  // cannot happen for frontier cells, but
                                // mirror decide_disc's guard
    const std::uint64_t draw =
        rng.draw(iteration, static_cast<std::uint64_t>(idx)) >> 11;
    if (draw < ws.thresh[k][static_cast<std::size_t>(trials)]) flags[j] = 1;
  }
}

}  // namespace

std::int64_t counter_decide_apply(std::span<DiscState> discs,
                                  std::span<const std::size_t> disc_ids,
                                  std::uint64_t seed, std::int64_t iteration,
                                  support::ThreadPool* pool,
                                  CounterWorkspace& ws) {
  const std::size_t n = discs.size();
  ULBA_REQUIRE(disc_ids.size() == n,
               "counter kernel needs one global id per disc");
  ULBA_REQUIRE(iteration >= 0, "iteration must be non-negative");
  const auto iter = static_cast<std::uint64_t>(iteration);

  ws.thresh.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    ws.thresh[k] = threshold_table(discs[k].erosion_prob);
  ws.erode.resize(n);

  std::size_t total = 0;
  for (const DiscState& d : discs) total += d.frontier.size();
  const std::size_t threads = pool ? pool->thread_count() : 1;

  // Serial path — no flatten/compact round-trip: decide straight off each
  // disc's frontier. The draws are position-addressed, so this produces
  // exactly the bits the chunked path below produces.
  if (threads <= 1 || total < 2048) {
    std::int64_t eroded = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const DiscState& d = discs[k];
      std::vector<std::int32_t>& out = ws.erode[k];
      out.clear();
      const support::CounterRng rng(seed,
                                    static_cast<std::uint64_t>(disc_ids[k]));
      const auto& thresh = ws.thresh[k];
      for (const std::int32_t idx : d.frontier) {
        const int trials = cell_trials(d, idx);
        if (trials == 0) continue;
        const std::uint64_t draw =
            rng.draw(iter, static_cast<std::uint64_t>(idx)) >> 11;
        if (draw < thresh[static_cast<std::size_t>(trials)]) out.push_back(idx);
      }
      apply_disc(discs[k], out);
      eroded += static_cast<std::int64_t>(out.size());
    }
    return eroded;
  }

  // Phase A — flatten the pre-step frontiers into the SoA arrays. Serial,
  // O(frontier).
  ws.offsets.assign(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k)
    ws.offsets[k + 1] = ws.offsets[k] + discs[k].frontier.size();
  ws.cells.resize(total);
  ws.flags.assign(total, 0);
  for (std::size_t k = 0; k < n; ++k)
    std::copy(discs[k].frontier.begin(), discs[k].frontier.end(),
              ws.cells.begin() + static_cast<std::ptrdiff_t>(ws.offsets[k]));

  // Phase B — batched Bernoulli decisions over the flat array, in a few
  // contiguous chunks per thread (coarse items — parallel_for claims one
  // index per lock). Flags are position-addressed, so any chunking produces
  // identical bits.
  const std::size_t chunks = std::min(total, threads * 4);
  pool->parallel_for(chunks, [&](std::size_t c) {
    decide_range(discs, disc_ids, seed, iter, ws, ws.flags,
                 c * total / chunks, (c + 1) * total / chunks);
  });

  // Phase C — compact each disc's flagged cells (frontier order, matching
  // decide_disc) and apply. Discs are pairwise disjoint, so one task per
  // disc is race-free.
  pool->parallel_for(n, [&](std::size_t k) {
    std::vector<std::int32_t>& out = ws.erode[k];
    out.clear();
    for (std::size_t j = ws.offsets[k]; j < ws.offsets[k + 1]; ++j)
      if (ws.flags[j] != 0) out.push_back(ws.cells[j]);
    apply_disc(discs[k], out);
  });

  std::int64_t eroded = 0;
  for (const auto& e : ws.erode) eroded += static_cast<std::int64_t>(e.size());
  return eroded;
}

}  // namespace ulba::erosion
