#include "erosion/distributed_domain.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "support/require.hpp"

namespace ulba::erosion {

namespace {

// Message channels of the distributed domain (user tags — non-negative, and
// offset well clear of any ad-hoc tags application drivers might pick).
constexpr int kTagStep = 100;          ///< per-step delta/frontier exchange
constexpr int kTagGatherWeights = 101; ///< stripe → root weight gather
constexpr int kTagMigrateColumns = 102;
constexpr int kTagMigrateDisc = 103;
constexpr int kTagStepReduce = 104;    ///< neighbor mode: eroded/frontier → 0
constexpr int kTagGridCounts = 105;    ///< grid rebalance: refined-cell census

/// Overlap [max(a0,b0), min(a1,b1)) of two half-open column intervals.
std::pair<std::int64_t, std::int64_t> interval_overlap(std::int64_t a0,
                                                       std::int64_t a1,
                                                       std::int64_t b0,
                                                       std::int64_t b1) {
  return {std::max(a0, b0), std::min(a1, b1)};
}

/// Index of the band holding `v` in a sorted boundary vector (upper_bound
/// band lookup — the 2D twin of owner_of_column's stripe search).
int band_of(const std::vector<std::int64_t>& bounds, std::int64_t v) {
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  return static_cast<int>(std::distance(bounds.begin(), it) - 1);
}

}  // namespace

ExchangeMode exchange_mode_from_name(const std::string& name) {
  if (name == "alltoall") return ExchangeMode::kAllToAll;
  if (name == "neighbor") return ExchangeMode::kNeighbor;
  throw std::invalid_argument("unknown exchange mode '" + name +
                              "' (accepted: alltoall, neighbor)");
}

std::string exchange_mode_name(ExchangeMode mode) {
  switch (mode) {
    case ExchangeMode::kAllToAll:
      return "alltoall";
    case ExchangeMode::kNeighbor:
      return "neighbor";
  }
  return "neighbor";
}

DistributedDomain::DistributedDomain(
    DomainConfig config, runtime::Comm& comm,
    std::shared_ptr<const lb::Partitioner> partitioner, ExchangeMode exchange)
    : config_(std::move(config)),
      comm_(&comm),
      partitioner_(std::move(partitioner)),
      exchange_(exchange) {
  ULBA_REQUIRE(partitioner_ != nullptr, "distribution needs a partitioner");
  config_.validate();
  init_stripes();
}

DistributedDomain::DistributedDomain(
    DomainConfig config, runtime::Comm& comm,
    std::shared_ptr<const lb::Partitioner> partitioner, ExchangeMode exchange,
    const GridOptions& grid)
    : config_(std::move(config)),
      comm_(&comm),
      partitioner_(std::move(partitioner)),
      exchange_(exchange) {
  ULBA_REQUIRE(partitioner_ != nullptr, "distribution needs a partitioner");
  config_.validate();
  const auto shape = lb::resolve_grid_shape(comm_->size(), grid.grid_rows,
                                            grid.grid_cols);
  if (shape.rows == 1 && !grid.tuner) {
    // "1xC == 1D stripes" by code identity: a one-row grid without the
    // tuner IS the stripe decomposition, so it runs the stripe path.
    init_stripes();
    return;
  }
  grid_ = true;
  tile_rows_ = shape.rows;
  tile_cols_ = shape.cols;
  tuner_on_ = grid.tuner;
  tuner_cfg_ = grid.tuner_config;
  init_grid();
}

void DistributedDomain::replay_initial_weights(std::vector<double>& full_cols,
                                               std::vector<double>& full_rows) {
  // Replay the serial builder's weight accounting over a transient
  // full-width view (one DiscState alive at a time): every rank derives the
  // identical initial weights, frontier metadata, and Wtot without ever
  // holding the whole domain. The row marginal comes out of the same pass
  // (the grid decomposition cuts each dimension against its own marginal).
  const std::size_t n = config_.discs.size();
  frontier_sizes_.assign(n, 0);
  full_cols.assign(static_cast<std::size_t>(config_.columns),
                   config_.flop_per_cell * static_cast<double>(config_.rows));
  full_rows.assign(static_cast<std::size_t>(config_.rows),
                   config_.flop_per_cell *
                       static_cast<double>(config_.columns));
  for (std::size_t i = 0; i < n; ++i) {
    const DiscState d = build_disc_state(config_.discs[i]);
    frontier_sizes_[i] = static_cast<std::int64_t>(d.frontier.size());
    rock_remaining_ += d.rock_remaining;
    for (std::int64_t ly = 0; ly < d.side; ++ly)
      for (std::int64_t lx = 0; lx < d.side; ++lx)
        if (d.at(lx, ly) != Cell::kOutside) {
          full_cols[static_cast<std::size_t>(d.x0 + lx)] -=
              config_.flop_per_cell;
          full_rows[static_cast<std::size_t>(d.y0 + ly)] -=
              config_.flop_per_cell;
        }
  }
  total_ = 0.0;
  for (const double w : full_cols) total_ += w;
}

void DistributedDomain::init_stripes() {
  const int R = comm_->size();
  ULBA_REQUIRE(static_cast<std::int64_t>(R) <= config_.columns,
               "rank count must not exceed the column count");
  std::vector<double> full, full_rows;
  replay_initial_weights(full, full_rows);

  // Initial cut: even targets against the initial weights, exactly like the
  // sharded stepper's construction.
  const std::vector<double> targets(static_cast<std::size_t>(R),
                                    1.0 / static_cast<double>(R));
  boundaries_ = partitioner_->partition(full, targets);
  assign_local_discs();
  local_discs_.reserve(local_disc_ids_.size());
  for (const std::size_t id : local_disc_ids_)
    local_discs_.push_back(build_disc_state(config_.discs[id]));

  const auto r = static_cast<std::size_t>(comm_->rank());
  my_col0_ = boundaries_[r];
  weights_.assign(full.begin() + boundaries_[r],
                  full.begin() + boundaries_[r + 1]);
  recompute_neighbors();
}

void DistributedDomain::init_grid() {
  ULBA_REQUIRE(tile_cols_ <= config_.columns && tile_rows_ <= config_.rows,
               "tile grid must not exceed the cell grid");
  std::vector<double> full, full_rows;
  replay_initial_weights(full, full_rows);

  // Initial cut: each dimension's marginal, even targets — the same
  // partitioner discipline as stripes, applied per dimension.
  const std::vector<double> col_targets(
      static_cast<std::size_t>(tile_cols_),
      1.0 / static_cast<double>(tile_cols_));
  const std::vector<double> row_targets(
      static_cast<std::size_t>(tile_rows_),
      1.0 / static_cast<double>(tile_rows_));
  col_bounds_ = partitioner_->partition(full, col_targets);
  row_bounds_ = partitioner_->partition(full_rows, row_targets);
  assign_local_discs();
  local_discs_.reserve(local_disc_ids_.size());
  for (const std::size_t id : local_disc_ids_)
    local_discs_.push_back(build_disc_state(config_.discs[id]));

  // The rank-0 monitors start at the serial initial weights; the pending
  // integer deltas advance them at gather time. (Every rank seeds them —
  // the replay is replicated — but only rank 0's stay authoritative.)
  monitor_cols_ = full;
  monitor_rows_ = full_rows;
  pending_cols_.assign(static_cast<std::size_t>(config_.columns), 0);
  pending_rows_.assign(static_cast<std::size_t>(config_.rows), 0);

  rebuild_tile_weights({});
  recompute_neighbors();
}

void DistributedDomain::rebuild_tile_weights(
    std::span<const std::int64_t> refined_per_column) {
  const int r = comm_->rank();
  const auto ri = static_cast<std::size_t>(r / tile_cols_);
  const auto ci = static_cast<std::size_t>(r % tile_cols_);
  const std::int64_t c0 = col_bounds_[ci], c1 = col_bounds_[ci + 1];
  const std::int64_t r0 = row_bounds_[ri], r1 = row_bounds_[ri + 1];
  my_col0_ = c0;

  // Background: every tile cell costs flop_per_cell; the static disc
  // footprints (the initially non-outside cells — erosion only ever flips
  // rock to refined WITHIN that set, so it never changes) subtract theirs;
  // each refined cell adds the refinement gain back. All terms are exact
  // integer counts scaled once, so every rank derives identical partials
  // for its tile regardless of exchange mode, pool size, or history.
  std::vector<double> w(static_cast<std::size_t>(c1 - c0),
                        config_.flop_per_cell * static_cast<double>(r1 - r0));
  for (const RockDisc& disc : config_.discs) {
    const auto [lo, hi] = disc_column_span(disc);
    const auto [rlo, rhi] = disc_row_span(disc);
    if (hi <= c0 || lo >= c1 || rhi <= r0 || rlo >= r1) continue;
    const DiscState d = build_disc_state(disc);
    for (std::int64_t ly = std::max(r0 - d.y0, std::int64_t{0});
         ly < std::min(r1 - d.y0, d.side); ++ly)
      for (std::int64_t lx = std::max(c0 - d.x0, std::int64_t{0});
           lx < std::min(c1 - d.x0, d.side); ++lx)
        if (d.at(lx, ly) != Cell::kOutside)
          w[static_cast<std::size_t>(d.x0 + lx - c0)] -= config_.flop_per_cell;
  }
  if (!refined_per_column.empty()) {
    ULBA_CHECK(static_cast<std::int64_t>(refined_per_column.size()) ==
                   c1 - c0,
               "refined census does not match the tile width");
    const double gained = config_.refinement_factor * config_.flop_per_cell;
    for (std::size_t x = 0; x < refined_per_column.size(); ++x)
      w[x] += gained * static_cast<double>(refined_per_column[x]);
  }
  weights_ = std::move(w);
}

void DistributedDomain::recompute_neighbors() {
  send_neighbors_.clear();
  recv_neighbors_.clear();
  if (exchange_ != ExchangeMode::kNeighbor || ranks() == 1) return;
  const int R = ranks();
  const int r = rank();
  std::vector<std::uint8_t> send_to(static_cast<std::size_t>(R), 0);
  std::vector<std::uint8_t> recv_from(static_cast<std::size_t>(R), 0);
  const int my_ri = r / static_cast<int>(tile_cols_);
  const int my_ci = r % static_cast<int>(tile_cols_);
  for (std::size_t i = 0; i < config_.discs.size(); ++i) {
    const auto [lo, hi] = disc_column_span(config_.discs[i]);
    const std::int64_t clo = std::max<std::int64_t>(lo, 0);
    const std::int64_t chi = std::min<std::int64_t>(hi, config_.columns);
    if (clo >= chi) continue;
    if (grid_) {
      // A disc's bounding box covers a RECTANGLE of tiles — the column-band
      // range x the row-band range, edge AND corner neighbors alike. Both
      // sides evaluate the same replicated predicate, which keeps the sets
      // mutually consistent (rank q sends to me iff I expect q).
      const auto [rl, rh] = disc_row_span(config_.discs[i]);
      const std::int64_t rlo = std::max<std::int64_t>(rl, 0);
      const std::int64_t rhi = std::min<std::int64_t>(rh, config_.rows);
      if (rlo >= rhi) continue;
      const int cf = col_band_of(clo), cl = col_band_of(chi - 1);
      const int rf = row_band_of(rlo), rlast = row_band_of(rhi - 1);
      if (disc_owner_[i] == r) {
        for (int ri = rf; ri <= rlast; ++ri)
          for (int ci = cf; ci <= cl; ++ci) {
            const int q = ri * static_cast<int>(tile_cols_) + ci;
            if (q != r) send_to[static_cast<std::size_t>(q)] = 1;
          }
      } else if (rf <= my_ri && my_ri <= rlast && cf <= my_ci &&
                 my_ci <= cl) {
        recv_from[static_cast<std::size_t>(disc_owner_[i])] = 1;
      }
      continue;
    }
    // Stripes are contiguous and ascending, so a disc's box covers exactly
    // the owner range [first, last] — the one predicate both the sender and
    // the receiver sides evaluate, which keeps the sets mutually consistent
    // across ranks (rank q sends to me iff I expect to receive from q).
    const int first = owner_of_column(clo);
    const int last = owner_of_column(chi - 1);
    if (disc_owner_[i] == r) {
      for (int q = first; q <= last; ++q)
        if (q != r) send_to[static_cast<std::size_t>(q)] = 1;
    } else if (first <= r && r <= last) {
      recv_from[static_cast<std::size_t>(disc_owner_[i])] = 1;
    }
  }
  for (int q = 0; q < R; ++q) {
    if (send_to[static_cast<std::size_t>(q)]) send_neighbors_.push_back(q);
    if (recv_from[static_cast<std::size_t>(q)]) recv_neighbors_.push_back(q);
  }
}

void DistributedDomain::assign_local_discs() {
  local_disc_ids_.clear();
  disc_owner_.assign(config_.discs.size(), 0);
  for (std::size_t i = 0; i < config_.discs.size(); ++i) {
    const int owner = grid_
                          ? owner_of_cell(config_.discs[i].cx,
                                          config_.discs[i].cy)
                          : owner_of_column(config_.discs[i].cx);
    disc_owner_[i] = owner;
    if (owner == rank()) local_disc_ids_.push_back(i);
  }
}

int DistributedDomain::owner_of_disc(std::size_t disc) const {
  ULBA_REQUIRE(disc < disc_owner_.size(), "disc index out of range");
  return disc_owner_[disc];
}

int DistributedDomain::owner_of_column(std::int64_t x) const {
  ULBA_REQUIRE(!grid_,
               "whole-column ownership is undefined under a 2D grid "
               "decomposition (use owner_of_cell)");
  ULBA_REQUIRE(x >= 0 && x < config_.columns, "column out of range");
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  return static_cast<int>(std::distance(boundaries_.begin(), it) - 1);
}

int DistributedDomain::col_band_of(std::int64_t x) const {
  return band_of(col_bounds_, x);
}

int DistributedDomain::row_band_of(std::int64_t y) const {
  return band_of(row_bounds_, y);
}

int DistributedDomain::owner_of_cell(std::int64_t x, std::int64_t y) const {
  ULBA_REQUIRE(x >= 0 && x < config_.columns && y >= 0 && y < config_.rows,
               "cell out of range");
  if (!grid_) return owner_of_column(x);
  return row_band_of(y) * static_cast<int>(tile_cols_) + col_band_of(x);
}

std::int64_t DistributedDomain::frontier_size() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t f : frontier_sizes_) total += f;
  return total;
}

std::int64_t DistributedDomain::disc_frontier_size(std::size_t disc) const {
  ULBA_REQUIRE(disc < frontier_sizes_.size(), "disc index out of range");
  return frontier_sizes_[disc];
}

void DistributedDomain::credit_column(std::int64_t x, std::int64_t count) {
  const double gained = config_.refinement_factor * config_.flop_per_cell;
  const auto local = static_cast<std::size_t>(x - first_column());
  ULBA_CHECK(local < weights_.size(),
             "erosion delta landed outside the owning stripe");
  // One addition per eroded cell — the serial commit's accounting, so the
  // floating-point result is bit-equal regardless of message arrival order.
  for (std::int64_t c = 0; c < count; ++c) weights_[local] += gained;
}

std::int64_t DistributedDomain::step(support::Rng& rng) {
  support::ThreadPool serial(1);
  return step(rng, serial);
}

std::int64_t DistributedDomain::step(support::Rng& rng,
                                     support::ThreadPool& pool) {
  const std::size_t n = config_.discs.size();
  const int r = rank();

  // Phase 1 — lockstep stream split: every rank advances its own copy of
  // the master by Σ frontier_i burn draws (in disc order), snapshotting at
  // its local discs' offsets. All copies stay bit-equal to the serial
  // stepper's stream, so no RNG state ever needs to be communicated.
  std::vector<support::Rng> streams;
  streams.reserve(local_disc_ids_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (disc_owner_[i] == r) streams.push_back(rng);
    for (std::int64_t d = 0; d < frontier_sizes_[i]; ++d)
      (void)rng.bernoulli(0.5);
  }

  // Phase 2 — decide + apply the local discs (disc state is disc-local and
  // every disc draws from its own positioned snapshot).
  std::vector<std::vector<std::int32_t>> erode(local_discs_.size());
  pool.parallel_for(local_discs_.size(), [&](std::size_t k) {
    erode[k] = decide_disc(local_discs_[k], streams[k]);
    apply_disc(local_discs_[k], erode[k]);
  });

  return finish_step(erode);
}

std::int64_t DistributedDomain::step_counter(std::uint64_t seed,
                                             std::int64_t iteration,
                                             support::ThreadPool* pool) {
  // Phases 1+2 of the fork path collapse into one kernel call: draws are
  // addressed by (global disc id, iteration, cell), so there is no master
  // stream to position — no burn pass, no snapshots, no O(global frontier)
  // work per rank. The exchange tail is shared with the fork path.
  (void)counter_decide_apply(local_discs_, local_disc_ids_, seed, iteration,
                             pool, counter_ws_);
  return finish_step(counter_ws_.erode);
}

std::int64_t DistributedDomain::finish_step(
    std::span<const std::vector<std::int32_t>> erode) {
  const int R = ranks();
  const int r = rank();
  ULBA_CHECK(erode.size() == local_discs_.size(),
             "finish_step needs one erode list per local disc");

  // Phase 3 — commit my columns; bucket the halo deltas (eroded cells in
  // columns — or grid tiles — another rank owns: a disc straddling a
  // decomposition boundary) per destination rank. In grid mode the disc
  // OWNER additionally records every eroded cell (own and halo alike) as a
  // pending integer delta: each cell counted exactly once globally, which
  // is what lets the rank-0 monitor replay the serial weight increments.
  std::int64_t my_eroded = 0;
  std::vector<std::map<std::int64_t, std::int64_t>> halo(
      static_cast<std::size_t>(R));
  for (std::size_t k = 0; k < local_discs_.size(); ++k) {
    const DiscState& d = local_discs_[k];
    my_eroded += static_cast<std::int64_t>(erode[k].size());
    for (const std::int32_t idx : erode[k]) {
      const std::int64_t x = d.x0 + idx % d.side;
      const std::int64_t y = d.y0 + idx / d.side;
      const int owner = grid_ ? owner_of_cell(x, y) : owner_of_column(x);
      if (grid_) {
        ++pending_cols_[static_cast<std::size_t>(x)];
        ++pending_rows_[static_cast<std::size_t>(y)];
      }
      if (owner == r)
        credit_column(x, 1);
      else
        ++halo[static_cast<std::size_t>(owner)][x];
    }
  }

  // The replicated frontier metadata of my own discs updates locally in
  // both exchange modes (peers learn it through their leg of the exchange).
  for (std::size_t k = 0; k < local_disc_ids_.size(); ++k)
    frontier_sizes_[local_disc_ids_[k]] =
        static_cast<std::int64_t>(local_discs_[k].frontier.size());

  std::int64_t global_eroded = my_eroded;
  if (exchange_ == ExchangeMode::kAllToAll) {
    // Phase 4 — one message per peer: my eroded total, the peer's halo
    // deltas, and my discs' updated frontier sizes (the stream-split
    // metadata every rank needs before the NEXT step).
    for (int s = 0; s < R; ++s) {
      if (s == r) continue;
      std::vector<std::int64_t> msg;
      const auto& deltas = halo[static_cast<std::size_t>(s)];
      msg.reserve(3 + 2 * deltas.size() + 2 * local_disc_ids_.size());
      msg.push_back(my_eroded);
      msg.push_back(static_cast<std::int64_t>(deltas.size()));
      for (const auto& [x, count] : deltas) {
        msg.push_back(x);
        msg.push_back(count);
      }
      msg.push_back(static_cast<std::int64_t>(local_disc_ids_.size()));
      for (std::size_t k = 0; k < local_disc_ids_.size(); ++k) {
        msg.push_back(static_cast<std::int64_t>(local_disc_ids_[k]));
        msg.push_back(
            static_cast<std::int64_t>(local_discs_[k].frontier.size()));
      }
      comm_->send_span<std::int64_t>(s, kTagStep, msg);
      count_step_send(msg.size() * sizeof(std::int64_t));
    }

    // Phase 5 — drain every peer's message (rank order; sends are
    // non-blocking, so the all-to-all cannot deadlock).
    for (int s = 0; s < R; ++s) {
      if (s == r) continue;
      const auto msg = comm_->recv_vector<std::int64_t>(s, kTagStep);
      std::size_t at = 0;
      const auto take = [&msg, &at]() -> std::int64_t {
        ULBA_CHECK(at < msg.size(), "malformed step message (truncated)");
        return msg[at++];
      };
      global_eroded += take();
      const auto cols = static_cast<std::size_t>(take());
      for (std::size_t c = 0; c < cols; ++c) {
        const std::int64_t x = take();
        const std::int64_t count = take();
        credit_column(x, count);
      }
      const auto discs = static_cast<std::size_t>(take());
      for (std::size_t k = 0; k < discs; ++k) {
        const auto id = static_cast<std::size_t>(take());
        ULBA_CHECK(id < frontier_sizes_.size(),
                   "frontier update out of range");
        frontier_sizes_[id] = take();
      }
      ULBA_CHECK(at == msg.size(), "malformed step message (trailing bytes)");
    }
  } else {
    // Phase 4a — halo deltas travel to neighbors ONLY: one (possibly
    // empty) message per send-neighbor, so the matching blocking receives
    // stay deterministic. Any delta column lies inside a local disc's
    // bounding box, whose owners are exactly the send-neighbor set.
    for (int s = 0; s < R; ++s)
      ULBA_CHECK(halo[static_cast<std::size_t>(s)].empty() ||
                     std::binary_search(send_neighbors_.begin(),
                                        send_neighbors_.end(), s),
                 "halo delta addressed to a non-neighbor rank");
    for (const int s : send_neighbors_) {
      std::vector<std::int64_t> msg;
      const auto& deltas = halo[static_cast<std::size_t>(s)];
      msg.reserve(2 * deltas.size());
      for (const auto& [x, count] : deltas) {
        msg.push_back(x);
        msg.push_back(count);
      }
      comm_->send_span<std::int64_t>(s, kTagStep, msg);
      count_step_send(msg.size() * sizeof(std::int64_t));
    }

    // Phase 4b — reduction leg: my eroded total plus my discs' updated
    // frontier sizes converge on rank 0.
    if (r != 0) {
      std::vector<std::int64_t> msg;
      msg.reserve(1 + 2 * local_disc_ids_.size());
      msg.push_back(my_eroded);
      for (std::size_t k = 0; k < local_disc_ids_.size(); ++k) {
        msg.push_back(static_cast<std::int64_t>(local_disc_ids_[k]));
        msg.push_back(
            static_cast<std::int64_t>(local_discs_[k].frontier.size()));
      }
      comm_->send_span<std::int64_t>(0, kTagStepReduce, msg);
      count_step_send(msg.size() * sizeof(std::int64_t));
    }

    // Phase 5a — drain the neighbor halo messages (ascending rank order;
    // per-cell credits commute, so arrival order cannot perturb FP state).
    for (const int s : recv_neighbors_) {
      const auto msg = comm_->recv_vector<std::int64_t>(s, kTagStep);
      ULBA_CHECK(msg.size() % 2 == 0, "malformed halo message");
      for (std::size_t at = 0; at < msg.size(); at += 2)
        credit_column(msg[at], msg[at + 1]);
    }

    // Phase 5b — rank 0 folds the eroded totals in rank order (exact
    // integer sum), merges the frontier updates, and broadcasts the global
    // count plus the complete frontier vector back out.
    std::vector<std::int64_t> bcast;
    if (r == 0) {
      for (int s = 1; s < R; ++s) {
        const auto msg = comm_->recv_vector<std::int64_t>(s, kTagStepReduce);
        ULBA_CHECK(msg.size() % 2 == 1, "malformed step-reduce message");
        global_eroded += msg[0];
        for (std::size_t at = 1; at < msg.size(); at += 2) {
          const auto id = static_cast<std::size_t>(msg[at]);
          ULBA_CHECK(id < frontier_sizes_.size(),
                     "frontier update out of range");
          frontier_sizes_[id] = msg[at + 1];
        }
      }
      bcast.reserve(1 + frontier_sizes_.size());
      bcast.push_back(global_eroded);
      bcast.insert(bcast.end(), frontier_sizes_.begin(),
                   frontier_sizes_.end());
      for (int s = 1; s < R; ++s)
        count_step_send(bcast.size() * sizeof(std::int64_t));
    }
    comm_->broadcast_vector(bcast, 0);
    if (r != 0) {
      ULBA_CHECK(bcast.size() == 1 + frontier_sizes_.size(),
                 "malformed step broadcast");
      global_eroded = bcast[0];
      std::copy(bcast.begin() + 1, bcast.end(), frontier_sizes_.begin());
    }
  }

  // Phase 6 — replicated global accounting (one increment per eroded cell,
  // matching the serial commit's FP trajectory).
  const double gained = config_.refinement_factor * config_.flop_per_cell;
  for (std::int64_t c = 0; c < global_eroded; ++c) total_ += gained;
  rock_remaining_ -= global_eroded;
  eroded_ += global_eroded;
  return global_eroded;
}

void DistributedDomain::drain_pending_deltas() const {
  // Collective: fold every rank's pending integer eroded-cell counts into
  // the rank-0 monitors. All increments are the SAME constant, so a slot's
  // final bits depend only on its seed value and its total count — any
  // fold order reproduces the serial incremental weights bit for bit; rank
  // order just keeps the schedule canonical. Logically const: this only
  // observes the dynamics (mutable monitors/pendings).
  const int R = comm_->size();
  const int r = comm_->rank();
  const double gained = config_.refinement_factor * config_.flop_per_cell;
  const auto apply = [&](std::vector<double>& monitor, std::int64_t at,
                         std::int64_t count) {
    ULBA_CHECK(at >= 0 &&
                   at < static_cast<std::int64_t>(monitor.size()) &&
                   count >= 0,
               "malformed pending-delta record");
    // One addition per eroded cell — the serial commit's accounting.
    for (std::int64_t c = 0; c < count; ++c)
      monitor[static_cast<std::size_t>(at)] += gained;
  };
  if (r != 0) {
    // Sparse wire form: [ncols, (x, count)..., nrows, (y, count)...].
    std::vector<std::int64_t> msg;
    std::int64_t ncols = 0, nrows = 0;
    for (const std::int64_t c : pending_cols_) ncols += c != 0 ? 1 : 0;
    for (const std::int64_t c : pending_rows_) nrows += c != 0 ? 1 : 0;
    msg.reserve(static_cast<std::size_t>(2 + 2 * (ncols + nrows)));
    msg.push_back(ncols);
    for (std::size_t x = 0; x < pending_cols_.size(); ++x)
      if (pending_cols_[x] != 0) {
        msg.push_back(static_cast<std::int64_t>(x));
        msg.push_back(pending_cols_[x]);
      }
    msg.push_back(nrows);
    for (std::size_t y = 0; y < pending_rows_.size(); ++y)
      if (pending_rows_[y] != 0) {
        msg.push_back(static_cast<std::int64_t>(y));
        msg.push_back(pending_rows_[y]);
      }
    comm_->send_span<std::int64_t>(0, kTagGatherWeights, msg);
  } else {
    for (std::size_t x = 0; x < pending_cols_.size(); ++x)
      apply(monitor_cols_, static_cast<std::int64_t>(x), pending_cols_[x]);
    for (std::size_t y = 0; y < pending_rows_.size(); ++y)
      apply(monitor_rows_, static_cast<std::int64_t>(y), pending_rows_[y]);
    for (int s = 1; s < R; ++s) {
      const auto msg = comm_->recv_vector<std::int64_t>(s, kTagGatherWeights);
      std::size_t at = 0;
      const auto take = [&msg, &at]() -> std::int64_t {
        ULBA_CHECK(at < msg.size(), "malformed pending-delta message");
        return msg[at++];
      };
      const auto ncols = take();
      for (std::int64_t c = 0; c < ncols; ++c) {
        const std::int64_t x = take();
        apply(monitor_cols_, x, take());
      }
      const auto nrows = take();
      for (std::int64_t c = 0; c < nrows; ++c) {
        const std::int64_t y = take();
        apply(monitor_rows_, y, take());
      }
      ULBA_CHECK(at == msg.size(),
                 "malformed pending-delta message (trailing bytes)");
    }
  }
  std::fill(pending_cols_.begin(), pending_cols_.end(), 0);
  std::fill(pending_rows_.begin(), pending_rows_.end(), 0);
}

std::vector<double> DistributedDomain::gather_column_weights(int root) const {
  const int R = comm_->size();
  const int r = comm_->rank();
  if (grid_) {
    // Drain the pending deltas into the rank-0 monitor, then serve it —
    // bit-identical to the serial incremental weights for any tile shape.
    drain_pending_deltas();
    if (root == 0) return r == 0 ? monitor_cols_ : std::vector<double>{};
    if (r == 0) {
      comm_->send_span<double>(root, kTagGatherWeights, monitor_cols_);
      return {};
    }
    if (r == root) return comm_->recv_vector<double>(0, kTagGatherWeights);
    return {};
  }
  if (r != root) {
    comm_->send_span<double>(root, kTagGatherWeights, weights_);
    return {};
  }
  std::vector<double> full(static_cast<std::size_t>(config_.columns), 0.0);
  std::copy(weights_.begin(), weights_.end(),
            full.begin() + boundaries_[static_cast<std::size_t>(r)]);
  for (int s = 0; s < R; ++s) {
    if (s == root) continue;
    const auto stripe = comm_->recv_vector<double>(s, kTagGatherWeights);
    const auto begin = boundaries_[static_cast<std::size_t>(s)];
    ULBA_CHECK(static_cast<std::int64_t>(stripe.size()) ==
                   boundaries_[static_cast<std::size_t>(s) + 1] - begin,
               "gathered stripe size does not match the boundaries");
    std::copy(stripe.begin(), stripe.end(), full.begin() + begin);
  }
  return full;
}

std::vector<double> DistributedDomain::allgather_column_weights() const {
  std::vector<double> full = gather_column_weights(0);
  comm_->broadcast_vector(full, 0);
  return full;
}

DistributedReshardResult DistributedDomain::rebalance() {
  // Reassemble the full weights on every rank: the recut, the analytic
  // migration model, and the per-rank observed accounting all need the
  // global view (this mirrors the centralized LB step's gather/broadcast).
  return rebalance(allgather_column_weights());
}

DistributedReshardResult DistributedDomain::rebalance(
    std::span<const double> full) {
  const int R = ranks();
  const int r = rank();
  ULBA_REQUIRE(static_cast<std::int64_t>(full.size()) == config_.columns,
               "rebalance needs the full-width column weights");
  if (grid_) return rebalance_grid(full);

  // Recut — deterministic and identical on every rank.
  const lb::StripeBoundaries before = boundaries_;
  const std::vector<int> owners_before = disc_owner_;
  const std::vector<double> targets(static_cast<std::size_t>(R),
                                    1.0 / static_cast<double>(R));
  boundaries_ = partitioner_->partition(full, targets);
  const lb::StripeBoundaries& after = boundaries_;

  const double scale = config_.bytes_per_cell / config_.flop_per_cell;
  double sent_model = 0.0, recv_model = 0.0;
  double sent_payload = 0.0, recv_payload = 0.0;

  // Column hand-off, sends: for each peer q, the columns I owned before
  // that q owns now travel as one weights message.
  const std::int64_t ob = before[static_cast<std::size_t>(r)];
  const std::int64_t oe = before[static_cast<std::size_t>(r) + 1];
  for (int q = 0; q < R; ++q) {
    if (q == r) continue;
    const auto [lo, hi] = interval_overlap(
        ob, oe, after[static_cast<std::size_t>(q)],
        after[static_cast<std::size_t>(q) + 1]);
    if (lo >= hi) continue;
    const std::span<const double> cols(
        weights_.data() + (lo - ob), static_cast<std::size_t>(hi - lo));
    comm_->send_span<double>(q, kTagMigrateColumns, cols);
    sent_payload += static_cast<double>(cols.size_bytes());
    for (const double w : cols) sent_model += w * scale;
  }

  // Column hand-off, receives: my new stripe = the kept overlap of my
  // old stripe plus one message per peer that used to own part of it. The
  // new weight vector is rebuilt strictly from retained state and received
  // messages — the reassembled `full` view is only consulted by the models.
  const std::int64_t nb = after[static_cast<std::size_t>(r)];
  const std::int64_t ne = after[static_cast<std::size_t>(r) + 1];
  std::vector<double> neww(static_cast<std::size_t>(ne - nb), 0.0);
  {
    const auto [lo, hi] = interval_overlap(ob, oe, nb, ne);
    for (std::int64_t x = lo; x < hi; ++x)
      neww[static_cast<std::size_t>(x - nb)] =
          weights_[static_cast<std::size_t>(x - ob)];
  }
  for (int p = 0; p < R; ++p) {
    if (p == r) continue;
    const auto [lo, hi] = interval_overlap(
        before[static_cast<std::size_t>(p)],
        before[static_cast<std::size_t>(p) + 1], nb, ne);
    if (lo >= hi) continue;
    const auto cols = comm_->recv_vector<double>(p, kTagMigrateColumns);
    ULBA_CHECK(static_cast<std::int64_t>(cols.size()) == hi - lo,
               "migrated column block size mismatch");
    recv_payload += static_cast<double>(cols.size() * sizeof(double));
    for (std::int64_t x = lo; x < hi; ++x) {
      const double w = cols[static_cast<std::size_t>(x - lo)];
      neww[static_cast<std::size_t>(x - nb)] = w;
      recv_model += w * scale;
    }
  }

  // Disc hand-off: a disc follows its center column's owner; whole
  // DiscStates travel as serialized messages, in ascending disc order.
  // boundaries_ already holds the `after` cut, so owner_of_column gives the
  // new owner — the one lookup both sender and receiver loops must share.
  std::map<std::size_t, DiscState> mine;
  for (std::size_t k = 0; k < local_disc_ids_.size(); ++k) {
    const std::size_t id = local_disc_ids_[k];
    const int new_owner = owner_of_column(config_.discs[id].cx);
    if (new_owner == r) {
      mine.emplace(id, std::move(local_discs_[k]));
    } else {
      const auto payload = serialize_disc(id, local_discs_[k]);
      comm_->send_bytes(new_owner, kTagMigrateDisc, payload);
      sent_payload += static_cast<double>(payload.size());
    }
  }
  std::int64_t discs_moved = 0;
  for (std::size_t i = 0; i < config_.discs.size(); ++i) {
    const int new_owner = owner_of_column(config_.discs[i].cx);
    if (new_owner == owners_before[i]) continue;
    ++discs_moved;
    if (new_owner == r) {
      const runtime::Message msg =
          comm_->recv_message(owners_before[i], kTagMigrateDisc);
      recv_payload += static_cast<double>(msg.payload.size());
      mine.emplace(i, deserialize_disc(msg.payload, i));
    }
  }

  // Commit the new ownership (and refresh the halo-neighbor sets, which
  // depend on both the cut and the disc ownership).
  assign_local_discs();
  local_discs_.clear();
  local_discs_.reserve(local_disc_ids_.size());
  for (const std::size_t id : local_disc_ids_) {
    const auto it = mine.find(id);
    ULBA_CHECK(it != mine.end(), "disc hand-off left an owned disc behind");
    local_discs_.push_back(std::move(it->second));
  }
  weights_ = std::move(neww);
  my_col0_ = nb;
  recompute_neighbors();

  // Accounting: the analytic prediction on the full view, and the
  // observed traffic reduced across ranks.
  DistributedReshardResult result;
  result.boundaries = boundaries_;
  result.discs_moved = discs_moved;
  std::vector<double> bytes(full.size());
  for (std::size_t x = 0; x < full.size(); ++x) bytes[x] = full[x] * scale;
  result.predicted = lb::migration_volume(before, after, bytes);
  result.observed_per_rank_bytes = comm_->allgather(sent_model + recv_model);
  result.observed_column_bytes = comm_->allreduce(sent_model);
  result.my_payload_bytes = sent_payload + recv_payload;
  result.observed_payload_bytes = comm_->allreduce(result.my_payload_bytes);
  return result;
}

DistributedReshardResult DistributedDomain::rebalance_grid(
    std::span<const double> full) {
  const int R = ranks();
  const int r = rank();

  // The row marginal lives in the rank-0 monitor (the column marginal is
  // `full`, already drained by the gather that produced it). Drain again —
  // idempotent — in case the caller gathered long before rebalancing, then
  // replicate the rows.
  drain_pending_deltas();
  std::vector<double> full_rows = monitor_rows_;
  comm_->broadcast_vector(full_rows, 0);

  const std::vector<std::int64_t> cb_before = col_bounds_;
  const std::vector<std::int64_t> rb_before = row_bounds_;
  const std::vector<int> owners_before = disc_owner_;

  // New bounds: the damped tuner nudges each dimension's boundaries within
  // its per-rebalance envelope, or the partitioner recuts from scratch.
  // Both are pure functions of replicated inputs — every rank derives the
  // identical grid.
  DistributedReshardResult result;
  if (tuner_on_) {
    result.tuner_ran = true;
    result.tuned_cols = lb::tune_boundaries(full, col_bounds_, tuner_cfg_);
    result.tuned_rows =
        lb::tune_boundaries(full_rows, row_bounds_, tuner_cfg_);
    col_bounds_ = result.tuned_cols.boundaries;
    row_bounds_ = result.tuned_rows.boundaries;
  } else {
    const std::vector<double> col_targets(
        static_cast<std::size_t>(tile_cols_),
        1.0 / static_cast<double>(tile_cols_));
    const std::vector<double> row_targets(
        static_cast<std::size_t>(tile_rows_),
        1.0 / static_cast<double>(tile_rows_));
    col_bounds_ = partitioner_->partition(full, col_targets);
    row_bounds_ = partitioner_->partition(full_rows, row_targets);
  }

  double sent_payload = 0.0, recv_payload = 0.0;

  // Disc hand-off: a disc follows its center cell's tile; whole DiscStates
  // travel as serialized messages, in ascending disc order. The bounds
  // already hold the new grid, so owner_of_cell gives the new owner — the
  // one lookup sender and receiver loops share.
  std::map<std::size_t, DiscState> mine;
  for (std::size_t k = 0; k < local_disc_ids_.size(); ++k) {
    const std::size_t id = local_disc_ids_[k];
    const int new_owner =
        owner_of_cell(config_.discs[id].cx, config_.discs[id].cy);
    if (new_owner == r) {
      mine.emplace(id, std::move(local_discs_[k]));
    } else {
      const auto payload = serialize_disc(id, local_discs_[k]);
      comm_->send_bytes(new_owner, kTagMigrateDisc, payload);
      sent_payload += static_cast<double>(payload.size());
    }
  }
  std::int64_t discs_moved = 0;
  for (std::size_t i = 0; i < config_.discs.size(); ++i) {
    const int new_owner =
        owner_of_cell(config_.discs[i].cx, config_.discs[i].cy);
    if (new_owner == owners_before[i]) continue;
    ++discs_moved;
    if (new_owner == r) {
      const runtime::Message msg =
          comm_->recv_message(owners_before[i], kTagMigrateDisc);
      recv_payload += static_cast<double>(msg.payload.size());
      mine.emplace(i, deserialize_disc(msg.payload, i));
    }
  }
  assign_local_discs();
  local_discs_.clear();
  local_discs_.reserve(local_disc_ids_.size());
  for (const std::size_t id : local_disc_ids_) {
    const auto it = mine.find(id);
    ULBA_CHECK(it != mine.end(), "disc hand-off left an owned disc behind");
    local_discs_.push_back(std::move(it->second));
  }

  // Refined-cell census under the NEW bounds: each disc's new owner counts
  // its discs' refined cells into a (row-band x column) matrix, folded at
  // rank 0 in rank order (exact integers) and broadcast — every rank then
  // rebuilds its tile's partial weights from its own slice. This replaces
  // the stripe path's column-weight migration: grid tiles overlap arbitrary
  // fragments of old tiles, so weights are re-derived, not shipped.
  const auto ncols = static_cast<std::size_t>(config_.columns);
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(tile_rows_) * ncols, 0);
  for (const DiscState& d : local_discs_) {
    for (std::size_t idx = 0; idx < d.cells.size(); ++idx) {
      if (d.cells[idx] != Cell::kRefined) continue;
      const std::int64_t x =
          d.x0 + static_cast<std::int64_t>(idx) % d.side;
      const std::int64_t y =
          d.y0 + static_cast<std::int64_t>(idx) / d.side;
      ++counts[static_cast<std::size_t>(row_band_of(y)) * ncols +
               static_cast<std::size_t>(x)];
    }
  }
  if (r != 0) {
    comm_->send_span<std::int64_t>(0, kTagGridCounts, counts);
    sent_payload += static_cast<double>(counts.size() * sizeof(std::int64_t));
  } else {
    for (int s = 1; s < R; ++s) {
      const auto part = comm_->recv_vector<std::int64_t>(s, kTagGridCounts);
      ULBA_CHECK(part.size() == counts.size(),
                 "refined census size mismatch");
      recv_payload +=
          static_cast<double>(part.size() * sizeof(std::int64_t));
      for (std::size_t j = 0; j < counts.size(); ++j) counts[j] += part[j];
    }
  }
  comm_->broadcast_vector(counts, 0);
  if (r == 0)
    sent_payload += static_cast<double>(
        (R - 1) * static_cast<std::int64_t>(counts.size() *
                                            sizeof(std::int64_t)));
  else
    recv_payload += static_cast<double>(counts.size() * sizeof(std::int64_t));

  const auto new_ri = static_cast<std::size_t>(r / tile_cols_);
  const auto new_ci = static_cast<std::size_t>(r % tile_cols_);
  const std::int64_t c0 = col_bounds_[new_ci], c1 = col_bounds_[new_ci + 1];
  std::vector<std::int64_t> refined(static_cast<std::size_t>(c1 - c0));
  for (std::int64_t x = c0; x < c1; ++x)
    refined[static_cast<std::size_t>(x - c0)] =
        counts[new_ri * ncols + static_cast<std::size_t>(x)];
  rebuild_tile_weights(refined);
  recompute_neighbors();

  // Analytic accounting under a uniform-in-y density model: column x's
  // bytes spread evenly over its rows, so an (x, row-interval) block whose
  // owner changed costs bytes(x) * len/rows. Merging the old and new row
  // boundaries makes every block single-owner on both sides. The model IS
  // the observation here (no weight columns cross the wire in grid mode);
  // the real payload — discs plus the census matrix — is reduced below.
  const double scale = config_.bytes_per_cell / config_.flop_per_cell;
  std::vector<std::int64_t> merged = rb_before;
  merged.insert(merged.end(), row_bounds_.begin(), row_bounds_.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  result.predicted.per_pe_bytes.assign(static_cast<std::size_t>(R), 0.0);
  for (std::int64_t x = 0; x < config_.columns; ++x) {
    const double bytes_per_row =
        full[static_cast<std::size_t>(x)] * scale /
        static_cast<double>(config_.rows);
    const int old_ci = band_of(cb_before, x);
    const int cur_ci = col_band_of(x);
    for (std::size_t j = 0; j + 1 < merged.size(); ++j) {
      const std::int64_t y0 = merged[j], y1 = merged[j + 1];
      const int old_owner =
          band_of(rb_before, y0) * static_cast<int>(tile_cols_) + old_ci;
      const int new_owner =
          row_band_of(y0) * static_cast<int>(tile_cols_) + cur_ci;
      if (old_owner == new_owner) continue;
      const double b = bytes_per_row * static_cast<double>(y1 - y0);
      result.predicted.total_bytes += b;
      result.predicted.per_pe_bytes[static_cast<std::size_t>(old_owner)] += b;
      result.predicted.per_pe_bytes[static_cast<std::size_t>(new_owner)] += b;
    }
  }
  for (const double b : result.predicted.per_pe_bytes)
    result.predicted.max_pe_bytes =
        std::max(result.predicted.max_pe_bytes, b);

  result.boundaries = col_bounds_;
  result.discs_moved = discs_moved;
  result.observed_per_rank_bytes = result.predicted.per_pe_bytes;
  result.observed_column_bytes = result.predicted.total_bytes;
  result.my_payload_bytes = sent_payload + recv_payload;
  result.observed_payload_bytes = comm_->allreduce(result.my_payload_bytes);
  return result;
}

double DistributedDomain::fractional_load_imbalance() const {
  // HemoCell's monitoring metric: (max PE load - avg) / avg over the
  // per-rank sums of the local (stripe or tile-partial) column weights.
  double local = 0.0;
  for (const double w : weights_) local += w;
  return fractional_load_imbalance(local);
}

double DistributedDomain::fractional_load_imbalance(double local_value) const {
  const std::vector<double> loads = comm_->allgather(local_value);
  double max = 0.0, sum = 0.0;
  for (const double l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  const double avg = sum / static_cast<double>(loads.size());
  return avg > 0.0 ? (max - avg) / avg : 0.0;
}

}  // namespace ulba::erosion
