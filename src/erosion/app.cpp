#include "erosion/app.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <span>

#include "bsp/machine.hpp"
#include "core/detector.hpp"
#include "core/gossip.hpp"
#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "core/trigger.hpp"
#include "erosion/sharded_domain.hpp"
#include "lb/driver.hpp"
#include "lb/stripe_partitioner.hpp"
#include "support/require.hpp"

namespace ulba::erosion {

AlphaPolicy alpha_policy_from_name(const std::string& name) {
  if (name == "fixed") return AlphaPolicy::kFixed;
  if (name == "fraction") return AlphaPolicy::kGossipFraction;
  if (name == "model") return AlphaPolicy::kGossipModel;
  throw std::invalid_argument("unknown alpha policy '" + name +
                              "' (accepted: fixed, fraction, model)");
}

std::string alpha_policy_name(AlphaPolicy policy) {
  switch (policy) {
    case AlphaPolicy::kFixed:
      return "fixed";
    case AlphaPolicy::kGossipFraction:
      return "fraction";
    case AlphaPolicy::kGossipModel:
      return "model";
  }
  return "fixed";
}

namespace {

/// AlphaPolicy::kGossipFraction — shrink the base α as the detected
/// overloading fraction grows (Eq. (11)'s overhead is ∝ αN/(P−N)); vanish
/// at the 50 % fallback boundary. One definition serves both the per-PE
/// application and the main-PE trace so they can never drift apart.
double fraction_alpha(double base_alpha, std::int64_t n_hat,
                      std::int64_t pe_count) {
  return base_alpha * std::max(0.0, 1.0 - 2.0 * static_cast<double>(n_hat) /
                                        static_cast<double>(pe_count));
}

/// AlphaPolicy::kGossipModel — pick the α the analytic model recommends for
/// the REMAINING run, from one PE's (possibly stale) database view: estimate
/// (N̂, â, m̂) by splitting the WIR population at the detector's flags, bind
/// them to the live observables (Wtot, average LB cost, remaining γ), and
/// grid-search α over {0, 0.1, …, 1} with the σ⁺ schedule as the predicted
/// execution — the runtime counterpart of opt::optimal_alpha_schedule's grid.
double model_grid_alpha(const core::OverloadDetector& detector,
                        std::span<const double> view, std::int64_t pe_count,
                        std::int64_t remaining_iterations, double wtot,
                        double flops, double lb_cost_avg) {
  const auto flags = detector.flags(view);
  double over_sum = 0.0, base_sum = 0.0;
  std::int64_t n_hat = 0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (flags[i]) {
      ++n_hat;
      over_sum += view[i];
    } else {
      base_sum += view[i];
    }
  }
  // Degenerate estimates fall back to α = 0 (standard behavior): nobody
  // overloads, the ≥50 % rule would demote the step anyway, or the horizon
  // is too short for an interval model to mean anything.
  if (n_hat == 0 || 2 * n_hat >= pe_count || remaining_iterations < 2)
    return 0.0;
  const double a_est =
      base_sum / static_cast<double>(pe_count - n_hat);
  const double m_est =
      std::max(0.0, over_sum / static_cast<double>(n_hat) - a_est);

  core::ModelParams est;
  est.P = pe_count;
  est.N = n_hat;
  est.gamma = remaining_iterations;
  est.w0 = wtot;
  est.a = a_est;
  est.m = m_est;
  est.omega = flops;
  est.lb_cost = lb_cost_avg;

  est.alpha = 0.0;
  double best_alpha = 0.0;
  double best =
      core::evaluate_standard(est, core::menon_schedule(est)).total_seconds;
  for (int g = 1; g <= 10; ++g) {
    est.alpha = static_cast<double>(g) / 10.0;
    const double t =
        core::evaluate_ulba(est, core::sigma_plus_schedule(est)).total_seconds;
    if (t < best) {
      best = t;
      best_alpha = est.alpha;
    }
  }
  return best_alpha;
}

}  // namespace

void AppConfig::validate() const {
  ULBA_REQUIRE(pe_count >= 2, "need at least two PEs");
  ULBA_REQUIRE(columns_per_pe >= 4, "need at least four columns per PE");
  ULBA_REQUIRE(rows >= 4, "need at least four rows");
  ULBA_REQUIRE(rock_radius >= 1, "rock radius must be at least one cell");
  ULBA_REQUIRE(2 * rock_radius + 2 < rows,
               "rocks must fit inside the domain height");
  ULBA_REQUIRE(2 * rock_radius + 2 < columns_per_pe,
               "rocks must fit one per initial stripe without touching");
  ULBA_REQUIRE(strong_rock_count >= 0 && strong_rock_count <= pe_count,
               "strong rocks must number in [0, P]");
  ULBA_REQUIRE(weak_probability >= 0.0 && weak_probability <= 1.0 &&
                   strong_probability >= 0.0 && strong_probability <= 1.0,
               "erosion probabilities must lie in [0, 1]");
  ULBA_REQUIRE(iterations >= 1, "need at least one iteration");
  ULBA_REQUIRE(flops > 0.0, "PE speed must be positive");
  ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  ULBA_REQUIRE(gossip_fanout >= 1 && gossip_fanout < pe_count,
               "gossip fanout must lie in [1, P)");
  ULBA_REQUIRE(wir_smoothing > 0.0 && wir_smoothing <= 1.0,
               "WIR smoothing factor must lie in (0, 1]");
  ULBA_REQUIRE(lb_period >= 1, "LB period must be at least one iteration");
  ULBA_REQUIRE(threads >= 1, "need at least one stepping thread");
  ULBA_REQUIRE(shards >= 1 && shards <= pe_count,
               "shard count must lie in [1, pe_count]");
  (void)lb::make_partitioner(partitioner);  // throws on unknown names
  comm.validate();
}

ErosionApp::ErosionApp(AppConfig config) : config_(config) {
  config_.validate();
}

DomainConfig ErosionApp::make_domain() const {
  // Placement stream: which discs are strongly erodible. "It is not known in
  // advance where the rocks with a high eroding probability are located."
  support::Rng placement = support::Rng(config_.seed).fork(0);
  const auto strong = placement.sample_without_replacement(
      static_cast<std::size_t>(config_.pe_count),
      static_cast<std::size_t>(config_.strong_rock_count));
  std::vector<bool> is_strong(static_cast<std::size_t>(config_.pe_count),
                              false);
  for (std::size_t s : strong) is_strong[s] = true;

  DomainConfig d;
  d.columns = config_.columns();
  d.rows = config_.rows;
  d.flop_per_cell = config_.flop_per_cell;
  d.bytes_per_cell = config_.bytes_per_cell;
  d.discs.reserve(static_cast<std::size_t>(config_.pe_count));
  for (std::int64_t i = 0; i < config_.pe_count; ++i) {
    RockDisc disc;
    disc.cx = i * config_.columns_per_pe + config_.columns_per_pe / 2;
    disc.cy = config_.rows / 2;
    disc.radius = config_.rock_radius;
    disc.erosion_prob = is_strong[static_cast<std::size_t>(i)]
                            ? config_.strong_probability
                            : config_.weak_probability;
    d.discs.push_back(disc);
  }
  d.validate();
  return d;
}

RunResult ErosionApp::run() const {
  const auto P = config_.pe_count;
  const support::Rng root(config_.seed);
  // Independent streams: the dynamics stream must not depend on LB decisions
  // so both methods see identical erosion for one seed.
  support::Rng dynamics_rng = root.fork(1);
  support::Rng gossip_rng = root.fork(2);

  // One partitioner serves both the centralized LB technique's cuts and the
  // host-side disc-to-shard assignment of the sharded stepper.
  const std::shared_ptr<const lb::Partitioner> partitioner(
      lb::make_partitioner(config_.partitioner));
  // shards == 1 keeps the historical unsharded paths (and their RNG
  // trajectories); shards > 1 steps through ShardedDomain, whose trajectory
  // is bit-identical to the serial shared-stream stepper regardless of the
  // shard/thread counts.
  std::optional<ErosionDomain> plain;
  std::optional<ShardedDomain> sharded;
  if (config_.shards > 1)
    sharded.emplace(make_domain(), config_.shards, partitioner);
  else
    plain.emplace(make_domain());
  const ErosionDomain& domain = sharded ? sharded->domain() : *plain;

  bsp::Machine machine(P, config_.flops, config_.comm);
  lb::CentralizedLb balancer(config_.comm, config_.flops);
  balancer.set_partitioner(partitioner);
  core::GossipNetwork gossip(P, config_.gossip_fanout);
  const core::OverloadDetector detector(config_.zscore_threshold);
  core::AdaptiveTrigger trigger;

  // Prior LB-cost estimate: only the communication phases are predictable
  // before the first step (migration volume and rebuild depend on the data).
  // A deliberately low prior makes the first LB fire early — a cheap probing
  // step whose measured cost then calibrates the running average, the same
  // bootstrap Meta-Balancer-style systems use.
  const double prior_cost =
      config_.comm.gather(static_cast<std::int64_t>(sizeof(double)), P) +
      static_cast<double>(domain.columns()) * 8.0 / config_.flops +
      config_.comm.broadcast(
          static_cast<std::int64_t>((P + 1) * sizeof(std::int64_t)), P);
  core::LbCostEstimator lb_cost(prior_cost);

  lb::StripeBoundaries boundaries =
      lb::even_partition(domain.columns(), P);

  // Gossip traffic per iteration: each PE pushes its P-entry database
  // (16 bytes per entry) to `fanout` peers; pushes proceed concurrently, so
  // one PE's cost is its own `fanout` sends. The oracle reference pays
  // nothing — it models perfect knowledge, not a protocol.
  const double gossip_seconds =
      config_.oracle_wir ? 0.0
                         : static_cast<double>(config_.gossip_fanout) *
                               config_.comm.p2p(16 * P);

  // Dynamics stepping: serial shared-stream below 2 threads, per-disc
  // substreams on a pool otherwise (see AppConfig::threads).
  std::optional<support::ThreadPool> pool;
  if (config_.threads > 1)
    pool.emplace(static_cast<std::size_t>(config_.threads));

  std::vector<double> wir(static_cast<std::size_t>(P), 0.0);
  std::vector<double> prev_loads;
  bool wir_valid = false;

  RunResult result;
  result.iterations.reserve(static_cast<std::size_t>(config_.iterations));

  for (std::int64_t iter = 0; iter < config_.iterations; ++iter) {
    const auto loads = lb::stripe_loads(domain.column_weights(), boundaries);
    const auto report = machine.run_superstep(loads, gossip_seconds);

    // --- WIR monitoring (skipped on the iteration right after an LB step:
    // stripe composition changed, the delta would measure migration, not
    // application growth).
    if (wir_valid) {
      for (std::int64_t p = 0; p < P; ++p) {
        const auto i = static_cast<std::size_t>(p);
        const double raw = std::max(0.0, loads[i] - prev_loads[i]);
        wir[i] = config_.wir_smoothing * raw +
                 (1.0 - config_.wir_smoothing) * wir[i];
        if (config_.oracle_wir)
          gossip.observe_oracle(p, wir[i], iter);
        else
          gossip.observe_local(p, wir[i], iter);
      }
    }
    prev_loads = loads;
    wir_valid = true;
    if (!config_.oracle_wir) gossip.step(gossip_rng);

    // --- application dynamics (independent of every LB decision)
    if (sharded) {
      if (pool)
        sharded->step(dynamics_rng, *pool);
      else
        sharded->step(dynamics_rng);
    } else if (pool) {
      plain->step(dynamics_rng, *pool);
    } else {
      plain->step(dynamics_rng);
    }

    // --- adaptive trigger (Algorithm 1 / Zhai-style degradation)
    trigger.record_iteration(report.seconds);
    double threshold = lb_cost.average();
    if (config_.method == Method::kUlba &&
        config_.anticipate_overhead_in_trigger) {
      // Eq. (11): the overhead the next underloading step will impose on a
      // non-overloading PE, estimated from the main PE's WIR database.
      const auto known = gossip.database(0).wirs();
      const std::int64_t n_hat = detector.count_overloading(known);
      if (n_hat > 0 && 2 * n_hat < P) {
        threshold += config_.alpha * static_cast<double>(n_hat) /
                     static_cast<double>(P - n_hat) * domain.total_workload() /
                     (config_.flops * static_cast<double>(P));
      }
    }

    IterationRecord rec;
    rec.seconds = report.seconds;
    rec.utilization = report.utilization;
    rec.degradation = trigger.degradation();

    const bool last_iteration = iter + 1 >= config_.iterations;
    bool balance_now = false;
    switch (config_.trigger_mode) {
      case TriggerMode::kAdaptive:
        balance_now = trigger.should_balance(threshold);
        break;
      case TriggerMode::kPeriodic:
        balance_now = (iter + 1) % config_.lb_period == 0;
        break;
      case TriggerMode::kNever:
        balance_now = false;
        break;
    }
    if (!last_iteration && balance_now) {
      // Algorithm 1, lines 17–23: each PE classifies itself from its own
      // (gossip-fed, possibly stale) database view; the α it applies comes
      // from the configured AlphaPolicy (E-X4).
      std::vector<double> alphas(static_cast<std::size_t>(P), 0.0);
      double step_alpha = 0.0;
      if (config_.method == Method::kUlba) {
        // kGossipModel's α is chosen once at the main PE (whose database the
        // centralized LB step gathers at anyway) and broadcast; the other
        // policies are evaluated per PE against its own view.
        double model_alpha = 0.0;
        if (config_.alpha_policy == AlphaPolicy::kGossipModel) {
          model_alpha = model_grid_alpha(
              detector, gossip.database(0).wirs(), P,
              config_.iterations - (iter + 1), domain.total_workload(),
              config_.flops, lb_cost.average());
        }
        for (std::int64_t p = 0; p < P; ++p) {
          const auto i = static_cast<std::size_t>(p);
          const auto view = gossip.database(p).wirs();
          if (!detector.is_overloading(wir[i], view)) continue;
          double a = config_.alpha;
          switch (config_.alpha_policy) {
            case AlphaPolicy::kFixed:
              break;
            case AlphaPolicy::kGossipFraction:
              a = fraction_alpha(config_.alpha,
                                 detector.count_overloading(view), P);
              break;
            case AlphaPolicy::kGossipModel:
              a = model_alpha;
              break;
          }
          alphas[i] = a;
        }
        // Report the α the main PE's view implies, whether or not PE 0
        // itself overloads — the per-interval trace of `lb_alphas`.
        switch (config_.alpha_policy) {
          case AlphaPolicy::kFixed:
            step_alpha = config_.alpha;
            break;
          case AlphaPolicy::kGossipFraction:
            step_alpha = fraction_alpha(
                config_.alpha,
                detector.count_overloading(gossip.database(0).wirs()), P);
            break;
          case AlphaPolicy::kGossipModel:
            step_alpha = model_alpha;
            break;
        }
      }
      const auto lb_step = balancer.step(alphas, domain.column_weights(),
                                         domain.column_bytes(), boundaries);
      machine.charge_global(lb_step.cost.total());
      lb_cost.observe(lb_step.cost.total());
      trigger.reset();
      boundaries = lb_step.boundaries;
      wir_valid = false;  // next delta would measure the migration
      if (lb_step.assignment.fell_back_to_standard) ++result.fallback_count;
      ++result.lb_count;
      result.lb_seconds += lb_step.cost.total();
      result.lb_iterations.push_back(iter);
      result.lb_alphas.push_back(step_alpha);
      rec.lb_performed = true;
      if (sharded) {
        // Re-shard the host-side stepping against the freshly balanced
        // weights — the boundary workload deltas move with the LB step. The
        // trajectory is shard-invariant, so this only affects host
        // parallelism and the reported migration accounting.
        const ReshardResult reshard = sharded->rebalance();
        result.shard_discs_moved += reshard.discs_moved;
        result.shard_migration_bytes += reshard.migration.total_bytes;
      }
    }

    result.compute_seconds += report.seconds;
    result.iterations.push_back(rec);
  }

  result.total_seconds = machine.elapsed_seconds();
  result.average_utilization = machine.average_utilization();
  result.eroded_cells = domain.eroded_cells();
  result.final_imbalance =
      lb::load_imbalance(domain.column_weights(), boundaries);
  return result;
}

}  // namespace ulba::erosion
