#include "erosion/app.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <span>

#include "bsp/machine.hpp"
#include "core/detector.hpp"
#include "core/gossip.hpp"
#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "core/trigger.hpp"
#include "core/schedule_query.hpp"
#include "erosion/distributed_domain.hpp"
#include "erosion/sharded_domain.hpp"
#include "lb/driver.hpp"
#include "opt/evaluate.hpp"
#include "lb/stripe_partitioner.hpp"
#include "runtime/spmd.hpp"
#include "support/burn.hpp"
#include "support/counter_rng.hpp"
#include "support/require.hpp"

namespace ulba::erosion {

AlphaPolicy alpha_policy_from_name(const std::string& name) {
  if (name == "fixed") return AlphaPolicy::kFixed;
  if (name == "fraction") return AlphaPolicy::kGossipFraction;
  if (name == "model") return AlphaPolicy::kGossipModel;
  throw std::invalid_argument("unknown alpha policy '" + name +
                              "' (accepted: fixed, fraction, model)");
}

std::string alpha_policy_name(AlphaPolicy policy) {
  switch (policy) {
    case AlphaPolicy::kFixed:
      return "fixed";
    case AlphaPolicy::kGossipFraction:
      return "fraction";
    case AlphaPolicy::kGossipModel:
      return "model";
  }
  return "fixed";
}

RngKind rng_kind_from_name(const std::string& name) {
  if (name == "fork") return RngKind::kFork;
  if (name == "counter") return RngKind::kCounter;
  throw std::invalid_argument("unknown rng kind '" + name +
                              "' (accepted: fork, counter)");
}

std::string rng_kind_name(RngKind kind) {
  switch (kind) {
    case RngKind::kFork:
      return "fork";
    case RngKind::kCounter:
      return "counter";
  }
  return "fork";
}

TriggerSource trigger_source_from_name(const std::string& name) {
  if (name == "model") return TriggerSource::kModel;
  if (name == "measured") return TriggerSource::kMeasured;
  throw std::invalid_argument("unknown trigger source '" + name +
                              "' (accepted: model, measured)");
}

std::string trigger_source_name(TriggerSource source) {
  switch (source) {
    case TriggerSource::kModel:
      return "model";
    case TriggerSource::kMeasured:
      return "measured";
  }
  return "model";
}

TriggerCriterion trigger_criterion_from_name(const std::string& name) {
  if (name == "degradation") return TriggerCriterion::kDegradation;
  if (name == "fli") return TriggerCriterion::kFli;
  throw std::invalid_argument("unknown trigger criterion '" + name +
                              "' (accepted: degradation, fli)");
}

std::string trigger_criterion_name(TriggerCriterion criterion) {
  switch (criterion) {
    case TriggerCriterion::kDegradation:
      return "degradation";
    case TriggerCriterion::kFli:
      return "fli";
  }
  return "degradation";
}

namespace {

/// AlphaPolicy::kGossipFraction — shrink the base α as the detected
/// overloading fraction grows (Eq. (11)'s overhead is ∝ αN/(P−N)); vanish
/// at the 50 % fallback boundary. One definition serves both the per-PE
/// application and the main-PE trace so they can never drift apart.
double fraction_alpha(double base_alpha, std::int64_t n_hat,
                      std::int64_t pe_count) {
  return base_alpha * std::max(0.0, 1.0 - 2.0 * static_cast<double>(n_hat) /
                                        static_cast<double>(pe_count));
}

/// AlphaPolicy::kGossipModel — pick the α the analytic model recommends for
/// the REMAINING run, from one PE's (possibly stale) database view: estimate
/// (N̂, â, m̂) by splitting the WIR population at the detector's flags, bind
/// them to the live observables (Wtot, average LB cost, remaining γ), and
/// grid-search α over {0, 0.1, …, 1} with the σ⁺ schedule as the predicted
/// execution — the same sigma-grid ScheduleRequest the serve cache answers,
/// evaluated through the shared opt::evaluate_schedule_request entry point.
double model_grid_alpha(const core::OverloadDetector& detector,
                        std::span<const double> view, std::int64_t pe_count,
                        std::int64_t remaining_iterations, double wtot,
                        double flops, double lb_cost_avg) {
  const auto flags = detector.flags(view);
  double over_sum = 0.0, base_sum = 0.0;
  std::int64_t n_hat = 0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (flags[i]) {
      ++n_hat;
      over_sum += view[i];
    } else {
      base_sum += view[i];
    }
  }
  // Degenerate estimates fall back to α = 0 (standard behavior): nobody
  // overloads, the ≥50 % rule would demote the step anyway, or the horizon
  // is too short for an interval model to mean anything.
  if (n_hat == 0 || 2 * n_hat >= pe_count || remaining_iterations < 2)
    return 0.0;
  const double a_est =
      base_sum / static_cast<double>(pe_count - n_hat);
  const double m_est =
      std::max(0.0, over_sum / static_cast<double>(n_hat) - a_est);

  core::ScheduleRequest request;
  request.mode = core::EvalMode::kSigmaGrid;
  core::ModelParams& est = request.params;
  est.P = pe_count;
  est.N = n_hat;
  est.gamma = remaining_iterations;
  est.w0 = wtot;
  est.a = a_est;
  est.m = m_est;
  est.omega = flops;
  est.lb_cost = lb_cost_avg;
  est.alpha = 0.0;
  request.alpha_grid.reserve(11);
  for (int g = 0; g <= 10; ++g)
    request.alpha_grid.push_back(static_cast<double>(g) / 10.0);
  return opt::evaluate_schedule_request(request).best_alpha;
}

/// Prior LB-cost estimate: only the communication phases are predictable
/// before the first step (migration volume and rebuild depend on the data).
/// A deliberately low prior makes the first LB fire early — a cheap probing
/// step whose measured cost then calibrates the running average, the same
/// bootstrap Meta-Balancer-style systems use.
double prior_lb_cost(const AppConfig& config, std::int64_t columns) {
  const auto P = config.pe_count;
  return config.comm.gather(static_cast<std::int64_t>(sizeof(double)), P) +
         static_cast<double>(columns) * 8.0 / config.flops +
         config.comm.broadcast(
             static_cast<std::int64_t>((P + 1) * sizeof(std::int64_t)), P);
}

/// The virtual-time LB machinery of one run — monitoring (BSP supersteps +
/// WIR + gossip), the adaptive trigger, and the centralized Algorithm-2 LB
/// step — factored out of the stepping substrate so the in-process run and
/// the SPMD-distributed run drive BIT-identical machinery: the distributed
/// driver executes this controller on its main rank against gathered
/// weights, which is why its RunResult equals the serial one exactly.
///
/// Call protocol per iteration:
///   observe(iter, weights)                        — before the dynamics step
///   should_balance(iter, total_workload)          — after the dynamics step
///   balance(iter, weights, bytes, total_workload) — only when it said yes
///   end_iteration()                               — always, last
/// then take_result(weights, eroded) after the loop.
class LbController {
 public:
  LbController(const AppConfig& config,
               std::shared_ptr<const lb::Partitioner> partitioner,
               std::int64_t columns)
      : config_(config),
        machine_(config.pe_count, config.flops, config.comm),
        balancer_(config.comm, config.flops),
        gossip_(config.pe_count, config.gossip_fanout),
        detector_(config.zscore_threshold),
        gossip_rng_(support::Rng(config.seed).fork(2)),
        lb_cost_(prior_lb_cost(config, columns)),
        boundaries_(lb::even_partition(columns, config.pe_count)),
        // Gossip traffic per iteration: each PE pushes its P-entry database
        // (16 bytes per entry) to `fanout` peers; pushes proceed
        // concurrently, so one PE's cost is its own `fanout` sends. The
        // oracle reference pays nothing — it models perfect knowledge, not
        // a protocol.
        gossip_seconds_(config.oracle_wir
                            ? 0.0
                            : static_cast<double>(config.gossip_fanout) *
                                  config.comm.p2p(16 * config.pe_count)),
        wir_(static_cast<std::size_t>(config.pe_count), 0.0) {
    balancer_.set_partitioner(std::move(partitioner));
    result_.iterations.reserve(static_cast<std::size_t>(config.iterations));
  }

  [[nodiscard]] const lb::StripeBoundaries& boundaries() const noexcept {
    return boundaries_;
  }
  [[nodiscard]] RunResult& result() noexcept { return result_; }

  /// Superstep + WIR monitoring + gossip round on the pre-step weights.
  void observe(std::int64_t iter, std::span<const double> column_weights) {
    const auto P = config_.pe_count;
    const auto loads = lb::stripe_loads(column_weights, boundaries_);
    const auto report = machine_.run_superstep(loads, gossip_seconds_);

    // WIR monitoring (skipped on the iteration right after an LB step:
    // stripe composition changed, the delta would measure migration, not
    // application growth).
    if (wir_valid_) {
      for (std::int64_t p = 0; p < P; ++p) {
        const auto i = static_cast<std::size_t>(p);
        const double raw = std::max(0.0, loads[i] - prev_loads_[i]);
        wir_[i] = config_.wir_smoothing * raw +
                  (1.0 - config_.wir_smoothing) * wir_[i];
        if (config_.oracle_wir)
          gossip_.observe_oracle(p, wir_[i], iter);
        else
          gossip_.observe_local(p, wir_[i], iter);
      }
    }
    prev_loads_ = loads;
    wir_valid_ = true;
    if (!config_.oracle_wir) gossip_.step(gossip_rng_);

    pending_ = IterationRecord{};
    pending_.seconds = report.seconds;
    pending_.utilization = report.utilization;
  }

  /// Adaptive-trigger half (call after the dynamics stepped): true when this
  /// iteration must end in an LB step.
  [[nodiscard]] bool should_balance(std::int64_t iter, double total_workload) {
    trigger_.record_iteration(pending_.seconds);
    const double threshold = trigger_threshold(iter, total_workload);
    pending_.degradation = trigger_.degradation();
    pending_.threshold = threshold;

    bool balance_now = false;
    switch (config_.trigger_mode) {
      case TriggerMode::kAdaptive:
        balance_now = trigger_.should_balance(threshold);
        break;
      case TriggerMode::kPeriodic:
        balance_now = (iter + 1) % config_.lb_period == config_.lb_phase;
        break;
      case TriggerMode::kNever:
        balance_now = false;
        break;
    }
    const bool last_iteration = iter + 1 >= config_.iterations;
    return !last_iteration && balance_now;
  }

  /// The centralized LB step (Algorithm 1, lines 17–23): each PE classifies
  /// itself from its own (gossip-fed, possibly stale) database view; the α
  /// it applies comes from the configured AlphaPolicy (E-X4).
  void balance(std::int64_t iter, std::span<const double> column_weights,
               std::span<const double> column_bytes, double total_workload) {
    const auto P = config_.pe_count;
    std::vector<double> alphas(static_cast<std::size_t>(P), 0.0);
    double step_alpha = 0.0;
    if (config_.method == Method::kUlba) {
      // kGossipModel's α is chosen once at the main PE (whose database the
      // centralized LB step gathers at anyway) and broadcast; the other
      // policies are evaluated per PE against its own view.
      double model_alpha = 0.0;
      if (config_.alpha_policy == AlphaPolicy::kGossipModel)
        model_alpha = model_alpha_for(iter, total_workload);
      for (std::int64_t p = 0; p < P; ++p) {
        const auto i = static_cast<std::size_t>(p);
        const auto view = gossip_.database(p).wirs();
        if (!detector_.is_overloading(wir_[i], view)) continue;
        double a = config_.alpha;
        switch (config_.alpha_policy) {
          case AlphaPolicy::kFixed:
            break;
          case AlphaPolicy::kGossipFraction:
            a = fraction_alpha(config_.alpha,
                               detector_.count_overloading(view), P);
            break;
          case AlphaPolicy::kGossipModel:
            a = model_alpha;
            break;
        }
        alphas[i] = a;
      }
      // Report the α the main PE's view implies, whether or not PE 0
      // itself overloads — the per-interval trace of `lb_alphas`.
      switch (config_.alpha_policy) {
        case AlphaPolicy::kFixed:
          step_alpha = config_.alpha;
          break;
        case AlphaPolicy::kGossipFraction:
          step_alpha = fraction_alpha(
              config_.alpha,
              detector_.count_overloading(gossip_.database(0).wirs()), P);
          break;
        case AlphaPolicy::kGossipModel:
          step_alpha = model_alpha;
          break;
      }
    }
    const auto lb_step = balancer_.step(alphas, column_weights, column_bytes,
                                        boundaries_);
    machine_.charge_global(lb_step.cost.total());
    lb_cost_.observe(lb_step.cost.total());
    trigger_.reset();
    boundaries_ = lb_step.boundaries;
    wir_valid_ = false;  // next delta would measure the migration
    if (lb_step.assignment.fell_back_to_standard) ++result_.fallback_count;
    ++result_.lb_count;
    result_.lb_seconds += lb_step.cost.total();
    result_.lb_iterations.push_back(iter);
    result_.lb_alphas.push_back(step_alpha);
    pending_.lb_performed = true;
  }

  /// Close the books on the current iteration.
  void end_iteration() {
    result_.compute_seconds += pending_.seconds;
    result_.iterations.push_back(pending_);
  }

  [[nodiscard]] RunResult take_result(std::span<const double> column_weights,
                                      std::int64_t eroded_cells) {
    result_.total_seconds = machine_.elapsed_seconds();
    result_.average_utilization = machine_.average_utilization();
    result_.eroded_cells = eroded_cells;
    result_.final_imbalance =
        lb::load_imbalance(column_weights, boundaries_);
    return std::move(result_);
  }

 private:
  /// The model policy's grid-searched α for iteration `iter`, memoized: the
  /// trigger-threshold evaluation and the LB step of one iteration see the
  /// same gossip/cost state, so the (expensive) grid search runs once.
  [[nodiscard]] double model_alpha_for(std::int64_t iter,
                                       double total_workload) const {
    if (model_alpha_iter_ != iter) {
      model_alpha_memo_ = model_grid_alpha(
          detector_, gossip_.database(0).wirs(), config_.pe_count,
          config_.iterations - (iter + 1), total_workload, config_.flops,
          lb_cost_.average());
      model_alpha_iter_ = iter;
    }
    return model_alpha_memo_;
  }

  /// The α the configured policy would apply at this instant — fed into the
  /// Eq. (11) trigger overhead so trigger and LB step agree (the ROADMAP
  /// follow-up: previously the trigger always used the fixed base α even
  /// when the LB step was about to apply a policy-chosen one).
  [[nodiscard]] double policy_alpha(std::int64_t iter, double total_workload,
                                    std::int64_t n_hat) const {
    switch (config_.alpha_policy) {
      case AlphaPolicy::kFixed:
        return config_.alpha;
      case AlphaPolicy::kGossipFraction:
        return fraction_alpha(config_.alpha, n_hat, config_.pe_count);
      case AlphaPolicy::kGossipModel:
        return model_alpha_for(iter, total_workload);
    }
    return config_.alpha;
  }

  /// Eq. (11): average LB cost plus, for ULBA, the overhead the next
  /// underloading step would impose on a non-overloading PE, estimated from
  /// the main PE's WIR database at the policy's current α.
  [[nodiscard]] double trigger_threshold(std::int64_t iter,
                                         double total_workload) const {
    double threshold = lb_cost_.average();
    if (config_.method == Method::kUlba &&
        config_.anticipate_overhead_in_trigger) {
      const auto P = config_.pe_count;
      const auto known = gossip_.database(0).wirs();
      const std::int64_t n_hat = detector_.count_overloading(known);
      if (n_hat > 0 && 2 * n_hat < P) {
        const double a = policy_alpha(iter, total_workload, n_hat);
        threshold += a * static_cast<double>(n_hat) /
                     static_cast<double>(P - n_hat) * total_workload /
                     (config_.flops * static_cast<double>(P));
      }
    }
    return threshold;
  }

  const AppConfig& config_;
  bsp::Machine machine_;
  lb::CentralizedLb balancer_;
  core::GossipNetwork gossip_;
  core::OverloadDetector detector_;
  core::AdaptiveTrigger trigger_;
  support::Rng gossip_rng_;
  core::LbCostEstimator lb_cost_;
  lb::StripeBoundaries boundaries_;
  double gossip_seconds_;
  std::vector<double> wir_;
  std::vector<double> prev_loads_;
  bool wir_valid_ = false;
  IterationRecord pending_;
  RunResult result_;
  mutable std::int64_t model_alpha_iter_ = -1;
  mutable double model_alpha_memo_ = 0.0;
};

/// The SPMD-distributed run (AppConfig::ranks > 1): every rank steps its
/// stripe of the DistributedDomain; the main rank additionally executes the
/// LbController against weights reassembled through real messages, so the
/// RunResult is bit-identical to the in-process run — plus the distributed
/// migration accounting.
///
/// With AppConfig::measure_time, every rank also burns real CPU ∝ its
/// stripe's workload per iteration (and ∝ its migration payload per LB
/// step, optionally perturbed by the `mt_noise` interference model), and a
/// steady_clock track — iteration maxima, measured degradation, timing-based
/// fractional imbalance, per-LB-step cost — is recorded into
/// RunResult::measured. Under TriggerSource::kModel the LB verdicts still
/// come from the virtual-time controller, so the trajectory is bit-identical
/// to the model-time run: the measurements ride alongside the model, they
/// never steer it. Under TriggerSource::kMeasured the loop closes: the main
/// rank runs Algorithm 1 (or the fli test) on the gathered real timings and
/// broadcasts THAT verdict, so the LB schedule follows the hardware — the
/// virtual track is still recorded, now as the report-only side.
RunResult run_distributed(const AppConfig& config,
                          const DomainConfig& domain_config) {
  using Clock = std::chrono::steady_clock;
  using support::seconds_since;
  const auto max_op = [](double a, double b) { return std::max(a, b); };
  RunResult result;
  const int R = static_cast<int>(config.ranks);
  runtime::spmd_run(
      R, [&](runtime::Comm& comm) {
        const std::shared_ptr<const lb::Partitioner> partitioner(
            lb::make_partitioner(config.partitioner));
        const ExchangeMode exchange =
            exchange_mode_from_name(config.exchange);
        GridOptions grid;
        grid.grid_rows = config.grid_rows;
        grid.grid_cols = config.grid_cols;
        grid.tuner = config.tuner;
        grid.tuner_config = {config.tuner_cap, config.tuner_maxiter,
                             config.tuner_tol};
        DistributedDomain domain =
            config.decomp == "grid"
                ? DistributedDomain(domain_config, comm, partitioner,
                                    exchange, grid)
                : DistributedDomain(domain_config, comm, partitioner,
                                    exchange);
        // Both RNG kinds key the dynamics off the same forked sub-seed, so
        // neither can collide with the placement/gossip streams.
        support::Rng dynamics_rng = support::Rng(config.seed).fork(1);
        const std::uint64_t dynamics_seed = dynamics_rng.seed();
        const bool counter = config.rng_kind == RngKind::kCounter;
        std::optional<support::ThreadPool> pool;
        if (config.threads > 1)
          pool.emplace(static_cast<std::size_t>(config.threads));
        const bool main = comm.rank() == 0;
        std::optional<LbController> ctl;
        if (main) ctl.emplace(config, partitioner, domain.columns());
        const double byte_scale =
            config.bytes_per_cell / config.flop_per_cell;
        const bool mt = config.measure_time;
        const bool measured_src =
            config.trigger_source == TriggerSource::kMeasured;
        MeasuredTimes measured;
        // Main rank: Algorithm 1 on the real clock. Report-only under the
        // model source; the deciding trigger under the measured source.
        core::AdaptiveTrigger measured_trigger;
        // Running average of the observed (allreduced-max) LB-step costs —
        // the measured threshold. The prior is never consulted: before the
        // first observation the measured trigger bootstraps its threshold
        // from the reference iteration time instead (an LB step is assumed
        // to cost about one quiet iteration, the cheap-probe bootstrap).
        core::LbCostEstimator measured_lb_cost(0.0);
        // Interference model: position-addressed noise, so the burn
        // perturbation of (rank, iter) is deterministic per seed and
        // independent of the placement/dynamics/gossip streams.
        const support::CounterRng noise_rng(config.seed, 0x6E6F697365ull);
        double measured_util_sum = 0.0;
        std::int64_t measured_util_iters = 0;
        const auto run0 = Clock::now();

        for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
          // Monitoring gather (collective): the main rank reassembles the
          // full pre-step weights and runs superstep/WIR/gossip on them.
          const std::vector<double> weights = domain.gather_column_weights(0);
          if (main) ctl->observe(iter, weights);

          // Measured mode: compute my stripe for real (burn ∝ owned
          // workload) and agree on the iteration time — the max over ranks,
          // exactly what a barriered superstep would observe.
          if (mt) {
            double owned = 0.0;
            for (const double w : domain.local_column_weights()) owned += w;
            if (config.mt_noise > 0.0) {
              // 1 + noise·u, u uniform on [−1, 1): multi-tenant
              // interference scaling this rank's burn this iteration.
              const double u =
                  2.0 * noise_rng.uniform01(
                            static_cast<std::uint64_t>(comm.rank()),
                            static_cast<std::uint64_t>(iter)) -
                  1.0;
              owned *= 1.0 + config.mt_noise * u;
            }
            const auto it0 = Clock::now();
            support::burn(owned, config.ns_scale);
            const double my_seconds = seconds_since(it0);
            const double step_max = comm.allreduce(my_seconds, max_op);
            const double step_sum = comm.allreduce(my_seconds);
            // Timing-based imbalance of THIS iteration (collective, same
            // value on every rank): the reactive fli criterion's signal.
            const double fli = domain.fractional_load_imbalance(my_seconds);
            if (main) {
              measured.iteration_seconds.push_back(step_max);
              measured.compute_seconds += step_max;
              if (step_max > 0.0) {
                measured_util_sum +=
                    step_sum / (static_cast<double>(R) * step_max);
                ++measured_util_iters;
              }
              measured_trigger.record_iteration(step_max);
              measured.degradation.push_back(measured_trigger.degradation());
              measured.fli.push_back(fli);
            }
          }

          // Application dynamics (collective; independent of LB decisions).
          if (counter)
            (void)domain.step_counter(dynamics_seed, iter,
                                      pool ? &*pool : nullptr);
          else if (pool)
            (void)domain.step(dynamics_rng, *pool);
          else
            (void)domain.step(dynamics_rng);

          // The trigger decides at the main rank; the verdict is broadcast
          // so every rank enters (or skips) the LB collectives in lockstep.
          std::uint8_t balance_now = 0;
          if (main) {
            // Always run the virtual-time controller's trigger half — it
            // records the model-clock degradation/threshold trace either
            // way. Under the model source its verdict decides; under the
            // measured source it is recorded and discarded.
            const bool model_verdict =
                ctl->should_balance(iter, domain.total_workload());
            if (!measured_src) {
              balance_now = model_verdict ? 1 : 0;
            } else {
              bool fire = false;
              switch (config.trigger_criterion) {
                case TriggerCriterion::kDegradation: {
                  const double threshold =
                      measured_lb_cost.observations() > 0
                          ? measured_lb_cost.average()
                          : measured_trigger.reference_time();
                  fire = measured_trigger.should_balance(threshold);
                  break;
                }
                case TriggerCriterion::kFli:
                  fire = measured.fli.back() >= config.fli_threshold;
                  break;
              }
              const bool last_iteration = iter + 1 >= config.iterations;
              balance_now = (!last_iteration && fire) ? 1 : 0;
            }
          }
          comm.broadcast(balance_now, 0);
          if (balance_now != 0) {
            const auto lb0 = Clock::now();
            // One reassembly serves both the centralized LB step (main
            // rank) and the stripe recut (every rank).
            const std::vector<double> post =
                domain.allgather_column_weights();
            if (main) {
              std::vector<double> bytes(post.size());
              for (std::size_t x = 0; x < post.size(); ++x)
                bytes[x] = post[x] * byte_scale;
              ctl->balance(iter, post, bytes, domain.total_workload());
            }
            // Recut the rank stripes against the freshly balanced weights —
            // column weights and disc ownership move as real messages.
            const auto mig0 = Clock::now();
            const DistributedReshardResult reshard = domain.rebalance(post);
            if (mt) {
              // Pack/unpack cost ∝ the payload THIS rank really moved.
              support::burn(reshard.my_payload_bytes,
                            config.ns_scale * config.migration_scale);
              const double mig_max =
                  comm.allreduce(seconds_since(mig0), max_op);
              const double lb_max =
                  comm.allreduce(seconds_since(lb0), max_op);
              if (main) {
                measured.migration_seconds += mig_max;
                measured.lb_step_seconds.push_back(lb_max);
                measured.lb_seconds += lb_max;
                // The observed real cost of this LB step calibrates the
                // measured trigger's threshold (principle of persistence).
                measured_lb_cost.observe(lb_max);
                measured_trigger.reset();
              }
            }
            if (main) {
              ctl->result().rank_discs_moved += reshard.discs_moved;
              ctl->result().rank_migration_bytes +=
                  reshard.predicted.total_bytes;
              ctl->result().rank_observed_bytes +=
                  reshard.observed_payload_bytes;
              if (reshard.tuner_ran)
                ctl->result().grid_tuner_iterations +=
                    reshard.tuned_cols.iterations +
                    reshard.tuned_rows.iterations;
            }
          }
          if (main) ctl->end_iteration();
        }
        const std::vector<double> final_weights =
            domain.gather_column_weights(0);
        // Collective: the decomposition-level (per-RANK) imbalance of the
        // final cut — distinct from RunResult::final_imbalance, which rates
        // the controller's PE stripes.
        const double fractional = domain.fractional_load_imbalance();
        const auto step_messages = comm.allreduce(
            static_cast<std::int64_t>(domain.step_messages_sent()));
        const auto step_bytes = comm.allreduce(
            static_cast<double>(domain.step_payload_bytes_sent()));
        if (main) {
          result = ctl->take_result(final_weights, domain.eroded_cells());
          result.rank_step_messages = step_messages;
          result.rank_step_bytes = step_bytes;
          result.rank_fractional_imbalance = fractional;
          if (mt) {
            measured.wall_seconds = seconds_since(run0);
            // Average over the iterations that actually contributed a
            // ratio — iterations whose max burn rounded to zero carry no
            // utilization information and must not dilute the mean.
            measured.utilization =
                measured_util_iters > 0
                    ? measured_util_sum /
                          static_cast<double>(measured_util_iters)
                    : 0.0;
            result.measured = std::move(measured);
          }
        }
      });
  return result;
}

}  // namespace

void AppConfig::validate() const {
  ULBA_REQUIRE(pe_count >= 2, "need at least two PEs");
  ULBA_REQUIRE(columns_per_pe >= 4, "need at least four columns per PE");
  ULBA_REQUIRE(rows >= 4, "need at least four rows");
  ULBA_REQUIRE(rock_radius >= 1, "rock radius must be at least one cell");
  ULBA_REQUIRE(2 * rock_radius + 2 < rows,
               "rocks must fit inside the domain height");
  ULBA_REQUIRE(2 * rock_radius + 2 < columns_per_pe,
               "rocks must fit one per initial stripe without touching");
  ULBA_REQUIRE(strong_rock_count >= 0 && strong_rock_count <= pe_count,
               "strong rocks must number in [0, P]");
  ULBA_REQUIRE(weak_probability >= 0.0 && weak_probability <= 1.0 &&
                   strong_probability >= 0.0 && strong_probability <= 1.0,
               "erosion probabilities must lie in [0, 1]");
  ULBA_REQUIRE(iterations >= 1, "need at least one iteration");
  ULBA_REQUIRE(flops > 0.0, "PE speed must be positive");
  ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  ULBA_REQUIRE(gossip_fanout >= 1 && gossip_fanout < pe_count,
               "gossip fanout must lie in [1, P)");
  ULBA_REQUIRE(wir_smoothing > 0.0 && wir_smoothing <= 1.0,
               "WIR smoothing factor must lie in (0, 1]");
  ULBA_REQUIRE(lb_period >= 1, "LB period must be at least one iteration");
  ULBA_REQUIRE(lb_phase >= 0 && lb_phase < lb_period,
               "LB phase must lie in [0, lb_period)");
  ULBA_REQUIRE(threads >= 1, "need at least one stepping thread");
  ULBA_REQUIRE(shards >= 1 && shards <= pe_count,
               "shard count must lie in [1, pe_count]");
  ULBA_REQUIRE(ranks >= 1 && ranks <= pe_count,
               "rank count must lie in [1, pe_count]");
  ULBA_REQUIRE(ranks == 1 || shards == 1,
               "distributed stepping (ranks > 1) and in-process sharding "
               "(shards > 1) are mutually exclusive");
  ULBA_REQUIRE(!measure_time || ranks > 1,
               "measured-time mode runs on the SPMD runtime (ranks > 1)");
  ULBA_REQUIRE(ns_scale > 0.0 && migration_scale >= 0.0,
               "ns_scale must be positive and migration_scale nonnegative");
  ULBA_REQUIRE(trigger_source == TriggerSource::kModel || measure_time,
               "the measured trigger source needs measured-time mode "
               "(ranks > 1 with measure_time)");
  ULBA_REQUIRE(trigger_source == TriggerSource::kModel ||
                   trigger_mode == TriggerMode::kAdaptive,
               "the measured trigger source drives the adaptive trigger "
               "only (periodic/never schedules are clock-independent)");
  ULBA_REQUIRE(trigger_criterion == TriggerCriterion::kDegradation ||
                   trigger_source == TriggerSource::kMeasured,
               "a trigger criterion other than degradation requires the "
               "measured trigger source");
  ULBA_REQUIRE(fli_threshold > 0.0,
               "the fli trigger threshold must be positive");
  ULBA_REQUIRE(mt_noise >= 0.0 && mt_noise < 1.0,
               "measured-time burn noise must lie in [0, 1)");
  ULBA_REQUIRE(mt_noise == 0.0 || measure_time,
               "burn noise only exists in measured-time mode");
  ULBA_REQUIRE(decomp == "stripes" || decomp == "grid",
               "unknown decomposition (accepted: stripes, grid)");
  ULBA_REQUIRE(decomp == "stripes" || ranks > 1,
               "the grid decomposition runs on the SPMD runtime (ranks > 1)");
  ULBA_REQUIRE(decomp == "grid" || (grid_rows == 0 && grid_cols == 0),
               "a grid shape is only meaningful with the grid decomposition");
  ULBA_REQUIRE(!tuner || decomp == "grid",
               "the boundary tuner requires the grid decomposition");
  ULBA_REQUIRE(tuner_cap > 0.0 && tuner_cap <= 0.5,
               "tuner cap must lie in (0, 0.5]");
  ULBA_REQUIRE(tuner_maxiter >= 1, "tuner needs at least one iteration");
  ULBA_REQUIRE(tuner_tol >= 1.0, "tuner tolerance must be >= 1");
  if (decomp == "grid")  // throws on non-factorable shape requests
    (void)lb::resolve_grid_shape(ranks, grid_rows, grid_cols);
  (void)lb::make_partitioner(partitioner);  // throws on unknown names
  (void)exchange_mode_from_name(exchange);  // throws on unknown names
  comm.validate();
}

ErosionApp::ErosionApp(AppConfig config) : config_(config) {
  config_.validate();
}

DomainConfig ErosionApp::make_domain() const {
  // Placement stream: which discs are strongly erodible. "It is not known in
  // advance where the rocks with a high eroding probability are located."
  support::Rng placement = support::Rng(config_.seed).fork(0);
  const auto strong = placement.sample_without_replacement(
      static_cast<std::size_t>(config_.pe_count),
      static_cast<std::size_t>(config_.strong_rock_count));
  std::vector<bool> is_strong(static_cast<std::size_t>(config_.pe_count),
                              false);
  for (std::size_t s : strong) is_strong[s] = true;

  DomainConfig d;
  d.columns = config_.columns();
  d.rows = config_.rows;
  d.flop_per_cell = config_.flop_per_cell;
  d.bytes_per_cell = config_.bytes_per_cell;
  d.discs.reserve(static_cast<std::size_t>(config_.pe_count));
  for (std::int64_t i = 0; i < config_.pe_count; ++i) {
    RockDisc disc;
    disc.cx = i * config_.columns_per_pe + config_.columns_per_pe / 2;
    disc.cy = config_.rows / 2;
    disc.radius = config_.rock_radius;
    disc.erosion_prob = is_strong[static_cast<std::size_t>(i)]
                            ? config_.strong_probability
                            : config_.weak_probability;
    d.discs.push_back(disc);
  }
  d.validate();
  return d;
}

RunResult ErosionApp::run() const {
  // ranks > 1: the same machinery over the SPMD runtime (real messages),
  // bit-identical by construction — see run_distributed/LbController.
  if (config_.ranks > 1) return run_distributed(config_, make_domain());

  // Independent streams: the dynamics stream must not depend on LB decisions
  // so both methods see identical erosion for one seed. The counter kind
  // keys off the same forked sub-seed (its draws are position-addressed, so
  // the seed is all it consumes from the stream machinery).
  support::Rng dynamics_rng = support::Rng(config_.seed).fork(1);
  const std::uint64_t dynamics_seed = dynamics_rng.seed();
  const bool counter = config_.rng_kind == RngKind::kCounter;

  // One partitioner serves both the centralized LB technique's cuts and the
  // host-side disc-to-shard assignment of the sharded stepper.
  const std::shared_ptr<const lb::Partitioner> partitioner(
      lb::make_partitioner(config_.partitioner));
  // shards == 1 keeps the historical unsharded paths (and their RNG
  // trajectories); shards > 1 steps through ShardedDomain, whose trajectory
  // is bit-identical to the serial shared-stream stepper regardless of the
  // shard/thread counts.
  std::optional<ErosionDomain> plain;
  std::optional<ShardedDomain> sharded;
  if (config_.shards > 1)
    sharded.emplace(make_domain(), config_.shards, partitioner);
  else
    plain.emplace(make_domain());
  const ErosionDomain& domain = sharded ? sharded->domain() : *plain;

  LbController ctl(config_, partitioner, domain.columns());

  // Dynamics stepping: serial shared-stream below 2 threads, per-disc
  // substreams on a pool otherwise (see AppConfig::threads).
  std::optional<support::ThreadPool> pool;
  if (config_.threads > 1)
    pool.emplace(static_cast<std::size_t>(config_.threads));

  for (std::int64_t iter = 0; iter < config_.iterations; ++iter) {
    ctl.observe(iter, domain.column_weights());

    // --- application dynamics (independent of every LB decision)
    if (counter) {
      support::ThreadPool* p = pool ? &*pool : nullptr;
      if (sharded)
        sharded->step_counter(dynamics_seed, iter, p);
      else
        plain->step_counter(dynamics_seed, iter, p);
    } else if (sharded) {
      if (pool)
        sharded->step(dynamics_rng, *pool);
      else
        sharded->step(dynamics_rng);
    } else if (pool) {
      plain->step(dynamics_rng, *pool);
    } else {
      plain->step(dynamics_rng);
    }

    if (ctl.should_balance(iter, domain.total_workload())) {
      ctl.balance(iter, domain.column_weights(), domain.column_bytes(),
                  domain.total_workload());
      if (sharded) {
        // Re-shard the host-side stepping against the freshly balanced
        // weights — the boundary workload deltas move with the LB step. The
        // trajectory is shard-invariant, so this only affects host
        // parallelism and the reported migration accounting.
        const ReshardResult reshard = sharded->rebalance();
        ctl.result().shard_discs_moved += reshard.discs_moved;
        ctl.result().shard_migration_bytes += reshard.migration.total_bytes;
      }
    }
    ctl.end_iteration();
  }

  return ctl.take_result(domain.column_weights(), domain.eroded_cells());
}

}  // namespace ulba::erosion
