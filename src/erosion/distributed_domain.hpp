// Distributed erosion domain — the erosion workload over the SPMD
// message-passing runtime, one instance per runtime::Comm rank.
//
// Where ShardedDomain splits discs across in-process shards that commit
// through ONE shared per-column weight array, DistributedDomain owns no
// shared state at all: each rank holds exactly the column weights of its
// contiguous stripe plus the materialized DiscStates of the discs whose
// centers fall in that stripe. Everything that crosses a stripe boundary is
// a real runtime::Mailbox message:
//
//   * per step, each rank sends every peer the (column, eroded-cell-count)
//     deltas that land in the peer's stripe — the halo exchange a disc
//     straddling a boundary requires — together with the updated frontier
//     sizes of its own discs (the metadata the lockstep stream split needs)
//     and its eroded-cell total;
//   * per rebalance, the stripes are recut by any lb::Partitioner and both
//     column weights and whole DiscStates change owner as serialized
//     messages, with the analytic lb::migration_volume prediction validated
//     against the columns that were actually exchanged.
//
// Determinism contract (the distributed extension of the sharded
// partition-invariance property, locked by tests/test_distributed_erosion):
// for EVERY (rank count, partitioner, per-rank thread count) the trajectory
// and the final domain report are BIT-identical to the serial shared-stream
// ErosionDomain::step(rng), including the master RNG's post-run state. The
// same three disciplines as ShardedDomain make this possible, with one
// twist: every rank advances its own lockstep COPY of the master stream by
// the full Σ frontier_i draws (Bernoulli consumption is p-independent), so
// the per-disc snapshots are positioned identically on every rank without
// any stream ever crossing the wire.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "erosion/counter_kernel.hpp"
#include "erosion/disc.hpp"
#include "erosion/domain.hpp"
#include "lb/grid.hpp"
#include "lb/migration.hpp"
#include "lb/partitioners.hpp"
#include "lb/stripe_partitioner.hpp"
#include "runtime/comm.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace ulba::erosion {

/// How the per-step exchange routes its traffic.
enum class ExchangeMode {
  /// One message per peer per step (R·(R−1) messages): every rank sends
  /// every other rank its eroded total, halo deltas, and frontier metadata.
  /// The historical PR-4 scheme, kept as the ablation reference.
  kAllToAll,
  /// Neighbor-aware (the default): halo deltas travel only to the ranks
  /// whose stripes a local disc's bounding box overlaps — the neighbor set
  /// recomputed from the partition cut at construction and after every
  /// rebalance — while the global eroded count and the frontier metadata
  /// propagate through one reduction at rank 0 plus one broadcast. Per-step
  /// message count drops from R·(R−1) to 2·(R−1) + Σ|neighbors|; the
  /// trajectory stays bit-identical (halo credits are per-cell and
  /// order-independent, the eroded reduction folds exact integers in rank
  /// order, frontier updates are plain assignments).
  kNeighbor,
};

/// Parse "alltoall" | "neighbor" (the `--exchange` vocabulary); throws
/// std::invalid_argument on anything else.
[[nodiscard]] ExchangeMode exchange_mode_from_name(const std::string& name);
[[nodiscard]] std::string exchange_mode_name(ExchangeMode mode);

/// The 2D (rows x columns) decomposition request of a DistributedDomain —
/// the alternative to the default 1D column stripes. Every rank owns one
/// rectangular tile of the cell grid (row-major rank -> tile map) plus the
/// discs whose centers fall inside it; halo deltas flow to the 2D (edge AND
/// corner) neighbor tiles through the same exchange machinery as stripes.
///
/// Determinism: the LB-facing column weights of a grid run come from a
/// rank-0 monitor fed by integer eroded-cell deltas, folded one constant
/// increment per cell — bit-identical to the serial incremental weights for
/// ANY tile shape, which is what keeps the whole RunResult trajectory
/// serial-identical in 2D for both RNG kinds. A 1-row grid with the tuner
/// off is not merely equivalent to stripes: it runs the stripe code path,
/// so "1xC == 1D stripes" holds by code identity.
struct GridOptions {
  std::int64_t grid_rows = 0;  ///< 0 = derive (near-square factorization)
  std::int64_t grid_cols = 0;  ///< 0 = derive from grid_rows
  /// Rebalance boundaries with the damped per-dimension tuner instead of a
  /// fresh partitioner recut: each rebalance rescales row/column boundaries
  /// by inverse band imbalance, capped at tuner_config.cap of the adjacent
  /// tile extent per rebalance (hoomd-blue LoadBalancer style).
  bool tuner = false;
  lb::GridTunerConfig tuner_config;
};

/// Outcome of one distributed rebalance (identical on every rank).
struct DistributedReshardResult {
  /// The new rank → column-range map (grid mode: the new COLUMN-band bounds,
  /// size grid_cols()+1 — the row bounds travel in `tuned_rows` or through
  /// DistributedDomain::grid_row_bounds()).
  lb::StripeBoundaries boundaries;
  std::int64_t discs_moved = 0;     ///< discs that changed rank ownership
  /// The analytic Eq.-C accounting: what migrating from the old to the new
  /// stripes costs given the per-column data sizes (the same model the
  /// virtual-time LB step charges).
  lb::MigrationVolume predicted;
  /// Modeled bytes of the columns ACTUALLY exchanged as messages, summed
  /// per rank (sent + received, mirroring MigrationVolume::per_pe_bytes) —
  /// computed from the weights carried by the migration messages, so a test
  /// can validate the analytic prediction against observed traffic.
  std::vector<double> observed_per_rank_bytes;
  /// Σ modeled bytes over exchanged columns, each counted once (the
  /// observed counterpart of MigrationVolume::total_bytes).
  double observed_column_bytes = 0.0;
  /// Real payload bytes this rank put on / took off the wire during the
  /// rebalance (column weights + serialized discs), summed over all ranks.
  double observed_payload_bytes = 0.0;
  /// This rank's own share of that payload (sent + received, NOT reduced) —
  /// what a measured-time driver charges its local migration burn against.
  double my_payload_bytes = 0.0;
  /// Grid mode with the tuner enabled: the per-dimension tuner outcomes of
  /// this rebalance (iterations used, band imbalance before/after per
  /// dimension). Default-constructed otherwise.
  bool tuner_ran = false;
  lb::TuneOutcome tuned_cols;
  lb::TuneOutcome tuned_rows;
};

/// The rank-local final report every rank replicates (bit-identical to the
/// serial domain's observers under the determinism contract).
struct DistributedReport {
  std::int64_t eroded_cells = 0;
  std::int64_t rock_cells_remaining = 0;
  std::int64_t frontier_size = 0;
  double total_workload = 0.0;
};

class DistributedDomain {
 public:
  /// Collective: every rank of `comm` constructs with the same `config`, an
  /// equivalent `partitioner`, and the same `exchange` mode. The initial
  /// stripes are cut against the initial column weights (even targets),
  /// exactly like ShardedDomain.
  DistributedDomain(DomainConfig config, runtime::Comm& comm,
                    std::shared_ptr<const lb::Partitioner> partitioner,
                    ExchangeMode exchange = ExchangeMode::kNeighbor);

  /// Collective: the 2D grid decomposition — every rank owns one
  /// rectangular tile (see GridOptions). The initial bounds cut each
  /// dimension's marginal of the initial weights with `partitioner` (even
  /// targets). A grid_rows == 1 request without the tuner delegates to the
  /// stripe construction above, byte for byte.
  DistributedDomain(DomainConfig config, runtime::Comm& comm,
                    std::shared_ptr<const lb::Partitioner> partitioner,
                    ExchangeMode exchange, const GridOptions& grid);

  /// Collective: one erosion iteration (local discs stepped serially).
  /// Returns the GLOBAL eroded-cell count — the value the serial
  /// ErosionDomain::step(rng) returns.
  std::int64_t step(support::Rng& rng);

  /// Collective: one erosion iteration, local discs stepped across `pool`
  /// (a rank-local pool). Bit-identical to the serial overload.
  std::int64_t step(support::Rng& rng, support::ThreadPool& pool);

  /// Collective: one erosion iteration on the counter-RNG fast path. Draws
  /// are addressed by (global disc id, iteration, cell) through
  /// support::CounterRng, so the lockstep burn pass of `step(rng)`
  /// disappears entirely — no rank ever advances a master-stream copy, and
  /// the per-step cost of a rank is O(its own frontier), not O(the global
  /// frontier). Bit-identical to ErosionDomain::step_counter on an
  /// undistributed copy for every (rank count, partitioner, exchange mode,
  /// pool size) by construction; shares the halo/reduction exchange with
  /// the fork path.
  std::int64_t step_counter(std::uint64_t seed, std::int64_t iteration,
                            support::ThreadPool* pool = nullptr);

  /// Collective: recut the rank stripes against the current column weights
  /// (even targets) and migrate column weights + disc ownership as real
  /// messages. The stepping trajectory is unaffected.
  DistributedReshardResult rebalance();

  /// Collective variant taking the full-width weights already reassembled
  /// by `allgather_column_weights()` — callers that just gathered them
  /// (e.g. the LB driver) avoid a second gather/broadcast round. Every
  /// rank must pass identical contents.
  DistributedReshardResult rebalance(std::span<const double> full_weights);

  // ---- observers (rank-local, no communication) --------------------------

  [[nodiscard]] const DomainConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::int64_t columns() const noexcept {
    return config_.columns;
  }
  [[nodiscard]] int rank() const noexcept { return comm_->rank(); }
  [[nodiscard]] int ranks() const noexcept { return comm_->size(); }

  /// Current rank → column-range boundaries (size ranks + 1, replicated).
  /// Stripe mode only — empty under a 2D grid decomposition, whose tiles
  /// are published through grid_row_bounds()/grid_col_bounds().
  [[nodiscard]] const lb::StripeBoundaries& rank_boundaries() const noexcept {
    return boundaries_;
  }
  /// True when this domain runs the 2D tile decomposition (a GridOptions
  /// construction with more than one tile row, or with the tuner on).
  [[nodiscard]] bool grid_mode() const noexcept { return grid_; }
  [[nodiscard]] std::int64_t grid_rows() const noexcept { return tile_rows_; }
  [[nodiscard]] std::int64_t grid_cols() const noexcept { return tile_cols_; }
  /// Grid mode: the row/column boundaries of the tile grid (sizes
  /// grid_rows()+1 / grid_cols()+1, replicated). Rank ri*grid_cols()+ci owns
  /// rows [row_bounds[ri], row_bounds[ri+1]) x columns [col_bounds[ci],
  /// col_bounds[ci+1]). Empty in stripe mode.
  [[nodiscard]] const std::vector<std::int64_t>& grid_row_bounds()
      const noexcept {
    return row_bounds_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& grid_col_bounds()
      const noexcept {
    return col_bounds_;
  }
  [[nodiscard]] ExchangeMode exchange_mode() const noexcept {
    return exchange_;
  }
  /// Neighbor mode only: ranks my halo deltas may target (ascending) — the
  /// owners of any column a local disc's bounding box covers — and the
  /// ranks whose discs overlap MY stripe (who therefore message me each
  /// step). Both recomputed from the partition cut after every rebalance;
  /// empty in all-to-all mode.
  [[nodiscard]] std::span<const int> halo_send_neighbors() const noexcept {
    return send_neighbors_;
  }
  [[nodiscard]] std::span<const int> halo_recv_neighbors() const noexcept {
    return recv_neighbors_;
  }
  /// Messages/payload THIS rank put on the wire inside step() so far (halo
  /// deltas + reduction/broadcast legs; rebalance traffic excluded). Sum
  /// over ranks for the per-step totals the exchange modes are compared on.
  [[nodiscard]] std::uint64_t step_messages_sent() const noexcept {
    return step_messages_;
  }
  [[nodiscard]] std::uint64_t step_payload_bytes_sent() const noexcept {
    return step_payload_bytes_;
  }
  /// Global indices of the discs this rank owns, ascending.
  [[nodiscard]] std::span<const std::size_t> local_discs() const noexcept {
    return local_disc_ids_;
  }
  /// The rank owning disc `disc` (replicated knowledge).
  [[nodiscard]] int owner_of_disc(std::size_t disc) const;
  /// The rank owning column `x` (stripe mode only — a grid tile owns column
  /// SEGMENTS, so whole-column ownership is undefined there).
  [[nodiscard]] int owner_of_column(std::int64_t x) const;
  /// The rank owning cell (x, y) under the current decomposition (both
  /// modes; stripe mode ignores y beyond a range check).
  [[nodiscard]] int owner_of_cell(std::int64_t x, std::int64_t y) const;

  /// This rank's column weights, spanning [first_column, first_column + n).
  /// In grid mode these are PARTIAL column weights — each entry sums only
  /// the tile's own rows — deterministic across exchange modes and pools,
  /// but not the serial full-column values (those live in the rank-0
  /// monitor that gather_column_weights() serves).
  [[nodiscard]] std::span<const double> local_column_weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::int64_t first_column() const noexcept {
    return my_col0_;
  }

  /// Collective: the HemoCell-style fractional load imbalance of the
  /// current decomposition, (max rank load − avg)/avg over the per-rank
  /// sums of local_column_weights(). Identical on every rank; 0 when
  /// perfectly balanced. The number the damped grid tuner drives down.
  [[nodiscard]] double fractional_load_imbalance() const;
  /// Collective: the same (max − avg)/avg fold over a caller-provided
  /// per-rank value instead of the model weights — pass this rank's
  /// measured iteration burn time to get the TIMING-based imbalance the
  /// reactive `--trigger-criterion fli` consumes (SNIPPETS.md Snippets 2–3:
  /// gather per-rank timings, decide centrally). Identical on every rank.
  [[nodiscard]] double fractional_load_imbalance(double local_value) const;

  /// Replicated global counters — all bit-identical to the serial domain.
  [[nodiscard]] double total_workload() const noexcept { return total_; }
  [[nodiscard]] std::int64_t eroded_cells() const noexcept { return eroded_; }
  [[nodiscard]] std::int64_t rock_cells_remaining() const noexcept {
    return rock_remaining_;
  }
  [[nodiscard]] std::int64_t frontier_size() const noexcept;
  /// Current frontier size of any disc (replicated metadata — this is what
  /// the lockstep stream split burns per disc).
  [[nodiscard]] std::int64_t disc_frontier_size(std::size_t disc) const;

  [[nodiscard]] DistributedReport report() const noexcept {
    return {eroded_, rock_remaining_, frontier_size(), total_};
  }

  // ---- collectives -------------------------------------------------------

  /// Collective: reassemble the full-width column weights at `root` (every
  /// rank must call; non-roots return {}). This is the real-message
  /// counterpart of ErosionDomain::column_weights() for the monitoring and
  /// LB layers. Stripe mode concatenates the per-rank stripes; grid mode
  /// drains the pending integer deltas into the rank-0 monitor and serves
  /// that — bit-identical to the serial incremental weights either way.
  [[nodiscard]] std::vector<double> gather_column_weights(int root) const;

  /// Collective: reassemble the full-width column weights on EVERY rank
  /// (gather at rank 0 + broadcast).
  [[nodiscard]] std::vector<double> allgather_column_weights() const;

 private:
  /// Shared ctor body: replay the serial builder's weight accounting over a
  /// transient full-width view (one DiscState alive at a time), filling the
  /// frontier metadata, the rock census, and Wtot, and producing the initial
  /// column weights plus their row marginal. Every rank derives identical
  /// values without ever holding the whole domain.
  void replay_initial_weights(std::vector<double>& full_cols,
                              std::vector<double>& full_rows);
  /// The stripe construction body (also the 1-row-grid-no-tuner path).
  void init_stripes();
  /// The 2D tile construction body (tile_rows_/tile_cols_ already set).
  void init_grid();
  /// Recompute disc_owner_/local ids from the current decomposition (disc →
  /// rank whose stripe/tile holds its center cell). `keep` holds the
  /// still-local DiscStates by global id, already including received
  /// hand-offs.
  void assign_local_discs();
  /// Recompute send/recv halo-neighbor sets from the decomposition +
  /// disc_owner_ + the disc bounding boxes (all replicated) — must follow
  /// every boundary or ownership change. In grid mode a disc's box covers a
  /// RECTANGLE of tiles, so the sets include corner neighbors.
  void recompute_neighbors();
  /// Apply `count` eroded cells to column `x` of my stripe/tile, one cell
  /// at a time (the serial commit's per-cell accounting, so FP results
  /// agree).
  void credit_column(std::int64_t x, std::int64_t count);
  /// Grid mode: the tile index along each dimension owning a coordinate.
  [[nodiscard]] int col_band_of(std::int64_t x) const;
  [[nodiscard]] int row_band_of(std::int64_t y) const;
  /// Grid mode: rebuild this rank's partial column weights analytically
  /// from integer cell counts — background minus the static disc footprints
  /// intersecting the tile, plus one refinement gain per refined cell
  /// (`refined_per_column`, tile-local, empty = all zero). One FP
  /// expression of exact integers, so every rank derives identical values.
  void rebuild_tile_weights(std::span<const std::int64_t> refined_per_column);
  /// Grid mode, collective: flush every rank's pending integer eroded-cell
  /// deltas into the rank-0 column/row monitors (constant increments — fold
  /// order cannot matter, rank order keeps it canonical).
  void drain_pending_deltas() const;
  /// Grid-mode rebalance body (dispatched from rebalance(full)).
  DistributedReshardResult rebalance_grid(std::span<const double> full);
  /// The stepper tail every RNG kind shares — commit my columns, bucket and
  /// exchange halo deltas + frontier metadata + the eroded reduction, fold
  /// the replicated global accounting. `erode[k]` holds the cells the k-th
  /// LOCAL disc eroded this step. Returns the global eroded count.
  std::int64_t finish_step(std::span<const std::vector<std::int32_t>> erode);
  /// Record one step()-phase send of `bytes` payload bytes.
  void count_step_send(std::size_t bytes) noexcept {
    ++step_messages_;
    step_payload_bytes_ += bytes;
  }

  DomainConfig config_;
  runtime::Comm* comm_;
  std::shared_ptr<const lb::Partitioner> partitioner_;
  ExchangeMode exchange_;
  lb::StripeBoundaries boundaries_;
  std::vector<int> send_neighbors_;  ///< ascending, neighbor mode only
  std::vector<int> recv_neighbors_;  ///< ascending, neighbor mode only
  std::uint64_t step_messages_ = 0;
  std::uint64_t step_payload_bytes_ = 0;

  std::vector<std::size_t> local_disc_ids_;  ///< ascending global ids
  std::vector<DiscState> local_discs_;       ///< parallel to local_disc_ids_
  std::vector<int> disc_owner_;              ///< replicated, per global disc
  std::vector<std::int64_t> frontier_sizes_; ///< replicated, per global disc

  std::vector<double> weights_;  ///< my stripe (or tile-partial) columns
  std::int64_t my_col0_ = 0;     ///< first column of my stripe/tile
  double total_ = 0.0;           ///< replicated global Wtot

  // ---- grid decomposition state (grid_ == true only) ---------------------
  bool grid_ = false;
  std::int64_t tile_rows_ = 1;  ///< grid shape: tile rows (R_t)
  std::int64_t tile_cols_ = 1;  ///< grid shape: tile columns (C_t)
  bool tuner_on_ = false;
  lb::GridTunerConfig tuner_cfg_;
  std::vector<std::int64_t> row_bounds_;  ///< size tile_rows_ + 1, replicated
  std::vector<std::int64_t> col_bounds_;  ///< size tile_cols_ + 1, replicated
  /// Rank-0 full-width monitors, bit-identical to the serial domain's
  /// incremental column weights (and their row marginal): seeded from the
  /// constructor replay and advanced one constant increment per eroded cell
  /// when the pending deltas drain at gather time. Mutable because the
  /// gather collective is logically const (it only OBSERVES the dynamics).
  mutable std::vector<double> monitor_cols_;
  mutable std::vector<double> monitor_rows_;
  /// Integer eroded-cell counts per column/row recorded by the DISC OWNER
  /// since the last drain (each eroded cell counted exactly once globally).
  mutable std::vector<std::int64_t> pending_cols_;
  mutable std::vector<std::int64_t> pending_rows_;

  std::int64_t rock_remaining_ = 0;
  std::int64_t eroded_ = 0;
  CounterWorkspace counter_ws_;  ///< step_counter's reusable flat buffers
};

}  // namespace ulba::erosion
