#include "erosion/sharded_domain.hpp"

#include <algorithm>
#include <utility>

#include "support/require.hpp"

namespace ulba::erosion {

ShardedDomain::ShardedDomain(
    DomainConfig config, std::int64_t shard_count,
    std::shared_ptr<const lb::Partitioner> partitioner)
    : domain_(std::move(config)), partitioner_(std::move(partitioner)) {
  ULBA_REQUIRE(partitioner_ != nullptr, "sharding needs a partitioner");
  ULBA_REQUIRE(shard_count >= 1 && shard_count <= domain_.columns(),
               "shard count must lie in [1, columns]");
  const std::vector<double> targets(
      static_cast<std::size_t>(shard_count),
      1.0 / static_cast<double>(shard_count));
  boundaries_ = partitioner_->partition(domain_.column_weights(), targets);
  shard_discs_.resize(static_cast<std::size_t>(shard_count));
  disc_shard_.assign(domain_.disc_count(), 0);
  assign_discs();
}

void ShardedDomain::assign_discs() {
  for (auto& discs : shard_discs_) discs.clear();
  // A disc belongs to the shard whose stripe holds its center column; discs
  // are strictly interior, so the center always falls into exactly one
  // stripe. Ascending disc order per shard keeps the per-shard decide order
  // deterministic (not that it matters for the trajectory — every disc draws
  // from its own positioned snapshot).
  for (std::size_t i = 0; i < domain_.disc_count(); ++i) {
    const std::int64_t cx = domain_.config().discs[i].cx;
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), cx);
    const auto shard = static_cast<std::size_t>(
        std::distance(boundaries_.begin(), it) - 1);
    ULBA_CHECK(shard < shard_discs_.size(),
               "disc center outside every shard stripe");
    shard_discs_[shard].push_back(i);
    disc_shard_[i] = static_cast<std::int64_t>(shard);
  }
}

std::span<const std::size_t> ShardedDomain::discs_of_shard(
    std::int64_t shard) const {
  ULBA_REQUIRE(shard >= 0 && shard < shard_count(), "shard index out of range");
  return shard_discs_[static_cast<std::size_t>(shard)];
}

std::int64_t ShardedDomain::shard_of_disc(std::size_t disc) const {
  ULBA_REQUIRE(disc < disc_shard_.size(), "disc index out of range");
  return disc_shard_[disc];
}

std::vector<double> ShardedDomain::shard_loads() const {
  return lb::stripe_loads(domain_.column_weights(), boundaries_);
}

void ShardedDomain::decide_and_apply_shard(
    std::size_t shard, std::span<support::Rng> rngs,
    std::vector<std::vector<std::int32_t>>& erode) {
  for (const std::size_t i : shard_discs_[shard]) {
    erode[i] = decide_disc(domain_.discs_[i], rngs[i]);
    apply_disc(domain_.discs_[i], erode[i]);
  }
}

std::int64_t ShardedDomain::step(support::Rng& rng) {
  support::ThreadPool serial(1);
  return step(rng, serial);
}

std::int64_t ShardedDomain::step(support::Rng& rng,
                                 support::ThreadPool& pool) {
  const std::size_t n = domain_.disc_count();

  // Phase 1 — split the master stream, serially, in disc order: disc i
  // decides from a snapshot of the master positioned exactly where the
  // serial stepper would have it, i.e. after the Σ_{j<i} frontier_j draws of
  // the preceding discs. Burning with a fixed probability consumes the same
  // engine state as the data-dependent draws would (Bernoulli consumption is
  // p-independent), so the master leaves this loop in the serial stepper's
  // post-step state.
  std::vector<support::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(rng);
    const std::int64_t draws = domain_.disc_frontier_size(i);
    for (std::int64_t d = 0; d < draws; ++d) (void)rng.bernoulli(0.5);
  }

  // Phase 2 — decide + apply, one task per shard. Disc state is disc-local
  // and every disc owns its positioned snapshot, so shards are independent.
  std::vector<std::vector<std::int32_t>> erode(n);
  pool.parallel_for(shard_discs_.size(), [&](std::size_t shard) {
    decide_and_apply_shard(shard, rngs, erode);
  });

  // Phase 3 — commit the shared per-column accounting serially, in disc
  // order, for bit-identical floating-point sums.
  std::int64_t eroded = 0;
  for (std::size_t i = 0; i < n; ++i)
    eroded += domain_.commit_disc(domain_.discs_[i], erode[i]);
  domain_.eroded_ += eroded;
  return eroded;
}

std::int64_t ShardedDomain::step_counter(std::uint64_t seed,
                                         std::int64_t iteration,
                                         support::ThreadPool* pool) {
  return domain_.step_counter(seed, iteration, pool);
}

ReshardResult ShardedDomain::rebalance() {
  const std::vector<double> targets(
      static_cast<std::size_t>(shard_count()),
      1.0 / static_cast<double>(shard_count()));
  const lb::StripeBoundaries before = boundaries_;
  const std::vector<std::int64_t> owners = disc_shard_;

  boundaries_ = partitioner_->partition(domain_.column_weights(), targets);
  assign_discs();

  ReshardResult result;
  result.boundaries = boundaries_;
  result.migration =
      lb::migration_volume(before, boundaries_, domain_.column_bytes());
  for (std::size_t i = 0; i < disc_shard_.size(); ++i)
    if (disc_shard_[i] != owners[i]) ++result.discs_moved;
  return result;
}

}  // namespace ulba::erosion
