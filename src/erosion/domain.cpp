#include "erosion/domain.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"

namespace ulba::erosion {

void DomainConfig::validate() const {
  ULBA_REQUIRE(columns >= 1 && rows >= 1, "domain must be non-empty");
  ULBA_REQUIRE(flop_per_cell > 0.0, "cell cost must be positive");
  ULBA_REQUIRE(bytes_per_cell > 0.0, "cell size must be positive");
  ULBA_REQUIRE(refinement_factor >= 1.0,
               "refinement must not shrink workload");
  for (const RockDisc& d : discs) {
    ULBA_REQUIRE(d.radius >= 1, "disc radius must be at least one cell");
    ULBA_REQUIRE(d.erosion_prob >= 0.0 && d.erosion_prob <= 1.0,
                 "erosion probability out of [0, 1]");
    // Discs must sit strictly inside the domain (with a one-cell fluid
    // margin) so frontier logic never has to consider domain borders.
    ULBA_REQUIRE(d.cx - d.radius >= 1 && d.cx + d.radius < columns - 1 &&
                     d.cy - d.radius >= 1 && d.cy + d.radius < rows - 1,
                 "disc must lie strictly inside the domain");
  }
  // Pairwise disjoint with a one-cell margin, so discs never share frontiers.
  for (std::size_t i = 0; i < discs.size(); ++i) {
    for (std::size_t j = i + 1; j < discs.size(); ++j) {
      const double dx = static_cast<double>(discs[i].cx - discs[j].cx);
      const double dy = static_cast<double>(discs[i].cy - discs[j].cy);
      const double dist = std::hypot(dx, dy);
      ULBA_REQUIRE(dist >= static_cast<double>(discs[i].radius +
                                               discs[j].radius + 2),
                   "discs must not touch each other");
    }
  }
}

ErosionDomain::ErosionDomain(DomainConfig config) : config_(std::move(config)) {
  config_.validate();
  // All-fluid baseline…
  weights_.assign(static_cast<std::size_t>(config_.columns),
                  config_.flop_per_cell * static_cast<double>(config_.rows));
  // …minus the (cost-free) rock cells of each disc.
  discs_.reserve(config_.discs.size());
  for (const RockDisc& d : config_.discs) build_disc(d);
  total_ = 0.0;
  for (double w : weights_) total_ += w;
}

ErosionDomain::Cell ErosionDomain::DiscState::at(std::int64_t lx,
                                                 std::int64_t ly) const {
  if (lx < 0 || ly < 0 || lx >= side || ly >= side) return Cell::kOutside;
  return cells[static_cast<std::size_t>(ly * side + lx)];
}

void ErosionDomain::build_disc(const RockDisc& disc) {
  DiscState d;
  d.side = 2 * disc.radius + 1;
  d.x0 = disc.cx - disc.radius;
  d.y0 = disc.cy - disc.radius;
  d.erosion_prob = disc.erosion_prob;
  d.cells.assign(static_cast<std::size_t>(d.side * d.side), Cell::kOutside);

  const auto r2 = static_cast<double>(disc.radius) *
                  static_cast<double>(disc.radius);
  for (std::int64_t ly = 0; ly < d.side; ++ly) {
    for (std::int64_t lx = 0; lx < d.side; ++lx) {
      const auto dx = static_cast<double>(lx - disc.radius);
      const auto dy = static_cast<double>(ly - disc.radius);
      if (dx * dx + dy * dy <= r2) {
        d.cells[static_cast<std::size_t>(ly * d.side + lx)] =
            Cell::kRockInterior;
        ++d.rock_remaining;
        weights_[static_cast<std::size_t>(d.x0 + lx)] -= config_.flop_per_cell;
      }
    }
  }

  // Promote boundary rock (any non-rock 4-neighbour) to frontier.
  for (std::int64_t ly = 0; ly < d.side; ++ly) {
    for (std::int64_t lx = 0; lx < d.side; ++lx) {
      const auto idx = static_cast<std::size_t>(ly * d.side + lx);
      if (d.cells[idx] != Cell::kRockInterior) continue;
      const bool touches_fluid =
          d.at(lx - 1, ly) == Cell::kOutside ||
          d.at(lx + 1, ly) == Cell::kOutside ||
          d.at(lx, ly - 1) == Cell::kOutside ||
          d.at(lx, ly + 1) == Cell::kOutside;
      if (touches_fluid) {
        d.cells[idx] = Cell::kRockFrontier;
        d.frontier.push_back(static_cast<std::int32_t>(idx));
      }
    }
  }

  rock_remaining_ += d.rock_remaining;
  discs_.push_back(std::move(d));
}

std::int64_t ErosionDomain::step(support::Rng& rng) {
  std::int64_t eroded = 0;
  for (DiscState& d : discs_) {
    const auto to_erode = decide_disc(d, rng);
    apply_disc(d, to_erode);
    eroded += commit_disc(d, to_erode);
  }
  eroded_ += eroded;
  return eroded;
}

std::int64_t ErosionDomain::step(support::Rng& rng,
                                 support::ThreadPool& pool) {
  // Split per-disc substreams off the master stream, serially and in disc
  // order, so the draw sequence is independent of how the pool schedules the
  // disc tasks below.
  std::vector<support::Rng> streams;
  streams.reserve(discs_.size());
  for (std::size_t i = 0; i < discs_.size(); ++i)
    streams.emplace_back(support::Rng(rng()));

  std::vector<std::vector<std::int32_t>> to_erode(discs_.size());
  pool.parallel_for(discs_.size(), [&](std::size_t i) {
    to_erode[i] = decide_disc(discs_[i], streams[i]);
    apply_disc(discs_[i], to_erode[i]);
  });

  // Shared accounting (weights_, total_) commits serially in disc order so
  // floating-point sums are bit-identical for every pool size.
  std::int64_t eroded = 0;
  for (std::size_t i = 0; i < discs_.size(); ++i)
    eroded += commit_disc(discs_[i], to_erode[i]);
  eroded_ += eroded;
  return eroded;
}

std::vector<std::int32_t> ErosionDomain::decide_disc(const DiscState& d,
                                                     support::Rng& rng) const {
  // Decide against the pre-step state (synchronous CA semantics). "Each
  // fluid cell computes a probabilistic erosion of neighboring rock cells":
  // a rock cell takes one erosion trial per adjacent fluid face. A refined
  // neighbour consists of four finer cells, two of which border this rock
  // cell — refinement therefore doubles that face's trials, which is
  // precisely the paper's "creating even more imbalance" acceleration.
  std::vector<std::int32_t> to_erode;
  if (d.frontier.empty()) return to_erode;
  const auto fluid_faces = [&](std::int64_t lx, std::int64_t ly) -> int {
    switch (d.at(lx, ly)) {
      case Cell::kOutside:
        return 1;
      case Cell::kRefined:
        return 2;
      default:
        return 0;
    }
  };
  for (const std::int32_t idx : d.frontier) {
    const std::int64_t lx = idx % d.side;
    const std::int64_t ly = idx / d.side;
    const int trials = fluid_faces(lx - 1, ly) + fluid_faces(lx + 1, ly) +
                       fluid_faces(lx, ly - 1) + fluid_faces(lx, ly + 1);
    if (trials == 0) continue;  // fully enclosed (cannot happen for
                                // frontier cells, but cheap)
    const double p_eff = 1.0 - std::pow(1.0 - d.erosion_prob, trials);
    if (rng.bernoulli(p_eff)) to_erode.push_back(idx);
  }
  return to_erode;
}

void ErosionDomain::apply_disc(DiscState& d,
                               const std::vector<std::int32_t>& to_erode) {
  if (to_erode.empty()) return;

  // Rock → refined fluid.
  for (const std::int32_t idx : to_erode) {
    d.cells[static_cast<std::size_t>(idx)] = Cell::kRefined;
    --d.rock_remaining;
  }

  // Newly exposed interior rock joins the frontier.
  const auto expose = [&](std::int64_t lx, std::int64_t ly) {
    if (lx < 0 || ly < 0 || lx >= d.side || ly >= d.side) return;
    const auto idx = static_cast<std::size_t>(ly * d.side + lx);
    if (d.cells[idx] == Cell::kRockInterior) {
      d.cells[idx] = Cell::kRockFrontier;
      d.frontier.push_back(static_cast<std::int32_t>(idx));
    }
  };
  for (const std::int32_t idx : to_erode) {
    const std::int64_t lx = idx % d.side;
    const std::int64_t ly = idx / d.side;
    expose(lx - 1, ly);
    expose(lx + 1, ly);
    expose(lx, ly - 1);
    expose(lx, ly + 1);
  }

  // Compact the frontier list: drop everything that is no longer frontier.
  std::erase_if(d.frontier, [&](std::int32_t idx) {
    return d.cells[static_cast<std::size_t>(idx)] != Cell::kRockFrontier;
  });
}

std::int64_t ErosionDomain::commit_disc(
    const DiscState& d, const std::vector<std::int32_t>& to_erode) {
  const double gained = config_.refinement_factor * config_.flop_per_cell;
  for (const std::int32_t idx : to_erode) {
    const std::int64_t lx = idx % d.side;
    weights_[static_cast<std::size_t>(d.x0 + lx)] += gained;
    total_ += gained;
    --rock_remaining_;
  }
  return static_cast<std::int64_t>(to_erode.size());
}

std::vector<double> ErosionDomain::column_bytes() const {
  // Data volume is proportional to workload: both count
  // (plain fluid + refinement_factor · refined) cells.
  const double scale = config_.bytes_per_cell / config_.flop_per_cell;
  std::vector<double> bytes(weights_.size());
  for (std::size_t x = 0; x < weights_.size(); ++x)
    bytes[x] = weights_[x] * scale;
  return bytes;
}

std::int64_t ErosionDomain::frontier_size() const noexcept {
  std::int64_t n = 0;
  for (const DiscState& d : discs_)
    n += static_cast<std::int64_t>(d.frontier.size());
  return n;
}

std::int64_t ErosionDomain::disc_rock_remaining(std::size_t disc) const {
  ULBA_REQUIRE(disc < discs_.size(), "disc index out of range");
  return discs_[disc].rock_remaining;
}

std::int64_t ErosionDomain::disc_frontier_size(std::size_t disc) const {
  ULBA_REQUIRE(disc < discs_.size(), "disc index out of range");
  return static_cast<std::int64_t>(discs_[disc].frontier.size());
}

}  // namespace ulba::erosion
