#include "erosion/domain.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/require.hpp"

namespace ulba::erosion {

void DomainConfig::validate() const {
  ULBA_REQUIRE(columns >= 1 && rows >= 1, "domain must be non-empty");
  ULBA_REQUIRE(flop_per_cell > 0.0, "cell cost must be positive");
  ULBA_REQUIRE(bytes_per_cell > 0.0, "cell size must be positive");
  ULBA_REQUIRE(refinement_factor >= 1.0,
               "refinement must not shrink workload");
  for (const RockDisc& d : discs) {
    ULBA_REQUIRE(d.radius >= 1, "disc radius must be at least one cell");
    ULBA_REQUIRE(d.erosion_prob >= 0.0 && d.erosion_prob <= 1.0,
                 "erosion probability out of [0, 1]");
    // Discs must sit strictly inside the domain (with a one-cell fluid
    // margin) so frontier logic never has to consider domain borders.
    ULBA_REQUIRE(d.cx - d.radius >= 1 && d.cx + d.radius < columns - 1 &&
                     d.cy - d.radius >= 1 && d.cy + d.radius < rows - 1,
                 "disc must lie strictly inside the domain");
  }
  // Pairwise disjoint with a one-cell margin, so discs never share frontiers.
  for (std::size_t i = 0; i < discs.size(); ++i) {
    for (std::size_t j = i + 1; j < discs.size(); ++j) {
      const double dx = static_cast<double>(discs[i].cx - discs[j].cx);
      const double dy = static_cast<double>(discs[i].cy - discs[j].cy);
      const double dist = std::hypot(dx, dy);
      ULBA_REQUIRE(dist >= static_cast<double>(discs[i].radius +
                                               discs[j].radius + 2),
                   "discs must not touch each other");
    }
  }
}

ErosionDomain::ErosionDomain(DomainConfig config) : config_(std::move(config)) {
  config_.validate();
  // All-fluid baseline…
  weights_.assign(static_cast<std::size_t>(config_.columns),
                  config_.flop_per_cell * static_cast<double>(config_.rows));
  // …minus the (cost-free) rock cells of each disc.
  discs_.reserve(config_.discs.size());
  for (const RockDisc& d : config_.discs) build_disc(d);
  total_ = 0.0;
  for (double w : weights_) total_ += w;
}

void ErosionDomain::build_disc(const RockDisc& disc) {
  DiscState d = build_disc_state(disc);
  // Rock cells are cost-free: subtract them from the all-fluid baseline,
  // one cell at a time (the same per-cell accounting commit_disc reverses).
  for (std::int64_t ly = 0; ly < d.side; ++ly)
    for (std::int64_t lx = 0; lx < d.side; ++lx)
      if (d.at(lx, ly) != Cell::kOutside)
        weights_[static_cast<std::size_t>(d.x0 + lx)] -= config_.flop_per_cell;
  rock_remaining_ += d.rock_remaining;
  discs_.push_back(std::move(d));
}

std::int64_t ErosionDomain::step(support::Rng& rng) {
  std::int64_t eroded = 0;
  for (DiscState& d : discs_) {
    const auto to_erode = decide_disc(d, rng);
    apply_disc(d, to_erode);
    eroded += commit_disc(d, to_erode);
  }
  eroded_ += eroded;
  return eroded;
}

std::int64_t ErosionDomain::step(support::Rng& rng,
                                 support::ThreadPool& pool) {
  // Split per-disc substreams off the master stream, serially and in disc
  // order, so the draw sequence is independent of how the pool schedules the
  // disc tasks below.
  std::vector<support::Rng> streams;
  streams.reserve(discs_.size());
  for (std::size_t i = 0; i < discs_.size(); ++i)
    streams.emplace_back(support::Rng(rng()));

  std::vector<std::vector<std::int32_t>> to_erode(discs_.size());
  pool.parallel_for(discs_.size(), [&](std::size_t i) {
    to_erode[i] = decide_disc(discs_[i], streams[i]);
    apply_disc(discs_[i], to_erode[i]);
  });

  // Shared accounting (weights_, total_) commits serially in disc order so
  // floating-point sums are bit-identical for every pool size.
  std::int64_t eroded = 0;
  for (std::size_t i = 0; i < discs_.size(); ++i)
    eroded += commit_disc(discs_[i], to_erode[i]);
  eroded_ += eroded;
  return eroded;
}

std::int64_t ErosionDomain::step_counter(std::uint64_t seed,
                                         std::int64_t iteration,
                                         support::ThreadPool* pool) {
  if (counter_ids_.size() != discs_.size()) {
    counter_ids_.resize(discs_.size());
    std::iota(counter_ids_.begin(), counter_ids_.end(), std::size_t{0});
  }
  (void)counter_decide_apply(discs_, counter_ids_, seed, iteration, pool,
                             counter_ws_);
  // The commit is order-independent (each eroded cell adds the same
  // constant to a column accumulator), so the disc-order loop below is a
  // convention, not a serialization requirement — see counter_kernel.hpp.
  std::int64_t eroded = 0;
  for (std::size_t i = 0; i < discs_.size(); ++i)
    eroded += commit_disc(discs_[i], counter_ws_.erode[i]);
  eroded_ += eroded;
  return eroded;
}

std::int64_t ErosionDomain::commit_disc(
    const DiscState& d, const std::vector<std::int32_t>& to_erode) {
  const double gained = config_.refinement_factor * config_.flop_per_cell;
  for (const std::int32_t idx : to_erode) {
    const std::int64_t lx = idx % d.side;
    weights_[static_cast<std::size_t>(d.x0 + lx)] += gained;
    total_ += gained;
    --rock_remaining_;
  }
  return static_cast<std::int64_t>(to_erode.size());
}

std::vector<double> ErosionDomain::column_bytes() const {
  // Data volume is proportional to workload: both count
  // (plain fluid + refinement_factor · refined) cells.
  const double scale = config_.bytes_per_cell / config_.flop_per_cell;
  std::vector<double> bytes(weights_.size());
  for (std::size_t x = 0; x < weights_.size(); ++x)
    bytes[x] = weights_[x] * scale;
  return bytes;
}

std::int64_t ErosionDomain::frontier_size() const noexcept {
  std::int64_t n = 0;
  for (const DiscState& d : discs_)
    n += static_cast<std::int64_t>(d.frontier.size());
  return n;
}

std::int64_t ErosionDomain::disc_rock_remaining(std::size_t disc) const {
  ULBA_REQUIRE(disc < discs_.size(), "disc index out of range");
  return discs_[disc].rock_remaining;
}

std::int64_t ErosionDomain::disc_frontier_size(std::size_t disc) const {
  ULBA_REQUIRE(disc < discs_.size(), "disc index out of range");
  return static_cast<std::int64_t>(discs_[disc].frontier.size());
}

}  // namespace ulba::erosion
