// The erosion application on REAL threads — the cross-substrate validation
// of DESIGN.md §6: the same workload, monitoring, detection, trigger, and
// Algorithm-2 machinery as erosion/app.hpp, but executed SPMD on the
// thread-backed message-passing runtime with genuinely measured wall-clock
// iteration times.
//
// Decomposition: stripes own columns (compute + migration), ranks own the
// *discs* whose centers fall in their initial stripe. Disc erosion is local
// to its owner (discs are pairwise disjoint by construction), so the only
// communication the dynamics need is the per-iteration exchange of sparse
// column-weight deltas — done with an allgather-style exchange — plus the
// usual WIR gossip, the allreduced iteration time for the trigger, and the
// centralized LB collectives.
//
// The per-cell cost is paid by *burning CPU*: each rank busy-loops
// proportionally to the workload of its stripe, so iteration times, WIRs,
// degradation, and LB costs are all real measurements, not models.
#pragma once

#include <cstdint>
#include <vector>

#include "erosion/app.hpp"

namespace ulba::erosion {

struct ThreadedConfig {
  std::int64_t pe_count = 8;
  std::int64_t columns_per_pe = 96;
  std::int64_t rows = 96;
  std::int64_t rock_radius = 24;
  std::int64_t strong_rock_count = 1;
  double weak_probability = 0.02;
  double strong_probability = 0.4;
  std::int64_t iterations = 60;
  Method method = Method::kStandard;
  double alpha = 0.4;
  double zscore_threshold = 3.0;
  double wir_smoothing = 0.5;
  std::uint64_t seed = 1;
  /// Busy-loop multiply-adds per unit of cell workload — the knob that sets
  /// the real per-iteration duration.
  double ns_scale = 4.0;
  /// Real CPU cost charged per migrated column (models pack/unpack).
  double migration_scale = 8.0;

  void validate() const;
  [[nodiscard]] std::int64_t columns() const noexcept {
    return pe_count * columns_per_pe;
  }
};

struct ThreadedRunResult {
  double wall_seconds = 0.0;         ///< measured on rank 0
  std::int64_t lb_count = 0;
  std::vector<std::int64_t> lb_iterations;
  std::int64_t eroded_cells = 0;     ///< summed over all discs at the end
  double mean_utilization = 0.0;     ///< avg over iterations of mean/max time
  std::vector<double> iteration_seconds;  ///< allreduced max per iteration
};

/// Run the threaded erosion application. Spawns `pe_count` OS threads;
/// deterministic erosion per seed (timings are real and thus noisy).
[[nodiscard]] ThreadedRunResult run_threaded(const ThreadedConfig& config);

}  // namespace ulba::erosion
