#include "erosion/threaded_app.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "core/detector.hpp"
#include "core/policy.hpp"
#include "core/trigger.hpp"
#include "core/wir_database.hpp"
#include "lb/stripe_partitioner.hpp"
#include "runtime/spmd.hpp"
#include "support/burn.hpp"
#include "support/require.hpp"

namespace ulba::erosion {

namespace {

using support::burn;
using support::seconds_since;

using Clock = std::chrono::steady_clock;

/// Sparse column-weight delta produced by one iteration of disc erosion.
struct Delta {
  std::int64_t column = 0;
  double weight = 0.0;
};

// Mailbox channels of the measured-time SPMD loop.
constexpr int kTagInitWeights = 2;   ///< one-time initial column footprints
constexpr int kTagWeightDeltas = 3;  ///< per-iteration sparse weight deltas
constexpr int kTagGossipRound = 4;   ///< systolic WIR database exchange

std::vector<double> pack_db(const core::WirDatabase& db) {
  std::vector<double> out;
  out.reserve(2 * static_cast<std::size_t>(db.pe_count()));
  for (std::int64_t pe = 0; pe < db.pe_count(); ++pe) {
    out.push_back(db.entry(pe).wir);
    out.push_back(static_cast<double>(db.entry(pe).iteration));
  }
  return out;
}

void merge_packed(core::WirDatabase& db, const std::vector<double>& w) {
  for (std::int64_t pe = 0; pe < db.pe_count(); ++pe) {
    const auto stamp =
        static_cast<std::int64_t>(w[2 * static_cast<std::size_t>(pe) + 1]);
    if (stamp >= 0) db.update(pe, w[2 * static_cast<std::size_t>(pe)], stamp);
  }
}

}  // namespace

void ThreadedConfig::validate() const {
  ULBA_REQUIRE(pe_count >= 2, "need at least two ranks");
  ULBA_REQUIRE(columns_per_pe >= 4 && rows >= 4, "domain too small");
  ULBA_REQUIRE(rock_radius >= 1 && 2 * rock_radius + 2 < rows &&
                   2 * rock_radius + 2 < columns_per_pe,
               "rocks must fit one per stripe");
  ULBA_REQUIRE(strong_rock_count >= 0 && strong_rock_count <= pe_count,
               "strong rocks must number in [0, P]");
  ULBA_REQUIRE(iterations >= 1, "need at least one iteration");
  ULBA_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  ULBA_REQUIRE(ns_scale > 0.0 && migration_scale >= 0.0,
               "cost scales must be positive");
}

ThreadedRunResult run_threaded(const ThreadedConfig& config) {
  config.validate();
  const auto P = static_cast<int>(config.pe_count);
  ThreadedRunResult result;
  result.iteration_seconds.assign(
      static_cast<std::size_t>(config.iterations), 0.0);

  // Strong-rock placement — same scheme as the BSP app.
  support::Rng placement = support::Rng(config.seed).fork(0);
  const auto strong = placement.sample_without_replacement(
      static_cast<std::size_t>(config.pe_count),
      static_cast<std::size_t>(config.strong_rock_count));
  std::vector<bool> is_strong(static_cast<std::size_t>(config.pe_count));
  for (std::size_t s : strong) is_strong[s] = true;

  std::vector<std::int64_t> per_rank_eroded(static_cast<std::size_t>(P), 0);
  double util_sum = 0.0;

  runtime::spmd_run(P, [&](runtime::Comm& comm) {
    const int rank = comm.rank();

    // --- my disc: one per rank, centered in my initial stripe, simulated
    // locally with a deterministic per-disc stream.
    DomainConfig mine;
    mine.columns = config.columns();
    mine.rows = config.rows;
    RockDisc disc;
    disc.cx = rank * config.columns_per_pe + config.columns_per_pe / 2;
    disc.cy = config.rows / 2;
    disc.radius = config.rock_radius;
    disc.erosion_prob = is_strong[static_cast<std::size_t>(rank)]
                            ? config.strong_probability
                            : config.weak_probability;
    mine.discs = {disc};
    ErosionDomain my_domain(mine);
    support::Rng dyn_rng =
        support::Rng(config.seed).fork(100 + static_cast<std::uint64_t>(rank));

    // --- replicated column weights, kept in sync by exchanging deltas.
    std::vector<double> weights(static_cast<std::size_t>(config.columns()),
                                0.0);
    {
      // Initialize from every rank's disc footprint: exchange the initial
      // non-fluid columns once (cheap: one allgather-style round).
      std::vector<Delta> init;
      const auto my_w = my_domain.column_weights();
      const double fluid = mine.flop_per_cell * static_cast<double>(mine.rows);
      for (std::int64_t x = 0; x < config.columns(); ++x) {
        weights[static_cast<std::size_t>(x)] = fluid;
        if (my_w[static_cast<std::size_t>(x)] != fluid)
          init.push_back({x, my_w[static_cast<std::size_t>(x)] - fluid});
      }
      for (int r = 0; r < P; ++r)
        if (r != rank) comm.send_span<Delta>(r, kTagInitWeights, init);
      for (int r = 0; r < P; ++r) {
        if (r == rank) continue;
        for (const Delta& d : comm.recv_vector<Delta>(r, kTagInitWeights))
          weights[static_cast<std::size_t>(d.column)] += d.weight;
      }
    }

    lb::StripeBoundaries bounds =
        lb::even_partition(config.columns(), config.pe_count);
    core::WirDatabase db(config.pe_count);
    const core::OverloadDetector detector(config.zscore_threshold);
    core::AdaptiveTrigger trigger;
    core::LbCostEstimator lb_cost(1e-4);
    double prev_owned = 0.0;
    bool wir_valid = false;
    double smoothed_wir = 0.0;
    const auto t0 = Clock::now();

    for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
      // --- compute my stripe (real burn ∝ owned workload)
      double owned = 0.0;
      for (std::int64_t x = bounds[static_cast<std::size_t>(rank)];
           x < bounds[static_cast<std::size_t>(rank) + 1]; ++x)
        owned += weights[static_cast<std::size_t>(x)];
      const auto it0 = Clock::now();
      burn(owned, config.ns_scale);
      const double my_seconds = seconds_since(it0);

      // --- erode my disc; exchange the sparse weight deltas
      std::vector<Delta> deltas;
      {
        const std::vector<double> before(my_domain.column_weights().begin(),
                                         my_domain.column_weights().end());
        (void)my_domain.step(dyn_rng);
        const auto after = my_domain.column_weights();
        for (std::int64_t x = disc.cx - disc.radius;
             x <= disc.cx + disc.radius; ++x) {
          const auto xi = static_cast<std::size_t>(x);
          if (after[xi] != before[xi])
            deltas.push_back({x, after[xi] - before[xi]});
        }
      }
      for (int r = 0; r < P; ++r)
        if (r != rank) comm.send_span<Delta>(r, kTagWeightDeltas, deltas);
      for (const Delta& d : deltas)
        weights[static_cast<std::size_t>(d.column)] += d.weight;
      for (int r = 0; r < P; ++r) {
        if (r == rank) continue;
        for (const Delta& d : comm.recv_vector<Delta>(r, kTagWeightDeltas))
          weights[static_cast<std::size_t>(d.column)] += d.weight;
      }

      // --- WIR monitoring + systolic gossip round (real messages)
      if (wir_valid) {
        const double raw = std::max(0.0, owned - prev_owned);
        smoothed_wir = config.wir_smoothing * raw +
                       (1.0 - config.wir_smoothing) * smoothed_wir;
        db.update(rank, smoothed_wir, iter);
      }
      prev_owned = owned;
      wir_valid = true;
      const int shift = 1 + static_cast<int>(iter) % (P - 1);
      comm.send_span<double>((rank + shift) % P, kTagGossipRound,
                             pack_db(db));
      core::WirDatabase incoming(config.pe_count);
      merge_packed(incoming, comm.recv_vector<double>((rank - shift + P) % P,
                                                      kTagGossipRound));
      (void)db.merge_from(incoming);

      // --- agree on the iteration time; trigger
      const double step_seconds = comm.allreduce(
          my_seconds, [](double a, double b) { return std::max(a, b); });
      const double sum_seconds = comm.allreduce(my_seconds);
      if (rank == 0) {
        result.iteration_seconds[static_cast<std::size_t>(iter)] =
            step_seconds;
        if (step_seconds > 0.0)
          util_sum += sum_seconds / (static_cast<double>(P) * step_seconds);
      }
      trigger.record_iteration(step_seconds);

      if (iter + 1 < config.iterations &&
          trigger.should_balance(lb_cost.average())) {
        const auto lb0 = Clock::now();
        double my_alpha = 0.0;
        if (config.method == Method::kUlba &&
            detector.is_overloading(db.entry(rank).wir, db.wirs()))
          my_alpha = config.alpha;
        const auto alphas = comm.gather(my_alpha, 0);
        std::vector<std::int64_t> new_bounds;
        if (rank == 0) {
          const double total =
              std::accumulate(weights.begin(), weights.end(), 0.0);
          const auto assignment = core::compute_lb_weights(alphas, total);
          new_bounds =
              lb::partition_by_weight(weights, assignment.fractions);
          result.lb_iterations.push_back(iter);
          ++result.lb_count;
        }
        comm.broadcast_vector(new_bounds, 0);
        // Real migration cost: burn ∝ columns entering/leaving my stripe.
        const std::int64_t moved =
            std::llabs(new_bounds[static_cast<std::size_t>(rank)] -
                       bounds[static_cast<std::size_t>(rank)]) +
            std::llabs(new_bounds[static_cast<std::size_t>(rank) + 1] -
                       bounds[static_cast<std::size_t>(rank) + 1]);
        burn(static_cast<double>(moved * config.rows) * 52.0,
             config.ns_scale * config.migration_scale);
        bounds = new_bounds;
        wir_valid = false;
        trigger.reset();
        comm.barrier();
        lb_cost.observe(comm.allreduce(
            seconds_since(lb0),
            [](double a, double b) { return std::max(a, b); }));
      }
    }

    per_rank_eroded[static_cast<std::size_t>(rank)] = my_domain.eroded_cells();
    if (rank == 0) result.wall_seconds = seconds_since(t0);
  });

  result.eroded_cells = std::accumulate(per_rank_eroded.begin(),
                                        per_rank_eroded.end(),
                                        std::int64_t{0});
  result.mean_utilization =
      util_sum / static_cast<double>(config.iterations);
  return result;
}

}  // namespace ulba::erosion
