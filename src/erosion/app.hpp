// The full erosion application — paper §IV-B — tying every subsystem
// together on the virtual-time BSP machine:
//
//   erosion dynamics (this module)  → per-column workloads
//   stripe partitioner + Algorithm 2 (ulba::lb, ulba::core) → decomposition
//   WIR monitoring + gossip + z-score detector (ulba::core) → who overloads
//   Zhai-style degradation trigger (ulba::core)             → when to balance
//   α-β comm model (ulba::bsp)                              → LB cost
//
// Both methods of the paper's Figure 4 run through this one driver:
//   * Method::kStandard — the standard LB method with the adaptive trigger of
//     Zhai et al. (all-zero α: even targets);
//   * Method::kUlba     — ULBA with a user-defined α (overloading PEs are
//     underloaded per Algorithm 2).
//
// Both methods see bit-identical erosion dynamics for a given seed (the
// dynamics stream is independent of LB decisions), so time differences are
// attributable to load balancing alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bsp/comm_model.hpp"
#include "erosion/domain.hpp"

namespace ulba::erosion {

enum class Method {
  kStandard,  ///< even redistribution (Zhai-adaptive trigger), α ≡ 0
  kUlba,      ///< anticipatory underloading with the configured α
};

/// How ULBA picks the α applied at each LB step (E-X4, the paper's §V
/// future-work item of adjusting α during execution). All runtime policies
/// feed on the gossip-estimated WIR databases — the same possibly-stale
/// knowledge a real decentralized deployment would have.
enum class AlphaPolicy {
  /// α = AppConfig::alpha at every step (the paper's experiments).
  kFixed,
  /// Shrink α as the detected overloading fraction grows — the Eq. (11)
  /// overhead is ∝ αN/(P−N):  α_eff = α·max(0, 1 − 2·N̂/P), per each PE's
  /// own database view; vanishes at the 50 % fallback boundary.
  kGossipFraction,
  /// Per-interval grid search over the analytic model: the main PE estimates
  /// (N̂, â, m̂) from its WIR database, plugs them into ModelParams together
  /// with the live (Wtot, C, remaining γ), and picks the α ∈ {0, 0.1, …, 1}
  /// whose σ⁺ schedule minimizes the predicted remaining time. The grid
  /// mirrors opt::default_alpha_grid() — the runtime half of the exact
  /// dynamic-α DP (opt::optimal_alpha_schedule).
  kGossipModel,
};

/// Parse "fixed" | "fraction" | "model" (the `--alpha-policy` vocabulary);
/// throws std::invalid_argument on anything else.
[[nodiscard]] AlphaPolicy alpha_policy_from_name(const std::string& name);
[[nodiscard]] std::string alpha_policy_name(AlphaPolicy policy);

/// Which random-number discipline steps the erosion dynamics. The two kinds
/// are DIFFERENT (equally deterministic, equally golden-locked) streams —
/// a run's trajectory is comparable only within one kind.
enum class RngKind {
  /// Sequential mt19937_64 streams split by fork-in-disc-order — the
  /// historical trajectories (shared stream at threads == 1, per-disc
  /// substreams above; sharded/distributed reproduce the shared stream).
  kFork,
  /// Counter-based Philox draws addressed by (disc, iteration, cell)
  /// through support::CounterRng: decide AND commit run fully parallel, and
  /// ONE trajectory serves every (threads × shards × ranks) combination.
  kCounter,
};

/// Parse "fork" | "counter" (the `--rng` vocabulary); throws
/// std::invalid_argument on anything else.
[[nodiscard]] RngKind rng_kind_from_name(const std::string& name);
[[nodiscard]] std::string rng_kind_name(RngKind kind);

/// When to invoke the load balancer (the ablation knob of E-X2; the paper
/// always uses the adaptive trigger).
enum class TriggerMode {
  kAdaptive,  ///< Zhai-style degradation accounting (Algorithm 1)
  kPeriodic,  ///< every `lb_period` iterations (the §II strawman)
  kNever,     ///< static decomposition: no LB at all
};

/// Which clock feeds the LB trigger (the measured-signal control loop).
enum class TriggerSource {
  /// Verdicts from the virtual-time LbController — the historical contract:
  /// bit-identical RunResult across threads/shards/ranks/mt.
  kModel,
  /// Verdicts from real steady_clock signals gathered on the SPMD runtime
  /// (requires ranks > 1 with measure_time): the per-iteration burn maxima
  /// feed a measured AdaptiveTrigger and the observed LB-step costs feed a
  /// measured LbCostEstimator, HemoCell-style (gather timings, decide
  /// centrally, broadcast the verdict). The LB schedule becomes
  /// wall-clock-dependent — structural invariants hold, bytes do not.
  kMeasured,
};

/// Parse "model" | "measured" (the `--trigger-source` vocabulary); throws
/// std::invalid_argument on anything else.
[[nodiscard]] TriggerSource trigger_source_from_name(const std::string& name);
[[nodiscard]] std::string trigger_source_name(TriggerSource source);

/// Which measured signal a measured-source trigger fires on.
enum class TriggerCriterion {
  /// Zhai-style degradation accounting on the measured iteration maxima,
  /// thresholded at the measured average LB-step cost (Algorithm 1 run on
  /// the real clock).
  kDegradation,
  /// The timing-based fractional load imbalance (max − avg)/avg over the
  /// gathered per-rank burn times, thresholded at `fli_threshold` — the
  /// classic reactive imbalance test (cf. Mohammed et al.'s two-level DLB).
  kFli,
};

/// Parse "degradation" | "fli" (the `--trigger-criterion` vocabulary);
/// throws std::invalid_argument on anything else.
[[nodiscard]] TriggerCriterion trigger_criterion_from_name(
    const std::string& name);
[[nodiscard]] std::string trigger_criterion_name(TriggerCriterion criterion);

struct AppConfig {
  std::int64_t pe_count = 32;
  std::int64_t columns_per_pe = 1000;  ///< paper: 1000 (1 M cells/PE)
  std::int64_t rows = 1000;            ///< paper: 1000
  std::int64_t rock_radius = 250;      ///< paper: 250
  std::int64_t strong_rock_count = 1;  ///< paper sweeps 1–3
  double weak_probability = 0.02;      ///< paper: 0.02
  double strong_probability = 0.4;     ///< paper: 0.4
  double flop_per_cell = 52.0;         ///< [14]: 52–1165 FLOP per cell
  double bytes_per_cell = 64.0;
  std::int64_t iterations = 400;
  double flops = 1e9;  ///< PE speed ω
  Method method = Method::kStandard;
  double alpha = 0.4;  ///< paper's Figure-4 value
  double zscore_threshold = 3.0;
  std::int64_t gossip_fanout = 2;
  double wir_smoothing = 0.5;  ///< EMA factor on raw per-iteration WIR
  /// Replace epidemic WIR dissemination with a zero-cost instant broadcast:
  /// every database is perfectly fresh each iteration and no gossip traffic
  /// is charged. The staleness-free reference of the gossip ablation.
  bool oracle_wir = false;
  bsp::CommModel comm{};
  std::uint64_t seed = 1;
  /// Host threads stepping the erosion dynamics. 1 = the classic serial
  /// stepper (one shared RNG stream, the historical trajectory). Any value
  /// > 1 switches to per-disc RNG substreams stepped on a thread pool —
  /// bit-identical across all thread counts > 1, but a different (equally
  /// deterministic) trajectory than the serial stepper. The virtual-time
  /// results are unaffected by the host's real scheduling either way.
  std::int64_t threads = 1;
  /// Add Eq. (11)'s anticipated underloading overhead to the trigger
  /// threshold (ULBA only) — §III-C: "the load balancer is called every time
  /// the degradation … overcomes the average LB cost plus the overhead of
  /// ULBA".
  bool anticipate_overhead_in_trigger = true;

  TriggerMode trigger_mode = TriggerMode::kAdaptive;
  std::int64_t lb_period = 50;  ///< used by TriggerMode::kPeriodic

  /// Cutting algorithm, by lb::make_partitioner name: "greedy" (the paper's
  /// §IV-B stripe technique), "rcb", "optimal" (E-X5), or "stripe" (even
  /// widths). Drives BOTH the centralized LB technique's cuts and — when
  /// `shards` > 1 — the disc-to-shard assignment of the sharded stepper.
  std::string partitioner = "greedy-scan";

  /// Host-side shards stepping the erosion dynamics (erosion::ShardedDomain).
  /// 1 = the unsharded classic paths (serial shared stream, or the per-disc
  /// substream pool when `threads` > 1). K > 1 splits the discs across K
  /// shards cut by `partitioner` and re-shards at every LB step; the
  /// trajectory is bit-identical to the serial shared-stream stepper for
  /// every (K, partitioner, threads) combination.
  std::int64_t shards = 1;

  /// SPMD ranks stepping the erosion dynamics through the message-passing
  /// runtime (erosion::DistributedDomain): each rank owns a contiguous
  /// column stripe plus the discs centered in it — no shared state — and
  /// halo deltas, frontier metadata, and LB-step migrations travel as real
  /// runtime::Mailbox messages. 1 = the in-process steppers (plain, pooled,
  /// or sharded). The trajectory and the final report are bit-identical to
  /// the serial shared-stream stepper for every (ranks, partitioner,
  /// threads) combination; `threads` > 1 gives each rank its own stepping
  /// pool. Mutually exclusive with `shards` > 1.
  std::int64_t ranks = 1;

  /// Per-step exchange protocol of the distributed stepper, by
  /// erosion::exchange_mode_from_name name: "neighbor" (default — halo
  /// deltas travel only to the ranks the partition cut makes halo
  /// neighbors, global counters via one reduction + broadcast) or
  /// "alltoall" (the O(ranks²) reference). The trajectory is bit-identical
  /// either way; only the message count differs.
  std::string exchange = "neighbor";

  /// Decomposition of the distributed stepper (ranks > 1): "stripes" — the
  /// default 1D contiguous column stripes — or "grid", the 2D rows x
  /// columns tile decomposition (erosion::GridOptions): each rank owns one
  /// rectangular tile plus the discs centered in it, and halo deltas flow
  /// to edge AND corner neighbor tiles. The gathered monitoring weights of
  /// a grid run come from a rank-0 monitor fed by integer deltas, so the
  /// whole RunResult trajectory stays bit-identical to the serial run for
  /// both RNG kinds and every grid shape.
  std::string decomp = "stripes";
  /// Grid shape request (decomp == "grid"): 0 = derive that dimension
  /// (both 0 = near-square factorization of `ranks`). A non-factorable
  /// request (grid_rows * grid_cols != ranks) is rejected, never adjusted.
  std::int64_t grid_rows = 0;
  std::int64_t grid_cols = 0;
  /// Grid mode: rebalance by nudging the existing row/column boundaries
  /// with the damped per-dimension tuner (hoomd-blue LoadBalancer style —
  /// inverse-imbalance rescale, movement capped at `tuner_cap` of the
  /// adjacent tile extent per rebalance, at most `tuner_maxiter` refinement
  /// passes, no-op within `tuner_tol`) instead of a fresh partitioner recut.
  bool tuner = false;
  double tuner_cap = 0.05;
  std::int64_t tuner_maxiter = 8;
  double tuner_tol = 1.02;
  /// Phase of the periodic trigger: balance when (iter + 1) % lb_period ==
  /// lb_phase. 0 keeps the historical cadence.
  std::int64_t lb_phase = 0;

  /// Measured-time distributed mode (requires ranks > 1): every rank
  /// additionally burns real CPU proportional to its stripe's workload each
  /// iteration (support::burn at `ns_scale`) and to its migration payload
  /// at each LB step (× `migration_scale`), and the run reports
  /// steady_clock measurements in RunResult::measured — while, under the
  /// default TriggerSource::kModel, the LB verdicts keep coming from the
  /// virtual-time controller, so the dynamics (eroded cells, LB schedule,
  /// the whole virtual RunResult) stay bit-identical to the model-time run
  /// of the same seed.
  bool measure_time = false;
  /// Busy-loop multiply-adds per unit of cell workload (measured mode).
  double ns_scale = 4.0;
  /// Real CPU cost factor per migrated payload byte (measured mode).
  double migration_scale = 8.0;
  /// Multiplicative burn noise of the measured mode, in [0, 1): each rank's
  /// per-iteration burn workload is scaled by 1 + noise·u with u uniform on
  /// [−1, 1), drawn position-addressed from a dedicated CounterRng stream at
  /// (rank, iteration) — deterministic per seed, independent of the
  /// dynamics streams. Models multi-tenant interference; the knob the
  /// anticipation-vs-reactive falsification sweep turns. 0 = no noise.
  double mt_noise = 0.0;
  /// Which clock feeds the LB trigger (see TriggerSource). kMeasured
  /// requires measured mode and the adaptive trigger.
  TriggerSource trigger_source = TriggerSource::kModel;
  /// Which measured signal a kMeasured trigger fires on (see
  /// TriggerCriterion). Ignored under kModel.
  TriggerCriterion trigger_criterion = TriggerCriterion::kDegradation;
  /// Firing threshold of TriggerCriterion::kFli: balance when the measured
  /// fractional load imbalance (max − avg)/avg reaches this value.
  double fli_threshold = 0.25;

  /// E-X4 extension (the paper's future-work item): how ULBA adapts α at
  /// each LB step from the gossip-estimated overloading state. The policy
  /// also feeds the adaptive trigger's Eq. (11) overhead term, so trigger
  /// and LB step agree on the α about to be applied.
  AlphaPolicy alpha_policy = AlphaPolicy::kFixed;

  /// RNG discipline of the erosion dynamics (see RngKind). kFork keeps the
  /// historical golden trajectories; kCounter switches every stepper —
  /// plain, pooled, sharded, distributed — onto the shared counter-kernel
  /// fast path, whose single trajectory is invariant across ALL of
  /// `threads`, `shards`, and `ranks`. The dynamics stay independent of LB
  /// decisions in both kinds.
  RngKind rng_kind = RngKind::kFork;

  void validate() const;

  /// Derived: domain width = pe_count · columns_per_pe.
  [[nodiscard]] std::int64_t columns() const noexcept {
    return pe_count * columns_per_pe;
  }
};

/// Per-iteration trace entry (Figure 4b's raw material).
struct IterationRecord {
  double seconds = 0.0;
  double utilization = 0.0;   ///< mean(load)/max(load) of this iteration
  bool lb_performed = false;  ///< an LB step followed this iteration
  double degradation = 0.0;   ///< trigger accumulator after this iteration
  /// The threshold the adaptive trigger compared `degradation` against this
  /// iteration: average LB cost, plus — for ULBA with
  /// `anticipate_overhead_in_trigger` — the Eq. (11) overhead at the α the
  /// configured AlphaPolicy would apply right now.
  double threshold = 0.0;
};

/// Wall-clock measurements of the measured-time distributed mode
/// (AppConfig::measure_time): everything here comes from steady_clock on
/// the SPMD runtime — iteration maxima, the measured degradation the
/// adaptive trigger would see, and the cost of each real LB step (gather +
/// Algorithm-2 + column/disc migration messages + migration burn). All-zero
/// when measured mode is off. The virtual-time fields of the enclosing
/// RunResult are bit-identical with and without measured mode.
struct MeasuredTimes {
  double wall_seconds = 0.0;       ///< main rank, whole-run steady_clock
  double compute_seconds = 0.0;    ///< Σ iteration_seconds
  double lb_seconds = 0.0;         ///< Σ lb_step_seconds
  double migration_seconds = 0.0;  ///< Σ allreduced-max migration portions
  /// Mean over CONTRIBUTING iterations of Σ/(R·max) — iterations whose max
  /// burn rounded to zero are excluded from numerator AND denominator.
  double utilization = 0.0;
  std::vector<double> iteration_seconds;  ///< allreduced max, per iteration
  std::vector<double> degradation;  ///< measured-trigger trace, per iteration
  /// Timing-based fractional load imbalance (max − avg)/avg over the
  /// gathered per-rank burn times, per iteration (length == iterations) —
  /// the signal `--trigger-criterion fli` fires on.
  std::vector<double> fli;
  std::vector<double> lb_step_seconds;  ///< parallel to lb_iterations
};

struct RunResult {
  double total_seconds = 0.0;    ///< virtual wall clock incl. LB steps
  double compute_seconds = 0.0;  ///< Σ iteration times
  double lb_seconds = 0.0;       ///< Σ LB step costs
  std::int64_t lb_count = 0;
  std::int64_t fallback_count = 0;  ///< ULBA steps demoted by the ≥50 % rule
  double average_utilization = 0.0;  ///< machine-wide busy/(P·elapsed)
  std::int64_t eroded_cells = 0;
  double final_imbalance = 0.0;  ///< max/avg stripe load at the end
  std::vector<IterationRecord> iterations;
  std::vector<std::int64_t> lb_iterations;
  /// α applied at each LB step, from the main PE's database view (parallel
  /// to lb_iterations). config.alpha under AlphaPolicy::kFixed; what the
  /// policy chose otherwise. Always 0 under Method::kStandard.
  std::vector<double> lb_alphas;
  /// Sharded stepping only (shards > 1): discs that changed shard across all
  /// re-shard steps, and the summed migration volume those moves would cost.
  std::int64_t shard_discs_moved = 0;
  double shard_migration_bytes = 0.0;
  /// Distributed stepping only (ranks > 1): discs that changed rank across
  /// all rank-stripe recuts, the summed analytic migration volume of those
  /// recuts, and the real message payload bytes the migrations put on the
  /// wire (column weights + serialized disc states).
  std::int64_t rank_discs_moved = 0;
  double rank_migration_bytes = 0.0;
  double rank_observed_bytes = 0.0;
  /// Distributed stepping only: per-step exchange traffic summed over all
  /// ranks and iterations (halo + reduction/broadcast legs) — the numbers
  /// the "neighbor" and "alltoall" exchange modes are compared on.
  std::int64_t rank_step_messages = 0;
  double rank_step_bytes = 0.0;
  /// Distributed stepping only: the HemoCell-style fractional load
  /// imbalance (max rank load − avg)/avg of the FINAL decomposition, over
  /// per-rank sums of the local (stripe or tile-partial) weights — the
  /// number the damped grid tuner drives down. 0 when perfectly balanced.
  double rank_fractional_imbalance = 0.0;
  /// Grid decomposition with the tuner only: Σ tuner refinement passes over
  /// all rebalances (both dimensions).
  std::int64_t grid_tuner_iterations = 0;
  /// Measured-time distributed mode only (AppConfig::measure_time).
  MeasuredTimes measured;
};

class ErosionApp {
 public:
  explicit ErosionApp(AppConfig config);

  [[nodiscard]] const AppConfig& config() const noexcept { return config_; }

  /// Build the domain this config describes: pe_count discs of the given
  /// radius, centered in each initial stripe, `strong_rock_count` of them
  /// strongly erodible (chosen by the placement stream of `seed`).
  [[nodiscard]] DomainConfig make_domain() const;

  /// Execute the full run. Deterministic for a given config.
  [[nodiscard]] RunResult run() const;

 private:
  AppConfig config_;
};

}  // namespace ulba::erosion
