// Sharded erosion domain — the multi-node scale-up of the erosion workload.
//
// The discs of one ErosionDomain are split across K shards by any pluggable
// lb::Partitioner: the partitioner cuts the per-column workload into K
// stripes (even targets), and a disc belongs to the shard whose stripe holds
// its center column. Shards then step their discs concurrently on a
// support::ThreadPool.
//
// Determinism contract — the load-bearing property the partition-invariance
// suite (tests/test_sharded_erosion.cpp) locks down: a sharded step is
// BIT-IDENTICAL to the serial shared-stream `ErosionDomain::step(rng)`, for
// every (shard count, partitioner, thread count) combination, including the
// master RNG's post-step state. Three disciplines make that possible:
//
//   1. Stream split (serial, disc order). `decide_disc` consumes exactly one
//      Bernoulli draw per frontier cell (every frontier cell has ≥ 1 fluid
//      face, and fluid never reverts to rock — see
//      ErosionDomain::disc_frontier_size). So the master stream position at
//      which disc i starts drawing is known BEFORE any decision is taken:
//      snapshot a copy of the master per disc, then advance the master by
//      frontier-size draws. Bernoulli engine consumption is independent of
//      the success probability, so burning with a fixed p reproduces the
//      exact engine state the serial stepper would reach.
//   2. Decide + apply (parallel over shards). Disc state is disc-local
//      (discs are pairwise disjoint by construction), and each disc draws
//      from its own positioned snapshot — scheduling cannot reorder draws.
//   3. Commit (serial, disc order). The shared per-column FLOP accounting is
//      summed in the serial order, so floating-point results are bit-equal.
//
// Because the trajectory is invariant to the assignment, re-sharding is free
// of simulation drift: `rebalance()` recuts against the CURRENT weights and
// exchanges disc ownership (the boundary workload deltas), reporting the
// migration volume the move would cost on a real machine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "erosion/domain.hpp"
#include "lb/migration.hpp"
#include "lb/partitioners.hpp"
#include "lb/stripe_partitioner.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace ulba::erosion {

/// Outcome of one re-sharding step (the boundary-delta exchange).
struct ReshardResult {
  lb::StripeBoundaries boundaries;  ///< the new shard → column-range map
  std::int64_t discs_moved = 0;     ///< discs that changed shard ownership
  lb::MigrationVolume migration;    ///< bytes the move costs (per shard/max)
};

class ShardedDomain {
 public:
  /// Shard `config`'s discs into `shard_count` stripes cut by `partitioner`
  /// (shared so several domains can reuse one). `shard_count` must lie in
  /// [1, columns]; the initial cut is taken against the initial weights.
  ShardedDomain(DomainConfig config, std::int64_t shard_count,
                std::shared_ptr<const lb::Partitioner> partitioner);

  /// One erosion iteration, shards stepped serially (still in the sharded
  /// decide/commit discipline — bit-identical to the pool overload).
  std::int64_t step(support::Rng& rng);

  /// One erosion iteration, shards stepped across `pool`. Bit-identical to
  /// `ErosionDomain::step(rng)` on an unsharded copy, for every pool size.
  std::int64_t step(support::Rng& rng, support::ThreadPool& pool);

  /// One erosion iteration on the counter-RNG fast path — delegates to
  /// ErosionDomain::step_counter, where draws are position-addressed, so the
  /// shard assignment cannot influence the trajectory AT ALL: bit-identical
  /// to the unsharded counter stepper for every (shard count, partitioner,
  /// pool size) by construction. Sharding remains the ownership/migration
  /// accounting layer (rebalance, shard_loads); stepping parallelism comes
  /// from the kernel's flat chunking instead of per-shard tasks.
  std::int64_t step_counter(std::uint64_t seed, std::int64_t iteration,
                            support::ThreadPool* pool = nullptr);

  /// Recut the shard stripes against the current column weights (even
  /// targets) and exchange disc ownership accordingly. The stepping
  /// trajectory is unaffected — only host-side parallelism and the reported
  /// migration volume change.
  ReshardResult rebalance();

  /// The underlying domain (weights, totals, erosion observers).
  [[nodiscard]] const ErosionDomain& domain() const noexcept {
    return domain_;
  }

  [[nodiscard]] std::int64_t shard_count() const noexcept {
    return static_cast<std::int64_t>(shard_discs_.size());
  }
  [[nodiscard]] const lb::Partitioner& partitioner() const noexcept {
    return *partitioner_;
  }
  /// Current shard → column-range boundaries (size shard_count + 1).
  [[nodiscard]] const lb::StripeBoundaries& boundaries() const noexcept {
    return boundaries_;
  }
  /// Global disc indices owned by `shard`, ascending.
  [[nodiscard]] std::span<const std::size_t> discs_of_shard(
      std::int64_t shard) const;
  /// The shard owning disc `disc`.
  [[nodiscard]] std::int64_t shard_of_disc(std::size_t disc) const;
  /// Summed column weight per shard — the host-side stepping balance.
  [[nodiscard]] std::vector<double> shard_loads() const;

 private:
  /// Recompute shard_discs_/disc_shard_ from boundaries_.
  void assign_discs();
  /// Phase 1+2 for every disc of one shard (snapshots positioned upstream).
  void decide_and_apply_shard(std::size_t shard, std::span<support::Rng> rngs,
                              std::vector<std::vector<std::int32_t>>& erode);

  ErosionDomain domain_;
  std::shared_ptr<const lb::Partitioner> partitioner_;
  lb::StripeBoundaries boundaries_;
  std::vector<std::vector<std::size_t>> shard_discs_;
  std::vector<std::int64_t> disc_shard_;
};

}  // namespace ulba::erosion
