// Disc-local erosion mechanics, factored out of ErosionDomain so every
// stepper — the serial domain, the sharded in-process stepper, and the
// SPMD-distributed stepper — drives ONE implementation of the cellular
// automaton:
//
//   * build_disc_state  — rasterize a RockDisc into its bounding-box cell
//                         grid and initial frontier;
//   * decide_disc       — phase 1 of a step: pick the frontier cells that
//                         erode, against the pre-step state (exactly one
//                         Bernoulli draw per frontier cell — the invariant
//                         every stream-splitting stepper is built on);
//   * apply_disc        — phases 2+3, disc-local: flip cells to refined,
//                         expose interior rock, compact the frontier;
//   * serialize_disc /  — byte-exact migration format, so a disc can change
//     deserialize_disc    owner as one real message between address spaces.
//
// A disc's state is fully self-contained (discs are pairwise disjoint by
// DomainConfig::validate), which is what makes ownership migration a plain
// state transfer: no neighbour stitching is ever needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace ulba::erosion {

struct RockDisc;

/// Cell states of one disc's bounding-box grid.
enum class Cell : std::uint8_t {
  kOutside = 0,       ///< inside the bounding box but not rock (fluid)
  kRockInterior = 1,  ///< rock with no fluid contact yet
  kRockFrontier = 2,  ///< rock touching fluid — erodible this step
  kRefined = 3,       ///< eroded: refinement_factor finer fluid cells
};

/// The materialized state of one rock disc: its bounding-box cell grid plus
/// the compacted frontier list.
struct DiscState {
  std::int64_t x0 = 0, y0 = 0;  ///< bounding-box origin in the domain
  std::int64_t side = 0;        ///< box is side × side
  double erosion_prob = 0.0;
  std::vector<Cell> cells;             ///< box cell states
  std::vector<std::int32_t> frontier;  ///< indices of kRockFrontier cells
  std::int64_t rock_remaining = 0;

  [[nodiscard]] Cell at(std::int64_t lx, std::int64_t ly) const {
    if (lx < 0 || ly < 0 || lx >= side || ly >= side) return Cell::kOutside;
    return cells[static_cast<std::size_t>(ly * side + lx)];
  }
};

/// Rasterize `disc` (cells within the Euclidean radius are rock; boundary
/// rock with any non-rock 4-neighbour starts on the frontier).
[[nodiscard]] DiscState build_disc_state(const RockDisc& disc);

/// Half-open column interval [first, last) of the disc's bounding box — the
/// only columns its erosion can ever credit. Derivable from the RockDisc
/// alone (no materialized state), matching build_disc_state's box exactly;
/// this is what lets every rank compute halo-neighbor sets from replicated
/// metadata without holding remote DiscStates.
[[nodiscard]] std::pair<std::int64_t, std::int64_t> disc_column_span(
    const RockDisc& disc);

/// Half-open row interval [first, last) of the disc's bounding box — the
/// row-dimension twin of disc_column_span, which a 2D grid decomposition
/// needs to derive the full (edge + corner) halo-neighbor tile rectangle
/// from replicated metadata.
[[nodiscard]] std::pair<std::int64_t, std::int64_t> disc_row_span(
    const RockDisc& disc);

/// Phase 1 — decide which frontier cells erode, against the pre-step state.
/// Consumes EXACTLY frontier.size() Bernoulli draws from `rng` (every
/// frontier cell has at least one fluid face), independent of the outcomes —
/// the invariant the sharded/distributed stream split relies on.
[[nodiscard]] std::vector<std::int32_t> decide_disc(const DiscState& d,
                                                    support::Rng& rng);

/// Phases 2+3, disc-local — flip cells to refined, expose interior rock,
/// compact the frontier. Touches nothing outside `d`.
void apply_disc(DiscState& d, const std::vector<std::int32_t>& to_erode);

/// Byte-exact wire format for migrating disc ownership between ranks.
/// `disc_id` travels with the state so the receiver can verify it got the
/// hand-off it expected.
[[nodiscard]] std::vector<std::byte> serialize_disc(std::size_t disc_id,
                                                    const DiscState& d);

/// Inverse of serialize_disc; throws std::invalid_argument on a malformed
/// payload or when the embedded disc id differs from `expected_disc_id`.
[[nodiscard]] DiscState deserialize_disc(std::span<const std::byte> payload,
                                         std::size_t expected_disc_id);

}  // namespace ulba::erosion
