#include "lb/stripe_partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/require.hpp"

namespace ulba::lb {

StripeBoundaries even_partition(std::int64_t columns, std::int64_t pe_count) {
  ULBA_REQUIRE(pe_count >= 1, "need at least one PE");
  ULBA_REQUIRE(columns >= pe_count, "need at least one column per PE");
  StripeBoundaries b(static_cast<std::size_t>(pe_count) + 1);
  for (std::int64_t p = 0; p <= pe_count; ++p)
    b[static_cast<std::size_t>(p)] = p * columns / pe_count;
  return b;
}

StripeBoundaries partition_by_weight(std::span<const double> column_weights,
                                     std::span<const double> target_fractions) {
  const auto columns = static_cast<std::int64_t>(column_weights.size());
  const auto pe_count = static_cast<std::int64_t>(target_fractions.size());
  ULBA_REQUIRE(pe_count >= 1, "need at least one PE");
  ULBA_REQUIRE(columns >= pe_count, "need at least one column per PE");

  double total = 0.0;
  for (double w : column_weights) {
    ULBA_REQUIRE(w >= 0.0, "column weights must be non-negative");
    total += w;
  }
  double fsum = 0.0;
  for (double f : target_fractions) {
    ULBA_REQUIRE(f > 0.0, "target fractions must be positive");
    fsum += f;
  }
  ULBA_REQUIRE(std::abs(fsum - 1.0) < 1e-6, "target fractions must sum to 1");

  if (total <= 0.0) return even_partition(columns, pe_count);

  StripeBoundaries b(static_cast<std::size_t>(pe_count) + 1, 0);
  b.back() = columns;

  double cum_target = 0.0;   // cumulative target weight up to cut p
  double cum_weight = 0.0;   // weight of columns [0, cut)
  std::int64_t cut = 0;
  for (std::int64_t p = 0; p + 1 < pe_count; ++p) {
    cum_target += target_fractions[static_cast<std::size_t>(p)] * total;
    // Advance while adding the next column keeps us at or closer to target.
    // Leave enough columns for the pe_count − (p+1) remaining stripes.
    const std::int64_t max_cut = columns - (pe_count - p - 1);
    while (cut < max_cut) {
      const double w = column_weights[static_cast<std::size_t>(cut)];
      const double err_stop = std::abs(cum_weight - cum_target);
      const double err_take = std::abs(cum_weight + w - cum_target);
      if (err_take > err_stop && cut > b[static_cast<std::size_t>(p)])
        break;  // taking this column overshoots and stripe p is non-empty
      cum_weight += w;
      ++cut;
    }
    // Guarantee non-empty stripe even when the target was already exceeded.
    if (cut <= b[static_cast<std::size_t>(p)]) {
      cut = b[static_cast<std::size_t>(p)] + 1;
      cum_weight += column_weights[static_cast<std::size_t>(cut - 1)];
    }
    b[static_cast<std::size_t>(p) + 1] = cut;
  }
  return b;
}

std::vector<double> stripe_loads(std::span<const double> column_weights,
                                 const StripeBoundaries& b) {
  ULBA_REQUIRE(b.size() >= 2, "boundaries must describe at least one stripe");
  ULBA_REQUIRE(b.front() == 0 && b.back() == static_cast<std::int64_t>(
                                                 column_weights.size()),
               "boundaries must span the whole column range");
  std::vector<double> loads(b.size() - 1, 0.0);
  for (std::size_t p = 0; p + 1 < b.size(); ++p) {
    ULBA_REQUIRE(b[p] < b[p + 1], "stripes must be non-empty and ordered");
    for (std::int64_t x = b[p]; x < b[p + 1]; ++x)
      loads[p] += column_weights[static_cast<std::size_t>(x)];
  }
  return loads;
}

double load_imbalance(std::span<const double> column_weights,
                      const StripeBoundaries& b) {
  const auto loads = stripe_loads(column_weights, b);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double avg = total / static_cast<double>(loads.size());
  const double max = *std::max_element(loads.begin(), loads.end());
  return max / avg;
}

}  // namespace ulba::lb
