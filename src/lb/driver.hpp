// The centralized LB step — Algorithm 2 end to end, with virtual-time costs.
//
// One call gathers the per-PE α values at the main PE, computes the
// Algorithm-2 weight targets, cuts new stripes against the current column
// weights, and accounts the step's cost under the α-β model:
//
//     C = gather(α's) + partition scan + broadcast(boundaries) + migration
//
// The same driver serves both methods: the standard method simply submits
// all-zero α's (even targets).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "bsp/comm_model.hpp"
#include "core/policy.hpp"
#include "lb/migration.hpp"
#include "lb/partitioners.hpp"
#include "lb/stripe_partitioner.hpp"

namespace ulba::lb {

struct LbCostBreakdown {
  double gather_seconds = 0.0;     ///< α collection at the main PE
  double partition_seconds = 0.0;  ///< weight scan on the main PE
  double broadcast_seconds = 0.0;  ///< boundary distribution
  double migration_seconds = 0.0;  ///< bottleneck-PE data movement
  double rebuild_seconds = 0.0;    ///< bottleneck-PE subdomain rebuild
  [[nodiscard]] double total() const noexcept {
    return gather_seconds + partition_seconds + broadcast_seconds +
           migration_seconds + rebuild_seconds;
  }
};

struct LbStepResult {
  StripeBoundaries boundaries;          ///< the new decomposition
  core::WeightAssignment assignment;    ///< Algorithm-2 targets used
  MigrationVolume migration;            ///< data volume of the move
  LbCostBreakdown cost;                 ///< virtual seconds, per phase
};

/// Default throughput at which a PE re-derives its local data structures
/// (unpack, mesh/neighbour-list reconstruction, halo setup) after a
/// repartitioning. This is the *fixed* part of an LB step's cost — it is
/// paid on the PE's whole new subdomain regardless of how far the
/// boundaries moved, and on real machines it is what keeps LB steps
/// expensive even over fast networks (cf. the paper's refs [3], [4] on how
/// hard LB cost is to predict).
inline constexpr double kDefaultRebuildBps = 2e9;

class CentralizedLb {
 public:
  /// `flops` is the main PE's speed (for the partition scan);
  /// `partition_flops_per_column` the modeled cost of scanning one column;
  /// `rebuild_Bps` the post-migration subdomain rebuild throughput.
  CentralizedLb(bsp::CommModel comm, double flops,
                double partition_flops_per_column = 8.0,
                double rebuild_Bps = kDefaultRebuildBps);

  /// Perform one LB step.
  ///   alphas         — per-PE α (all zero ⇒ standard method)
  ///   column_weights — current per-column workload [FLOP]
  ///   column_bytes   — current per-column data size [bytes]
  ///   current        — the decomposition in effect before this step
  [[nodiscard]] LbStepResult step(std::span<const double> alphas,
                                  std::span<const double> column_weights,
                                  std::span<const double> column_bytes,
                                  const StripeBoundaries& current) const;

  [[nodiscard]] const bsp::CommModel& comm() const noexcept { return comm_; }

  /// Swap the cutting algorithm (defaults to the paper's greedy scan).
  /// Shared ownership so several drivers can reuse one partitioner.
  void set_partitioner(std::shared_ptr<const Partitioner> partitioner);
  [[nodiscard]] const Partitioner& partitioner() const noexcept {
    return *partitioner_;
  }

 private:
  bsp::CommModel comm_;
  double flops_;
  double partition_flops_per_column_;
  double rebuild_Bps_;
  std::shared_ptr<const Partitioner> partitioner_ =
      std::make_shared<GreedyScanPartitioner>();
};

}  // namespace ulba::lb
