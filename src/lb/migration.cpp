#include "lb/migration.hpp"

#include <algorithm>

#include "support/require.hpp"

namespace ulba::lb {

MigrationVolume migration_volume(const StripeBoundaries& before,
                                 const StripeBoundaries& after,
                                 std::span<const double> column_bytes) {
  ULBA_REQUIRE(before.size() == after.size(),
               "before/after must describe the same PE count");
  ULBA_REQUIRE(before.size() >= 2, "need at least one stripe");
  ULBA_REQUIRE(before.front() == 0 && after.front() == 0,
               "boundaries must start at column 0");
  ULBA_REQUIRE(before.back() == after.back() &&
                   before.back() ==
                       static_cast<std::int64_t>(column_bytes.size()),
               "boundaries must span the whole column range");

  // Prefix sums make every interval query O(1).
  std::vector<double> prefix(column_bytes.size() + 1, 0.0);
  for (std::size_t x = 0; x < column_bytes.size(); ++x) {
    ULBA_REQUIRE(column_bytes[x] >= 0.0, "column bytes must be non-negative");
    prefix[x + 1] = prefix[x] + column_bytes[x];
  }
  const auto range_bytes = [&](std::int64_t lo, std::int64_t hi) {
    return prefix[static_cast<std::size_t>(hi)] -
           prefix[static_cast<std::size_t>(lo)];
  };

  const std::size_t pe_count = before.size() - 1;
  MigrationVolume out;
  out.per_pe_bytes.assign(pe_count, 0.0);

  for (std::size_t p = 0; p < pe_count; ++p) {
    const std::int64_t ob = before[p], oe = before[p + 1];
    const std::int64_t nb = after[p], ne = after[p + 1];
    // Overlap of the old and new stripes — data that stays put.
    const std::int64_t ib = std::max(ob, nb), ie = std::min(oe, ne);
    const double overlap = ib < ie ? range_bytes(ib, ie) : 0.0;
    const double sent = range_bytes(ob, oe) - overlap;
    const double received = range_bytes(nb, ne) - overlap;
    out.per_pe_bytes[p] = sent + received;
    out.total_bytes += sent;  // every moved byte is sent exactly once
  }
  out.max_pe_bytes = out.per_pe_bytes.empty()
                         ? 0.0
                         : *std::max_element(out.per_pe_bytes.begin(),
                                             out.per_pe_bytes.end());
  return out;
}

}  // namespace ulba::lb
