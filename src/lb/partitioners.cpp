#include "lb/partitioners.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/require.hpp"

namespace ulba::lb {

namespace {

void check_inputs(std::span<const double> column_weights,
                  std::span<const double> target_fractions) {
  const auto columns = static_cast<std::int64_t>(column_weights.size());
  const auto pe_count = static_cast<std::int64_t>(target_fractions.size());
  ULBA_REQUIRE(pe_count >= 1, "need at least one PE");
  ULBA_REQUIRE(columns >= pe_count, "need at least one column per PE");
  double fsum = 0.0;
  for (double f : target_fractions) {
    ULBA_REQUIRE(f > 0.0, "target fractions must be positive");
    fsum += f;
  }
  ULBA_REQUIRE(std::abs(fsum - 1.0) < 1e-6, "target fractions must sum to 1");
  for (double w : column_weights)
    ULBA_REQUIRE(w >= 0.0, "column weights must be non-negative");
}

/// Prefix sums of the column weights: prefix[x] = Σ_{c<x} w_c.
std::vector<double> prefix_sums(std::span<const double> w) {
  std::vector<double> prefix(w.size() + 1, 0.0);
  for (std::size_t x = 0; x < w.size(); ++x) prefix[x + 1] = prefix[x] + w[x];
  return prefix;
}

/// Cut position in [lo_cut, hi_cut] whose prefix mass best matches `target`
/// (prefix is globally non-decreasing ⇒ binary search + local compare).
std::int64_t best_cut(const std::vector<double>& prefix, double target,
                      std::int64_t lo_cut, std::int64_t hi_cut) {
  const auto begin = prefix.begin() + lo_cut;
  const auto end = prefix.begin() + hi_cut + 1;
  auto it = std::lower_bound(begin, end, target);
  if (it == end) return hi_cut;
  std::int64_t cut = it - prefix.begin();
  if (cut > lo_cut &&
      target - prefix[static_cast<std::size_t>(cut - 1)] <
          prefix[static_cast<std::size_t>(cut)] - target)
    --cut;
  return std::clamp(cut, lo_cut, hi_cut);
}

/// RCB recursion over PE range [p_lo, p_hi) and column range [c_lo, c_hi).
void rcb_recurse(const std::vector<double>& prefix,
                 std::span<const double> fractions, std::int64_t p_lo,
                 std::int64_t p_hi, std::int64_t c_lo, std::int64_t c_hi,
                 StripeBoundaries& out) {
  const std::int64_t pes = p_hi - p_lo;
  if (pes == 1) {
    out[static_cast<std::size_t>(p_lo)] = c_lo;
    out[static_cast<std::size_t>(p_hi)] = c_hi;
    return;
  }
  const std::int64_t p_mid = p_lo + pes / 2;
  double left_frac = 0.0, all_frac = 0.0;
  for (std::int64_t p = p_lo; p < p_hi; ++p) {
    all_frac += fractions[static_cast<std::size_t>(p)];
    if (p < p_mid) left_frac += fractions[static_cast<std::size_t>(p)];
  }
  const double mass = prefix[static_cast<std::size_t>(c_hi)] -
                      prefix[static_cast<std::size_t>(c_lo)];
  const double target = prefix[static_cast<std::size_t>(c_lo)] +
                        mass * (all_frac > 0.0 ? left_frac / all_frac : 0.5);
  // Leave at least one column per PE on each side.
  const std::int64_t lo_cut = c_lo + (p_mid - p_lo);
  const std::int64_t hi_cut = c_hi - (p_hi - p_mid);
  const std::int64_t cut = best_cut(prefix, target, lo_cut, hi_cut);
  rcb_recurse(prefix, fractions, p_lo, p_mid, c_lo, cut, out);
  rcb_recurse(prefix, fractions, p_mid, p_hi, cut, c_hi, out);
}

/// Greedy feasibility test for the parametric search: can the columns be
/// split into contiguous stripes with load_p ≤ ratio · target_p · total and
/// one column minimum per stripe? Fills `out` when feasible.
bool feasible(std::span<const double> w, const std::vector<double>& prefix,
              std::span<const double> fractions, double ratio,
              StripeBoundaries& out) {
  const auto columns = static_cast<std::int64_t>(w.size());
  const auto pe_count = static_cast<std::int64_t>(fractions.size());
  const double total = prefix.back();
  out.assign(static_cast<std::size_t>(pe_count) + 1, 0);
  out.back() = columns;

  std::int64_t cut = 0;
  for (std::int64_t p = 0; p + 1 < pe_count; ++p) {
    const double cap =
        ratio * fractions[static_cast<std::size_t>(p)] * total;
    const double limit = prefix[static_cast<std::size_t>(cut)] + cap;
    // Furthest cut with prefix ≤ limit (greedy: take as much as allowed).
    const std::int64_t max_cut = columns - (pe_count - p - 1);
    auto it = std::upper_bound(prefix.begin() + cut + 1,
                               prefix.begin() + max_cut + 1,
                               limit + 1e-12 * std::max(1.0, limit));
    std::int64_t next = (it - prefix.begin()) - 1;
    if (next <= cut) {
      // Must take at least one column even if it busts the cap — but then
      // this ratio is infeasible unless that single column fits.
      next = cut + 1;
      if (prefix[static_cast<std::size_t>(next)] -
              prefix[static_cast<std::size_t>(cut)] >
          cap + 1e-12 * std::max(1.0, cap))
        return false;
    }
    cut = next;
    out[static_cast<std::size_t>(p) + 1] = cut;
  }
  // Last stripe takes the rest; check its cap.
  const double last_cap =
      ratio * fractions[static_cast<std::size_t>(pe_count - 1)] * total;
  const double last_load = total - prefix[static_cast<std::size_t>(cut)];
  return last_load <= last_cap + 1e-12 * std::max(1.0, last_cap);
}

}  // namespace

StripeBoundaries GreedyScanPartitioner::partition(
    std::span<const double> column_weights,
    std::span<const double> target_fractions) const {
  return partition_by_weight(column_weights, target_fractions);
}

StripeBoundaries RcbPartitioner::partition(
    std::span<const double> column_weights,
    std::span<const double> target_fractions) const {
  check_inputs(column_weights, target_fractions);
  const auto columns = static_cast<std::int64_t>(column_weights.size());
  const auto pe_count = static_cast<std::int64_t>(target_fractions.size());
  const auto prefix = prefix_sums(column_weights);
  if (prefix.back() <= 0.0) return even_partition(columns, pe_count);
  StripeBoundaries out(static_cast<std::size_t>(pe_count) + 1, 0);
  rcb_recurse(prefix, target_fractions, 0, pe_count, 0, columns, out);
  return out;
}

OptimalRatioPartitioner::OptimalRatioPartitioner(double ratio_tolerance)
    : ratio_tolerance_(ratio_tolerance) {
  ULBA_REQUIRE(ratio_tolerance > 0.0, "tolerance must be positive");
}

StripeBoundaries OptimalRatioPartitioner::partition(
    std::span<const double> column_weights,
    std::span<const double> target_fractions) const {
  check_inputs(column_weights, target_fractions);
  const auto columns = static_cast<std::int64_t>(column_weights.size());
  const auto pe_count = static_cast<std::int64_t>(target_fractions.size());
  const auto prefix = prefix_sums(column_weights);
  if (prefix.back() <= 0.0) return even_partition(columns, pe_count);

  // The bottleneck ratio is at least 1 (loads sum to the targets' total) and
  // at most what one stripe holding everything would pay.
  double min_frac = 1.0;
  for (double f : target_fractions) min_frac = std::min(min_frac, f);
  double lo = 1.0;
  double hi = 1.0 / min_frac + 1.0;

  StripeBoundaries best;
  StripeBoundaries probe;
  if (!feasible(column_weights, prefix, target_fractions, hi, probe)) {
    // A single monster column can exceed any stripe's cap; fall back to the
    // smallest ratio that admits it by doubling.
    while (!feasible(column_weights, prefix, target_fractions, hi, probe)) {
      hi *= 2.0;
      ULBA_CHECK(hi < 1e15, "parametric search diverged");
    }
  }
  best = probe;
  for (int iter = 0; iter < 100 && (hi - lo) > ratio_tolerance_ * lo;
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(column_weights, prefix, target_fractions, mid, probe)) {
      hi = mid;
      best = probe;
    } else {
      lo = mid;
    }
  }
  return best;
}

double bottleneck_ratio(std::span<const double> column_weights,
                        std::span<const double> target_fractions,
                        const StripeBoundaries& b) {
  ULBA_REQUIRE(b.size() == target_fractions.size() + 1,
               "boundaries must match the target count");
  const auto loads = stripe_loads(column_weights, b);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 1.0;
  double worst = 0.0;
  for (std::size_t p = 0; p < loads.size(); ++p)
    worst = std::max(worst, loads[p] / (target_fractions[p] * total));
  return worst;
}

StripeBoundaries EvenStripePartitioner::partition(
    std::span<const double> column_weights,
    std::span<const double> target_fractions) const {
  check_inputs(column_weights, target_fractions);
  return even_partition(static_cast<std::int64_t>(column_weights.size()),
                        static_cast<std::int64_t>(target_fractions.size()));
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "greedy" || name == "greedy-scan")
    return std::make_unique<GreedyScanPartitioner>();
  if (name == "rcb") return std::make_unique<RcbPartitioner>();
  if (name == "optimal" || name == "optimal-ratio")
    return std::make_unique<OptimalRatioPartitioner>();
  if (name == "stripe") return std::make_unique<EvenStripePartitioner>();
  std::string accepted;
  for (const std::string& n : partitioner_names())
    accepted += (accepted.empty() ? "" : ", ") + n;
  throw std::invalid_argument("unknown partitioner '" + name +
                              "' (accepted: " + accepted + ")");
}

const std::vector<std::string>& partitioner_names() {
  static const std::vector<std::string> kNames{"greedy", "rcb", "optimal",
                                               "stripe"};
  return kNames;
}

}  // namespace ulba::lb
