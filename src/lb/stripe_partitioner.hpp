// Weighted stripe partitioner — the centralized LB technique of paper §IV-B:
//
// "we implemented a partitioning technique that divides the computational
//  domain in stripes along the x-axis. … The goal of this technique is to
//  create P stripes that roughly contain the same number of fluid cells."
//
// Generalized to per-PE *weight targets* so the same partitioner serves both
// the standard method (equal targets) and ULBA (Algorithm-2 targets): stripe
// p receives consecutive columns whose summed weight approximates
// target_fraction[p] · total_weight.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ulba::lb {

/// Stripe boundaries: stripe p owns columns [boundaries[p], boundaries[p+1]).
/// boundaries.front() == 0, boundaries.back() == column count, and every
/// stripe is non-empty.
using StripeBoundaries = std::vector<std::int64_t>;

/// Equal-width split of `columns` into `pe_count` stripes (the initial
/// decomposition, before any weight information exists).
[[nodiscard]] StripeBoundaries even_partition(std::int64_t columns,
                                              std::int64_t pe_count);

/// Cut `column_weights` into stripes matching `target_fractions` (which must
/// be positive and sum to ≈1). Greedy prefix scan: each cut lands on the
/// column edge that best approximates the cumulative target, while always
/// leaving at least one column per remaining stripe.
[[nodiscard]] StripeBoundaries partition_by_weight(
    std::span<const double> column_weights,
    std::span<const double> target_fractions);

/// Summed weight of each stripe under the given boundaries.
[[nodiscard]] std::vector<double> stripe_loads(
    std::span<const double> column_weights, const StripeBoundaries& b);

/// Largest stripe load divided by the average — 1.0 means perfectly even.
[[nodiscard]] double load_imbalance(std::span<const double> column_weights,
                                    const StripeBoundaries& b);

}  // namespace ulba::lb
