// Pluggable 1-D partitioners — toward the paper's §V future-work item of
// integrating ULBA into a general LB suite (Zoltan-style): the ULBA weight
// policy (Algorithm 2) produces per-PE *target fractions*; any contiguous
// partitioner can realize them. Three realizations are provided:
//
//   * GreedyScanPartitioner    — the paper's §IV-B technique: one prefix
//                                scan, cut where the cumulative weight best
//                                matches the cumulative target. O(X).
//   * RcbPartitioner           — recursive coordinate bisection restricted
//                                to one dimension (the classic technique the
//                                paper's §I cites): split the PE range in
//                                half, cut the columns at the point best
//                                matching the left half's target mass,
//                                recurse. O(X + P log P) with prefix sums.
//   * OptimalRatioPartitioner  — exact minimizer of
//                                max_p load_p / target_p over all contiguous
//                                partitions (parametric binary search on the
//                                bottleneck with a greedy feasibility test).
//                                This is the best any stripe LB could do for
//                                given Algorithm-2 targets.
//   * EvenStripePartitioner    — weight-agnostic even column widths (the
//                                static decomposition every run starts from).
//                                The §II strawman baseline: cutting that
//                                ignores both the weights and the targets.
//
// All return boundaries with non-empty stripes covering every column.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lb/stripe_partitioner.hpp"

namespace ulba::lb {

/// Interface: realize per-PE target fractions over weighted columns.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Cut `column_weights` into stripes approximating `target_fractions`
  /// (positive, summing to ≈1). Must return non-empty ordered stripes.
  [[nodiscard]] virtual StripeBoundaries partition(
      std::span<const double> column_weights,
      std::span<const double> target_fractions) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's greedy prefix-scan stripe technique (§IV-B).
class GreedyScanPartitioner final : public Partitioner {
 public:
  [[nodiscard]] StripeBoundaries partition(
      std::span<const double> column_weights,
      std::span<const double> target_fractions) const override;
  [[nodiscard]] std::string name() const override { return "greedy-scan"; }
};

/// 1-D recursive (coordinate) bisection.
class RcbPartitioner final : public Partitioner {
 public:
  [[nodiscard]] StripeBoundaries partition(
      std::span<const double> column_weights,
      std::span<const double> target_fractions) const override;
  [[nodiscard]] std::string name() const override { return "rcb"; }
};

/// Exact min–max(load/target) contiguous partitioner.
class OptimalRatioPartitioner final : public Partitioner {
 public:
  /// `ratio_tolerance` bounds the relative error of the parametric search.
  explicit OptimalRatioPartitioner(double ratio_tolerance = 1e-9);

  [[nodiscard]] StripeBoundaries partition(
      std::span<const double> column_weights,
      std::span<const double> target_fractions) const override;
  [[nodiscard]] std::string name() const override { return "optimal-ratio"; }

 private:
  double ratio_tolerance_;
};

/// Weight- and target-agnostic even column widths (`even_partition`) behind
/// the Partitioner interface, so "no load balancing at all" plugs into every
/// sweep/shard site that takes a pluggable partitioner.
class EvenStripePartitioner final : public Partitioner {
 public:
  [[nodiscard]] StripeBoundaries partition(
      std::span<const double> column_weights,
      std::span<const double> target_fractions) const override;
  [[nodiscard]] std::string name() const override { return "stripe"; }
};

/// Quality metric every partitioner is judged by: the bottleneck ratio
/// max_p load_p / (target_p · total). 1.0 means the targets are met exactly;
/// the slowest PE finishes bottleneck_ratio× later than intended.
[[nodiscard]] double bottleneck_ratio(std::span<const double> column_weights,
                                      std::span<const double> target_fractions,
                                      const StripeBoundaries& b);

/// Factory by canonical name ("greedy", "rcb", "optimal", "stripe") or the
/// historical long spellings ("greedy-scan", "optimal-ratio"). Throws
/// std::invalid_argument on anything else, naming the accepted set.
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(
    const std::string& name);

/// The canonical partitioner names `make_partitioner` accepts, in display
/// order — for CLI help texts, validation messages, and sweep drivers.
[[nodiscard]] const std::vector<std::string>& partitioner_names();

}  // namespace ulba::lb
