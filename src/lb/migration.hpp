// Migration-volume accounting for a stripe repartitioning.
//
// When the boundaries move, each PE sends the columns it no longer owns and
// receives the columns it newly owns. On a real machine those transfers
// proceed in parallel, so the LB step's migration phase is dominated by the
// PE with the largest send+receive volume — exactly what the virtual-time
// cost model charges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lb/stripe_partitioner.hpp"

namespace ulba::lb {

struct MigrationVolume {
  /// Bytes sent + received per PE.
  std::vector<double> per_pe_bytes;
  /// Total bytes crossing PE boundaries (each moved byte counted once).
  double total_bytes = 0.0;
  /// max over PEs of per_pe_bytes — the migration bottleneck.
  double max_pe_bytes = 0.0;
};

/// Volume of migrating from `before` to `after` given per-column data sizes.
/// Both boundary sets must cover the same column count and PE count.
[[nodiscard]] MigrationVolume migration_volume(
    const StripeBoundaries& before, const StripeBoundaries& after,
    std::span<const double> column_bytes);

}  // namespace ulba::lb
