#include "lb/driver.hpp"

#include <algorithm>
#include <numeric>

#include "support/require.hpp"

namespace ulba::lb {

CentralizedLb::CentralizedLb(bsp::CommModel comm, double flops,
                             double partition_flops_per_column,
                             double rebuild_Bps)
    : comm_(comm),
      flops_(flops),
      partition_flops_per_column_(partition_flops_per_column),
      rebuild_Bps_(rebuild_Bps) {
  comm_.validate();
  ULBA_REQUIRE(flops > 0.0, "PE speed must be positive");
  ULBA_REQUIRE(partition_flops_per_column >= 0.0,
               "partition scan cost must be non-negative");
  ULBA_REQUIRE(rebuild_Bps > 0.0, "rebuild throughput must be positive");
}

void CentralizedLb::set_partitioner(
    std::shared_ptr<const Partitioner> partitioner) {
  ULBA_REQUIRE(partitioner != nullptr, "partitioner must not be null");
  partitioner_ = std::move(partitioner);
}

LbStepResult CentralizedLb::step(std::span<const double> alphas,
                                 std::span<const double> column_weights,
                                 std::span<const double> column_bytes,
                                 const StripeBoundaries& current) const {
  const auto pe_count = static_cast<std::int64_t>(alphas.size());
  ULBA_REQUIRE(pe_count >= 1, "need at least one PE");
  ULBA_REQUIRE(column_weights.size() == column_bytes.size(),
               "weights and bytes must describe the same columns");
  ULBA_REQUIRE(current.size() == alphas.size() + 1,
               "current boundaries must match the PE count");

  LbStepResult out;
  const double wtot =
      std::accumulate(column_weights.begin(), column_weights.end(), 0.0);

  // Algorithm 2, lines 4–7: every PE sends α to the main PE.
  out.assignment = core::compute_lb_weights(alphas, wtot);

  // Lines 8–15: weight targets → stripe cut against the column weights. A
  // stripe partitioner cannot realize a zero target (every stripe owns at
  // least one column by contract), so an α = 1 PE's empty share is floored
  // to a tiny positive fraction and the set renormalized: "remove the whole
  // balanced share" degrades gracefully to "keep the minimum stripe".
  std::vector<double> fractions = out.assignment.fractions;
  constexpr double kMinFraction = 1e-9;
  double fraction_sum = 0.0;
  for (double& f : fractions) {
    f = std::max(f, kMinFraction);
    fraction_sum += f;
  }
  for (double& f : fractions) f /= fraction_sum;
  out.boundaries = partitioner_->partition(column_weights, fractions);

  // Lines 16–20: broadcast the partition, migrate the data.
  out.migration = migration_volume(current, out.boundaries, column_bytes);

  out.cost.gather_seconds =
      comm_.gather(static_cast<std::int64_t>(sizeof(double)), pe_count);
  out.cost.partition_seconds =
      static_cast<double>(column_weights.size()) *
      partition_flops_per_column_ / flops_;
  out.cost.broadcast_seconds = comm_.broadcast(
      static_cast<std::int64_t>((pe_count + 1) * sizeof(std::int64_t)),
      pe_count);
  out.cost.migration_seconds = comm_.migrate(
      static_cast<std::int64_t>(out.migration.max_pe_bytes));

  // Post-migration rebuild: every PE re-derives its local structures over
  // its whole new stripe; the busiest new stripe dominates (BSP semantics).
  double max_stripe_bytes = 0.0;
  for (std::size_t p = 0; p + 1 < out.boundaries.size(); ++p) {
    double stripe = 0.0;
    for (std::int64_t x = out.boundaries[p]; x < out.boundaries[p + 1]; ++x)
      stripe += column_bytes[static_cast<std::size_t>(x)];
    max_stripe_bytes = std::max(max_stripe_bytes, stripe);
  }
  out.cost.rebuild_seconds = max_stripe_bytes / rebuild_Bps_;
  return out;
}

}  // namespace ulba::lb
