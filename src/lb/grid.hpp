// 2D grid decomposition helpers + the damped per-dimension boundary tuner.
//
// A grid decomposition cuts the domain into rows x cols rectangular tiles
// (one per rank, row-major). Each dimension keeps its own boundary vector in
// the StripeBoundaries format, so every 1D tool (stripe_loads,
// load_imbalance, the partitioners) applies per dimension unchanged.
//
// The tuner is the hoomd-blue LoadBalancer discipline (SNIPPETS.md Snippet
// 1) transplanted to integer cell boundaries: rescale each band's width by
// the inverse of its load imbalance I = load/avg, renormalize, and clamp
// every interior boundary to a movement envelope of `cap` (~5%) of the
// smaller adjacent band extent PER REBALANCE — the internal refinement loop
// (at most `max_iterations` passes) cannot escape that envelope, because the
// clamp is always taken against the boundaries the rebalance STARTED from.
// A candidate is kept only when it strictly improves the max/avg imbalance,
// so the outcome is monotone; a marginal already within `tolerance` is a
// no-op (zero iterations, boundaries returned unchanged).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ulba::lb {

/// Tile grid shape: `rows` bands stacked vertically x `cols` bands across.
struct GridShape {
  std::int64_t rows = 1;
  std::int64_t cols = 1;
};

/// Near-square factorization of `ranks`: rows is the largest divisor not
/// exceeding sqrt(ranks), so rows <= cols and rows * cols == ranks (4 ->
/// 2x2, 8 -> 2x4, 6 -> 2x3, primes -> 1xR).
[[nodiscard]] GridShape near_square_grid(std::int64_t ranks);

/// Resolve a possibly-partial RxC request against `ranks`: 0 in a dimension
/// means "derive it from the other one"; both 0 means near_square_grid.
/// Throws std::invalid_argument when rows * cols != ranks (non-factorable
/// requests are rejected, never silently adjusted).
[[nodiscard]] GridShape resolve_grid_shape(std::int64_t ranks,
                                           std::int64_t rows,
                                           std::int64_t cols);

/// Parse the `--grid` vocabulary "RxC" (e.g. "2x4"); throws
/// std::invalid_argument on anything else.
[[nodiscard]] GridShape parse_grid_shape(const std::string& text);

struct GridTunerConfig {
  /// Max interior-boundary movement per rebalance, as a fraction of the
  /// smaller adjacent band extent (hoomd's maxScale discipline). At least
  /// one cell of movement is always allowed so coarse grids can still tune.
  double cap = 0.05;
  /// Refinement passes per rebalance (hoomd's maxiter).
  std::int64_t max_iterations = 8;
  /// max/avg band load at or below which the tuner declares balance and
  /// leaves the boundaries alone.
  double tolerance = 1.02;
};

/// One dimension's tuner outcome.
struct TuneOutcome {
  std::vector<std::int64_t> boundaries;
  std::int64_t iterations = 0;     ///< refinement passes actually run
  double imbalance_before = 1.0;   ///< max/avg band load at the start bounds
  double imbalance_after = 1.0;    ///< ... at the returned bounds (<= before)
};

/// max/avg band load of `bounds` over `marginal` (1.0 when degenerate).
[[nodiscard]] double band_imbalance(std::span<const double> marginal,
                                    const std::vector<std::int64_t>& bounds);

/// The movement envelope of interior boundary `j` (0 < j < bands) for one
/// rebalance starting from `start`: max(1, floor(cap * min(adjacent start
/// band widths))) cells. Exported so the cap tests assert the exact
/// contract the tuner enforces.
[[nodiscard]] std::int64_t boundary_move_limit(
    const std::vector<std::int64_t>& start, std::size_t j, double cap);

/// Damped boundary tuning of one dimension: start from `start` (the
/// boundaries of the previous rebalance), iterate at most
/// `config.max_iterations` inverse-imbalance rescales over `marginal`, and
/// return the best strictly-improving candidate found — every interior
/// boundary within boundary_move_limit() of its start position, every band
/// at least one cell wide. Pure and deterministic.
[[nodiscard]] TuneOutcome tune_boundaries(std::span<const double> marginal,
                                          const std::vector<std::int64_t>& start,
                                          const GridTunerConfig& config);

}  // namespace ulba::lb
