#include "lb/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/require.hpp"

namespace ulba::lb {

GridShape near_square_grid(std::int64_t ranks) {
  ULBA_REQUIRE(ranks >= 1, "grid factorization needs at least one rank");
  GridShape shape{1, ranks};
  for (std::int64_t d = 1; d * d <= ranks; ++d)
    if (ranks % d == 0) shape = {d, ranks / d};
  return shape;
}

GridShape resolve_grid_shape(std::int64_t ranks, std::int64_t rows,
                             std::int64_t cols) {
  ULBA_REQUIRE(ranks >= 1, "grid resolution needs at least one rank");
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("grid dimensions must be nonnegative");
  if (rows == 0 && cols == 0) return near_square_grid(ranks);
  if (rows == 0) rows = (cols > 0 && ranks % cols == 0) ? ranks / cols : -1;
  if (cols == 0) cols = (rows > 0 && ranks % rows == 0) ? ranks / rows : -1;
  if (rows < 1 || cols < 1 || rows * cols != ranks)
    throw std::invalid_argument(
        "grid shape does not factor the rank count (rows x cols must equal "
        "ranks)");
  return {rows, cols};
}

GridShape parse_grid_shape(const std::string& text) {
  const auto x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size())
    throw std::invalid_argument("grid shape must be RxC (e.g. 2x4), got '" +
                                text + "'");
  std::int64_t rows = 0, cols = 0;
  try {
    std::size_t used = 0;
    rows = std::stoll(text.substr(0, x), &used);
    if (used != x) throw std::invalid_argument(text);
    cols = std::stoll(text.substr(x + 1), &used);
    if (used != text.size() - x - 1) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("grid shape must be RxC (e.g. 2x4), got '" +
                                text + "'");
  }
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("grid dimensions must be at least 1, got '" +
                                text + "'");
  return {rows, cols};
}

namespace {

void validate_bounds(std::span<const double> marginal,
                     const std::vector<std::int64_t>& bounds) {
  ULBA_REQUIRE(bounds.size() >= 2, "boundaries need at least one band");
  ULBA_REQUIRE(bounds.front() == 0 &&
                   bounds.back() ==
                       static_cast<std::int64_t>(marginal.size()),
               "boundaries must span the whole marginal");
  for (std::size_t j = 1; j < bounds.size(); ++j)
    ULBA_REQUIRE(bounds[j] > bounds[j - 1],
                 "every band must be at least one cell wide");
}

std::vector<double> band_loads(std::span<const double> prefix,
                               const std::vector<std::int64_t>& bounds) {
  std::vector<double> loads(bounds.size() - 1);
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
    loads[i] = prefix[static_cast<std::size_t>(bounds[i + 1])] -
               prefix[static_cast<std::size_t>(bounds[i])];
  return loads;
}

double imbalance_of(std::span<const double> prefix,
                    const std::vector<std::int64_t>& bounds) {
  const auto loads = band_loads(prefix, bounds);
  double max = 0.0, sum = 0.0;
  for (const double l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  const double avg = sum / static_cast<double>(loads.size());
  return avg > 0.0 ? max / avg : 1.0;
}

std::vector<double> prefix_sums(std::span<const double> marginal) {
  std::vector<double> prefix(marginal.size() + 1, 0.0);
  for (std::size_t i = 0; i < marginal.size(); ++i)
    prefix[i + 1] = prefix[i] + marginal[i];
  return prefix;
}

}  // namespace

double band_imbalance(std::span<const double> marginal,
                      const std::vector<std::int64_t>& bounds) {
  validate_bounds(marginal, bounds);
  return imbalance_of(prefix_sums(marginal), bounds);
}

std::int64_t boundary_move_limit(const std::vector<std::int64_t>& start,
                                 std::size_t j, double cap) {
  ULBA_REQUIRE(j >= 1 && j + 1 < start.size(),
               "move limits apply to interior boundaries only");
  const std::int64_t left = start[j] - start[j - 1];
  const std::int64_t right = start[j + 1] - start[j];
  const auto scaled = static_cast<std::int64_t>(
      std::floor(cap * static_cast<double>(std::min(left, right))));
  return std::max<std::int64_t>(1, scaled);
}

TuneOutcome tune_boundaries(std::span<const double> marginal,
                            const std::vector<std::int64_t>& start,
                            const GridTunerConfig& config) {
  validate_bounds(marginal, start);
  ULBA_REQUIRE(config.cap > 0.0 && config.cap <= 0.5,
               "tuner cap must lie in (0, 0.5]");
  ULBA_REQUIRE(config.max_iterations >= 1,
               "tuner needs at least one iteration");
  ULBA_REQUIRE(config.tolerance >= 1.0, "tuner tolerance must be >= 1");

  const std::vector<double> prefix = prefix_sums(marginal);
  const std::size_t bands = start.size() - 1;
  const std::int64_t extent = start.back();

  TuneOutcome out;
  out.boundaries = start;
  out.imbalance_before = imbalance_of(prefix, start);
  out.imbalance_after = out.imbalance_before;
  if (bands == 1 || out.imbalance_before <= config.tolerance) return out;

  std::vector<std::int64_t> cur = start;
  double best_imbalance = out.imbalance_before;
  for (std::int64_t it = 1; it <= config.max_iterations; ++it) {
    if (best_imbalance <= config.tolerance) break;
    const auto loads = band_loads(prefix, cur);
    double total = 0.0;
    for (const double l : loads) total += l;
    const double avg = total / static_cast<double>(bands);
    if (avg <= 0.0) break;

    // Inverse-imbalance rescale, damped to [1 - cap, 1 + cap] per band
    // (hoomd: an overloaded band shrinks, an underloaded one grows).
    std::vector<double> widths(bands);
    double width_sum = 0.0;
    for (std::size_t i = 0; i < bands; ++i) {
      const double w = static_cast<double>(cur[i + 1] - cur[i]);
      const double scale =
          loads[i] > 0.0
              ? std::clamp(avg / loads[i], 1.0 - config.cap, 1.0 + config.cap)
              : 1.0 + config.cap;
      widths[i] = w * scale;
      width_sum += widths[i];
    }

    // Integerize by cumulative rounding, then clamp each interior boundary
    // to its per-rebalance envelope around START (not around `cur` — the
    // internal passes share one cap) and restore monotonicity with at
    // least one cell per band.
    std::vector<std::int64_t> candidate = cur;
    double cum = 0.0;
    for (std::size_t j = 1; j < bands; ++j) {
      cum += widths[j - 1];
      auto b = static_cast<std::int64_t>(
          std::llround(cum / width_sum * static_cast<double>(extent)));
      const std::int64_t limit = boundary_move_limit(start, j, config.cap);
      b = std::clamp(b, start[j] - limit, start[j] + limit);
      b = std::clamp(b, candidate[j - 1] + 1,
                     extent - static_cast<std::int64_t>(bands - j));
      candidate[j] = b;
    }

    out.iterations = it;
    const double imbalance = imbalance_of(prefix, candidate);
    if (imbalance < best_imbalance) {
      best_imbalance = imbalance;
      out.boundaries = candidate;
      cur = std::move(candidate);
    } else {
      // The rescale stalled (integer rounding or the envelope pinned it);
      // another pass would re-derive the same move.
      break;
    }
  }
  out.imbalance_after = best_imbalance;
  return out;
}

}  // namespace ulba::lb
