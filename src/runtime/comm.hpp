// Rank-local communicator of the message-passing runtime ("mini-MPI").
//
// Provides the dozen routines most MPI programs need (cf. the LLNL MPI
// tutorial): blocking point-to-point send/recv with tags and wildcards, a
// barrier, and the collectives broadcast / gather / scatter / allgather /
// reduce / allreduce. All collectives are deterministic: reductions fold in
// rank order regardless of arrival order.
//
// Typed helpers require trivially copyable payloads (data moves between
// address spaces by value — CP.31). User tags must be non-negative; negative
// tags are reserved for the collectives' internal channels.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "runtime/world.hpp"
#include "support/require.hpp"

namespace ulba::runtime {

template <typename T>
concept BitwisePortable = std::is_trivially_copyable_v<T>;

class Comm {
 public:
  Comm(World& world, int rank);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size(); }

  /// World-wide traffic totals (all ranks' sends, collectives included).
  /// Compare only quiescent snapshots — e.g. taken right after barrier().
  [[nodiscard]] TrafficCounters traffic() const noexcept {
    return world_->traffic();
  }

  // ---- point to point ----------------------------------------------------

  void send_bytes(int dest, int tag, std::span<const std::byte> payload);

  /// Blocks until a matching message arrives. `source`/`tag` accept
  /// kAnySource/kAnyTag; the actual envelope is returned with the payload.
  [[nodiscard]] Message recv_message(int source, int tag);

  /// Non-blocking probe-and-receive (MPI_Iprobe + recv): true and fills
  /// `out` if a matching message was already queued.
  [[nodiscard]] bool try_recv_message(int source, int tag, Message& out);

  template <BitwisePortable T>
  void send(int dest, int tag, const T& value) {
    send_bytes(dest, tag, as_bytes_of(value));
  }

  template <BitwisePortable T>
  [[nodiscard]] T recv(int source, int tag) {
    const Message m = recv_message(source, tag);
    ULBA_REQUIRE(m.payload.size() == sizeof(T),
                 "received payload size does not match the expected type");
    T value;
    std::memcpy(&value, m.payload.data(), sizeof(T));
    return value;
  }

  template <BitwisePortable T>
  void send_span(int dest, int tag, std::span<const T> values) {
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(values.data()),
                values.size_bytes()});
  }

  template <BitwisePortable T>
  [[nodiscard]] std::vector<T> recv_vector(int source, int tag) {
    const Message m = recv_message(source, tag);
    ULBA_REQUIRE(m.payload.size() % sizeof(T) == 0,
                 "received payload size is not a whole number of elements");
    std::vector<T> values(m.payload.size() / sizeof(T));
    // Zero-length exchanges are legal (e.g. an empty halo message); memcpy's
    // pointer arguments are declared nonnull, so skip it outright.
    if (!m.payload.empty())
      std::memcpy(values.data(), m.payload.data(), m.payload.size());
    return values;
  }

  // ---- collectives ---------------------------------------------------------
  // Every rank of the world must call each collective the same number of
  // times (standard SPMD discipline).

  void barrier();

  template <BitwisePortable T>
  void broadcast(T& value, int root) {
    check_root(root);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root) send_internal(r, kTagBroadcast, as_bytes_of(value));
    } else {
      const Message m = recv_internal(root, kTagBroadcast);
      ULBA_REQUIRE(m.payload.size() == sizeof(T),
                   "broadcast payload size mismatch");
      std::memcpy(&value, m.payload.data(), sizeof(T));
    }
  }

  template <BitwisePortable T>
  void broadcast_vector(std::vector<T>& values, int root) {
    check_root(root);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root)
          send_internal(r, kTagBroadcast,
                        {reinterpret_cast<const std::byte*>(values.data()),
                         values.size() * sizeof(T)});
    } else {
      const Message m = recv_internal(root, kTagBroadcast);
      ULBA_REQUIRE(m.payload.size() % sizeof(T) == 0,
                   "broadcast payload size mismatch");
      values.resize(m.payload.size() / sizeof(T));
      if (!m.payload.empty())
        std::memcpy(values.data(), m.payload.data(), m.payload.size());
    }
  }

  /// Root receives one value per rank (in rank order); non-roots get {}.
  template <BitwisePortable T>
  [[nodiscard]] std::vector<T> gather(const T& value, int root) {
    check_root(root);
    if (rank_ != root) {
      send_internal(root, kTagGather, as_bytes_of(value));
      return {};
    }
    std::vector<T> all(static_cast<std::size_t>(size()));
    all[static_cast<std::size_t>(root)] = value;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Message m = recv_internal(r, kTagGather);
      ULBA_REQUIRE(m.payload.size() == sizeof(T),
                   "gather payload size mismatch");
      std::memcpy(&all[static_cast<std::size_t>(r)], m.payload.data(),
                  sizeof(T));
    }
    return all;
  }

  /// Root distributes values[r] to rank r; returns this rank's element.
  template <BitwisePortable T>
  [[nodiscard]] T scatter(std::span<const T> values, int root) {
    check_root(root);
    if (rank_ == root) {
      ULBA_REQUIRE(values.size() == static_cast<std::size_t>(size()),
                   "scatter needs exactly one value per rank");
      for (int r = 0; r < size(); ++r)
        if (r != root)
          send_internal(r, kTagScatter,
                        as_bytes_of(values[static_cast<std::size_t>(r)]));
      return values[static_cast<std::size_t>(root)];
    }
    const Message m = recv_internal(root, kTagScatter);
    ULBA_REQUIRE(m.payload.size() == sizeof(T),
                 "scatter payload size mismatch");
    T value;
    std::memcpy(&value, m.payload.data(), sizeof(T));
    return value;
  }

  /// Every rank receives one value per rank, in rank order.
  template <BitwisePortable T>
  [[nodiscard]] std::vector<T> allgather(const T& value) {
    std::vector<T> all = gather(value, 0);
    broadcast_vector(all, 0);
    return all;
  }

  /// Personalized all-to-all: rank r receives values[r] from every rank, in
  /// rank order. `values` must hold one element per destination rank.
  template <BitwisePortable T>
  [[nodiscard]] std::vector<T> alltoall(std::span<const T> values) {
    ULBA_REQUIRE(values.size() == static_cast<std::size_t>(size()),
                 "alltoall needs exactly one value per rank");
    for (int r = 0; r < size(); ++r)
      if (r != rank_)
        send_internal(r, kTagAlltoall,
                      as_bytes_of(values[static_cast<std::size_t>(r)]));
    std::vector<T> received(static_cast<std::size_t>(size()));
    received[static_cast<std::size_t>(rank_)] =
        values[static_cast<std::size_t>(rank_)];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const Message m = recv_internal(r, kTagAlltoall);
      ULBA_REQUIRE(m.payload.size() == sizeof(T),
                   "alltoall payload size mismatch");
      std::memcpy(&received[static_cast<std::size_t>(r)], m.payload.data(),
                  sizeof(T));
    }
    return received;
  }

  /// Deterministic reduction in rank order; result only valid on root.
  template <BitwisePortable T, typename Op = std::plus<T>>
  [[nodiscard]] T reduce(const T& value, int root, Op op = {}) {
    const std::vector<T> all = gather(value, root);
    if (rank_ != root) return T{};
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    return acc;
  }

  /// Deterministic all-reduce (reduce at rank 0, then broadcast).
  template <BitwisePortable T, typename Op = std::plus<T>>
  [[nodiscard]] T allreduce(const T& value, Op op = {}) {
    T acc = reduce(value, 0, op);
    broadcast(acc, 0);
    return acc;
  }

 private:
  // Internal channels: collectives use negative tags so they can never match
  // user point-to-point traffic.
  static constexpr int kTagBroadcast = -2;
  static constexpr int kTagGather = -3;
  static constexpr int kTagScatter = -4;
  static constexpr int kTagAlltoall = -5;

  template <BitwisePortable T>
  static std::span<const std::byte> as_bytes_of(const T& value) {
    return {reinterpret_cast<const std::byte*>(&value), sizeof(T)};
  }

  void check_root(int root) const;
  void send_internal(int dest, int tag, std::span<const std::byte> payload);
  [[nodiscard]] Message recv_internal(int source, int tag);

  World* world_;
  int rank_;
};

}  // namespace ulba::runtime
