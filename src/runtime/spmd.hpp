// SPMD launcher: run one function body on P ranks backed by P threads.
//
// Exceptions thrown by any rank are captured and the first one (by rank
// order) is rethrown to the caller after every thread has joined — a rank
// failure never leaks detached threads (CP.23/CP.26: threads are scoped,
// never detached).
#pragma once

#include <functional>

#include "runtime/comm.hpp"

namespace ulba::runtime {

/// Launch `body(comm)` on `size` ranks and wait for all of them.
void spmd_run(int size, const std::function<void(Comm&)>& body);

}  // namespace ulba::runtime
