// Per-rank mailbox of the message-passing runtime.
//
// Semantics mirror MPI's matching rules: a receive names a (source, tag)
// pair — either may be a wildcard — and messages between one (source,
// destination, tag) triple are never overtaken (FIFO per channel). Blocking
// receives park on a condition variable (CP.42: wait with a predicate).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

namespace ulba::runtime {

/// Wildcards for receives, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = std::numeric_limits<int>::min();

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  /// Enqueue a message (called from the sender's thread).
  void push(Message msg);

  /// Block until a message matching (source, tag) is available and return the
  /// first such message in arrival order.
  [[nodiscard]] Message pop(int source, int tag);

  /// Non-blocking variant: returns true and fills `out` if a match exists.
  [[nodiscard]] bool try_pop(int source, int tag, Message& out);

  /// Number of queued messages (for tests / diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  [[nodiscard]] static bool matches(const Message& m, int source, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace ulba::runtime
