#include "runtime/comm.hpp"

namespace ulba::runtime {

Comm::Comm(World& world, int rank) : world_(&world), rank_(rank) {
  ULBA_REQUIRE(rank >= 0 && rank < world.size(), "rank out of range");
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  ULBA_REQUIRE(dest >= 0 && dest < size(), "destination rank out of range");
  ULBA_REQUIRE(tag >= 0, "user tags must be non-negative");
  world_->record_send(payload.size());
  world_->mailbox(dest).push(
      Message{rank_, tag, {payload.begin(), payload.end()}});
}

Message Comm::recv_message(int source, int tag) {
  ULBA_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
               "source rank out of range");
  ULBA_REQUIRE(tag == kAnyTag || tag >= 0, "user tags must be non-negative");
  return world_->mailbox(rank_).pop(source, tag);
}

bool Comm::try_recv_message(int source, int tag, Message& out) {
  ULBA_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
               "source rank out of range");
  ULBA_REQUIRE(tag == kAnyTag || tag >= 0, "user tags must be non-negative");
  return world_->mailbox(rank_).try_pop(source, tag, out);
}

void Comm::barrier() { world_->barrier_wait(); }

void Comm::check_root(int root) const {
  ULBA_REQUIRE(root >= 0 && root < size(), "root rank out of range");
}

void Comm::send_internal(int dest, int tag,
                         std::span<const std::byte> payload) {
  world_->record_send(payload.size());
  world_->mailbox(dest).push(
      Message{rank_, tag, {payload.begin(), payload.end()}});
}

Message Comm::recv_internal(int source, int tag) {
  return world_->mailbox(rank_).pop(source, tag);
}

}  // namespace ulba::runtime
