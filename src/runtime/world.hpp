// The shared state of one SPMD run: the mailboxes of all ranks plus a
// reusable counting barrier.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/mailbox.hpp"

namespace ulba::runtime {

class World {
 public:
  explicit World(int size);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] Mailbox& mailbox(int rank);

  /// Reusable (generation-counted) barrier across all `size` ranks.
  void barrier_wait();

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace ulba::runtime
