// The shared state of one SPMD run: the mailboxes of all ranks, a reusable
// counting barrier, and the world-wide traffic counters every send (user
// point-to-point AND collective-internal) reports into.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/mailbox.hpp"

namespace ulba::runtime {

/// World-wide traffic totals since construction (every rank's sends).
struct TrafficCounters {
  std::uint64_t messages = 0;       ///< mailbox pushes, any tag
  std::uint64_t payload_bytes = 0;  ///< Σ payload sizes of those pushes
};

class World {
 public:
  explicit World(int size);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] Mailbox& mailbox(int rank);

  /// Reusable (generation-counted) barrier across all `size` ranks.
  void barrier_wait();

  /// Account one sent message (called by Comm on every send path, internal
  /// collectives included). Relaxed atomics: the counters order nothing.
  void record_send(std::uint64_t payload_bytes) noexcept {
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  }

  /// Snapshot of the world-wide traffic so far. Only quiescent snapshots
  /// (e.g. bracketing a barrier) are meaningful comparisons.
  [[nodiscard]] TrafficCounters traffic() const noexcept {
    return {messages_.load(std::memory_order_relaxed),
            payload_bytes_.load(std::memory_order_relaxed)};
  }

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
};

}  // namespace ulba::runtime
