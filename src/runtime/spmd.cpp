#include "runtime/spmd.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "support/require.hpp"

namespace ulba::runtime {

void spmd_run(int size, const std::function<void(Comm&)>& body) {
  ULBA_REQUIRE(size >= 1, "SPMD run needs at least one rank");
  ULBA_REQUIRE(body != nullptr, "SPMD body must be callable");

  World world(size);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      threads.emplace_back([&world, &body, &errors, r] {
        try {
          Comm comm(world, r);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }  // jthreads join here

  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
}

}  // namespace ulba::runtime
