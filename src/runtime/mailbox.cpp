#include "runtime/mailbox.hpp"

#include <algorithm>

namespace ulba::runtime {

bool Mailbox::matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}

void Mailbox::push(Message msg) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int source, int tag) {
  std::unique_lock lock(mutex_);
  decltype(queue_)::iterator it;
  cv_.wait(lock, [&] {
    it = std::find_if(queue_.begin(), queue_.end(),
                      [&](const Message& m) { return matches(m, source, tag); });
    return it != queue_.end();
  });
  Message out = std::move(*it);
  queue_.erase(it);
  return out;
}

bool Mailbox::try_pop(int source, int tag, Message& out) {
  const std::scoped_lock lock(mutex_);
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [&](const Message& m) { return matches(m, source, tag); });
  if (it == queue_.end()) return false;
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  const std::scoped_lock lock(mutex_);
  return queue_.size();
}

}  // namespace ulba::runtime
