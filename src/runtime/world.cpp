#include "runtime/world.hpp"

#include "support/require.hpp"

namespace ulba::runtime {

World::World(int size) : size_(size) {
  ULBA_REQUIRE(size >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

Mailbox& World::mailbox(int rank) {
  ULBA_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void World::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != my_generation; });
}

}  // namespace ulba::runtime
