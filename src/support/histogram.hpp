// Equal-width histogram — the presentation device behind Figure 2 of the
// paper (probability distribution of gains between the heuristic search and
// the σ⁺ upper bound).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ulba::support {

class Histogram {
 public:
  /// Build a histogram with `bins` equal-width bins covering [lo, hi].
  /// Values outside the range are clamped into the first/last bin so that
  /// probabilities always sum to one.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: span the data's own [min, max].
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  /// Fraction of all samples in `bin` (0 if histogram is empty).
  [[nodiscard]] double probability(std::size_t bin) const;
  /// Inclusive lower edge of `bin`.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin, bar length ∝ probability).
  [[nodiscard]] std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ulba::support
