#include "support/burn.hpp"

namespace ulba::support {

std::int64_t burn_steps(double flop, double ns_scale) noexcept {
  const double requested = flop * ns_scale;
  // !(x > 0) also catches NaN. The >= comparison is exact: kMaxBurnSteps is
  // a power of two, hence representable as a double, and every finite double
  // below it casts to int64 without overflow.
  if (!(requested > 0.0)) return 0;
  if (requested >= static_cast<double>(kMaxBurnSteps)) return kMaxBurnSteps;
  return static_cast<std::int64_t>(requested);
}

void burn(double flop, double ns_scale) noexcept {
  volatile double x = 1.0;
  const std::int64_t steps = burn_steps(flop, ns_scale);
  for (std::int64_t i = 0; i < steps; ++i) x = x * 1.0000001 + 1e-9;
}

}  // namespace ulba::support
