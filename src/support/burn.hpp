// Calibrated busy-work: the knob that turns modeled FLOP into real
// wall-clock time. Every measured-time substrate (the thread-backed
// erosion app, the measured-time SPMD distributed mode) burns through this
// one implementation so their "seconds per unit workload" agree.
#pragma once

#include <chrono>
#include <cstdint>

namespace ulba::support {

/// Seconds elapsed since `t0` on the steady clock — the measurement
/// companion every burn-calibrated substrate times its phases with.
[[nodiscard]] inline double seconds_since(
    std::chrono::steady_clock::time_point t0) noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Upper bound on the loop trip count one burn() call will run. Chosen so
/// `steps` arithmetic can never overflow and a run can still be cancelled by
/// a test timeout long before the loop ends (~1 ns per step ⇒ ~36 years).
inline constexpr std::int64_t kMaxBurnSteps =
    std::int64_t{1} << 60;  // exactly representable as a double

/// The loop trip count burn() runs for `flop · ns_scale`: the product
/// rounded toward zero, clamped to [0, kMaxBurnSteps]. NaN maps to 0.
///
/// Deliberately std::int64_t, not `long`: on LLP64 targets (Windows) `long`
/// is 32 bits, so a cast of a large product would be undefined and in
/// practice truncated or negative — a burn that should take minutes would
/// finish instantly (or skip entirely).
[[nodiscard]] std::int64_t burn_steps(double flop, double ns_scale) noexcept;

/// Busy-burn `burn_steps(flop, ns_scale)` multiply-add loop steps (~1 ns
/// each on the calibration hardware).
void burn(double flop, double ns_scale) noexcept;

}  // namespace ulba::support
