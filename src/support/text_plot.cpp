#include "support/text_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/require.hpp"

namespace ulba::support {

namespace {
constexpr const char* kGlyphs = "*+x@o%&$";
}

std::string plot_series(std::span<const Series> series, std::size_t width,
                        std::size_t height, double y_lo, double y_hi) {
  ULBA_REQUIRE(!series.empty(), "plot needs at least one series");
  ULBA_REQUIRE(width >= 10 && height >= 4, "plot canvas too small");
  std::size_t n = 0;
  for (const auto& s : series) n = std::max(n, s.y.size());
  ULBA_REQUIRE(n >= 2, "plot needs at least two samples");

  if (!(y_lo < y_hi)) {  // auto range
    y_lo = series[0].y.empty() ? 0.0 : series[0].y[0];
    y_hi = y_lo;
    for (const auto& s : series)
      for (double v : s.y) {
        y_lo = std::min(y_lo, v);
        y_hi = std::max(y_hi, v);
      }
    if (y_lo == y_hi) {
      y_lo -= 0.5;
      y_hi += 0.5;
    }
  }

  std::vector<std::string> canvas(height, std::string(width, ' '));
  const auto to_row = [&](double v) -> std::size_t {
    const double t = std::clamp((v - y_lo) / (y_hi - y_lo), 0.0, 1.0);
    return (height - 1) -
           static_cast<std::size_t>(
               std::lround(t * static_cast<double>(height - 1)));
  };
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char glyph = kGlyphs[si % 8];
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      const std::size_t c =
          s.y.size() == 1
              ? 0
              : static_cast<std::size_t>(std::lround(
                    static_cast<double>(i) /
                    static_cast<double>(s.y.size() - 1) *
                    static_cast<double>(width - 1)));
      canvas[to_row(s.y[i])][c] = glyph;
    }
  }

  std::ostringstream os;
  char buf[32];
  for (std::size_t r = 0; r < height; ++r) {
    const double axis_v =
        y_hi - (y_hi - y_lo) * static_cast<double>(r) /
                   static_cast<double>(height - 1);
    std::snprintf(buf, sizeof(buf), "%10.3f |", axis_v);
    os << buf << canvas[r] << '\n';
  }
  os << std::string(12, ' ') << std::string(width, '-') << '\n';
  os << "  legend: ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << kGlyphs[si % 8] << '=' << series[si].name;
    if (si + 1 < series.size()) os << "  ";
  }
  os << '\n';
  return os.str();
}

std::string sparkline(std::span<const double> y) {
  static constexpr const char* kBlocks[] = {" ", ".", ":", "-", "=",
                                            "+", "*", "#", "@"};
  if (y.empty()) return {};
  double lo = y[0], hi = y[0];
  for (double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::ostringstream os;
  for (double v : y) {
    const double t = hi == lo ? 0.5 : (v - lo) / (hi - lo);
    os << kBlocks[static_cast<std::size_t>(std::lround(t * 8.0))];
  }
  return os.str();
}

std::string bar_chart(std::span<const std::pair<std::string, double>> bars,
                      std::size_t width) {
  ULBA_REQUIRE(!bars.empty(), "bar chart needs at least one bar");
  double vmax = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    ULBA_REQUIRE(v >= 0.0, "bar chart values must be non-negative");
    vmax = std::max(vmax, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream os;
  char buf[32];
  for (const auto& [label, v] : bars) {
    const auto len =
        vmax > 0.0 ? static_cast<std::size_t>(std::lround(
                         v / vmax * static_cast<double>(width)))
                   : std::size_t{0};
    std::snprintf(buf, sizeof(buf), " %12.3f ", v);
    os << label << std::string(label_w - label.size(), ' ') << buf
       << std::string(len, '#') << '\n';
  }
  return os.str();
}

}  // namespace ulba::support
