#include "support/boxplot.hpp"

#include <algorithm>
#include <cmath>

#include "support/require.hpp"
#include "support/stats.hpp"

namespace ulba::support {

BoxPlot box_plot(std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "box plot of empty sample");
  BoxPlot b;
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  b.mean = mean(xs);
  const double lo_fence = b.q1 - 1.5 * b.iqr();
  const double hi_fence = b.q3 + 1.5 * b.iqr();
  b.whisker_lo = b.q3;  // will shrink below
  b.whisker_hi = b.q1;
  bool any_in_fence = false;
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) {
      b.outliers.push_back(x);
    } else {
      any_in_fence = true;
      b.whisker_lo = std::min(b.whisker_lo, x);
      b.whisker_hi = std::max(b.whisker_hi, x);
    }
  }
  if (!any_in_fence) {  // pathological: all samples are "outliers"
    b.whisker_lo = b.q1;
    b.whisker_hi = b.q3;
  }
  std::sort(b.outliers.begin(), b.outliers.end());
  return b;
}

std::string render_box(const BoxPlot& b, double lo, double hi,
                       std::size_t width) {
  ULBA_REQUIRE(lo < hi, "render_box needs a non-degenerate axis");
  ULBA_REQUIRE(width >= 10, "render_box needs at least 10 columns");
  std::string line(width, ' ');
  const auto col = [&](double x) -> std::size_t {
    const double t = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
    return static_cast<std::size_t>(
        std::lround(t * static_cast<double>(width - 1)));
  };
  const std::size_t cw_lo = col(b.whisker_lo), cw_hi = col(b.whisker_hi);
  const std::size_t cq1 = col(b.q1), cq3 = col(b.q3), cm = col(b.median);
  for (std::size_t c = cw_lo; c <= cw_hi; ++c) line[c] = '-';
  for (std::size_t c = cq1; c <= cq3; ++c) line[c] = '=';
  line[cw_lo] = '|';
  line[cw_hi] = '|';
  line[cq1] = '[';
  line[cq3] = ']';
  line[cm] = 'M';
  for (double o : b.outliers) line[col(o)] = 'o';
  return line;
}

}  // namespace ulba::support
