// Box-plot statistics (Tukey boxes, 1.5·IQR whiskers) — the presentation
// device behind Figure 3 of the paper (distribution of ULBA gains per
// percentage of overloading PEs).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ulba::support {

struct BoxPlot {
  double q1 = 0.0;            ///< first quartile
  double median = 0.0;
  double q3 = 0.0;            ///< third quartile
  double whisker_lo = 0.0;    ///< smallest sample ≥ q1 − 1.5·IQR
  double whisker_hi = 0.0;    ///< largest sample ≤ q3 + 1.5·IQR
  double mean = 0.0;
  std::vector<double> outliers;  ///< samples beyond the whiskers

  [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

/// Compute Tukey box-plot statistics for a non-empty sample.
[[nodiscard]] BoxPlot box_plot(std::span<const double> xs);

/// One-line ASCII rendering of a box on a fixed [lo, hi] axis of `width`
/// characters:   ····|──[══M══]───|····   (| = whiskers, [ ] = quartiles,
/// M = median). Useful to eyeball Figure-3-style panels in a terminal.
[[nodiscard]] std::string render_box(const BoxPlot& b, double lo, double hi,
                                     std::size_t width = 60);

}  // namespace ulba::support
