// Minimal fixed-column text table used by the experiment harness to print
// paper-style result rows (Figure 4a bars, Figure 5 series, ...).
#pragma once

#include <string>
#include <vector>

namespace ulba::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column-aligned padding, a header rule, and `indent` leading
  /// spaces on every line.
  [[nodiscard]] std::string render(std::size_t indent = 0) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept {
    return headers_.size();
  }

  /// Format helpers so call sites stay tidy.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ulba::support
