#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/require.hpp"
#include "support/stats.hpp"

namespace ulba::support {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ULBA_REQUIRE(bins > 0, "histogram needs at least one bin");
  ULBA_REQUIRE(lo < hi, "histogram range must be non-degenerate");
  width_ = (hi - lo) / static_cast<double>(bins);
}

Histogram Histogram::from_data(std::span<const double> xs, std::size_t bins) {
  ULBA_REQUIRE(!xs.empty(), "histogram from empty data");
  double lo = min_of(xs);
  double hi = max_of(xs);
  if (lo == hi) {  // degenerate sample: widen symmetrically
    lo -= 0.5;
    hi += 0.5;
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  const double pos = (x - lo_) / width_;
  auto bin = static_cast<std::ptrdiff_t>(std::floor(pos));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  ULBA_REQUIRE(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::probability(std::size_t bin) const {
  ULBA_REQUIRE(bin < counts_.size(), "bin index out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::bin_lo(std::size_t bin) const {
  ULBA_REQUIRE(bin < counts_.size(), "bin index out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + width_ / 2.0;
}

std::string Histogram::render(std::size_t bar_width) const {
  std::ostringstream os;
  double pmax = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b)
    pmax = std::max(pmax, probability(b));
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double p = probability(b);
    const auto len =
        pmax > 0.0 ? static_cast<std::size_t>(std::lround(
                         p / pmax * static_cast<double>(bar_width)))
                   : std::size_t{0};
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%+9.4f, %+9.4f) %6.3f ", bin_lo(b),
                  bin_hi(b), p);
    os << buf << std::string(len, '#') << '\n';
  }
  return os.str();
}

}  // namespace ulba::support
