// Error-handling primitives used across the ULBA library.
//
// Two categories, following the C++ Core Guidelines (I.6, E.12):
//   * ULBA_REQUIRE  — precondition on caller-supplied values; throws
//                     std::invalid_argument so misuse is reportable and
//                     testable.
//   * ULBA_CHECK    — internal invariant; throws std::logic_error because a
//                     failure is a bug in this library, not in the caller.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ulba::support {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file,
                                           int line, const std::string& what) {
  std::ostringstream os;
  os << "requirement violated: (" << expr << ") at " << file << ':' << line;
  if (!what.empty()) os << " — " << what;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& what) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':'
     << line;
  if (!what.empty()) os << " — " << what;
  throw std::logic_error(os.str());
}

}  // namespace ulba::support

#define ULBA_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ulba::support::throw_requirement(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#define ULBA_CHECK(cond, msg)                                           \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ulba::support::throw_invariant(#cond, __FILE__, __LINE__, msg);  \
  } while (false)
