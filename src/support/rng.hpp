// Deterministic random-number facilities.
//
// Every stochastic component of the reproduction (Table-II instance sampling,
// simulated annealing, gossip target selection, rock erosion) draws from an
// explicitly seeded `Rng`. Substreams are derived with `fork`, so that e.g.
// the erosion dynamics and the LB technique never share a stream — running the
// same seed under the standard method and under ULBA yields bit-identical
// workload evolution, which is what makes their comparison clean.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "support/require.hpp"

namespace ulba::support {

/// Seeded pseudo-random generator (mt19937_64 engine) with the handful of
/// distributions the reproduction needs. Copyable; copies advance
/// independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Seed used at construction (forks derive theirs from it).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derive an independent substream. Deterministic: fork(i) of an Rng seeded
  /// with s always yields the same stream, regardless of how much the parent
  /// has been consumed.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    // SplitMix64 finalizer mixes (seed, stream) into a fresh seed; this is the
    // standard recipe for deriving statistically independent mt19937 seeds.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    return Rng(z);
  }

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi) {
    ULBA_REQUIRE(lo <= hi, "uniform bounds must be ordered");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer on [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ULBA_REQUIRE(lo <= hi, "uniform_int bounds must be ordered");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Index uniform on [0, n).
  std::size_t index(std::size_t n) {
    ULBA_REQUIRE(n > 0, "index needs a non-empty range");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    ULBA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal deviate.
  double normal(double mean, double stddev) {
    ULBA_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniformly pick one element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> values) {
    ULBA_REQUIRE(!values.empty(), "pick needs a non-empty span");
    return values[index(values.size())];
  }

  /// Sample k distinct indices from [0, n) (partial Fisher–Yates).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// UniformRandomBitGenerator interface so <algorithm> shuffles work.
  result_type operator()() { return engine_(); }
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace ulba::support
