#include "support/thread_pool.hpp"

#include <algorithm>

namespace ulba::support {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = std::max<std::size_t>(threads, 1) - 1;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    run_range();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_range() {
  for (;;) {
    std::size_t i;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (next_index_ >= job_size_ || first_error_) return;
      i = next_index_++;
    }
    try {
      (*job_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Serial reference path: no locks, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_index_ = 0;
    active_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_range();  // the calling thread pulls its share too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ulba::support
