// Descriptive statistics used throughout the reproduction: the z-score
// overload detector (paper §III-C), the Figure-2/3 result summaries, and the
// Zhai-style adaptive trigger (median of recent iteration times, running mean
// of LB costs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ulba::support {

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n−1 denominator); 0 for samples of size < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Population standard deviation (n denominator), used by the z-score
/// detector so a lone outlier among few PEs is still flagged.
[[nodiscard]] double stddev_population(std::span<const double> xs);

/// Median without mutating the input.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolation quantile (R type-7, the numpy default), q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// z-score of x within the sample `xs` using the population stddev.
/// Returns 0 when the sample is degenerate (stddev == 0).
[[nodiscard]] double z_score(double x, std::span<const double> xs);

/// Minimum / maximum of a non-empty sample.
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Welford's online mean/variance — O(1) memory running statistics.
/// Used for the running average LB cost in the adaptive trigger and for the
/// BSP machine's utilization accounting.
class OnlineStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< unbiased; 0 if n < 2
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  void reset() noexcept { *this = OnlineStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity window of the most recent samples; median-of-window is what
/// Algorithm 1 (line 14) uses to smooth per-iteration times.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void add(double x);
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool full() const noexcept { return data_.size() == cap_; }
  [[nodiscard]] double median() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::span<const double> values() const noexcept {
    return data_;
  }
  void clear() noexcept { data_.clear(); head_ = 0; }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;       // insertion cursor once full
  std::vector<double> data_;   // chronological until full, then ring
};

}  // namespace ulba::support
