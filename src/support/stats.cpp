#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/require.hpp"

namespace ulba::support {

double mean(std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "mean of empty sample");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double stddev_population(std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "stddev of empty sample");
  const double mu = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  ULBA_REQUIRE(!xs.empty(), "quantile of empty sample");
  ULBA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile fraction out of [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double z_score(double x, std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "z-score against empty sample");
  const double sd = stddev_population(xs);
  if (sd == 0.0) return 0.0;
  return (x - mean(xs)) / sd;
}

double min_of(std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  ULBA_REQUIRE(!xs.empty(), "summary of empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.q25 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q75 = quantile(xs, 0.75);
  s.max = max_of(xs);
  return s;
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

RollingWindow::RollingWindow(std::size_t capacity) : cap_(capacity) {
  ULBA_REQUIRE(capacity > 0, "rolling window needs capacity >= 1");
  data_.reserve(capacity);
}

void RollingWindow::add(double x) {
  if (data_.size() < cap_) {
    data_.push_back(x);
  } else {
    data_[head_] = x;
    head_ = (head_ + 1) % cap_;
  }
}

double RollingWindow::median() const {
  ULBA_REQUIRE(!data_.empty(), "median of empty window");
  return support::median(data_);
}

double RollingWindow::mean() const {
  ULBA_REQUIRE(!data_.empty(), "mean of empty window");
  return support::mean(data_);
}

}  // namespace ulba::support
