// Terminal line/series plots, used by the experiment harness to render
// Figure-4b-style utilization traces and Figure-5-style α sweeps without any
// plotting dependency.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ulba::support {

/// One named series of (shared-x) samples.
struct Series {
  std::string name;
  std::vector<double> y;
};

/// Render several series on a shared canvas of `width`×`height` characters.
/// Each series gets its own glyph; y-range spans all series (or the explicit
/// [y_lo, y_hi] if y_lo < y_hi). X indices are linearly mapped to columns.
[[nodiscard]] std::string plot_series(std::span<const Series> series,
                                      std::size_t width = 100,
                                      std::size_t height = 20,
                                      double y_lo = 0.0, double y_hi = -1.0);

/// Compact one-line sparkline of a series using block glyphs.
[[nodiscard]] std::string sparkline(std::span<const double> y);

/// Horizontal bar chart: one labelled bar per (label, value).
[[nodiscard]] std::string bar_chart(
    std::span<const std::pair<std::string, double>> bars,
    std::size_t width = 60);

}  // namespace ulba::support
