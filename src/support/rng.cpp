#include "support/rng.hpp"

#include <numeric>

namespace ulba::support {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  ULBA_REQUIRE(k <= n, "cannot sample more elements than the population");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace ulba::support
