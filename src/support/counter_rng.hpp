// Counter-based random numbers — draws addressable by position.
//
// `Rng` (rng.hpp) is a sequential engine: the value of draw #k depends on
// having advanced through draws #0..k-1, so every stepper that wants
// bit-identical results across thread/shard/rank counts must reproduce the
// serial draw ORDER (the fork-in-disc-order discipline of ShardedDomain /
// DistributedDomain, with its burn passes and positioned snapshots).
//
// `CounterRng` removes the order dependence entirely: it is a keyed pure
// function from a 128-bit counter to random bits (Philox4x32-10, Salmon et
// al., "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11). The erosion
// steppers key one instance per (seed, disc) and address each Bernoulli
// draw by (iteration, cell index) — any thread may evaluate any draw at any
// time and always gets the same value, so bit-identity across 1..N threads,
// shards, and ranks holds by construction instead of by serialization.
//
// Everything here is branch-free integer arithmetic (two 32x32->64
// multiplies per round, ten rounds), inline in the header: a draw sits on
// the per-frontier-cell hot path of erosion::counter_decide_apply.
#pragma once

#include <array>
#include <cstdint>

namespace ulba::support {

/// Keyed Philox4x32-10 counter generator. Immutable after construction and
/// trivially copyable — all state is the 64-bit key, every draw names its
/// own 128-bit position (ctr_hi, ctr_lo). Two instances built from the same
/// (seed, stream) are interchangeable.
class CounterRng {
 public:
  /// Derive the key from (seed, stream) with the SplitMix64 finalizer — the
  /// same recipe Rng::fork uses to split mt19937 seeds, so per-disc streams
  /// are decorrelated the same way in both RNG kinds.
  constexpr CounterRng(std::uint64_t seed, std::uint64_t stream) noexcept {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    key_ = {static_cast<std::uint32_t>(z), static_cast<std::uint32_t>(z >> 32)};
  }

  /// The raw Philox4x32-10 block function (Random123-compatible: the
  /// known-answer vectors of its kat_vectors file hold — locked by
  /// test_counter_rng). Exposed for tests and for callers that want all 128
  /// bits of a position.
  [[nodiscard]] static constexpr std::array<std::uint32_t, 4> philox4x32(
      std::array<std::uint32_t, 4> ctr,
      std::array<std::uint32_t, 2> key) noexcept {
    constexpr std::uint32_t kM0 = 0xD2511F53u;
    constexpr std::uint32_t kM1 = 0xCD9E8D57u;
    constexpr std::uint32_t kW0 = 0x9E3779B9u;  // golden-ratio key schedule
    constexpr std::uint32_t kW1 = 0xBB67AE85u;
    for (int round = 0; round < 10; ++round) {
      if (round > 0) {
        key[0] += kW0;
        key[1] += kW1;
      }
      const std::uint64_t p0 = static_cast<std::uint64_t>(kM0) * ctr[0];
      const std::uint64_t p1 = static_cast<std::uint64_t>(kM1) * ctr[2];
      ctr = {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
             static_cast<std::uint32_t>(p1),
             static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
             static_cast<std::uint32_t>(p0)};
    }
    return ctr;
  }

  /// 64 random bits at position (ctr_hi, ctr_lo). A pure function of
  /// (key, position): evaluation order, repetition, and the evaluating
  /// thread are all irrelevant.
  [[nodiscard]] constexpr std::uint64_t draw(std::uint64_t ctr_hi,
                                             std::uint64_t ctr_lo)
      const noexcept {
    const std::array<std::uint32_t, 4> block =
        philox4x32({static_cast<std::uint32_t>(ctr_lo),
                    static_cast<std::uint32_t>(ctr_lo >> 32),
                    static_cast<std::uint32_t>(ctr_hi),
                    static_cast<std::uint32_t>(ctr_hi >> 32)},
                   key_);
    return (static_cast<std::uint64_t>(block[1]) << 32) | block[0];
  }

  /// Uniform double on [0, 1) at a position: the top 53 bits of the draw.
  [[nodiscard]] constexpr double uniform01(std::uint64_t ctr_hi,
                                           std::uint64_t ctr_lo)
      const noexcept {
    return static_cast<double>(draw(ctr_hi, ctr_lo) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p at a position.
  [[nodiscard]] constexpr bool bernoulli(double p, std::uint64_t ctr_hi,
                                         std::uint64_t ctr_lo) const noexcept {
    return uniform01(ctr_hi, ctr_lo) < p;
  }

  /// The derived Philox key (low word, high word) — lets tests assert the
  /// key-derivation recipe stays aligned with Rng::fork.
  [[nodiscard]] constexpr std::array<std::uint32_t, 2> key() const noexcept {
    return key_;
  }

 private:
  std::array<std::uint32_t, 2> key_{};
};

}  // namespace ulba::support
