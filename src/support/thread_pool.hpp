// A small persistent worker pool for data-parallel loops.
//
// The erosion simulator's hot loop (ErosionDomain::step) and the sweep
// layer's parallel_map (cli/sweep.hpp) need "run fn(i) for i in [0, n) on k
// threads, then wait" — nothing more. ThreadPool keeps k-1 workers parked on
// a condition variable between calls so per-step dispatch overhead stays in
// the microsecond range, and the calling thread always participates (a pool
// of 1 runs everything inline, with no workers and no synchronization — the
// serial reference path).
//
// Determinism contract: parallel_for guarantees every index is executed
// exactly once and the call does not return before all indices finish; it
// guarantees nothing about order. Callers that need reproducible results must
// make iterations independent (e.g. per-index RNG substreams) — see
// ErosionDomain::step(rng, pool).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ulba::support {

class ThreadPool {
 public:
  /// A pool that runs parallel_for on `threads` threads total (the caller
  /// plus threads-1 workers). `threads` is clamped to at least 1; pass
  /// hardware_threads() for one thread per core.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute a parallel_for (workers + caller).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Execute fn(0), …, fn(n-1), each exactly once, across the pool; blocks
  /// until all have finished. Indices are claimed one at a time under the
  /// pool mutex, so imbalanced iterations pack tightly — sized for coarse
  /// work items (whole discs, whole sweep cases), NOT for per-cell loops
  /// where one lock acquisition per index would dominate the work.
  /// Exceptions thrown by `fn` are rethrown on the calling thread (first
  /// one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();
  void run_range();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;  ///< guarded
  std::size_t job_size_ = 0;
  std::size_t next_index_ = 0;   ///< guarded by mutex_ (one claim per lock)
  std::size_t active_ = 0;       ///< workers still inside the current job
  std::uint64_t generation_ = 0; ///< bumps once per parallel_for
  std::exception_ptr first_error_;  ///< guarded
  bool stopping_ = false;
};

}  // namespace ulba::support
