#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/require.hpp"

namespace ulba::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ULBA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ULBA_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render(std::size_t indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const std::string pad(indent, ' ');
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  os << pad;
  for (std::size_t c = 0; c < width.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < width.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace ulba::support
