#include "opt/schedule_problem.hpp"

#include "opt/annealing.hpp"
#include "support/require.hpp"

namespace ulba::opt {

ScheduleProblem::ScheduleProblem(core::ModelParams params, CostModel model)
    : params_(params), model_(model) {
  params_.validate();
  ULBA_REQUIRE(params_.gamma >= 2,
               "schedule search needs at least two iterations");
}

ScheduleProblem::State ScheduleProblem::empty_state() const {
  return State(static_cast<std::size_t>(params_.gamma), 0);
}

ScheduleProblem::State ScheduleProblem::state_from(
    const core::Schedule& s) const {
  ULBA_REQUIRE(s.gamma() == params_.gamma,
               "schedule horizon must match the model's gamma");
  return s.to_mask();
}

double ScheduleProblem::energy(const State& s) const {
  const core::Schedule sched = core::Schedule::from_mask(s);
  switch (model_) {
    case CostModel::kStandard:
      return core::evaluate_standard(params_, sched).total_seconds;
    case CostModel::kUlba:
      return core::evaluate_ulba(params_, sched).total_seconds;
  }
  support::throw_invariant("valid cost model", __FILE__, __LINE__,
                           "unreachable cost model");
}

ScheduleProblem::Move ScheduleProblem::propose(State& s,
                                               support::Rng& rng) const {
  // Flip any position in [1, γ): activate or deactivate one LB call.
  const std::size_t pos = 1 + rng.index(s.size() - 1);
  s[pos] ^= 1u;
  return pos;
}

void ScheduleProblem::revert(State& s, const Move& m) const { s[m] ^= 1u; }

core::Schedule ScheduleProblem::to_schedule(const State& s) const {
  return core::Schedule::from_mask(s);
}

HeuristicSearchResult anneal_schedule(const core::ModelParams& params,
                                      CostModel model, support::Rng& rng,
                                      std::int64_t steps) {
  const ScheduleProblem problem(params, model);
  AnnealOptions opts;
  opts.steps = steps;
  const Annealer<ScheduleProblem> annealer(problem, opts);
  auto state = problem.empty_state();
  const auto res = annealer.optimize(state, rng);
  return {problem.to_schedule(state), res.best_energy};
}

}  // namespace ulba::opt
