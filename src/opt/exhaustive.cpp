#include "opt/exhaustive.hpp"

#include <vector>

#include "support/require.hpp"

namespace ulba::opt {

ExhaustiveResult exhaustive_schedule(const core::ModelParams& params,
                                     CostModel model) {
  params.validate();
  ULBA_REQUIRE(params.gamma <= 22,
               "exhaustive search is exponential; use optimal_schedule (DP) "
               "for larger horizons");
  const auto gamma = static_cast<std::size_t>(params.gamma);

  const auto eval = [&](const core::Schedule& s) {
    return model == CostModel::kStandard
               ? core::evaluate_standard(params, s).total_seconds
               : core::evaluate_ulba(params, s).total_seconds;
  };

  ExhaustiveResult best{core::Schedule::empty(params.gamma), 0.0, 0};
  best.total_seconds = eval(best.schedule);
  best.evaluated = 1;

  const std::uint64_t combos = std::uint64_t{1} << (gamma - 1);
  for (std::uint64_t bits = 1; bits < combos; ++bits) {
    std::vector<std::int64_t> steps;
    for (std::size_t i = 1; i < gamma; ++i)
      if (bits & (std::uint64_t{1} << (i - 1)))
        steps.push_back(static_cast<std::int64_t>(i));
    core::Schedule s(params.gamma, std::move(steps));
    const double cost = eval(s);
    ++best.evaluated;
    if (cost < best.total_seconds) {
      best.total_seconds = cost;
      best.schedule = std::move(s);
    }
  }
  return best;
}

}  // namespace ulba::opt
