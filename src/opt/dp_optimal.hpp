// Exact optimal LB schedule by dynamic programming — an extension beyond the
// paper (§III-B resorts to simulated annealing and calls finding the optimal
// intervals "challenging using an analytical method").
//
// Key observation: under both Eq. (2) and Eq. (5), the compute time of an
// interval depends only on its opening iteration (through Wtot(LBp) and the
// α applied there) and its length — never on earlier decisions. The optimal
// schedule is therefore a shortest path over nodes 0 … γ:
//
//     g(i) = min over j ∈ (i, γ] of  seg(i, j) + [j < γ] · (C + g(j))
//
// where seg(i, j) is the closed-form interval compute time with α_open = 0
// for i = 0 and α otherwise. O(γ²) evaluations — exact, fast, and a hard
// lower bound that validates both the annealer and the σ⁺ heuristic.
#pragma once

#include "core/params.hpp"
#include "core/schedule.hpp"
#include "opt/schedule_problem.hpp"

namespace ulba::opt {

struct OptimalResult {
  core::Schedule schedule;
  double total_seconds = 0.0;
};

/// Exact minimum-total-time schedule for the given model.
[[nodiscard]] OptimalResult optimal_schedule(const core::ModelParams& params,
                                             CostModel model);

}  // namespace ulba::opt
