#include "opt/dp_alpha.hpp"

#include <cmath>
#include <limits>

#include "core/ulba_model.hpp"
#include "support/require.hpp"

namespace ulba::opt {

std::vector<double> default_alpha_grid() {
  std::vector<double> grid;
  for (int i = 0; i <= 10; ++i) grid.push_back(i / 10.0);
  return grid;
}

OptimalAlphaResult optimal_alpha_schedule(const core::ModelParams& params,
                                          std::span<const double> grid) {
  params.validate();
  ULBA_REQUIRE(!grid.empty(), "alpha grid must not be empty");
  for (double a : grid)
    ULBA_REQUIRE(a >= 0.0 && a <= 1.0, "grid alphas must lie in [0, 1]");

  const std::int64_t gamma = params.gamma;
  const auto n = static_cast<std::size_t>(gamma);
  const std::size_t k = grid.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const auto seg = [&](std::int64_t from, std::int64_t to, double alpha) {
    return core::ulba_interval_compute_time(params, from, to, alpha);
  };

  // h[j]      = best cost of [j, γ) over all α applied at j (h[γ] = 0);
  // h_arg[j]  = the α index achieving it;
  // next[j·k + a] = the end of the best interval opened at j with α = a.
  std::vector<double> h(n + 1, 0.0);
  std::vector<std::size_t> h_arg(n + 1, 0);
  std::vector<std::int64_t> next(n * k, gamma);

  for (std::int64_t i = gamma - 1; i >= 0; --i) {
    double best_i = kInf;
    std::size_t best_a = 0;
    // The initial balance applies no underloading: restrict i == 0 to α = 0
    // (any grid without 0 still works: seg(0,·,grid[a]) is simply evaluated
    // with that opening — but the paper's semantics pin it to 0, so we do).
    for (std::size_t a = 0; a < k; ++a) {
      const double alpha_open = (i == 0) ? 0.0 : grid[a];
      double best = seg(i, gamma, alpha_open);
      std::int64_t best_j = gamma;
      for (std::int64_t j = i + 1; j < gamma; ++j) {
        const double cost = seg(i, j, alpha_open) + params.lb_cost +
                            h[static_cast<std::size_t>(j)];
        if (cost < best) {
          best = cost;
          best_j = j;
        }
      }
      next[static_cast<std::size_t>(i) * k + a] = best_j;
      if (best < best_i) {
        best_i = best;
        best_a = a;
      }
      if (i == 0) break;  // α pinned to 0 at the start: one pass suffices
    }
    h[static_cast<std::size_t>(i)] = best_i;
    h_arg[static_cast<std::size_t>(i)] = best_a;
  }

  // Reconstruct: from iteration 0 (α forced 0) hop interval by interval,
  // picking each step's best α.
  OptimalAlphaResult out{core::Schedule::empty(gamma), {}, h[0]};
  std::vector<std::int64_t> steps;
  std::vector<double> alphas;
  std::int64_t i = 0;
  std::size_t a = 0;  // α index applied at i (0 ⇒ grid[0]; unused at i=0)
  while (true) {
    const std::int64_t j = next[static_cast<std::size_t>(i) * k + a];
    if (j >= gamma) break;
    steps.push_back(j);
    a = h_arg[static_cast<std::size_t>(j)];
    alphas.push_back(grid[a]);
    i = j;
  }
  out.schedule = core::Schedule(gamma, std::move(steps));
  out.alphas = std::move(alphas);

  // Cross-check against the per-step evaluator.
  const double check =
      core::evaluate_ulba_per_step(params, out.schedule, out.alphas)
          .total_seconds;
  ULBA_CHECK(std::abs(check - out.total_seconds) <=
                 1e-9 * std::max(1.0, std::abs(out.total_seconds)),
             "dynamic-alpha DP reconstruction disagrees with the evaluator");
  return out;
}

}  // namespace ulba::opt
