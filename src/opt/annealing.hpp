// Generic simulated-annealing engine — our C++ stand-in for the python
// `simanneal` module the paper used (§III-B, ref. [15]).
//
// The engine is policy-based: a Problem supplies the state type, the energy
// function, a mutating `move` and its `undo`. Like simanneal, we use an
// exponential temperature schedule and Metropolis acceptance, and we remember
// the best state ever visited. Temperatures can be given explicitly or
// auto-tuned from a short random-walk sample of |ΔE| (accept-almost-anything
// start, accept-almost-nothing end).
//
// Requirements on Problem:
//   using State = ...;                          (copyable)
//   double energy(const State&) const;
//   Move   propose(State&, support::Rng&) const;   // applies a move in place
//   void   revert(State&, const Move&) const;      // undoes that move
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>

#include "support/require.hpp"
#include "support/rng.hpp"

namespace ulba::opt {

struct AnnealOptions {
  std::int64_t steps = 20000;   ///< Metropolis steps
  double t_max = 0.0;           ///< start temperature; ≤ 0 ⇒ auto-tune
  double t_min = 0.0;           ///< end temperature;   ≤ 0 ⇒ auto-tune
  std::int64_t tuning_samples = 200;  ///< random moves used for auto-tuning
};

struct AnnealResult {
  double best_energy = 0.0;
  std::int64_t accepted = 0;    ///< accepted moves (incl. improving ones)
  std::int64_t improved = 0;    ///< moves that improved on the best energy
};

template <typename Problem>
class Annealer {
 public:
  using State = typename Problem::State;

  Annealer(const Problem& problem, AnnealOptions options)
      : problem_(problem), options_(options) {
    ULBA_REQUIRE(options_.steps >= 1, "annealing needs at least one step");
  }

  /// Anneal starting from `state`; on return `state` holds the best state
  /// found. Deterministic for a given rng stream.
  AnnealResult optimize(State& state, support::Rng& rng) const {
    double t_max = options_.t_max;
    double t_min = options_.t_min;
    if (t_max <= 0.0 || t_min <= 0.0) {
      const auto [lo, hi] = sample_delta_scale(state, rng);
      // Start hot enough to accept nearly any move, end cold enough to
      // accept essentially none (simanneal's auto-schedule rationale).
      if (t_max <= 0.0) t_max = 10.0 * hi;
      if (t_min <= 0.0) t_min = 1e-4 * (lo > 0.0 ? lo : hi);
      if (t_max <= 0.0) t_max = 1.0;  // flat landscape: anything works
      if (t_min <= 0.0 || t_min >= t_max) t_min = t_max * 1e-6;
    }
    const double decay = std::log(t_min / t_max);

    double energy = problem_.energy(state);
    State best = state;
    double best_energy = energy;

    AnnealResult res;
    for (std::int64_t step = 0; step < options_.steps; ++step) {
      const double frac =
          static_cast<double>(step) / static_cast<double>(options_.steps);
      const double temp = t_max * std::exp(decay * frac);

      auto move = problem_.propose(state, rng);
      const double cand = problem_.energy(state);
      const double delta = cand - energy;
      if (delta <= 0.0 || rng.uniform(0.0, 1.0) < std::exp(-delta / temp)) {
        energy = cand;
        ++res.accepted;
        if (energy < best_energy) {
          best_energy = energy;
          best = state;
          ++res.improved;
        }
      } else {
        problem_.revert(state, move);
      }
    }
    state = std::move(best);
    res.best_energy = best_energy;
    return res;
  }

 private:
  /// Random-walk sample of |ΔE| to scale the temperature schedule.
  std::pair<double, double> sample_delta_scale(const State& start,
                                               support::Rng& rng) const {
    State probe = start;
    double prev = problem_.energy(probe);
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (std::int64_t i = 0; i < options_.tuning_samples; ++i) {
      problem_.propose(probe, rng);  // walk freely; no revert
      const double e = problem_.energy(probe);
      const double d = std::abs(e - prev);
      prev = e;
      if (d == 0.0) continue;
      if (first) {
        lo = hi = d;
        first = false;
      } else {
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    }
    return {lo, hi};
  }

  const Problem& problem_;
  AnnealOptions options_;
};

}  // namespace ulba::opt
