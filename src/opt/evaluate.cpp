#include "opt/evaluate.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "core/schedule.hpp"
#include "opt/dp_alpha.hpp"
#include "opt/dp_optimal.hpp"
#include "support/require.hpp"

namespace ulba::opt {
namespace {

using core::EvalMode;
using core::GridPointEval;
using core::ModelParams;
using core::ScheduleRequest;
using core::ScheduleResponse;

// σ⁺ execution at a candidate α (strictly positive — α = 0 callers reuse
// the standard result instead, preserving the historical short-circuit).
core::ScheduleCost sigma_cost_at(const ModelParams& params, double alpha) {
  ModelParams q = params;
  q.alpha = alpha;
  return core::evaluate_ulba(q, core::sigma_plus_schedule(q));
}

ScheduleResponse evaluate_sigma_grid(const ScheduleRequest& request,
                                     ScheduleResponse response) {
  const ModelParams& p = request.params;
  // Arg-min seeded with the α = 0 standard fallback: it can never lose to
  // itself, and a grid α wins only with strictly smaller total time —
  // exactly the historical best-α scans.
  double best_seconds = response.standard_seconds;
  double best_alpha = 0.0;
  response.grid.reserve(request.alpha_grid.size());
  for (const double alpha : request.alpha_grid) {
    GridPointEval point;
    point.alpha = alpha;
    if (alpha == 0.0) {
      point.total_seconds = response.standard_seconds;
      point.lb_count = response.standard_lb_count;
    } else {
      const core::ScheduleCost cost = sigma_cost_at(p, alpha);
      point.total_seconds = cost.total_seconds;
      point.lb_count = static_cast<std::int64_t>(cost.lb_count);
    }
    if (point.total_seconds < best_seconds) {
      best_seconds = point.total_seconds;
      best_alpha = alpha;
    }
    response.grid.push_back(point);
  }
  response.best_alpha = best_alpha;
  response.best_seconds = best_seconds;
  const core::Schedule recommended =
      best_alpha == 0.0
          ? core::menon_schedule(p)
          : [&] {
              ModelParams q = p;
              q.alpha = best_alpha;
              return core::sigma_plus_schedule(q);
            }();
  response.schedule_steps = recommended.steps();
  response.schedule_alphas.assign(recommended.lb_count(), best_alpha);
  response.schedule_seconds = best_seconds;
  return response;
}

ScheduleResponse evaluate_exact_dp(const ScheduleRequest& request,
                                   ScheduleResponse response) {
  const ModelParams& p = request.params;
  // Best *fixed* α over the grid — the reference the dynamic-α bound is
  // measured against. No standard fallback: init +inf, exactly the
  // historical best_fixed scan.
  double best_seconds = std::numeric_limits<double>::infinity();
  double best_alpha = 0.0;
  response.grid.reserve(request.alpha_grid.size());
  for (const double alpha : request.alpha_grid) {
    ModelParams q = p;
    q.alpha = alpha;
    const OptimalResult fixed = optimal_schedule(q, CostModel::kUlba);
    GridPointEval point;
    point.alpha = alpha;
    point.total_seconds = fixed.total_seconds;
    point.lb_count = static_cast<std::int64_t>(fixed.schedule.lb_count());
    if (point.total_seconds < best_seconds) {
      best_seconds = point.total_seconds;
      best_alpha = alpha;
    }
    response.grid.push_back(point);
  }
  response.best_alpha = best_alpha;
  response.best_seconds = best_seconds;
  const OptimalAlphaResult free_form =
      optimal_alpha_schedule(p, request.alpha_grid);
  response.schedule_steps = free_form.schedule.steps();
  response.schedule_alphas = free_form.alphas;
  response.schedule_seconds = free_form.total_seconds;
  return response;
}

}  // namespace

ScheduleResponse evaluate_schedule_request(const ScheduleRequest& request) {
  request.validate();
  const ModelParams& p = request.params;
  ScheduleResponse response;
  const core::ScheduleCost standard =
      core::evaluate_standard(p, core::menon_schedule(p));
  response.standard_seconds = standard.total_seconds;
  response.standard_lb_count = static_cast<std::int64_t>(standard.lb_count);
  response.alpha_seconds = p.alpha == 0.0
                               ? standard.total_seconds
                               : sigma_cost_at(p, p.alpha).total_seconds;
  response = request.mode == EvalMode::kSigmaGrid
                 ? evaluate_sigma_grid(request, std::move(response))
                 : evaluate_exact_dp(request, std::move(response));
  response.predicted_gain =
      (response.standard_seconds - response.schedule_seconds) /
      response.standard_seconds;
  return response;
}

ScheduleCache::ScheduleCache(std::int64_t capacity, std::int64_t shards)
    : capacity_(capacity),
      shard_capacity_(std::max<std::int64_t>(1, capacity / shards)) {
  ULBA_REQUIRE(capacity >= 1, "schedule cache capacity must be >= 1");
  ULBA_REQUIRE(shards >= 1, "schedule cache shard count must be >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (std::int64_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ScheduleCache::Shard& ScheduleCache::shard_for(const std::string& key) {
  const std::size_t index =
      std::hash<std::string>{}(key) % shards_.size();
  return *shards_[index];
}

core::ScheduleResponse ScheduleCache::evaluate(
    const core::ScheduleRequest& request) {
  return evaluate_serialized(core::serialize_request(request), request);
}

core::ScheduleResponse ScheduleCache::evaluate_serialized(
    const std::vector<std::byte>& request_bytes,
    const core::ScheduleRequest& request) {
  std::string key(reinterpret_cast<const char*>(request_bytes.data()),
                  request_bytes.size());
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.hits;
      core::ScheduleResponse hit = it->second;
      hit.provenance.cache_hit = 1;
      return hit;
    }
    ++shard.misses;
  }
  // Cold evaluation outside the lock: pure, so racing duplicate misses
  // compute identical responses and insert-if-absent below is harmless.
  core::ScheduleResponse cold = evaluate_schedule_request(request);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.entries.emplace(key, cold);
    if (inserted) {
      shard.fifo.push_back(std::move(key));
      while (static_cast<std::int64_t>(shard.entries.size()) >
             shard_capacity_) {
        shard.entries.erase(shard.fifo.front());
        shard.fifo.pop_front();
        ++shard.evictions;
      }
    }
  }
  return cold;
}

CacheStats ScheduleCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.size += static_cast<std::int64_t>(shard->entries.size());
  }
  return total;
}

}  // namespace ulba::opt
