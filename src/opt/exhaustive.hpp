// Brute-force enumeration of all 2^(γ−1) schedules — only feasible for tiny
// horizons, used by the test suite as ground truth for the DP and the
// annealer.
#pragma once

#include "core/params.hpp"
#include "core/schedule.hpp"
#include "opt/schedule_problem.hpp"

namespace ulba::opt {

struct ExhaustiveResult {
  core::Schedule schedule;
  double total_seconds = 0.0;
  std::uint64_t evaluated = 0;  ///< number of schedules enumerated
};

/// Enumerate every schedule over γ iterations (γ ≤ 22 enforced) and return
/// the cheapest.
[[nodiscard]] ExhaustiveResult exhaustive_schedule(
    const core::ModelParams& params, CostModel model);

}  // namespace ulba::opt
