// The single cache-keyed evaluation entry point behind every alpha-schedule
// query: `evaluate_schedule_request` is the pure cold evaluation (the model
// grid argmin and the exact DP now share this one code path), and
// `ScheduleCache` memoizes it under the serialized-request key with sharded
// locking and a per-shard FIFO eviction bound. A cached response is the
// stored cold result itself, so it is bit-identical to re-evaluation — the
// only difference a client can observe is `provenance.cache_hit`.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule_query.hpp"

namespace ulba::opt {

/// Pure cold evaluation of one request. Deterministic: equal requests give
/// byte-equal responses (serialize_response modulo provenance).
///
/// kSigmaGrid — standard time under the Menon-τ schedule; σ⁺ time per grid
/// α (α = 0 rows reuse the standard result); arg-min seeded with the
/// standard fallback at α = 0; recommended schedule is σ⁺ at the winning α
/// (Menon τ when the fallback wins).
/// kExactDp — exact DP optimum per grid α; arg-min over the grid only; the
/// recommended schedule is the free per-step-α DP over the same grid.
[[nodiscard]] core::ScheduleResponse evaluate_schedule_request(
    const core::ScheduleRequest& request);

/// Aggregated cache counters (monotonic across the cache's lifetime,
/// except `size` which is the current resident entry count).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t size = 0;
};

/// Sharded memoization of evaluate_schedule_request. Shard selection hashes
/// the serialized request, so concurrent distinct queries contend on
/// different locks; the evaluation itself runs outside any lock (it is pure
/// — racing duplicate misses compute identical values).
class ScheduleCache {
 public:
  /// `capacity` is the total entry bound, split evenly across `shards`
  /// (each shard holds at least one entry). Insertion beyond a shard's
  /// share evicts that shard's oldest entry (FIFO).
  explicit ScheduleCache(std::int64_t capacity = 4096,
                         std::int64_t shards = 8);

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Memoized evaluation. Hits return the stored cold response with
  /// `provenance.cache_hit = 1`; misses evaluate cold and store the result
  /// (with hit = 0) before returning it.
  [[nodiscard]] core::ScheduleResponse evaluate(
      const core::ScheduleRequest& request);

  /// Same, keyed by pre-serialized request bytes (the serve loop already
  /// holds them — avoids a redundant serialize).
  [[nodiscard]] core::ScheduleResponse evaluate_serialized(
      const std::vector<std::byte>& request_bytes,
      const core::ScheduleRequest& request);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t shard_count() const noexcept {
    return static_cast<std::int64_t>(shards_.size());
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, core::ScheduleResponse> entries;
    std::deque<std::string> fifo;  ///< insertion order, oldest first
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };

  Shard& shard_for(const std::string& key);

  std::int64_t capacity_;
  std::int64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ulba::opt
