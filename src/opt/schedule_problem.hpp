// The LB-schedule search problem fed to the annealer — paper §III-B:
//
// "A state is a vector of booleans of size γ that contains the LB state of
//  each iteration. … The heuristic search algorithm can move inside the state
//  space by activating or deactivating the load balancer at a particular
//  iteration. The cost function to minimize is Eq. (4) using Eq. (5) in
//  Eq. (3)."
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/schedule.hpp"
#include "support/rng.hpp"

namespace ulba::opt {

/// Which analytic model prices an interval.
enum class CostModel {
  kStandard,  ///< Eq. (2) in Eq. (3) — the standard LB method
  kUlba,      ///< Eq. (5) in Eq. (3) — ULBA with the instance's constant α
};

class ScheduleProblem {
 public:
  /// Boolean LB vector; index 0 is pinned to 0 (iteration 0 is the implicit
  /// initial balance).
  using State = std::vector<std::uint8_t>;
  /// A move is the flipped position (flipping again reverts it).
  using Move = std::size_t;

  ScheduleProblem(core::ModelParams params, CostModel model);

  [[nodiscard]] const core::ModelParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] State empty_state() const;
  [[nodiscard]] State state_from(const core::Schedule& s) const;

  [[nodiscard]] double energy(const State& s) const;
  Move propose(State& s, support::Rng& rng) const;
  void revert(State& s, const Move& m) const;

  [[nodiscard]] core::Schedule to_schedule(const State& s) const;

 private:
  core::ModelParams params_;
  CostModel model_;
};

/// Convenience entry point replicating the paper's experiment: anneal the
/// ULBA schedule of `params` and return it with its total time.
struct HeuristicSearchResult {
  core::Schedule schedule;
  double total_seconds = 0.0;
};

[[nodiscard]] HeuristicSearchResult anneal_schedule(
    const core::ModelParams& params, CostModel model, support::Rng& rng,
    std::int64_t steps = 20000);

}  // namespace ulba::opt
