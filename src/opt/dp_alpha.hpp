// Exact optimal *dynamic α* at the model level — the paper's §V future-work
// item ("to define the value that α should take to optimize the application
// performance, and to dynamically adjust α during application execution"),
// solved exactly for the analytic model.
//
// Joint optimization over the LB schedule AND the α applied at each step,
// restricted to a finite α grid. Because an interval's cost depends only on
// its opening iteration and the α applied there (see dp_optimal.hpp), the
// joint problem is still a layered shortest path:
//
//     h(j)    = min over α of g(j, α)
//     g(i, α) = min over j ∈ (i, γ] of seg(i, j, α) + [j < γ]·(C + h(j))
//
// with α fixed to 0 at the implicit initial balance. O(γ²·|grid|).
#pragma once

#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/schedule.hpp"

namespace ulba::opt {

struct OptimalAlphaResult {
  core::Schedule schedule;
  std::vector<double> alphas;  ///< α applied at each scheduled step
  double total_seconds = 0.0;
};

/// Default grid: {0.0, 0.1, …, 1.0}.
[[nodiscard]] std::vector<double> default_alpha_grid();

/// Exact minimum total time over (schedule × per-step α from `grid`).
[[nodiscard]] OptimalAlphaResult optimal_alpha_schedule(
    const core::ModelParams& params, std::span<const double> grid);

[[nodiscard]] inline OptimalAlphaResult optimal_alpha_schedule(
    const core::ModelParams& params) {
  const auto grid = default_alpha_grid();
  return optimal_alpha_schedule(params, grid);
}

}  // namespace ulba::opt
