#include "opt/dp_optimal.hpp"

#include <algorithm>
#include <vector>

#include "core/standard_model.hpp"
#include "core/ulba_model.hpp"
#include "support/require.hpp"

namespace ulba::opt {

OptimalResult optimal_schedule(const core::ModelParams& params,
                               CostModel model) {
  params.validate();
  const std::int64_t gamma = params.gamma;

  const auto seg = [&](std::int64_t from, std::int64_t to) {
    if (model == CostModel::kStandard)
      return core::standard_interval_compute_time(params, from, to);
    const double alpha_open = (from == 0) ? 0.0 : params.alpha;
    return core::ulba_interval_compute_time(params, from, to, alpha_open);
  };

  // g[i] = best cost of iterations [i, γ) given a balance just happened at i
  // (free for i == 0; the C of a real step is charged on the transition).
  std::vector<double> g(static_cast<std::size_t>(gamma) + 1, 0.0);
  std::vector<std::int64_t> next(static_cast<std::size_t>(gamma) + 1, gamma);

  for (std::int64_t i = gamma - 1; i >= 0; --i) {
    double best = seg(i, gamma);  // run to the end without another LB
    std::int64_t best_j = gamma;
    for (std::int64_t j = i + 1; j < gamma; ++j) {
      const double cost = seg(i, j) + params.lb_cost +
                          g[static_cast<std::size_t>(j)];
      if (cost < best) {
        best = cost;
        best_j = j;
      }
    }
    g[static_cast<std::size_t>(i)] = best;
    next[static_cast<std::size_t>(i)] = best_j;
  }

  std::vector<std::int64_t> steps;
  for (std::int64_t i = next[0]; i < gamma;
       i = next[static_cast<std::size_t>(i)]) {
    steps.push_back(i);
  }
  OptimalResult out{core::Schedule(gamma, std::move(steps)), g[0]};

  // Cross-check the reconstruction against the schedule evaluator.
  const double check =
      model == CostModel::kStandard
          ? core::evaluate_standard(params, out.schedule).total_seconds
          : core::evaluate_ulba(params, out.schedule).total_seconds;
  ULBA_CHECK(std::abs(check - out.total_seconds) <=
                 1e-9 * std::max(1.0, std::abs(out.total_seconds)),
             "DP reconstruction disagrees with the schedule evaluator");
  return out;
}

}  // namespace ulba::opt
