// Shared helpers for the experiment harness binaries.
//
// The sweep machinery itself (parallel_map, the scaled erosion config, the
// gossip/Table-II scenario sweeps) lives in src/cli/sweep.hpp so the
// `ulba_cli` subcommands and these binaries drive one implementation; this
// header only re-exports it under the historical ulba::bench names and adds
// the printf-flavored header the binaries share.
#pragma once

#include <cstdio>
#include <string>

#include "cli/sweep.hpp"

namespace ulba::bench {

using cli::AlphaVariant;
using cli::anticipation_vs_reactive_sweep;
using cli::AnticipationReactiveRow;
using cli::distributed_erosion_scaling;
using cli::DistributedScalingRow;
using cli::dynamic_alpha_grid;
using cli::dynamic_alpha_model_bound;
using cli::dynamic_alpha_variants;
using cli::erosion_median_over_seeds;
using cli::gossip_latency_table;
using cli::grid_decomposition_sweep;
using cli::GridDecompRow;
using cli::instance_family_stats;
using cli::interval_quality_sweep;
using cli::IntervalQualitySample;
using cli::parallel_map;
using cli::partitioner_end_to_end;
using cli::partitioner_quality_sweep;
using cli::scaled_app_config;

inline void print_header(const std::string& title, const std::string& paper) {
  std::string bar(78, '=');
  std::printf("%s\n%s\n", bar.c_str(), title.c_str());
  std::printf("paper reference: %s\n%s\n", paper.c_str(), bar.c_str());
}

}  // namespace ulba::bench
