// Shared helpers for the experiment harness binaries.
#pragma once

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bsp/comm_model.hpp"
#include "erosion/app.hpp"

namespace ulba::bench {

/// Run `fn(i)` for i in [0, n) across hardware threads; returns the results
/// in index order. The experiment binaries use this to sweep seeds /
/// configurations; each unit of work must be independent and seeded.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  const std::size_t workers =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::future<std::vector<std::pair<std::size_t, R>>>> futures;
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers && w * chunk < n; ++w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    futures.push_back(std::async(std::launch::async, [lo, hi, &fn] {
      std::vector<std::pair<std::size_t, R>> part;
      part.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) part.emplace_back(i, fn(i));
      return part;
    }));
  }
  std::vector<R> out(n);
  for (auto& f : futures)
    for (auto& [i, r] : f.get()) out[i] = std::move(r);
  return out;
}

/// The scaled-down erosion configuration every Figure-4/5 binary shares.
/// DESIGN.md §3 records the substitution: the geometry ratios (radius/rows =
/// 1/4, one rock per stripe) match the paper; the absolute scale is reduced
/// so a full sweep runs in seconds, and the α-β constants place the LB cost
/// in Table II's C/iteration regime (~0.1–3).
inline erosion::AppConfig scaled_app_config(std::int64_t pe_count,
                                            std::int64_t strong_rocks,
                                            erosion::Method method,
                                            std::uint64_t seed) {
  erosion::AppConfig c;
  c.pe_count = pe_count;
  c.columns_per_pe = 256;
  c.rows = 384;
  c.rock_radius = 96;
  c.strong_rock_count = strong_rocks;
  // The paper runs 400 iterations at radius 250 — erosion stays active for
  // most of the run. Erosion lifetime scales with the rock radius, so the
  // scaled domain's horizon shrinks proportionally.
  c.iterations = 180;
  c.method = method;
  c.alpha = 0.4;  // the paper's Figure-4 value
  c.seed = seed;
  c.bytes_per_cell = 256.0;  // LBM-style cell state
  // Calibration: with these constants one LB step (α gather + partition +
  // boundary broadcast + migration) costs on the order of 0.3–3 iterations,
  // i.e. Table II's z ∈ [0.1, 3] regime — the regime the paper's cluster
  // experiments live in. A faster network makes LB nearly free, at which
  // point *any* reactive balancer wins by just rebalancing constantly; a
  // slower one makes migration (∝ drift since the last step) dominate and
  // punishes long intervals beyond anything the paper's constant-C model
  // describes.
  c.comm.latency_s = 1e-4;
  c.comm.bandwidth_Bps = 2e9;
  return c;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::string bar(78, '=');
  std::printf("%s\n%s\n", bar.c_str(), title.c_str());
  std::printf("paper reference: %s\n%s\n", paper.c_str(), bar.c_str());
}

}  // namespace ulba::bench
