// E-X3 (extension) — gossip fan-out / staleness ablation.
//
// §III-C disseminates WIRs with one gossip round per iteration and leans on
// the principle of persistence to tolerate staleness. This ablation
// quantifies that: dissemination latency vs. fan-out, and the end-to-end
// effect of fan-out on the erosion application.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/gossip.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X3 — WIR gossip fan-out: dissemination latency and "
      "end-to-end impact",
      "extends Boulmier et al. §III-C (one dissemination round per "
      "iteration)");

  // Part 1: rounds until every PE knows every WIR, by fan-out and P.
  std::printf("\nRounds to full knowledge (median of 20 trials):\n\n");
  support::Table latency({"P", "fanout 1", "fanout 2", "fanout 4",
                          "fanout 8", "~log2(P)"});
  for (std::int64_t pe_count : {32, 64, 128, 256, 512}) {
    std::vector<std::string> row{std::to_string(pe_count)};
    for (std::int64_t fanout : {1, 2, 4, 8}) {
      std::vector<double> rounds;
      for (std::uint64_t trial = 0; trial < 10; ++trial) {
        core::GossipNetwork net(pe_count, fanout);
        for (std::int64_t pe = 0; pe < pe_count; ++pe)
          net.observe_local(pe, 1.0, 0);
        rounds.push_back(static_cast<double>(
            net.rounds_to_full_knowledge(support::Rng(trial + 1))));
      }
      row.push_back(support::Table::num(support::median(rounds), 1));
    }
    row.push_back(support::Table::num(
        std::log2(static_cast<double>(pe_count)), 1));
    latency.add_row(row);
  }
  std::printf("%s\n", latency.render(2).c_str());

  // Part 2: end-to-end erosion time under ULBA vs. gossip fan-out.
  const std::vector<std::int64_t> fanouts{1, 2, 4, 8};
  const std::vector<std::uint64_t> seeds{11, 22, 33};
  struct Case {
    std::int64_t fanout;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (auto f : fanouts)
    for (auto s : seeds) cases.push_back({f, s});
  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    auto cfg = bench::scaled_app_config(64, 1, erosion::Method::kUlba,
                                        cases[i].seed);
    cfg.gossip_fanout = cases[i].fanout;
    return erosion::ErosionApp(cfg).run();
  });

  support::Table impact(
      {"fanout", "total time [s]", "LB calls", "mean utilization"});
  std::vector<double> times;
  for (auto f : fanouts) {
    std::vector<double> t, calls, util;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (cases[i].fanout != f) continue;
      t.push_back(results[i].total_seconds);
      calls.push_back(static_cast<double>(results[i].lb_count));
      util.push_back(results[i].average_utilization);
    }
    times.push_back(support::median(t));
    impact.add_row({std::to_string(f),
                    support::Table::num(support::median(t), 3),
                    support::Table::num(support::median(calls), 0),
                    support::Table::pct(support::median(util), 1)});
  }
  std::printf("\nErosion app (64 PEs, 1 strong rock, ULBA alpha=0.4), median "
              "of %zu seeds:\n\n%s\n",
              seeds.size(), impact.render(2).c_str());

  // Two findings:
  //  * Persistence claim (§III-C): the slowest dissemination (fan-out 1)
  //    costs almost nothing end-to-end — stale WIRs are still good WIRs.
  //  * Extra gossip traffic is pure overhead: every push costs α-β time
  //    each iteration, so large fan-outs *lose* time without improving a
  //    single LB decision. This is exactly why the paper sends one
  //    dissemination round per iteration and no more.
  const double best = support::min_of(times);
  const double t_fanout1 = times.front();
  const double t_fanout8 = times.back();
  std::printf("  fanout 1 within 5%% of the best fanout : %s (%.1f%%)\n",
              t_fanout1 <= best * 1.05 ? "yes" : "NO",
              (t_fanout1 / best - 1.0) * 100.0);
  std::printf("  fanout 8 pays pure gossip overhead    : %s (+%.1f%%)\n",
              t_fanout8 >= best ? "yes" : "NO",
              (t_fanout8 / best - 1.0) * 100.0);
  const bool ok = t_fanout1 <= best * 1.05 && t_fanout8 >= best;
  std::printf("\n  verdict: %s (staleness tolerated; extra traffic is pure "
              "cost)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
