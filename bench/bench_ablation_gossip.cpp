// E-X3 (extension) — gossip fan-out / staleness ablation.
//
// §III-C disseminates WIRs with one gossip round per iteration and leans on
// the principle of persistence to tolerate staleness. This ablation
// quantifies that: dissemination latency vs. fan-out, and the end-to-end
// effect of fan-out on the erosion application.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X3 — WIR gossip fan-out: dissemination latency and "
      "end-to-end impact",
      "extends Boulmier et al. §III-C (one dissemination round per "
      "iteration)");

  // Part 1: rounds until every PE knows every WIR, by fan-out and P — the
  // same shared sweep `ulba_cli gossip` reports.
  std::printf("\nRounds to full knowledge (median of 10 trials):\n\n");
  const std::vector<std::int64_t> pe_counts{32, 64, 128, 256, 512};
  const std::vector<std::int64_t> fanouts{1, 2, 4, 8};
  std::printf("%s\n",
              bench::gossip_latency_table(pe_counts, fanouts, 10, 1)
                  .render(2)
                  .c_str());

  // Part 2: end-to-end erosion time under ULBA vs. gossip fan-out. One flat
  // parallel_map over the full fanout × seed product keeps every run
  // concurrent on many-core machines.
  const std::vector<std::uint64_t> seeds{11, 22, 33};
  struct Case {
    std::int64_t fanout;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (auto f : fanouts)
    for (auto s : seeds) cases.push_back({f, s});
  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    auto cfg = bench::scaled_app_config(64, 1, erosion::Method::kUlba,
                                        cases[i].seed);
    cfg.gossip_fanout = cases[i].fanout;
    return erosion::ErosionApp(cfg).run();
  });

  support::Table impact(
      {"fanout", "total time [s]", "LB calls", "mean utilization"});
  std::vector<double> times;
  for (auto f : fanouts) {
    std::vector<double> t, calls, util;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (cases[i].fanout != f) continue;
      t.push_back(results[i].total_seconds);
      calls.push_back(static_cast<double>(results[i].lb_count));
      util.push_back(results[i].average_utilization);
    }
    times.push_back(support::median(t));
    impact.add_row({std::to_string(f),
                    support::Table::num(support::median(t), 3),
                    support::Table::num(support::median(calls), 0),
                    support::Table::pct(support::median(util), 1)});
  }
  std::printf("\nErosion app (64 PEs, 1 strong rock, ULBA alpha=0.4), median "
              "of %zu seeds:\n\n%s\n",
              seeds.size(), impact.render(2).c_str());

  // Two findings:
  //  * Persistence claim (§III-C): the slowest dissemination (fan-out 1)
  //    costs almost nothing end-to-end — stale WIRs are still good WIRs.
  //  * Extra gossip traffic is pure overhead: every push costs α-β time
  //    each iteration, so large fan-outs *lose* time without improving a
  //    single LB decision. This is exactly why the paper sends one
  //    dissemination round per iteration and no more.
  const double best = support::min_of(times);
  const double t_fanout1 = times.front();
  const double t_fanout8 = times.back();
  std::printf("  fanout 1 within 5%% of the best fanout : %s (%.1f%%)\n",
              t_fanout1 <= best * 1.05 ? "yes" : "NO",
              (t_fanout1 / best - 1.0) * 100.0);
  std::printf("  fanout 8 pays pure gossip overhead    : %s (+%.1f%%)\n",
              t_fanout8 >= best ? "yes" : "NO",
              (t_fanout8 / best - 1.0) * 100.0);
  const bool ok = t_fanout1 <= best * 1.05 && t_fanout8 >= best;
  std::printf("\n  verdict: %s (staleness tolerated; extra traffic is pure "
              "cost)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
