// E-X2 (extension) — trigger ablation on the erosion application.
//
// The paper adopts Zhai et al.'s degradation trigger without comparing it to
// alternatives. This ablation runs the same workload (32 PEs, 1 strongly
// erodible rock) under: the adaptive trigger, fixed periods, and no LB at
// all — for both methods.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X2 — LB trigger policies on the erosion application",
      "extends Boulmier et al. §III-C / Zhai et al. ICS'18");

  struct Variant {
    const char* name;
    erosion::TriggerMode mode;
    std::int64_t period;
  };
  const std::vector<Variant> variants{
      {"adaptive (Zhai)", erosion::TriggerMode::kAdaptive, 0},
      {"periodic 10", erosion::TriggerMode::kPeriodic, 10},
      {"periodic 25", erosion::TriggerMode::kPeriodic, 25},
      {"periodic 50", erosion::TriggerMode::kPeriodic, 50},
      {"periodic 100", erosion::TriggerMode::kPeriodic, 100},
      {"never (static)", erosion::TriggerMode::kNever, 0},
  };
  const std::vector<std::uint64_t> seeds{11, 22, 33};

  struct Case {
    std::size_t variant;
    erosion::Method method;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::size_t v = 0; v < variants.size(); ++v)
    for (auto m : {erosion::Method::kStandard, erosion::Method::kUlba})
      for (auto s : seeds) cases.push_back({v, m, s});

  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    auto cfg = bench::scaled_app_config(32, 1, cases[i].method,
                                        cases[i].seed);
    cfg.trigger_mode = variants[cases[i].variant].mode;
    if (variants[cases[i].variant].period > 0)
      cfg.lb_period = variants[cases[i].variant].period;
    return erosion::ErosionApp(cfg).run();
  });

  const auto median_of = [&](std::size_t v, erosion::Method m, auto field) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < cases.size(); ++i)
      if (cases[i].variant == v && cases[i].method == m)
        xs.push_back(field(results[i]));
    return support::median(xs);
  };

  support::Table table({"trigger", "std time [s]", "std LB calls",
                        "ULBA time [s]", "ULBA LB calls"});
  double adaptive_std = 0.0, best_periodic_std = 1e300;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const auto time = [](const erosion::RunResult& r) {
      return r.total_seconds;
    };
    const auto calls = [](const erosion::RunResult& r) {
      return static_cast<double>(r.lb_count);
    };
    const double t_std = median_of(v, erosion::Method::kStandard, time);
    const double t_ulba = median_of(v, erosion::Method::kUlba, time);
    table.add_row(
        {variants[v].name, support::Table::num(t_std, 3),
         support::Table::num(median_of(v, erosion::Method::kStandard, calls),
                             0),
         support::Table::num(t_ulba, 3),
         support::Table::num(median_of(v, erosion::Method::kUlba, calls),
                             0)});
    if (v == 0) adaptive_std = t_std;
    if (variants[v].mode == erosion::TriggerMode::kPeriodic)
      best_periodic_std = std::min(best_periodic_std, t_std);
  }
  std::printf("\n32 PEs, 1 strong rock, median of %zu seeds:\n\n%s\n",
              seeds.size(), table.render(2).c_str());

  // The adaptive trigger should be competitive with the best fixed period
  // (which required an oracle sweep to find).
  const bool ok = adaptive_std <= best_periodic_std * 1.05;
  std::printf("  adaptive within 5%% of the best (oracle) period: %s\n",
              ok ? "yes" : "NO");
  std::printf("\n  verdict: %s\n", ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
