// E-X4 (extension) — dynamic α, the paper's future-work item.
//
// §IV-B and §V observe that α should shrink as the overloading fraction
// grows (the Eq. (11) overhead is ∝ αN/(P−N)) and leave runtime adaptation
// to future work. This ablation implements the obvious rule
// α_eff = α·(1 − 2N̂/P) and compares it against fixed α as the number of
// strongly erodible rocks grows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/instance.hpp"
#include "opt/dp_alpha.hpp"
#include "opt/dp_optimal.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

// Model-level upper bound on what dynamic α can ever buy: the exact DP over
// (schedule × per-step α) vs. the exact DP with the best single fixed α.
void model_level_study() {
  using namespace ulba;
  constexpr std::size_t kInstances = 150;
  const auto margins = bench::parallel_map(kInstances, [&](std::size_t i) {
    support::Rng rng = support::Rng(888).fork(i);
    const core::InstanceGenerator gen;
    const core::ModelParams base = gen.sample(rng).params;

    double best_fixed = std::numeric_limits<double>::infinity();
    for (double alpha : opt::default_alpha_grid()) {
      core::ModelParams p = base;
      p.alpha = alpha;
      best_fixed = std::min(
          best_fixed,
          opt::optimal_schedule(p, opt::CostModel::kUlba).total_seconds);
    }
    const auto free_res = opt::optimal_alpha_schedule(base);
    return (1.0 - free_res.total_seconds / best_fixed) * 100.0;
  });
  const auto s = support::summarize(margins);
  std::printf("Model-level bound (exact DP, %zu Table-II instances):\n",
              kInstances);
  std::printf("  per-step alpha beats the best single alpha by: mean "
              "%.3f%%, median %.3f%%, max %.2f%%\n",
              s.mean, s.median, s.max);
  std::printf("  => most of dynamic alpha's value is matching alpha to the "
              "CURRENT overloading set,\n"
              "     not varying it step to step — consistent with the "
              "paper's Fig. 3/5 reading.\n\n");
}

}  // namespace

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X4 — dynamic alpha vs. fixed alpha (paper future work)",
      "Boulmier et al. §V: \"to dynamically adjust alpha during application "
      "execution in future works\"");

  std::printf("\n");
  model_level_study();

  const std::vector<std::int64_t> rock_counts{1, 2, 4, 6};
  const std::vector<std::uint64_t> seeds{11, 22, 33};

  struct Variant {
    const char* name;
    double alpha;
    bool dynamic;
  };
  const std::vector<Variant> variants{
      {"fixed alpha=0.2", 0.2, false},
      {"fixed alpha=0.4", 0.4, false},
      {"fixed alpha=0.6", 0.6, false},
      {"dynamic alpha (base 0.6)", 0.6, true},
  };

  struct Case {
    std::size_t variant;
    std::int64_t rocks;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::size_t v = 0; v < variants.size(); ++v)
    for (auto r : rock_counts)
      for (auto s : seeds) cases.push_back({v, r, s});

  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    auto cfg = bench::scaled_app_config(32, cases[i].rocks,
                                        erosion::Method::kUlba,
                                        cases[i].seed);
    cfg.alpha = variants[cases[i].variant].alpha;
    cfg.dynamic_alpha = variants[cases[i].variant].dynamic;
    return erosion::ErosionApp(cfg).run().total_seconds;
  });

  std::vector<std::string> headers{"variant"};
  for (auto r : rock_counts)
    headers.push_back(std::to_string(r) + " strong rocks");
  support::Table table(headers);

  std::vector<std::vector<double>> medians(
      variants.size(), std::vector<double>(rock_counts.size(), 0.0));
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row{variants[v].name};
    for (std::size_t ri = 0; ri < rock_counts.size(); ++ri) {
      std::vector<double> xs;
      for (std::size_t i = 0; i < cases.size(); ++i)
        if (cases[i].variant == v && cases[i].rocks == rock_counts[ri])
          xs.push_back(results[i]);
      medians[v][ri] = support::median(xs);
      row.push_back(support::Table::num(medians[v][ri], 3));
    }
    table.add_row(row);
  }

  std::printf("\nTotal time [virtual s], 32 PEs, median of %zu seeds:\n\n%s\n",
              seeds.size(), table.render(2).c_str());

  // Dynamic α must track the best fixed α across the sweep (within 5 %),
  // without knowing the rock count in advance.
  bool ok = true;
  for (std::size_t ri = 0; ri < rock_counts.size(); ++ri) {
    double best_fixed = 1e300;
    for (std::size_t v = 0; v + 1 < variants.size(); ++v)
      best_fixed = std::min(best_fixed, medians[v][ri]);
    const double dyn = medians.back()[ri];
    std::printf("  %lld rocks: best fixed %.3f s, dynamic %.3f s (%+.1f%%)\n",
                static_cast<long long>(rock_counts[ri]), best_fixed, dyn,
                (dyn / best_fixed - 1.0) * 100.0);
    if (dyn > best_fixed * 1.05) ok = false;
  }
  std::printf("\n  verdict: %s (dynamic alpha tracks the oracle fixed "
              "alpha)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
