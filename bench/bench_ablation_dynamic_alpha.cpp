// E-X4 (extension) — dynamic α, the paper's future-work item.
//
// §IV-B and §V observe that α should shrink as the overloading fraction
// grows (the Eq. (11) overhead is ∝ αN/(P−N)) and leave runtime adaptation
// to future work. Two runtime policies close the loop, both feeding on the
// gossip-estimated WIR databases: the fraction heuristic
// α_eff = α·(1 − 2N̂/P) and the model-grid policy (per-interval grid search
// over the analytic model with gossip-estimated N̂/â/m̂). Both sweeps live
// in the shared cli::sweep layer — `ulba_cli dynamic-alpha` reports the
// same implementation.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X4 — dynamic alpha vs. fixed alpha (paper future work)",
      "Boulmier et al. §V: \"to dynamically adjust alpha during application "
      "execution in future works\"");

  // Model-level upper bound on what dynamic α can ever buy: the exact DP
  // over (schedule × per-step α) vs. the exact DP with the best fixed α.
  const auto bound = bench::dynamic_alpha_model_bound(150, 888);
  std::printf("\nModel-level bound (exact DP, 150 Table-II instances):\n"
              "  per-step alpha beats the best single alpha by: mean "
              "%.3f%%, median %.3f%%, max %.2f%%\n"
              "  => most of dynamic alpha's value is matching alpha to the "
              "CURRENT overloading set,\n"
              "     not varying it step to step — consistent with the "
              "paper's Fig. 3/5 reading.\n\n",
              bound.mean_pct, bound.median_pct, bound.max_pct);

  const std::vector<std::int64_t> rock_counts{1, 2, 4, 6};
  const std::vector<std::uint64_t> seeds{11, 22, 33};
  const std::vector<bench::AlphaVariant> variants =
      bench::dynamic_alpha_variants(0.6);
  const auto medians =
      bench::dynamic_alpha_grid(variants, rock_counts, 32, seeds, 0);

  std::vector<std::string> headers{"variant"};
  for (const auto r : rock_counts)
    headers.push_back(std::to_string(r) + " strong rocks");
  support::Table table(headers);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row{variants[v].label};
    for (std::size_t ri = 0; ri < rock_counts.size(); ++ri)
      row.push_back(support::Table::num(medians[v][ri], 3));
    table.add_row(row);
  }
  std::printf("Total time [virtual s], 32 PEs, median of %zu seeds:\n\n%s\n",
              seeds.size(), table.render(2).c_str());

  // The gossip-fed dynamic policies must track the best fixed α across the
  // sweep (within 5 %), without knowing the rock count in advance.
  // Variant layout (dynamic_alpha_variants): [0..2] fixed, [3] fraction
  // (gossip), [4] model (gossip), [5] model (oracle WIR).
  bool ok = true;
  for (std::size_t ri = 0; ri < rock_counts.size(); ++ri) {
    double best_fixed = 1e300;
    for (std::size_t v = 0; v < 3; ++v)
      best_fixed = std::min(best_fixed, medians[v][ri]);
    const double dyn = std::min(medians[3][ri], medians[4][ri]);
    std::printf("  %lld rocks: best fixed %.3f s, best dynamic %.3f s "
                "(%+.1f%%), oracle model %.3f s\n",
                static_cast<long long>(rock_counts[ri]), best_fixed, dyn,
                (dyn / best_fixed - 1.0) * 100.0, medians[5][ri]);
    if (dyn > best_fixed * 1.05) ok = false;
  }
  std::printf("\n  verdict: %s (dynamic alpha tracks the oracle fixed "
              "alpha)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
